// Ablation (Section V extension): pair merges on the GPU instead of the CPU.
//
// The paper's closing argument: "Sorting in the NVLink era using multi-GPU
// systems needs to address the problem of merging using the GPUs, such that
// the CPU does not need to carry out all merging tasks." This harness
// quantifies that: PIPEMERGE with host pair merges vs device pair merges, on
// PCIe-bound PLATFORM1 and on an NVLink-class platform where transfers are
// nearly free and the CPU merge dominates.
//
// Note the device-merge trade-off the batch-sizing rule enforces: each
// stream needs 5*bs instead of 2*bs of device memory, so batches shrink and
// the multiway merge sees more (but pre-merged, 2*bs-sized) runs.
#include <iostream>

#include "bench_util.h"

using namespace hs;

namespace {

model::Platform nvlink_platform() {
  model::Platform p = model::platform1();
  p.name = "NVLINK-ERA";
  p.gpus[0].model = "V100-like";
  p.gpus[0].sort = model::GpuSortModel{1.5e-3, 0.6e-9};
  p.gpus[0].merge = model::GpuMergeModel{1.0e-3, 300.0e9};
  p.pcie = model::PcieModel{78.0e9, 75.0e9, 75.0e9, 37.0e9, 8e-6, 12e-6};
  return p;
}

void survey(const model::Platform& platform, std::uint64_t n) {
  std::cout << "--- " << platform.name << ", n = " << n << " ---\n";
  // Device merging needs 5*bs per stream; derive that batch size once and
  // also run the host variant at the same bs, isolating the merge-location
  // effect from the batch-count effect.
  core::SortConfig probe;
  probe.approach = core::Approach::kPipeMerge;
  probe.device_pair_merge = true;
  const std::uint64_t small_bs =
      core::resolve(probe, platform, n).batch_size;

  struct Variant {
    const char* name;
    bool device;
    std::uint64_t bs;  // 0 = auto
  };
  const Variant variants[] = {
      {"host, auto bs (2*bs/stream)", false, 0},
      {"host, device-sized bs", false, small_bs},
      {"device (5*bs/stream)", true, 0},
  };
  Table t({"pair merges", "bs", "nb", "end_to_end_s", "cpu_pairmerge_busy_s",
           "gpu_pairmerge_busy_s", "multiway_busy_s"});
  for (const Variant& v : variants) {
    core::SortConfig cfg;
    cfg.approach = core::Approach::kPipeMerge;
    cfg.device_pair_merge = v.device;
    cfg.memcpy_threads = 4;
    cfg.batch_size = v.bs;
    core::HeterogeneousSorter sorter(platform, cfg);
    const auto r = sorter.simulate(n);
    t.row()
        .add(v.name)
        .add(r.batch_size)
        .add(r.num_batches)
        .add(r.end_to_end, 2)
        .add(v.device ? 0.0 : r.busy.pair_merge, 3)
        .add(v.device ? r.busy.pair_merge : 0.0, 3)
        .add(r.busy.multiway_merge, 2);
  }
  t.print(std::cout);
  t.print_csv(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  bench::banner("Ablation — host vs device pair merging (PIPEMERGE)",
                "Section V future work: move merging onto the GPUs");
  survey(model::platform1(), 5'000'000'000ull);
  survey(nvlink_platform(), 5'000'000'000ull);
  std::cout
      << "reading: at EQUAL batch size device merging always wins (it\n"
         "removes seconds of CPU pair-merge busy time at millisecond GPU\n"
         "cost), but its 5*bs device-memory footprint shrinks batches and\n"
         "inflates the multiway merge — on these 12-16 GiB GPUs the batch\n"
         "effect dominates. The paper's Section V prescription therefore\n"
         "needs the larger device memories of the NVLink era to pay off\n"
         "end-to-end, which is consistent with its framing as future work.\n";
  return 0;
}
