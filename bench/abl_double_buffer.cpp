// Ablation: double-buffered staging.
//
// Figure 2 of the paper interleaves MCpy and HtoD strictly within a stream —
// the single pinned buffer forces the host copy of chunk c+1 to wait for the
// transfer of chunk c. A second pinned buffer per stream removes that wait at
// the cost of one extra pinned allocation. This harness sweeps the staging
// size to show where the trade flips.
#include <iostream>
#include <vector>

#include "bench_util.h"

using namespace hs;

int main() {
  bench::banner("Ablation — single vs double-buffered staging (PIPEDATA)",
                "extension of Fig 2's strict MCpy/HtoD alternation, "
                "PLATFORM1, n = 2e9");

  const model::Platform p = model::platform1();
  constexpr std::uint64_t kN = 2'000'000'000;

  Table t({"ps_elems", "single_s", "double_s", "gain_%"});
  for (const std::uint64_t ps :
       {100'000ull, 1'000'000ull, 10'000'000ull, 50'000'000ull}) {
    double times[2] = {0, 0};
    for (const bool dbl : {false, true}) {
      core::SortConfig cfg;
      cfg.approach = core::Approach::kPipeData;
      cfg.batch_size = 500'000'000;
      cfg.staging_elems = ps;
      cfg.double_buffer_staging = dbl;
      core::HeterogeneousSorter sorter(p, cfg);
      times[dbl ? 1 : 0] = sorter.simulate(kN).end_to_end;
    }
    t.row()
        .add(ps)
        .add(times[0], 3)
        .add(times[1], 3)
        .add(100.0 * (1.0 - times[1] / times[0]), 1);
  }
  t.print(std::cout);
  t.print_csv(std::cout);
  std::cout << "gain comes from hiding the staging MCpy behind PCIe; it "
               "shrinks when PARMEMCPY already makes the MCpy cheap.\n";
  return 0;
}
