// Ablation: pair-merge scheduling policy (Section III-D3).
//
// The paper reports that merging "online" / via a merge tree (i.e. pairing
// aggressively) delays the final multiway merge and degrades performance,
// which is why the heuristic stops at floor((nb-1)/2) pairs. This harness
// compares kNone (defer everything), the paper heuristic, and kAll (pair
// every adjacent couple) across batch counts.
#include <iostream>
#include <vector>

#include "bench_util.h"

using namespace hs;

int main() {
  bench::banner("Ablation — pair-merge policies on PLATFORM1, PIPEMERGE",
                "Section III-D3 heuristic vs none vs merge-everything");

  const model::Platform p = model::platform1();
  constexpr std::uint64_t kBs = 500'000'000;

  Table t({"n", "nb", "none_s", "heuristic_s", "all_s", "heuristic_pairs",
           "heuristic_ways"});
  for (const std::uint64_t n :
       {2'000'000'000ull, 3'000'000'000ull, 5'000'000'000ull}) {
    double times[3] = {0, 0, 0};
    std::uint64_t pairs = 0, ways = 0;
    const core::PairMergePolicy policies[] = {
        core::PairMergePolicy::kNone, core::PairMergePolicy::kPaperHeuristic,
        core::PairMergePolicy::kAll};
    std::uint64_t nb = 0;
    for (int i = 0; i < 3; ++i) {
      auto cfg = bench::approach_config(core::Approach::kPipeMerge, kBs, 1, 4);
      cfg.pair_policy = policies[i];
      const auto r = bench::simulate(p, cfg, n);
      times[i] = r.end_to_end;
      nb = r.num_batches;
      if (policies[i] == core::PairMergePolicy::kPaperHeuristic) {
        pairs = r.pair_merges;
        ways = r.multiway_ways;
      }
    }
    t.row()
        .add(n)
        .add(nb)
        .add(times[0], 2)
        .add(times[1], 2)
        .add(times[2], 2)
        .add(pairs)
        .add(ways);
  }
  t.print(std::cout);
  t.print_csv(std::cout);
  std::cout << "paper expectation: heuristic <= none, and all-pairs risks "
               "delaying the multiway merge at higher batch counts\n";
  return 0;
}
