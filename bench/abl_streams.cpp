// Ablation: stream count ns (Section III-D2 / IV-F discussion).
//
// "For a fixed value of n, setting ns > 2 may allow for more overlap of data
// transfers, but this necessitates smaller batch sizes, and thus increased
// the amount of merging to be done on the CPU." — this harness quantifies
// that trade-off: for each ns, the batch size is the largest that fits
// (bs = device_mem / (2 ns * 8)) and we report the end-to-end PIPEDATA time
// plus the resulting batch count and merge cost share.
#include <iostream>
#include <vector>

#include "bench_util.h"

using namespace hs;

int main() {
  bench::banner("Ablation — streams per GPU (ns) on PLATFORM1, PIPEDATA",
                "Section IV-F stream-count trade-off, n = 5e9");

  const model::Platform p = model::platform1();
  constexpr std::uint64_t kN = 5'000'000'000;

  Table t({"ns", "bs_elems", "nb", "end_to_end_s", "multiway_busy_s",
           "htod_busy_s"});
  double best = 1e18;
  unsigned best_ns = 0;
  for (unsigned ns = 1; ns <= 8; ++ns) {
    core::SortConfig cfg;
    cfg.approach = core::Approach::kPipeData;
    cfg.streams_per_gpu = ns;
    cfg.batch_size = 0;  // auto: largest that fits with this ns
    const auto r = bench::simulate(p, cfg, kN);
    if (r.end_to_end < best) {
      best = r.end_to_end;
      best_ns = ns;
    }
    t.row()
        .add(static_cast<int>(ns))
        .add(r.batch_size)
        .add(r.num_batches)
        .add(r.end_to_end, 2)
        .add(r.busy.multiway_merge, 2)
        .add(r.busy.htod, 2);
  }
  t.print(std::cout);
  t.print_csv(std::cout);
  std::cout << "best ns = " << best_ns
            << " (paper uses ns = 2: enough for bidirectional overlap while "
               "keeping batches large)\n";
  return 0;
}
