// Host merge-path benchmark with machine-readable output.
//
// Measures the real host hot path this repo's PRs optimise — the k-way merge
// behind the pipeline's final multiway stage — and emits BENCH_hostpath.json
// so the perf trajectory is tracked in-repo from PR to PR.
//
// Two sequential (single-core) series anchor the comparison:
//   pop_drain   — the pre-PR LoserTree::drain, embedded below verbatim as
//                 reference::LoserTree (one full root-to-leaf replay per
//                 element, comparisons load elements through run spans).
//   block_drain — the buffered key-caching drain: cached-key replays,
//                 adaptive gallop, cache-resident blocks.
// A parallel series (scratch-backed multiway_merge_parallel at full pool
// width) tracks the end-to-end engine.
//
// Usage: bench_hostpath [output.json]   (default BENCH_hostpath.json)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "common/assert.h"
#include "common/key_value.h"
#include "common/math_util.h"
#include "cpu/loser_tree.h"
#include "cpu/multiway_merge.h"
#include "cpu/thread_pool.h"
#include "data/generators.h"

namespace reference {

// The seed-tree implementation, frozen so the baseline stays the pre-PR code
// even as src/cpu/loser_tree.h evolves. Comparisons dereference the run spans
// on every tree level; drain() is one pop() per element.
template <typename T, typename Compare = std::less<T>>
class LoserTree {
 public:
  explicit LoserTree(std::vector<std::span<const T>> runs, Compare comp = {})
      : runs_(std::move(runs)), comp_(comp) {
    k_ = runs_.size();
    HS_EXPECTS(k_ >= 1);
    leaves_ = std::size_t{1} << hs::log2_ceil(k_);
    pos_.assign(leaves_, 0);
    tree_.assign(leaves_, kExhausted);
    remaining_ = 0;
    for (std::size_t r = 0; r < k_; ++r) remaining_ += runs_[r].size();
    build();
  }

  bool empty() const { return remaining_ == 0; }

  T pop() {
    const std::size_t winner = tree_[0];
    const T value = runs_[winner][pos_[winner]];
    ++pos_[winner];
    --remaining_;
    replay(winner);
    return value;
  }

  void drain(std::span<T> out) {
    HS_EXPECTS(out.size() == remaining_);
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = pop();
  }

 private:
  static constexpr std::size_t kExhausted = ~std::size_t{0};

  bool beats(std::size_t s, std::size_t r) const {
    if (s == kExhausted) return false;
    if (r == kExhausted) return true;
    const T& vs = runs_[s][pos_[s]];
    const T& vr = runs_[r][pos_[r]];
    if (comp_(vs, vr)) return true;
    if (comp_(vr, vs)) return false;
    return s < r;
  }

  std::size_t leaf_id(std::size_t leaf) const {
    return (leaf < k_ && pos_[leaf] < runs_[leaf].size()) ? leaf : kExhausted;
  }

  void build() {
    std::vector<std::size_t> winner(2 * leaves_, kExhausted);
    for (std::size_t i = 0; i < leaves_; ++i) {
      winner[leaves_ + i] = leaf_id(i);
    }
    for (std::size_t i = leaves_ - 1; i >= 1; --i) {
      const std::size_t a = winner[2 * i];
      const std::size_t b = winner[2 * i + 1];
      if (beats(a, b)) {
        winner[i] = a;
        tree_[i] = b;
      } else {
        winner[i] = b;
        tree_[i] = a;
      }
    }
    tree_[0] = winner[1];
  }

  void replay(std::size_t leaf) {
    std::size_t contender = leaf_id(leaf);
    std::size_t node = (leaves_ + leaf) / 2;
    while (node >= 1) {
      if (beats(tree_[node], contender)) {
        std::swap(tree_[node], contender);
      }
      node /= 2;
    }
    tree_[0] = contender;
  }

  std::vector<std::span<const T>> runs_;
  Compare comp_;
  std::size_t k_ = 0;
  std::size_t leaves_ = 0;
  std::vector<std::uint64_t> pos_;
  std::vector<std::size_t> tree_;
  std::uint64_t remaining_ = 0;
};

}  // namespace reference

namespace {

using hs::data::Distribution;

constexpr std::uint64_t kTotalElems = std::uint64_t{1} << 22;  // 4M / series
constexpr int kTrials = 3;

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

template <typename F>
double best_of(int trials, F&& f) {
  double best = 1e300;
  for (int t = 0; t < trials; ++t) {
    const double t0 = now_seconds();
    f();
    best = std::min(best, now_seconds() - t0);
  }
  return best;
}

template <typename T>
std::vector<std::vector<T>> make_runs(std::size_t k, std::uint64_t per_run);

template <>
std::vector<std::vector<double>> make_runs(std::size_t k,
                                           std::uint64_t per_run) {
  std::vector<std::vector<double>> runs(k);
  for (std::size_t r = 0; r < k; ++r) {
    runs[r] = hs::data::generate(Distribution::kUniform, per_run, r + 1);
    std::sort(runs[r].begin(), runs[r].end());
  }
  return runs;
}

template <>
std::vector<std::vector<std::uint64_t>> make_runs(std::size_t k,
                                                  std::uint64_t per_run) {
  std::vector<std::vector<std::uint64_t>> runs(k);
  for (std::size_t r = 0; r < k; ++r) {
    runs[r] = hs::data::generate_keys(Distribution::kUniform, per_run, r + 1);
    std::sort(runs[r].begin(), runs[r].end());
  }
  return runs;
}

template <>
std::vector<std::vector<hs::KeyValue64>> make_runs(std::size_t k,
                                                   std::uint64_t per_run) {
  std::vector<std::vector<hs::KeyValue64>> runs(k);
  for (std::size_t r = 0; r < k; ++r) {
    const auto keys =
        hs::data::generate_keys(Distribution::kUniform, per_run, r + 1);
    runs[r].resize(per_run);
    for (std::uint64_t i = 0; i < per_run; ++i) runs[r][i] = {keys[i], i};
    std::sort(runs[r].begin(), runs[r].end());
  }
  return runs;
}

struct Series {
  std::string type;
  std::size_t k = 0;
  double pop_drain_meps = 0;    // million elements / s, sequential
  double block_drain_meps = 0;  // million elements / s, sequential
  double parallel_meps = 0;     // million elements / s, full pool
  double speedup = 0;           // block_drain / pop_drain
};

template <typename T>
Series run_series(hs::cpu::ThreadPool& pool, const std::string& type,
                  std::size_t k) {
  const std::uint64_t per_run = kTotalElems / k;
  const std::uint64_t total = per_run * k;
  const auto runs = make_runs<T>(k, per_run);
  std::vector<std::span<const T>> spans(runs.begin(), runs.end());
  std::vector<T> out(total);
  std::vector<T> expect(total);

  // Reference drain: the frozen pre-PR implementation, per-element pop.
  const double t_pop = best_of(kTrials, [&] {
    reference::LoserTree<T> tree(spans);
    tree.drain(std::span<T>(expect));
  });
  // Block drain.
  const double t_block = best_of(kTrials, [&] {
    hs::cpu::LoserTree<T> tree(spans);
    tree.drain(std::span<T>(out));
  });
  HS_EXPECTS_MSG(out == expect, "block drain diverged from pop drain");
  // Parallel engine, scratch reused across trials (steady state).
  hs::cpu::MultiwayMergeScratch<T> scratch;
  const double t_par = best_of(kTrials, [&] {
    auto spans_copy = spans;
    hs::cpu::multiway_merge_parallel<T>(pool, std::move(spans_copy),
                                        std::span<T>(out), std::less<T>{}, 0,
                                        &scratch);
  });
  HS_EXPECTS_MSG(out == expect, "parallel merge diverged from pop drain");

  Series s;
  s.type = type;
  s.k = k;
  const double m = static_cast<double>(total) / 1e6;
  s.pop_drain_meps = m / t_pop;
  s.block_drain_meps = m / t_block;
  s.parallel_meps = m / t_par;
  s.speedup = t_pop / t_block;
  std::printf("%-5s k=%-3zu  pop %8.1f M/s   block %8.1f M/s   par %8.1f M/s"
              "   speedup %.2fx\n",
              type.c_str(), k, s.pop_drain_meps, s.block_drain_meps,
              s.parallel_meps, s.speedup);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_hostpath.json";
  hs::cpu::ThreadPool pool;

  std::vector<Series> series;
  for (const std::size_t k : {2u, 4u, 8u, 16u, 32u, 64u}) {
    series.push_back(run_series<double>(pool, "f64", k));
  }
  for (const std::size_t k : {8u, 32u}) {
    series.push_back(run_series<std::uint64_t>(pool, "u64", k));
    series.push_back(run_series<hs::KeyValue64>(pool, "kv64", k));
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  HS_EXPECTS_MSG(f != nullptr, "cannot open output file");
  std::fprintf(f, "{\n  \"bench\": \"hostpath\",\n");
  std::fprintf(f, "  \"elements_per_series\": %llu,\n",
               static_cast<unsigned long long>(kTotalElems));
  std::fprintf(f, "  \"trials\": %d,\n  \"pool_threads\": %u,\n", kTrials,
               pool.size());
  std::fprintf(f, "  \"units\": \"million elements per second\",\n");
  std::fprintf(f, "  \"series\": [\n");
  for (std::size_t i = 0; i < series.size(); ++i) {
    const Series& s = series[i];
    std::fprintf(f,
                 "    {\"type\": \"%s\", \"k\": %zu, \"pop_drain\": %.1f, "
                 "\"block_drain\": %.1f, \"parallel\": %.1f, "
                 "\"speedup\": %.2f}%s\n",
                 s.type.c_str(), s.k, s.pop_drain_meps, s.block_drain_meps,
                 s.parallel_meps, s.speedup, i + 1 < series.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
