// Host merge-path benchmark with machine-readable output.
//
// Measures the real host hot path this repo's PRs optimise — the k-way merge
// behind the pipeline's final multiway stage — and emits BENCH_hostpath.json
// so the perf trajectory is tracked in-repo from PR to PR.
//
// Two sequential (single-core) series anchor the comparison:
//   pop_drain   — the pre-PR LoserTree::drain, embedded below verbatim as
//                 reference::LoserTree (one full root-to-leaf replay per
//                 element, comparisons load elements through run spans).
//   block_drain — the current sequential engine: cached-key replays,
//                 adaptive gallop, windowed exhaustion checks; for types
//                 with DeferredMergeTraits (kv64) this is the payload-
//                 deferred path — key-only drain into a permutation stream,
//                 then one streaming gather of the 16-byte records.
// A parallel series (scratch-backed multiway_merge_parallel at full pool
// width) tracks the end-to-end engine, and a parallel_scaling sweep runs
// pool_threads = 1/2/4/8 at fixed k to track the partitioned merge's
// thread-scaling shape. Each series also records the strategy the planner
// (core/merge_schedule) picks for its shape, so plan flips show up in the
// JSON diff.
//
// On hosts with fewer cores than the sweep width the measured meps for
// oversubscribed points is not meaningful; the machine-independent fields
// (partition imbalance from the exact splitter, model_speedup from the
// calibrated CpuMergeModel) are what compare_bench.py checks.
//
// Usage: bench_hostpath [output.json]   (default BENCH_hostpath.json)
// Env:   HETSORT_BENCH_SMOKE=1 shrinks elements/trials for CI smoke runs.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "common/assert.h"
#include "common/key_value.h"
#include "common/math_util.h"
#include "core/merge_schedule.h"
#include "cpu/loser_tree.h"
#include "cpu/merge_plan.h"
#include "cpu/multiway_merge.h"
#include "cpu/thread_pool.h"
#include "data/generators.h"
#include "model/cpu_model.h"

namespace reference {

// The seed-tree implementation, frozen so the baseline stays the pre-PR code
// even as src/cpu/loser_tree.h evolves. Comparisons dereference the run spans
// on every tree level; drain() is one pop() per element.
template <typename T, typename Compare = std::less<T>>
class LoserTree {
 public:
  explicit LoserTree(std::vector<std::span<const T>> runs, Compare comp = {})
      : runs_(std::move(runs)), comp_(comp) {
    k_ = runs_.size();
    HS_EXPECTS(k_ >= 1);
    leaves_ = std::size_t{1} << hs::log2_ceil(k_);
    pos_.assign(leaves_, 0);
    tree_.assign(leaves_, kExhausted);
    remaining_ = 0;
    for (std::size_t r = 0; r < k_; ++r) remaining_ += runs_[r].size();
    build();
  }

  bool empty() const { return remaining_ == 0; }

  T pop() {
    const std::size_t winner = tree_[0];
    const T value = runs_[winner][pos_[winner]];
    ++pos_[winner];
    --remaining_;
    replay(winner);
    return value;
  }

  void drain(std::span<T> out) {
    HS_EXPECTS(out.size() == remaining_);
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = pop();
  }

 private:
  static constexpr std::size_t kExhausted = ~std::size_t{0};

  bool beats(std::size_t s, std::size_t r) const {
    if (s == kExhausted) return false;
    if (r == kExhausted) return true;
    const T& vs = runs_[s][pos_[s]];
    const T& vr = runs_[r][pos_[r]];
    if (comp_(vs, vr)) return true;
    if (comp_(vr, vs)) return false;
    return s < r;
  }

  std::size_t leaf_id(std::size_t leaf) const {
    return (leaf < k_ && pos_[leaf] < runs_[leaf].size()) ? leaf : kExhausted;
  }

  void build() {
    std::vector<std::size_t> winner(2 * leaves_, kExhausted);
    for (std::size_t i = 0; i < leaves_; ++i) {
      winner[leaves_ + i] = leaf_id(i);
    }
    for (std::size_t i = leaves_ - 1; i >= 1; --i) {
      const std::size_t a = winner[2 * i];
      const std::size_t b = winner[2 * i + 1];
      if (beats(a, b)) {
        winner[i] = a;
        tree_[i] = b;
      } else {
        winner[i] = b;
        tree_[i] = a;
      }
    }
    tree_[0] = winner[1];
  }

  void replay(std::size_t leaf) {
    std::size_t contender = leaf_id(leaf);
    std::size_t node = (leaves_ + leaf) / 2;
    while (node >= 1) {
      if (beats(tree_[node], contender)) {
        std::swap(tree_[node], contender);
      }
      node /= 2;
    }
    tree_[0] = contender;
  }

  std::vector<std::span<const T>> runs_;
  Compare comp_;
  std::size_t k_ = 0;
  std::size_t leaves_ = 0;
  std::vector<std::uint64_t> pos_;
  std::vector<std::size_t> tree_;
  std::uint64_t remaining_ = 0;
};

}  // namespace reference

namespace {

using hs::data::Distribution;

// Full run: 4M elements, best-of-3. Smoke mode (CI) shrinks both so the
// binary finishes in seconds; smoke output is compared on machine-
// independent fields only.
std::uint64_t g_total_elems = std::uint64_t{1} << 22;
int g_trials = 3;

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

template <typename F>
double best_of(int trials, F&& f) {
  double best = 1e300;
  for (int t = 0; t < trials; ++t) {
    const double t0 = now_seconds();
    f();
    best = std::min(best, now_seconds() - t0);
  }
  return best;
}

template <typename T>
std::vector<std::vector<T>> make_runs(std::size_t k, std::uint64_t per_run);

template <>
std::vector<std::vector<double>> make_runs(std::size_t k,
                                           std::uint64_t per_run) {
  std::vector<std::vector<double>> runs(k);
  for (std::size_t r = 0; r < k; ++r) {
    runs[r] = hs::data::generate(Distribution::kUniform, per_run, r + 1);
    std::sort(runs[r].begin(), runs[r].end());
  }
  return runs;
}

template <>
std::vector<std::vector<std::uint64_t>> make_runs(std::size_t k,
                                                  std::uint64_t per_run) {
  std::vector<std::vector<std::uint64_t>> runs(k);
  for (std::size_t r = 0; r < k; ++r) {
    runs[r] = hs::data::generate_keys(Distribution::kUniform, per_run, r + 1);
    std::sort(runs[r].begin(), runs[r].end());
  }
  return runs;
}

template <>
std::vector<std::vector<hs::KeyValue64>> make_runs(std::size_t k,
                                                   std::uint64_t per_run) {
  std::vector<std::vector<hs::KeyValue64>> runs(k);
  for (std::size_t r = 0; r < k; ++r) {
    const auto keys =
        hs::data::generate_keys(Distribution::kUniform, per_run, r + 1);
    runs[r].resize(per_run);
    for (std::uint64_t i = 0; i < per_run; ++i) runs[r][i] = {keys[i], i};
    std::sort(runs[r].begin(), runs[r].end());
  }
  return runs;
}

template <typename T>
constexpr std::size_t key_size_of() {
  if constexpr (std::is_same_v<T, hs::KeyValue64>) {
    return sizeof(std::uint64_t);
  } else {
    return sizeof(T);
  }
}

std::string strategy_name(const hs::cpu::MergePlan& plan) {
  std::string s = plan.topology == hs::cpu::MergeTopology::kCascaded
                      ? "cascaded/" + std::to_string(plan.fan_in)
                      : "flat";
  s += plan.deferred_payload ? "+deferred" : "+direct";
  return s;
}

struct Series {
  std::string type;
  std::size_t k = 0;
  std::string strategy;         // planner choice for this (type, k, pool)
  double pop_drain_meps = 0;    // million elements / s, sequential
  double block_drain_meps = 0;  // million elements / s, sequential
  double parallel_meps = 0;     // million elements / s, full pool
  double speedup = 0;           // block_drain / pop_drain
};

template <typename T>
Series run_series(hs::cpu::ThreadPool& pool, const std::string& type,
                  std::size_t k) {
  const std::uint64_t per_run = g_total_elems / k;
  const std::uint64_t total = per_run * k;
  const auto runs = make_runs<T>(k, per_run);
  std::vector<std::span<const T>> spans(runs.begin(), runs.end());
  std::vector<T> out(total);
  std::vector<T> expect(total);

  // Reference drain: the frozen pre-PR implementation, per-element pop.
  const double t_pop = best_of(g_trials, [&] {
    reference::LoserTree<T> tree(spans);
    tree.drain(std::span<T>(expect));
  });
  // Sequential engine drain. Types with DeferredMergeTraits take the
  // payload-deferred path (key drain + permutation gather); the rest drain
  // the direct tree.
  double t_block = 0;
  if constexpr (hs::cpu::DeferredMergeTraits<T, std::less<T>>::kEnabled) {
    hs::cpu::DeferredLoserTree<T> tree;
    std::vector<std::uint64_t> perm;
    const std::span<const std::span<const T>> rspan(spans);
    t_block = best_of(g_trials, [&] {
      hs::cpu::multiway_merge_deferred<T>(rspan, std::span<T>(out), tree,
                                          perm);
    });
  } else {
    t_block = best_of(g_trials, [&] {
      hs::cpu::LoserTree<T> tree(spans);
      tree.drain(std::span<T>(out));
    });
  }
  HS_EXPECTS_MSG(out == expect, "block drain diverged from pop drain");
  // Parallel engine, scratch reused across trials (steady state).
  hs::cpu::MultiwayMergeScratch<T> scratch;
  const double t_par = best_of(g_trials, [&] {
    auto spans_copy = spans;
    hs::cpu::multiway_merge_parallel<T>(pool, std::move(spans_copy),
                                        std::span<T>(out), std::less<T>{}, 0,
                                        &scratch);
  });
  HS_EXPECTS_MSG(out == expect, "parallel merge diverged from pop drain");

  Series s;
  s.type = type;
  s.k = k;
  s.strategy = strategy_name(hs::core::plan_multiway_merge(
      {k, total, sizeof(T), key_size_of<T>(), pool.size()}));
  const double m = static_cast<double>(total) / 1e6;
  s.pop_drain_meps = m / t_pop;
  s.block_drain_meps = m / t_block;
  s.parallel_meps = m / t_par;
  s.speedup = t_pop / t_block;
  std::printf("%-5s k=%-3zu  pop %8.1f M/s   block %8.1f M/s   par %8.1f M/s"
              "   speedup %.2fx   [%s]\n",
              type.c_str(), k, s.pop_drain_meps, s.block_drain_meps,
              s.parallel_meps, s.speedup, s.strategy.c_str());
  return s;
}

struct ScalePoint {
  std::string type;
  std::size_t k = 0;
  unsigned threads = 0;
  double meps = 0;           // measured on this host — machine-dependent
  double scaling_vs_1 = 0;   // measured meps / measured meps at 1 thread
  double imbalance = 0;      // max part size / ideal part size (exact cuts)
  double model_speedup = 0;  // calibrated CpuMergeModel S(p) — deterministic
};

template <typename T>
void run_scaling(const std::string& type, std::size_t k,
                 std::vector<ScalePoint>& points) {
  const std::uint64_t per_run = g_total_elems / k;
  const std::uint64_t total = per_run * k;
  const auto runs = make_runs<T>(k, per_run);
  const std::vector<std::span<const T>> spans(runs.begin(), runs.end());
  std::vector<T> out(total);
  std::vector<T> expect(total);
  {
    reference::LoserTree<T> tree(spans);
    tree.drain(std::span<T>(expect));
  }

  double meps_at_1 = 0;
  for (const unsigned p : {1u, 2u, 4u, 8u}) {
    hs::cpu::ThreadPool pool(p);
    hs::cpu::MultiwayMergeScratch<T> scratch;
    const double t = best_of(g_trials, [&] {
      auto spans_copy = spans;
      hs::cpu::multiway_merge_parallel<T>(pool, std::move(spans_copy),
                                          std::span<T>(out), std::less<T>{},
                                          p, &scratch);
    });
    HS_EXPECTS_MSG(out == expect, "scaling merge diverged from pop drain");

    ScalePoint sp;
    sp.type = type;
    sp.k = k;
    sp.threads = p;
    sp.meps = static_cast<double>(total) / 1e6 / t;
    if (p == 1) meps_at_1 = sp.meps;
    sp.scaling_vs_1 = meps_at_1 > 0 ? sp.meps / meps_at_1 : 0;
    // The engine cuts parts at exact global ranks total*j/p, so the realised
    // imbalance is a pure function of (total, p) — record it as the
    // machine-independent witness that partitioning is not the bottleneck.
    std::uint64_t max_part = 0;
    for (unsigned j = 0; j < p; ++j) {
      max_part = std::max(max_part, total * (j + 1) / p - total * j / p);
    }
    sp.imbalance = static_cast<double>(max_part) * p /
                   static_cast<double>(total);
    sp.model_speedup = hs::model::CpuMergeModel{}.speedup(p);
    std::printf("scale %-5s k=%-3zu p=%u  %8.1f M/s   vs1 %.2fx   "
                "imbalance %.4f   model %.2fx\n",
                type.c_str(), k, p, sp.meps, sp.scaling_vs_1, sp.imbalance,
                sp.model_speedup);
    points.push_back(std::move(sp));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_hostpath.json";
  if (std::getenv("HETSORT_BENCH_SMOKE") != nullptr) {
    g_total_elems = std::uint64_t{1} << 19;  // 512K / series
    g_trials = 1;
  }
  hs::cpu::ThreadPool pool;

  std::vector<Series> series;
  for (const std::size_t k : {2u, 4u, 8u, 16u, 32u, 64u}) {
    series.push_back(run_series<double>(pool, "f64", k));
  }
  for (const std::size_t k : {8u, 32u}) {
    series.push_back(run_series<std::uint64_t>(pool, "u64", k));
    series.push_back(run_series<hs::KeyValue64>(pool, "kv64", k));
  }

  std::vector<ScalePoint> scaling;
  run_scaling<double>("f64", 16, scaling);
  run_scaling<hs::KeyValue64>("kv64", 16, scaling);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  HS_EXPECTS_MSG(f != nullptr, "cannot open output file");
  std::fprintf(f, "{\n  \"bench\": \"hostpath\",\n");
  std::fprintf(f, "  \"elements_per_series\": %llu,\n",
               static_cast<unsigned long long>(g_total_elems));
  std::fprintf(f, "  \"trials\": %d,\n  \"pool_threads\": %u,\n", g_trials,
               pool.size());
  std::fprintf(f, "  \"units\": \"million elements per second\",\n");
  std::fprintf(f, "  \"series\": [\n");
  for (std::size_t i = 0; i < series.size(); ++i) {
    const Series& s = series[i];
    std::fprintf(f,
                 "    {\"type\": \"%s\", \"k\": %zu, \"strategy\": \"%s\", "
                 "\"pop_drain\": %.1f, "
                 "\"block_drain\": %.1f, \"parallel\": %.1f, "
                 "\"speedup\": %.2f}%s\n",
                 s.type.c_str(), s.k, s.strategy.c_str(), s.pop_drain_meps,
                 s.block_drain_meps, s.parallel_meps, s.speedup,
                 i + 1 < series.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"parallel_scaling\": [\n");
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const ScalePoint& s = scaling[i];
    std::fprintf(f,
                 "    {\"type\": \"%s\", \"k\": %zu, \"threads\": %u, "
                 "\"meps\": %.1f, \"scaling_vs_1\": %.2f, "
                 "\"imbalance\": %.4f, \"model_speedup\": %.2f}%s\n",
                 s.type.c_str(), s.k, s.threads, s.meps, s.scaling_vs_1,
                 s.imbalance, s.model_speedup,
                 i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
