// Batch-sort hot-path benchmark with machine-readable output.
//
// Measures the radix engine behind `vgpu::device_sort` and the CPU reference
// sorts, and the PARMEMCPY streaming primitive, emitting BENCH_sortpath.json
// so the perf trajectory is tracked in-repo from PR to PR.
//
// Radix series compare three implementations per (type, distribution):
//   seed    — the pre-engine 8-pass LSD sort, embedded below verbatim as
//             reference::radix_sort (a count sweep + a scatter sweep per
//             pass, standalone double<->key transform sweeps).
//   engine  — the bandwidth-proportional engine: one fused histogram sweep,
//             trivial-pass skipping, write-combining streaming scatter,
//             fused transforms, warm RadixSortScratch (steady state).
//   par     — radix_sort_parallel at full pool width, warm scratch.
// Memcpy series compare std::memcpy, memcpy_stream and parallel_memcpy.
//
// Usage: bench_sortpath [output.json]   (default BENCH_sortpath.json)
//
// Set HETSORT_BENCH_SMOKE=1 for a reduced run (fewer elements and trials,
// no 128 MiB copy) suitable for CI: absolute rates shrink with n, but the
// machine-independent fields (executed_passes, engine-vs-seed speedup) stay
// comparable against the committed baseline via tools/compare_bench.py.
#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/assert.h"
#include "common/key_value.h"
#include "core/het_sorter.h"
#include "cpu/parallel_memcpy.h"
#include "cpu/radix_sort.h"
#include "cpu/thread_pool.h"
#include "cpu/total_order.h"
#include "data/generators.h"
#include "data/sketch.h"
#include "model/platforms.h"

namespace reference {

// The seed implementation, frozen so the baseline stays the pre-PR code even
// as src/cpu/radix_sort.cpp evolves: textbook 8-pass LSD with one counting
// sweep and one scatter sweep per pass, and the double bijection applied as
// two standalone full-array sweeps.
constexpr unsigned kDigitBits = 8;
constexpr unsigned kNumDigits = 64 / kDigitBits;
constexpr std::size_t kRadix = 1u << kDigitBits;

constexpr std::size_t digit_of(std::uint64_t key, unsigned pass) {
  return (key >> (pass * kDigitBits)) & (kRadix - 1);
}

template <typename R, typename KeyFn>
void radix_pass_sequential(std::span<const R> in, std::span<R> out,
                           unsigned pass, KeyFn key) {
  std::array<std::uint64_t, kRadix> count{};
  for (const R& r : in) ++count[digit_of(key(r), pass)];
  std::uint64_t sum = 0;
  for (auto& c : count) {
    const std::uint64_t n = c;
    c = sum;
    sum += n;
  }
  for (const R& r : in) out[count[digit_of(key(r), pass)]++] = r;
}

template <typename R, typename KeyFn>
void radix_sort_generic(std::span<R> records, KeyFn key) {
  if (records.size() < 2) return;
  std::vector<R> tmp(records.size());
  std::span<R> a = records;
  std::span<R> b = tmp;
  for (unsigned pass = 0; pass < kNumDigits; ++pass) {
    radix_pass_sequential<R>(a, b, pass, key);
    std::swap(a, b);
  }
  static_assert(kNumDigits % 2 == 0);
}

constexpr auto kIdentityKey = [](std::uint64_t k) { return k; };
constexpr auto kKvKey = [](const hs::KeyValue64& r) { return r.key; };

void radix_sort(std::span<std::uint64_t> keys) {
  radix_sort_generic(keys, kIdentityKey);
}

void radix_sort(std::span<double> values) {
  const std::span<std::uint64_t> keys{
      reinterpret_cast<std::uint64_t*>(values.data()), values.size()};
  for (auto& k : keys) {
    k = hs::cpu::double_to_radix_key(std::bit_cast<double>(k));
  }
  radix_sort_generic(keys, kIdentityKey);
  for (auto& k : keys) {
    k = std::bit_cast<std::uint64_t>(hs::cpu::radix_key_to_double(k));
  }
}

void radix_sort(std::span<hs::KeyValue64> records) {
  radix_sort_generic(records, kKvKey);
}

}  // namespace reference

namespace {

using hs::data::Distribution;

// Full-size defaults; HETSORT_BENCH_SMOKE=1 shrinks both in main().
std::uint64_t g_sort_elems = std::uint64_t{1} << 22;  // 4M / series
int g_trials = 3;

bool smoke_mode() {
  const char* v = std::getenv("HETSORT_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

template <typename F>
double best_of(int trials, F&& f) {
  double best = 1e300;
  for (int t = 0; t < trials; ++t) {
    const double t0 = now_seconds();
    f();
    best = std::min(best, now_seconds() - t0);
  }
  return best;
}

template <typename T>
std::vector<T> make_input(Distribution dist, std::uint64_t n);

template <>
std::vector<double> make_input(Distribution dist, std::uint64_t n) {
  return hs::data::generate(dist, n, 17);
}

template <>
std::vector<std::uint64_t> make_input(Distribution dist, std::uint64_t n) {
  return hs::data::generate_keys(dist, n, 17);
}

template <>
std::vector<hs::KeyValue64> make_input(Distribution dist, std::uint64_t n) {
  const auto keys = hs::data::generate_keys(dist, n, 17);
  std::vector<hs::KeyValue64> v(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = {keys[i], i};
  return v;
}

struct RadixSeries {
  std::string type;
  std::string dist;
  double seed_meps = 0;    // million elements / s, frozen seed implementation
  double engine_meps = 0;  // million elements / s, sequential engine
  double parallel_meps = 0;
  unsigned executed_passes = 0;  // of 8, after skipping
  double speedup = 0;            // engine / seed, single-thread
};

template <typename T>
RadixSeries run_radix(hs::cpu::ThreadPool& pool, const std::string& type,
                      Distribution dist) {
  const auto input = make_input<T>(dist, g_sort_elems);
  std::vector<T> work(input.size());
  std::vector<T> expect = input;
  reference::radix_sort(std::span<T>(expect));

  const auto reload = [&] {
    std::memcpy(work.data(), input.data(), input.size() * sizeof(T));
  };

  // Timed region includes the reload copy for every candidate equally; the
  // reported rate subtracts it via the measured memcpy time.
  const double t_copy = best_of(g_trials, reload);

  const double t_seed = best_of(g_trials, [&] {
    reload();
    reference::radix_sort(std::span<T>(work));
  });
  HS_EXPECTS_MSG(work == expect, "seed radix diverged");

  hs::cpu::RadixSortScratch scratch;
  reload();
  hs::cpu::radix_sort(std::span<T>(work), &scratch);  // warm-up sizes buffers
  const unsigned passes = scratch.executed_passes;
  const double t_engine = best_of(g_trials, [&] {
    reload();
    hs::cpu::radix_sort(std::span<T>(work), &scratch);
  });
  HS_EXPECTS_MSG(work == expect, "engine radix diverged from seed");

  hs::cpu::RadixSortScratch par_scratch;
  reload();
  hs::cpu::radix_sort_parallel(pool, std::span<T>(work), 0, &par_scratch);
  const double t_par = best_of(g_trials, [&] {
    reload();
    hs::cpu::radix_sort_parallel(pool, std::span<T>(work), 0, &par_scratch);
  });
  HS_EXPECTS_MSG(work == expect, "parallel radix diverged from seed");

  RadixSeries s;
  s.type = type;
  s.dist = std::string(hs::data::distribution_name(dist));
  const double m = static_cast<double>(input.size()) / 1e6;
  s.seed_meps = m / (t_seed - t_copy);
  s.engine_meps = m / (t_engine - t_copy);
  s.parallel_meps = m / (t_par - t_copy);
  s.executed_passes = passes;
  s.speedup = (t_seed - t_copy) / (t_engine - t_copy);
  std::printf(
      "%-5s %-15s seed %7.1f M/s   engine %7.1f M/s   par %7.1f M/s   "
      "passes %u/8   speedup %.2fx\n",
      type.c_str(), s.dist.c_str(), s.seed_meps, s.engine_meps,
      s.parallel_meps, passes, s.speedup);
  return s;
}

// Planner series: simulated end-to-end time of the distribution-adaptive
// sort planner against the fixed radix-LSD baseline on platform 1 (GP100),
// per input distribution. The sketch is computed from real generated keys
// (2^20 of them) and scaled to the paper-sized population, so the planner
// sees exactly what a real run of that distribution would hand it; the
// pipeline itself runs in timing-only mode. Everything reported here is
// virtual time — machine-independent — so compare_bench.py checks these
// fields exactly even on smoke runs.
struct PlannerSeries {
  std::string type;
  std::string dist;
  std::string engine;  // engine the adaptive planner chose
  unsigned passes = 0;
  double log2_distinct = 0;
  double baseline_s = 0;  // fixed radix-LSD end-to-end (simulated)
  double adaptive_s = 0;  // adaptive planner end-to-end (simulated)
  double improvement = 0;  // baseline / adaptive
};

constexpr std::uint64_t kPlannerSimElems = 200'000'000;  // paper-scale n
constexpr std::uint64_t kPlannerSampleElems = std::uint64_t{1} << 20;

/// Sample keys for the planner sketch, in the lane's u64 total-order key
/// image (the space the sketcher and every engine operate in).
template <typename T>
std::vector<std::uint64_t> make_sketch_keys(Distribution dist) {
  if constexpr (std::is_same_v<T, std::int32_t>) {
    const auto v = hs::data::generate_values<std::int32_t>(
        dist, kPlannerSampleElems, 17);
    std::vector<std::uint64_t> keys(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
      keys[i] = hs::cpu::i32_total_key(v[i]);
    }
    return keys;
  } else if constexpr (std::is_same_v<T, float>) {
    const auto v =
        hs::data::generate_values<float>(dist, kPlannerSampleElems, 17);
    std::vector<std::uint64_t> keys(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
      keys[i] = hs::cpu::f32_total_key(v[i]);
    }
    return keys;
  } else {
    return hs::data::generate_keys(dist, kPlannerSampleElems, 17);
  }
}

template <typename T>
PlannerSeries run_planner(const std::string& type, Distribution dist) {
  const auto keys = make_sketch_keys<T>(dist);
  const hs::data::InputSketch sketch =
      hs::data::sketch_keys(keys, kPlannerSimElems);

  const auto simulate = [&](hs::core::DeviceEnginePolicy policy,
                            bool with_hint) {
    hs::core::SortConfig cfg;
    cfg.device_engine = policy;
    // The baseline is the pre-portfolio path: fixed radix, no planner at
    // all (without a hint the kFixedRadix policy never invokes it).
    cfg.has_planner_hint = with_hint;
    if (with_hint) cfg.planner_hint = sketch;
    hs::core::HeterogeneousSorter sorter(hs::model::platform1(), cfg);
    return sorter.simulate(kPlannerSimElems, hs::cpu::element_ops<T>());
  };

  const hs::core::Report base =
      simulate(hs::core::DeviceEnginePolicy::kFixedRadix, false);
  const hs::core::Report adapt =
      simulate(hs::core::DeviceEnginePolicy::kAdaptive, true);

  PlannerSeries s;
  s.type = type;
  s.dist = std::string(hs::data::distribution_name(dist));
  s.engine = adapt.device_engine;
  s.passes = adapt.plan_passes;
  s.log2_distinct = adapt.plan_log2_distinct;
  s.baseline_s = base.end_to_end;
  s.adaptive_s = adapt.end_to_end;
  s.improvement = base.end_to_end / adapt.end_to_end;
  std::printf(
      "plan  %-5s %-15s engine %-10s passes %u   log2d %5.1f   "
      "base %.3fs   adaptive %.3fs   %.2fx\n",
      type.c_str(), s.dist.c_str(), s.engine.c_str(), s.passes,
      s.log2_distinct, s.baseline_s, s.adaptive_s, s.improvement);
  return s;
}

struct MemcpySeries {
  std::size_t bytes = 0;
  double memcpy_gbps = 0;
  double stream_gbps = 0;
  double parallel_gbps = 0;
};

MemcpySeries run_memcpy(hs::cpu::ThreadPool& pool, std::size_t bytes) {
  std::vector<std::uint64_t> src(bytes / sizeof(std::uint64_t), 0x55aa55aaull);
  std::vector<std::uint64_t> dst(src.size());
  const double gb = static_cast<double>(bytes) / 1e9;

  MemcpySeries s;
  s.bytes = bytes;
  s.memcpy_gbps =
      gb / best_of(g_trials, [&] { std::memcpy(dst.data(), src.data(), bytes); });
  s.stream_gbps = gb / best_of(g_trials, [&] {
                    hs::cpu::memcpy_stream(dst.data(), src.data(), bytes);
                  });
  s.parallel_gbps = gb / best_of(g_trials, [&] {
                      hs::cpu::parallel_memcpy(pool, dst.data(), src.data(),
                                               bytes);
                    });
  HS_EXPECTS_MSG(dst == src, "copy diverged");
  std::printf(
      "memcpy %9zu B   memcpy %6.2f GB/s   stream %6.2f GB/s   par %6.2f "
      "GB/s\n",
      bytes, s.memcpy_gbps, s.stream_gbps, s.parallel_gbps);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_sortpath.json";
  const bool smoke = smoke_mode();
  if (smoke) {
    g_sort_elems = std::uint64_t{1} << 19;  // 512k: seconds, not minutes
    g_trials = 2;
    std::printf("HETSORT_BENCH_SMOKE=1: %llu elements, %d trials\n",
                static_cast<unsigned long long>(g_sort_elems), g_trials);
  }
  hs::cpu::ThreadPool pool;

  std::vector<RadixSeries> radix;
  for (const Distribution dist :
       {Distribution::kUniform, Distribution::kDuplicateHeavy}) {
    radix.push_back(run_radix<std::uint64_t>(pool, "u64", dist));
    radix.push_back(run_radix<double>(pool, "f64", dist));
    radix.push_back(run_radix<hs::KeyValue64>(pool, "kv64", dist));
  }

  std::vector<PlannerSeries> planner;
  planner.push_back(run_planner<std::uint64_t>("u64", Distribution::kUniform));
  planner.push_back(
      run_planner<std::uint64_t>("u64", Distribution::kDuplicateHeavy));
  planner.push_back(run_planner<std::uint64_t>("u64", Distribution::kZipf));
  planner.push_back(run_planner<std::uint64_t>("u64", Distribution::kSorted));
  planner.push_back(
      run_planner<hs::KeyValue64>("kv64", Distribution::kDuplicateHeavy));
  // New-lane pins: the distribution-driven engine flips must reproduce on
  // the 32-bit lanes (ISSUE 9's acceptance) — dup-heavy i32 collapses
  // cardinality (sample sort), sorted f32 elides passes (hybrid, <= 4 by
  // the 4-byte key image alone).
  planner.push_back(
      run_planner<std::int32_t>("i32", Distribution::kDuplicateHeavy));
  planner.push_back(run_planner<float>("f32", Distribution::kSorted));

  std::vector<MemcpySeries> copies;
  std::vector<std::size_t> copy_sizes = {std::size_t{1} << 20,
                                         std::size_t{16} << 20};
  if (!smoke) copy_sizes.push_back(std::size_t{128} << 20);
  for (const std::size_t bytes : copy_sizes) {
    copies.push_back(run_memcpy(pool, bytes));
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  HS_EXPECTS_MSG(f != nullptr, "cannot open output file");
  std::fprintf(f, "{\n  \"bench\": \"sortpath\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"sort_elements\": %llu,\n",
               static_cast<unsigned long long>(g_sort_elems));
  std::fprintf(f, "  \"trials\": %d,\n  \"pool_threads\": %u,\n", g_trials,
               pool.size());
  std::fprintf(f, "  \"radix_units\": \"million elements per second\",\n");
  std::fprintf(f, "  \"radix\": [\n");
  for (std::size_t i = 0; i < radix.size(); ++i) {
    const RadixSeries& s = radix[i];
    std::fprintf(f,
                 "    {\"type\": \"%s\", \"dist\": \"%s\", \"seed\": %.1f, "
                 "\"engine\": %.1f, \"parallel\": %.1f, "
                 "\"executed_passes\": %u, \"speedup\": %.2f}%s\n",
                 s.type.c_str(), s.dist.c_str(), s.seed_meps, s.engine_meps,
                 s.parallel_meps, s.executed_passes, s.speedup,
                 i + 1 < radix.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"planner_units\": \"simulated seconds, platform1, "
               "%llu elements\",\n",
               static_cast<unsigned long long>(kPlannerSimElems));
  std::fprintf(f, "  \"planner\": [\n");
  for (std::size_t i = 0; i < planner.size(); ++i) {
    const PlannerSeries& s = planner[i];
    std::fprintf(f,
                 "    {\"type\": \"%s\", \"dist\": \"%s\", \"engine\": "
                 "\"%s\", \"passes\": %u, \"log2_distinct\": %.1f, "
                 "\"baseline_s\": %.4f, \"adaptive_s\": %.4f, "
                 "\"improvement\": %.3f}%s\n",
                 s.type.c_str(), s.dist.c_str(), s.engine.c_str(), s.passes,
                 s.log2_distinct, s.baseline_s, s.adaptive_s, s.improvement,
                 i + 1 < planner.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"memcpy_units\": \"GB per second\",\n");
  std::fprintf(f, "  \"memcpy\": [\n");
  for (std::size_t i = 0; i < copies.size(); ++i) {
    const MemcpySeries& s = copies[i];
    std::fprintf(f,
                 "    {\"bytes\": %zu, \"memcpy\": %.2f, \"stream\": %.2f, "
                 "\"parallel\": %.2f}%s\n",
                 s.bytes, s.memcpy_gbps, s.stream_gbps, s.parallel_gbps,
                 i + 1 < copies.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
