// Shared helpers for the figure/table bench harnesses.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>

#include "common/table.h"
#include "common/units.h"
#include "core/het_sorter.h"
#include "core/sort_config.h"
#include "model/platforms.h"

namespace hs::bench {

/// Runs one timing-only simulation and returns the report. The simulator is
/// deterministic, so the paper's 3-trial averaging collapses to one run; we
/// still note the methodology in each harness banner.
inline core::Report simulate(const model::Platform& platform,
                             core::SortConfig cfg, std::uint64_t n) {
  core::HeterogeneousSorter sorter(platform, cfg);
  return sorter.simulate(n);
}

inline core::SortConfig approach_config(core::Approach a, std::uint64_t bs,
                                        unsigned gpus = 1,
                                        unsigned memcpy_threads = 1) {
  core::SortConfig cfg;
  cfg.approach = a;
  cfg.batch_size = bs;
  cfg.num_gpus = gpus;
  cfg.memcpy_threads = memcpy_threads;
  return cfg;
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "==========================================================\n"
            << title << "\n"
            << "reproduces: " << paper_ref << "\n"
            << "timing source: deterministic discrete-event simulation of\n"
            << "the platform (see DESIGN.md); paper methodology averaged 3\n"
            << "wall-clock trials.\n"
            << "==========================================================\n";
}

}  // namespace hs::bench
