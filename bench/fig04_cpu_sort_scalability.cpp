// Figure 4: scalability of the CPU reference implementations on PLATFORM1.
// (a) response time vs threads for GNU parallel sort and TBB at
//     n = 1e5..1e8, plus sequential std::sort and std::qsort;
// (b) speedup vs threads for the GNU parallel sort.
//
// Times come from the calibrated CpuSortModel (the CI host has one core; see
// DESIGN.md). The real parallel_sort implementation is exercised for
// correctness in tests/ and measured by micro_host_algorithms.
#include <iostream>
#include <vector>

#include "bench_util.h"

using namespace hs;

int main() {
  bench::banner("Figure 4 — CPU sort scalability on PLATFORM1",
                "Fig 4a/4b; paper: speedups 3.17x (n=1e5) to 10.12x (n=1e8) "
                "at 16 threads; TBB slower than GNU at large n; qsort ~2x "
                "slower than std::sort");

  const model::Platform p = model::platform1();
  const std::vector<std::uint64_t> sizes{100'000, 1'000'000, 10'000'000,
                                         100'000'000};

  print_section(std::cout, "(a) response time [s] vs threads");
  Table a({"threads", "gnu_1e5", "gnu_1e6", "gnu_1e7", "gnu_1e8", "tbb_1e5",
           "tbb_1e6", "tbb_1e7", "tbb_1e8", "std_sort_1e8", "std_qsort_1e8"});
  for (unsigned threads = 1; threads <= 16; ++threads) {
    auto& row = a.row().add(static_cast<int>(threads));
    for (const auto n : sizes) {
      row.add(model::reference_sort_time(p, model::CpuSortLibrary::kGnuParallel,
                                         n, threads),
              4);
    }
    for (const auto n : sizes) {
      row.add(model::reference_sort_time(p, model::CpuSortLibrary::kTbb, n,
                                         threads),
              4);
    }
    row.add(model::reference_sort_time(p, model::CpuSortLibrary::kStdSort,
                                       100'000'000, 1),
            4);
    row.add(model::reference_sort_time(p, model::CpuSortLibrary::kStdQsort,
                                       100'000'000, 1),
            4);
  }
  a.print(std::cout);
  a.print_csv(std::cout);

  print_section(std::cout, "(b) GNU parallel sort speedup vs threads");
  Table b({"threads", "n=1e5", "n=1e6", "n=1e7", "n=1e8", "perfect"});
  for (unsigned threads = 1; threads <= 16; ++threads) {
    auto& row = b.row().add(static_cast<int>(threads));
    for (const auto n : sizes) row.add(p.cpu_sort.speedup(threads, n), 2);
    row.add(static_cast<int>(threads));
  }
  b.print(std::cout);
  b.print_csv(std::cout);

  print_paper_check(std::cout, "speedup @16 threads, n=1e5", 3.17,
                    p.cpu_sort.speedup(16, 100'000));
  print_paper_check(std::cout, "speedup @16 threads, n=1e8", 10.12,
                    p.cpu_sort.speedup(16, 100'000'000));
  print_paper_check(
      std::cout, "qsort / std::sort ratio", 2.0,
      model::reference_sort_time(p, model::CpuSortLibrary::kStdQsort,
                                 100'000'000, 1) /
          model::reference_sort_time(p, model::CpuSortLibrary::kStdSort,
                                     100'000'000, 1));
  print_paper_check(
      std::cout, "TBB/GNU ratio at n=1e8 (>1: GNU wins)", 1.2,
      model::reference_sort_time(p, model::CpuSortLibrary::kTbb, 100'000'000,
                                 16) /
          model::reference_sort_time(p, model::CpuSortLibrary::kGnuParallel,
                                     100'000'000, 16));
  return 0;
}
