// Figure 5: BLINE end-to-end response time vs n (single batch, PLATFORM2),
// against the 20-thread CPU reference, with the CPU/GPU time ratio on the
// right axis. Paper: ratio between 1.22 and 1.32 across the shown sizes.
#include <iostream>
#include <vector>

#include "bench_util.h"

using namespace hs;

int main() {
  bench::banner("Figure 5 — BLINE vs CPU reference on PLATFORM2 (nb = 1)",
                "Fig 5; paper: CPU/GPU response-time ratio 1.22..1.32");

  const model::Platform p = model::platform2();
  const std::vector<std::uint64_t> sizes{100'000'000, 200'000'000, 300'000'000,
                                         400'000'000, 500'000'000, 600'000'000,
                                         700'000'000};
  Table t({"n", "GiB", "bline_s", "ref20_s", "ratio"});
  double ratio_min = 1e9, ratio_max = 0;
  for (const auto n : sizes) {
    const auto cfg = bench::approach_config(core::Approach::kBLine, n);
    const auto r = bench::simulate(p, cfg, n);
    const double ratio = r.reference_cpu_time / r.end_to_end;
    ratio_min = std::min(ratio_min, ratio);
    ratio_max = std::max(ratio_max, ratio);
    t.row()
        .add(n)
        .add(to_gib(bytes_of_elems(n)), 3)
        .add(r.end_to_end, 3)
        .add(r.reference_cpu_time, 3)
        .add(ratio, 3);
  }
  t.print(std::cout);
  t.print_csv(std::cout);

  print_paper_check(std::cout, "min CPU/GPU ratio", 1.22, ratio_min);
  print_paper_check(std::cout, "max CPU/GPU ratio", 1.32, ratio_max);
  return 0;
}
