// Figure 6: pair-wise merge scalability on PLATFORM1 — (a) response time and
// (b) speedup for merging two sorted runs of 5e8 elements each (n = 1e9)
// with 1..16 threads. Paper: 8.14x speedup on 16 cores; a moderate speedup
// is expected since merging is O(n) and memory-bound.
#include <iostream>

#include "bench_util.h"

using namespace hs;

int main() {
  bench::banner("Figure 6 — pairwise merge scalability on PLATFORM1",
                "Fig 6a/6b; paper: 8.14x speedup at 16 threads, n = 1e9");

  const model::Platform p = model::platform1();
  constexpr std::uint64_t kN = 1'000'000'000;  // two runs of n/2

  Table t({"threads", "time_s", "speedup", "perfect"});
  for (unsigned threads = 1; threads <= 16; ++threads) {
    t.row()
        .add(static_cast<int>(threads))
        .add(p.cpu_merge.time(kN, 2, threads), 4)
        .add(p.cpu_merge.speedup(threads), 2)
        .add(static_cast<int>(threads));
  }
  t.print(std::cout);
  t.print_csv(std::cout);

  print_paper_check(std::cout, "merge speedup @16 threads", 8.14,
                    p.cpu_merge.speedup(16));
  return 0;
}
