// Figure 7: the three components of the related-work "end-to-end" time for
// sorting ~6 GB on PLATFORM1 — HtoD, DtoH, GPUSort — side by side with the
// values Stehle & Jacobsen report for CUB (estimated from Fig 8 of [5]).
//
// Paper's measured values: HtoD 0.536 s vs their 0.542 s; DtoH 0.484 s vs
// their 0.477 s — demonstrating that [5]'s "end-to-end" contains only these
// three components and none of the staging/allocation/sync overheads.
#include <iostream>

#include "bench_util.h"

using namespace hs;

namespace {
// Estimated from the CUB bar in Figure 8 of Stehle & Jacobsen (6 GB of
// key/value pairs on a Titan X) — the constants the paper compares against.
constexpr double kRelatedHtoD = 0.542;
constexpr double kRelatedDtoH = 0.477;
constexpr double kRelatedSort = 0.47;
}  // namespace

int main() {
  bench::banner("Figure 7 — end-to-end components at ~6 GB on PLATFORM1",
                "Fig 7; our HtoD/DtoH at pure pinned rate vs the related "
                "work's published values");

  const model::Platform p = model::platform1();
  constexpr std::uint64_t kN = 800'000'000;  // 5.96 GiB of doubles
  const auto cfg = bench::approach_config(core::Approach::kBLine, kN);
  const auto r = bench::simulate(p, cfg, kN);

  Table t({"component", "our_work_s", "related_work_s"});
  t.row().add("HtoD").add(r.related_htod, 3).add(kRelatedHtoD, 3);
  t.row().add("DtoH").add(r.related_dtoh, 3).add(kRelatedDtoH, 3);
  t.row().add("GPUSort").add(r.related_sort, 3).add(kRelatedSort, 3);
  t.row()
      .add("sum (their 'end-to-end')")
      .add(r.related_work_total, 3)
      .add(kRelatedHtoD + kRelatedDtoH + kRelatedSort, 3);
  t.row().add("full end-to-end (BLINE)").add(r.end_to_end, 3).add("-");
  t.print(std::cout);
  t.print_csv(std::cout);

  std::cout << "\nomitted by the related-work accounting:\n";
  Table o({"overhead", "seconds"});
  o.row().add("pinned allocation").add(r.busy.pinned_alloc, 3);
  o.row().add("pageable->pinned staging (StageIn)").add(r.busy.stage_in, 3);
  o.row().add("pinned->pageable staging (StageOut)").add(r.busy.stage_out, 3);
  o.row().add("device allocation").add(r.busy.device_alloc, 3);
  o.row().add("total missing overhead").add(r.missing_overhead(), 3);
  o.print(std::cout);
  o.print_csv(std::cout);

  // Paper's own measurements for this experiment (Section IV-E.1).
  print_paper_check(std::cout, "HtoD at pinned rate (s)", 0.536,
                    r.related_htod);
  print_paper_check(std::cout, "DtoH at pinned rate (s)", 0.484,
                    r.related_dtoh);
  print_paper_check(std::cout, "GPU sort of 8e8 doubles (s)", 0.9,
                    r.related_sort);

  // The related work's literal workload: 375 million 16-byte key/value
  // records = 6 GB (the paper substitutes 8e8 doubles "requiring comparable
  // time"; with generic element support we can also run the real thing).
  print_section(std::cout, "same experiment on 375M key/value records (6 GB)");
  constexpr std::uint64_t kKvN = 375'000'000;
  core::SortConfig kv_cfg = bench::approach_config(core::Approach::kBLine, kKvN);
  core::HeterogeneousSorter kv_sorter(p, kv_cfg);
  const auto rkv =
      kv_sorter.simulate(kKvN, hs::cpu::element_ops<hs::KeyValue64>());
  Table kv({"component", "kv64_s", "related_work_s"});
  kv.row().add("HtoD").add(rkv.related_htod, 3).add(kRelatedHtoD, 3);
  kv.row().add("DtoH").add(rkv.related_dtoh, 3).add(kRelatedDtoH, 3);
  kv.row().add("GPUSort").add(rkv.related_sort, 3).add(kRelatedSort, 3);
  kv.row().add("full end-to-end (BLINE)").add(rkv.end_to_end, 3).add("-");
  kv.print(std::cout);
  kv.print_csv(std::cout);
  print_paper_check(std::cout, "KV HtoD of 6 GB (s)", kRelatedHtoD,
                    rkv.related_htod);
  print_paper_check(std::cout, "KV GPU sort of 375M pairs (s)", kRelatedSort,
                    rkv.related_sort);
  return 0;
}
