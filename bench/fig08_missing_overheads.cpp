// Figure 8: the missing-overhead problem. Average response time vs n for the
// BLINE components on PLATFORM1 (nb = 1): the related-work accounting
// (HtoD + DtoH + GPUSort) against the full BLINE end-to-end time including
// pinned allocation, staging copies and per-chunk synchronisation. The gap
// between the two curves is the overhead omitted in [5].
#include <iostream>
#include <vector>

#include "bench_util.h"

using namespace hs;

int main() {
  bench::banner("Figure 8 — missing overheads vs n on PLATFORM1 (BLINE)",
                "Fig 8; purple/yellow markers of the paper: related-work "
                "HtoD 0.542 s and DtoH 0.477 s at n = 8e8");

  const model::Platform p = model::platform1();
  const std::vector<std::uint64_t> sizes{200'000'000, 400'000'000,
                                         600'000'000, 800'000'000,
                                         1'000'000'000};
  Table t({"n", "GiB", "htod_s", "dtoh_s", "sort_s", "related_total_s",
           "full_bline_s", "missing_overhead_s"});
  double missing_at_8e8 = 0, full_at_8e8 = 0, related_at_8e8 = 0;
  for (const auto n : sizes) {
    const auto cfg = bench::approach_config(core::Approach::kBLine, n);
    const auto r = bench::simulate(p, cfg, n);
    if (n == 800'000'000) {
      missing_at_8e8 = r.missing_overhead();
      full_at_8e8 = r.end_to_end;
      related_at_8e8 = r.related_work_total;
    }
    t.row()
        .add(n)
        .add(to_gib(bytes_of_elems(n)), 2)
        .add(r.related_htod, 3)
        .add(r.related_dtoh, 3)
        .add(r.related_sort, 3)
        .add(r.related_work_total, 3)
        .add(r.end_to_end, 3)
        .add(r.missing_overhead(), 3);
  }
  t.print(std::cout);
  t.print_csv(std::cout);

  std::cout << "\nat n = 8e8: full BLINE " << format_seconds(full_at_8e8)
            << " vs related-work " << format_seconds(related_at_8e8)
            << " -> missing overhead " << format_seconds(missing_at_8e8)
            << " (" << static_cast<int>(100.0 * missing_at_8e8 / full_at_8e8)
            << "% of the true end-to-end time)\n";

  // The paper's Figure 8 markers at n = 8e8.
  const auto cfg = bench::approach_config(core::Approach::kBLine, 800'000'000);
  const auto r = bench::simulate(p, cfg, 800'000'000);
  print_paper_check(std::cout, "related-work HtoD at n=8e8 (s)", 0.542,
                    r.related_htod);
  print_paper_check(std::cout, "related-work DtoH at n=8e8 (s)", 0.477,
                    r.related_dtoh);
  return 0;
}
