// Figure 9 (Experiment 1): response time vs n on PLATFORM1 for every
// approach, bs = 5e8, ns = 2. Paper landmarks:
//   * every approach beats the 16-thread CPU reference;
//   * fastest approach (PIPEMERGE + PARMEMCPY) speedups: 3.47x at n = 1e9,
//     3.21x at n = 5e9;
//   * BLINEMULTI 31.2 s vs PIPEDATA 25.55 s at n = 5e9 (22% faster);
//   * PARMEMCPY reduces PIPEDATA end-to-end by ~13%;
//   * PIPEMERGE only marginally improves on PIPEDATA at these batch counts.
#include <iostream>
#include <map>
#include <vector>

#include "bench_util.h"

using namespace hs;

int main() {
  bench::banner("Figure 9 — all approaches vs n on PLATFORM1 (bs = 5e8)",
                "Fig 9 / Experiment 1");

  const model::Platform p = model::platform1();
  constexpr std::uint64_t kBs = 500'000'000;
  const std::vector<std::uint64_t> sizes{1'000'000'000, 2'000'000'000,
                                         3'000'000'000, 4'000'000'000,
                                         5'000'000'000};

  struct Series {
    const char* name;
    core::Approach approach;
    unsigned memcpy_threads;
  };
  const std::vector<Series> series{
      {"BLineMulti", core::Approach::kBLineMulti, 1},
      {"PipeData", core::Approach::kPipeData, 1},
      {"PipeMerge", core::Approach::kPipeMerge, 1},
      {"PipeMerge+ParMemCpy", core::Approach::kPipeMerge, 4},
  };

  Table t({"n", "GiB", "BLineMulti", "PipeData", "PipeMerge",
           "PipeMerge+ParMemCpy", "RefImpl16T", "best_speedup"});
  std::map<std::pair<std::string, std::uint64_t>, double> results;
  for (const auto n : sizes) {
    auto& row = t.row().add(n).add(to_gib(bytes_of_elems(n)), 2);
    double ref = 0, best = 1e18;
    for (const auto& s : series) {
      const auto cfg =
          bench::approach_config(s.approach, kBs, 1, s.memcpy_threads);
      const auto r = bench::simulate(p, cfg, n);
      results[{s.name, n}] = r.end_to_end;
      ref = r.reference_cpu_time;
      best = std::min(best, r.end_to_end);
      row.add(r.end_to_end, 2);
    }
    row.add(ref, 2).add(ref / best, 2);
  }
  t.print(std::cout);
  t.print_csv(std::cout);

  const double ref1 = p.cpu_sort.time(1'000'000'000, 16);
  const double ref5 = p.cpu_sort.time(5'000'000'000, 16);
  print_paper_check(std::cout, "fastest speedup at n=1e9", 3.47,
                    ref1 / results[{"PipeMerge+ParMemCpy", 1'000'000'000}]);
  print_paper_check(std::cout, "fastest speedup at n=5e9", 3.21,
                    ref5 / results[{"PipeMerge+ParMemCpy", 5'000'000'000}]);
  print_paper_check(std::cout, "BLineMulti at n=5e9 (s)", 31.2,
                    results[{"BLineMulti", 5'000'000'000}]);
  print_paper_check(std::cout, "PipeData at n=5e9 (s)", 25.55,
                    results[{"PipeData", 5'000'000'000}]);
  print_paper_check(std::cout, "BLineMulti->PipeData improvement (%)", 22.0,
                    100.0 * (1.0 - results[{"PipeData", 5'000'000'000}] /
                                       results[{"BLineMulti", 5'000'000'000}]));

  // PARMEMCPY applied to PIPEDATA (the paper's 13% claim).
  const auto pd_par = bench::simulate(
      p, bench::approach_config(core::Approach::kPipeData, kBs, 1, 4),
      5'000'000'000);
  print_paper_check(std::cout, "ParMemCpy reduction on PipeData at 5e9 (%)",
                    13.0,
                    100.0 * (1.0 - pd_par.end_to_end /
                                       results[{"PipeData", 5'000'000'000}]));
  return 0;
}
