// Figure 10 (Experiment 2): response time vs n on PLATFORM2 with 1 vs 2
// GPUs, bs = 3.5e8. Paper landmarks:
//   * two GPUs beat every single-GPU configuration;
//   * fastest approach speedups vs the 20-thread reference: 1.89x at
//     n = 1.4e9 and 2.02x at n = 4.9e9;
//   * the spread between approaches shrinks with 2 GPUs because the shared
//     PCIe bus is already well utilised by BLINEMULTI.
#include <iostream>
#include <map>
#include <vector>

#include "bench_util.h"

using namespace hs;

int main() {
  bench::banner("Figure 10 — 1 vs 2 GPUs on PLATFORM2 (bs = 3.5e8)",
                "Fig 10 / Experiment 2");

  const model::Platform p = model::platform2();
  constexpr std::uint64_t kBs = 350'000'000;
  const std::vector<std::uint64_t> sizes{1'400'000'000, 2'100'000'000,
                                         2'800'000'000, 3'500'000'000,
                                         4'200'000'000, 4'900'000'000};

  struct Series {
    const char* name;
    core::Approach approach;
    unsigned memcpy_threads;
  };
  const std::vector<Series> series{
      {"BLineMulti", core::Approach::kBLineMulti, 1},
      {"PipeData", core::Approach::kPipeData, 1},
      {"PipeMerge", core::Approach::kPipeMerge, 1},
      {"PipeMerge+ParMemCpy", core::Approach::kPipeMerge, 4},
  };

  Table t({"n", "GiB", "BLineMulti_1g", "PipeData_1g", "PipeMerge_1g",
           "PM+PMC_1g", "BLineMulti_2g", "PipeData_2g", "PipeMerge_2g",
           "PM+PMC_2g", "Ref20T"});
  std::map<std::pair<std::string, std::uint64_t>, double> res;
  for (const auto n : sizes) {
    auto& row = t.row().add(n).add(to_gib(bytes_of_elems(n)), 2);
    double ref = 0;
    for (unsigned gpus = 1; gpus <= 2; ++gpus) {
      for (const auto& s : series) {
        const auto cfg =
            bench::approach_config(s.approach, kBs, gpus, s.memcpy_threads);
        const auto r = bench::simulate(p, cfg, n);
        res[{std::string(s.name) + "_" + std::to_string(gpus), n}] =
            r.end_to_end;
        ref = r.reference_cpu_time;
        row.add(r.end_to_end, 2);
      }
    }
    row.add(ref, 2);
  }
  t.print(std::cout);
  t.print_csv(std::cout);

  const double ref_small = p.cpu_sort.time(1'400'000'000, 20);
  const double ref_large = p.cpu_sort.time(4'900'000'000, 20);
  print_paper_check(std::cout, "fastest 2-GPU speedup at n=1.4e9", 1.89,
                    ref_small / res[{"PipeMerge+ParMemCpy_2", 1'400'000'000}]);
  print_paper_check(std::cout, "fastest 2-GPU speedup at n=4.9e9", 2.02,
                    ref_large / res[{"PipeMerge+ParMemCpy_2", 4'900'000'000}]);

  // Approach spread (slowest/fastest) must shrink with the second GPU.
  auto spread = [&](unsigned gpus) {
    const std::string suffix = "_" + std::to_string(gpus);
    const double worst = res[{"BLineMulti" + suffix, 4'900'000'000}];
    const double bst = res[{"PipeMerge+ParMemCpy" + suffix, 4'900'000'000}];
    return worst / bst;
  };
  std::cout << "approach spread at n=4.9e9: 1 GPU " << spread(1) << "x, 2 GPU "
            << spread(2) << "x (paper: spread shrinks with 2 GPUs)\n";
  return 0;
}
