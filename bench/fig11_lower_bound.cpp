// Figure 11 (Section IV-G): lower-bound baseline models vs PIPEDATA on
// PLATFORM2 with 1 and 2 GPUs. Paper landmarks:
//   * model slopes y = 6.278e-9 n (1 GPU) and y = 3.706e-9 n (2 GPUs);
//   * at n = 1.4e9 PIPEDATA beats the model (overlap pays for the merge);
//   * from n >= 2.1e9 the merge cost pulls PIPEDATA below the model;
//   * at n = 4.9e9 the slowdown is 0.93x (1 GPU) and 0.88x (2 GPUs) — worse
//     for 2 GPUs because the shared PCIe bus saturates.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/lower_bound.h"

using namespace hs;

int main() {
  bench::banner("Figure 11 — lower-bound models vs PIPEDATA on PLATFORM2",
                "Fig 11 / Section IV-G");

  const model::Platform p = model::platform2();
  constexpr std::uint64_t kBs = 350'000'000;
  // Calibration sizes mirror the paper: n = 7e8 fits one K40 with its sort
  // temporary; the 2-GPU run sorts 1.4e9 split across both devices.
  const auto lb = core::LowerBoundModel::derive(p, 700'000'000, 2);

  std::cout << "derived model slopes: 1 GPU " << lb.per_elem_1gpu
            << " s/elem, 2 GPU " << lb.per_elem_multi << " s/elem\n";
  print_paper_check(std::cout, "1-GPU model slope", 6.278e-9,
                    lb.per_elem_1gpu);
  print_paper_check(std::cout, "2-GPU model slope", 3.706e-9,
                    lb.per_elem_multi);

  const std::vector<std::uint64_t> sizes{1'400'000'000, 2'100'000'000,
                                         2'800'000'000, 3'500'000'000,
                                         4'200'000'000, 4'900'000'000};
  Table t({"n", "GiB", "pipedata_1g", "model_1g", "ratio_1g", "pipedata_2g",
           "model_2g", "ratio_2g"});
  double slow1 = 0, slow2 = 0, first_ratio1 = 0;
  for (const auto n : sizes) {
    const auto r1 = bench::simulate(
        p, bench::approach_config(core::Approach::kPipeData, kBs, 1), n);
    const auto r2 = bench::simulate(
        p, bench::approach_config(core::Approach::kPipeData, kBs, 2), n);
    const double m1 = lb.time(n, 1);
    const double m2 = lb.time(n, 2);
    if (n == sizes.front()) first_ratio1 = m1 / r1.end_to_end;
    if (n == sizes.back()) {
      slow1 = m1 / r1.end_to_end;
      slow2 = m2 / r2.end_to_end;
    }
    t.row()
        .add(n)
        .add(to_gib(bytes_of_elems(n)), 2)
        .add(r1.end_to_end, 2)
        .add(m1, 2)
        .add(m1 / r1.end_to_end, 3)
        .add(r2.end_to_end, 2)
        .add(m2, 2)
        .add(m2 / r2.end_to_end, 3);
  }
  t.print(std::cout);
  t.print_csv(std::cout);

  print_paper_check(std::cout, "1-GPU slowdown at n=4.9e9", 0.93, slow1);
  print_paper_check(std::cout, "2-GPU slowdown at n=4.9e9", 0.88, slow2);
  std::cout << "PIPEDATA beats the model at the smallest n (ratio > 1): "
            << (first_ratio1 > 1.0 ? "yes" : "no") << " (ratio "
            << first_ratio1 << ", paper: yes at n = 1.4e9)\n";
  return 0;
}
