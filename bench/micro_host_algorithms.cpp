// Google-benchmark microbenchmarks of the *real* host algorithms (wall-clock
// on the build machine, unlike the figure harnesses which use the calibrated
// virtual platform). Covers the primitives the pipeline executes in
// Execution::kReal: radix sort, parallel comparison sort, merge path,
// multiway merge, and parallel memcpy, across input distributions.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "common/key_value.h"
#include "cpu/inplace_merge.h"
#include "cpu/merge_path.h"
#include "cpu/multiway_merge.h"
#include "cpu/parallel_memcpy.h"
#include "cpu/parallel_quicksort.h"
#include "cpu/parallel_sort.h"
#include "cpu/sample_sort.h"
#include "cpu/radix_sort.h"
#include "data/generators.h"

namespace {

using hs::data::Distribution;

hs::cpu::ThreadPool& pool() {
  static hs::cpu::ThreadPool p;
  return p;
}

void BM_StdSort(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto input = hs::data::generate(Distribution::kUniform, n, 7);
  for (auto _ : state) {
    auto v = input;
    std::sort(v.begin(), v.end());
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_StdSort)->Arg(1 << 16)->Arg(1 << 20);

void BM_RadixSortDoubles(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto input = hs::data::generate(Distribution::kUniform, n, 7);
  for (auto _ : state) {
    auto v = input;
    hs::cpu::radix_sort(std::span<double>(v));
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_RadixSortDoubles)->Arg(1 << 16)->Arg(1 << 20);

void BM_RadixSortParallel(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto input = hs::data::generate(Distribution::kUniform, n, 7);
  for (auto _ : state) {
    auto v = input;
    hs::cpu::radix_sort_parallel(pool(), std::span<double>(v));
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_RadixSortParallel)->Arg(1 << 20);

void BM_ParallelSort(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto input = hs::data::generate(Distribution::kUniform, n, 7);
  for (auto _ : state) {
    auto v = input;
    hs::cpu::parallel_sort<double>(pool(), v);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ParallelSort)->Arg(1 << 20);

void BM_MergeParallel(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  auto a = hs::data::generate(Distribution::kUniform, n / 2, 1);
  auto b = hs::data::generate(Distribution::kUniform, n / 2, 2);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<double> out(n);
  for (auto _ : state) {
    hs::cpu::merge_parallel<double>(pool(), a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_MergeParallel)->Arg(1 << 20);

// The two sequential drain styles of the tournament tree: per-element pop
// (full root-to-leaf replay each time, the pre-block-drain behaviour) vs. the
// buffered block drain (runner-up bound + sentinel-free gallop). The ratio is
// the per-element overhead the host multiway stage no longer pays.
void BM_LoserTreePopDrain(benchmark::State& state) {
  const auto ways = static_cast<std::size_t>(state.range(0));
  constexpr std::uint64_t kPerRun = 1 << 16;
  std::vector<std::vector<double>> runs(ways);
  for (std::size_t r = 0; r < ways; ++r) {
    runs[r] = hs::data::generate(Distribution::kUniform, kPerRun, r + 1);
    std::sort(runs[r].begin(), runs[r].end());
  }
  std::vector<std::span<const double>> spans(runs.begin(), runs.end());
  std::vector<double> out(ways * kPerRun);
  for (auto _ : state) {
    hs::cpu::LoserTree<double> tree(spans);
    std::size_t i = 0;
    while (!tree.empty()) out[i++] = tree.pop();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(out.size()) *
                          state.iterations());
}
BENCHMARK(BM_LoserTreePopDrain)->Arg(4)->Arg(8)->Arg(32);

void BM_LoserTreeBlockDrain(benchmark::State& state) {
  const auto ways = static_cast<std::size_t>(state.range(0));
  constexpr std::uint64_t kPerRun = 1 << 16;
  std::vector<std::vector<double>> runs(ways);
  for (std::size_t r = 0; r < ways; ++r) {
    runs[r] = hs::data::generate(Distribution::kUniform, kPerRun, r + 1);
    std::sort(runs[r].begin(), runs[r].end());
  }
  std::vector<std::span<const double>> spans(runs.begin(), runs.end());
  std::vector<double> out(ways * kPerRun);
  hs::cpu::LoserTree<double> tree;
  for (auto _ : state) {
    tree.reset(spans);
    tree.drain(std::span<double>(out));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(out.size()) *
                          state.iterations());
}
BENCHMARK(BM_LoserTreeBlockDrain)->Arg(4)->Arg(8)->Arg(32);

void BM_MultiwayMerge(benchmark::State& state) {
  const auto ways = static_cast<std::size_t>(state.range(0));
  constexpr std::uint64_t kPerRun = 1 << 16;
  std::vector<std::vector<double>> runs(ways);
  for (std::size_t r = 0; r < ways; ++r) {
    runs[r] = hs::data::generate(Distribution::kUniform, kPerRun, r + 1);
    std::sort(runs[r].begin(), runs[r].end());
  }
  std::vector<std::span<const double>> spans(runs.begin(), runs.end());
  std::vector<double> out(ways * kPerRun);
  for (auto _ : state) {
    hs::cpu::multiway_merge_parallel(pool(), spans, std::span<double>(out));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(out.size()) *
                          state.iterations());
}
BENCHMARK(BM_MultiwayMerge)->Arg(2)->Arg(8)->Arg(20);

// Steady-state variant: the scratch carries samples, cuts, offsets and every
// lane's tree across iterations, so this measures the zero-allocation path
// the pipeline's ElementOps::multiway hook runs.
void BM_MultiwayMergeScratch(benchmark::State& state) {
  const auto ways = static_cast<std::size_t>(state.range(0));
  constexpr std::uint64_t kPerRun = 1 << 16;
  std::vector<std::vector<double>> runs(ways);
  for (std::size_t r = 0; r < ways; ++r) {
    runs[r] = hs::data::generate(Distribution::kUniform, kPerRun, r + 1);
    std::sort(runs[r].begin(), runs[r].end());
  }
  std::vector<std::span<const double>> spans(runs.begin(), runs.end());
  std::vector<double> out(ways * kPerRun);
  hs::cpu::MultiwayMergeScratch<double> scratch;
  for (auto _ : state) {
    auto spans_copy = spans;
    hs::cpu::multiway_merge_parallel(pool(), std::move(spans_copy),
                                     std::span<double>(out),
                                     std::less<double>{}, 0, &scratch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(out.size()) *
                          state.iterations());
}
BENCHMARK(BM_MultiwayMergeScratch)->Arg(8)->Arg(20);

void BM_ParallelMemcpy(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const std::vector<std::uint8_t> src(bytes, 0x5A);
  std::vector<std::uint8_t> dst(bytes);
  for (auto _ : state) {
    hs::cpu::parallel_memcpy(pool(), dst.data(), src.data(), bytes);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          state.iterations());
}
BENCHMARK(BM_ParallelMemcpy)->Arg(1 << 20)->Arg(1 << 24);

void BM_SampleSort(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto input = hs::data::generate(Distribution::kUniform, n, 7);
  for (auto _ : state) {
    auto v = input;
    hs::cpu::sample_sort<double>(pool(), v);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_SampleSort)->Arg(1 << 20);

void BM_ParallelQuicksort(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto input = hs::data::generate(Distribution::kUniform, n, 7);
  for (auto _ : state) {
    auto v = input;
    hs::cpu::parallel_quicksort<double>(pool(), v);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ParallelQuicksort)->Arg(1 << 20);

// The Section III-C trade-off: buffered merge is O(n) moves, the in-place
// rotation merge is O(n log n) moves — this pair quantifies the paper's
// "in-place merging leads to a decrease in performance".
void BM_BufferedMerge(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  auto v = hs::data::generate(Distribution::kUniform, n, 3);
  std::sort(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(n / 2));
  std::sort(v.begin() + static_cast<std::ptrdiff_t>(n / 2), v.end());
  std::vector<double> out(n);
  for (auto _ : state) {
    std::merge(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(n / 2),
               v.begin() + static_cast<std::ptrdiff_t>(n / 2), v.end(),
               out.begin());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_BufferedMerge)->Arg(1 << 20);

void BM_InplaceMergeRotation(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  auto base = hs::data::generate(Distribution::kUniform, n, 3);
  std::sort(base.begin(), base.begin() + static_cast<std::ptrdiff_t>(n / 2));
  std::sort(base.begin() + static_cast<std::ptrdiff_t>(n / 2), base.end());
  for (auto _ : state) {
    auto v = base;
    hs::cpu::inplace_merge_rotation<double>(v, n / 2);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_InplaceMergeRotation)->Arg(1 << 20);

void BM_RadixSortKeyValue(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto keys = hs::data::generate_keys(Distribution::kUniform, n, 7);
  std::vector<hs::KeyValue64> input(n);
  for (std::uint64_t i = 0; i < n; ++i) input[i] = {keys[i], i};
  for (auto _ : state) {
    auto v = input;
    hs::cpu::radix_sort(std::span<hs::KeyValue64>(v));
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_RadixSortKeyValue)->Arg(1 << 20);

void BM_SortByDistribution(benchmark::State& state) {
  const auto dist = static_cast<Distribution>(state.range(0));
  constexpr std::uint64_t kN = 1 << 18;
  const auto input = hs::data::generate(dist, kN, 7);
  for (auto _ : state) {
    auto v = input;
    hs::cpu::radix_sort(std::span<double>(v));
    benchmark::DoNotOptimize(v.data());
  }
  state.SetLabel(std::string(hs::data::distribution_name(dist)));
  state.SetItemsProcessed(static_cast<std::int64_t>(kN) * state.iterations());
}
BENCHMARK(BM_SortByDistribution)
    ->Arg(static_cast<int>(Distribution::kUniform))
    ->Arg(static_cast<int>(Distribution::kSorted))
    ->Arg(static_cast<int>(Distribution::kReverseSorted))
    ->Arg(static_cast<int>(Distribution::kDuplicateHeavy))
    ->Arg(static_cast<int>(Distribution::kZipf));

}  // namespace
