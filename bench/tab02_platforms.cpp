// Table II: hardware platforms, plus the calibration constants behind the
// simulated interconnect and the Section V bandwidth claims.
#include <iostream>

#include "bench_util.h"

using namespace hs;

int main() {
  bench::banner("Table II — hardware platforms (simulated)",
                "Gowanlock & Karsin 2018, Table II + Section V rates");

  Table t({"platform", "cpu", "cores", "clock", "host-mem", "gpu", "gpu-cores",
           "gpu-mem", "software"});
  for (const auto& p : {model::platform1(), model::platform2()}) {
    for (const auto& g : p.gpus) {
      t.row()
          .add(p.name)
          .add(p.cpu.model)
          .add(std::to_string(p.cpu.sockets) + "x" +
               std::to_string(p.cpu.cores_per_socket))
          .add([&] {
            char buf[16];
            std::snprintf(buf, sizeof buf, "%.1f GHz", p.cpu.clock_ghz);
            return std::string(buf);
          }())
          .add(format_bytes(p.cpu.memory_bytes))
          .add(g.model)
          .add(std::uint64_t{g.cuda_cores})
          .add(format_bytes(g.memory_bytes))
          .add(p.software);
    }
  }
  t.print(std::cout);
  t.print_csv(std::cout);

  print_section(std::cout, "calibration constants");
  Table c({"platform", "pinned GB/s", "pageable GB/s", "gpu sort Melem/s",
           "cpu seq sort ns/elem/log2n", "merge ns/elem/level",
           "memcpy 1T GB/s"});
  for (const auto& p : {model::platform1(), model::platform2()}) {
    c.row()
        .add(p.name)
        .add(p.pcie.pinned_bps / 1e9, 2)
        .add(p.pcie.pageable_bps / 1e9, 2)
        .add(p.gpus[0].sort.throughput() / 1e6, 1)
        .add(p.cpu_sort.seq_coeff * 1e9, 2)
        .add(p.cpu_merge.per_elem_seq * 1e9, 2)
        .add(p.host_memcpy.per_thread_bps / 1e9, 2);
  }
  c.print(std::cout);
  c.print_csv(std::cout);

  print_section(std::cout, "Section V bandwidth claims");
  const auto p1 = model::platform1();
  // "Our pinned memory data transfers occur at ~12 GB/s, which is 75% of the
  // peak PCIe v.3 bandwidth of 16 GB/s."
  print_paper_check(std::cout, "pinned transfer rate (GB/s)", 12.0,
                    p1.pcie.pinned_bps / 1e9);
  print_paper_check(std::cout, "pinned fraction of 16 GB/s peak", 0.75,
                    p1.pcie.pinned_bps / 16.0e9);
  // "throughput improvements of up to a factor ~2x over copies without
  // pinned memory".
  print_paper_check(std::cout, "pinned/pageable throughput ratio", 2.0,
                    p1.pcie.pinned_bps / p1.pcie.pageable_bps);
  return 0;
}
