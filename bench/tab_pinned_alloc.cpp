// Pinned-buffer sizing trade-off (Section IV-E.1 text): allocating ps = 1e6
// elements costs 0.01 s while pinning the whole 8e8-element input costs
// 2.2 s — more than the sum of the Fig 7 components — so a small reusable
// staging buffer wins. This harness sweeps ps and reports both the
// allocation cost and the resulting BLINE end-to-end time at n = 8e8,
// exposing the U-shaped trade-off (sync-dominated at tiny ps, allocation-
// dominated at huge ps).
#include <iostream>
#include <vector>

#include "bench_util.h"

using namespace hs;

int main() {
  bench::banner("Pinned staging buffer sweep on PLATFORM1 (BLINE, n = 8e8)",
                "Section IV-E.1: alloc(1e6 elems) = 0.01 s, "
                "alloc(8e8 elems) = 2.2 s");

  const model::Platform p = model::platform1();
  constexpr std::uint64_t kN = 800'000'000;
  const std::vector<std::uint64_t> ps_values{
      10'000,     50'000,      100'000,     500'000,    1'000'000,
      5'000'000,  25'000'000,  100'000'000, 400'000'000, 800'000'000};

  Table t({"ps_elems", "ps_bytes", "alloc_s", "chunks", "bline_total_s"});
  for (const auto ps : ps_values) {
    auto cfg = bench::approach_config(core::Approach::kBLine, kN);
    cfg.staging_elems = ps;
    const auto r = bench::simulate(p, cfg, kN);
    t.row()
        .add(ps)
        .add(format_bytes(bytes_of_elems(ps)))
        .add(p.pinned_alloc.time(bytes_of_elems(ps)), 4)
        .add((kN + ps - 1) / ps)
        .add(r.end_to_end, 3);
  }
  t.print(std::cout);
  t.print_csv(std::cout);

  print_paper_check(std::cout, "alloc time at ps=1e6 (s)", 0.01,
                    p.pinned_alloc.time(bytes_of_elems(1'000'000)));
  print_paper_check(std::cout, "alloc time at ps=8e8 (s)", 2.2,
                    p.pinned_alloc.time(bytes_of_elems(800'000'000)));
  return 0;
}
