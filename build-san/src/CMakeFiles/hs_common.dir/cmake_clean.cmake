file(REMOVE_RECURSE
  "CMakeFiles/hs_common.dir/common/assert.cpp.o"
  "CMakeFiles/hs_common.dir/common/assert.cpp.o.d"
  "CMakeFiles/hs_common.dir/common/rng.cpp.o"
  "CMakeFiles/hs_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/hs_common.dir/common/table.cpp.o"
  "CMakeFiles/hs_common.dir/common/table.cpp.o.d"
  "CMakeFiles/hs_common.dir/common/units.cpp.o"
  "CMakeFiles/hs_common.dir/common/units.cpp.o.d"
  "libhs_common.a"
  "libhs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
