
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/batch_plan.cpp" "src/CMakeFiles/hs_core.dir/core/batch_plan.cpp.o" "gcc" "src/CMakeFiles/hs_core.dir/core/batch_plan.cpp.o.d"
  "/root/repo/src/core/het_sorter.cpp" "src/CMakeFiles/hs_core.dir/core/het_sorter.cpp.o" "gcc" "src/CMakeFiles/hs_core.dir/core/het_sorter.cpp.o.d"
  "/root/repo/src/core/lower_bound.cpp" "src/CMakeFiles/hs_core.dir/core/lower_bound.cpp.o" "gcc" "src/CMakeFiles/hs_core.dir/core/lower_bound.cpp.o.d"
  "/root/repo/src/core/merge_schedule.cpp" "src/CMakeFiles/hs_core.dir/core/merge_schedule.cpp.o" "gcc" "src/CMakeFiles/hs_core.dir/core/merge_schedule.cpp.o.d"
  "/root/repo/src/core/pipeline_builder.cpp" "src/CMakeFiles/hs_core.dir/core/pipeline_builder.cpp.o" "gcc" "src/CMakeFiles/hs_core.dir/core/pipeline_builder.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/hs_core.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/hs_core.dir/core/report.cpp.o.d"
  "/root/repo/src/core/sort_config.cpp" "src/CMakeFiles/hs_core.dir/core/sort_config.cpp.o" "gcc" "src/CMakeFiles/hs_core.dir/core/sort_config.cpp.o.d"
  "/root/repo/src/core/staging.cpp" "src/CMakeFiles/hs_core.dir/core/staging.cpp.o" "gcc" "src/CMakeFiles/hs_core.dir/core/staging.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-san/src/CMakeFiles/hs_common.dir/DependInfo.cmake"
  "/root/repo/build-san/src/CMakeFiles/hs_sim.dir/DependInfo.cmake"
  "/root/repo/build-san/src/CMakeFiles/hs_cpu.dir/DependInfo.cmake"
  "/root/repo/build-san/src/CMakeFiles/hs_model.dir/DependInfo.cmake"
  "/root/repo/build-san/src/CMakeFiles/hs_vgpu.dir/DependInfo.cmake"
  "/root/repo/build-san/src/CMakeFiles/hs_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
