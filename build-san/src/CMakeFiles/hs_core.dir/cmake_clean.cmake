file(REMOVE_RECURSE
  "CMakeFiles/hs_core.dir/core/batch_plan.cpp.o"
  "CMakeFiles/hs_core.dir/core/batch_plan.cpp.o.d"
  "CMakeFiles/hs_core.dir/core/het_sorter.cpp.o"
  "CMakeFiles/hs_core.dir/core/het_sorter.cpp.o.d"
  "CMakeFiles/hs_core.dir/core/lower_bound.cpp.o"
  "CMakeFiles/hs_core.dir/core/lower_bound.cpp.o.d"
  "CMakeFiles/hs_core.dir/core/merge_schedule.cpp.o"
  "CMakeFiles/hs_core.dir/core/merge_schedule.cpp.o.d"
  "CMakeFiles/hs_core.dir/core/pipeline_builder.cpp.o"
  "CMakeFiles/hs_core.dir/core/pipeline_builder.cpp.o.d"
  "CMakeFiles/hs_core.dir/core/report.cpp.o"
  "CMakeFiles/hs_core.dir/core/report.cpp.o.d"
  "CMakeFiles/hs_core.dir/core/sort_config.cpp.o"
  "CMakeFiles/hs_core.dir/core/sort_config.cpp.o.d"
  "CMakeFiles/hs_core.dir/core/staging.cpp.o"
  "CMakeFiles/hs_core.dir/core/staging.cpp.o.d"
  "libhs_core.a"
  "libhs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
