file(REMOVE_RECURSE
  "libhs_core.a"
)
