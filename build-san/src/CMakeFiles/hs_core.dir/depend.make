# Empty dependencies file for hs_core.
# This may be replaced when dependencies are built.
