
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/element_ops.cpp" "src/CMakeFiles/hs_cpu.dir/cpu/element_ops.cpp.o" "gcc" "src/CMakeFiles/hs_cpu.dir/cpu/element_ops.cpp.o.d"
  "/root/repo/src/cpu/inplace_merge.cpp" "src/CMakeFiles/hs_cpu.dir/cpu/inplace_merge.cpp.o" "gcc" "src/CMakeFiles/hs_cpu.dir/cpu/inplace_merge.cpp.o.d"
  "/root/repo/src/cpu/loser_tree.cpp" "src/CMakeFiles/hs_cpu.dir/cpu/loser_tree.cpp.o" "gcc" "src/CMakeFiles/hs_cpu.dir/cpu/loser_tree.cpp.o.d"
  "/root/repo/src/cpu/merge_path.cpp" "src/CMakeFiles/hs_cpu.dir/cpu/merge_path.cpp.o" "gcc" "src/CMakeFiles/hs_cpu.dir/cpu/merge_path.cpp.o.d"
  "/root/repo/src/cpu/multiway_merge.cpp" "src/CMakeFiles/hs_cpu.dir/cpu/multiway_merge.cpp.o" "gcc" "src/CMakeFiles/hs_cpu.dir/cpu/multiway_merge.cpp.o.d"
  "/root/repo/src/cpu/parallel_for.cpp" "src/CMakeFiles/hs_cpu.dir/cpu/parallel_for.cpp.o" "gcc" "src/CMakeFiles/hs_cpu.dir/cpu/parallel_for.cpp.o.d"
  "/root/repo/src/cpu/parallel_memcpy.cpp" "src/CMakeFiles/hs_cpu.dir/cpu/parallel_memcpy.cpp.o" "gcc" "src/CMakeFiles/hs_cpu.dir/cpu/parallel_memcpy.cpp.o.d"
  "/root/repo/src/cpu/parallel_quicksort.cpp" "src/CMakeFiles/hs_cpu.dir/cpu/parallel_quicksort.cpp.o" "gcc" "src/CMakeFiles/hs_cpu.dir/cpu/parallel_quicksort.cpp.o.d"
  "/root/repo/src/cpu/parallel_sort.cpp" "src/CMakeFiles/hs_cpu.dir/cpu/parallel_sort.cpp.o" "gcc" "src/CMakeFiles/hs_cpu.dir/cpu/parallel_sort.cpp.o.d"
  "/root/repo/src/cpu/radix_sort.cpp" "src/CMakeFiles/hs_cpu.dir/cpu/radix_sort.cpp.o" "gcc" "src/CMakeFiles/hs_cpu.dir/cpu/radix_sort.cpp.o.d"
  "/root/repo/src/cpu/sample_sort.cpp" "src/CMakeFiles/hs_cpu.dir/cpu/sample_sort.cpp.o" "gcc" "src/CMakeFiles/hs_cpu.dir/cpu/sample_sort.cpp.o.d"
  "/root/repo/src/cpu/thread_pool.cpp" "src/CMakeFiles/hs_cpu.dir/cpu/thread_pool.cpp.o" "gcc" "src/CMakeFiles/hs_cpu.dir/cpu/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-san/src/CMakeFiles/hs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
