file(REMOVE_RECURSE
  "CMakeFiles/hs_cpu.dir/cpu/element_ops.cpp.o"
  "CMakeFiles/hs_cpu.dir/cpu/element_ops.cpp.o.d"
  "CMakeFiles/hs_cpu.dir/cpu/inplace_merge.cpp.o"
  "CMakeFiles/hs_cpu.dir/cpu/inplace_merge.cpp.o.d"
  "CMakeFiles/hs_cpu.dir/cpu/loser_tree.cpp.o"
  "CMakeFiles/hs_cpu.dir/cpu/loser_tree.cpp.o.d"
  "CMakeFiles/hs_cpu.dir/cpu/merge_path.cpp.o"
  "CMakeFiles/hs_cpu.dir/cpu/merge_path.cpp.o.d"
  "CMakeFiles/hs_cpu.dir/cpu/multiway_merge.cpp.o"
  "CMakeFiles/hs_cpu.dir/cpu/multiway_merge.cpp.o.d"
  "CMakeFiles/hs_cpu.dir/cpu/parallel_for.cpp.o"
  "CMakeFiles/hs_cpu.dir/cpu/parallel_for.cpp.o.d"
  "CMakeFiles/hs_cpu.dir/cpu/parallel_memcpy.cpp.o"
  "CMakeFiles/hs_cpu.dir/cpu/parallel_memcpy.cpp.o.d"
  "CMakeFiles/hs_cpu.dir/cpu/parallel_quicksort.cpp.o"
  "CMakeFiles/hs_cpu.dir/cpu/parallel_quicksort.cpp.o.d"
  "CMakeFiles/hs_cpu.dir/cpu/parallel_sort.cpp.o"
  "CMakeFiles/hs_cpu.dir/cpu/parallel_sort.cpp.o.d"
  "CMakeFiles/hs_cpu.dir/cpu/radix_sort.cpp.o"
  "CMakeFiles/hs_cpu.dir/cpu/radix_sort.cpp.o.d"
  "CMakeFiles/hs_cpu.dir/cpu/sample_sort.cpp.o"
  "CMakeFiles/hs_cpu.dir/cpu/sample_sort.cpp.o.d"
  "CMakeFiles/hs_cpu.dir/cpu/thread_pool.cpp.o"
  "CMakeFiles/hs_cpu.dir/cpu/thread_pool.cpp.o.d"
  "libhs_cpu.a"
  "libhs_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
