file(REMOVE_RECURSE
  "libhs_cpu.a"
)
