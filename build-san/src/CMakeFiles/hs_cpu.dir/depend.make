# Empty dependencies file for hs_cpu.
# This may be replaced when dependencies are built.
