
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/generators.cpp" "src/CMakeFiles/hs_data.dir/data/generators.cpp.o" "gcc" "src/CMakeFiles/hs_data.dir/data/generators.cpp.o.d"
  "/root/repo/src/data/verify.cpp" "src/CMakeFiles/hs_data.dir/data/verify.cpp.o" "gcc" "src/CMakeFiles/hs_data.dir/data/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-san/src/CMakeFiles/hs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
