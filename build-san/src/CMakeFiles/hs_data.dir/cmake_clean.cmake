file(REMOVE_RECURSE
  "CMakeFiles/hs_data.dir/data/generators.cpp.o"
  "CMakeFiles/hs_data.dir/data/generators.cpp.o.d"
  "CMakeFiles/hs_data.dir/data/verify.cpp.o"
  "CMakeFiles/hs_data.dir/data/verify.cpp.o.d"
  "libhs_data.a"
  "libhs_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
