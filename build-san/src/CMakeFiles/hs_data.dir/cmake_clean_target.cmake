file(REMOVE_RECURSE
  "libhs_data.a"
)
