# Empty dependencies file for hs_data.
# This may be replaced when dependencies are built.
