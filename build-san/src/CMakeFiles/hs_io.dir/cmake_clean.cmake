file(REMOVE_RECURSE
  "CMakeFiles/hs_io.dir/io/external_sort.cpp.o"
  "CMakeFiles/hs_io.dir/io/external_sort.cpp.o.d"
  "CMakeFiles/hs_io.dir/io/run_file.cpp.o"
  "CMakeFiles/hs_io.dir/io/run_file.cpp.o.d"
  "libhs_io.a"
  "libhs_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
