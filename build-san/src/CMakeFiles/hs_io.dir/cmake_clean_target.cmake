file(REMOVE_RECURSE
  "libhs_io.a"
)
