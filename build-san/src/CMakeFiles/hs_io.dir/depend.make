# Empty dependencies file for hs_io.
# This may be replaced when dependencies are built.
