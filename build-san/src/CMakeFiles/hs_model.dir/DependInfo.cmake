
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/cpu_model.cpp" "src/CMakeFiles/hs_model.dir/model/cpu_model.cpp.o" "gcc" "src/CMakeFiles/hs_model.dir/model/cpu_model.cpp.o.d"
  "/root/repo/src/model/gpu_model.cpp" "src/CMakeFiles/hs_model.dir/model/gpu_model.cpp.o" "gcc" "src/CMakeFiles/hs_model.dir/model/gpu_model.cpp.o.d"
  "/root/repo/src/model/host_mem_model.cpp" "src/CMakeFiles/hs_model.dir/model/host_mem_model.cpp.o" "gcc" "src/CMakeFiles/hs_model.dir/model/host_mem_model.cpp.o.d"
  "/root/repo/src/model/pcie_model.cpp" "src/CMakeFiles/hs_model.dir/model/pcie_model.cpp.o" "gcc" "src/CMakeFiles/hs_model.dir/model/pcie_model.cpp.o.d"
  "/root/repo/src/model/pinned_alloc_model.cpp" "src/CMakeFiles/hs_model.dir/model/pinned_alloc_model.cpp.o" "gcc" "src/CMakeFiles/hs_model.dir/model/pinned_alloc_model.cpp.o.d"
  "/root/repo/src/model/platforms.cpp" "src/CMakeFiles/hs_model.dir/model/platforms.cpp.o" "gcc" "src/CMakeFiles/hs_model.dir/model/platforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-san/src/CMakeFiles/hs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
