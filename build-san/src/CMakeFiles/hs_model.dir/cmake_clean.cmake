file(REMOVE_RECURSE
  "CMakeFiles/hs_model.dir/model/cpu_model.cpp.o"
  "CMakeFiles/hs_model.dir/model/cpu_model.cpp.o.d"
  "CMakeFiles/hs_model.dir/model/gpu_model.cpp.o"
  "CMakeFiles/hs_model.dir/model/gpu_model.cpp.o.d"
  "CMakeFiles/hs_model.dir/model/host_mem_model.cpp.o"
  "CMakeFiles/hs_model.dir/model/host_mem_model.cpp.o.d"
  "CMakeFiles/hs_model.dir/model/pcie_model.cpp.o"
  "CMakeFiles/hs_model.dir/model/pcie_model.cpp.o.d"
  "CMakeFiles/hs_model.dir/model/pinned_alloc_model.cpp.o"
  "CMakeFiles/hs_model.dir/model/pinned_alloc_model.cpp.o.d"
  "CMakeFiles/hs_model.dir/model/platforms.cpp.o"
  "CMakeFiles/hs_model.dir/model/platforms.cpp.o.d"
  "libhs_model.a"
  "libhs_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
