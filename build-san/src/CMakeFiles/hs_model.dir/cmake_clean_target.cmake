file(REMOVE_RECURSE
  "libhs_model.a"
)
