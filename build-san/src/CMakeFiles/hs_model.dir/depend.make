# Empty dependencies file for hs_model.
# This may be replaced when dependencies are built.
