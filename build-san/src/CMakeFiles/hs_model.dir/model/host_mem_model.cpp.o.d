src/CMakeFiles/hs_model.dir/model/host_mem_model.cpp.o: \
 /root/repo/src/model/host_mem_model.cpp /usr/include/stdc-predef.h \
 /root/repo/src/model/host_mem_model.h
