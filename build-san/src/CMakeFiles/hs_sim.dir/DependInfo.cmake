
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/channel.cpp" "src/CMakeFiles/hs_sim.dir/sim/channel.cpp.o" "gcc" "src/CMakeFiles/hs_sim.dir/sim/channel.cpp.o.d"
  "/root/repo/src/sim/compute_engine.cpp" "src/CMakeFiles/hs_sim.dir/sim/compute_engine.cpp.o" "gcc" "src/CMakeFiles/hs_sim.dir/sim/compute_engine.cpp.o.d"
  "/root/repo/src/sim/core_pool.cpp" "src/CMakeFiles/hs_sim.dir/sim/core_pool.cpp.o" "gcc" "src/CMakeFiles/hs_sim.dir/sim/core_pool.cpp.o.d"
  "/root/repo/src/sim/critical_path.cpp" "src/CMakeFiles/hs_sim.dir/sim/critical_path.cpp.o" "gcc" "src/CMakeFiles/hs_sim.dir/sim/critical_path.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/hs_sim.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/hs_sim.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/task_graph.cpp" "src/CMakeFiles/hs_sim.dir/sim/task_graph.cpp.o" "gcc" "src/CMakeFiles/hs_sim.dir/sim/task_graph.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/hs_sim.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/hs_sim.dir/sim/trace.cpp.o.d"
  "/root/repo/src/sim/trace_export.cpp" "src/CMakeFiles/hs_sim.dir/sim/trace_export.cpp.o" "gcc" "src/CMakeFiles/hs_sim.dir/sim/trace_export.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-san/src/CMakeFiles/hs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
