file(REMOVE_RECURSE
  "CMakeFiles/hs_sim.dir/sim/channel.cpp.o"
  "CMakeFiles/hs_sim.dir/sim/channel.cpp.o.d"
  "CMakeFiles/hs_sim.dir/sim/compute_engine.cpp.o"
  "CMakeFiles/hs_sim.dir/sim/compute_engine.cpp.o.d"
  "CMakeFiles/hs_sim.dir/sim/core_pool.cpp.o"
  "CMakeFiles/hs_sim.dir/sim/core_pool.cpp.o.d"
  "CMakeFiles/hs_sim.dir/sim/critical_path.cpp.o"
  "CMakeFiles/hs_sim.dir/sim/critical_path.cpp.o.d"
  "CMakeFiles/hs_sim.dir/sim/engine.cpp.o"
  "CMakeFiles/hs_sim.dir/sim/engine.cpp.o.d"
  "CMakeFiles/hs_sim.dir/sim/task_graph.cpp.o"
  "CMakeFiles/hs_sim.dir/sim/task_graph.cpp.o.d"
  "CMakeFiles/hs_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/hs_sim.dir/sim/trace.cpp.o.d"
  "CMakeFiles/hs_sim.dir/sim/trace_export.cpp.o"
  "CMakeFiles/hs_sim.dir/sim/trace_export.cpp.o.d"
  "libhs_sim.a"
  "libhs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
