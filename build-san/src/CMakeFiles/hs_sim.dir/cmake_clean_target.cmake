file(REMOVE_RECURSE
  "libhs_sim.a"
)
