# Empty dependencies file for hs_sim.
# This may be replaced when dependencies are built.
