
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vgpu/device.cpp" "src/CMakeFiles/hs_vgpu.dir/vgpu/device.cpp.o" "gcc" "src/CMakeFiles/hs_vgpu.dir/vgpu/device.cpp.o.d"
  "/root/repo/src/vgpu/device_buffer.cpp" "src/CMakeFiles/hs_vgpu.dir/vgpu/device_buffer.cpp.o" "gcc" "src/CMakeFiles/hs_vgpu.dir/vgpu/device_buffer.cpp.o.d"
  "/root/repo/src/vgpu/device_ops.cpp" "src/CMakeFiles/hs_vgpu.dir/vgpu/device_ops.cpp.o" "gcc" "src/CMakeFiles/hs_vgpu.dir/vgpu/device_ops.cpp.o.d"
  "/root/repo/src/vgpu/device_sort.cpp" "src/CMakeFiles/hs_vgpu.dir/vgpu/device_sort.cpp.o" "gcc" "src/CMakeFiles/hs_vgpu.dir/vgpu/device_sort.cpp.o.d"
  "/root/repo/src/vgpu/event.cpp" "src/CMakeFiles/hs_vgpu.dir/vgpu/event.cpp.o" "gcc" "src/CMakeFiles/hs_vgpu.dir/vgpu/event.cpp.o.d"
  "/root/repo/src/vgpu/pinned_buffer.cpp" "src/CMakeFiles/hs_vgpu.dir/vgpu/pinned_buffer.cpp.o" "gcc" "src/CMakeFiles/hs_vgpu.dir/vgpu/pinned_buffer.cpp.o.d"
  "/root/repo/src/vgpu/runtime.cpp" "src/CMakeFiles/hs_vgpu.dir/vgpu/runtime.cpp.o" "gcc" "src/CMakeFiles/hs_vgpu.dir/vgpu/runtime.cpp.o.d"
  "/root/repo/src/vgpu/stream.cpp" "src/CMakeFiles/hs_vgpu.dir/vgpu/stream.cpp.o" "gcc" "src/CMakeFiles/hs_vgpu.dir/vgpu/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-san/src/CMakeFiles/hs_common.dir/DependInfo.cmake"
  "/root/repo/build-san/src/CMakeFiles/hs_sim.dir/DependInfo.cmake"
  "/root/repo/build-san/src/CMakeFiles/hs_model.dir/DependInfo.cmake"
  "/root/repo/build-san/src/CMakeFiles/hs_cpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
