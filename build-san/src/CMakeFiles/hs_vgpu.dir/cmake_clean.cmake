file(REMOVE_RECURSE
  "CMakeFiles/hs_vgpu.dir/vgpu/device.cpp.o"
  "CMakeFiles/hs_vgpu.dir/vgpu/device.cpp.o.d"
  "CMakeFiles/hs_vgpu.dir/vgpu/device_buffer.cpp.o"
  "CMakeFiles/hs_vgpu.dir/vgpu/device_buffer.cpp.o.d"
  "CMakeFiles/hs_vgpu.dir/vgpu/device_ops.cpp.o"
  "CMakeFiles/hs_vgpu.dir/vgpu/device_ops.cpp.o.d"
  "CMakeFiles/hs_vgpu.dir/vgpu/device_sort.cpp.o"
  "CMakeFiles/hs_vgpu.dir/vgpu/device_sort.cpp.o.d"
  "CMakeFiles/hs_vgpu.dir/vgpu/event.cpp.o"
  "CMakeFiles/hs_vgpu.dir/vgpu/event.cpp.o.d"
  "CMakeFiles/hs_vgpu.dir/vgpu/pinned_buffer.cpp.o"
  "CMakeFiles/hs_vgpu.dir/vgpu/pinned_buffer.cpp.o.d"
  "CMakeFiles/hs_vgpu.dir/vgpu/runtime.cpp.o"
  "CMakeFiles/hs_vgpu.dir/vgpu/runtime.cpp.o.d"
  "CMakeFiles/hs_vgpu.dir/vgpu/stream.cpp.o"
  "CMakeFiles/hs_vgpu.dir/vgpu/stream.cpp.o.d"
  "libhs_vgpu.a"
  "libhs_vgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_vgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
