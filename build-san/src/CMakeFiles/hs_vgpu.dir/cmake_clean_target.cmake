file(REMOVE_RECURSE
  "libhs_vgpu.a"
)
