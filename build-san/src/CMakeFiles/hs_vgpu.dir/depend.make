# Empty dependencies file for hs_vgpu.
# This may be replaced when dependencies are built.
