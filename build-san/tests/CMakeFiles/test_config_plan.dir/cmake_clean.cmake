file(REMOVE_RECURSE
  "CMakeFiles/test_config_plan.dir/test_config_plan.cpp.o"
  "CMakeFiles/test_config_plan.dir/test_config_plan.cpp.o.d"
  "test_config_plan"
  "test_config_plan.pdb"
  "test_config_plan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
