# Empty dependencies file for test_config_plan.
# This may be replaced when dependencies are built.
