file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_merge.dir/test_cpu_merge.cpp.o"
  "CMakeFiles/test_cpu_merge.dir/test_cpu_merge.cpp.o.d"
  "test_cpu_merge"
  "test_cpu_merge.pdb"
  "test_cpu_merge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
