# Empty dependencies file for test_cpu_merge.
# This may be replaced when dependencies are built.
