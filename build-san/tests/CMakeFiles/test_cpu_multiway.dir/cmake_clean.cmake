file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_multiway.dir/test_cpu_multiway.cpp.o"
  "CMakeFiles/test_cpu_multiway.dir/test_cpu_multiway.cpp.o.d"
  "test_cpu_multiway"
  "test_cpu_multiway.pdb"
  "test_cpu_multiway[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_multiway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
