# Empty dependencies file for test_cpu_multiway.
# This may be replaced when dependencies are built.
