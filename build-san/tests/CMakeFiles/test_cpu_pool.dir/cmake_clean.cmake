file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_pool.dir/test_cpu_pool.cpp.o"
  "CMakeFiles/test_cpu_pool.dir/test_cpu_pool.cpp.o.d"
  "test_cpu_pool"
  "test_cpu_pool.pdb"
  "test_cpu_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
