# Empty compiler generated dependencies file for test_cpu_pool.
# This may be replaced when dependencies are built.
