file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_sort.dir/test_cpu_sort.cpp.o"
  "CMakeFiles/test_cpu_sort.dir/test_cpu_sort.cpp.o.d"
  "test_cpu_sort"
  "test_cpu_sort.pdb"
  "test_cpu_sort[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
