# Empty dependencies file for test_cpu_sort.
# This may be replaced when dependencies are built.
