file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_sort_families.dir/test_cpu_sort_families.cpp.o"
  "CMakeFiles/test_cpu_sort_families.dir/test_cpu_sort_families.cpp.o.d"
  "test_cpu_sort_families"
  "test_cpu_sort_families.pdb"
  "test_cpu_sort_families[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_sort_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
