# Empty compiler generated dependencies file for test_cpu_sort_families.
# This may be replaced when dependencies are built.
