file(REMOVE_RECURSE
  "CMakeFiles/test_element_ops.dir/test_element_ops.cpp.o"
  "CMakeFiles/test_element_ops.dir/test_element_ops.cpp.o.d"
  "test_element_ops"
  "test_element_ops.pdb"
  "test_element_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_element_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
