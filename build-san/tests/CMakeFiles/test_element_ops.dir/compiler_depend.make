# Empty compiler generated dependencies file for test_element_ops.
# This may be replaced when dependencies are built.
