file(REMOVE_RECURSE
  "CMakeFiles/test_hetsort.dir/test_hetsort.cpp.o"
  "CMakeFiles/test_hetsort.dir/test_hetsort.cpp.o.d"
  "test_hetsort"
  "test_hetsort.pdb"
  "test_hetsort[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hetsort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
