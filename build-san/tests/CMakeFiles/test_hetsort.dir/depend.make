# Empty dependencies file for test_hetsort.
# This may be replaced when dependencies are built.
