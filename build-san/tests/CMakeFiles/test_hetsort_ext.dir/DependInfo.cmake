
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_hetsort_ext.cpp" "tests/CMakeFiles/test_hetsort_ext.dir/test_hetsort_ext.cpp.o" "gcc" "tests/CMakeFiles/test_hetsort_ext.dir/test_hetsort_ext.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-san/src/CMakeFiles/hs_io.dir/DependInfo.cmake"
  "/root/repo/build-san/src/CMakeFiles/hs_core.dir/DependInfo.cmake"
  "/root/repo/build-san/src/CMakeFiles/hs_vgpu.dir/DependInfo.cmake"
  "/root/repo/build-san/src/CMakeFiles/hs_sim.dir/DependInfo.cmake"
  "/root/repo/build-san/src/CMakeFiles/hs_cpu.dir/DependInfo.cmake"
  "/root/repo/build-san/src/CMakeFiles/hs_model.dir/DependInfo.cmake"
  "/root/repo/build-san/src/CMakeFiles/hs_data.dir/DependInfo.cmake"
  "/root/repo/build-san/src/CMakeFiles/hs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
