file(REMOVE_RECURSE
  "CMakeFiles/test_hetsort_ext.dir/test_hetsort_ext.cpp.o"
  "CMakeFiles/test_hetsort_ext.dir/test_hetsort_ext.cpp.o.d"
  "test_hetsort_ext"
  "test_hetsort_ext.pdb"
  "test_hetsort_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hetsort_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
