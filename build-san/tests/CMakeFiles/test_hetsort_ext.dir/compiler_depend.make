# Empty compiler generated dependencies file for test_hetsort_ext.
# This may be replaced when dependencies are built.
