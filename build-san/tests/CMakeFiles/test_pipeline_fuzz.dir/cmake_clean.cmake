file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_fuzz.dir/test_pipeline_fuzz.cpp.o"
  "CMakeFiles/test_pipeline_fuzz.dir/test_pipeline_fuzz.cpp.o.d"
  "test_pipeline_fuzz"
  "test_pipeline_fuzz.pdb"
  "test_pipeline_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
