# Empty compiler generated dependencies file for test_pipeline_fuzz.
# This may be replaced when dependencies are built.
