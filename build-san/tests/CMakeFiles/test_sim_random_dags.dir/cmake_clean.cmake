file(REMOVE_RECURSE
  "CMakeFiles/test_sim_random_dags.dir/test_sim_random_dags.cpp.o"
  "CMakeFiles/test_sim_random_dags.dir/test_sim_random_dags.cpp.o.d"
  "test_sim_random_dags"
  "test_sim_random_dags.pdb"
  "test_sim_random_dags[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_random_dags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
