# Empty dependencies file for test_sim_random_dags.
# This may be replaced when dependencies are built.
