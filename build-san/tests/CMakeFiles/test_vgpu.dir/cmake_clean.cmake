file(REMOVE_RECURSE
  "CMakeFiles/test_vgpu.dir/test_vgpu.cpp.o"
  "CMakeFiles/test_vgpu.dir/test_vgpu.cpp.o.d"
  "test_vgpu"
  "test_vgpu.pdb"
  "test_vgpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
