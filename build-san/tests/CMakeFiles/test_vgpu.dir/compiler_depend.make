# Empty compiler generated dependencies file for test_vgpu.
# This may be replaced when dependencies are built.
