file(REMOVE_RECURSE
  "CMakeFiles/test_vgpu_ops.dir/test_vgpu_ops.cpp.o"
  "CMakeFiles/test_vgpu_ops.dir/test_vgpu_ops.cpp.o.d"
  "test_vgpu_ops"
  "test_vgpu_ops.pdb"
  "test_vgpu_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vgpu_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
