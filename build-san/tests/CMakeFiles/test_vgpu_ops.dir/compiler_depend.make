# Empty compiler generated dependencies file for test_vgpu_ops.
# This may be replaced when dependencies are built.
