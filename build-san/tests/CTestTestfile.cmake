# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-san/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-san/tests/test_common[1]_include.cmake")
include("/root/repo/build-san/tests/test_sim_channel[1]_include.cmake")
include("/root/repo/build-san/tests/test_sim_engine[1]_include.cmake")
include("/root/repo/build-san/tests/test_cpu_merge[1]_include.cmake")
include("/root/repo/build-san/tests/test_cpu_multiway[1]_include.cmake")
include("/root/repo/build-san/tests/test_cpu_sort[1]_include.cmake")
include("/root/repo/build-san/tests/test_cpu_pool[1]_include.cmake")
include("/root/repo/build-san/tests/test_model[1]_include.cmake")
include("/root/repo/build-san/tests/test_vgpu[1]_include.cmake")
include("/root/repo/build-san/tests/test_config_plan[1]_include.cmake")
include("/root/repo/build-san/tests/test_hetsort[1]_include.cmake")
include("/root/repo/build-san/tests/test_element_ops[1]_include.cmake")
include("/root/repo/build-san/tests/test_hetsort_ext[1]_include.cmake")
include("/root/repo/build-san/tests/test_cpu_sort_families[1]_include.cmake")
include("/root/repo/build-san/tests/test_trace_export[1]_include.cmake")
include("/root/repo/build-san/tests/test_pipeline_fuzz[1]_include.cmake")
include("/root/repo/build-san/tests/test_paper_regression[1]_include.cmake")
include("/root/repo/build-san/tests/test_io[1]_include.cmake")
include("/root/repo/build-san/tests/test_vgpu_ops[1]_include.cmake")
include("/root/repo/build-san/tests/test_critical_path[1]_include.cmake")
include("/root/repo/build-san/tests/test_data[1]_include.cmake")
include("/root/repo/build-san/tests/test_sim_random_dags[1]_include.cmake")
