file(REMOVE_RECURSE
  "CMakeFiles/hetsort_cli.dir/hetsort_cli.cpp.o"
  "CMakeFiles/hetsort_cli.dir/hetsort_cli.cpp.o.d"
  "hetsort_cli"
  "hetsort_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetsort_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
