# Empty compiler generated dependencies file for hetsort_cli.
# This may be replaced when dependencies are built.
