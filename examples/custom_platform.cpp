// Custom platform: define an NVLink-class machine and watch the bottleneck
// move — the paper's Section V outlook. With a 75 GB/s interconnect the
// transfer phases almost vanish, the CPU merge dominates, and the
// heterogeneous speedup is capped by host-side work, "increasing the CPU
// merging bottleneck" exactly as the paper predicts for the NVLink era.
//
//   $ ./examples/custom_platform
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "core/het_sorter.h"
#include "model/platforms.h"

using namespace hs;

namespace {

model::Platform nvlink_platform() {
  model::Platform p = model::platform1();
  p.name = "NVLINK-ERA";
  p.software = "hypothetical";
  // Volta-class GPU: 16 GiB, ~2x Pascal sort throughput.
  p.gpus[0].model = "V100-like";
  p.gpus[0].cuda_cores = 5120;
  p.gpus[0].sort = model::GpuSortModel{1.5e-3, 0.6e-9};
  // NVLink 2.0: ~75 GB/s per direction, negligible benefit from pinning
  // games, cheaper per-transfer latency.
  p.pcie = model::PcieModel{78.0e9, 75.0e9, 75.0e9, 37.0e9, 8e-6, 12e-6};
  return p;
}

void survey(const model::Platform& platform) {
  std::printf("--- %s ---\n", platform.name.c_str());
  Table t({"approach", "end_to_end_s", "speedup", "transfer_busy_s",
           "staging_busy_s", "merge_busy_s", "merge_share_%"});
  for (const bool pipe_merge : {false, true}) {
    core::SortConfig cfg;
    cfg.approach =
        pipe_merge ? core::Approach::kPipeMerge : core::Approach::kPipeData;
    cfg.batch_size = 500'000'000;
    cfg.memcpy_threads = 4;
    core::HeterogeneousSorter sorter(platform, cfg);
    const core::Report r = sorter.simulate(5'000'000'000ull);
    const double merge_busy = r.busy.pair_merge + r.busy.multiway_merge;
    t.row()
        .add(r.label)
        .add(r.end_to_end, 2)
        .add(r.speedup_vs_reference(), 2)
        .add(r.busy.htod + r.busy.dtoh, 2)
        .add(r.busy.staging_total(), 2)
        .add(merge_busy, 2)
        .add(100.0 * merge_busy / r.end_to_end, 1);
  }
  t.print(std::cout);
  std::puts("");
}

}  // namespace

int main() {
  std::printf(
      "Section V outlook: what happens to the paper's pipeline when PCIe\n"
      "(12 GB/s pinned) is replaced by an NVLink-class interconnect?\n\n");
  survey(model::platform1());
  survey(nvlink_platform());
  std::printf(
      "observation: on the NVLink platform the merge phases dominate the\n"
      "end-to-end time — faster transfers alone cannot fix heterogeneous\n"
      "sorting; merging must move (at least partly) to the GPUs.\n");
  return 0;
}
