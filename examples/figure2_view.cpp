// Figure 2, live: the paper's illustrative pipeline diagram shows chunked
// staging (ps = bs/3) interleaving MCpy and HtoD per stream while other
// streams drive DtoH — maximising bidirectional PCIe use. This example runs
// exactly that configuration through the simulator and renders the resulting
// schedule as an ASCII Gantt chart, so you can see the interleave the figure
// hand-draws, plus the pair merges of Figure 3 overlapping GPU sorting.
//
//   $ ./examples/figure2_view
#include <cstdio>
#include <iostream>

#include "core/het_sorter.h"
#include "model/platforms.h"
#include "sim/trace_export.h"

int main() {
  using namespace hs;

  const model::Platform plat = model::platform1();
  core::SortConfig cfg;
  cfg.approach = core::Approach::kPipeMerge;
  cfg.batch_size = 300'000'000;
  cfg.staging_elems = 100'000'000;  // ps = bs/3, as in Figure 2
  cfg.streams_per_gpu = 2;
  cfg.memcpy_threads = 4;

  core::HeterogeneousSorter sorter(plat, cfg);
  const core::Report r = sorter.simulate(1'800'000'000);  // nb = 6, Figure 1/3

  std::printf(
      "PIPEMERGE on %s: nb = %llu batches, ps = bs/3, ns = 2 streams\n"
      "(the geometry of the paper's Figures 1-3)\n\n",
      plat.name.c_str(), static_cast<unsigned long long>(r.num_batches));
  sim::render_ascii_gantt(r.trace, std::cout, 110);
  std::printf(
      "\nread: StageIn/HtoD alternate per stream (Fig 2 lower), DtoH/StageOut\n"
      "overlap them bidirectionally (Fig 2 upper); PairMerge rows run while\n"
      "GPUSort is still busy (Fig 3); MultiwayMerge trails (Fig 1).\n"
      "end-to-end %.3f s, %llu pair merges, %llu-way final merge\n",
      r.end_to_end, static_cast<unsigned long long>(r.pair_merges),
      static_cast<unsigned long long>(r.multiway_ways));
  return 0;
}
