// Multi-GPU pipeline (the paper's Experiment 2 scenario): sort on PLATFORM2
// with 1 vs 2 K40m GPUs sharing one PCIe bus, and inspect where the time
// goes. Demonstrates the paper's observation that a second GPU helps less
// than 2x because both devices compete for PCIe bandwidth and the CPU merge
// does not shrink.
//
//   $ ./examples/multi_gpu_pipeline [n]        (default n = 4.9e9)
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "core/het_sorter.h"
#include "model/platforms.h"

int main(int argc, char** argv) {
  using namespace hs;
  const std::uint64_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4'900'000'000ull;

  const model::Platform platform = model::platform2();
  std::printf("sorting n = %llu (%s) on %s with 1 vs 2 GPUs\n\n",
              static_cast<unsigned long long>(n),
              format_bytes(bytes_of_elems(n)).c_str(), platform.name.c_str());

  Table t({"gpus", "end_to_end_s", "speedup_vs_cpu", "scaling_vs_1gpu",
           "htod_busy_s", "gpu_sort_busy_s", "multiway_busy_s"});
  double t1 = 0;
  for (unsigned gpus = 1; gpus <= 2; ++gpus) {
    core::SortConfig cfg;
    cfg.approach = core::Approach::kPipeMerge;
    cfg.batch_size = 350'000'000;
    cfg.num_gpus = gpus;
    cfg.memcpy_threads = 4;
    core::HeterogeneousSorter sorter(platform, cfg);
    const core::Report r = sorter.simulate(n);
    if (gpus == 1) t1 = r.end_to_end;
    t.row()
        .add(static_cast<int>(gpus))
        .add(r.end_to_end, 2)
        .add(r.speedup_vs_reference(), 2)
        .add(t1 / r.end_to_end, 2)
        .add(r.busy.htod, 2)
        .add(r.busy.gpu_sort, 2)
        .add(r.busy.multiway_merge, 2);
  }
  t.print(std::cout);

  std::printf(
      "\nnote: scaling_vs_1gpu << 2.0 — the GPUs share one PCIe bus and the\n"
      "final multiway merge stays on the CPU (the paper's Section V point:\n"
      "multi-GPU sorting needs GPU-side merging to scale further).\n");
  return 0;
}
