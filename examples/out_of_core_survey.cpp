// Out-of-core survey: compare every approach on a dataset far larger than
// GPU memory (the paper's Experiment 1 scenario) and print a decision table.
//
//   $ ./examples/out_of_core_survey [n]        (default n = 5e9, 37 GiB)
//
// Runs in timing-only mode: no payload memory is allocated, so paper-scale
// inputs work on any machine.
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "core/het_sorter.h"
#include "model/platforms.h"

int main(int argc, char** argv) {
  using namespace hs;
  const std::uint64_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5'000'000'000ull;

  const model::Platform platform = model::platform1();
  std::printf("surveying approaches for n = %llu (%s) on %s\n\n",
              static_cast<unsigned long long>(n),
              format_bytes(bytes_of_elems(n)).c_str(), platform.name.c_str());

  struct Row {
    const char* name;
    core::Approach approach;
    unsigned memcpy_threads;
  };
  const Row rows[] = {
      {"BLineMulti", core::Approach::kBLineMulti, 1},
      {"PipeData", core::Approach::kPipeData, 1},
      {"PipeData+ParMemCpy", core::Approach::kPipeData, 4},
      {"PipeMerge", core::Approach::kPipeMerge, 1},
      {"PipeMerge+ParMemCpy", core::Approach::kPipeMerge, 4},
  };

  Table t({"approach", "end_to_end_s", "speedup_vs_cpu", "batches",
           "pair_merges", "multiway_ways", "staging_busy_s",
           "multiway_busy_s"});
  double best = 1e18;
  const char* best_name = "";
  for (const Row& row : rows) {
    core::SortConfig cfg;
    cfg.approach = row.approach;
    cfg.batch_size = 500'000'000;  // the paper's bs on PLATFORM1
    cfg.memcpy_threads = row.memcpy_threads;
    core::HeterogeneousSorter sorter(platform, cfg);
    const core::Report r = sorter.simulate(n);
    if (r.end_to_end < best) {
      best = r.end_to_end;
      best_name = row.name;
    }
    t.row()
        .add(row.name)
        .add(r.end_to_end, 2)
        .add(r.speedup_vs_reference(), 2)
        .add(r.num_batches)
        .add(r.pair_merges)
        .add(r.multiway_ways)
        .add(r.busy.staging_total(), 2)
        .add(r.busy.multiway_merge, 2);
  }
  t.print(std::cout);
  std::printf("\nrecommended approach: %s (%.2f s)\n", best_name, best);
  return 0;
}
