// Quickstart: sort 2 million doubles through the full heterogeneous pipeline
// (real execution — every byte is staged, transferred, sorted on the virtual
// GPU and merged on the CPU), verify the output, and print the report.
//
//   $ ./examples/quickstart
//
// The batch size is deliberately small so the input spans several batches and
// exercises batching + multiway merging; a real GP100 would hold all of this
// in one batch.
#include <cstdio>
#include <iostream>

#include "core/het_sorter.h"
#include "data/generators.h"
#include "data/verify.h"
#include "model/platforms.h"

int main() {
  using namespace hs;

  // 1. Pick a platform (Table II presets, or build your own GpuSpec).
  const model::Platform platform = model::platform1();

  // 2. Configure the sort. Defaults reproduce the paper's best approach:
  //    PIPEMERGE with pinned staging; add PARMEMCPY via memcpy_threads.
  core::SortConfig cfg;
  cfg.approach = core::Approach::kPipeMerge;
  cfg.batch_size = 500'000;    // force several batches at toy scale
  cfg.staging_elems = 100'000; // ps: pinned staging buffer elements
  cfg.memcpy_threads = 4;      // PARMEMCPY

  // 3. Generate data and sort.
  constexpr std::uint64_t kN = 2'000'000;
  std::vector<double> data =
      data::generate(data::Distribution::kUniform, kN, /*seed=*/2024);
  const std::vector<double> original = data;

  core::HeterogeneousSorter sorter(platform, cfg);
  const core::Report report = sorter.sort(data);

  // 4. Verify and report.
  const bool ok = data::is_sorted_permutation(original, data);
  std::printf("sorted %llu doubles across %llu batches: %s\n",
              static_cast<unsigned long long>(kN),
              static_cast<unsigned long long>(report.num_batches),
              ok ? "OK (sorted permutation of the input)" : "FAILED");
  report.print(std::cout);

  std::printf(
      "\nvirtual end-to-end on %s: %.4f s (%.2fx vs %u-thread CPU sort)\n",
      platform.name.c_str(), report.end_to_end,
      report.speedup_vs_reference(), platform.reference_threads());
  return ok ? 0 : 1;
}
