// Out-of-core file sorting: sort a binary file of doubles that exceeds the
// in-memory budget, using the heterogeneous pipeline for run formation and a
// streaming k-way merge for the final pass.
//
//   $ ./examples/sort_file [n] [budget]
//
// defaults: n = 4e6 doubles (32 MB file), budget = 5e5 elements — so the
// run-formation pass produces 8 sorted runs that the merge pass streams back
// together. Both files live in the system temp directory and are removed.
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "data/generators.h"
#include "data/verify.h"
#include "io/external_sort.h"
#include "io/run_file.h"

int main(int argc, char** argv) {
  using namespace hs;
  const std::uint64_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4'000'000;
  const std::uint64_t budget =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500'000;

  const auto dir = std::filesystem::temp_directory_path();
  const std::string input = dir / "hetsort_example_input.bin";
  const std::string output = dir / "hetsort_example_sorted.bin";

  std::printf("writing %llu uniform doubles to %s ...\n",
              static_cast<unsigned long long>(n), input.c_str());
  const auto data = data::generate(data::Distribution::kUniform, n, 7);
  io::write_doubles(input, data);

  io::ExternalSortConfig cfg;
  cfg.memory_budget_elems = budget;
  cfg.temp_dir = dir;
  cfg.pipeline.batch_size = budget / 4;  // several GPU batches per run
  cfg.pipeline.staging_elems = 65'536;

  std::printf("external sort with a %llu-element budget ...\n",
              static_cast<unsigned long long>(budget));
  const auto stats = io::external_sort_file(input, output, cfg);

  const bool ok = data::is_sorted_permutation(data, io::read_doubles(output));
  std::printf(
      "done: %llu elements in %llu runs\n"
      "  run-formation virtual pipeline time: %.4f s\n"
      "  wall time incl. disk I/O:            %.4f s\n"
      "  verification: %s\n",
      static_cast<unsigned long long>(stats.n),
      static_cast<unsigned long long>(stats.num_runs),
      stats.pipeline_virtual_seconds, stats.wall_seconds,
      ok ? "OK (sorted permutation)" : "FAILED");

  std::filesystem::remove(input);
  std::filesystem::remove(output);
  return ok ? 0 : 1;
}
