// Staging-buffer tuner: sweeps the pinned buffer size ps for a given input
// size and reports the end-to-end impact, exposing the trade-off of Section
// IV-E.1 — tiny buffers drown in per-chunk synchronisation, huge buffers pay
// seconds of allocation (pinning 6.4 GB costs ~2.2 s), and a few MB is the
// sweet spot the paper (and CUDA drivers) settle on.
//
//   $ ./examples/tune_pinned_buffer [n]        (default n = 1e9)
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "core/het_sorter.h"
#include "model/platforms.h"

int main(int argc, char** argv) {
  using namespace hs;
  const std::uint64_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1'000'000'000ull;

  const model::Platform platform = model::platform1();
  std::printf("tuning ps for n = %llu (%s), PIPEDATA on %s\n\n",
              static_cast<unsigned long long>(n),
              format_bytes(bytes_of_elems(n)).c_str(), platform.name.c_str());

  Table t({"ps_elems", "ps_size", "alloc_s", "sync_chunks", "end_to_end_s"});
  std::uint64_t best_ps = 0;
  double best_time = 1e18;
  for (const std::uint64_t ps :
       {10'000ull, 100'000ull, 1'000'000ull, 10'000'000ull, 100'000'000ull}) {
    core::SortConfig cfg;
    cfg.approach = core::Approach::kPipeData;
    cfg.batch_size = 500'000'000;
    cfg.staging_elems = ps;
    core::HeterogeneousSorter sorter(platform, cfg);
    const core::Report r = sorter.simulate(n);
    if (r.end_to_end < best_time) {
      best_time = r.end_to_end;
      best_ps = ps;
    }
    t.row()
        .add(ps)
        .add(format_bytes(bytes_of_elems(ps)))
        .add(platform.pinned_alloc.time(bytes_of_elems(ps)), 4)
        .add((n + ps - 1) / ps * 2)  // HtoD + DtoH chunks
        .add(r.end_to_end, 3);
  }
  t.print(std::cout);
  std::printf("\nbest ps = %llu elements (%s): %.3f s\n",
              static_cast<unsigned long long>(best_ps),
              format_bytes(bytes_of_elems(best_ps)).c_str(), best_time);
  return 0;
}
