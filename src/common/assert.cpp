#include "common/assert.h"

#include <cstdio>
#include <cstdlib>

namespace hs {

void contract_violation(std::string_view kind, std::string_view expr,
                        std::string_view file, int line, std::string_view msg) {
  std::fprintf(stderr, "hetsort: %.*s failed: %.*s at %.*s:%d%s%.*s\n",
               static_cast<int>(kind.size()), kind.data(),
               static_cast<int>(expr.size()), expr.data(),
               static_cast<int>(file.size()), file.data(), line,
               msg.empty() ? "" : " — ",
               static_cast<int>(msg.size()), msg.data());
  std::abort();
}

}  // namespace hs
