// Contract checking in the spirit of the C++ Core Guidelines (I.6/I.8):
// preconditions via HS_EXPECTS, postconditions via HS_ENSURES, internal
// invariants via HS_ASSERT. Violations abort with a diagnostic; they indicate
// programmer error, not runtime conditions, and are therefore never mapped to
// exceptions or error codes.
#pragma once

#include <string_view>

namespace hs {

// Prints "<kind> failed: <expr> at <file>:<line> (<msg>)" to stderr and aborts.
[[noreturn]] void contract_violation(std::string_view kind, std::string_view expr,
                                     std::string_view file, int line,
                                     std::string_view msg);

}  // namespace hs

#define HS_CONTRACT_CHECK(kind, expr, msg)                                \
  do {                                                                    \
    if (!(expr)) [[unlikely]] {                                           \
      ::hs::contract_violation(kind, #expr, __FILE__, __LINE__, msg);     \
    }                                                                     \
  } while (false)

#define HS_EXPECTS(expr) HS_CONTRACT_CHECK("precondition", expr, "")
#define HS_EXPECTS_MSG(expr, msg) HS_CONTRACT_CHECK("precondition", expr, msg)
#define HS_ENSURES(expr) HS_CONTRACT_CHECK("postcondition", expr, "")
#define HS_ASSERT(expr) HS_CONTRACT_CHECK("assertion", expr, "")
#define HS_ASSERT_MSG(expr, msg) HS_CONTRACT_CHECK("assertion", expr, msg)
