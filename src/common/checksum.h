// FNV-1a 64-bit checksums for on-disk integrity (docs/fault_model.md).
//
// Run-file blocks and the job journal need a cheap, dependency-free digest
// whose only job is detecting torn writes and flipped bytes — not
// cryptographic collision resistance. FNV-1a fits: one multiply and one xor
// per byte, incremental, and a well-known reference constant set, so any
// external tool can re-derive the values.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hs {

/// Incremental FNV-1a (64-bit). Feed bytes in any chunking; the digest only
/// depends on the concatenated byte stream.
class Fnv1a64 {
 public:
  static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ULL;
  static constexpr std::uint64_t kPrime = 1099511628211ULL;

  void update(const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = state_;
    for (std::size_t i = 0; i < bytes; ++i) {
      h ^= p[i];
      h *= kPrime;
    }
    state_ = h;
  }

  void update(std::string_view s) { update(s.data(), s.size()); }

  std::uint64_t digest() const { return state_; }
  void reset() { state_ = kOffsetBasis; }

 private:
  std::uint64_t state_ = kOffsetBasis;
};

/// One-shot digest of a contiguous buffer.
inline std::uint64_t fnv1a64(const void* data, std::size_t bytes) {
  Fnv1a64 h;
  h.update(data, bytes);
  return h.digest();
}

inline std::uint64_t fnv1a64(std::string_view s) {
  return fnv1a64(s.data(), s.size());
}

}  // namespace hs
