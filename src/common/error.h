// Root of the structured error taxonomy (docs/fault_model.md).
//
// Every *runtime* failure the pipeline can recover from or report derives
// from hs::Error, so orchestration code distinguishes "a resource failed"
// (catchable, possibly retryable) from programmer error (HS_EXPECTS aborts):
//
//   hs::Error
//   ├─ vgpu::DeviceOutOfMemory   allocation exceeds device global memory
//   ├─ vgpu::TransferFault       PCIe / staging copy failed beyond retry budget
//   ├─ sim::PipelineStalled      the task graph can no longer make progress
//   └─ io::IoError               filesystem failure (open, short read/write)
#pragma once

#include <stdexcept>

namespace hs {

class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace hs
