// Minimal JSON string escaping shared by the trace/report exporters.
#pragma once

#include <string>
#include <string_view>

namespace hs {

/// Escapes the characters a label could inject into a JSON string literal.
/// Control characters are replaced with spaces (labels are human-written
/// identifiers; we keep the exporter allocation-light instead of emitting
/// \uXXXX sequences).
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(static_cast<unsigned char>(c) < 0x20 ? ' ' : c);
  }
  return out;
}

}  // namespace hs
