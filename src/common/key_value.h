// Key/value record types — the element shapes of the related work's
// heterogeneous sorts (Stehle & Jacobsen sort 6 GB of 64-bit key / 64-bit
// value pairs; the paper's Fig 7 compares against that workload), plus a
// variable-width-payload generalisation for wider-record lanes.
#pragma once

#include <array>
#include <compare>
#include <cstddef>
#include <cstdint>

namespace hs {

struct KeyValue64 {
  std::uint64_t key = 0;
  std::uint64_t value = 0;

  friend bool operator==(const KeyValue64&, const KeyValue64&) = default;
  /// Ordering is by key only; the value is an opaque payload. Ties are
  /// resolved by stable algorithms, not by comparing values.
  friend bool operator<(const KeyValue64& a, const KeyValue64& b) {
    return a.key < b.key;
  }
};

static_assert(sizeof(KeyValue64) == 16);

/// 64-bit key with a `PayloadBytes`-wide opaque payload: the variable-width
/// kv record shape. Like KeyValue64, only the key participates in ordering;
/// the payload rides along untouched through every scatter and merge, so the
/// bytes-per-element cost of wider records is observable without adding a
/// comparison dimension.
template <std::size_t PayloadBytes>
struct KeyValuePad {
  std::uint64_t key = 0;
  std::array<std::byte, PayloadBytes> payload{};

  friend bool operator==(const KeyValuePad&, const KeyValuePad&) = default;
  friend bool operator<(const KeyValuePad& a, const KeyValuePad& b) {
    return a.key < b.key;
  }
};

/// The registry's wide-record lane: 8-byte key + 24-byte payload (32-byte
/// records, 4x the bytes of a bare key).
using KeyValue64P24 = KeyValuePad<24>;
static_assert(sizeof(KeyValue64P24) == 32);

}  // namespace hs
