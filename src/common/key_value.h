// 16-byte key/value record — the element type of the related work's
// heterogeneous sort (Stehle & Jacobsen sort 6 GB of 64-bit key / 64-bit
// value pairs; the paper's Fig 7 compares against that workload).
#pragma once

#include <compare>
#include <cstdint>

namespace hs {

struct KeyValue64 {
  std::uint64_t key = 0;
  std::uint64_t value = 0;

  friend bool operator==(const KeyValue64&, const KeyValue64&) = default;
  /// Ordering is by key only; the value is an opaque payload. Ties are
  /// resolved by stable algorithms, not by comparing values.
  friend bool operator<(const KeyValue64& a, const KeyValue64& b) {
    return a.key < b.key;
  }
};

static_assert(sizeof(KeyValue64) == 16);

}  // namespace hs
