// Small integer/float helpers shared across subsystems.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

namespace hs {

/// ceil(a / b) for positive integers.
constexpr std::uint64_t div_ceil(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// floor(log2(x)) for x >= 1.
constexpr std::uint32_t log2_floor(std::uint64_t x) {
  return 63u - static_cast<std::uint32_t>(std::countl_zero(x | 1ull));
}

/// ceil(log2(x)) for x >= 1; log2_ceil(1) == 0.
constexpr std::uint32_t log2_ceil(std::uint64_t x) {
  const std::uint32_t f = log2_floor(x);
  return (x == (1ull << f)) ? f : f + 1;
}

/// Natural-feeling log2 over the reals for cost models; log2d(1) == 0, and the
/// input is clamped at >= 1 so models never return negative work.
inline double log2d(double x) {
  return x <= 1.0 ? 0.0 : std::log2(x);
}

/// Linear interpolation.
constexpr double lerp(double a, double b, double t) { return a + (b - a) * t; }

/// Approximate relative equality used by model tests.
inline bool approx_rel(double a, double b, double rel_tol) {
  const double scale = std::max({std::abs(a), std::abs(b), 1e-30});
  return std::abs(a - b) <= rel_tol * scale;
}

}  // namespace hs
