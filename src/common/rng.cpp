#include "common/rng.h"

#include <cmath>

#include "common/assert.h"

namespace hs {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  // Seeding through splitmix64 guarantees a non-zero state even for seed 0,
  // which would otherwise be a fixed point of xoshiro.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform01() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  HS_EXPECTS(lo < hi);
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Xoshiro256::bounded(std::uint64_t bound) {
  HS_EXPECTS(bound > 0);
  // Rejection below the threshold (2^64 mod bound) removes modulo bias.
  const std::uint64_t threshold = (0ull - bound) % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

double Xoshiro256::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is kept away from zero so log(u1) is finite.
  double u1 = uniform01();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  cached_normal_ = r * std::sin(kTwoPi * u2);
  has_cached_normal_ = true;
  return r * std::cos(kTwoPi * u2);
}

void Xoshiro256::long_jump() {
  static constexpr std::uint64_t kJump[] = {
      0x76e15d3efefdcbbfull, 0xc5004e441c522fb3ull,
      0x77710069854ee241ull, 0x39109bb02acbe635ull};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ull << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

}  // namespace hs
