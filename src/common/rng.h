// Deterministic random number generation for workload synthesis.
//
// We deliberately avoid std::mt19937 + std::uniform_real_distribution in the
// library proper: their output is implementation-defined across standard
// libraries, and reproducibility of generated workloads is part of this
// project's contract. xoshiro256** (Blackman & Vigna) seeded via splitmix64 is
// small, fast, and bit-exact everywhere.
#pragma once

#include <cstdint>

namespace hs {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator, so it
/// can also drive standard algorithms such as std::shuffle.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()();

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound);

  /// Standard normal via Box-Muller (deterministic pairing).
  double normal();

  /// Long-jump: advances the state by 2^192 steps, giving independent
  /// non-overlapping subsequences for parallel generation.
  void long_jump();

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace hs
