#include "common/table.h"

#include <algorithm>
#include <cstdio>

#include "common/assert.h"

namespace hs {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  HS_EXPECTS(!columns_.empty());
}

Table& Table::row() {
  HS_EXPECTS_MSG(rows_.empty() || rows_.back().size() == columns_.size(),
                 "previous row not fully populated");
  rows_.emplace_back();
  rows_.back().reserve(columns_.size());
  return *this;
}

Table& Table::add(std::string value) {
  HS_EXPECTS_MSG(!rows_.empty() && rows_.back().size() < columns_.size(),
                 "add() without row() or row overfull");
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::add(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return add(std::string(buf));
}

Table& Table::add(std::uint64_t value) {
  return add(std::to_string(value));
}

Table& Table::add(int value) { return add(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) {
        os << std::string(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(columns_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

void Table::print_csv(std::ostream& os) const {
  os << "--- csv ---\n";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << columns_[c] << (c + 1 < columns_.size() ? "," : "\n");
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << r[c] << (c + 1 < r.size() ? "," : "\n");
    }
  }
  os << "--- end csv ---\n";
}

void print_section(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

void print_paper_check(std::ostream& os, const std::string& what,
                       double paper_value, double measured_value) {
  char buf[256];
  const double rel = paper_value != 0.0
                         ? measured_value / paper_value
                         : 0.0;
  std::snprintf(buf, sizeof buf,
                "[paper-check] %s: paper=%.4g measured=%.4g (ratio %.2f)",
                what.c_str(), paper_value, measured_value, rel);
  os << buf << '\n';
}

}  // namespace hs
