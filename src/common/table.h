// Aligned-table / CSV emitter used by every bench harness. Each figure bench
// prints (a) a human-readable aligned table mirroring the paper's plot series
// and (b) a machine-readable CSV block delimited by "--- csv ---" markers, so
// downstream plotting scripts can regenerate the figures.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace hs {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Starts a new row; subsequent add() calls fill it left to right.
  Table& row();

  Table& add(std::string value);
  Table& add(double value, int precision = 4);
  Table& add(std::uint64_t value);
  Table& add(int value);

  std::size_t num_rows() const { return rows_.size(); }

  /// Writes the aligned human-readable form.
  void print(std::ostream& os) const;

  /// Writes the CSV form (header + rows) between "--- csv ---" fences.
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a bench section header ("== Figure 9: ... ==") uniformly.
void print_section(std::ostream& os, const std::string& title);

/// Prints a "paper reports X, we measured Y" comparison line used by the
/// EXPERIMENTS.md extraction script and by eyeball checks.
void print_paper_check(std::ostream& os, const std::string& what,
                       double paper_value, double measured_value);

}  // namespace hs
