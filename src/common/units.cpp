#include "common/units.h"

#include <cstdio>

namespace hs {

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= kGiB) {
    std::snprintf(buf, sizeof buf, "%.2f GiB", b / static_cast<double>(kGiB));
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof buf, "%.2f MiB", b / static_cast<double>(kMiB));
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof buf, "%.2f KiB", b / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string format_count(std::uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1e", static_cast<double>(n));
  return buf;
}

std::string format_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f s", s);
  return buf;
}

}  // namespace hs
