// Byte-quantity helpers. The paper mixes GB (decimal, as in "6 GB of key/value
// pairs") and GiB (binary, as in "5.96 GiB"); we keep both spellings explicit
// so calibration constants are unambiguous.
#pragma once

#include <cstdint>
#include <string>

namespace hs {

inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * kKiB;
inline constexpr std::uint64_t kGiB = 1024ull * kMiB;

inline constexpr std::uint64_t kKB = 1000ull;
inline constexpr std::uint64_t kMB = 1000ull * kKB;
inline constexpr std::uint64_t kGB = 1000ull * kMB;

/// Bytes occupied by `n` 64-bit elements (the paper's element type throughout).
constexpr std::uint64_t bytes_of_elems(std::uint64_t n) { return n * 8ull; }

/// Converts bytes to (fractional) GiB, e.g. for axis labels matching Figs 5-11.
constexpr double to_gib(std::uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kGiB);
}

/// Converts bytes to decimal GB (Stehle & Jacobsen's unit).
constexpr double to_gb(std::uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kGB);
}

/// Human-readable byte count, e.g. "5.96 GiB", "8.00 MiB", "123 B".
std::string format_bytes(std::uint64_t bytes);

/// Engineering-notation count, e.g. 5e9 -> "5.0e+09".
std::string format_count(std::uint64_t n);

/// Seconds with millisecond resolution, e.g. "31.200 s".
std::string format_seconds(double s);

}  // namespace hs
