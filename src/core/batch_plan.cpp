#include "core/batch_plan.h"

#include <algorithm>

#include "common/assert.h"

namespace hs::core {

BatchPlan BatchPlan::create(const ResolvedConfig& rc) {
  BatchPlan plan;
  plan.batches_.reserve(rc.num_batches);
  std::uint64_t offset = 0;
  for (std::uint64_t i = 0; i < rc.num_batches; ++i) {
    Batch b;
    b.index = i;
    b.offset = offset;
    b.size = std::min(rc.batch_size, rc.n - offset);
    if (rc.device_pair_merge) {
      // Pairs (2k, 2k+1) must land on one (GPU, stream) slot: the stream
      // owns both device input buffers and merges them in place on that GPU.
      const std::uint64_t group = i / 2;
      const std::uint64_t slot = group % rc.total_streams();
      b.gpu = static_cast<unsigned>(slot / rc.streams_per_gpu);
      b.stream = static_cast<unsigned>(slot % rc.streams_per_gpu);
    } else {
      b.gpu = static_cast<unsigned>(i % rc.num_gpus);
      b.stream = static_cast<unsigned>((i / rc.num_gpus) % rc.streams_per_gpu);
    }
    offset += b.size;
    plan.batches_.push_back(b);
  }
  HS_ENSURES(offset == rc.n);
  return plan;
}

std::vector<std::uint64_t> BatchPlan::batches_for(unsigned gpu,
                                                  unsigned stream) const {
  std::vector<std::uint64_t> out;
  for (const Batch& b : batches_) {
    if (b.gpu == gpu && b.stream == stream) out.push_back(b.index);
  }
  return out;
}

}  // namespace hs::core
