// Batch decomposition and placement.
//
// Splits the n-element input into nb batches of bs elements (the last batch
// may be ragged — a generalisation over the paper, which assumes bs | n) and
// assigns each batch round-robin to a (GPU, stream) slot, realising the
// paper's "each stream is assigned nb/(ns*nGPU) batches" rule.
#pragma once

#include <cstdint>
#include <vector>

#include "core/sort_config.h"

namespace hs::core {

struct Batch {
  std::uint64_t index = 0;   // position in A (and in the merge order)
  std::uint64_t offset = 0;  // element offset into A
  std::uint64_t size = 0;    // elements; == bs except possibly the last
  unsigned gpu = 0;
  unsigned stream = 0;       // stream index local to the GPU
};

class BatchPlan {
 public:
  static BatchPlan create(const ResolvedConfig& rc);

  const std::vector<Batch>& batches() const { return batches_; }
  const Batch& batch(std::uint64_t i) const { return batches_[i]; }
  std::uint64_t num_batches() const { return batches_.size(); }

  /// Batch indices served by (gpu, stream), in processing order.
  std::vector<std::uint64_t> batches_for(unsigned gpu, unsigned stream) const;

 private:
  std::vector<Batch> batches_;
};

}  // namespace hs::core
