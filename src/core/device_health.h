// Service-wide device health tracking (docs/service.md).
//
// A single sort's recovery loop blacklists a persistently failing device for
// the remainder of *that run* only — the next sort starts from the full
// platform and pays the discovery cost again. When many jobs share one
// machine that is wasted work: once a device proves unhealthy, every
// subsequent job should route around it from the start. The board is that
// shared memory: the recovery loop reports blacklistings (by the device's
// index in the *original* platform, stable across the per-attempt erasures),
// and the sorter consults the board before building a pipeline.
//
// The board is advisory, never fatal: when every device is marked bad the
// sorter ignores it rather than refusing work (the CPU fallback and the
// per-run recovery loop still apply), so a poisoned board can degrade
// throughput but never availability.
#pragma once

#include <cstddef>
#include <mutex>
#include <set>
#include <vector>

namespace hs::core {

class DeviceHealthBoard {
 public:
  void blacklist(std::size_t platform_device_index) {
    const std::lock_guard<std::mutex> lock(mu_);
    bad_.insert(platform_device_index);
  }

  bool blacklisted(std::size_t platform_device_index) const {
    const std::lock_guard<std::mutex> lock(mu_);
    return bad_.count(platform_device_index) > 0;
  }

  std::vector<std::size_t> blacklisted_devices() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return {bad_.begin(), bad_.end()};
  }

  std::size_t count() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return bad_.size();
  }

 private:
  mutable std::mutex mu_;
  std::set<std::size_t> bad_;
};

}  // namespace hs::core
