#include "core/het_sorter.h"

#include <cstring>
#include <utility>

#include "common/assert.h"
#include "core/batch_plan.h"
#include "core/merge_schedule.h"
#include "core/pipeline_builder.h"
#include "vgpu/runtime.h"

namespace hs::core {

HeterogeneousSorter::HeterogeneousSorter(model::Platform platform,
                                         SortConfig config)
    : platform_(std::move(platform)), config_(config) {}

Report HeterogeneousSorter::sort_bytes(std::span<std::byte> data,
                                       std::uint64_t n,
                                       const cpu::ElementOps& ops) {
  HS_EXPECTS_MSG(data.size() == n * ops.elem_size,
                 "byte buffer does not match n * elem_size");
  return run(data, n, ops, /*is_real=*/true);
}

Report HeterogeneousSorter::simulate(std::uint64_t n) {
  return simulate(n, cpu::element_ops<double>());
}

Report HeterogeneousSorter::simulate(std::uint64_t n,
                                     const cpu::ElementOps& ops) {
  return run({}, n, ops, /*is_real=*/false);
}

Report HeterogeneousSorter::run(std::span<std::byte> data, std::uint64_t n,
                                const cpu::ElementOps& ops, bool is_real) {
  const auto mode =
      is_real ? vgpu::Execution::kReal : vgpu::Execution::kTimingOnly;
  const ResolvedConfig rc = resolve(config_, platform_, n, ops.elem_size);
  const BatchPlan plan = BatchPlan::create(rc);
  const MergeSchedule sched = MergeSchedule::plan(rc);

  vgpu::Runtime rt(platform_, mode);
  PipelineBuffers bufs;
  bufs.input = data;
  PipelineBuilder builder(rt, rc, plan, sched, ops);
  sim::TaskGraph graph = builder.build(bufs);
  sim::Trace trace = rt.engine().run(std::move(graph));

  Report r;
  r.n = n;
  r.num_batches = rc.num_batches;
  r.batch_size = rc.batch_size;
  r.pair_merges = sched.pairs().size();
  r.multiway_ways =
      rc.num_batches > 1 ? sched.multiway_ways(rc.num_batches) : 0;
  r.label = config_.label();
  r.element_type = ops.type_name;
  r.end_to_end = trace.makespan();
  r.busy = phase_times(trace);

  // Related-work accounting (Section IV-E): pure-rate transfers + on-GPU sort
  // + the single multiway merge of all nb batches, nothing else.
  const double bytes = static_cast<double>(n) * static_cast<double>(ops.elem_size);
  r.related_htod = bytes / platform_.pcie.pinned_bps;
  r.related_dtoh = bytes / platform_.pcie.pinned_dtoh_bps;
  double sort_total = 0;
  for (const Batch& b : plan.batches()) {
    sort_total +=
        platform_.gpus[b.gpu].sort.time(b.size) * ops.gpu_sort_cost_factor;
  }
  r.related_sort = sort_total / rc.num_gpus;  // GPUs sort concurrently
  r.related_merge =
      rc.num_batches > 1
          ? platform_.cpu_merge.time(n, static_cast<double>(rc.num_batches),
                                     rc.multiway_threads)
          : 0.0;
  r.related_work_total =
      r.related_htod + r.related_dtoh + r.related_sort + r.related_merge;

  r.reference_cpu_time =
      platform_.cpu_sort.time(n, platform_.reference_threads());

  r.trace = std::move(trace);

  if (is_real) {
    HS_ASSERT(bufs.output.size() == data.size());
    std::memcpy(data.data(), bufs.output.data(), data.size());
  }
  return r;
}

}  // namespace hs::core
