#include "core/het_sorter.h"

#include <algorithm>
#include <cstring>
#include <exception>
#include <utility>

#include "common/assert.h"
#include "core/batch_plan.h"
#include "core/memory_governor.h"
#include "core/merge_schedule.h"
#include "core/pipeline_builder.h"
#include "core/sort_plan.h"
#include "cpu/radix_sort.h"
#include "data/sketch.h"
#include "obs/counters.h"
#include "obs/span.h"
#include "obs/trace_io.h"
#include "vgpu/faults.h"
#include "vgpu/runtime.h"

namespace hs::core {

HeterogeneousSorter::HeterogeneousSorter(model::Platform platform,
                                         SortConfig config)
    : platform_(std::move(platform)), config_(config) {}

Report HeterogeneousSorter::sort_bytes(std::span<std::byte> data,
                                       std::uint64_t n,
                                       const cpu::ElementOps& ops) {
  HS_EXPECTS_MSG(data.size() == n * ops.elem_size,
                 "byte buffer does not match n * elem_size");
  return run(data, n, ops, /*is_real=*/true);
}

Report HeterogeneousSorter::simulate(std::uint64_t n) {
  return simulate(n, cpu::element_ops<double>());
}

Report HeterogeneousSorter::simulate(std::uint64_t n,
                                     const cpu::ElementOps& ops) {
  return run({}, n, ops, /*is_real=*/false);
}

Report HeterogeneousSorter::attempt(std::span<std::byte> data, std::uint64_t n,
                                    const cpu::ElementOps& ops, bool is_real,
                                    const model::Platform& plat,
                                    const SortConfig& cfg,
                                    sim::FaultInjector* injector,
                                    AttemptInfo& info) {
  const auto mode =
      is_real ? vgpu::Execution::kReal : vgpu::Execution::kTimingOnly;
  ResolvedConfig rc = resolve(cfg, plat, n, ops.elem_size);

  // Sort planner: engaged by any non-default engine policy or an explicit
  // hint; the fixed-radix default takes the zero-overhead pre-portfolio path.
  SortPlan splan;
  if (cfg.device_engine != DeviceEnginePolicy::kFixedRadix ||
      cfg.has_planner_hint) {
    obs::ScopedSpan plan_span("SortPlan", "Planner");
    data::InputSketch sk;
    if (cfg.has_planner_hint) {
      sk = cfg.planner_hint;
      if (sk.population == 0) sk.population = n;
    } else if (is_real && !data.empty() && cfg.planner_sample > 0 &&
               ops.extract_key) {
      sk = data::sketch_records(data.data(), n, ops.elem_size,
                                ops.extract_key, cfg.planner_sample);
    } else {
      // Timing-only without a hint (or sampling disabled): plan from the
      // conservative uniform assumption.
      sk = data::uniform_sketch(n);
    }
    splan =
        plan_device_sort(sk, rc, plat, ops.gpu_sort_cost_factor,
                         cfg.device_engine, ops.key_radix_bytes);
    if (splan.batch_adjusted) {
      SortConfig tuned = cfg;
      tuned.batch_size = splan.batch_size;
      rc = resolve(tuned, plat, n, ops.elem_size);
      obs::count(obs::Counter::kPlanBatchAdjusts, 1);
    }
    rc.device_launch = splan.launch;
    obs::count(obs::Counter::kSortPlans, 1);
    switch (splan.launch.engine) {
      case vgpu::DeviceSortEngine::kRadixLsd:
        obs::count(obs::Counter::kPlanEngineRadix, 1);
        break;
      case vgpu::DeviceSortEngine::kHybridMsd:
        obs::count(obs::Counter::kPlanEngineHybrid, 1);
        obs::count(obs::Counter::kPlanPassesSkipped,
                   cpu::kRadixPasses -
                       std::min(cpu::kRadixPasses,
                                splan.launch.predicted_passes));
        break;
      case vgpu::DeviceSortEngine::kSampleSort:
        obs::count(obs::Counter::kPlanEngineSample, 1);
        break;
    }
  }

  info.elapsed = 0;
  info.batch_size = rc.batch_size;
  const MergeSchedule sched = MergeSchedule::plan(rc);

  vgpu::Runtime rt(plat, mode);
  rt.bind_fault_injector(injector);
  const BatchPlan plan = BatchPlan::create(rc);

  PipelineBuffers bufs;
  bufs.input = data;
  PipelineBuilder builder(rt, rc, plan, sched, ops);
  sim::TaskGraph graph = builder.build(bufs);
  sim::Trace trace;
  try {
    trace = rt.engine().run(std::move(graph));
  } catch (...) {
    info.elapsed = rt.engine().abort_time();
    throw;
  }

  Report r;
  r.n = n;
  r.num_batches = rc.num_batches;
  r.batch_size = rc.batch_size;
  r.pair_merges = sched.pairs().size();
  r.multiway_ways =
      rc.num_batches > 1 ? sched.multiway_ways(rc.num_batches) : 0;
  if (r.multiway_ways > 0) {
    const cpu::MergePlan mp = plan_multiway_merge(
        {r.multiway_ways, n, ops.elem_size, ops.key_size,
         rc.multiway_threads});
    r.merge_topology =
        mp.topology == cpu::MergeTopology::kCascaded ? "cascaded" : "flat";
    r.merge_fan_in = mp.fan_in;
    r.merge_levels = mp.levels;
    r.merge_deferred = mp.deferred_payload;
  }
  r.label = cfg.label();
  r.element_type = ops.type_name;
  r.device_engine =
      std::string(vgpu::device_sort_engine_name(rc.device_launch.engine));
  r.plan_adaptive = splan.adaptive;
  r.plan_sketched = splan.sketched;
  r.plan_passes = rc.device_launch.predicted_passes;
  r.plan_log2_distinct = rc.device_launch.log2_distinct;
  r.sketch_entropy_bits = splan.sketch.entropy_bits;
  r.sketch_dup_ratio = splan.sketch.dup_ratio;
  r.sketch_presortedness = splan.sketch.presortedness;
  r.end_to_end = trace.makespan();
  r.busy = phase_times(trace);

  // Related-work accounting (Section IV-E): pure-rate transfers + on-GPU sort
  // + the single multiway merge of all nb batches, nothing else.
  const double bytes = static_cast<double>(n) * static_cast<double>(ops.elem_size);
  r.related_htod = bytes / plat.pcie.pinned_bps;
  r.related_dtoh = bytes / plat.pcie.pinned_dtoh_bps;
  double sort_total = 0;
  for (const Batch& b : plan.batches()) {
    sort_total +=
        plat.gpus[b.gpu].sort.time(b.size) * ops.gpu_sort_cost_factor;
  }
  r.related_sort = sort_total / rc.num_gpus;  // GPUs sort concurrently
  r.related_merge =
      rc.num_batches > 1
          ? plat.cpu_merge.time(n, static_cast<double>(rc.num_batches),
                                rc.multiway_threads)
          : 0.0;
  r.related_work_total =
      r.related_htod + r.related_dtoh + r.related_sort + r.related_merge;

  r.reference_cpu_time = plat.cpu_sort.time(n, plat.reference_threads());

  r.trace = std::move(trace);

  // Feed the observability layer from the completed trace: byte counters
  // always, the virtual-clock span tree only when a recorder is installed.
  // Done post-run so the engine itself stays observability-free.
  obs::ingest_trace_counters(r.trace);
  if (obs::SpanRecorder* rec = obs::current()) obs::ingest_trace(*rec, r.trace);

  if (is_real) {
    HS_ASSERT(bufs.output.size() == data.size());
    std::memcpy(data.data(), bufs.output.data(), data.size());
  }
  return r;
}

Report HeterogeneousSorter::cpu_fallback(std::span<std::byte> data,
                                         std::uint64_t n,
                                         const cpu::ElementOps& ops,
                                         bool is_real, double charged,
                                         RecoveryStats rec) {
  const double cpu_time =
      platform_.cpu_sort.time(n, platform_.reference_threads());
  if (is_real) ops.device_sort(data.data(), n, nullptr);

  Report r;
  r.n = n;
  r.label = config_.label() + "+CpuFallback";
  r.element_type = ops.type_name;
  r.end_to_end = charged + cpu_time;
  r.reference_cpu_time = cpu_time;
  rec.cpu_fallback = true;
  rec.recovery_seconds = charged;
  r.recovery = rec;
  return r;
}

Report HeterogeneousSorter::run(std::span<std::byte> data, std::uint64_t n,
                                const cpu::ElementOps& ops, bool is_real) {
  const obs::CounterSnapshot before = obs::counters().snapshot();
  Report r = run_impl(data, n, ops, is_real);
  // Mirror the run's recovery outcome into the counter registry so fleet-wide
  // fault accounting aggregates across runs like every other counter.
  obs::count(obs::Counter::kFaultsInjected, r.recovery.faults_injected);
  obs::count(obs::Counter::kTransferRetries, r.recovery.transfer_retries);
  obs::count(obs::Counter::kBatchResplits, r.recovery.batch_resplits);
  obs::count(obs::Counter::kDevicesBlacklisted,
             r.recovery.devices_blacklisted);
  obs::count(obs::Counter::kAttempts, r.recovery.attempts);
  obs::count(obs::Counter::kCpuFallbacks, r.recovery.cpu_fallback ? 1 : 0);
  r.counters = obs::counters().snapshot() - before;
  return r;
}

Report HeterogeneousSorter::run_impl(std::span<std::byte> data,
                                     std::uint64_t n,
                                     const cpu::ElementOps& ops,
                                     bool is_real) {
  // Governor admission: rule on the projected footprint before anything is
  // allocated. Staging overflow shrinks ps; a 3n overflow degrades the sort
  // to the spill path (or throws HostBudgetExceeded when none applies).
  SortConfig admitted = config_;
  std::uint64_t admission_ps_shrinks = 0;
  if (admitted.host_budget_bytes > 0) {
    MemoryGovernor gov(admitted.host_budget_bytes);
    if (!gov.fits(admitted, n, ops.elem_size)) {
      const std::uint64_t footprint =
          MemoryGovernor::pipeline_footprint_bytes(admitted, n, ops.elem_size);
      const std::uint64_t ps = gov.staging_to_fit(admitted, n, ops.elem_size);
      if (ps > 0) {
        gov.record({GovernorDecision::Kind::kShrinkStaging, footprint,
                    gov.budget_bytes(), ps});
        admitted.staging_elems = ps;
        admission_ps_shrinks = 1;
      } else {
        SpillBackend* backend = spill_backend();
        // Timing-only runs cannot spill: the backend sorts real bytes.
        if (backend == nullptr || !is_real || !backend->can_spill(ops))
          throw HostBudgetExceeded(footprint, gov.budget_bytes());
        const std::uint64_t chunk =
            gov.spill_chunk_elems(admitted, ops.elem_size);
        gov.record({GovernorDecision::Kind::kSpill, footprint,
                    gov.budget_bytes(), chunk});
        Report r =
            backend->spill_sort(data, n, ops, platform_, admitted, chunk);
        r.recovery.spilled = true;
        return r;
      }
    }
  }

  // Shared device health: start from the survivors other jobs already
  // discovered. `orig_index[i]` names plat.gpus[i] in the *original*
  // platform, stable across erasures, so the board speaks one language
  // across concurrent jobs. Advisory: when every device is marked bad the
  // board is ignored (the per-run recovery loop still degrades gracefully),
  // so a poisoned board cannot take the service down.
  model::Platform base_plat = platform_;
  std::vector<std::size_t> orig_index(base_plat.gpus.size());
  for (std::size_t i = 0; i < orig_index.size(); ++i) orig_index[i] = i;
  if (DeviceHealthBoard* board = admitted.device_health) {
    model::Platform filtered = base_plat;
    std::vector<std::size_t> filtered_index = orig_index;
    for (std::size_t i = filtered_index.size(); i-- > 0;) {
      if (board->blacklisted(filtered_index[i])) {
        filtered.gpus.erase(filtered.gpus.begin() +
                            static_cast<std::ptrdiff_t>(i));
        filtered_index.erase(filtered_index.begin() +
                             static_cast<std::ptrdiff_t>(i));
      }
    }
    if (!filtered.gpus.empty()) {
      base_plat = std::move(filtered);
      orig_index = std::move(filtered_index);
      admitted.num_gpus =
          std::min(std::max(1u, admitted.num_gpus),
                   static_cast<unsigned>(base_plat.gpus.size()));
    }
  }

  sim::FaultInjector injector(admitted.faults);
  const RecoveryPolicy& pol = admitted.recovery;
  AttemptInfo info;
  if (!injector.enabled() && !pol.enabled) {
    // Fault-free fast path: zero overhead, pre-recovery semantics.
    Report r = attempt(data, n, ops, is_real, base_plat, admitted, nullptr,
                       info);
    r.recovery.ps_shrinks += admission_ps_shrinks;
    return r;
  }

  RecoveryStats rec;
  rec.ps_shrinks = admission_ps_shrinks;
  double charged = 0;  // virtual seconds burned by failed attempts + penalties

  // Attempt-mutable state. Blacklisting erases devices from the platform
  // copy; OOM re-splits shrink the batch size.
  model::Platform plat = base_plat;
  SortConfig cfg = admitted;

  // Aborted attempts leave A / W / B partially overwritten (pair merges
  // recycle A's storage), so every re-attempt restarts from a pristine copy.
  std::vector<std::byte> pristine;
  if (is_real) pristine.assign(data.begin(), data.end());
  const auto restore = [&] {
    if (is_real) std::memcpy(data.data(), pristine.data(), pristine.size());
  };

  const unsigned max_attempts = pol.enabled ? std::max(1u, pol.max_attempts) : 1;
  std::exception_ptr last_error;
  for (unsigned att = 0; att < max_attempts; ++att) {
    if (att > 0) restore();
    rec.attempts = att + 1;
    try {
      Report r = attempt(data, n, ops, is_real, plat, cfg, &injector, info);
      rec.faults_injected = injector.stats().total();
      rec.transfer_retries = injector.stats().retries_charged;
      rec.recovery_seconds = charged;
      r.end_to_end += charged;
      r.recovery = rec;
      return r;
    } catch (const vgpu::DeviceOutOfMemory&) {
      if (!pol.enabled) throw;
      // The geometry (or an injected allocation failure) does not fit:
      // halve the batch and requeue. BLine admits exactly one batch, so
      // splitting cannot help it.
      if (info.batch_size <= 1 || cfg.approach == Approach::kBLine) throw;
      last_error = std::current_exception();
      charged += info.elapsed + pol.resplit_penalty_s;
      cfg.batch_size = info.batch_size / 2;
      ++rec.batch_resplits;
    } catch (const vgpu::TransferFault& e) {
      if (!pol.enabled) throw;
      last_error = std::current_exception();
      charged += info.elapsed + pol.backoff_total(att + 1);
      ++rec.devices_blacklisted;
      if (plat.gpus.size() <= 1) {
        // Last device lost: CPU is all that remains.
        rec.faults_injected = injector.stats().total();
        rec.transfer_retries = injector.stats().retries_charged;
        if (!pol.cpu_fallback) throw;
        restore();
        return cpu_fallback(data, n, ops, is_real, charged, rec);
      }
      HS_ASSERT(e.device_index() < plat.gpus.size());
      // Publish the discovery so concurrent jobs route around the device
      // from the start instead of each re-paying the blacklisting cost.
      if (admitted.device_health != nullptr &&
          e.device_index() < orig_index.size()) {
        admitted.device_health->blacklist(orig_index[e.device_index()]);
        orig_index.erase(orig_index.begin() +
                         static_cast<std::ptrdiff_t>(e.device_index()));
      }
      plat.gpus.erase(plat.gpus.begin() + e.device_index());
      const auto remaining = static_cast<unsigned>(plat.gpus.size());
      cfg.num_gpus = std::min(std::max(1u, cfg.num_gpus), remaining);
    } catch (const vgpu::HostAllocFailed&) {
      if (!pol.enabled) throw;
      // The host refused a pinned staging allocation: shrink ps and retry
      // with smaller staging chunks (the governor's reaction ladder).
      const std::uint64_t ps = MemoryGovernor::shrink_staging(cfg.staging_elems);
      if (ps == 0) {
        // Already at the ps floor; the CPU path needs no pinned memory.
        rec.faults_injected = injector.stats().total();
        rec.transfer_retries = injector.stats().retries_charged;
        if (!pol.cpu_fallback) throw;
        charged += info.elapsed + pol.backoff_total(att + 1);
        restore();
        return cpu_fallback(data, n, ops, is_real, charged, rec);
      }
      last_error = std::current_exception();
      charged += info.elapsed + pol.backoff_total(att + 1);
      MemoryGovernor gov(cfg.host_budget_bytes);
      gov.record({GovernorDecision::Kind::kShrinkStaging,
                  MemoryGovernor::pipeline_footprint_bytes(cfg, n,
                                                           ops.elem_size),
                  gov.budget_bytes(), ps});
      cfg.staging_elems = ps;
      ++rec.ps_shrinks;
    }
    // PipelineStalled propagates: a stuck graph is a bug or an injected
    // hang, and the watchdog report (not a blind retry) is the deliverable.
  }

  rec.faults_injected = injector.stats().total();
  rec.transfer_retries = injector.stats().retries_charged;
  if (pol.cpu_fallback) {
    restore();
    return cpu_fallback(data, n, ops, is_real, charged, rec);
  }
  HS_ASSERT(last_error != nullptr);
  std::rethrow_exception(last_error);
}

}  // namespace hs::core
