// Public entry point of the hetsort library.
//
// Sorts inputs larger than GPU global memory on a heterogeneous CPU/GPU
// platform: batches are sorted on the (virtual) GPU(s) and merged on the CPU,
// with the paper's pipelining optimisations selected by SortConfig.
//
//   hs::model::Platform plat = hs::model::platform1();
//   hs::core::SortConfig cfg;                    // PIPEMERGE defaults
//   hs::core::HeterogeneousSorter sorter(plat, cfg);
//   std::vector<double> data = ...;
//   hs::core::Report r = sorter.sort(data);      // data is now sorted
//   r.print(std::cout);
//
// sort() executes every data movement and sort for real (verifiable output)
// while a discrete-event simulation of the platform produces the virtual
// end-to-end time; simulate() runs the identical pipeline without payloads
// for paper-scale n. Element types: double (the paper's workload), uint64_t
// keys, KeyValue64 records (the related work's workload), or any trivially
// copyable type with a cpu::ElementOps.
//
// When SortConfig::faults injects failures and/or SortConfig::recovery is
// enabled, sort() runs a recovery loop around the pipeline: transient
// transfer faults are retried with backoff inside the task graph, device OOM
// halves the batch geometry and requeues, persistently failing devices are
// blacklisted with work redistributed to the survivors, and a CPU-only sort
// is the last resort. All recovery cost is charged to the virtual clock and
// itemised in Report::recovery (see docs/fault_model.md).
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "common/assert.h"
#include "core/report.h"
#include "core/sort_config.h"
#include "cpu/element_ops.h"
#include "model/platforms.h"
#include "sim/fault_injector.h"

namespace hs::core {

class HeterogeneousSorter {
 public:
  HeterogeneousSorter(model::Platform platform, SortConfig config);

  const model::Platform& platform() const { return platform_; }
  const SortConfig& config() const { return config_; }

  /// Sorts `data` in place through the heterogeneous pipeline (real
  /// execution). Throws vgpu::DeviceOutOfMemory if the resolved batch
  /// geometry cannot fit the device. Requires ~2n additional host memory
  /// (working + output buffers), the paper's ~3n total budget.
  template <typename T>
  Report sort(std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    HS_EXPECTS_MSG(!data.empty(), "cannot sort an empty input");
    return sort_bytes(std::as_writable_bytes(std::span(data)), data.size(),
                      cpu::element_ops<T>());
  }

  /// Type-erased variant for custom element types.
  Report sort_bytes(std::span<std::byte> data, std::uint64_t n,
                    const cpu::ElementOps& ops);

  /// Runs the identical pipeline for `n` elements without payload memory and
  /// returns the timing report. Use for paper-scale inputs (n up to 5e9).
  Report simulate(std::uint64_t n);
  Report simulate(std::uint64_t n, const cpu::ElementOps& ops);

 private:
  /// Virtual time an aborted attempt burned and the batch size it ran with,
  /// for charging/halving in the recovery loop.
  struct AttemptInfo {
    double elapsed = 0;
    std::uint64_t batch_size = 0;
  };

  /// Observability wrapper: snapshots the counter registry around run_impl,
  /// feeds the recovery counters, and stores the delta in Report::counters.
  Report run(std::span<std::byte> data, std::uint64_t n,
             const cpu::ElementOps& ops, bool is_real);

  Report run_impl(std::span<std::byte> data, std::uint64_t n,
                  const cpu::ElementOps& ops, bool is_real);

  /// One pipeline build + engine run against `plat`/`cfg`. Fills `info`
  /// before any fault can strike so the recovery loop can charge and adapt.
  Report attempt(std::span<std::byte> data, std::uint64_t n,
                 const cpu::ElementOps& ops, bool is_real,
                 const model::Platform& plat, const SortConfig& cfg,
                 sim::FaultInjector* injector, AttemptInfo& info);

  /// All devices lost (or attempts exhausted): CPU-only sort, charged at the
  /// platform's reference CPU sort model on top of `charged` recovery time.
  Report cpu_fallback(std::span<std::byte> data, std::uint64_t n,
                      const cpu::ElementOps& ops, bool is_real, double charged,
                      RecoveryStats rec);

  model::Platform platform_;
  SortConfig config_;
};

}  // namespace hs::core
