// Public entry point of the hetsort library.
//
// Sorts inputs larger than GPU global memory on a heterogeneous CPU/GPU
// platform: batches are sorted on the (virtual) GPU(s) and merged on the CPU,
// with the paper's pipelining optimisations selected by SortConfig.
//
//   hs::model::Platform plat = hs::model::platform1();
//   hs::core::SortConfig cfg;                    // PIPEMERGE defaults
//   hs::core::HeterogeneousSorter sorter(plat, cfg);
//   std::vector<double> data = ...;
//   hs::core::Report r = sorter.sort(data);      // data is now sorted
//   r.print(std::cout);
//
// sort() executes every data movement and sort for real (verifiable output)
// while a discrete-event simulation of the platform produces the virtual
// end-to-end time; simulate() runs the identical pipeline without payloads
// for paper-scale n. Element types: double (the paper's workload), uint64_t
// keys, KeyValue64 records (the related work's workload), or any trivially
// copyable type with a cpu::ElementOps.
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "common/assert.h"
#include "core/report.h"
#include "core/sort_config.h"
#include "cpu/element_ops.h"
#include "model/platforms.h"

namespace hs::core {

class HeterogeneousSorter {
 public:
  HeterogeneousSorter(model::Platform platform, SortConfig config);

  const model::Platform& platform() const { return platform_; }
  const SortConfig& config() const { return config_; }

  /// Sorts `data` in place through the heterogeneous pipeline (real
  /// execution). Throws vgpu::DeviceOutOfMemory if the resolved batch
  /// geometry cannot fit the device. Requires ~2n additional host memory
  /// (working + output buffers), the paper's ~3n total budget.
  template <typename T>
  Report sort(std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    HS_EXPECTS_MSG(!data.empty(), "cannot sort an empty input");
    return sort_bytes(std::as_writable_bytes(std::span(data)), data.size(),
                      cpu::element_ops<T>());
  }

  /// Type-erased variant for custom element types.
  Report sort_bytes(std::span<std::byte> data, std::uint64_t n,
                    const cpu::ElementOps& ops);

  /// Runs the identical pipeline for `n` elements without payload memory and
  /// returns the timing report. Use for paper-scale inputs (n up to 5e9).
  Report simulate(std::uint64_t n);
  Report simulate(std::uint64_t n, const cpu::ElementOps& ops);

 private:
  Report run(std::span<std::byte> data, std::uint64_t n,
             const cpu::ElementOps& ops, bool is_real);

  model::Platform platform_;
  SortConfig config_;
};

}  // namespace hs::core
