#include "core/lower_bound.h"

#include "common/assert.h"
#include "core/het_sorter.h"
#include "core/sort_config.h"

namespace hs::core {

double LowerBoundModel::time(std::uint64_t n, unsigned gpus) const {
  HS_EXPECTS(gpus == 1 || gpus == num_gpus);
  const double slope = gpus == 1 ? per_elem_1gpu : per_elem_multi;
  return slope * static_cast<double>(n);
}

LowerBoundModel LowerBoundModel::derive(const model::Platform& platform,
                                        std::uint64_t calib_n_1gpu,
                                        unsigned gpus) {
  HS_EXPECTS(gpus >= 1 && gpus <= platform.gpus.size());
  LowerBoundModel m;
  m.num_gpus = gpus;

  // 1 GPU: plain BLINE, one batch, no merging — peak pipeline throughput.
  {
    SortConfig cfg;
    cfg.approach = Approach::kBLine;
    cfg.batch_size = calib_n_1gpu;
    cfg.num_gpus = 1;
    HeterogeneousSorter sorter(platform, cfg);
    const Report r = sorter.simulate(calib_n_1gpu);
    m.per_elem_1gpu = r.end_to_end / static_cast<double>(calib_n_1gpu);
  }

  // Multi GPU: each device sorts one full batch (ns = 1) and the host merges
  // the resulting `gpus` runs once — the unavoidable merge of Section IV-G.
  if (gpus >= 2) {
    const std::uint64_t n = calib_n_1gpu * gpus;
    SortConfig cfg;
    cfg.approach = Approach::kBLineMulti;
    cfg.batch_size = calib_n_1gpu;
    cfg.num_gpus = gpus;
    cfg.streams_per_gpu = 1;
    HeterogeneousSorter sorter(platform, cfg);
    const Report r = sorter.simulate(n);
    HS_ASSERT(r.num_batches == gpus);
    m.per_elem_multi = r.end_to_end / static_cast<double>(n);
  } else {
    m.per_elem_multi = m.per_elem_1gpu;
  }
  return m;
}

}  // namespace hs::core
