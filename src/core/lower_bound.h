// Lower-bound baseline models (Section IV-G).
//
// The paper models peak heterogeneous sorting throughput as linear in n,
// derived from BLINE runs where no (1 GPU) or minimal (2 GPUs, one pair
// merge) host merging occurs:
//   1 GPU :  measure BLINE at the largest n fitting global memory; the
//            per-element time t/n is the slope (paper: 6.278e-9 s on
//            PLATFORM2).
//   2 GPUs:  run BLINE-style sorting of n/2 per GPU with ns = 1 plus the one
//            unavoidable pairwise merge (paper: 3.706e-9 s).
// We reproduce the methodology, not the constants: derive() actually executes
// the calibration runs through the simulator.
#pragma once

#include <cstdint>

#include "model/platforms.h"

namespace hs::core {

struct LowerBoundModel {
  double per_elem_1gpu = 0;   // seconds per element, single GPU
  double per_elem_multi = 0;  // seconds per element, num_gpus GPUs
  unsigned num_gpus = 1;

  double time(std::uint64_t n, unsigned gpus) const;

  /// Derives both slopes on `platform` by running the calibration BLINE
  /// pipelines in timing-only mode. `calib_n_1gpu` is the single-GPU
  /// calibration size (must fit one device's memory with its sort temporary,
  /// i.e. 2 * n * 8 bytes <= device memory); the multi-GPU run uses
  /// gpus * calib_n_1gpu elements split evenly.
  static LowerBoundModel derive(const model::Platform& platform,
                                std::uint64_t calib_n_1gpu, unsigned gpus);
};

}  // namespace hs::core
