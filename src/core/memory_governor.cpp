#include "core/memory_governor.h"

#include <algorithm>
#include <atomic>

#include "common/assert.h"
#include "obs/counters.h"
#include "obs/span.h"

namespace hs::core {
namespace {

std::atomic<SpillBackend*> g_spill_backend{nullptr};

}  // namespace

std::string_view governor_decision_name(GovernorDecision::Kind kind) {
  switch (kind) {
    case GovernorDecision::Kind::kAdmit:
      return "admit";
    case GovernorDecision::Kind::kShrinkStaging:
      return "shrink-staging";
    case GovernorDecision::Kind::kSpill:
      return "spill";
  }
  return "?";
}

std::uint64_t MemoryGovernor::staging_footprint_bytes(const SortConfig& cfg,
                                                      std::size_t elem_size) {
  const std::uint64_t gpus = std::max(1u, cfg.num_gpus);
  const std::uint64_t streams = std::max(1u, cfg.streams_per_gpu);
  const std::uint64_t buffers = cfg.double_buffer_staging ? 2 : 1;
  return gpus * streams * buffers *
         static_cast<std::uint64_t>(cfg.staging_elems) * elem_size;
}

std::uint64_t MemoryGovernor::pipeline_footprint_bytes(const SortConfig& cfg,
                                                       std::uint64_t n,
                                                       std::size_t elem_size) {
  return 3 * n * elem_size + staging_footprint_bytes(cfg, elem_size);
}

bool MemoryGovernor::fits(const SortConfig& cfg, std::uint64_t n,
                          std::size_t elem_size) const {
  if (!limited()) return true;
  return pipeline_footprint_bytes(cfg, n, elem_size) <= budget_bytes_;
}

std::uint64_t MemoryGovernor::staging_to_fit(const SortConfig& cfg,
                                             std::uint64_t n,
                                             std::size_t elem_size) const {
  const std::uint64_t data = 3 * n * elem_size;
  if (data > budget_bytes_) return 0;  // staging is not what overflows
  SortConfig probe = cfg;
  probe.staging_elems = kMinStagingElems;
  if (staging_footprint_bytes(probe, elem_size) > budget_bytes_ - data)
    return 0;  // even the floor cannot fit next to 3n
  // Per-element cost of staging: one slot for each (gpu, stream, buffer).
  const std::uint64_t gpus = std::max(1u, cfg.num_gpus);
  const std::uint64_t streams = std::max(1u, cfg.streams_per_gpu);
  const std::uint64_t buffers = cfg.double_buffer_staging ? 2 : 1;
  const std::uint64_t per_elem = gpus * streams * buffers * elem_size;
  const std::uint64_t ps = (budget_bytes_ - data) / per_elem;
  return std::min<std::uint64_t>(cfg.staging_elems,
                                 std::max(ps, kMinStagingElems));
}

std::uint64_t MemoryGovernor::shrink_staging(std::uint64_t current_ps) {
  if (current_ps <= kMinStagingElems) return 0;
  return std::max(current_ps / 2, kMinStagingElems);
}

std::uint64_t MemoryGovernor::spill_chunk_elems(const SortConfig& cfg,
                                                std::size_t elem_size) const {
  const std::uint64_t staging = staging_footprint_bytes(cfg, elem_size);
  const std::uint64_t avail =
      budget_bytes_ > staging ? budget_bytes_ - staging : budget_bytes_ / 2;
  return std::max<std::uint64_t>(avail / (3 * elem_size), kMinStagingElems);
}

void MemoryGovernor::record(GovernorDecision decision) {
  switch (decision.kind) {
    case GovernorDecision::Kind::kAdmit:
      break;
    case GovernorDecision::Kind::kShrinkStaging:
      obs::count(obs::Counter::kGovernorPsShrinks, 1);
      break;
    case GovernorDecision::Kind::kSpill:
      obs::count(obs::Counter::kGovernorSpills, 1);
      break;
  }
  if (obs::SpanRecorder* rec = obs::current()) {
    obs::Span s;
    const char* detail_key =
        decision.kind == GovernorDecision::Kind::kSpill ? " chunk=" : " ps=";
    s.name = std::string(governor_decision_name(decision.kind)) +
             " footprint=" + std::to_string(decision.footprint_bytes) +
             "B budget=" + std::to_string(decision.budget_bytes) + "B" +
             detail_key + std::to_string(decision.detail);
    s.category = "Governor";
    s.start = s.end = rec->now();  // zero-width marker on the wall timeline
    s.clock = obs::Clock::kWall;
    rec->record(std::move(s));
  }
  const std::lock_guard<std::mutex> lock(decisions_mu_);
  decisions_.push_back(decision);
}

std::vector<GovernorDecision> MemoryGovernor::decisions() const {
  const std::lock_guard<std::mutex> lock(decisions_mu_);
  return decisions_;
}

bool MemoryGovernor::try_reserve(std::uint64_t bytes) {
  std::uint64_t cur = reserved_.load(std::memory_order_relaxed);
  for (;;) {
    if (limited() && (bytes > budget_bytes_ || cur > budget_bytes_ - bytes)) {
      return false;
    }
    if (reserved_.compare_exchange_weak(cur, cur + bytes,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
      break;
    }
  }
  // Track the high-water mark; losing a race here only under-reports the
  // peak by a concurrent release, never the invariant.
  std::uint64_t now = cur + bytes;
  std::uint64_t peak = peak_reserved_.load(std::memory_order_relaxed);
  while (now > peak && !peak_reserved_.compare_exchange_weak(
                           peak, now, std::memory_order_acq_rel,
                           std::memory_order_relaxed)) {
  }
  return true;
}

void MemoryGovernor::release(std::uint64_t bytes) {
  const std::uint64_t prev =
      reserved_.fetch_sub(bytes, std::memory_order_acq_rel);
  HS_EXPECTS_MSG(prev >= bytes, "governor release exceeds reserved bytes");
}

std::uint64_t MemoryGovernor::available_bytes() const {
  if (!limited()) return UINT64_MAX;
  const std::uint64_t r = reserved_.load(std::memory_order_acquire);
  return r >= budget_bytes_ ? 0 : budget_bytes_ - r;
}

SpillBackend* spill_backend() {
  return g_spill_backend.load(std::memory_order_acquire);
}

void set_spill_backend(SpillBackend* backend) {
  g_spill_backend.store(backend, std::memory_order_release);
}

}  // namespace hs::core
