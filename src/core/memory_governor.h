// Host memory-pressure governor (docs/fault_model.md).
//
// The paper's in-memory pipeline needs ~3n host bytes (input A + working W +
// output B, Section III-C) plus the pinned staging areas. Until now that
// budget was implicit: exceed it and the process dies in the allocator. The
// governor makes it explicit policy:
//
//   * admission — before a sort runs, its projected footprint is checked
//     against `SortConfig::host_budget_bytes`. Staging overflow is solved by
//     shrinking ps (the paper shows ps has shallow impact past ~1e6); a 3n
//     overflow degrades the sort to the out-of-core spill path instead of
//     throwing, via the SpillBackend that hs_io registers;
//   * reaction — a pinned/staging allocation that fails mid-run
//     (vgpu::HostAllocFailed, injectable via sim::FaultSite::kHostAllocFail)
//     halves ps and retries through the recovery loop instead of aborting.
//
// Every decision is recorded: obs counters (kGovernorPsShrinks /
// kGovernorSpills), Report::recovery (ps_shrinks / spilled), and — when a
// SpanRecorder is installed — zero-width "Governor" spans on the wall
// timeline, so degradation stays measured, never silent.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/report.h"
#include "core/sort_config.h"
#include "cpu/element_ops.h"
#include "model/platforms.h"

namespace hs::core {

/// Thrown when the configured host budget cannot admit the sort and no
/// degradation applies (no spill backend registered, a timing-only run, or
/// an element type the spill path cannot serialise).
class HostBudgetExceeded : public hs::Error {
 public:
  HostBudgetExceeded(std::uint64_t footprint_bytes, std::uint64_t budget_bytes)
      : hs::Error("sort footprint of " + std::to_string(footprint_bytes) +
                  " bytes exceeds the host budget of " +
                  std::to_string(budget_bytes) +
                  " bytes and no spill path is available"),
        footprint_bytes_(footprint_bytes),
        budget_bytes_(budget_bytes) {}

  std::uint64_t footprint_bytes() const { return footprint_bytes_; }
  std::uint64_t budget_bytes() const { return budget_bytes_; }

 private:
  std::uint64_t footprint_bytes_;
  std::uint64_t budget_bytes_;
};

struct GovernorDecision {
  enum class Kind : std::uint8_t {
    kAdmit,          // footprint fits, nothing to do
    kShrinkStaging,  // ps reduced (admission pre-shrink or alloc-fail retry)
    kSpill,          // sort handed to the out-of-core path
  };
  Kind kind = Kind::kAdmit;
  std::uint64_t footprint_bytes = 0;
  std::uint64_t budget_bytes = 0;
  /// kShrinkStaging: the new ps (elements); kSpill: the chunk size chosen
  /// for the external path (elements).
  std::uint64_t detail = 0;
};

std::string_view governor_decision_name(GovernorDecision::Kind kind);

class MemoryGovernor {
 public:
  /// Smallest ps the shrink ladder will go to; below this the staging chunks
  /// are so small that per-chunk sync dominates and shrinking further cannot
  /// be what saves the run.
  static constexpr std::uint64_t kMinStagingElems = 1024;

  /// budget_bytes == 0 means unlimited (the pre-governor behaviour).
  explicit MemoryGovernor(std::uint64_t budget_bytes)
      : budget_bytes_(budget_bytes) {}

  bool limited() const { return budget_bytes_ > 0; }
  std::uint64_t budget_bytes() const { return budget_bytes_; }

  /// Pinned staging bytes the config will allocate across all streams.
  static std::uint64_t staging_footprint_bytes(const SortConfig& cfg,
                                               std::size_t elem_size);

  /// Projected host footprint of an in-memory sort of n elements: the
  /// paper's ~3n (A + W + B) plus pinned staging. Computed from the raw
  /// config (not ResolvedConfig) so the governor can rule on sorts the
  /// resolver would reject.
  static std::uint64_t pipeline_footprint_bytes(const SortConfig& cfg,
                                                std::uint64_t n,
                                                std::size_t elem_size);

  bool fits(const SortConfig& cfg, std::uint64_t n,
            std::size_t elem_size) const;

  /// Largest ps (<= cfg.staging_elems) that brings the footprint under the
  /// budget, or 0 when even kMinStagingElems cannot (the 3n term alone
  /// exceeds the budget — staging is not the problem).
  std::uint64_t staging_to_fit(const SortConfig& cfg, std::uint64_t n,
                               std::size_t elem_size) const;

  /// Reaction ladder after a host allocation failure: halve ps, clamped to
  /// kMinStagingElems. Returns 0 when already at the floor (give up).
  static std::uint64_t shrink_staging(std::uint64_t current_ps);

  /// Chunk size for the spill path such that each chunk's own 3*chunk
  /// footprint (plus staging) fits the budget.
  std::uint64_t spill_chunk_elems(const SortConfig& cfg,
                                  std::size_t elem_size) const;

  /// Tallies the decision into the obs counters, the decision log, and (when
  /// a recorder is installed) the wall-clock span timeline. Thread-safe: the
  /// service records decisions from concurrent worker threads.
  void record(GovernorDecision decision);

  /// Snapshot of the decision log (copied under the log mutex).
  std::vector<GovernorDecision> decisions() const;

  // --- concurrent reservation ledger ----------------------------------------
  // A governor shared across concurrent jobs is a byte-accounting arbiter:
  // each job reserves its negotiated budget before running and releases it
  // after. The invariant `reserved <= budget` holds under arbitrary races
  // (CAS admission), and releases may come from any thread.

  /// Atomically reserves `bytes` iff the ledger stays within the budget.
  /// Always succeeds on an unlimited governor (budget 0), but still accounts
  /// the bytes so releases balance.
  bool try_reserve(std::uint64_t bytes);

  /// Returns bytes reserved by a matching successful try_reserve. Aborts on
  /// a release that was never reserved (programmer error).
  void release(std::uint64_t bytes);

  std::uint64_t reserved_bytes() const {
    return reserved_.load(std::memory_order_acquire);
  }
  /// High-water mark of the ledger over the governor's lifetime.
  std::uint64_t peak_reserved_bytes() const {
    return peak_reserved_.load(std::memory_order_acquire);
  }
  /// Headroom under the budget; UINT64_MAX when unlimited.
  std::uint64_t available_bytes() const;

  /// Ledger occupancy in [0, 1]: reserved / budget, or 0 when unlimited.
  /// One of the load signals driving the service's degraded-mode machine.
  double occupancy() const {
    return limited() ? static_cast<double>(reserved_bytes()) /
                           static_cast<double>(budget_bytes_)
                     : 0.0;
  }

 private:
  std::uint64_t budget_bytes_;
  std::atomic<std::uint64_t> reserved_{0};
  std::atomic<std::uint64_t> peak_reserved_{0};
  mutable std::mutex decisions_mu_;
  std::vector<GovernorDecision> decisions_;
};

/// Out-of-core escape hatch for sorts the budget cannot admit. hs_core only
/// defines the interface; hs_io registers the disk implementation
/// (io::ensure_spill_backend) because core cannot depend on io.
class SpillBackend {
 public:
  virtual ~SpillBackend() = default;

  /// True when this backend can serialise elements of `ops`' type.
  virtual bool can_spill(const cpu::ElementOps& ops) const = 0;

  /// Sorts `data` in place through the out-of-core path, chunking at
  /// `chunk_elems` so each chunk fits the budget. Returns a report whose
  /// end_to_end is the summed pipeline virtual time of the chunk sorts.
  virtual Report spill_sort(std::span<std::byte> data, std::uint64_t n,
                            const cpu::ElementOps& ops,
                            const model::Platform& platform,
                            const SortConfig& cfg,
                            std::uint64_t chunk_elems) = 0;
};

/// Process-wide registered backend, or nullptr.
SpillBackend* spill_backend();
void set_spill_backend(SpillBackend* backend);

}  // namespace hs::core
