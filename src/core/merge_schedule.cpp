#include "core/merge_schedule.h"

#include "common/assert.h"

namespace hs::core {

std::uint64_t MergeSchedule::heuristic_pair_count(std::uint64_t nb,
                                                  unsigned ngpu) {
  if (nb < 2) return 0;
  if (ngpu <= 1) return (nb - 1) / 2;
  return (nb - 1) / (2ull * ngpu);
}

MergeSchedule MergeSchedule::plan(const ResolvedConfig& rc) {
  MergeSchedule s;
  if (rc.cfg.approach != Approach::kPipeMerge || rc.num_batches < 2) {
    return s;
  }
  std::uint64_t count = 0;
  switch (rc.cfg.pair_policy) {
    case PairMergePolicy::kNone:
      count = 0;
      break;
    case PairMergePolicy::kPaperHeuristic:
      count = heuristic_pair_count(rc.num_batches, rc.num_gpus);
      break;
    case PairMergePolicy::kAll:
      count = rc.num_batches / 2;
      break;
  }
  // Never pair the (possibly ragged) final batch: the paper only pair-merges
  // sublists of exactly bs elements. count <= (nb-1)/2 already guarantees
  // this for the heuristic; enforce it for kAll with a ragged tail too.
  if (count > 0 && rc.n % rc.batch_size != 0 &&
      2 * count >= rc.num_batches) {
    --count;
  }
  s.pairs_.reserve(count);
  for (std::uint64_t k = 0; k < count; ++k) {
    s.pairs_.push_back(PairMerge{2 * k, 2 * k + 1});
  }
  return s;
}

bool MergeSchedule::is_paired(std::uint64_t batch) const {
  return batch < 2 * pairs_.size();
}

std::uint64_t MergeSchedule::multiway_ways(std::uint64_t nb) const {
  HS_EXPECTS(2 * pairs_.size() <= nb);
  return pairs_.size() + (nb - 2 * pairs_.size());
}

cpu::MergePlan plan_multiway_merge(const MultiwayPlanInput& in,
                                   const model::MergeEngineModel& m) {
  cpu::MergePlan plan;  // flat, direct — the degenerate-merge default
  if (in.ways <= 2) return plan;
  // A deferred lane needs a tree of at least 3 runs to beat direct + the
  // extra gather pass; with a key as wide as the record there is nothing to
  // defer.
  const bool can_defer = in.key_size > 0 && in.key_size < in.elem_size;

  double best = m.flat_ns_per_elem(in.ways, in.elem_size, in.key_size, false);
  if (can_defer) {
    const double c =
        m.flat_ns_per_elem(in.ways, in.elem_size, in.key_size, true);
    if (c < best) {
      best = c;
      plan.deferred_payload = true;
    }
  }
  // Cascade candidates: power-of-two fan-ins below ways (a fan-in at or
  // above ways is just the flat merge). Strict improvement required — on a
  // tie the single-pass flat merge wins.
  for (unsigned f = 4; f < in.ways; f *= 2) {
    for (const bool deferred : {false, true}) {
      if (deferred && !(can_defer && f >= 3)) continue;
      unsigned levels = 0;
      const double c = m.cascaded_ns_per_elem(in.ways, f, in.elem_size,
                                              in.key_size, deferred, &levels);
      if (c < best) {
        best = c;
        plan.topology = cpu::MergeTopology::kCascaded;
        plan.fan_in = f;
        plan.levels = levels;
        plan.deferred_payload = deferred;
      }
    }
  }
  return plan;
}

}  // namespace hs::core
