#include "core/merge_schedule.h"

#include "common/assert.h"

namespace hs::core {

std::uint64_t MergeSchedule::heuristic_pair_count(std::uint64_t nb,
                                                  unsigned ngpu) {
  if (nb < 2) return 0;
  if (ngpu <= 1) return (nb - 1) / 2;
  return (nb - 1) / (2ull * ngpu);
}

MergeSchedule MergeSchedule::plan(const ResolvedConfig& rc) {
  MergeSchedule s;
  if (rc.cfg.approach != Approach::kPipeMerge || rc.num_batches < 2) {
    return s;
  }
  std::uint64_t count = 0;
  switch (rc.cfg.pair_policy) {
    case PairMergePolicy::kNone:
      count = 0;
      break;
    case PairMergePolicy::kPaperHeuristic:
      count = heuristic_pair_count(rc.num_batches, rc.num_gpus);
      break;
    case PairMergePolicy::kAll:
      count = rc.num_batches / 2;
      break;
  }
  // Never pair the (possibly ragged) final batch: the paper only pair-merges
  // sublists of exactly bs elements. count <= (nb-1)/2 already guarantees
  // this for the heuristic; enforce it for kAll with a ragged tail too.
  if (count > 0 && rc.n % rc.batch_size != 0 &&
      2 * count >= rc.num_batches) {
    --count;
  }
  s.pairs_.reserve(count);
  for (std::uint64_t k = 0; k < count; ++k) {
    s.pairs_.push_back(PairMerge{2 * k, 2 * k + 1});
  }
  return s;
}

bool MergeSchedule::is_paired(std::uint64_t batch) const {
  return batch < 2 * pairs_.size();
}

std::uint64_t MergeSchedule::multiway_ways(std::uint64_t nb) const {
  HS_EXPECTS(2 * pairs_.size() <= nb);
  return pairs_.size() + (nb - 2 * pairs_.size());
}

}  // namespace hs::core
