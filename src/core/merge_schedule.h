// Pipelined pair-merge scheduling (Section III-D3).
//
// While the GPU is still sorting, PIPEMERGE merges pairs of already-returned
// sorted batches on the CPU so the final multiway merge sees fewer runs. The
// paper's heuristic bounds the number of pair merges so they never delay the
// final multiway merge:
//   1 GPU :  floor((nb - 1) / 2)
//   >=2 GPUs: floor((nb - 1) / (2 * nGPU))   (batches finish faster, less
//                                             host time is available)
// Only original, full-size batches are paired (never merge products), and
// pairs are adjacent (b_{2k}, b_{2k+1}) so merged output is contiguous in A's
// recycled storage.
#pragma once

#include <cstdint>
#include <vector>

#include "core/batch_plan.h"
#include "core/sort_config.h"
#include "cpu/merge_plan.h"
#include "model/cpu_model.h"

namespace hs::core {

/// Inputs to the multiway merge-tree planner: the merge's shape plus the
/// element layout. key_size == elem_size means "no narrow comparison key";
/// payload deferral is only considered when the key is strictly narrower
/// than the record (kv64: 8-byte key inside a 16-byte record).
struct MultiwayPlanInput {
  std::uint64_t ways = 0;
  std::uint64_t n = 0;
  std::size_t elem_size = sizeof(double);
  std::size_t key_size = sizeof(double);
  unsigned threads = 1;
};

/// Cost-modeled choice between one flat ways-way merge and a cascaded tree
/// of narrower merges, and between direct and payload-deferred lanes.
/// Deterministic in its inputs; ties prefer flat (fewer passes, no scratch
/// buffer) and direct (no permutation stream). Fan-in candidates are the
/// powers of two the engine's tournament handles without surplus leaves.
cpu::MergePlan plan_multiway_merge(const MultiwayPlanInput& in,
                                   const model::MergeEngineModel& m = {});

struct PairMerge {
  std::uint64_t left = 0;   // batch index
  std::uint64_t right = 0;  // batch index (== left + 1)
};

class MergeSchedule {
 public:
  static MergeSchedule plan(const ResolvedConfig& rc);

  /// Paper heuristic in isolation (unit-testable).
  static std::uint64_t heuristic_pair_count(std::uint64_t nb, unsigned ngpu);

  const std::vector<PairMerge>& pairs() const { return pairs_; }

  /// Whether batch `i` is consumed by some pipelined pair merge.
  bool is_paired(std::uint64_t batch) const;

  /// Number of runs entering the final multiway merge.
  std::uint64_t multiway_ways(std::uint64_t nb) const;

 private:
  std::vector<PairMerge> pairs_;
};

}  // namespace hs::core
