// Pipelined pair-merge scheduling (Section III-D3).
//
// While the GPU is still sorting, PIPEMERGE merges pairs of already-returned
// sorted batches on the CPU so the final multiway merge sees fewer runs. The
// paper's heuristic bounds the number of pair merges so they never delay the
// final multiway merge:
//   1 GPU :  floor((nb - 1) / 2)
//   >=2 GPUs: floor((nb - 1) / (2 * nGPU))   (batches finish faster, less
//                                             host time is available)
// Only original, full-size batches are paired (never merge products), and
// pairs are adjacent (b_{2k}, b_{2k+1}) so merged output is contiguous in A's
// recycled storage.
#pragma once

#include <cstdint>
#include <vector>

#include "core/batch_plan.h"
#include "core/sort_config.h"

namespace hs::core {

struct PairMerge {
  std::uint64_t left = 0;   // batch index
  std::uint64_t right = 0;  // batch index (== left + 1)
};

class MergeSchedule {
 public:
  static MergeSchedule plan(const ResolvedConfig& rc);

  /// Paper heuristic in isolation (unit-testable).
  static std::uint64_t heuristic_pair_count(std::uint64_t nb, unsigned ngpu);

  const std::vector<PairMerge>& pairs() const { return pairs_; }

  /// Whether batch `i` is consumed by some pipelined pair merge.
  bool is_paired(std::uint64_t batch) const;

  /// Number of runs entering the final multiway merge.
  std::uint64_t multiway_ways(std::uint64_t nb) const;

 private:
  std::vector<PairMerge> pairs_;
};

}  // namespace hs::core
