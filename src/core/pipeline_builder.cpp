#include "core/pipeline_builder.h"

#include <cstring>
#include <string>
#include <utility>

#include "common/assert.h"
#include "core/merge_schedule.h"
#include "core/staging.h"
#include "obs/counters.h"
#include "obs/span.h"
#include "cpu/parallel_memcpy.h"
#include "cpu/thread_pool.h"
#include "vgpu/device_sort.h"

namespace hs::core {
namespace {

void copy_bytes(std::span<const std::byte> src, std::span<std::byte> dst,
                unsigned threads) {
  HS_ASSERT(src.size() == dst.size());
  if (threads > 1) {
    hs::cpu::parallel_memcpy(hs::cpu::ThreadPool::global(), dst.data(),
                             src.data(), src.size(), threads);
  } else {
    std::memcpy(dst.data(), src.data(), src.size());
  }
}

}  // namespace

PipelineBuilder::PipelineBuilder(vgpu::Runtime& rt, const ResolvedConfig& rc,
                                 const BatchPlan& plan,
                                 const MergeSchedule& sched,
                                 const cpu::ElementOps& ops)
    : rt_(rt), rc_(rc), plan_(plan), sched_(sched), ops_(ops) {
  HS_EXPECTS(rc.elem_size == ops.elem_size);
}

bool PipelineBuilder::real() const {
  return rt_.mode() == vgpu::Execution::kReal;
}

bool PipelineBuilder::blocking() const {
  return rc_.cfg.approach == Approach::kBLine ||
         rc_.cfg.approach == Approach::kBLineMulti;
}

double PipelineBuilder::copy_latency() const {
  const auto& pcie = rt_.platform().pcie;
  return blocking() ? pcie.blocking_latency_s : pcie.async_latency_s;
}

std::uint64_t PipelineBuilder::bytes_of(std::uint64_t elems) const {
  return elems * rc_.elem_size;
}

unsigned PipelineBuilder::slot_of(const Batch& b) const {
  return b.gpu * rc_.streams_per_gpu + b.stream;
}

unsigned PipelineBuilder::gpu_of_slot(unsigned slot) const {
  return slot / rc_.streams_per_gpu;
}

void PipelineBuilder::apply_transfer_faults(sim::Task& t, sim::FaultSite site,
                                            unsigned gpu,
                                            vgpu::TransferKind kind) {
  sim::FaultInjector* inj = rt_.fault_injector();
  if (inj == nullptr || !inj->enabled()) return;
  const RecoveryPolicy& pol = rc_.cfg.recovery;
  const unsigned fails = inj->transient_failures(site, pol.max_transfer_retries + 1);
  if (fails == 0) return;
  if (fails > pol.max_transfer_retries) {
    // Persistently failing link: the attempt aborts when this transfer
    // completes in virtual time, and recovery blacklists the device. The
    // real copy is suppressed — it never succeeded.
    const std::string model = rt_.platform().gpus[gpu].model;
    t.action = [model, gpu, kind, fails] {
      throw vgpu::TransferFault(model, gpu, kind, fails);
    };
    return;
  }
  // Transient: the payload is re-sent `fails` times and each retry waits an
  // exponentially growing backoff, all charged to this task's sim time.
  inj->charge_retries(fails);
  if (t.flow) {
    t.flow->bytes *= static_cast<double>(fails) + 1.0;
    t.flow->latency += pol.backoff_total(fails);
  } else {
    t.fixed_duration += pol.backoff_total(fails);
  }
}

std::span<std::byte> PipelineBuilder::dest_span(PipelineBuffers& bufs) const {
  // Sorted batches land in W, or directly in B when no merging is needed.
  std::vector<std::byte>& dest =
      rc_.num_batches == 1 ? bufs.output : bufs.working;
  return {dest.data(), dest.size()};
}

void PipelineBuilder::allocate_buffers(PipelineBuffers& bufs) {
  if (real()) {
    HS_EXPECTS_MSG(bufs.input.size() == bytes_of(rc_.n),
                   "real execution requires the input buffer A");
    bufs.output.resize(bytes_of(rc_.n));
    if (rc_.num_batches > 1) bufs.working.resize(bytes_of(rc_.n));
  }
  const unsigned slots = rc_.total_streams();
  const unsigned staging_buffers = rc_.cfg.double_buffer_staging ? 2u : 1u;
  bufs.slots.reserve(slots);
  for (unsigned g = 0; g < rc_.num_gpus; ++g) {
    for (unsigned s = 0; s < rc_.streams_per_gpu; ++s) {
      SlotBuffers slot;
      // Out-of-place Thrust-style sorting: input buffer + equal temporary,
      // the 2*bs*ns device budget of Section IV-F; device pair merging adds
      // a second input and a 2*bs output (5*bs*ns, Section V extension).
      slot.dev_in = rt_.device(g).allocate(bytes_of(rc_.batch_size));
      slot.dev_tmp = rt_.device(g).allocate(bytes_of(rc_.batch_size));
      if (rc_.device_pair_merge) {
        slot.dev_in2 = rt_.device(g).allocate(bytes_of(rc_.batch_size));
        slot.dev_out = rt_.device(g).allocate(2 * bytes_of(rc_.batch_size));
      }
      if (rc_.cfg.staging == StagingMode::kPinned) {
        for (unsigned i = 0; i < staging_buffers; ++i) {
          slot.staging.emplace_back(rc_.staging_bytes(), rt_.mode(),
                                    rt_.fault_injector());
        }
      }
      bufs.slots.push_back(std::move(slot));
    }
  }
}

void PipelineBuilder::emit_setup_tasks(sim::TaskGraph& g,
                                       PipelineBuffers& bufs,
                                       std::vector<vgpu::Stream>& streams) {
  const auto& platform = rt_.platform();
  for (unsigned gpu = 0; gpu < rc_.num_gpus; ++gpu) {
    for (unsigned s = 0; s < rc_.streams_per_gpu; ++s) {
      const unsigned slot = gpu * rc_.streams_per_gpu + s;
      vgpu::Stream& stream = streams[slot];

      sim::Task dev_alloc;
      dev_alloc.label = stream.name() + ":cudaMalloc";
      dev_alloc.phase = sim::Phase::kDeviceAlloc;
      const double allocs = rc_.device_pair_merge ? 4.0 : 2.0;
      dev_alloc.fixed_duration = allocs * platform.gpus[gpu].alloc.alloc_s;
      stream.submit(g, std::move(dev_alloc));

      for (const auto& pinned : bufs.slots[slot].staging) {
        sim::Task pin;
        pin.label = stream.name() + ":cudaMallocHost";
        pin.phase = sim::Phase::kPinnedAlloc;
        pin.fixed_duration = pinned.alloc_time(platform.pinned_alloc);
        pin.traced_bytes = pinned.size_bytes();
        stream.submit(g, std::move(pin));
      }
    }
  }
}

void PipelineBuilder::emit_stage_to_device(
    sim::TaskGraph& g, PipelineBuffers& bufs, vgpu::Stream& stream,
    unsigned slot, std::uint64_t src_elem_off, std::uint64_t elems,
    vgpu::DeviceBuffer& dev, const std::string& tag) {
  const auto& platform = rt_.platform();
  const auto chunks = chunk_batch(elems, rc_.cfg.staging_elems);
  const double memcpy_rate = platform.host_memcpy.rate(rc_.memcpy_threads);
  const bool dbl = rc_.cfg.double_buffer_staging;
  auto& staging = bufs.slots[slot].staging;

  std::vector<sim::TaskId> mcpy(chunks.size(), sim::kInvalidTask);
  std::vector<sim::TaskId> htod(chunks.size(), sim::kInvalidTask);
  const sim::TaskId entry = stream.tail();

  for (std::size_t c = 0; c < chunks.size(); ++c) {
    const Chunk& ch = chunks[c];
    const std::size_t buf = dbl ? c % 2 : 0;

    sim::Task tin;
    tin.label = tag + ".in" + std::to_string(c);
    tin.phase = sim::Phase::kStageIn;
    tin.cores = sim::CoreClaim{rt_.host_pool(), rc_.memcpy_threads};
    tin.flow = sim::FlowSpec{rt_.host_mem_channel(),
                             static_cast<double>(bytes_of(ch.size)),
                             memcpy_rate, 0.0};
    if (c == 0) {
      if (entry != sim::kInvalidTask) tin.deps.push_back(entry);
    } else {
      tin.deps.push_back(mcpy[c - 1]);  // one host lane per stream
      // Reuse of the pinned buffer: wait until the transfer that last read
      // it has finished. Single-buffered: the previous chunk; double-
      // buffered: two chunks back.
      const std::size_t reuse = dbl ? 2 : 1;
      if (c >= reuse) tin.deps.push_back(htod[c - reuse]);
    }
    if (real()) {
      auto src = bufs.input.subspan(bytes_of(src_elem_off + ch.offset),
                                    bytes_of(ch.size));
      auto dst = staging[buf].bytes().subspan(0, bytes_of(ch.size));
      const unsigned threads = rc_.memcpy_threads;
      tin.action = [src, dst, threads] { copy_bytes(src, dst, threads); };
    }
    apply_transfer_faults(tin, sim::FaultSite::kStagingCopy, gpu_of_slot(slot),
                          vgpu::TransferKind::kStaging);
    mcpy[c] = g.add(std::move(tin));

    sim::Task th;
    th.label = tag + ".h2d" + std::to_string(c);
    th.phase = sim::Phase::kHtoD;
    th.flow = sim::FlowSpec{rt_.htod_channel(),
                            static_cast<double>(bytes_of(ch.size)),
                            platform.pcie.pinned_bps, copy_latency()};
    th.deps.push_back(mcpy[c]);
    if (c > 0) th.deps.push_back(htod[c - 1]);  // per-stream copy order
    if (real()) {
      auto src = std::span<const std::byte>(staging[buf].bytes())
                     .subspan(0, bytes_of(ch.size));
      auto dst = dev.bytes().subspan(bytes_of(ch.offset), bytes_of(ch.size));
      th.action = [src, dst] { copy_bytes(src, dst, 1); };
    }
    apply_transfer_faults(th, sim::FaultSite::kHtoD, gpu_of_slot(slot),
                          vgpu::TransferKind::kHtoD);
    htod[c] = g.add(std::move(th));
  }
  stream.adopt(htod.back());
}

sim::TaskId PipelineBuilder::emit_stage_from_device(
    sim::TaskGraph& g, PipelineBuffers& bufs, vgpu::Stream& stream,
    unsigned slot, const vgpu::DeviceBuffer& dev, std::uint64_t dst_elem_off,
    std::uint64_t elems, const std::string& tag) {
  const auto& platform = rt_.platform();
  const auto chunks = chunk_batch(elems, rc_.cfg.staging_elems);
  const double memcpy_rate = platform.host_memcpy.rate(rc_.memcpy_threads);
  const bool dbl = rc_.cfg.double_buffer_staging;
  auto& staging = bufs.slots[slot].staging;
  auto dest = dest_span(bufs);

  std::vector<sim::TaskId> dtoh(chunks.size(), sim::kInvalidTask);
  std::vector<sim::TaskId> mcpy(chunks.size(), sim::kInvalidTask);
  const sim::TaskId entry = stream.tail();

  for (std::size_t c = 0; c < chunks.size(); ++c) {
    const Chunk& ch = chunks[c];
    const std::size_t buf = dbl ? c % 2 : 0;

    sim::Task td;
    td.label = tag + ".d2h" + std::to_string(c);
    td.phase = sim::Phase::kDtoH;
    td.flow = sim::FlowSpec{rt_.dtoh_channel(),
                            static_cast<double>(bytes_of(ch.size)),
                            platform.pcie.pinned_dtoh_bps, copy_latency()};
    if (c == 0) {
      if (entry != sim::kInvalidTask) td.deps.push_back(entry);
    } else {
      td.deps.push_back(dtoh[c - 1]);
      const std::size_t reuse = dbl ? 2 : 1;
      if (c >= reuse) td.deps.push_back(mcpy[c - reuse]);
    }
    if (real()) {
      auto src = std::span<const std::byte>(dev.bytes())
                     .subspan(bytes_of(ch.offset), bytes_of(ch.size));
      auto dst = staging[buf].bytes().subspan(0, bytes_of(ch.size));
      td.action = [src, dst] { copy_bytes(src, dst, 1); };
    }
    apply_transfer_faults(td, sim::FaultSite::kDtoH, gpu_of_slot(slot),
                          vgpu::TransferKind::kDtoH);
    dtoh[c] = g.add(std::move(td));

    sim::Task tout;
    tout.label = tag + ".out" + std::to_string(c);
    tout.phase = sim::Phase::kStageOut;
    tout.cores = sim::CoreClaim{rt_.host_pool(), rc_.memcpy_threads};
    tout.flow = sim::FlowSpec{rt_.host_mem_channel(),
                              static_cast<double>(bytes_of(ch.size)),
                              memcpy_rate, 0.0};
    tout.deps.push_back(dtoh[c]);
    if (c > 0) tout.deps.push_back(mcpy[c - 1]);
    if (real()) {
      auto src = std::span<const std::byte>(staging[buf].bytes())
                     .subspan(0, bytes_of(ch.size));
      auto dst = dest.subspan(bytes_of(dst_elem_off + ch.offset),
                              bytes_of(ch.size));
      const unsigned threads = rc_.memcpy_threads;
      tout.action = [src, dst, threads] { copy_bytes(src, dst, threads); };
    }
    apply_transfer_faults(tout, sim::FaultSite::kStagingCopy, gpu_of_slot(slot),
                          vgpu::TransferKind::kStaging);
    mcpy[c] = g.add(std::move(tout));
  }
  stream.adopt(mcpy.back());
  return mcpy.back();
}

sim::TaskId PipelineBuilder::emit_batch(sim::TaskGraph& g,
                                        PipelineBuffers& bufs,
                                        vgpu::Stream& stream, const Batch& b) {
  const unsigned slot = slot_of(b);
  const std::string tag = "b" + std::to_string(b.index);
  SlotBuffers& sb = bufs.slots[slot];

  emit_stage_to_device(g, bufs, stream, slot, b.offset, b.size, sb.dev_in,
                       tag);
  vgpu::device_sort(rt_, g, stream, rt_.device(b.gpu), sb.dev_in, sb.dev_tmp,
                    b.size, ops_, rc_.device_launch);
  return emit_stage_from_device(g, bufs, stream, slot, sb.dev_in, b.offset,
                                b.size, tag);
}

sim::TaskId PipelineBuilder::emit_batch_pageable(sim::TaskGraph& g,
                                                 PipelineBuffers& bufs,
                                                 vgpu::Stream& stream,
                                                 const Batch& b) {
  const auto& platform = rt_.platform();
  const unsigned slot = slot_of(b);
  const std::string tag = "b" + std::to_string(b.index);
  SlotBuffers& sb = bufs.slots[slot];

  sim::Task th;
  th.label = tag + ".h2d";
  th.phase = sim::Phase::kHtoD;
  th.flow = sim::FlowSpec{rt_.htod_channel(),
                          static_cast<double>(bytes_of(b.size)),
                          platform.pcie.pageable_bps,
                          platform.pcie.blocking_latency_s};
  if (real()) {
    auto src = bufs.input.subspan(bytes_of(b.offset), bytes_of(b.size));
    auto dst = sb.dev_in.bytes().subspan(0, bytes_of(b.size));
    th.action = [src, dst] { copy_bytes(src, dst, 1); };
  }
  apply_transfer_faults(th, sim::FaultSite::kHtoD, b.gpu,
                        vgpu::TransferKind::kHtoD);
  stream.submit(g, std::move(th));

  vgpu::device_sort(rt_, g, stream, rt_.device(b.gpu), sb.dev_in, sb.dev_tmp,
                    b.size, ops_, rc_.device_launch);

  auto dest = dest_span(bufs);
  sim::Task td;
  td.label = tag + ".d2h";
  td.phase = sim::Phase::kDtoH;
  td.flow = sim::FlowSpec{rt_.dtoh_channel(),
                          static_cast<double>(bytes_of(b.size)),
                          platform.pcie.pageable_bps,
                          platform.pcie.blocking_latency_s};
  if (real()) {
    auto src = std::span<const std::byte>(sb.dev_in.bytes())
                   .subspan(0, bytes_of(b.size));
    auto dst = dest.subspan(bytes_of(b.offset), bytes_of(b.size));
    td.action = [src, dst] { copy_bytes(src, dst, 1); };
  }
  apply_transfer_faults(td, sim::FaultSite::kDtoH, b.gpu,
                        vgpu::TransferKind::kDtoH);
  return stream.submit(g, std::move(td));
}

sim::TaskId PipelineBuilder::emit_device_pair(sim::TaskGraph& g,
                                              PipelineBuffers& bufs,
                                              vgpu::Stream& stream,
                                              const Batch& left,
                                              const Batch& right) {
  HS_ASSERT(slot_of(left) == slot_of(right));
  const unsigned slot = slot_of(left);
  SlotBuffers& sb = bufs.slots[slot];
  auto& dev = rt_.device(left.gpu);

  emit_stage_to_device(g, bufs, stream, slot, left.offset, left.size,
                       sb.dev_in, "b" + std::to_string(left.index));
  vgpu::device_sort(rt_, g, stream, dev, sb.dev_in, sb.dev_tmp, left.size,
                    ops_, rc_.device_launch);
  emit_stage_to_device(g, bufs, stream, slot, right.offset, right.size,
                       sb.dev_in2, "b" + std::to_string(right.index));
  vgpu::device_sort(rt_, g, stream, dev, sb.dev_in2, sb.dev_tmp, right.size,
                    ops_, rc_.device_launch);
  vgpu::device_merge(rt_, g, stream, dev, sb.dev_in, left.size, sb.dev_in2,
                     right.size, sb.dev_out, ops_);
  return emit_stage_from_device(
      g, bufs, stream, slot, sb.dev_out, left.offset, left.size + right.size,
      "m" + std::to_string(left.index / 2));
}

void PipelineBuilder::emit_merges(sim::TaskGraph& g, PipelineBuffers& bufs,
                                  const std::vector<sim::TaskId>& batch_done) {
  if (rc_.num_batches <= 1) return;
  const auto& platform = rt_.platform();
  const auto& merge_model = platform.cpu_merge;

  // ---- pipelined host pair merges (PIPEMERGE) -----------------------------
  std::vector<sim::TaskId> merge_tasks;
  merge_tasks.reserve(sched_.pairs().size());
  if (!rc_.device_pair_merge) {
    for (std::size_t k = 0; k < sched_.pairs().size(); ++k) {
      const PairMerge& pm = sched_.pairs()[k];
      const Batch& lb = plan_.batch(pm.left);
      const Batch& rb = plan_.batch(pm.right);
      const std::uint64_t total = lb.size + rb.size;

      sim::Task t;
      t.label = "pairmerge" + std::to_string(k);
      t.phase = sim::Phase::kPairMerge;
      t.deps = {batch_done[pm.left], batch_done[pm.right]};
      t.cores = sim::CoreClaim{rt_.host_pool(), rc_.merge_threads};
      t.flow = sim::FlowSpec{
          rt_.host_mem_channel(),
          merge_model.traffic_bytes_per_elem * static_cast<double>(total),
          merge_model.flow_rate(total, 2.0, rc_.merge_threads), 0.0};
      t.traced_bytes = bytes_of(total);
      if (real()) {
        // Inputs are the two sorted runs in W; output recycles A's storage,
        // whose [lb.offset, lb.offset + total) region is dead after staging.
        auto w = std::span<const std::byte>(bufs.working);
        cpu::RunView a{w.data() + bytes_of(lb.offset), lb.size};
        cpu::RunView b{w.data() + bytes_of(rb.offset), rb.size};
        std::byte* out = bufs.input.data() + bytes_of(lb.offset);
        auto merge_fn = ops_.merge_pair;
        const unsigned threads = rc_.merge_threads;
        t.action = [a, b, out, merge_fn, threads] {
          merge_fn(a, b, out, hs::cpu::ThreadPool::global(), threads);
        };
      }
      merge_tasks.push_back(g.add(std::move(t)));
    }
  } else {
    // Device pair merging: the merged runs already landed in W via the
    // pair's final StageOut task, recorded in batch_done[left].
    for (const PairMerge& pm : sched_.pairs()) {
      merge_tasks.push_back(batch_done[pm.left]);
    }
  }

  // ---- final multiway merge ------------------------------------------------
  const std::uint64_t ways = sched_.multiway_ways(rc_.num_batches);
  sim::Task t;
  t.label = "multiway";
  t.phase = sim::Phase::kMultiwayMerge;
  for (std::uint64_t i = 0; i < rc_.num_batches; ++i) {
    if (!sched_.is_paired(i)) t.deps.push_back(batch_done[i]);
  }
  t.deps.insert(t.deps.end(), merge_tasks.begin(), merge_tasks.end());
  t.cores = sim::CoreClaim{rt_.host_pool(), rc_.multiway_threads};
  t.flow = sim::FlowSpec{
      rt_.host_mem_channel(),
      merge_model.traffic_bytes_per_elem * static_cast<double>(rc_.n),
      merge_model.flow_rate(rc_.n, static_cast<double>(ways),
                            rc_.multiway_threads),
      0.0};
  t.traced_bytes = bytes_of(rc_.n);
  if (real()) {
    std::vector<cpu::RunView> runs;
    runs.reserve(ways);
    const std::byte* a = bufs.input.data();
    const std::byte* w = bufs.working.data();
    for (const PairMerge& pm : sched_.pairs()) {
      const Batch& lb = plan_.batch(pm.left);
      const Batch& rb = plan_.batch(pm.right);
      // Host pair merges recycled A; device pair merges landed in W.
      const std::byte* base = rc_.device_pair_merge ? w : a;
      runs.push_back(
          cpu::RunView{base + bytes_of(lb.offset), lb.size + rb.size});
    }
    for (std::uint64_t i = 0; i < rc_.num_batches; ++i) {
      if (!sched_.is_paired(i)) {
        const Batch& b = plan_.batch(i);
        runs.push_back(cpu::RunView{w + bytes_of(b.offset), b.size});
      }
    }
    std::byte* out = bufs.output.data();
    auto multiway_fn = ops_.multiway;
    const unsigned threads = rc_.multiway_threads;
    // Topology / payload decision is made at build time from the calibrated
    // model, then surfaced at run time as a MergePlan span plus planner
    // counters so reports can itemise the executed strategy.
    const cpu::MergePlan mplan = plan_multiway_merge(
        {ways, rc_.n, ops_.elem_size, ops_.key_size, rc_.multiway_threads});
    t.action = [runs = std::move(runs), out, multiway_fn, threads, mplan] {
      const bool cascaded = mplan.topology == cpu::MergeTopology::kCascaded;
      const obs::ScopedSpan plan_span("MergePlan", "Merge");
      obs::count(cascaded ? obs::Counter::kMergePlanCascaded
                          : obs::Counter::kMergePlanFlat,
                 1);
      if (mplan.deferred_payload)
        obs::count(obs::Counter::kMergePlanDeferred, 1);
      multiway_fn(runs, out, hs::cpu::ThreadPool::global(), threads, &mplan);
    };
  }
  g.add(std::move(t));
}

sim::TaskGraph PipelineBuilder::build(PipelineBuffers& bufs) {
  allocate_buffers(bufs);

  sim::TaskGraph g;
  std::vector<vgpu::Stream> streams;
  const unsigned slots = rc_.total_streams();
  streams.reserve(slots);
  for (unsigned gpu = 0; gpu < rc_.num_gpus; ++gpu) {
    for (unsigned s = 0; s < rc_.streams_per_gpu; ++s) {
      streams.emplace_back("g" + std::to_string(gpu) + ".s" +
                           std::to_string(s));
    }
  }
  emit_setup_tasks(g, bufs, streams);

  std::vector<sim::TaskId> batch_done(plan_.num_batches(), sim::kInvalidTask);
  for (const Batch& b : plan_.batches()) {
    vgpu::Stream& stream = streams[slot_of(b)];
    if (rc_.device_pair_merge && sched_.is_paired(b.index)) {
      if (b.index % 2 == 0) continue;  // handled with its right sibling
      const Batch& left = plan_.batch(b.index - 1);
      const sim::TaskId done = emit_device_pair(g, bufs, stream, left, b);
      batch_done[left.index] = done;
      batch_done[b.index] = done;
      continue;
    }
    batch_done[b.index] =
        rc_.cfg.staging == StagingMode::kPinned
            ? emit_batch(g, bufs, stream, b)
            : emit_batch_pageable(g, bufs, stream, b);
  }

  emit_merges(g, bufs, batch_done);
  return g;
}

}  // namespace hs::core
