// Compiles a (config, batch plan, merge schedule) triple into the static task
// graph realising the paper's workflows:
//
//   BLINE       A -> Stage -> HtoD -> GPUSort -> DtoH -> Stage -> B
//   BLINEMULTI  per batch as BLINE, then -> W -> Merge -> B
//   PIPEDATA    chunked staged copies in ns streams per GPU (Figure 2)
//   PIPEMERGE   PIPEDATA + pipelined pair merges into A's recycled storage
//               (Figure 3), then the final multiway merge
//
// plus two extensions beyond the paper:
//   * double-buffered staging (two pinned buffers per stream, so the host
//     copies chunk c+1 while chunk c is in flight on PCIe);
//   * device pair merging (Section V outlook: the pair merge runs on the GPU
//     before DtoH, so the host only sees pre-merged 2*bs runs).
//
// Memory discipline mirrors Section III-C's ~3n budget:
//   A — caller's input; a batch's region is dead once staged to the GPU, so
//       host pair merges write their output there;
//   W — working memory receiving sorted batches (and device-merged pairs)
//       from the GPU (skipped when nb = 1, where data lands directly in B);
//   B — final output.
//
// The pipeline is element-type agnostic: buffers are bytes and all typed
// work (sort, merges) goes through cpu::ElementOps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/batch_plan.h"
#include "core/merge_schedule.h"
#include "core/sort_config.h"
#include "cpu/element_ops.h"
#include "sim/fault_injector.h"
#include "sim/task_graph.h"
#include "vgpu/faults.h"
#include "vgpu/pinned_buffer.h"
#include "vgpu/runtime.h"
#include "vgpu/stream.h"

namespace hs::core {

/// Device + pinned buffers owned by one (GPU, stream) slot.
struct SlotBuffers {
  vgpu::DeviceBuffer dev_in;   // bs elements — batch payload
  vgpu::DeviceBuffer dev_tmp;  // bs elements — out-of-place sort temporary
  vgpu::DeviceBuffer dev_in2;  // second batch (device pair merging only)
  vgpu::DeviceBuffer dev_out;  // 2*bs merged output (device pair merging only)
  std::vector<vgpu::PinnedHostBuffer> staging;  // 1, or 2 when double-buffered
};

/// All host/device memory a pipeline run touches. Must outlive the engine
/// run: task actions capture spans into these buffers.
struct PipelineBuffers {
  std::span<std::byte> input;      // A; empty in timing-only mode
  std::vector<std::byte> working;  // W (empty when nb == 1)
  std::vector<std::byte> output;   // B
  std::vector<SlotBuffers> slots;
};

class PipelineBuilder {
 public:
  PipelineBuilder(vgpu::Runtime& rt, const ResolvedConfig& rc,
                  const BatchPlan& plan, const MergeSchedule& sched,
                  const cpu::ElementOps& ops);

  /// Allocates buffers into `bufs` (real storage only in Execution::kReal;
  /// device capacity is enforced in both modes and may throw
  /// vgpu::DeviceOutOfMemory) and returns the ready-to-run task graph.
  sim::TaskGraph build(PipelineBuffers& bufs);

 private:
  void allocate_buffers(PipelineBuffers& bufs);
  void emit_setup_tasks(sim::TaskGraph& g, PipelineBuffers& bufs,
                        std::vector<vgpu::Stream>& streams);

  /// Chunked A -> pinned -> device transfer of `elems` starting at element
  /// `src_elem_off` of A into `dev` at element offset `dev_elem_off`.
  void emit_stage_to_device(sim::TaskGraph& g, PipelineBuffers& bufs,
                            vgpu::Stream& stream, unsigned slot,
                            std::uint64_t src_elem_off, std::uint64_t elems,
                            vgpu::DeviceBuffer& dev, const std::string& tag);

  /// Chunked device -> pinned -> host transfer into W (or B when nb == 1)
  /// at element offset `dst_elem_off`. Returns the final StageOut task.
  sim::TaskId emit_stage_from_device(sim::TaskGraph& g, PipelineBuffers& bufs,
                                     vgpu::Stream& stream, unsigned slot,
                                     const vgpu::DeviceBuffer& dev,
                                     std::uint64_t dst_elem_off,
                                     std::uint64_t elems,
                                     const std::string& tag);

  sim::TaskId emit_batch(sim::TaskGraph& g, PipelineBuffers& bufs,
                         vgpu::Stream& stream, const Batch& b);
  sim::TaskId emit_batch_pageable(sim::TaskGraph& g, PipelineBuffers& bufs,
                                  vgpu::Stream& stream, const Batch& b);
  /// Device pair merging: stages both batches, sorts, merges on the GPU and
  /// stages the 2*bs run out. Returns the pair's final StageOut task.
  sim::TaskId emit_device_pair(sim::TaskGraph& g, PipelineBuffers& bufs,
                               vgpu::Stream& stream, const Batch& left,
                               const Batch& right);
  void emit_merges(sim::TaskGraph& g, PipelineBuffers& bufs,
                   const std::vector<sim::TaskId>& batch_done);

  /// Consults the runtime's fault injector for one transfer task: transient
  /// faults within the retry budget inflate the flow (payload re-sent) and
  /// charge exponential backoff to the transfer latency; beyond the budget
  /// the task's action is replaced with one that throws vgpu::TransferFault,
  /// aborting the attempt at the transfer's virtual completion time.
  void apply_transfer_faults(sim::Task& t, sim::FaultSite site, unsigned gpu,
                             vgpu::TransferKind kind);

  unsigned slot_of(const Batch& b) const;
  unsigned gpu_of_slot(unsigned slot) const;
  std::span<std::byte> dest_span(PipelineBuffers& bufs) const;
  std::uint64_t bytes_of(std::uint64_t elems) const;
  bool real() const;
  bool blocking() const;  // BLine / BLineMulti use blocking-copy semantics
  double copy_latency() const;

  vgpu::Runtime& rt_;
  const ResolvedConfig& rc_;
  const BatchPlan& plan_;
  const MergeSchedule& sched_;
  const cpu::ElementOps& ops_;
};

}  // namespace hs::core
