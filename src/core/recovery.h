// Graceful-degradation policy for the heterogeneous pipeline
// (docs/fault_model.md).
//
// The task graph is static, so recovery operates at two levels:
//   * inside a task — transient transfer faults are absorbed by bounded
//     retry-with-backoff, charged to the sim clock (payload is re-sent and
//     the exponential backoff is added to the transfer latency);
//   * across attempts — failures that escape a task (device OOM, a transfer
//     still failing after the retry budget) abort the attempt, the policy
//     adjusts (halve batches / blacklist the device), and the pipeline is
//     rebuilt; the aborted attempt's virtual time plus a recovery penalty is
//     charged to the final report, so degradation is measured, never free.
// When every device is blacklisted (or attempts run out) the sort falls back
// to the CPU-only reference path.
#pragma once

#include <cstdint>

namespace hs::core {

struct RecoveryPolicy {
  /// Master switch; when false every fault propagates to the caller
  /// unchanged (the pre-recovery behaviour).
  bool enabled = false;

  /// Transient transfer faults absorbed per transfer before the device is
  /// declared persistently unhealthy (TransferFault escapes the task).
  unsigned max_transfer_retries = 3;

  /// Pipeline rebuild budget: attempts beyond this fall back to the CPU (or
  /// rethrow when cpu_fallback is off).
  unsigned max_attempts = 8;

  /// First retry backoff; doubles per consecutive retry. Charged to the sim
  /// clock (added to the transfer latency / the attempt restart cost).
  double backoff_base_s = 1e-3;

  /// Requeue cost charged per batch re-split after a device OOM.
  double resplit_penalty_s = 1e-3;

  /// Sort on the CPU when no device can finish the job.
  bool cpu_fallback = true;

  /// Total backoff charged for `failures` consecutive transient failures:
  /// base + 2*base + ... (exponential).
  double backoff_total(unsigned failures) const {
    double total = 0.0;
    double step = backoff_base_s;
    for (unsigned i = 0; i < failures; ++i) {
      total += step;
      step *= 2.0;
    }
    return total;
  }
};

/// What fault handling actually did during one sort; part of core::Report.
struct RecoveryStats {
  std::uint64_t faults_injected = 0;      // total faults the injector fired
  std::uint64_t transfer_retries = 0;     // transient faults absorbed in-task
  std::uint64_t batch_resplits = 0;       // device-OOM batch halvings
  std::uint64_t devices_blacklisted = 0;  // devices removed mid-run
  std::uint64_t attempts = 1;             // pipeline builds (1 == no recovery)
  std::uint64_t ps_shrinks = 0;  // staging halvings after host alloc failures
  bool cpu_fallback = false;              // all devices lost, CPU sorted it
  bool spilled = false;  // host budget too small; sorted via the disk path

  /// Virtual seconds charged for failed attempts, backoff, and requeue
  /// penalties (in-task retry costs live in the phase times instead).
  double recovery_seconds = 0;

  bool any() const {
    return faults_injected > 0 || transfer_retries > 0 || batch_resplits > 0 ||
           devices_blacklisted > 0 || attempts > 1 || ps_shrinks > 0 ||
           cpu_fallback || spilled || recovery_seconds > 0;
  }
};

}  // namespace hs::core
