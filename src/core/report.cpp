#include "core/report.h"

#include <cstdio>

namespace hs::core {

PhaseTimes phase_times(const sim::Trace& trace) {
  using sim::Phase;
  PhaseTimes t;
  t.pinned_alloc = trace.phase_busy(Phase::kPinnedAlloc);
  t.device_alloc = trace.phase_busy(Phase::kDeviceAlloc);
  t.stage_in = trace.phase_busy(Phase::kStageIn);
  t.htod = trace.phase_busy(Phase::kHtoD);
  t.gpu_sort = trace.phase_busy(Phase::kGpuSort);
  t.dtoh = trace.phase_busy(Phase::kDtoH);
  t.stage_out = trace.phase_busy(Phase::kStageOut);
  t.pair_merge = trace.phase_busy(Phase::kPairMerge);
  t.multiway_merge = trace.phase_busy(Phase::kMultiwayMerge);
  return t;
}

void Report::print(std::ostream& os) const {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "%s: n=%llu nb=%llu bs=%llu pairs=%llu ways=%llu\n"
                "  end-to-end            %8.4f s\n"
                "  related-work account  %8.4f s (HtoD %.4f, DtoH %.4f, "
                "sort %.4f, merge %.4f)\n"
                "  missing overhead      %8.4f s\n"
                "  reference CPU sort    %8.4f s (speedup %.2fx)\n"
                "  busy: pinned-alloc %.4f | stage-in %.4f | HtoD %.4f | "
                "sort %.4f | DtoH %.4f | stage-out %.4f | pair-merge %.4f | "
                "multiway %.4f\n",
                label.c_str(), static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(num_batches),
                static_cast<unsigned long long>(batch_size),
                static_cast<unsigned long long>(pair_merges),
                static_cast<unsigned long long>(multiway_ways), end_to_end,
                related_work_total, related_htod, related_dtoh, related_sort,
                related_merge, missing_overhead(), reference_cpu_time,
                speedup_vs_reference(), busy.pinned_alloc, busy.stage_in,
                busy.htod, busy.gpu_sort, busy.dtoh, busy.stage_out,
                busy.pair_merge, busy.multiway_merge);
  os << buf;
  if (!merge_topology.empty()) {
    std::snprintf(buf, sizeof buf,
                  "  merge plan            %s (fan-in %u, levels %u, "
                  "payload %s)\n",
                  merge_topology.c_str(), merge_fan_in, merge_levels,
                  merge_deferred ? "deferred" : "direct");
    os << buf;
  }
  // Only surfaced when the planner actually ran: default-path reports stay
  // byte-identical to the pre-portfolio output.
  if (plan_adaptive || device_engine != "radix-lsd") {
    std::snprintf(buf, sizeof buf,
                  "  sort plan             %s (%s, %s; passes %u, "
                  "log2-distinct %.1f, entropy %.1f bits, dups %.2f, "
                  "presorted %.2f)\n",
                  device_engine.c_str(),
                  plan_adaptive ? "adaptive" : "forced",
                  plan_sketched ? "sketched" : "assumed", plan_passes,
                  plan_log2_distinct, sketch_entropy_bits, sketch_dup_ratio,
                  sketch_presortedness);
    os << buf;
  }
  if (recovery.any()) {
    std::snprintf(
        buf, sizeof buf,
        "  faults: injected %llu | retries %llu | re-splits %llu | "
        "blacklisted %llu | attempts %llu | ps-shrinks %llu%s%s | "
        "recovery charged %.4f s\n",
        static_cast<unsigned long long>(recovery.faults_injected),
        static_cast<unsigned long long>(recovery.transfer_retries),
        static_cast<unsigned long long>(recovery.batch_resplits),
        static_cast<unsigned long long>(recovery.devices_blacklisted),
        static_cast<unsigned long long>(recovery.attempts),
        static_cast<unsigned long long>(recovery.ps_shrinks),
        recovery.cpu_fallback ? " | CPU fallback" : "",
        recovery.spilled ? " | spilled to disk" : "", recovery.recovery_seconds);
    os << buf;
  }
  if (counters.any()) {
    std::snprintf(
        buf, sizeof buf,
        "  counters: HtoD %llu B | DtoH %llu B | staged-in %llu B | "
        "staged-out %llu B | radix passes %llu (skipped %llu) | "
        "merged %llu elems | pinned-alloc %llu B\n",
        static_cast<unsigned long long>(
            counters.value(obs::Counter::kBytesHtoD)),
        static_cast<unsigned long long>(
            counters.value(obs::Counter::kBytesDtoH)),
        static_cast<unsigned long long>(
            counters.value(obs::Counter::kBytesStageIn)),
        static_cast<unsigned long long>(
            counters.value(obs::Counter::kBytesStageOut)),
        static_cast<unsigned long long>(
            counters.value(obs::Counter::kRadixPassesExecuted)),
        static_cast<unsigned long long>(
            counters.value(obs::Counter::kRadixPassesSkipped)),
        static_cast<unsigned long long>(
            counters.value(obs::Counter::kMergeElements)),
        static_cast<unsigned long long>(
            counters.value(obs::Counter::kBytesPinnedAlloc)));
    os << buf;
  }
}

}  // namespace hs::core
