// Run report: end-to-end time, per-phase breakdown, and the two accountings
// whose gap is the paper's "missing overhead problem" (Section IV-E).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "core/recovery.h"
#include "core/sort_config.h"
#include "obs/counters.h"
#include "sim/trace.h"

namespace hs::core {

/// Per-phase busy time (seconds); phases overlap under pipelined approaches,
/// so these are component sums, not a partition of the end-to-end time.
struct PhaseTimes {
  double pinned_alloc = 0;
  double device_alloc = 0;
  double stage_in = 0;   // pageable -> pinned MCpy
  double htod = 0;
  double gpu_sort = 0;
  double dtoh = 0;
  double stage_out = 0;  // pinned -> pageable MCpy
  double pair_merge = 0;
  double multiway_merge = 0;

  /// Host-to-host staging total — the bottleneck PARMEMCPY attacks.
  double staging_total() const { return stage_in + stage_out; }
};

struct Report {
  std::uint64_t n = 0;
  std::uint64_t num_batches = 0;
  std::uint64_t batch_size = 0;
  std::uint64_t pair_merges = 0;
  std::uint64_t multiway_ways = 0;
  std::string label;
  std::string element_type;  // "f64", "u64", "kv64", ...

  /// Planned strategy for the final multiway merge (empty when the run has
  /// no multiway merge): "flat" or "cascaded", the cascade's fan-in/levels,
  /// and whether lanes run payload-deferred.
  std::string merge_topology;
  unsigned merge_fan_in = 0;
  unsigned merge_levels = 0;
  bool merge_deferred = false;

  /// Sort-planner decision (vgpu::device_sort_engine_name of the launched
  /// engine; "radix-lsd" on the pre-portfolio default path).
  std::string device_engine = "radix-lsd";
  bool plan_adaptive = false;  ///< engine chosen by ranking, not forced
  bool plan_sketched = false;  ///< decision consumed a real sketch/hint
  unsigned plan_passes = 8;    ///< predicted non-trivial radix passes
  double plan_log2_distinct = 64.0;
  /// Evidence the planner acted on (zeros when the planner never ran).
  double sketch_entropy_bits = 0.0;
  double sketch_dup_ratio = 0.0;
  double sketch_presortedness = 0.0;

  /// Full accounting: virtual makespan including pinned allocation, staging
  /// copies, and per-chunk synchronisation.
  double end_to_end = 0;

  /// The related-work accounting of Stehle & Jacobsen [5]: pure-rate HtoD +
  /// pure-rate DtoH + on-GPU sort + CPU merge, nothing else. Matches their
  /// Figure 8 methodology; the gap to end_to_end is the missing overhead.
  double related_work_total = 0;
  double related_htod = 0;
  double related_dtoh = 0;
  double related_sort = 0;
  double related_merge = 0;

  /// Reference implementation (GNU parallel sort, all cores) on the same
  /// platform and n — denominators of the paper's speedup claims.
  double reference_cpu_time = 0;

  PhaseTimes busy;
  sim::Trace trace;

  /// Fault/recovery accounting; all-zero on a fault-free run. When faults
  /// were injected, end_to_end already includes recovery.recovery_seconds
  /// plus the in-task retry and stall costs.
  RecoveryStats recovery;

  /// Delta of the process-wide observability counters over this run: bytes
  /// over each link, radix passes, merge volume, allocations, recovery
  /// events. All-zero when counting is disabled.
  obs::CounterSnapshot counters;

  double speedup_vs_reference() const {
    return end_to_end > 0 ? reference_cpu_time / end_to_end : 0.0;
  }
  double missing_overhead() const { return end_to_end - related_work_total; }

  /// Pretty-prints the breakdown (used by examples and benches).
  void print(std::ostream& os) const;
};

/// Extracts PhaseTimes from a trace.
PhaseTimes phase_times(const sim::Trace& trace);

}  // namespace hs::core
