#include "core/sort_config.h"

#include <algorithm>

#include "common/assert.h"
#include "common/math_util.h"

namespace hs::core {

std::string_view approach_name(Approach a) {
  switch (a) {
    case Approach::kBLine: return "BLine";
    case Approach::kBLineMulti: return "BLineMulti";
    case Approach::kPipeData: return "PipeData";
    case Approach::kPipeMerge: return "PipeMerge";
  }
  return "?";
}

std::string_view device_engine_policy_name(DeviceEnginePolicy p) {
  switch (p) {
    case DeviceEnginePolicy::kFixedRadix: return "radix";
    case DeviceEnginePolicy::kFixedHybrid: return "hybrid";
    case DeviceEnginePolicy::kFixedSample: return "sample";
    case DeviceEnginePolicy::kAdaptive: return "adaptive";
  }
  return "?";
}

std::string SortConfig::label() const {
  std::string s(approach_name(approach));
  if (device_pair_merge) s += "+DevMerge";
  if (device_engine == DeviceEnginePolicy::kAdaptive) {
    s += "+Planner";
  } else if (device_engine != DeviceEnginePolicy::kFixedRadix) {
    s += "+";
    s += device_engine_policy_name(device_engine);
    s += "Engine";
  }
  if (par_memcpy()) s += "+ParMemCpy";
  if (double_buffer_staging) s += "+DblBuf";
  if (staging == StagingMode::kPageable) s += "(pageable)";
  if (num_gpus > 1) s += " (" + std::to_string(num_gpus) + " GPU)";
  return s;
}

ResolvedConfig resolve(const SortConfig& cfg, const model::Platform& platform,
                       std::uint64_t n, std::size_t elem_size) {
  HS_EXPECTS_MSG(n > 0, "cannot sort an empty input");
  HS_EXPECTS_MSG(elem_size > 0, "element size must be positive");
  ResolvedConfig r;
  r.cfg = cfg;
  r.n = n;
  r.elem_size = elem_size;

  r.num_gpus = cfg.num_gpus == 0 ? 1 : cfg.num_gpus;
  HS_EXPECTS_MSG(r.num_gpus <= platform.gpus.size(),
                 "config requests more GPUs than the platform has");

  const bool pipelined = cfg.approach == Approach::kPipeData ||
                         cfg.approach == Approach::kPipeMerge;
  r.streams_per_gpu = pipelined ? std::max(1u, cfg.streams_per_gpu) : 1u;

  r.device_pair_merge = cfg.device_pair_merge;
  HS_EXPECTS_MSG(!r.device_pair_merge || cfg.approach == Approach::kPipeMerge,
                 "device pair merging requires the PipeMerge approach");
  HS_EXPECTS_MSG(!r.device_pair_merge || cfg.staging == StagingMode::kPinned,
                 "device pair merging requires pinned staging");

  // Batch sizing rule: each stream needs an input buffer and a sort
  // temporary (Section IV-F), plus a second input and a 2*bs output when
  // merging pairs on the device (Section V extension).
  const std::uint64_t bufs_per_stream = r.device_pair_merge ? 5 : 2;
  const std::uint64_t dev_bytes = platform.gpus.front().memory_bytes;
  const std::uint64_t max_bs =
      dev_bytes / (bufs_per_stream * r.streams_per_gpu * elem_size);
  r.batch_size = cfg.batch_size == 0 ? max_bs : cfg.batch_size;
  HS_EXPECTS_MSG(r.batch_size > 0, "batch size resolved to zero");
  HS_EXPECTS_MSG(r.batch_size <= max_bs,
                 "batch size exceeds device memory (needs 2*bs*ns doubles, "
                 "or 5*bs*ns with device pair merging)");
  r.batch_size = std::min(r.batch_size, n);

  r.num_batches = div_ceil(n, r.batch_size);
  if (cfg.approach == Approach::kBLine) {
    HS_EXPECTS_MSG(r.num_batches == 1,
                   "BLine requires the input to fit in one batch; use "
                   "BLineMulti or a pipelined approach for larger inputs");
    HS_EXPECTS_MSG(r.num_gpus == 1, "BLine uses a single GPU");
  }

  HS_EXPECTS_MSG(cfg.staging_elems > 0, "staging buffer must be non-empty");

  const unsigned cores = platform.cpu.total_cores();
  r.memcpy_threads = std::clamp(cfg.memcpy_threads, 1u, cores);
  const unsigned staging_lanes = r.total_streams() * r.memcpy_threads;
  if (cfg.merge_threads != 0) {
    r.merge_threads = std::min(cfg.merge_threads, cores);
  } else {
    r.merge_threads =
        std::max(1u, cores - std::min(cores - 1, staging_lanes));
  }
  r.multiway_threads =
      cfg.multiway_threads == 0 ? cores : std::min(cfg.multiway_threads, cores);
  return r;
}

}  // namespace hs::core
