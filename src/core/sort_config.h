// Configuration of the heterogeneous sort (Table I parameters + the approach
// taxonomy of Section III-D4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "core/device_health.h"
#include "core/recovery.h"
#include "data/sketch.h"
#include "model/platforms.h"
#include "sim/fault_injector.h"
#include "vgpu/sort_engine.h"

namespace hs::core {

/// The paper's approaches (Section III-D4). PARMEMCPY is orthogonal and
/// selected via SortConfig::memcpy_threads > 1.
enum class Approach : std::uint8_t {
  kBLine,       // single batch, blocking staged copies, default stream
  kBLineMulti,  // BLINE per batch + final multiway merge, no overlap
  kPipeData,    // pinned staging + streams, overlapped bidirectional copies
  kPipeMerge,   // PIPEDATA + pipelined pair-wise merges on the CPU
};

std::string_view approach_name(Approach a);

/// How host<->device payloads are staged.
enum class StagingMode : std::uint8_t {
  kPinned,    // explicit ps-sized pinned buffer per stream (the paper's setup)
  kPageable,  // plain blocking cudaMemcpy semantics: no explicit staging
              // copies, but roughly half the transfer rate (Section V)
};

/// Which sorted batches are pair-merged while the GPU still sorts
/// (Section III-D3).
enum class PairMergePolicy : std::uint8_t {
  kNone,            // defer everything to the final multiway merge
  kPaperHeuristic,  // floor((nb-1)/2) pairs, /nGPU for multi-GPU
  kAll,             // merge every adjacent pair (the "online" scheme the
                    // paper reports as counter-productive; kept for ablation)
};

/// Which on-device sort engine a job launches. The kFixed* policies force
/// one engine (the fixed-radix default reproduces pre-portfolio behaviour
/// with zero planner overhead); kAdaptive lets the sort planner
/// (core/sort_plan.h) rank the portfolio against the input sketch.
enum class DeviceEnginePolicy : std::uint8_t {
  kFixedRadix,
  kFixedHybrid,
  kFixedSample,
  kAdaptive,
};

std::string_view device_engine_policy_name(DeviceEnginePolicy p);

struct SortConfig {
  Approach approach = Approach::kPipeMerge;
  StagingMode staging = StagingMode::kPinned;
  PairMergePolicy pair_policy = PairMergePolicy::kPaperHeuristic;

  /// On-device engine selection policy. Non-default policies engage the sort
  /// planner: the input is sketched (or `planner_hint` consumed) and the
  /// chosen launch parameters are charged by the engine's cost model.
  DeviceEnginePolicy device_engine = DeviceEnginePolicy::kFixedRadix;

  /// Keys the planner's sketcher examines (data/sketch.h); 0 disables
  /// sampling and plans from the conservative uniform sketch.
  std::uint64_t planner_sample = 4096;

  /// Caller-provided sketch consumed instead of sampling the input — the
  /// only way to plan a timing-only run (simulate() has no payload to
  /// sample) and useful when the caller already knows the distribution.
  bool has_planner_hint = false;
  data::InputSketch planner_hint;

  /// Section V extension: perform the pair merges ON the GPU before the
  /// sorted data returns to the host (requires kPipeMerge). Each stream then
  /// holds two input batches, a sort temporary, and a 2*bs output on the
  /// device (5*bs*ns total), so batches shrink accordingly.
  bool device_pair_merge = false;

  /// bs — elements per batch; 0 derives the largest batch that fits the
  /// device-memory budget (2*bs*ns host-merge / 5*bs*ns device-merge).
  std::uint64_t batch_size = 0;

  /// ps — pinned staging buffer size in elements (paper default 1e6).
  std::uint64_t staging_elems = 1'000'000;

  /// Degraded-mode bias (service Pressure mode): the batch-split tuner in
  /// core::plan_device_sort normally demands a clear (>5%) modeled win
  /// before splitting batches further; with this set it accepts any modeled
  /// non-regression, trading pipeline efficiency for smaller per-batch
  /// device and staging footprints.
  bool prefer_small_batches = false;

  /// ns — streams per GPU (paper default 2 for the pipelined approaches).
  unsigned streams_per_gpu = 2;

  /// Number of GPUs to use (<= platform.gpus.size()).
  unsigned num_gpus = 1;

  /// Threads per staging memcpy; > 1 enables PARMEMCPY.
  unsigned memcpy_threads = 1;

  /// Threads for pipelined pair merges; 0 = cores minus staging lanes.
  unsigned merge_threads = 0;

  /// Threads for the final multiway merge; 0 = all cores.
  unsigned multiway_threads = 0;

  /// Use per-stream double buffering for the pinned staging area, letting
  /// the host copy chunk c+1 while chunk c is still in flight on PCIe — a
  /// natural extension of Figure 2's strict MCpy/HtoD alternation (ablation:
  /// abl_double_buffer).
  bool double_buffer_staging = false;

  /// Host memory budget in bytes; 0 = unlimited (pre-governor behaviour).
  /// When the projected footprint (~3n + pinned staging) exceeds it, the
  /// MemoryGovernor shrinks ps, and when 3n alone does not fit it degrades
  /// the sort to the external spill path instead of throwing
  /// (docs/fault_model.md).
  std::uint64_t host_budget_bytes = 0;

  /// Directory for the spill path's temporary run files when the governor
  /// degrades the sort out of core.
  std::string spill_dir = ".";

  /// Optional shared device-health board (core/device_health.h). When set,
  /// devices it marks bad are excluded from the pipeline up front and every
  /// blacklisting this run performs is reported back, so concurrent jobs on
  /// one machine share fault discovery instead of each paying for it. The
  /// caller owns the board and must keep it alive for the sorter's lifetime.
  DeviceHealthBoard* device_health = nullptr;

  /// Seeded fault schedule injected into the run (all-zero: no faults).
  sim::FaultPlan faults;

  /// How the pipeline degrades when faults strike (default: disabled, every
  /// fault propagates). See docs/fault_model.md.
  RecoveryPolicy recovery;

  bool par_memcpy() const { return memcpy_threads > 1; }

  /// Human-readable tag, e.g. "PipeMerge+ParMemCpy (2 GPU)".
  std::string label() const;
};

/// Fully resolved parameters for a concrete run of `n` elements of
/// `elem_size` bytes on `platform`; every 0-default filled in, every
/// constraint checked.
struct ResolvedConfig {
  SortConfig cfg;
  std::uint64_t n = 0;
  std::size_t elem_size = sizeof(double);
  std::uint64_t batch_size = 0;
  std::uint64_t num_batches = 0;
  unsigned streams_per_gpu = 1;
  unsigned num_gpus = 1;
  unsigned memcpy_threads = 1;
  unsigned merge_threads = 1;
  unsigned multiway_threads = 1;
  bool device_pair_merge = false;

  /// Engine + distribution statistics every device sort of this run
  /// launches with. Filled by the sort planner; defaults to the LSD radix
  /// baseline at full pass count.
  vgpu::DeviceSortLaunch device_launch;

  unsigned total_streams() const { return streams_per_gpu * num_gpus; }
  std::uint64_t batch_bytes() const { return batch_size * elem_size; }
  std::uint64_t staging_bytes() const {
    return cfg.staging_elems * elem_size;
  }
};

/// Validates `cfg` against `platform` for input size `n` and fills defaults.
/// Aborts via contract violation on misuse (these are programmer errors:
/// e.g. BLINE with n that needs batching, more GPUs than the platform has,
/// device pair merging without PIPEMERGE).
ResolvedConfig resolve(const SortConfig& cfg, const model::Platform& platform,
                       std::uint64_t n, std::size_t elem_size = sizeof(double));

}  // namespace hs::core
