#include "core/sort_plan.h"

#include <algorithm>

#include "common/assert.h"
#include "common/math_util.h"
#include "cpu/radix_sort.h"

namespace hs::core {
namespace {

double engine_batch_time(const model::GpuSpec& gpu,
                         vgpu::DeviceSortEngine engine, std::uint64_t bs,
                         const vgpu::DeviceSortLaunch& launch) {
  switch (engine) {
    case vgpu::DeviceSortEngine::kRadixLsd:
      return gpu.sort.time(bs);
    case vgpu::DeviceSortEngine::kHybridMsd:
      return gpu.hybrid_sort.time(bs, launch.predicted_passes);
    case vgpu::DeviceSortEngine::kSampleSort:
      return gpu.sample_sort.time(bs, launch.log2_distinct);
  }
  return gpu.sort.time(bs);
}

}  // namespace

SortPlan plan_device_sort(const data::InputSketch& sketch,
                          const ResolvedConfig& rc,
                          const model::Platform& plat, double gpu_cost_factor,
                          DeviceEnginePolicy policy,
                          unsigned key_radix_bytes) {
  HS_EXPECTS(!plat.gpus.empty());
  HS_EXPECTS(key_radix_bytes >= 1 && key_radix_bytes <= cpu::kRadixPasses);
  const model::GpuSpec& gpu = plat.gpus.front();

  SortPlan p;
  p.sketch = sketch;
  p.sketched = sketch.sampled > 0;
  p.batch_size = rc.batch_size;
  p.launch.predicted_passes =
      std::min({sketch.nontrivial_bytes, key_radix_bytes, cpu::kRadixPasses});
  p.launch.log2_distinct = sketch.log2_distinct;

  // Engine choice: rank the portfolio with the same models the simulator
  // charges. Ties go to the distribution-oblivious baseline.
  const double t_radix = engine_batch_time(
      gpu, vgpu::DeviceSortEngine::kRadixLsd, rc.batch_size, p.launch);
  switch (policy) {
    case DeviceEnginePolicy::kFixedRadix:
      p.launch.engine = vgpu::DeviceSortEngine::kRadixLsd;
      break;
    case DeviceEnginePolicy::kFixedHybrid:
      p.launch.engine = vgpu::DeviceSortEngine::kHybridMsd;
      break;
    case DeviceEnginePolicy::kFixedSample:
      p.launch.engine = vgpu::DeviceSortEngine::kSampleSort;
      break;
    case DeviceEnginePolicy::kAdaptive: {
      p.adaptive = true;
      p.launch.engine = vgpu::DeviceSortEngine::kRadixLsd;
      double best = t_radix;
      for (const auto e : {vgpu::DeviceSortEngine::kHybridMsd,
                           vgpu::DeviceSortEngine::kSampleSort}) {
        const double t = engine_batch_time(gpu, e, rc.batch_size, p.launch);
        if (t < best) {
          best = t;
          p.launch.engine = e;
        }
      }
      break;
    }
  }
  const double nb = static_cast<double>(rc.num_batches);
  p.model_baseline_s = nb * t_radix * gpu_cost_factor;
  p.model_chosen_s =
      nb *
      engine_batch_time(gpu, p.launch.engine, rc.batch_size, p.launch) *
      gpu_cost_factor;

  // Batch-size tuning: a coarse pipelined-makespan estimate over a few split
  // factors. Splitting overlaps staging and transfers with sorting (with one
  // batch all five stages are strictly serial) but buys a host merge over
  // more runs; both effects are charged with the platform's own models.
  // BLine admits exactly one batch, so it is never split.
  if (rc.cfg.approach != Approach::kBLine) {
    const double stage_rate = plat.host_memcpy.rate(rc.memcpy_threads);
    const auto makespan = [&](std::uint64_t batches) {
      const std::uint64_t bs = div_ceil(rc.n, batches);
      const double bytes = static_cast<double>(bs) *
                           static_cast<double>(rc.elem_size);
      // One batch walks stage-in -> HtoD -> sort -> DtoH -> stage-out; the
      // staging legs exist only in pinned mode and mirror each other.
      const double g = rc.cfg.staging == StagingMode::kPinned
                           ? bytes / stage_rate
                           : 0.0;
      const double h = bytes / plat.pcie.pinned_bps;
      const double s =
          engine_batch_time(gpu, p.launch.engine, bs, p.launch) *
          gpu_cost_factor;
      const double d = bytes / plat.pcie.pinned_dtoh_bps;
      const double pipelined =
          g + h + s + d + g +
          static_cast<double>(batches - 1) * std::max({g, h, s, d});
      const double merge =
          batches > 1 ? plat.cpu_merge.time(rc.n,
                                            static_cast<double>(batches),
                                            rc.multiway_threads)
                      : 0.0;
      return pipelined / static_cast<double>(rc.num_gpus) + merge;
    };
    const double base_ms = makespan(rc.num_batches);
    std::uint64_t best_nb = rc.num_batches;
    double best_ms = base_ms;
    for (const std::uint64_t mult : {std::uint64_t{2}, std::uint64_t{4}}) {
      const std::uint64_t cand = rc.num_batches * mult;
      const std::uint64_t bs = div_ceil(rc.n, cand);
      if (cand > 64 || bs < std::max<std::uint64_t>(rc.cfg.staging_elems, 1))
        continue;
      const double ms = makespan(cand);
      if (ms < best_ms) {
        best_ms = ms;
        best_nb = cand;
      }
    }
    // Only act on a clear win: the estimate ignores staging chunking and
    // stream interleave, so marginal differences are noise. Under memory
    // pressure (prefer_small_batches) any modeled non-regression is taken —
    // smaller batches mean smaller device + staging footprints.
    const double accept = rc.cfg.prefer_small_batches ? 1.0 : 0.95;
    if (best_nb != rc.num_batches && best_ms < accept * base_ms) {
      p.batch_size = div_ceil(rc.n, best_nb);
      p.batch_adjusted = true;
    }
  }
  return p;
}

}  // namespace hs::core
