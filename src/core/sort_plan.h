// Distribution-adaptive sort planner.
//
// Consumes an input sketch (data/sketch.h) plus the platform's calibrated
// device and PCIe models and decides, per job:
//
//   * which on-device engine to launch (vgpu::DeviceSortEngine) — the LSD
//     radix baseline for full-entropy keys, the hybrid MSD engine when the
//     sketch predicts elidable passes (presorted / narrow-domain keys), the
//     sample-sort engine when the effective key cardinality collapses
//     (duplicate-heavy / zipf keys);
//   * the distribution statistics the chosen engine's cost model consumes
//     (predicted pass count, log2 effective cardinality);
//   * the batch size, via a coarse pipelined-makespan estimate — splitting an
//     in-core input into a few batches overlaps its transfers with its sort,
//     which the one-batch default cannot, at the price of a merge the
//     estimate charges explicitly.
//
// The planner is deliberately coarse: it ranks alternatives with the same
// analytic models the simulator charges, so its choices are exact for the
// virtual platform; the simulated end-to-end time remains the ground truth.
#pragma once

#include <cstdint>

#include "core/sort_config.h"
#include "data/sketch.h"
#include "model/platforms.h"
#include "vgpu/sort_engine.h"

namespace hs::core {

/// The planner's decision for one job, plus the evidence it acted on.
struct SortPlan {
  vgpu::DeviceSortLaunch launch;
  /// True when the engine was chosen by cost ranking (kAdaptive) rather
  /// than forced by a kFixed* policy.
  bool adaptive = false;
  /// True when the decision consumed a real sketch (sampled keys or a
  /// caller-provided hint) rather than the uniform fallback.
  bool sketched = false;
  /// Chosen batch size; differs from the resolved default when the coarse
  /// makespan estimate favours a split.
  std::uint64_t batch_size = 0;
  bool batch_adjusted = false;
  /// Modelled on-device sort seconds for the whole input: the LSD baseline
  /// and the chosen engine (equal when the baseline wins).
  double model_baseline_s = 0.0;
  double model_chosen_s = 0.0;
  data::InputSketch sketch;
};

/// Plans the device-sort launch for a job resolved as `rc` on `plat`.
/// `gpu_cost_factor` is the element type's cost multiplier
/// (cpu::ElementOps::gpu_sort_cost_factor); `key_radix_bytes` its key-image
/// width (cpu::ElementOps::key_radix_bytes) — the 32-bit lanes can never
/// execute more than 4 radix passes, so the predicted pass count is clamped
/// to it.
SortPlan plan_device_sort(const data::InputSketch& sketch,
                          const ResolvedConfig& rc,
                          const model::Platform& plat, double gpu_cost_factor,
                          DeviceEnginePolicy policy,
                          unsigned key_radix_bytes = 8);

}  // namespace hs::core
