#include "core/staging.h"

#include <algorithm>

#include "common/assert.h"

namespace hs::core {

std::vector<Chunk> chunk_batch(std::uint64_t batch_elems, std::uint64_t ps) {
  HS_EXPECTS(ps > 0);
  std::vector<Chunk> chunks;
  chunks.reserve((batch_elems + ps - 1) / ps);
  for (std::uint64_t off = 0; off < batch_elems; off += ps) {
    chunks.push_back(Chunk{off, std::min(ps, batch_elems - off)});
  }
  return chunks;
}

}  // namespace hs::core
