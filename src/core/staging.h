// Chunking of a batch through the ps-sized pinned staging buffer (Figure 2).
#pragma once

#include <cstdint>
#include <vector>

namespace hs::core {

struct Chunk {
  std::uint64_t offset = 0;  // element offset within the batch
  std::uint64_t size = 0;    // elements; == ps except possibly the last
};

/// Splits `batch_elems` into ceil(batch/ps) chunks of at most `ps` elements.
std::vector<Chunk> chunk_batch(std::uint64_t batch_elems, std::uint64_t ps);

}  // namespace hs::core
