#include "cpu/device_engines.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <vector>

#include "common/assert.h"
#include "cpu/total_order.h"

namespace hs::cpu {
namespace {

constexpr unsigned kDigitBits = 8;
constexpr std::size_t kBuckets = kRadixBuckets;

constexpr std::size_t digit_of(std::uint64_t key, unsigned digit) {
  return (key >> (digit * kDigitBits)) & (kBuckets - 1);
}

/// Borrows the scratch ping-pong arena when available, else owns a buffer.
template <typename R>
struct TmpBuffer {
  TmpBuffer(std::uint64_t elems, RadixSortScratch* scratch) {
    const std::size_t bytes = elems * sizeof(R);
    if (scratch != nullptr) {
      data = reinterpret_cast<R*>(scratch->tmp(bytes));
    } else {
      owned.resize(elems);
      data = owned.data();
    }
  }
  R* data = nullptr;
  std::vector<R> owned;
};

template <typename R, typename KeyFn>
unsigned hybrid_msd_generic(std::span<R> rec, KeyFn key,
                            RadixSortScratch* scratch) {
  const std::uint64_t n = rec.size();
  if (n < 2) {
    if (scratch != nullptr) scratch->executed_passes = 0;
    return 0;
  }

  // One fused read sweep builds every per-digit histogram; a digit with a
  // single occupied bucket is trivial — its scatter would be the identity.
  std::array<std::array<std::uint64_t, kBuckets>, kRadixPasses> hist{};
  for (const R& r : rec) {
    const std::uint64_t k = key(r);
    for (unsigned d = 0; d < kRadixPasses; ++d) ++hist[d][digit_of(k, d)];
  }
  const auto nontrivial = [&](unsigned d) {
    unsigned occupied = 0;
    for (const std::uint64_t c : hist[d])
      if (c != 0 && ++occupied > 1) return true;
    return false;
  };
  int msd = -1;
  for (unsigned d = kRadixPasses; d-- > 0;) {
    if (nontrivial(d)) {
      msd = static_cast<int>(d);
      break;
    }
  }
  if (msd < 0) {
    if (scratch != nullptr) scratch->executed_passes = 0;
    return 0;  // every digit trivial: the input is a single repeated key
  }
  std::vector<unsigned> lower;
  for (unsigned d = 0; d < static_cast<unsigned>(msd); ++d) {
    if (nontrivial(d)) lower.push_back(d);
  }

  // MSD pass: stable counting partition into 256 buckets in tmp.
  TmpBuffer<R> tmp(n, scratch);
  std::array<std::uint64_t, kBuckets> start{};
  std::uint64_t sum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    start[b] = sum;
    sum += hist[static_cast<unsigned>(msd)][b];
  }
  std::array<std::uint64_t, kBuckets> cursor = start;
  for (const R& r : rec) {
    tmp.data[cursor[digit_of(key(r), static_cast<unsigned>(msd))]++] = r;
  }

  // LSD over the remaining non-trivial digits inside each bucket, ping-
  // ponging between the bucket's tmp and data regions so the final pass
  // lands back in `rec` (an explicit copy settles odd parities).
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t lo = start[b];
    const std::uint64_t count =
        (b + 1 < kBuckets ? start[b + 1] : n) - lo;
    if (count == 0) continue;
    R* src = tmp.data + lo;
    R* dst = rec.data() + lo;
    if (count > 1) {
      for (const unsigned d : lower) {
        std::array<std::uint64_t, kBuckets> off{};
        for (std::uint64_t i = 0; i < count; ++i)
          ++off[digit_of(key(src[i]), d)];
        std::uint64_t acc = 0;
        for (auto& c : off) {
          const std::uint64_t v = c;
          c = acc;
          acc += v;
        }
        for (std::uint64_t i = 0; i < count; ++i)
          dst[off[digit_of(key(src[i]), d)]++] = src[i];
        std::swap(src, dst);
      }
    }
    if (src != rec.data() + lo) {
      std::memcpy(rec.data() + lo, src, count * sizeof(R));
    }
  }

  const unsigned passes = 1 + static_cast<unsigned>(lower.size());
  if (scratch != nullptr) scratch->executed_passes = passes;
  return passes;
}

template <typename R, typename KeyFn>
void sample_sort_generic(std::span<R> rec, KeyFn key,
                         RadixSortScratch* scratch) {
  const std::uint64_t n = rec.size();
  if (n < 2) return;

  // Deterministic strided key sample (oversampled relative to the bucket
  // count), then up to 255 deduplicated splitters at even sample quantiles.
  const std::uint64_t s = std::min<std::uint64_t>(n, 2048);
  const std::uint64_t stride = n / s;
  std::vector<std::uint64_t> sample(s);
  for (std::uint64_t i = 0; i < s; ++i) sample[i] = key(rec[i * stride]);
  std::sort(sample.begin(), sample.end());
  std::vector<std::uint64_t> splitters;
  splitters.reserve(kBuckets - 1);
  for (std::size_t j = 1; j < kBuckets; ++j) {
    const std::uint64_t cand = sample[j * s / kBuckets];
    if (splitters.empty() || cand != splitters.back())
      splitters.push_back(cand);
  }

  // Classify into value ranges (..s0], (s0,s1], ... and stable-scatter.
  const std::size_t buckets = splitters.size() + 1;
  const auto bucket_of = [&](std::uint64_t k) {
    return static_cast<std::size_t>(
        std::upper_bound(splitters.begin(), splitters.end(), k) -
        splitters.begin());
  };
  std::vector<std::uint64_t> start(buckets + 1, 0);
  for (const R& r : rec) ++start[bucket_of(key(r)) + 1];
  for (std::size_t b = 1; b <= buckets; ++b) start[b] += start[b - 1];
  TmpBuffer<R> tmp(n, scratch);
  std::vector<std::uint64_t> cursor(start.begin(), start.end() - 1);
  for (const R& r : rec) tmp.data[cursor[bucket_of(key(r))]++] = r;

  // Per-bucket stable sort; single-valued buckets (the equality-bucket case)
  // need no work beyond the scatter.
  for (std::size_t b = 0; b < buckets; ++b) {
    R* lo = tmp.data + start[b];
    R* hi = tmp.data + start[b + 1];
    if (hi - lo < 2) continue;
    bool all_equal = true;
    const std::uint64_t first = key(*lo);
    for (const R* p = lo + 1; p != hi; ++p) {
      if (key(*p) != first) {
        all_equal = false;
        break;
      }
    }
    if (!all_equal) {
      std::stable_sort(lo, hi,
                       [&](const R& a, const R& b2) { return key(a) < key(b2); });
    }
  }
  std::memcpy(rec.data(), tmp.data, n * sizeof(R));
}

/// Pass-skipping LSD twin for lanes without a dedicated cpu::radix_sort
/// instantiation. Fused histograms find the non-trivial digits up front;
/// each executes one stable counting scatter, ping-ponging between `rec`
/// and the tmp arena (an explicit copy settles odd parities).
template <typename R, typename KeyFn>
unsigned lsd_generic(std::span<R> rec, KeyFn key, RadixSortScratch* scratch) {
  const std::uint64_t n = rec.size();
  if (n < 2) {
    if (scratch != nullptr) scratch->executed_passes = 0;
    return 0;
  }
  std::array<std::array<std::uint64_t, kBuckets>, kRadixPasses> hist{};
  for (const R& r : rec) {
    const std::uint64_t k = key(r);
    for (unsigned d = 0; d < kRadixPasses; ++d) ++hist[d][digit_of(k, d)];
  }
  std::vector<unsigned> live;
  for (unsigned d = 0; d < kRadixPasses; ++d) {
    unsigned occupied = 0;
    for (const std::uint64_t c : hist[d]) {
      if (c != 0 && ++occupied > 1) {
        live.push_back(d);
        break;
      }
    }
  }
  if (live.empty()) {
    if (scratch != nullptr) scratch->executed_passes = 0;
    return 0;
  }
  TmpBuffer<R> tmp(n, scratch);
  R* src = rec.data();
  R* dst = tmp.data;
  for (const unsigned d : live) {
    std::array<std::uint64_t, kBuckets> off{};
    std::uint64_t acc = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      off[b] = acc;
      acc += hist[d][b];
    }
    for (std::uint64_t i = 0; i < n; ++i)
      dst[off[digit_of(key(src[i]), d)]++] = src[i];
    std::swap(src, dst);
  }
  if (src != rec.data()) std::memcpy(rec.data(), src, n * sizeof(R));
  const unsigned passes = static_cast<unsigned>(live.size());
  if (scratch != nullptr) scratch->executed_passes = passes;
  return passes;
}

constexpr auto kIdentity = [](std::uint64_t k) { return k; };
constexpr auto kKvKey = [](const KeyValue64& r) { return r.key; };
// 32-bit lanes sort directly on their records with the key function widening
// each key to its zero-extended u64 total-order image — the upper four
// digits are trivially single-bucket, so pass skipping caps them at 4
// scatters without any buffer widening.
constexpr auto kU32Key = [](std::uint32_t v) {
  return static_cast<std::uint64_t>(v);
};
constexpr auto kI32Key = [](std::int32_t v) {
  return static_cast<std::uint64_t>(i32_total_key(v));
};
constexpr auto kF32Key = [](float v) {
  return static_cast<std::uint64_t>(f32_total_key(v));
};
constexpr auto kPadKvKey = [](const KeyValue64P24& r) { return r.key; };

/// Runs `fn` on the doubles' order-preserving u64 image (same bijection as
/// the radix engine, so -0.0 < +0.0 and NaNs land above +inf).
template <typename Fn>
auto via_key_image(std::span<double> values, Fn fn) {
  const std::span<std::uint64_t> keys{
      reinterpret_cast<std::uint64_t*>(values.data()), values.size()};
  for (auto& k : keys) k = double_to_radix_key(std::bit_cast<double>(k));
  if constexpr (std::is_void_v<decltype(fn(keys))>) {
    fn(keys);
    for (auto& k : keys)
      k = std::bit_cast<std::uint64_t>(radix_key_to_double(k));
  } else {
    const auto r = fn(keys);
    for (auto& k : keys)
      k = std::bit_cast<std::uint64_t>(radix_key_to_double(k));
    return r;
  }
}

}  // namespace

unsigned hybrid_msd_sort(std::span<std::uint64_t> keys,
                         RadixSortScratch* scratch) {
  return hybrid_msd_generic(keys, kIdentity, scratch);
}

unsigned hybrid_msd_sort(std::span<double> values, RadixSortScratch* scratch) {
  return via_key_image(values, [scratch](std::span<std::uint64_t> keys) {
    return hybrid_msd_generic(keys, kIdentity, scratch);
  });
}

unsigned hybrid_msd_sort(std::span<KeyValue64> records,
                         RadixSortScratch* scratch) {
  return hybrid_msd_generic(records, kKvKey, scratch);
}

unsigned hybrid_msd_sort(std::span<std::uint32_t> keys,
                         RadixSortScratch* scratch) {
  return hybrid_msd_generic(keys, kU32Key, scratch);
}

unsigned hybrid_msd_sort(std::span<std::int32_t> values,
                         RadixSortScratch* scratch) {
  return hybrid_msd_generic(values, kI32Key, scratch);
}

unsigned hybrid_msd_sort(std::span<float> values, RadixSortScratch* scratch) {
  return hybrid_msd_generic(values, kF32Key, scratch);
}

unsigned hybrid_msd_sort(std::span<KeyValue64P24> records,
                         RadixSortScratch* scratch) {
  return hybrid_msd_generic(records, kPadKvKey, scratch);
}

void device_sample_sort(std::span<std::uint64_t> keys,
                        RadixSortScratch* scratch) {
  sample_sort_generic(keys, kIdentity, scratch);
}

void device_sample_sort(std::span<double> values, RadixSortScratch* scratch) {
  via_key_image(values, [scratch](std::span<std::uint64_t> keys) {
    sample_sort_generic(keys, kIdentity, scratch);
  });
}

void device_sample_sort(std::span<KeyValue64> records,
                        RadixSortScratch* scratch) {
  sample_sort_generic(records, kKvKey, scratch);
}

void device_sample_sort(std::span<std::uint32_t> keys,
                        RadixSortScratch* scratch) {
  sample_sort_generic(keys, kU32Key, scratch);
}

void device_sample_sort(std::span<std::int32_t> values,
                        RadixSortScratch* scratch) {
  sample_sort_generic(values, kI32Key, scratch);
}

void device_sample_sort(std::span<float> values, RadixSortScratch* scratch) {
  sample_sort_generic(values, kF32Key, scratch);
}

void device_sample_sort(std::span<KeyValue64P24> records,
                        RadixSortScratch* scratch) {
  sample_sort_generic(records, kPadKvKey, scratch);
}

unsigned device_lsd_sort(std::span<std::uint32_t> keys,
                         RadixSortScratch* scratch) {
  return lsd_generic(keys, kU32Key, scratch);
}

unsigned device_lsd_sort(std::span<std::int32_t> values,
                         RadixSortScratch* scratch) {
  return lsd_generic(values, kI32Key, scratch);
}

unsigned device_lsd_sort(std::span<float> values, RadixSortScratch* scratch) {
  return lsd_generic(values, kF32Key, scratch);
}

unsigned device_lsd_sort(std::span<KeyValue64P24> records,
                         RadixSortScratch* scratch) {
  return lsd_generic(records, kPadKvKey, scratch);
}

}  // namespace hs::cpu
