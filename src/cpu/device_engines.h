// Host-side twins of the on-device engine portfolio (vgpu::DeviceSortEngine).
//
// The virtual GPU charges each engine's calibrated cost model for timing; in
// Execution::kReal these functions perform the actual algorithm on the
// device buffer's backing store so output correctness is verifiable. They
// are correctness twins, not throughput kernels — the LSD engine in
// cpu/radix_sort.h remains the tuned host hot path.
//
//   * hybrid_msd_sort — Stehle & Jacobsen-style hybrid: one stable counting
//     partition by the most significant non-trivial key byte, then LSD
//     passes over the remaining non-trivial digits inside each MSD bucket
//     (trivial digits skipped globally, like the host engine). Returns the
//     number of scatter passes executed so tests and counters can pin the
//     entropy-driven elision; 0 means the input needed no data movement.
//
//   * device_sample_sort — Leischner/Osipov/Sanders-style sample sort:
//     deterministic strided key sample, deduplicated splitters, one stable
//     counting scatter into buckets, then a stable per-bucket sort.
//     Single-valued buckets (the equality-bucket case that makes dup-heavy
//     keys cheap) are detected and skipped.
//
// Both engines are stable and sort doubles through the same order-preserving
// u64 bijection as the radix engine. `scratch` reuses the radix engine's
// grow-only arena across batch sorts; nullptr uses a call-local buffer.
#pragma once

#include <cstdint>
#include <span>

#include "common/key_value.h"
#include "cpu/radix_sort.h"

namespace hs::cpu {

unsigned hybrid_msd_sort(std::span<std::uint64_t> keys,
                         RadixSortScratch* scratch = nullptr);
unsigned hybrid_msd_sort(std::span<double> values,
                         RadixSortScratch* scratch = nullptr);
unsigned hybrid_msd_sort(std::span<KeyValue64> records,
                         RadixSortScratch* scratch = nullptr);

void device_sample_sort(std::span<std::uint64_t> keys,
                        RadixSortScratch* scratch = nullptr);
void device_sample_sort(std::span<double> values,
                        RadixSortScratch* scratch = nullptr);
void device_sample_sort(std::span<KeyValue64> records,
                        RadixSortScratch* scratch = nullptr);

}  // namespace hs::cpu
