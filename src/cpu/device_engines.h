// Host-side twins of the on-device engine portfolio (vgpu::DeviceSortEngine).
//
// The virtual GPU charges each engine's calibrated cost model for timing; in
// Execution::kReal these functions perform the actual algorithm on the
// device buffer's backing store so output correctness is verifiable. They
// are correctness twins, not throughput kernels — the LSD engine in
// cpu/radix_sort.h remains the tuned host hot path.
//
//   * hybrid_msd_sort — Stehle & Jacobsen-style hybrid: one stable counting
//     partition by the most significant non-trivial key byte, then LSD
//     passes over the remaining non-trivial digits inside each MSD bucket
//     (trivial digits skipped globally, like the host engine). Returns the
//     number of scatter passes executed so tests and counters can pin the
//     entropy-driven elision; 0 means the input needed no data movement.
//
//   * device_sample_sort — Leischner/Osipov/Sanders-style sample sort:
//     deterministic strided key sample, deduplicated splitters, one stable
//     counting scatter into buckets, then a stable per-bucket sort.
//     Single-valued buckets (the equality-bucket case that makes dup-heavy
//     keys cheap) are detected and skipped.
//
//   * device_lsd_sort — plain LSD twin for the lanes that have no dedicated
//     cpu::radix_sort instantiation (i32/u32/f32 and the wide-payload kv
//     record): trivial digits are skipped exactly like the tuned engine, so
//     a 32-bit key image executes at most 4 of the 8 possible passes.
//     Returns the executed pass count.
//
// All engines are stable and order every lane by its u64 total-order key
// image (cpu/total_order.h): doubles and floats through the sign-flip
// bijection (so -0.0 < +0.0 and NaNs land at deterministic tails), signed
// ints through the two's-complement sign-bit flip, unsigned ints and kv keys
// as-is. `scratch` reuses the radix engine's grow-only arena across batch
// sorts; nullptr uses a call-local buffer.
#pragma once

#include <cstdint>
#include <span>

#include "common/key_value.h"
#include "cpu/radix_sort.h"

namespace hs::cpu {

unsigned hybrid_msd_sort(std::span<std::uint64_t> keys,
                         RadixSortScratch* scratch = nullptr);
unsigned hybrid_msd_sort(std::span<double> values,
                         RadixSortScratch* scratch = nullptr);
unsigned hybrid_msd_sort(std::span<KeyValue64> records,
                         RadixSortScratch* scratch = nullptr);
unsigned hybrid_msd_sort(std::span<std::uint32_t> keys,
                         RadixSortScratch* scratch = nullptr);
unsigned hybrid_msd_sort(std::span<std::int32_t> values,
                         RadixSortScratch* scratch = nullptr);
unsigned hybrid_msd_sort(std::span<float> values,
                         RadixSortScratch* scratch = nullptr);
unsigned hybrid_msd_sort(std::span<KeyValue64P24> records,
                         RadixSortScratch* scratch = nullptr);

void device_sample_sort(std::span<std::uint64_t> keys,
                        RadixSortScratch* scratch = nullptr);
void device_sample_sort(std::span<double> values,
                        RadixSortScratch* scratch = nullptr);
void device_sample_sort(std::span<KeyValue64> records,
                        RadixSortScratch* scratch = nullptr);
void device_sample_sort(std::span<std::uint32_t> keys,
                        RadixSortScratch* scratch = nullptr);
void device_sample_sort(std::span<std::int32_t> values,
                        RadixSortScratch* scratch = nullptr);
void device_sample_sort(std::span<float> values,
                        RadixSortScratch* scratch = nullptr);
void device_sample_sort(std::span<KeyValue64P24> records,
                        RadixSortScratch* scratch = nullptr);

unsigned device_lsd_sort(std::span<std::uint32_t> keys,
                         RadixSortScratch* scratch = nullptr);
unsigned device_lsd_sort(std::span<std::int32_t> values,
                         RadixSortScratch* scratch = nullptr);
unsigned device_lsd_sort(std::span<float> values,
                         RadixSortScratch* scratch = nullptr);
unsigned device_lsd_sort(std::span<KeyValue64P24> records,
                         RadixSortScratch* scratch = nullptr);

}  // namespace hs::cpu
