#include "cpu/element_ops.h"

#include <cstring>
#include <type_traits>

#include "common/assert.h"
#include "cpu/device_engines.h"
#include "cpu/merge_path.h"
#include "cpu/multiway_merge.h"
#include "cpu/radix_sort.h"

namespace hs::cpu {
namespace {

template <typename T>
std::span<T> typed(std::byte* data, std::uint64_t elems) {
  return {reinterpret_cast<T*>(data), elems};
}

template <typename T>
std::span<const T> typed_const(const std::byte* data, std::uint64_t elems) {
  return {reinterpret_cast<const T*>(data), elems};
}

template <typename T>
ElementOps make_ops(std::string name, double gpu_factor,
                    std::size_t key_size = sizeof(T)) {
  ElementOps ops;
  ops.elem_size = sizeof(T);
  ops.key_size = key_size;
  ops.type_name = std::move(name);
  ops.gpu_sort_cost_factor = gpu_factor;
  ops.device_sort = [](std::byte* data, std::uint64_t elems,
                       RadixSortScratch* scratch) {
    radix_sort(typed<T>(data, elems), scratch);
  };
  ops.device_sort_hybrid = [](std::byte* data, std::uint64_t elems,
                              RadixSortScratch* scratch) {
    return hybrid_msd_sort(typed<T>(data, elems), scratch);
  };
  ops.device_sort_sample = [](std::byte* data, std::uint64_t elems,
                              RadixSortScratch* scratch) {
    device_sample_sort(typed<T>(data, elems), scratch);
  };
  ops.extract_key = [](const std::byte* rec) -> std::uint64_t {
    T v;
    std::memcpy(&v, rec, sizeof(T));
    if constexpr (std::is_same_v<T, double>) {
      return double_to_radix_key(v);
    } else if constexpr (std::is_same_v<T, std::uint64_t>) {
      return v;
    } else {
      return v.key;
    }
  };
  ops.merge_pair = [](RunView a, RunView b, std::byte* out,
                      ThreadPool& pool, unsigned threads) {
    merge_parallel<T>(pool, typed_const<T>(a.data, a.elems),
                               typed_const<T>(b.data, b.elems),
                               typed<T>(out, a.elems + b.elems), std::less<T>{},
                               threads);
  };
  ops.multiway = [](std::span<const RunView> runs, std::byte* out,
                    ThreadPool& pool, unsigned threads,
                    const MergePlan* plan) {
    std::vector<std::span<const T>> spans;
    spans.reserve(runs.size());
    std::uint64_t total = 0;
    for (const RunView& r : runs) {
      spans.push_back(typed_const<T>(r.data, r.elems));
      total += r.elems;
    }
    // One scratch per call: all lanes' trees and descriptor arenas are sized
    // once, so the per-part merge loop allocates nothing.
    MultiwayMergeScratch<T> scratch;
    multiway_merge_parallel<T>(pool, std::move(spans),
                                        typed<T>(out, total), std::less<T>{},
                                        threads, &scratch, plan);
  };
  return ops;
}

}  // namespace

template <>
ElementOps element_ops<double>() {
  return make_ops<double>("f64", 1.0);
}

template <>
ElementOps element_ops<std::uint64_t>() {
  return make_ops<std::uint64_t>("u64", 1.0);
}

template <>
ElementOps element_ops<hs::KeyValue64>() {
  // Key/value records carry a 64-bit payload past every radix scatter; the
  // device stays bandwidth-bound, so per-element cost rises only mildly
  // (~15%). Calibrated against the related work's 0.47 s for 375M pairs on
  // CUB-class kernels (Fig 8 of Stehle & Jacobsen).
  return make_ops<hs::KeyValue64>("kv64", 1.15, sizeof(std::uint64_t));
}

}  // namespace hs::cpu
