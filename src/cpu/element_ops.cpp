#include "cpu/element_ops.h"

#include <array>
#include <cstring>
#include <type_traits>

#include "common/assert.h"
#include "cpu/device_engines.h"
#include "cpu/merge_path.h"
#include "cpu/multiway_merge.h"
#include "cpu/radix_sort.h"
#include "cpu/total_order.h"

namespace hs::cpu {
namespace {

template <typename T>
std::span<T> typed(std::byte* data, std::uint64_t elems) {
  return {reinterpret_cast<T*>(data), elems};
}

template <typename T>
std::span<const T> typed_const(const std::byte* data, std::uint64_t elems) {
  return {reinterpret_cast<const T*>(data), elems};
}

/// The comparator a lane's merges run under. Floats get the total-order
/// comparator (bijection-image compare) so merge output matches the radix
/// engines on NaN/-0.0; everything else keeps std::less — kv64 in
/// particular MUST stay std::less<KeyValue64>, because the payload-deferred
/// merge is keyed on DeferredMergeTraits<KeyValue64, std::less<KeyValue64>>.
template <typename T>
using LaneLess =
    std::conditional_t<std::is_floating_point_v<T>, TotalOrderLess<T>,
                       std::less<T>>;

/// Lanes with a dedicated tuned radix_sort instantiation; the rest use the
/// pass-skipping LSD twin in cpu/device_engines.
template <typename T>
constexpr bool kHasTunedRadix = std::is_same_v<T, double> ||
                                std::is_same_v<T, std::uint64_t> ||
                                std::is_same_v<T, hs::KeyValue64>;

template <typename T>
std::uint64_t lane_key(const T& v) {
  if constexpr (std::is_same_v<T, double>) {
    return double_to_radix_key(v);
  } else if constexpr (std::is_same_v<T, float>) {
    return f32_total_key(v);
  } else if constexpr (std::is_same_v<T, std::int32_t>) {
    return i32_total_key(v);
  } else if constexpr (std::is_same_v<T, std::uint64_t> ||
                       std::is_same_v<T, std::uint32_t>) {
    return v;
  } else {
    return v.key;
  }
}

template <typename T>
ElementOps make_ops(std::string name, double gpu_factor,
                    std::size_t key_size = sizeof(T),
                    unsigned key_radix_bytes = 8) {
  ElementOps ops;
  ops.elem_size = sizeof(T);
  ops.key_size = key_size;
  ops.type_name = std::move(name);
  ops.gpu_sort_cost_factor = gpu_factor;
  ops.key_radix_bytes = key_radix_bytes;
  ops.device_sort = [](std::byte* data, std::uint64_t elems,
                       RadixSortScratch* scratch) {
    if constexpr (kHasTunedRadix<T>) {
      radix_sort(typed<T>(data, elems), scratch);
    } else {
      device_lsd_sort(typed<T>(data, elems), scratch);
    }
  };
  ops.device_sort_hybrid = [](std::byte* data, std::uint64_t elems,
                              RadixSortScratch* scratch) {
    return hybrid_msd_sort(typed<T>(data, elems), scratch);
  };
  ops.device_sort_sample = [](std::byte* data, std::uint64_t elems,
                              RadixSortScratch* scratch) {
    device_sample_sort(typed<T>(data, elems), scratch);
  };
  ops.extract_key = [](const std::byte* rec) -> std::uint64_t {
    T v;
    std::memcpy(&v, rec, sizeof(T));
    return lane_key(v);
  };
  ops.merge_pair = [](RunView a, RunView b, std::byte* out,
                      ThreadPool& pool, unsigned threads) {
    merge_parallel<T>(pool, typed_const<T>(a.data, a.elems),
                               typed_const<T>(b.data, b.elems),
                               typed<T>(out, a.elems + b.elems), LaneLess<T>{},
                               threads);
  };
  ops.multiway = [](std::span<const RunView> runs, std::byte* out,
                    ThreadPool& pool, unsigned threads,
                    const MergePlan* plan) {
    std::vector<std::span<const T>> spans;
    spans.reserve(runs.size());
    std::uint64_t total = 0;
    for (const RunView& r : runs) {
      spans.push_back(typed_const<T>(r.data, r.elems));
      total += r.elems;
    }
    // One scratch per call: all lanes' trees and descriptor arenas are sized
    // once, so the per-part merge loop allocates nothing.
    MultiwayMergeScratch<T, LaneLess<T>> scratch;
    multiway_merge_parallel<T>(pool, std::move(spans),
                                        typed<T>(out, total), LaneLess<T>{},
                                        threads, &scratch, plan);
  };
  return ops;
}

}  // namespace

template <>
ElementOps element_ops<double>() {
  return make_ops<double>("f64", 1.0);
}

template <>
ElementOps element_ops<std::uint64_t>() {
  return make_ops<std::uint64_t>("u64", 1.0);
}

template <>
ElementOps element_ops<hs::KeyValue64>() {
  // Key/value records carry a 64-bit payload past every radix scatter; the
  // device stays bandwidth-bound, so per-element cost rises only mildly
  // (~15%). Calibrated against the related work's 0.47 s for 375M pairs on
  // CUB-class kernels (Fig 8 of Stehle & Jacobsen).
  return make_ops<hs::KeyValue64>("kv64", 1.15, sizeof(std::uint64_t));
}

template <>
ElementOps element_ops<float>() {
  // Half the bytes per element of the calibrated f64 lane, but the same
  // per-element classify/scan work, so cost shrinks less than 2x.
  return make_ops<float>("f32", 0.55, sizeof(float), 4);
}

template <>
ElementOps element_ops<std::int32_t>() {
  return make_ops<std::int32_t>("i32", 0.55, sizeof(std::int32_t), 4);
}

template <>
ElementOps element_ops<std::uint32_t>() {
  return make_ops<std::uint32_t>("u32", 0.55, sizeof(std::uint32_t), 4);
}

template <>
ElementOps element_ops<hs::KeyValue64P24>() {
  // 32-byte records: the 24-byte payload rides through every scatter, so
  // the lane costs noticeably more than kv64 but stays under the 2x a pure
  // bytes-moved model would predict (key work is unchanged).
  return make_ops<hs::KeyValue64P24>("kv64p24", 1.45, sizeof(std::uint64_t));
}

namespace {

struct LaneEntry {
  std::string_view name;
  ElementOps ops;
};

const std::array<LaneEntry, 7>& lane_registry() {
  static const std::array<LaneEntry, 7> kLanes = {{
      {"f64", element_ops<double>()},
      {"u64", element_ops<std::uint64_t>()},
      {"kv64", element_ops<hs::KeyValue64>()},
      {"f32", element_ops<float>()},
      {"i32", element_ops<std::int32_t>()},
      {"u32", element_ops<std::uint32_t>()},
      {"kv64p24", element_ops<hs::KeyValue64P24>()},
  }};
  return kLanes;
}

}  // namespace

std::span<const std::string_view> element_lane_names() {
  static const std::array<std::string_view, 7> kNames = [] {
    std::array<std::string_view, 7> names{};
    const auto& reg = lane_registry();
    for (std::size_t i = 0; i < reg.size(); ++i) names[i] = reg[i].name;
    return names;
  }();
  return kNames;
}

const ElementOps* element_ops_by_name(std::string_view name) {
  for (const LaneEntry& lane : lane_registry()) {
    if (lane.name == name) return &lane.ops;
  }
  return nullptr;
}

}  // namespace hs::cpu
