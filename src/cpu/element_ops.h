// Type erasure for the pipeline's element type, and the typed lane registry.
//
// The heterogeneous pipeline moves and merges opaque fixed-size records; only
// a handful of operations depend on the concrete type: the on-device sorts,
// the key extraction the sketcher samples, the pairwise merge, and the
// multiway merge. ElementOps bundles them so the pipeline compiles once over
// byte buffers while users sort any registered lane:
//
//   f64  u64  kv64  f32  i32  u32  kv64p24
//
// Every lane defines the same contract: `extract_key` is an order-preserving
// bijection from the record's comparison key into u64 radix-image space
// (floats via the sign-flip bijection, signed ints via the sign-bit flip —
// see cpu/total_order.h), and the merge comparators order by exactly that
// image, so the sketcher, all three device engines, the deferred-merge
// policy, and data/verify agree on one total order per lane. Other trivially
// copyable types can still be supported by building an ElementOps by hand.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/key_value.h"
#include "cpu/merge_plan.h"
#include "cpu/thread_pool.h"

namespace hs::cpu {

class RadixSortScratch;

/// A sorted run inside a byte buffer.
struct RunView {
  const std::byte* data = nullptr;
  std::uint64_t elems = 0;
};

struct ElementOps {
  std::size_t elem_size = sizeof(double);
  /// Width of the comparison key inside the record; == elem_size when the
  /// whole record is the key. A strictly narrower key lets the merge planner
  /// consider payload-deferred lanes (kv64: 8-byte key, 16-byte record).
  std::size_t key_size = sizeof(double);
  std::string type_name = "f64";

  /// On-GPU sorting throughput relative to the 64-bit radix sort the
  /// GpuSortModel is calibrated for (key/value records move twice the bytes
  /// per element through the device pipeline).
  double gpu_sort_cost_factor = 1.0;

  /// Width of the key's radix image in bytes: the maximum number of scatter
  /// passes any radix-family engine can execute on this lane. 8 for 64-bit
  /// keys; 4 for the 32-bit lanes, whose zero-extended images make the upper
  /// four digits trivially skippable. The planner clamps its predicted pass
  /// count to this.
  unsigned key_radix_bytes = 8;

  /// Sorts `elems` records at `data` ascending (used by the virtual device).
  /// Pass a `scratch` to reuse the radix engine's working memory across
  /// batch sorts (nullptr: a call-local scratch is used).
  std::function<void(std::byte* data, std::uint64_t elems,
                     RadixSortScratch* scratch)>
      device_sort;

  /// Portfolio alternatives to `device_sort` (vgpu::DeviceSortEngine). The
  /// hybrid MSD engine returns the number of scatter passes it executed;
  /// the virtual device falls back to `device_sort` when these are unset
  /// (hand-built ElementOps predating the portfolio).
  std::function<unsigned(std::byte* data, std::uint64_t elems,
                         RadixSortScratch* scratch)>
      device_sort_hybrid;
  std::function<void(std::byte* data, std::uint64_t elems,
                     RadixSortScratch* scratch)>
      device_sort_sample;

  /// Reads the record at `rec` and returns its comparison key as the u64
  /// radix image (doubles via the order-preserving bijection). This is what
  /// the input sketcher samples, so sketch statistics are computed in the
  /// same key space every engine sorts in.
  std::function<std::uint64_t(const std::byte* rec)> extract_key;

  /// Stable merge of two sorted runs into `out` (pair merges on the CPU).
  std::function<void(RunView a, RunView b, std::byte* out,
                     ThreadPool& pool, unsigned threads)>
      merge_pair;

  /// Stable k-way merge of sorted runs into `out` (final multiway merge).
  /// `plan` selects topology / payload handling; nullptr = engine default.
  std::function<void(std::span<const RunView> runs, std::byte* out,
                     ThreadPool& pool, unsigned threads,
                     const MergePlan* plan)>
      multiway;
};

/// Ready-made ops. Explicit specialisations exist for every registered lane;
/// other trivially copyable types can be supported by building an ElementOps
/// by hand.
template <typename T>
ElementOps element_ops();

template <>
ElementOps element_ops<double>();
template <>
ElementOps element_ops<std::uint64_t>();
template <>
ElementOps element_ops<hs::KeyValue64>();
template <>
ElementOps element_ops<float>();
template <>
ElementOps element_ops<std::int32_t>();
template <>
ElementOps element_ops<std::uint32_t>();
template <>
ElementOps element_ops<hs::KeyValue64P24>();

/// Every registered lane name, in registry order (f64 first — the paper's
/// workload and the CLI default).
std::span<const std::string_view> element_lane_names();

/// Ops for a named lane, or nullptr when the name is not registered. The
/// returned object lives for the program's lifetime.
const ElementOps* element_ops_by_name(std::string_view name);

}  // namespace hs::cpu
