// inplace_merge is header-only (templates); this TU anchors the target and verifies the
// header is self-contained.
#include "cpu/inplace_merge.h"
