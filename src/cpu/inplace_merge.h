// In-place pairwise merge via recursive block rotation.
//
// The paper deliberately merges out-of-place: "Merging in-place is known to
// be a challenging problem and leads to a decrease in performance" (Section
// III-C). This implementation exists to *demonstrate* that claim: it is the
// classic symmetric-rotation scheme — O((n) log n) moves with no auxiliary
// buffer — and micro_host_algorithms shows it losing to the O(n) buffered
// merge by the margin the paper's trade-off assumes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/assert.h"

namespace hs::cpu {

/// Merges the two consecutive sorted ranges [0, mid) and [mid, n) of `data`
/// in place with O(1) auxiliary memory.
template <typename T, typename Compare = std::less<T>>
void inplace_merge_rotation(std::span<T> data, std::uint64_t mid,
                            Compare comp = {}) {
  HS_EXPECTS(mid <= data.size());
  // Iterative worklist instead of recursion: each entry is a (range, mid)
  // sub-problem; splitting produces two independent halves.
  struct Job {
    std::uint64_t lo, mid, hi;
  };
  std::vector<Job> stack;
  stack.push_back({0, mid, data.size()});
  while (!stack.empty()) {
    const Job j = stack.back();
    stack.pop_back();
    const std::uint64_t len1 = j.mid - j.lo;
    const std::uint64_t len2 = j.hi - j.mid;
    if (len1 == 0 || len2 == 0) continue;
    if (len1 + len2 == 2) {
      if (comp(data[j.mid], data[j.lo])) std::swap(data[j.lo], data[j.mid]);
      continue;
    }
    // Pick the pivot from the longer side's middle; find its partner via
    // binary search in the other side.
    std::uint64_t cut1, cut2;
    if (len1 >= len2) {
      cut1 = j.lo + len1 / 2;
      cut2 = static_cast<std::uint64_t>(
          std::lower_bound(data.begin() + static_cast<std::ptrdiff_t>(j.mid),
                           data.begin() + static_cast<std::ptrdiff_t>(j.hi),
                           data[cut1], comp) -
          data.begin());
    } else {
      cut2 = j.mid + len2 / 2;
      cut1 = static_cast<std::uint64_t>(
          std::upper_bound(data.begin() + static_cast<std::ptrdiff_t>(j.lo),
                           data.begin() + static_cast<std::ptrdiff_t>(j.mid),
                           data[cut2], comp) -
          data.begin());
    }
    if (cut1 == j.lo && cut2 == j.mid) {
      // len1 == 1 and its element precedes the whole second run: already
      // merged (re-pushing would loop forever).
      continue;
    }
    // Rotate [cut1, cut2) so the two middle blocks swap sides.
    std::rotate(data.begin() + static_cast<std::ptrdiff_t>(cut1),
                data.begin() + static_cast<std::ptrdiff_t>(j.mid),
                data.begin() + static_cast<std::ptrdiff_t>(cut2));
    const std::uint64_t new_mid = cut1 + (cut2 - j.mid);
    stack.push_back({j.lo, cut1, new_mid});
    stack.push_back({new_mid, cut2, j.hi});
  }
}

}  // namespace hs::cpu
