// Loser-tree (tournament) k-way merger — the sequential core of the multiway
// merge the paper performs after all batches return from the GPU.
//
// A loser tree replays only one root-to-leaf path (log2 k comparisons) per
// output element, giving the O(n log k) work bound quoted in the paper
// (Section III-A). This implementation removes the per-element overheads that
// dominate the host hot path:
//
//   * Key caching. Each tree node stores its loser's current key next to
//     the run id, so a replay compares an L1-resident cached key against the
//     contender key carried in a register — no chasing of run-span base
//     pointers and cursors (three dependent loads per side per comparison in
//     the classic formulation).
//   * Branchless replay. Match outcomes feed explicit mask selects (never
//     ternaries, which the compiler's if-converter would turn back into
//     branches), so the inherently unpredictable merge comparison costs ALU
//     latency instead of a pipeline flush. Run exhaustion is encoded in the
//     id itself (run r exhausted == id r + leaves_), removing per-comparison
//     exhaustion branches: a run's end is discovered exactly once, when its
//     next head is loaded.
//   * Windowed exhaustion hoist. Before entering the hot loop a drain
//     computes the refill window — the smallest remaining tail across live
//     runs. Within window-1 emissions no cursor can cross its slice end, so
//     the per-element bound check in the head reload is hoisted out of the
//     loop entirely; one checked step closes each window. Windows below
//     kWindowMin fall back to checked stepping, so the O(k) window scan is
//     paid at most once per kWindowMin elements.
//   * Dual-stream drain. drain() splits the runs at a sampled splitter into
//     two independent halves of the output and merges both in one
//     interleaved loop. The two replay chains share no data, so the CPU
//     overlaps them — merging is latency-bound, not throughput-bound, and
//     two streams roughly double sustained throughput on one core.
//   * Adaptive galloping. When one run wins kGallopStreak times in a row,
//     the drain computes the runner-up bound (best of the losers on the
//     winner's root-to-leaf path — cached keys, cheap scan) and emits winner
//     elements in a sentinel-free tight loop until the bound, the run's end,
//     or the remaining space. Uniform random inputs never pay for this;
//     duplicate-heavy, clustered, and tail-of-merge inputs (one surviving
//     run) collapse to near-memcpy.
//   * k <= 2 short-circuit. drain() degenerates to std::copy / std::merge.
//
// Emission policies. The tree machinery is generic over what flows through
// the tournament and what a drain writes out:
//
//   * DirectMergePolicy (the LoserTree alias): nodes cache whole elements
//     and drains emit elements — the classic merge.
//   * DeferredMergePolicy (the DeferredLoserTree alias): for wide records
//     whose order is decided by a narrow key (e.g. 16-byte KeyValue64
//     ordered by its 8-byte key), nodes cache only the key and drains emit a
//     permutation stream of (run, position) entries packed into 8 bytes.
//     The tree touches keys log k times but payloads zero times; a separate
//     gather pass (apply_permutation in multiway_merge.h) then moves each
//     full record exactly once. This is the paper-adjacent "touch keys many
//     times, touch payloads once" discipline that closes the kv64 gap.
//
// Element types opt into deferral by specialising DeferredMergeTraits for
// (T, Compare); the default leaves it disabled so custom comparators never
// silently reorder through a key projection they did not define.
//
// Stability: ties go to the lower run index everywhere. The gallop loop
// splits its comparison on the run-vs-runner-up order, the dual-stream
// split sends all elements equal to the splitter to the lower stream in
// every run, and the deferred policy emits (run, pos) in exactly the order
// the direct policy would emit elements — so equal elements never reorder.
//
// The tree is reusable: reset() rebinds it to a new run set without freeing
// internal buffers, so steady-state merging (one tree per worker lane)
// performs no heap allocation. T must be default-constructible and copyable
// (keys are cached by value). The comparator is invoked on both orderings of
// a pair (and on stale keys of exhausted runs, whose result is discarded),
// so it must be a pure strict weak ordering.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <type_traits>
#include <vector>

#include "common/assert.h"
#include "common/key_value.h"
#include "common/math_util.h"

namespace hs::cpu {

// --- permutation-entry packing ----------------------------------------------
// A deferred drain emits one 8-byte entry per element: run index in the top
// 16 bits, position within the run in the low 48. Consecutive positions from
// one run differ by exactly 1, so segment detection in the gather pass is a
// single integer compare per entry.

inline constexpr unsigned kPermRunShift = 48;
inline constexpr std::uint64_t kPermPosMask =
    (std::uint64_t{1} << kPermRunShift) - 1;

constexpr std::uint64_t perm_entry(std::size_t run, std::uint64_t pos) {
  return (static_cast<std::uint64_t>(run) << kPermRunShift) | pos;
}
constexpr std::size_t perm_run(std::uint64_t e) {
  return static_cast<std::size_t>(e >> kPermRunShift);
}
constexpr std::uint64_t perm_pos(std::uint64_t e) { return e & kPermPosMask; }

// --- emission policies -------------------------------------------------------

/// Classic merge: the tournament carries whole elements and drains emit them.
template <typename T>
struct DirectMergePolicy {
  using Elem = T;
  using Key = T;
  using Out = T;
  static constexpr bool kDirect = true;

  static Key load(const Elem* base, std::uint64_t pos) { return base[pos]; }
  static Out make(const Key& key, std::size_t /*run*/, std::uint64_t /*pos*/) {
    return key;
  }
  static void bulk(Out*& o, const Elem* base, std::uint64_t lo,
                   std::uint64_t hi, std::size_t /*run*/) {
    o = std::copy(base + lo, base + hi, o);
  }
};

/// Opt-in key projection enabling payload-deferred merging for an element
/// type under a specific comparator. Enabled specialisations must provide:
///   using Key        — the narrow comparison key (8 bytes);
///   using KeyCompare — the order on Key matching Compare on T;
///   static Key key(const T&) — the projection.
template <typename T, typename Compare>
struct DeferredMergeTraits {
  static constexpr bool kEnabled = false;
};

/// KeyValue64 under its natural order sorts by the 8-byte key alone — the
/// related work's workload and exactly the case where dragging the 8-byte
/// payload through every tree level doubles the tournament's cache traffic.
template <>
struct DeferredMergeTraits<hs::KeyValue64, std::less<hs::KeyValue64>> {
  static constexpr bool kEnabled = true;
  using Key = std::uint64_t;
  using KeyCompare = std::less<std::uint64_t>;
  static Key key(const hs::KeyValue64& e) { return e.key; }
};

/// Payload-deferred merge: the tournament carries only the projected key and
/// drains emit packed (run, pos) permutation entries.
template <typename T, typename Traits>
struct DeferredMergePolicy {
  using Elem = T;
  using Key = typename Traits::Key;
  using Out = std::uint64_t;
  static constexpr bool kDirect = false;

  static Key load(const Elem* base, std::uint64_t pos) {
    return Traits::key(base[pos]);
  }
  static Out make(const Key& /*key*/, std::size_t run, std::uint64_t pos) {
    return perm_entry(run, pos);
  }
  static void bulk(Out*& o, const Elem* /*base*/, std::uint64_t lo,
                   std::uint64_t hi, std::size_t run) {
    const std::uint64_t tag = static_cast<std::uint64_t>(run) << kPermRunShift;
    for (std::uint64_t p = lo; p < hi; ++p) *o++ = tag | p;
  }
};

// --- the tournament ----------------------------------------------------------

template <typename Policy, typename Compare>
class BasicLoserTree {
 public:
  using Elem = typename Policy::Elem;
  using Key = typename Policy::Key;
  using Out = typename Policy::Out;

  /// An empty tree that must be reset() before use; `comp` is fixed for the
  /// tree's lifetime.
  explicit BasicLoserTree(Compare comp = {}) : comp_(comp) {}

  /// `runs` — the sorted input sequences. Empty runs are permitted.
  explicit BasicLoserTree(std::vector<std::span<const Elem>> runs,
                          Compare comp = {})
      : runs_(std::move(runs)), comp_(comp) {
    init();
  }

  /// Rebinds the tree to a new run set, reusing internal capacity: after the
  /// first reset with the largest k, further resets allocate nothing.
  void reset(std::span<const std::span<const Elem>> runs) {
    runs_.assign(runs.begin(), runs.end());
    init();
  }

  bool empty() const { return remaining_ == 0; }
  std::uint64_t remaining() const { return remaining_; }

  /// Pops the smallest element across all runs (direct) or its permutation
  /// entry (deferred). Stable across runs: ties go to the lower run index.
  /// For bulk consumption prefer drain()/drain_block(), which amortise
  /// bookkeeping over whole blocks.
  Out pop() {
    HS_EXPECTS(!empty());
    std::size_t w = node_run_[0];
    Key v = node_key_[0];
    const Out value = Policy::make(v, w, pos_[w]);
    advance_stream<true>(0, w, v);
    node_run_[0] = w;
    node_key_[0] = v;
    --remaining_;
    return value;
  }

  /// Pops up to out.size() entries into `out`; returns the number written
  /// (less than out.size() only when the tree ran empty). Equivalent to
  /// repeated pop().
  std::size_t drain_block(std::span<Out> out) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(out.size(), remaining_));
    if (n == 0) return 0;
    std::size_t w = node_run_[0];
    Key v = node_key_[0];
    Out* o = out.data();
    std::uint64_t rem = n;
    std::size_t sr = leaves_;
    std::size_t st = 0;
    drain_stream_loop(0, w, v, o, rem, sr, st);
    node_run_[0] = w;
    node_key_[0] = v;
    remaining_ -= n;
    return n;
  }

  /// Merges everything into `out` (size must equal remaining()).
  void drain(std::span<Out> out) {
    HS_EXPECTS(out.size() == remaining_);
    if (k_ <= 2) {
      drain_small(out);
    } else if (remaining_ >= kInterleaveMin) {
      drain_interleaved(out);
    } else {
      drain_block(out);
    }
    HS_ENSURES(empty());
  }

 private:
  // Full drains at or above this size use the dual-stream interleaved path;
  // below it the split/build overhead is not worth amortising.
  static constexpr std::uint64_t kInterleaveMin = 1024;
  // Consecutive wins by one run before a drain switches to galloping. Below
  // the threshold the plain branchless replay is cheaper (uniform random
  // inputs produce streaks of ~k/(k-1)).
  static constexpr std::size_t kGallopStreak = 4;
  // Samples taken per run to pick the dual-stream splitter.
  static constexpr std::uint64_t kSamplesPerRun = 8;
  // Minimum refill window worth the O(k) scan that computes it; smaller
  // windows drain with per-element checked steps instead.
  static constexpr std::uint64_t kWindowMin = 64;

  // Internal state is laid out for two independent merge streams over
  // disjoint slices of the same runs. Stream s occupies index range
  // [s * leaves_, (s + 1) * leaves_) of pos_/end_/node_run_/node_key_.
  // Stream 0 is the primary: pop() and drain_block() operate on it with
  // end_[r] == runs_[r].size(). drain_interleaved() temporarily splits the
  // tails between stream 0 and stream 1.
  //
  // Ids: run r live == r, exhausted == r + leaves_; `id >= leaves_` tests
  // exhaustion and `id & (leaves_ - 1)` recovers the run (power-of-two
  // leaves_). node slot 0 of each stream holds the current winner, slots
  // [1, leaves_) the losers of the internal matches.

  void init() {
    k_ = runs_.size();
    HS_EXPECTS(k_ >= 1);
    if constexpr (!Policy::kDirect) {
      // Run index must fit the permutation tag; positions must fit 48 bits.
      HS_EXPECTS(k_ <= (std::size_t{1} << 16));
    }
    // Round leaves up to a power of two; surplus leaves hold exhausted runs.
    leaves_ = std::size_t{1} << log2_ceil(k_);
    base_.assign(leaves_, nullptr);
    pos_.assign(2 * leaves_, 0);
    end_.assign(2 * leaves_, 0);
    node_run_.assign(2 * leaves_, 0);
    node_key_.assign(2 * leaves_, Key{});
    remaining_ = 0;
    for (std::size_t r = 0; r < k_; ++r) {
      base_[r] = runs_[r].data();
      end_[r] = runs_[r].size();
      remaining_ += end_[r];
    }
    build_stream(0);
  }

  // True when contender (l, lk) should be output before contender (c, ck) —
  // i.e. the stored loser beats the incoming contender and they must swap.
  // Non-short-circuit logic keeps the data-dependent path branch-free; stale
  // keys of exhausted runs are compared but masked out by the id terms.
  bool beats(std::size_t l, const Key& lk, std::size_t c, const Key& ck) const {
    const bool lt = comp_(lk, ck);
    const bool gt = comp_(ck, lk);
    return bool((l < leaves_) & ((c >= leaves_) | lt | ((!gt) & (l < c))));
  }

  // Branchless `take_a ? a : b` for the key types that matter (8/16-byte
  // trivially copyable: doubles, integer keys, 16-byte key-value records) —
  // written as mask arithmetic so the if-converter cannot reintroduce a
  // branch. Other types fall back to a ternary.
  static Key key_select(bool take_a, const Key& a, const Key& b) {
    if constexpr (std::is_trivially_copyable_v<Key> &&
                  (sizeof(Key) == 8 || sizeof(Key) == 16)) {
      constexpr std::size_t kWords = sizeof(Key) / 8;
      std::uint64_t ua[kWords];
      std::uint64_t ub[kWords];
      std::memcpy(ua, &a, sizeof(Key));
      std::memcpy(ub, &b, sizeof(Key));
      const std::uint64_t m = 0 - static_cast<std::uint64_t>(take_a);
      for (std::size_t i = 0; i < kWords; ++i) {
        ua[i] = (ua[i] & m) | (ub[i] & ~m);
      }
      Key out{};
      std::memcpy(&out, ua, sizeof(Key));
      return out;
    } else {
      return take_a ? a : b;
    }
  }

  // Rebuilds stream s's tournament from its [pos_, end_) slices. O(k).
  void build_stream(std::size_t s) {
    const std::size_t so = s * leaves_;
    build_run_.assign(2 * leaves_, 0);
    build_key_.assign(2 * leaves_, Key{});
    for (std::size_t i = 0; i < leaves_; ++i) {
      if (i < k_ && pos_[so + i] < end_[so + i]) {
        build_run_[leaves_ + i] = i;
        build_key_[leaves_ + i] = Policy::load(base_[i], pos_[so + i]);
      } else {
        build_run_[leaves_ + i] = i + leaves_;
      }
    }
    for (std::size_t i = leaves_ - 1; i >= 1; --i) {
      const std::size_t a = build_run_[2 * i];
      const std::size_t b = build_run_[2 * i + 1];
      if (beats(a, build_key_[2 * i], b, build_key_[2 * i + 1])) {
        build_run_[i] = a;
        build_key_[i] = build_key_[2 * i];
        node_run_[so + i] = b;
        node_key_[so + i] = build_key_[2 * i + 1];
      } else {
        build_run_[i] = b;
        build_key_[i] = build_key_[2 * i + 1];
        node_run_[so + i] = a;
        node_key_[so + i] = build_key_[2 * i];
      }
    }
    node_run_[so] = build_run_[1];
    node_key_[so] = build_key_[1];
  }

  // Re-runs stream so's tournament along `leaf`'s path with contender
  // (crun, ckey); the final winner lands in (w, v). Pure mask selects — the
  // unpredictable merge comparison never reaches the branch predictor.
  void replay_stream(std::size_t so, std::size_t leaf, std::size_t crun,
                     Key ckey, std::size_t& w, Key& v) {
    for (std::size_t node = (leaves_ + leaf) >> 1; node >= 1; node >>= 1) {
      const std::size_t l = node_run_[so + node];
      const Key lk = node_key_[so + node];
      const bool c = beats(l, lk, crun, ckey);
      const std::size_t m = 0 - static_cast<std::size_t>(c);
      node_run_[so + node] = (crun & m) | (l & ~m);
      node_key_[so + node] = key_select(c, ckey, lk);
      crun = (l & m) | (crun & ~m);
      ckey = key_select(c, lk, ckey);
    }
    w = crun;
    v = ckey;
  }

  // Consumes stream so's current winner (w, v): advances its cursor, loads
  // the run's next key, and replays. (w, v) become the new winner; node slot
  // 0 is NOT written — callers carry the winner in registers across whole
  // loops. When Checked is false the caller has proved (via the refill
  // window) that the cursor cannot cross its slice end, so the bound check
  // and the exhaustion branch are elided from the hot loop.
  template <bool Checked>
  void advance_stream(std::size_t so, std::size_t& w, Key& v) {
    const std::size_t leaf = w;
    const std::uint64_t p = ++pos_[so + w];
    std::size_t crun = w;
    Key ckey{};
    if constexpr (Checked) {
      if (p < end_[so + w]) {
        ckey = Policy::load(base_[w], p);
        prefetch_ahead(base_[w] + p);
      } else {
        crun = w + leaves_;
      }
    } else {
      HS_ASSERT(p < end_[so + w]);
      ckey = Policy::load(base_[w], p);
      prefetch_ahead(base_[w] + p);
    }
    replay_stream(so, leaf, crun, ckey, w, v);
  }

  // A merge with many runs keeps more read streams live than the hardware
  // prefetcher tracks, so head loads would miss on every cache-line
  // crossing. Explicitly prefetching two lines ahead of the consumed head
  // hides that latency; by the time the run wins again the line is resident.
  // (Prefetches never fault, so running past the run's end is harmless.)
  static void prefetch_ahead(const Elem* head) {
    __builtin_prefetch(reinterpret_cast<const char*>(head) + 128);
  }

  // Smallest remaining tail across stream so's live runs. Within that many
  // emissions no cursor can cross its slice end — the refill boundary that
  // lets the hot loop run unchecked. O(k); callers amortise it over at least
  // kWindowMin emissions.
  std::uint64_t live_window(std::size_t so) const {
    std::uint64_t win = ~std::uint64_t{0};
    for (std::size_t r = 0; r < k_; ++r) {
      const std::uint64_t p = pos_[so + r];
      const std::uint64_t e = end_[so + r];
      if (p < e) win = std::min(win, e - p);
    }
    return win;
  }

  // Bulk-emits from stream so's winner run `w` until the runner-up bound,
  // the slice's end, or `cap` elements. Returns the count emitted (always
  // >= 1: the current winner head passes the bound by the tree invariant).
  std::size_t gallop_stream(std::size_t so, std::size_t& w, Key& v, Out* o,
                            std::uint64_t cap) {
    // Runner-up: best of the losers on w's path (cached keys, cheap scan).
    // NOT simply node 1 — the second-best may have lost to w below the root.
    std::size_t s = leaves_;  // exhausted-coded: loses to any live id
    Key skey{};
    for (std::size_t node = (leaves_ + w) >> 1; node >= 1; node >>= 1) {
      const std::size_t l = node_run_[so + node];
      if (beats(l, node_key_[so + node], s, skey)) {
        s = l;
        skey = node_key_[so + node];
      }
    }
    const Elem* base = base_[w];
    std::uint64_t cur = pos_[so + w];
    const std::uint64_t start = cur;
    const std::uint64_t limit =
        std::min<std::uint64_t>(end_[so + w], cur + cap);
    if (s >= leaves_) {
      // Only live run in this stream: emit to the cap.
      Policy::bulk(o, base, cur, limit, w);
      cur = limit;
    } else if (w < s) {
      while (cur < limit) {
        const Key kk = Policy::load(base, cur);
        if (comp_(skey, kk)) break;
        *o++ = Policy::make(kk, w, cur);
        ++cur;
      }
    } else {
      while (cur < limit) {
        const Key kk = Policy::load(base, cur);
        if (!comp_(kk, skey)) break;
        *o++ = Policy::make(kk, w, cur);
        ++cur;
      }
    }
    HS_ASSERT(cur > start);
    pos_[so + w] = cur;
    std::size_t crun = w;
    Key ckey{};
    if (cur < end_[so + w]) {
      ckey = Policy::load(base, cur);
      prefetch_ahead(base + cur);
    } else {
      crun = w + leaves_;
    }
    replay_stream(so, w, crun, ckey, w, v);
    return static_cast<std::size_t>(cur - start);
  }

  // One drain iteration of stream so: emit the winner and advance, or — when
  // one run has won kGallopStreak times in a row — gallop. `sr`/`st` hold
  // the streak state across calls. Returns the number of entries emitted.
  // Hot instantiations skip the cursor bound check (see advance_stream);
  // galloping handles its own bounds, so it stays safe in either mode.
  template <bool Hot>
  std::size_t step_or_gallop(std::size_t so, std::size_t& w, Key& v, Out*& o,
                             std::uint64_t& rem, std::size_t& sr,
                             std::size_t& st) {
    if (w == sr) {
      if (++st >= kGallopStreak) {
        const std::size_t e = gallop_stream(so, w, v, o, rem);
        o += e;
        rem -= e;
        st = 0;
        return e;
      }
    } else {
      sr = w;
      st = 1;
    }
    *o++ = Policy::make(v, w, pos_[so + w]);
    --rem;
    advance_stream<!Hot>(so, w, v);
    return 1;
  }

  // Drains stream so until rem reaches 0, in refill-window bursts: one O(k)
  // window scan buys window-1 unchecked emissions, then a single checked
  // step closes the window (that step is where a run may exhaust).
  void drain_stream_loop(std::size_t so, std::size_t& w, Key& v, Out*& o,
                         std::uint64_t& rem, std::size_t& sr,
                         std::size_t& st) {
    while (rem != 0) {
      const std::uint64_t win = std::min(rem, live_window(so));
      if (win >= kWindowMin) {
        const std::uint64_t budget = win - 1;
        std::uint64_t i = 0;
        while (i < budget) i += step_or_gallop<true>(so, w, v, o, rem, sr, st);
        if (rem != 0) step_or_gallop<false>(so, w, v, o, rem, sr, st);
      } else {
        // Window too small to be worth the scan: checked steps, re-examined
        // after at most kWindowMin emissions.
        std::uint64_t i = 0;
        while (i < kWindowMin && rem != 0) {
          i += step_or_gallop<false>(so, w, v, o, rem, sr, st);
        }
      }
    }
  }

  // Full drain via two independent streams: split every run's tail at a
  // sampled splitter (ties all go to stream 0, preserving stability), build
  // a tournament per stream, then merge both streams in one interleaved
  // loop. The two replay chains are data-independent, so the core overlaps
  // them and per-element latency roughly halves.
  void drain_interleaved(std::span<Out> out) {
    // Splitter: median of a small evenly spaced sample of every tail.
    samples_.clear();
    for (std::size_t r = 0; r < k_; ++r) {
      const std::uint64_t len = end_[r] - pos_[r];
      const std::uint64_t take = std::min(len, kSamplesPerRun);
      for (std::uint64_t j = 0; j < take; ++j) {
        samples_.push_back(
            Policy::load(base_[r], pos_[r] + (len * j) / take));
      }
    }
    HS_ASSERT(!samples_.empty());
    auto mid =
        samples_.begin() + static_cast<std::ptrdiff_t>(samples_.size() / 2);
    std::nth_element(samples_.begin(), mid, samples_.end(), comp_);
    const Key splitter = *mid;

    // Cut every run at upper_bound(splitter): stream 0 takes [pos_, cut),
    // stream 1 takes [cut, end). Equal keys land in stream 0 for every run,
    // so cross-stream order of equals matches the single-stream order.
    std::uint64_t n0 = 0;
    for (std::size_t r = 0; r < k_; ++r) {
      const std::uint64_t cut =
          key_upper_bound(base_[r], pos_[r], end_[r], splitter);
      pos_[leaves_ + r] = cut;
      end_[leaves_ + r] = end_[r];
      end_[r] = cut;
      n0 += cut - pos_[r];
    }
    build_stream(0);
    build_stream(1);

    Out* o0 = out.data();
    Out* o1 = out.data() + n0;
    std::uint64_t rem0 = n0;
    std::uint64_t rem1 = remaining_ - n0;
    std::size_t w0 = node_run_[0];
    Key v0 = node_key_[0];
    std::size_t w1 = node_run_[leaves_];
    Key v1 = node_key_[leaves_];
    std::size_t sr0 = leaves_, st0 = 0;
    std::size_t sr1 = leaves_, st1 = 0;
    while (rem0 != 0 && rem1 != 0) {
      const std::uint64_t win0 = std::min(rem0, live_window(0));
      const std::uint64_t win1 = std::min(rem1, live_window(leaves_));
      if (win0 >= kWindowMin && win1 >= kWindowMin) {
        // Both windows open: the interleaved pair loop runs unchecked until
        // either window's budget is spent, then one checked step per stream
        // closes the windows.
        const std::uint64_t b0 = win0 - 1;
        const std::uint64_t b1 = win1 - 1;
        std::uint64_t i0 = 0, i1 = 0;
        while (i0 < b0 && i1 < b1) {
          i0 += step_or_gallop<true>(0, w0, v0, o0, rem0, sr0, st0);
          i1 += step_or_gallop<true>(leaves_, w1, v1, o1, rem1, sr1, st1);
        }
        if (rem0 != 0) step_or_gallop<false>(0, w0, v0, o0, rem0, sr0, st0);
        if (rem1 != 0)
          step_or_gallop<false>(leaves_, w1, v1, o1, rem1, sr1, st1);
      } else {
        std::uint64_t i = 0;
        while (i < kWindowMin && rem0 != 0 && rem1 != 0) {
          step_or_gallop<false>(0, w0, v0, o0, rem0, sr0, st0);
          i += step_or_gallop<false>(leaves_, w1, v1, o1, rem1, sr1, st1);
        }
      }
    }
    drain_stream_loop(0, w0, v0, o0, rem0, sr0, st0);
    drain_stream_loop(leaves_, w1, v1, o1, rem1, sr1, st1);

    // Restore stream-0 invariants for the now-empty tree.
    for (std::size_t r = 0; r < k_; ++r) {
      end_[r] = end_[leaves_ + r];
      pos_[r] = end_[r];
    }
    remaining_ = 0;
    for (std::size_t i = 0; i < leaves_; ++i) node_run_[i] = i + leaves_;
  }

  // upper_bound on projected keys within [lo, hi) of one run — the generic
  // form std::upper_bound cannot express when Key != Elem.
  std::uint64_t key_upper_bound(const Elem* base, std::uint64_t lo,
                                std::uint64_t hi, const Key& kv) const {
    while (lo < hi) {
      const std::uint64_t mid = lo + (hi - lo) / 2;
      if (comp_(kv, Policy::load(base, mid))) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  // k <= 2: a tournament is pure overhead; copy / merge the live tails.
  // The direct policy uses std::merge (stable, prefers the first range on
  // ties — the lower-run-index rule); the deferred policy runs the same
  // two-cursor loop over projected keys, emitting permutation entries.
  void drain_small(std::span<Out> out) {
    if (remaining_ != 0) {
      if constexpr (Policy::kDirect) {
        if (k_ == 1) {
          std::copy(runs_[0].begin() + static_cast<std::ptrdiff_t>(pos_[0]),
                    runs_[0].end(), out.begin());
        } else {
          std::merge(runs_[0].begin() + static_cast<std::ptrdiff_t>(pos_[0]),
                     runs_[0].end(),
                     runs_[1].begin() + static_cast<std::ptrdiff_t>(pos_[1]),
                     runs_[1].end(), out.begin(), comp_);
        }
      } else {
        Out* o = out.data();
        if (k_ == 1) {
          Policy::bulk(o, base_[0], pos_[0], end_[0], 0);
        } else {
          std::uint64_t i = pos_[0];
          std::uint64_t j = pos_[1];
          while (i < end_[0] && j < end_[1]) {
            const Key ka = Policy::load(base_[0], i);
            const Key kb = Policy::load(base_[1], j);
            if (comp_(kb, ka)) {
              *o++ = Policy::make(kb, 1, j);
              ++j;
            } else {
              *o++ = Policy::make(ka, 0, i);
              ++i;
            }
          }
          Policy::bulk(o, base_[0], i, end_[0], 0);
          Policy::bulk(o, base_[1], j, end_[1], 1);
        }
      }
    }
    for (std::size_t r = 0; r < k_; ++r) pos_[r] = end_[r];
    remaining_ = 0;
    for (std::size_t i = 0; i < leaves_; ++i) node_run_[i] = i + leaves_;
  }

  std::vector<std::span<const Elem>> runs_;
  Compare comp_;
  std::size_t k_ = 0;
  std::size_t leaves_ = 0;
  std::vector<const Elem*> base_;       // run base pointers (size leaves_)
  std::vector<std::uint64_t> pos_;      // per stream: current head index
  std::vector<std::uint64_t> end_;      // per stream: one past the slice end
  std::vector<std::size_t> node_run_;   // per stream: [0] winner, [1..) losers
  std::vector<Key> node_key_;           // cached key for node_run_
  std::vector<std::size_t> build_run_;  // build_stream() scratch, reused
  std::vector<Key> build_key_;          // build_stream() scratch, reused
  std::vector<Key> samples_;            // splitter sampling scratch, reused
  std::uint64_t remaining_ = 0;
};

/// The classic element-emitting merger (public name unchanged: every
/// pre-existing call site compiles as before).
template <typename T, typename Compare = std::less<T>>
using LoserTree = BasicLoserTree<DirectMergePolicy<T>, Compare>;

/// Key-only merger for types with enabled DeferredMergeTraits: drains emit
/// packed (run, pos) permutation entries; apply_permutation() in
/// multiway_merge.h turns them into the merged records in one gather pass.
template <typename T, typename Compare = std::less<T>>
using DeferredLoserTree = BasicLoserTree<
    DeferredMergePolicy<T, DeferredMergeTraits<T, Compare>>,
    typename DeferredMergeTraits<T, Compare>::KeyCompare>;

}  // namespace hs::cpu
