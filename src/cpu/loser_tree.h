// Loser-tree (tournament) k-way merger — the sequential core of the multiway
// merge the paper performs after all batches return from the GPU.
//
// A loser tree replays only one root-to-leaf path (log2 k comparisons) per
// output element, giving the O(n log k) work bound quoted in the paper
// (Section III-A). This implementation removes the per-element overheads that
// dominate the host hot path:
//
//   * Key caching. Each tree node stores its loser's current element next to
//     the run id, so a replay compares an L1-resident cached key against the
//     contender key carried in a register — no chasing of run-span base
//     pointers and cursors (three dependent loads per side per comparison in
//     the classic formulation).
//   * Branchless replay. Match outcomes feed explicit mask selects (never
//     ternaries, which the compiler's if-converter would turn back into
//     branches), so the inherently unpredictable merge comparison costs ALU
//     latency instead of a pipeline flush. Run exhaustion is encoded in the
//     id itself (run r exhausted == id r + leaves_), removing per-comparison
//     exhaustion branches: a run's end is discovered exactly once, when its
//     next head is loaded.
//   * Dual-stream drain. drain() splits the runs at a sampled splitter into
//     two independent halves of the output and merges both in one
//     interleaved loop. The two replay chains share no data, so the CPU
//     overlaps them — merging is latency-bound, not throughput-bound, and
//     two streams roughly double sustained throughput on one core.
//   * Adaptive galloping. When one run wins kGallopStreak times in a row,
//     the drain computes the runner-up bound (best of the losers on the
//     winner's root-to-leaf path — cached keys, cheap scan) and copies winner
//     elements in a sentinel-free tight loop until the bound, the run's end,
//     or the remaining space. Uniform random inputs never pay for this;
//     duplicate-heavy, clustered, and tail-of-merge inputs (one surviving
//     run) collapse to near-memcpy.
//   * k <= 2 short-circuit. drain() degenerates to std::copy / std::merge.
//
// Stability: ties go to the lower run index everywhere. The gallop loop
// splits its comparison on the run-vs-runner-up order, and the dual-stream
// split sends all elements equal to the splitter to the lower stream in
// every run, so equal elements never reorder across the seam.
//
// The tree is reusable: reset() rebinds it to a new run set without freeing
// internal buffers, so steady-state merging (one tree per worker lane)
// performs no heap allocation. T must be default-constructible and copyable
// (keys are cached by value). The comparator is invoked on both orderings of
// a pair (and on stale keys of exhausted runs, whose result is discarded),
// so it must be a pure strict weak ordering.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <type_traits>
#include <vector>

#include "common/assert.h"
#include "common/math_util.h"

namespace hs::cpu {

template <typename T, typename Compare = std::less<T>>
class LoserTree {
 public:
  /// An empty tree that must be reset() before use; `comp` is fixed for the
  /// tree's lifetime.
  explicit LoserTree(Compare comp = {}) : comp_(comp) {}

  /// `runs` — the sorted input sequences. Empty runs are permitted.
  explicit LoserTree(std::vector<std::span<const T>> runs, Compare comp = {})
      : runs_(std::move(runs)), comp_(comp) {
    init();
  }

  /// Rebinds the tree to a new run set, reusing internal capacity: after the
  /// first reset with the largest k, further resets allocate nothing.
  void reset(std::span<const std::span<const T>> runs) {
    runs_.assign(runs.begin(), runs.end());
    init();
  }

  bool empty() const { return remaining_ == 0; }
  std::uint64_t remaining() const { return remaining_; }

  /// Pops the smallest element across all runs. Stable across runs: ties go
  /// to the lower run index. For bulk consumption prefer drain()/
  /// drain_block(), which amortise bookkeeping over whole blocks.
  T pop() {
    HS_EXPECTS(!empty());
    const T value = node_key_[0];
    std::size_t w = node_run_[0];
    T v = node_key_[0];
    advance_stream(0, w, v);
    node_run_[0] = w;
    node_key_[0] = v;
    --remaining_;
    return value;
  }

  /// Pops up to out.size() elements into `out`; returns the number written
  /// (less than out.size() only when the tree ran empty). Equivalent to
  /// repeated pop().
  std::size_t drain_block(std::span<T> out) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(out.size(), remaining_));
    if (n == 0) return 0;
    std::size_t w = node_run_[0];
    T v = node_key_[0];
    drain_stream(0, w, v, out.data(), n);
    node_run_[0] = w;
    node_key_[0] = v;
    remaining_ -= n;
    return n;
  }

  /// Merges everything into `out` (size must equal remaining()).
  void drain(std::span<T> out) {
    HS_EXPECTS(out.size() == remaining_);
    if (k_ <= 2) {
      drain_small(out);
    } else if (remaining_ >= kInterleaveMin) {
      drain_interleaved(out);
    } else {
      drain_block(out);
    }
    HS_ENSURES(empty());
  }

 private:
  // Full drains at or above this size use the dual-stream interleaved path;
  // below it the split/build overhead is not worth amortising.
  static constexpr std::uint64_t kInterleaveMin = 1024;
  // Consecutive wins by one run before a drain switches to galloping. Below
  // the threshold the plain branchless replay is cheaper (uniform random
  // inputs produce streaks of ~k/(k-1)).
  static constexpr std::size_t kGallopStreak = 4;
  // Samples taken per run to pick the dual-stream splitter.
  static constexpr std::uint64_t kSamplesPerRun = 8;

  // Internal state is laid out for two independent merge streams over
  // disjoint slices of the same runs. Stream s occupies index range
  // [s * leaves_, (s + 1) * leaves_) of pos_/end_/node_run_/node_key_.
  // Stream 0 is the primary: pop() and drain_block() operate on it with
  // end_[r] == runs_[r].size(). drain_interleaved() temporarily splits the
  // tails between stream 0 and stream 1.
  //
  // Ids: run r live == r, exhausted == r + leaves_; `id >= leaves_` tests
  // exhaustion and `id & (leaves_ - 1)` recovers the run (power-of-two
  // leaves_). node slot 0 of each stream holds the current winner, slots
  // [1, leaves_) the losers of the internal matches.

  void init() {
    k_ = runs_.size();
    HS_EXPECTS(k_ >= 1);
    // Round leaves up to a power of two; surplus leaves hold exhausted runs.
    leaves_ = std::size_t{1} << log2_ceil(k_);
    base_.assign(leaves_, nullptr);
    pos_.assign(2 * leaves_, 0);
    end_.assign(2 * leaves_, 0);
    node_run_.assign(2 * leaves_, 0);
    node_key_.assign(2 * leaves_, T{});
    remaining_ = 0;
    for (std::size_t r = 0; r < k_; ++r) {
      base_[r] = runs_[r].data();
      end_[r] = runs_[r].size();
      remaining_ += end_[r];
    }
    build_stream(0);
  }

  // True when contender (l, lk) should be output before contender (c, ck) —
  // i.e. the stored loser beats the incoming contender and they must swap.
  // Non-short-circuit logic keeps the data-dependent path branch-free; stale
  // keys of exhausted runs are compared but masked out by the id terms.
  bool beats(std::size_t l, const T& lk, std::size_t c, const T& ck) const {
    const bool lt = comp_(lk, ck);
    const bool gt = comp_(ck, lk);
    return bool((l < leaves_) & ((c >= leaves_) | lt | ((!gt) & (l < c))));
  }

  // Branchless `take_a ? a : b` for the key types that matter (8/16-byte
  // trivially copyable: doubles, integer keys, 16-byte key-value records) —
  // written as mask arithmetic so the if-converter cannot reintroduce a
  // branch. Other types fall back to a ternary.
  static T key_select(bool take_a, const T& a, const T& b) {
    if constexpr (std::is_trivially_copyable_v<T> &&
                  (sizeof(T) == 8 || sizeof(T) == 16)) {
      constexpr std::size_t kWords = sizeof(T) / 8;
      std::uint64_t ua[kWords];
      std::uint64_t ub[kWords];
      std::memcpy(ua, &a, sizeof(T));
      std::memcpy(ub, &b, sizeof(T));
      const std::uint64_t m = 0 - static_cast<std::uint64_t>(take_a);
      for (std::size_t i = 0; i < kWords; ++i) {
        ua[i] = (ua[i] & m) | (ub[i] & ~m);
      }
      T out{};
      std::memcpy(&out, ua, sizeof(T));
      return out;
    } else {
      return take_a ? a : b;
    }
  }

  // Rebuilds stream s's tournament from its [pos_, end_) slices. O(k).
  void build_stream(std::size_t s) {
    const std::size_t so = s * leaves_;
    build_run_.assign(2 * leaves_, 0);
    build_key_.assign(2 * leaves_, T{});
    for (std::size_t i = 0; i < leaves_; ++i) {
      if (i < k_ && pos_[so + i] < end_[so + i]) {
        build_run_[leaves_ + i] = i;
        build_key_[leaves_ + i] = base_[i][pos_[so + i]];
      } else {
        build_run_[leaves_ + i] = i + leaves_;
      }
    }
    for (std::size_t i = leaves_ - 1; i >= 1; --i) {
      const std::size_t a = build_run_[2 * i];
      const std::size_t b = build_run_[2 * i + 1];
      if (beats(a, build_key_[2 * i], b, build_key_[2 * i + 1])) {
        build_run_[i] = a;
        build_key_[i] = build_key_[2 * i];
        node_run_[so + i] = b;
        node_key_[so + i] = build_key_[2 * i + 1];
      } else {
        build_run_[i] = b;
        build_key_[i] = build_key_[2 * i + 1];
        node_run_[so + i] = a;
        node_key_[so + i] = build_key_[2 * i];
      }
    }
    node_run_[so] = build_run_[1];
    node_key_[so] = build_key_[1];
  }

  // Re-runs stream so's tournament along `leaf`'s path with contender
  // (crun, ckey); the final winner lands in (w, v). Pure mask selects — the
  // unpredictable merge comparison never reaches the branch predictor.
  void replay_stream(std::size_t so, std::size_t leaf, std::size_t crun,
                     T ckey, std::size_t& w, T& v) {
    for (std::size_t node = (leaves_ + leaf) >> 1; node >= 1; node >>= 1) {
      const std::size_t l = node_run_[so + node];
      const T lk = node_key_[so + node];
      const bool c = beats(l, lk, crun, ckey);
      const std::size_t m = 0 - static_cast<std::size_t>(c);
      node_run_[so + node] = (crun & m) | (l & ~m);
      node_key_[so + node] = key_select(c, ckey, lk);
      crun = (l & m) | (crun & ~m);
      ckey = key_select(c, lk, ckey);
    }
    w = crun;
    v = ckey;
  }

  // Consumes stream so's current winner (w, v): advances its cursor, loads
  // the run's next element (exhaustion checked exactly once, here), and
  // replays. (w, v) become the new winner; node slot 0 is NOT written —
  // callers carry the winner in registers across whole loops.
  void advance_stream(std::size_t so, std::size_t& w, T& v) {
    const std::size_t leaf = w;
    const std::uint64_t p = ++pos_[so + w];
    std::size_t crun = w;
    T ckey{};
    if (p < end_[so + w]) {
      ckey = base_[w][p];
      prefetch_ahead(base_[w] + p);
    } else {
      crun = w + leaves_;
    }
    replay_stream(so, leaf, crun, ckey, w, v);
  }

  // A merge with many runs keeps more read streams live than the hardware
  // prefetcher tracks, so head loads would miss on every cache-line
  // crossing. Explicitly prefetching two lines ahead of the consumed head
  // hides that latency; by the time the run wins again the line is resident.
  // (Prefetches never fault, so running past the run's end is harmless.)
  static void prefetch_ahead(const T* head) {
    __builtin_prefetch(reinterpret_cast<const char*>(head) + 128);
  }

  // Bulk-emits from stream so's winner run `w` until the runner-up bound,
  // the slice's end, or `cap` elements. Returns the count emitted (always
  // >= 1: the current winner head passes the bound by the tree invariant).
  std::size_t gallop_stream(std::size_t so, std::size_t& w, T& v, T* o,
                            std::uint64_t cap) {
    // Runner-up: best of the losers on w's path (cached keys, cheap scan).
    // NOT simply node 1 — the second-best may have lost to w below the root.
    std::size_t s = leaves_;  // exhausted-coded: loses to any live id
    T skey{};
    for (std::size_t node = (leaves_ + w) >> 1; node >= 1; node >>= 1) {
      const std::size_t l = node_run_[so + node];
      if (beats(l, node_key_[so + node], s, skey)) {
        s = l;
        skey = node_key_[so + node];
      }
    }
    const T* base = base_[w];
    std::uint64_t cur = pos_[so + w];
    const std::uint64_t start = cur;
    const std::uint64_t limit =
        std::min<std::uint64_t>(end_[so + w], cur + cap);
    if (s >= leaves_) {
      // Only live run in this stream: copy to the cap.
      std::copy(base + cur, base + limit, o);
      cur = limit;
    } else if (w < s) {
      while (cur < limit && !comp_(skey, base[cur])) *o++ = base[cur++];
    } else {
      while (cur < limit && comp_(base[cur], skey)) *o++ = base[cur++];
    }
    HS_ASSERT(cur > start);
    pos_[so + w] = cur;
    std::size_t crun = w;
    T ckey{};
    if (cur < end_[so + w]) {
      ckey = base[cur];
      prefetch_ahead(base + cur);
    } else {
      crun = w + leaves_;
    }
    replay_stream(so, w, crun, ckey, w, v);
    return static_cast<std::size_t>(cur - start);
  }

  // One drain iteration of stream so: emit the winner and advance, or — when
  // one run has won kGallopStreak times in a row — gallop. `sr`/`st` hold
  // the streak state across calls.
  void step_or_gallop(std::size_t so, std::size_t& w, T& v, T*& o,
                      std::uint64_t& rem, std::size_t& sr, std::size_t& st) {
    if (w == sr) {
      if (++st >= kGallopStreak) {
        const std::size_t e = gallop_stream(so, w, v, o, rem);
        o += e;
        rem -= e;
        st = 0;
        return;
      }
    } else {
      sr = w;
      st = 1;
    }
    *o++ = v;
    --rem;
    advance_stream(so, w, v);
  }

  // Drains exactly `rem` elements of stream so into `o`.
  void drain_stream(std::size_t so, std::size_t& w, T& v, T* o,
                    std::uint64_t rem) {
    std::size_t sr = leaves_;
    std::size_t st = 0;
    while (rem != 0) step_or_gallop(so, w, v, o, rem, sr, st);
  }

  // Full drain via two independent streams: split every run's tail at a
  // sampled splitter (ties all go to stream 0, preserving stability), build
  // a tournament per stream, then merge both streams in one interleaved
  // loop. The two replay chains are data-independent, so the core overlaps
  // them and per-element latency roughly halves.
  void drain_interleaved(std::span<T> out) {
    // Splitter: median of a small evenly spaced sample of every tail.
    samples_.clear();
    for (std::size_t r = 0; r < k_; ++r) {
      const std::uint64_t len = end_[r] - pos_[r];
      const std::uint64_t take = std::min(len, kSamplesPerRun);
      for (std::uint64_t j = 0; j < take; ++j) {
        samples_.push_back(base_[r][pos_[r] + (len * j) / take]);
      }
    }
    HS_ASSERT(!samples_.empty());
    auto mid =
        samples_.begin() + static_cast<std::ptrdiff_t>(samples_.size() / 2);
    std::nth_element(samples_.begin(), mid, samples_.end(), comp_);
    const T splitter = *mid;

    // Cut every run at upper_bound(splitter): stream 0 takes [pos_, cut),
    // stream 1 takes [cut, end). Equal keys land in stream 0 for every run,
    // so cross-stream order of equals matches the single-stream order.
    std::uint64_t n0 = 0;
    for (std::size_t r = 0; r < k_; ++r) {
      const T* base = base_[r];
      const std::uint64_t cut = static_cast<std::uint64_t>(
          std::upper_bound(base + pos_[r], base + end_[r], splitter, comp_) -
          base);
      pos_[leaves_ + r] = cut;
      end_[leaves_ + r] = end_[r];
      end_[r] = cut;
      n0 += cut - pos_[r];
    }
    build_stream(0);
    build_stream(1);

    T* o0 = out.data();
    T* o1 = out.data() + n0;
    std::uint64_t rem0 = n0;
    std::uint64_t rem1 = remaining_ - n0;
    std::size_t w0 = node_run_[0];
    T v0 = node_key_[0];
    std::size_t w1 = node_run_[leaves_];
    T v1 = node_key_[leaves_];
    std::size_t sr0 = leaves_, st0 = 0;
    std::size_t sr1 = leaves_, st1 = 0;
    while (rem0 != 0 && rem1 != 0) {
      step_or_gallop(0, w0, v0, o0, rem0, sr0, st0);
      step_or_gallop(leaves_, w1, v1, o1, rem1, sr1, st1);
    }
    while (rem0 != 0) step_or_gallop(0, w0, v0, o0, rem0, sr0, st0);
    while (rem1 != 0) step_or_gallop(leaves_, w1, v1, o1, rem1, sr1, st1);

    // Restore stream-0 invariants for the now-empty tree.
    for (std::size_t r = 0; r < k_; ++r) {
      end_[r] = end_[leaves_ + r];
      pos_[r] = end_[r];
    }
    remaining_ = 0;
    for (std::size_t i = 0; i < leaves_; ++i) node_run_[i] = i + leaves_;
  }

  // k <= 2: a tournament is pure overhead; copy / std::merge the live tails.
  // std::merge is stable and prefers the first range on ties, matching the
  // lower-run-index rule.
  void drain_small(std::span<T> out) {
    if (remaining_ != 0) {
      if (k_ == 1) {
        std::copy(runs_[0].begin() + static_cast<std::ptrdiff_t>(pos_[0]),
                  runs_[0].end(), out.begin());
      } else {
        std::merge(runs_[0].begin() + static_cast<std::ptrdiff_t>(pos_[0]),
                   runs_[0].end(),
                   runs_[1].begin() + static_cast<std::ptrdiff_t>(pos_[1]),
                   runs_[1].end(), out.begin(), comp_);
      }
    }
    for (std::size_t r = 0; r < k_; ++r) pos_[r] = end_[r];
    remaining_ = 0;
    for (std::size_t i = 0; i < leaves_; ++i) node_run_[i] = i + leaves_;
  }

  std::vector<std::span<const T>> runs_;
  Compare comp_;
  std::size_t k_ = 0;
  std::size_t leaves_ = 0;
  std::vector<const T*> base_;          // run base pointers (size leaves_)
  std::vector<std::uint64_t> pos_;      // per stream: current head index
  std::vector<std::uint64_t> end_;      // per stream: one past the slice end
  std::vector<std::size_t> node_run_;   // per stream: [0] winner, [1..) losers
  std::vector<T> node_key_;             // cached element for node_run_
  std::vector<std::size_t> build_run_;  // build_stream() scratch, reused
  std::vector<T> build_key_;            // build_stream() scratch, reused
  std::vector<T> samples_;              // splitter sampling scratch, reused
  std::uint64_t remaining_ = 0;
};

}  // namespace hs::cpu
