// Loser-tree (tournament) k-way merger — the sequential core of the multiway
// merge the paper performs after all batches return from the GPU.
//
// A loser tree replays only one root-to-leaf path (log2 k comparisons) per
// output element, giving the O(n log k) work bound quoted in the paper
// (Section III-A) with excellent cache behaviour: the tree occupies O(k)
// contiguous words.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/assert.h"
#include "common/math_util.h"

namespace hs::cpu {

template <typename T, typename Compare = std::less<T>>
class LoserTree {
 public:
  /// `runs` — the sorted input sequences. Empty runs are permitted.
  explicit LoserTree(std::vector<std::span<const T>> runs, Compare comp = {})
      : runs_(std::move(runs)), comp_(comp) {
    k_ = runs_.size();
    HS_EXPECTS(k_ >= 1);
    // Round leaves up to a power of two; surplus leaves hold exhausted runs.
    leaves_ = std::size_t{1} << log2_ceil(k_);
    pos_.assign(leaves_, 0);
    tree_.assign(leaves_, kExhausted);
    remaining_ = 0;
    for (std::size_t r = 0; r < k_; ++r) remaining_ += runs_[r].size();
    build();
  }

  bool empty() const { return remaining_ == 0; }
  std::uint64_t remaining() const { return remaining_; }

  /// Pops the smallest element across all runs. Stable across runs: ties go
  /// to the lower run index.
  T pop() {
    HS_EXPECTS(!empty());
    const std::size_t winner = tree_[0];
    HS_ASSERT(winner != kExhausted);
    const T value = runs_[winner][pos_[winner]];
    ++pos_[winner];
    --remaining_;
    replay(winner);
    return value;
  }

  /// Merges everything into `out` (size must equal remaining()).
  void drain(std::span<T> out) {
    HS_EXPECTS(out.size() == remaining_);
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = pop();
    HS_ENSURES(empty());
  }

 private:
  static constexpr std::size_t kExhausted = ~std::size_t{0};

  // Leaf `r` loses to leaf `s` when s's current element should be output
  // first. Exhausted leaves always lose.
  bool beats(std::size_t s, std::size_t r) const {
    if (s == kExhausted) return false;
    if (r == kExhausted) return true;
    const T& vs = runs_[s][pos_[s]];
    const T& vr = runs_[r][pos_[r]];
    if (comp_(vs, vr)) return true;
    if (comp_(vr, vs)) return false;
    return s < r;  // stability: lower run index wins ties
  }

  std::size_t leaf_id(std::size_t leaf) const {
    return (leaf < k_ && pos_[leaf] < runs_[leaf].size()) ? leaf : kExhausted;
  }

  void build() {
    // tree_[1..leaves_) hold losers of internal matches; tree_[0] the winner.
    // Straightforward O(k log k) construction by replaying each leaf.
    std::vector<std::size_t> winner(2 * leaves_, kExhausted);
    for (std::size_t i = 0; i < leaves_; ++i) {
      winner[leaves_ + i] = leaf_id(i);
    }
    for (std::size_t i = leaves_ - 1; i >= 1; --i) {
      const std::size_t a = winner[2 * i];
      const std::size_t b = winner[2 * i + 1];
      if (beats(a, b)) {
        winner[i] = a;
        tree_[i] = b;
      } else {
        winner[i] = b;
        tree_[i] = a;
      }
    }
    tree_[0] = winner[1];
  }

  // Re-runs the tournament along `leaf`'s path to the root.
  void replay(std::size_t leaf) {
    std::size_t contender = leaf_id(leaf);
    std::size_t node = (leaves_ + leaf) / 2;
    while (node >= 1) {
      if (beats(tree_[node], contender)) {
        std::swap(tree_[node], contender);
      }
      node /= 2;
    }
    tree_[0] = contender;
  }

  std::vector<std::span<const T>> runs_;
  Compare comp_;
  std::size_t k_ = 0;
  std::size_t leaves_ = 0;
  std::vector<std::uint64_t> pos_;
  std::vector<std::size_t> tree_;
  std::uint64_t remaining_ = 0;
};

}  // namespace hs::cpu
