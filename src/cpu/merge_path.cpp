// merge_path is header-only (templates); this TU anchors the target and
// verifies the header is self-contained.
#include "cpu/merge_path.h"
