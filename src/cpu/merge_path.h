// Pair-wise parallel merge via Merge Path partitioning (Green, Odeh & Birk;
// the algorithm behind the paper's PIPEMERGE pair merges and Figure 6).
//
// The merge of |a| + |b| elements is viewed as a monotone path through the
// (|a|, |b|) grid; cutting the path at evenly spaced cross-diagonals yields p
// independent sub-merges of equal output size, so speedup is limited only by
// memory bandwidth — exactly the behaviour the paper reports (8.14x at 16
// threads for a memory-bound O(n) kernel).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>

#include "common/assert.h"
#include "cpu/parallel_for.h"
#include "cpu/thread_pool.h"

namespace hs::cpu {

/// Finds the Merge Path split for cross-diagonal `diag` in [0, |a|+|b|]:
/// returns i such that merging a[0..i) with b[0..diag-i) consumes exactly
/// `diag` outputs, with ties broken to prefer `a` (stability: a's elements
/// precede b's equals). Binary search, O(log min(|a|,|b|)).
template <typename T, typename Compare = std::less<T>>
std::uint64_t merge_path_split(std::span<const T> a, std::span<const T> b,
                               std::uint64_t diag, Compare comp = {}) {
  HS_EXPECTS(diag <= a.size() + b.size());
  std::uint64_t lo = diag > b.size() ? diag - b.size() : 0;
  std::uint64_t hi = std::min<std::uint64_t>(diag, a.size());
  while (lo < hi) {
    const std::uint64_t i = lo + (hi - lo) / 2;  // candidate elements from a
    const std::uint64_t j = diag - i;            // elements from b
    // Path is valid at (i, j) iff a[i-1] <= b[j] and b[j-1] < a[i] under the
    // stable tie rule. Binary search on the first condition's frontier.
    if (comp(b[j - 1], a[i])) {
      hi = i;
    } else {
      lo = i + 1;
    }
  }
  return lo;
}

/// Sequential stable merge of `a` and `b` into `out` (size |a|+|b|).
template <typename T, typename Compare = std::less<T>>
void merge_sequential(std::span<const T> a, std::span<const T> b,
                      std::span<T> out, Compare comp = {}) {
  HS_EXPECTS(out.size() == a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), out.begin(), comp);
}

/// Parallel stable merge of `a` and `b` into `out` using `parts` lanes
/// (0 = pool.size()). Output ranges are disjoint; no synchronisation beyond
/// the final join.
template <typename T, typename Compare = std::less<T>>
void merge_parallel(ThreadPool& pool, std::span<const T> a,
                    std::span<const T> b, std::span<T> out, Compare comp = {},
                    unsigned parts = 0) {
  HS_EXPECTS(out.size() == a.size() + b.size());
  const std::uint64_t total = out.size();
  if (total == 0) return;
  parallel_for_blocked(
      pool, 0, total,
      [&](std::uint64_t d0, std::uint64_t d1) {
        const std::uint64_t i0 = merge_path_split(a, b, d0, comp);
        const std::uint64_t i1 = merge_path_split(a, b, d1, comp);
        const std::uint64_t j0 = d0 - i0;
        const std::uint64_t j1 = d1 - i1;
        std::merge(a.begin() + static_cast<std::ptrdiff_t>(i0),
                   a.begin() + static_cast<std::ptrdiff_t>(i1),
                   b.begin() + static_cast<std::ptrdiff_t>(j0),
                   b.begin() + static_cast<std::ptrdiff_t>(j1),
                   out.begin() + static_cast<std::ptrdiff_t>(d0), comp);
      },
      parts);
}

}  // namespace hs::cpu
