// Pair-wise parallel merge via Merge Path partitioning (Green, Odeh & Birk;
// the algorithm behind the paper's PIPEMERGE pair merges and Figure 6).
//
// The merge of |a| + |b| elements is viewed as a monotone path through the
// (|a|, |b|) grid; cutting the path at evenly spaced cross-diagonals yields p
// independent sub-merges of equal output size, so speedup is limited only by
// memory bandwidth — exactly the behaviour the paper reports (8.14x at 16
// threads for a memory-bound O(n) kernel).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>

#include "common/assert.h"
#include "cpu/parallel_for.h"
#include "cpu/thread_pool.h"

namespace hs::cpu {

/// Finds the Merge Path split for cross-diagonal `diag` in [0, |a|+|b|]:
/// returns i such that merging a[0..i) with b[0..diag-i) consumes exactly
/// `diag` outputs, with ties broken to prefer `a` (stability: a's elements
/// precede b's equals). Binary search, O(log min(|a|,|b|)).
template <typename T, typename Compare = std::less<T>>
std::uint64_t merge_path_split(std::span<const T> a, std::span<const T> b,
                               std::uint64_t diag, Compare comp = {}) {
  HS_EXPECTS(diag <= a.size() + b.size());
  std::uint64_t lo = diag > b.size() ? diag - b.size() : 0;
  std::uint64_t hi = std::min<std::uint64_t>(diag, a.size());
  while (lo < hi) {
    const std::uint64_t i = lo + (hi - lo) / 2;  // candidate elements from a
    const std::uint64_t j = diag - i;            // elements from b
    // Path is valid at (i, j) iff a[i-1] <= b[j] and b[j-1] < a[i] under the
    // stable tie rule. Binary search on the first condition's frontier.
    if (comp(b[j - 1], a[i])) {
      hi = i;
    } else {
      lo = i + 1;
    }
  }
  return lo;
}

/// Exact multisequence selection — the k-run generalisation of the Merge
/// Path split above. Computes cut positions cuts[r] with sum(cuts) == m such
/// that the concatenation of the run prefixes [0, cuts[r]) is exactly the
/// first m outputs of the stable k-way merge (ties: lower run index first,
/// FIFO within a run). Unlike sampled splitters, the parts this produces are
/// exactly equal in size, so parallel merge lanes never inherit a skewed
/// partition — the enabler for near-linear thread scaling.
///
/// Algorithm: pivot bisection over the value domain. Each round picks the
/// midpoint of the largest active window [lo[r], hi[r]) as the pivot and
/// counts, with window-clamped binary searches, the elements strictly below
/// it (A) and up to its last equal (B):
///   * A >= m  — the boundary value precedes the pivot; every cut is at most
///     the pivot's lower bound, so all hi shrink (A == m returns directly).
///   * B <  m  — the boundary value follows the pivot; every cut is at least
///     the pivot's upper bound, so all lo advance.
///   * A < m <= B — the boundary value IS the pivot: cuts are the lower
///     bounds plus the remaining m - A equals, distributed in ascending run
///     order (exactly how the stable merge orders equal keys across runs).
/// The pivot run's window at least halves every round, so the loop
/// terminates; when every window collapses the forced cut is returned. The
/// cuts for increasing m nest componentwise (stable-merge prefixes are
/// nested), which callers may rely on for monotone partition tables.
///
/// `lo` and `hi` are caller-provided k-sized scratch so steady-state callers
/// allocate nothing. Empty runs are permitted.
template <typename T, typename Compare = std::less<T>>
void kway_select(std::span<const std::span<const T>> runs, std::uint64_t m,
                 std::span<std::uint64_t> cuts, std::span<std::uint64_t> lo,
                 std::span<std::uint64_t> hi, Compare comp = {}) {
  const std::size_t k = runs.size();
  HS_EXPECTS(cuts.size() == k && lo.size() == k && hi.size() == k);
  std::uint64_t total = 0;
  for (std::size_t r = 0; r < k; ++r) total += runs[r].size();
  HS_EXPECTS(m <= total);
  for (std::size_t r = 0; r < k; ++r) {
    lo[r] = 0;
    hi[r] = runs[r].size();
  }
  if (m == 0 || m == total) {
    for (std::size_t r = 0; r < k; ++r) cuts[r] = m == 0 ? 0 : runs[r].size();
    return;
  }
  // Window-clamped binary searches: prior rounds proved the cut lies inside
  // [lo[r], hi[r]), so bounds outside the window are equivalent to the edge.
  const auto lower_in = [&](std::size_t r, const T& pivot) {
    std::uint64_t l = lo[r], h = hi[r];
    while (l < h) {
      const std::uint64_t mid = l + (h - l) / 2;
      if (comp(runs[r][mid], pivot)) {
        l = mid + 1;
      } else {
        h = mid;
      }
    }
    return l;
  };
  const auto upper_in = [&](std::size_t r, const T& pivot) {
    std::uint64_t l = lo[r], h = hi[r];
    while (l < h) {
      const std::uint64_t mid = l + (h - l) / 2;
      if (comp(pivot, runs[r][mid])) {
        h = mid;
      } else {
        l = mid + 1;
      }
    }
    return l;
  };
  while (true) {
    // Pivot: midpoint of the largest active window.
    std::size_t pr = k;
    std::uint64_t widest = 0;
    for (std::size_t r = 0; r < k; ++r) {
      const std::uint64_t width = hi[r] - lo[r];
      if (width > widest) {
        widest = width;
        pr = r;
      }
    }
    if (pr == k) {
      // Every window collapsed: the cut is forced (and sums to m, because
      // the stable cut exists and every round kept it inside the windows).
      std::uint64_t sum = 0;
      for (std::size_t r = 0; r < k; ++r) sum += (cuts[r] = lo[r]);
      HS_ASSERT(sum == m);
      return;
    }
    const T& pivot = runs[pr][lo[pr] + (hi[pr] - lo[pr]) / 2];
    std::uint64_t below = 0;
    for (std::size_t r = 0; r < k; ++r) below += (cuts[r] = lower_in(r, pivot));
    if (below >= m) {
      if (below == m) return;
      for (std::size_t r = 0; r < k; ++r) hi[r] = cuts[r];
      continue;
    }
    std::uint64_t upto = 0;
    for (std::size_t r = 0; r < k; ++r) upto += (lo[r] = upper_in(r, pivot));
    if (upto < m) continue;  // lo already advanced to the upper bounds
    // The boundary value is the pivot: hand the remaining m - below equal
    // keys to runs in ascending order — the stable merge's tie order.
    std::uint64_t t = m - below;
    for (std::size_t r = 0; r < k; ++r) {
      const std::uint64_t eq = std::min<std::uint64_t>(lo[r] - cuts[r], t);
      cuts[r] += eq;
      t -= eq;
    }
    HS_ASSERT(t == 0);
    return;
  }
}

/// Sequential stable merge of `a` and `b` into `out` (size |a|+|b|).
template <typename T, typename Compare = std::less<T>>
void merge_sequential(std::span<const T> a, std::span<const T> b,
                      std::span<T> out, Compare comp = {}) {
  HS_EXPECTS(out.size() == a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), out.begin(), comp);
}

/// Parallel stable merge of `a` and `b` into `out` using `parts` lanes
/// (0 = pool.size()). Output ranges are disjoint; no synchronisation beyond
/// the final join.
template <typename T, typename Compare = std::less<T>>
void merge_parallel(ThreadPool& pool, std::span<const T> a,
                    std::span<const T> b, std::span<T> out, Compare comp = {},
                    unsigned parts = 0) {
  HS_EXPECTS(out.size() == a.size() + b.size());
  const std::uint64_t total = out.size();
  if (total == 0) return;
  parallel_for_blocked(
      pool, 0, total,
      [&](std::uint64_t d0, std::uint64_t d1) {
        const std::uint64_t i0 = merge_path_split(a, b, d0, comp);
        const std::uint64_t i1 = merge_path_split(a, b, d1, comp);
        const std::uint64_t j0 = d0 - i0;
        const std::uint64_t j1 = d1 - i1;
        std::merge(a.begin() + static_cast<std::ptrdiff_t>(i0),
                   a.begin() + static_cast<std::ptrdiff_t>(i1),
                   b.begin() + static_cast<std::ptrdiff_t>(j0),
                   b.begin() + static_cast<std::ptrdiff_t>(j1),
                   out.begin() + static_cast<std::ptrdiff_t>(d0), comp);
      },
      parts);
}

}  // namespace hs::cpu
