// Execution plan for one host multiway merge.
//
// Kept in a leaf header so both layers can name it without entangling their
// includes: the cpu merge engine consumes a plan (cpu/multiway_merge.h), and
// the core planner produces one from the calibrated cost model
// (core/merge_schedule.h + model/cpu_model.h). A default-constructed plan is
// always valid — flat topology, engine-chosen payload handling.
#pragma once

#include <cstdint>

namespace hs::cpu {

enum class MergeTopology : std::uint8_t {
  kFlat,      // one k-way tournament over all runs, single pass
  kCascaded,  // tree of fan_in-way merges, `levels` passes over the data
};

struct MergePlan {
  MergeTopology topology = MergeTopology::kFlat;
  // Cascaded only: runs per merge node. 0 under kFlat (all k at once).
  unsigned fan_in = 0;
  // Number of merge passes over the data: 1 for flat, ceil(log_fan_in(k))
  // for cascaded.
  unsigned levels = 1;
  // Key-only tournament + one permutation-gather pass per output block,
  // instead of dragging full records through every tree level. Only honoured
  // for element types with enabled DeferredMergeTraits; the engine silently
  // merges direct otherwise.
  bool deferred_payload = false;
};

}  // namespace hs::cpu
