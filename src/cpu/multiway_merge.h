// Multiway merge of k sorted runs — sequential (loser tree) and parallel.
//
// The parallel version partitions the *value domain* with sampled splitters:
// each run contributes evenly spaced samples; the union of samples is sorted
// and p-1 quantiles become splitter values. Part j then merges, from every
// run, the sub-range of values in (splitter_{j-1}, splitter_j] — boundaries
// located with std::upper_bound, so duplicated splitter values land in exactly
// one part and the concatenation of parts is globally sorted. Sampling keeps
// parts near-equal for realistic inputs (imbalance is bounded by k·n/s for s
// samples per run) without the complexity of exact multisequence selection —
// the same engineering trade-off GNU parallel mode makes with its sampling
// splitting strategy.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/assert.h"
#include "cpu/loser_tree.h"
#include "cpu/parallel_for.h"
#include "cpu/thread_pool.h"

namespace hs::cpu {

/// Sequential k-way merge into `out`; `out.size()` must equal the total input
/// size. Stable across runs (ties keep lower run index first).
template <typename T, typename Compare = std::less<T>>
void multiway_merge_sequential(std::vector<std::span<const T>> runs,
                               std::span<T> out, Compare comp = {}) {
  if (runs.empty()) {
    HS_EXPECTS(out.empty());
    return;
  }
  if (runs.size() == 1) {
    HS_EXPECTS(out.size() == runs[0].size());
    std::copy(runs[0].begin(), runs[0].end(), out.begin());
    return;
  }
  LoserTree<T, Compare> tree(std::move(runs), comp);
  tree.drain(out);
}

/// Per-run cut positions for one value-domain part boundary.
template <typename T>
using RunCuts = std::vector<std::uint64_t>;

/// Parallel k-way merge into `out` using up to `parts` lanes (0 = pool size).
template <typename T, typename Compare = std::less<T>>
void multiway_merge_parallel(ThreadPool& pool,
                             std::vector<std::span<const T>> runs,
                             std::span<T> out, Compare comp = {},
                             unsigned parts = 0) {
  std::uint64_t total = 0;
  for (const auto& r : runs) total += r.size();
  HS_EXPECTS(out.size() == total);
  if (total == 0) return;

  unsigned p = parts == 0 ? pool.size() : std::min(parts, pool.size());
  p = static_cast<unsigned>(std::min<std::uint64_t>(p, total));
  if (p <= 1 || runs.size() <= 1) {
    multiway_merge_sequential(std::move(runs), out, comp);
    return;
  }

  // --- sample splitters ---------------------------------------------------
  constexpr std::uint64_t kSamplesPerPart = 32;
  const std::uint64_t samples_per_run =
      std::max<std::uint64_t>(1, kSamplesPerPart * p / runs.size());
  std::vector<T> samples;
  samples.reserve(runs.size() * samples_per_run);
  for (const auto& r : runs) {
    if (r.empty()) continue;
    for (std::uint64_t s = 0; s < samples_per_run; ++s) {
      const std::uint64_t idx =
          (s * r.size() + r.size() / 2) / samples_per_run;
      samples.push_back(r[std::min<std::uint64_t>(idx, r.size() - 1)]);
    }
  }
  std::sort(samples.begin(), samples.end(), comp);

  // --- compute per-part cut positions (p+1 boundaries per run) ------------
  const std::size_t k = runs.size();
  std::vector<std::vector<std::uint64_t>> cuts(p + 1,
                                               std::vector<std::uint64_t>(k));
  for (std::size_t r = 0; r < k; ++r) {
    cuts[0][r] = 0;
    cuts[p][r] = runs[r].size();
  }
  for (unsigned j = 1; j < p; ++j) {
    const std::uint64_t s_idx = static_cast<std::uint64_t>(j) *
                                samples.size() / p;
    const T& splitter = samples[std::min<std::size_t>(
        s_idx, samples.size() - 1)];
    for (std::size_t r = 0; r < k; ++r) {
      cuts[j][r] = static_cast<std::uint64_t>(
          std::upper_bound(runs[r].begin(), runs[r].end(), splitter, comp) -
          runs[r].begin());
      // Boundaries must be monotone even if sampled splitters repeat.
      cuts[j][r] = std::max(cuts[j][r], cuts[j - 1][r]);
    }
  }

  // --- output offsets per part --------------------------------------------
  std::vector<std::uint64_t> offsets(p + 1, 0);
  for (unsigned j = 0; j < p; ++j) {
    std::uint64_t part_size = 0;
    for (std::size_t r = 0; r < k; ++r) part_size += cuts[j + 1][r] - cuts[j][r];
    offsets[j + 1] = offsets[j] + part_size;
  }
  HS_ASSERT(offsets[p] == total);

  // --- merge each part independently ---------------------------------------
  parallel_region(pool, p, [&](unsigned lane, unsigned lanes) {
    for (unsigned j = lane; j < p; j += lanes) {
      std::vector<std::span<const T>> sub;
      sub.reserve(k);
      for (std::size_t r = 0; r < k; ++r) {
        sub.push_back(runs[r].subspan(cuts[j][r], cuts[j + 1][r] - cuts[j][r]));
      }
      multiway_merge_sequential(std::move(sub),
                                out.subspan(offsets[j], offsets[j + 1] - offsets[j]),
                                comp);
    }
  });
}

}  // namespace hs::cpu
