// Multiway merge of k sorted runs — sequential (loser tree) and parallel.
//
// The parallel version partitions the *value domain* with sampled splitters:
// each run contributes evenly spaced samples; the union of samples is sorted
// and p-1 quantiles become splitter values. Part j then merges, from every
// run, the sub-range of values in (splitter_{j-1}, splitter_j] — boundaries
// located with std::upper_bound, so duplicated splitter values land in exactly
// one part and the concatenation of parts is globally sorted. Sampling keeps
// parts near-equal for realistic inputs (imbalance is bounded by k·n/s for s
// samples per run) without the complexity of exact multisequence selection —
// the same engineering trade-off GNU parallel mode makes with its sampling
// splitting strategy.
//
// Steady-state the parallel path performs zero heap allocation per part:
// cut positions live in one flattened (p+1)×k buffer, each lane owns a
// reusable sub-run descriptor arena and loser tree, and all of it can be
// carried across calls in a MultiwayMergeScratch. Splitter boundaries are
// located by binary search *within the previous cut's tail* ([cuts[j-1][r],
// size)), so total cut-finding work per run is O(k·log) rather than
// O(p·k·log n).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/assert.h"
#include "cpu/loser_tree.h"
#include "cpu/parallel_for.h"
#include "cpu/thread_pool.h"
#include "obs/counters.h"
#include "obs/span.h"

namespace hs::cpu {

/// Sequential k-way merge into `out`; `out.size()` must equal the total input
/// size. Stable across runs (ties keep lower run index first).
template <typename T, typename Compare = std::less<T>>
void multiway_merge_sequential(std::vector<std::span<const T>> runs,
                               std::span<T> out, Compare comp = {}) {
  if (runs.empty()) {
    HS_EXPECTS(out.empty());
    return;
  }
  if (runs.size() == 1) {
    HS_EXPECTS(out.size() == runs[0].size());
    std::copy(runs[0].begin(), runs[0].end(), out.begin());
    return;
  }
  LoserTree<T, Compare> tree(std::move(runs), comp);
  tree.drain(out);
}

/// Reusable state for multiway_merge_parallel. After the first call with the
/// largest (p, k) the merge allocates nothing: resets reuse every buffer.
/// A scratch is bound to one comparator *state* — do not share it between
/// call sites whose comparators order differently.
template <typename T, typename Compare = std::less<T>>
struct MultiwayMergeScratch {
  explicit MultiwayMergeScratch(Compare comp = {}) : comp_(comp) {}

  /// One worker lane's private workspace: sub-run descriptors for the part
  /// being merged, and the tournament tree that drains them.
  struct Lane {
    explicit Lane(Compare comp) : tree(comp) {}
    std::vector<std::span<const T>> sub;
    LoserTree<T, Compare> tree;
  };

  void prepare(unsigned lanes, std::size_t k) {
    while (lanes_.size() < lanes) lanes_.emplace_back(comp_);
    for (auto& lane : lanes_) lane.sub.reserve(k);
  }

  Compare comp_;
  std::vector<T> samples_;
  std::vector<std::uint64_t> cuts_;     // flattened (p+1) rows of k columns
  std::vector<std::uint64_t> offsets_;  // p+1 output offsets
  std::vector<Lane> lanes_;
};

/// Parallel k-way merge into `out` using up to `parts` lanes (0 = pool size).
/// Pass a `scratch` to reuse all working memory across calls; otherwise a
/// call-local scratch is used (still zero allocations per *part*, since every
/// buffer is sized once up front and lanes reuse their arenas).
template <typename T, typename Compare = std::less<T>>
void multiway_merge_parallel(ThreadPool& pool,
                             std::vector<std::span<const T>> runs,
                             std::span<T> out, Compare comp = {},
                             unsigned parts = 0,
                             MultiwayMergeScratch<T, Compare>* scratch = nullptr) {
  std::uint64_t total = 0;
  for (const auto& r : runs) total += r.size();
  HS_EXPECTS(out.size() == total);
  if (total == 0) return;
  const obs::ScopedSpan span("multiway_merge_parallel", "Merge",
                             total * sizeof(T));
  obs::count(obs::Counter::kMergeElements, total);
  obs::count(obs::Counter::kMergeRuns, runs.size());

  unsigned p = parts == 0 ? pool.size() : std::min(parts, pool.size());
  p = static_cast<unsigned>(std::min<std::uint64_t>(p, total));
  if (p <= 1 || runs.size() <= 1) {
    multiway_merge_sequential(std::move(runs), out, comp);
    return;
  }

  MultiwayMergeScratch<T, Compare> local(comp);
  MultiwayMergeScratch<T, Compare>& S = scratch ? *scratch : local;
  const std::size_t k = runs.size();

  // --- sample splitters ---------------------------------------------------
  constexpr std::uint64_t kSamplesPerPart = 32;
  const std::uint64_t samples_per_run =
      std::max<std::uint64_t>(1, kSamplesPerPart * p / k);
  std::vector<T>& samples = S.samples_;
  samples.clear();
  samples.reserve(k * samples_per_run);
  for (const auto& r : runs) {
    if (r.empty()) continue;
    for (std::uint64_t s = 0; s < samples_per_run; ++s) {
      const std::uint64_t idx =
          (s * r.size() + r.size() / 2) / samples_per_run;
      samples.push_back(r[std::min<std::uint64_t>(idx, r.size() - 1)]);
    }
  }
  std::sort(samples.begin(), samples.end(), comp);

  // --- compute per-part cut positions (p+1 boundaries per run) ------------
  // cuts row j holds, for every run, the end of the values belonging to
  // parts 0..j-1. Rows are filled in splitter order, and each row's search
  // starts at the previous row's cut, so the k searches for row j cover only
  // the tail the previous row left — monotone by construction.
  std::vector<std::uint64_t>& cuts = S.cuts_;
  cuts.resize(static_cast<std::size_t>(p + 1) * k);
  for (std::size_t r = 0; r < k; ++r) {
    cuts[r] = 0;
    cuts[static_cast<std::size_t>(p) * k + r] = runs[r].size();
  }
  for (unsigned j = 1; j < p; ++j) {
    const std::uint64_t s_idx = static_cast<std::uint64_t>(j) *
                                samples.size() / p;
    const T& splitter = samples[std::min<std::size_t>(
        s_idx, samples.size() - 1)];
    const std::uint64_t* prev = &cuts[static_cast<std::size_t>(j - 1) * k];
    std::uint64_t* row = &cuts[static_cast<std::size_t>(j) * k];
    for (std::size_t r = 0; r < k; ++r) {
      const auto lo = runs[r].begin() + static_cast<std::ptrdiff_t>(prev[r]);
      row[r] = prev[r] +
               static_cast<std::uint64_t>(
                   std::upper_bound(lo, runs[r].end(), splitter, comp) - lo);
      HS_ASSERT(row[r] >= prev[r] && row[r] <= runs[r].size());
    }
  }

  // --- output offsets per part --------------------------------------------
  std::vector<std::uint64_t>& offsets = S.offsets_;
  offsets.resize(p + 1);
  offsets[0] = 0;
  for (unsigned j = 0; j < p; ++j) {
    std::uint64_t part_size = 0;
    for (std::size_t r = 0; r < k; ++r) {
      part_size += cuts[static_cast<std::size_t>(j + 1) * k + r] -
                   cuts[static_cast<std::size_t>(j) * k + r];
    }
    offsets[j + 1] = offsets[j] + part_size;
  }
  HS_ASSERT(offsets[p] == total);

  // --- merge each part independently ---------------------------------------
  S.prepare(std::min(p, pool.size()), k);
  parallel_region(pool, p, [&](unsigned lane, unsigned lanes) {
    typename MultiwayMergeScratch<T, Compare>::Lane& L = S.lanes_[lane];
    for (unsigned j = lane; j < p; j += lanes) {
      std::span<T> part_out =
          out.subspan(offsets[j], offsets[j + 1] - offsets[j]);
      if (part_out.empty()) continue;
      // Empty sub-runs are dropped; the survivors keep ascending run order,
      // so the tree's lower-index tie rule still means lower original run.
      L.sub.clear();
      for (std::size_t r = 0; r < k; ++r) {
        const std::uint64_t lo = cuts[static_cast<std::size_t>(j) * k + r];
        const std::uint64_t hi = cuts[static_cast<std::size_t>(j + 1) * k + r];
        if (hi > lo) L.sub.push_back(runs[r].subspan(lo, hi - lo));
      }
      if (L.sub.size() == 1) {
        std::copy(L.sub[0].begin(), L.sub[0].end(), part_out.begin());
        continue;
      }
      L.tree.reset(L.sub);
      L.tree.drain(part_out);
    }
  });
}

}  // namespace hs::cpu
