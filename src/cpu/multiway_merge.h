// Multiway merge of k sorted runs — sequential (loser tree) and parallel.
//
// The parallel version partitions the output with *exact multisequence
// selection* (kway_select in merge_path.h): boundary j is the stable merge's
// rank floor(j·n/p), so every lane merges an identical share and the speedup
// curve is limited by memory bandwidth, not by partition skew. Cut rows nest
// componentwise (stable-merge prefixes are nested), each part is a contiguous
// slice of the stable merge, and concatenating parts reproduces it exactly.
//
// Payload-deferred lanes. For element types with enabled DeferredMergeTraits
// (16-byte KeyValue64 ordered by its 8-byte key), each lane drains a key-only
// DeferredLoserTree into a permutation buffer and then applies the
// permutation to the full records in one gather pass (apply_permutation):
// keys ride through the tournament log k times, payloads move exactly once.
//
// Cascaded topology. A MergePlan may replace the flat k-way merge with a
// tree of fan_in-way merges ping-ponging between `out` and a scratch-owned
// buffer — fewer live read streams per pass at the price of extra passes,
// which the core planner's cost model only accepts at very large k.
//
// Steady-state the parallel path performs zero heap allocation: cut tables,
// selection windows, each lane's sub-run arena, tournament trees, and
// permutation buffers are all grow-only and carried in a MultiwayMergeScratch.
// Lane-private buffers are touched first by the lane that owns them (inside
// the parallel region), so on NUMA hosts they land on the worker's node.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <vector>

#include "common/assert.h"
#include "cpu/loser_tree.h"
#include "cpu/merge_path.h"
#include "cpu/merge_plan.h"
#include "cpu/parallel_for.h"
#include "cpu/parallel_memcpy.h"
#include "cpu/thread_pool.h"
#include "obs/counters.h"
#include "obs/span.h"

namespace hs::cpu {

/// Sequential k-way merge into `out`; `out.size()` must equal the total input
/// size. Stable across runs (ties keep lower run index first).
template <typename T, typename Compare = std::less<T>>
void multiway_merge_sequential(std::vector<std::span<const T>> runs,
                               std::span<T> out, Compare comp = {}) {
  if (runs.empty()) {
    HS_EXPECTS(out.empty());
    return;
  }
  if (runs.size() == 1) {
    HS_EXPECTS(out.size() == runs[0].size());
    std::copy(runs[0].begin(), runs[0].end(), out.begin());
    return;
  }
  LoserTree<T, Compare> tree(std::move(runs), comp);
  tree.drain(out);
}

/// Applies a permutation stream emitted by a DeferredLoserTree:
/// out[i] = runs[run(perm[i])][pos(perm[i])]. Maximal segments of
/// consecutive entries from one run (gallop output, merge tails, clustered
/// keys) are detected with one integer compare per entry and moved with
/// memcpy/memcpy_stream; scattered entries gather with software prefetch
/// running ahead of the use. One streaming write pass over `out`, k forward
/// read streams over the runs — every payload byte is touched exactly once.
template <typename T>
void apply_permutation(std::span<const std::span<const T>> runs,
                       std::span<const std::uint64_t> perm, T* out) {
  constexpr std::size_t kPrefetchAhead = 16;
  constexpr std::size_t kSegMemcpyMin = 16;
  const std::size_t n = perm.size();
  std::size_t i = 0;
  while (i < n) {
    if (i + kPrefetchAhead < n) {
      const std::uint64_t e = perm[i + kPrefetchAhead];
      __builtin_prefetch(runs[perm_run(e)].data() + perm_pos(e));
    }
    // Positions occupy the low 48 bits and never reach 2^48, so an entry
    // equal to its predecessor + 1 is the same run's next element.
    std::size_t j = i + 1;
    while (j < n && perm[j] == perm[j - 1] + 1) ++j;
    const std::uint64_t e = perm[i];
    const T* src = runs[perm_run(e)].data() + perm_pos(e);
    const std::size_t len = j - i;
    if (len >= kSegMemcpyMin) {
      // memcpy_stream self-gates: plain memcpy below its cutoff, SSE2
      // non-temporal stores for cache-crushing segments.
      memcpy_stream(out + i, src, len * sizeof(T));
    } else {
      for (std::size_t t = 0; t < len; ++t) out[i + t] = src[t];
    }
    i = j;
  }
}

/// Sequential payload-deferred merge of `runs` into `out`: key-only drain
/// into `perm`, then one permutation-gather pass. Requires enabled
/// DeferredMergeTraits<T, Compare>. `tree` and `perm` are grow-only scratch.
template <typename T, typename Compare = std::less<T>>
void multiway_merge_deferred(std::span<const std::span<const T>> runs,
                             std::span<T> out,
                             DeferredLoserTree<T, Compare>& tree,
                             std::vector<std::uint64_t>& perm) {
  tree.reset(runs);
  HS_EXPECTS(tree.remaining() == out.size());
  if (perm.size() < out.size()) perm.resize(out.size());
  const std::span<std::uint64_t> pspan(perm.data(), out.size());
  tree.drain(pspan);
  apply_permutation<T>(runs, pspan, out.data());
  obs::count(obs::Counter::kMergeDeferredElements, out.size());
}

// Lane-private deferred-merge state; collapses to an empty struct for types
// without the trait so Lane never instantiates DeferredLoserTree for them.
template <typename T, typename Compare,
          bool Enabled = DeferredMergeTraits<T, Compare>::kEnabled>
struct DeferredLaneState {
  DeferredLoserTree<T, Compare> tree;
  std::vector<std::uint64_t> perm;
};
template <typename T, typename Compare>
struct DeferredLaneState<T, Compare, false> {};

/// Reusable state for multiway_merge_parallel. After the first call with the
/// largest (p, k) the merge allocates nothing: resets reuse every buffer.
/// A scratch is bound to one comparator *state* — do not share it between
/// call sites whose comparators order differently.
template <typename T, typename Compare = std::less<T>>
struct MultiwayMergeScratch {
  explicit MultiwayMergeScratch(Compare comp = {}) : comp_(comp) {}

  /// One worker lane's private workspace: sub-run descriptors for the part
  /// being merged, the tournament that drains them, and (for deferring
  /// types) the key tree + permutation buffer. Buffers grow inside the
  /// owning lane's first iterations — first-touch places them NUMA-locally.
  struct Lane {
    explicit Lane(Compare comp) : tree(comp) {}
    std::vector<std::span<const T>> sub;
    LoserTree<T, Compare> tree;
    DeferredLaneState<T, Compare> deferred;
  };

  void prepare(unsigned lanes, std::size_t k) {
    while (lanes_.size() < lanes) lanes_.emplace_back(comp_);
    for (auto& lane : lanes_) lane.sub.reserve(k);
  }

  Compare comp_;
  std::vector<std::uint64_t> cuts_;     // flattened (p+1) rows of k columns
  std::vector<std::uint64_t> offsets_;  // p+1 output offsets
  std::vector<std::uint64_t> sel_lo_;   // kway_select window scratch
  std::vector<std::uint64_t> sel_hi_;
  std::vector<Lane> lanes_;
  std::vector<T> cascade_buf_;  // cascaded topology's ping-pong buffer
  std::vector<std::span<const T>> cascade_runs_[2];  // per-level run tables
};

template <typename T, typename Compare>
void multiway_merge_cascaded(ThreadPool& pool,
                             std::span<const std::span<const T>> runs,
                             std::span<T> out, Compare comp, unsigned parts,
                             MultiwayMergeScratch<T, Compare>& scratch,
                             const MergePlan& plan);

/// Parallel k-way merge into `out` using up to `parts` lanes (0 = pool size).
/// Pass a `scratch` to reuse all working memory across calls; otherwise a
/// call-local scratch is used (still zero allocations per *part*, since every
/// buffer is sized once up front and lanes reuse their arenas). `plan`
/// selects topology and payload handling; nullptr lets the engine default:
/// flat, deferred whenever the type opts in and k >= 3 (below that the tree
/// is degenerate and the gather pass cannot pay for itself).
template <typename T, typename Compare = std::less<T>>
void multiway_merge_parallel(ThreadPool& pool,
                             std::span<const std::span<const T>> runs,
                             std::span<T> out, Compare comp = {},
                             unsigned parts = 0,
                             MultiwayMergeScratch<T, Compare>* scratch = nullptr,
                             const MergePlan* plan = nullptr) {
  constexpr bool kCanDefer = DeferredMergeTraits<T, Compare>::kEnabled;
  std::uint64_t total = 0;
  for (const auto& r : runs) total += r.size();
  HS_EXPECTS(out.size() == total);
  if (total == 0) return;
  const std::size_t k = runs.size();

  MultiwayMergeScratch<T, Compare> local(comp);
  MultiwayMergeScratch<T, Compare>& S = scratch ? *scratch : local;

  MergePlan pl;
  if (plan) {
    pl = *plan;
  } else {
    pl.deferred_payload = kCanDefer && k >= 3;
  }
  if (pl.topology == MergeTopology::kCascaded && pl.fan_in >= 2 &&
      k > pl.fan_in) {
    multiway_merge_cascaded<T, Compare>(pool, runs, out, comp, parts, S, pl);
    return;
  }

  const obs::ScopedSpan span("multiway_merge_parallel", "Merge",
                             total * sizeof(T));
  obs::count(obs::Counter::kMergeElements, total);
  obs::count(obs::Counter::kMergeRuns, k);
  const bool deferred = kCanDefer && pl.deferred_payload && k >= 3;

  unsigned p = parts == 0 ? pool.size() : std::min(parts, pool.size());
  p = static_cast<unsigned>(std::min<std::uint64_t>(p, total));
  if (p <= 1 || k <= 1) {
    S.prepare(1, k);
    typename MultiwayMergeScratch<T, Compare>::Lane& L = S.lanes_[0];
    if (k == 1) {
      std::copy(runs[0].begin(), runs[0].end(), out.begin());
      return;
    }
    if constexpr (kCanDefer) {
      if (deferred) {
        multiway_merge_deferred<T, Compare>(runs, out, L.deferred.tree,
                                            L.deferred.perm);
        return;
      }
    }
    L.sub.assign(runs.begin(), runs.end());
    L.tree.reset(L.sub);
    L.tree.drain(out);
    return;
  }

  // --- exact cut positions: boundary j is stable-merge rank j*total/p ------
  std::vector<std::uint64_t>& cuts = S.cuts_;
  cuts.resize(static_cast<std::size_t>(p + 1) * k);
  S.sel_lo_.resize(k);
  S.sel_hi_.resize(k);
  for (std::size_t r = 0; r < k; ++r) {
    cuts[r] = 0;
    cuts[static_cast<std::size_t>(p) * k + r] = runs[r].size();
  }
  for (unsigned j = 1; j < p; ++j) {
    const std::uint64_t m = total * j / p;
    std::uint64_t* row = &cuts[static_cast<std::size_t>(j) * k];
    kway_select<T, Compare>(runs, m, {row, k}, S.sel_lo_, S.sel_hi_, comp);
  }

  // --- output offsets per part: exact ranks, so offsets are closed-form ----
  std::vector<std::uint64_t>& offsets = S.offsets_;
  offsets.resize(p + 1);
  for (unsigned j = 0; j <= p; ++j) offsets[j] = total * j / p;
#ifndef NDEBUG
  for (unsigned j = 0; j < p; ++j) {
    std::uint64_t part_size = 0;
    for (std::size_t r = 0; r < k; ++r) {
      HS_ASSERT(cuts[static_cast<std::size_t>(j + 1) * k + r] >=
                cuts[static_cast<std::size_t>(j) * k + r]);
      part_size += cuts[static_cast<std::size_t>(j + 1) * k + r] -
                   cuts[static_cast<std::size_t>(j) * k + r];
    }
    HS_ASSERT(part_size == offsets[j + 1] - offsets[j]);
  }
#endif
  obs::count(obs::Counter::kMergeParts, p);

  // --- merge each part independently ---------------------------------------
  S.prepare(std::min(p, pool.size()), k);
  parallel_region(pool, p, [&](unsigned lane, unsigned lanes) {
    typename MultiwayMergeScratch<T, Compare>::Lane& L = S.lanes_[lane];
    for (unsigned j = lane; j < p; j += lanes) {
      std::span<T> part_out =
          out.subspan(offsets[j], offsets[j + 1] - offsets[j]);
      if (part_out.empty()) continue;
      const obs::ScopedSpan part_span("merge_part", "Merge",
                                      part_out.size() * sizeof(T));
      // Empty sub-runs are dropped; the survivors keep ascending run order,
      // so the tree's lower-index tie rule still means lower original run.
      L.sub.clear();
      for (std::size_t r = 0; r < k; ++r) {
        const std::uint64_t lo = cuts[static_cast<std::size_t>(j) * k + r];
        const std::uint64_t hi = cuts[static_cast<std::size_t>(j + 1) * k + r];
        if (hi > lo) L.sub.push_back(runs[r].subspan(lo, hi - lo));
      }
      if (L.sub.size() == 1) {
        std::copy(L.sub[0].begin(), L.sub[0].end(), part_out.begin());
        continue;
      }
      if constexpr (kCanDefer) {
        if (deferred && L.sub.size() >= 3) {
          multiway_merge_deferred<T, Compare>(L.sub, part_out,
                                              L.deferred.tree,
                                              L.deferred.perm);
          continue;
        }
      }
      L.tree.reset(L.sub);
      L.tree.drain(part_out);
    }
  });
}

/// Back-compat overload taking owned run descriptors.
template <typename T, typename Compare = std::less<T>>
void multiway_merge_parallel(ThreadPool& pool,
                             std::vector<std::span<const T>> runs,
                             std::span<T> out, Compare comp = {},
                             unsigned parts = 0,
                             MultiwayMergeScratch<T, Compare>* scratch = nullptr,
                             const MergePlan* plan = nullptr) {
  multiway_merge_parallel<T, Compare>(
      pool, std::span<const std::span<const T>>(runs), out, comp, parts,
      scratch, plan);
}

/// Cascaded merge tree: levels of fan_in-way merges, ping-ponging between
/// `out` and the scratch-owned buffer so the last level lands in `out`.
/// Every level is itself a (flat) parallel merge across the pool; level
/// buffers and run tables live in the scratch, so steady state allocates
/// nothing. Each level streams the whole dataset once — the planner accepts
/// that cost only when flat's k live read streams would thrash the caches.
template <typename T, typename Compare>
void multiway_merge_cascaded(ThreadPool& pool,
                             std::span<const std::span<const T>> runs,
                             std::span<T> out, Compare comp, unsigned parts,
                             MultiwayMergeScratch<T, Compare>& scratch,
                             const MergePlan& plan) {
  const std::size_t k = runs.size();
  const unsigned f = std::max(2u, plan.fan_in);
  HS_EXPECTS(k > f);
  std::uint64_t total = 0;
  for (const auto& r : runs) total += r.size();
  HS_EXPECTS(out.size() == total);
  unsigned levels = 0;
  for (std::size_t x = k; x > 1; x = (x + f - 1) / f) ++levels;
  const obs::ScopedSpan span("multiway_merge_cascaded", "Merge",
                             total * sizeof(T));
  obs::count(obs::Counter::kMergeCascadeLevels, levels);

  if (scratch.cascade_buf_.size() < total) scratch.cascade_buf_.resize(total);
  MergePlan leaf = plan;
  leaf.topology = MergeTopology::kFlat;
  leaf.fan_in = 0;
  leaf.levels = 1;

  std::size_t side = 0;
  scratch.cascade_runs_[side].assign(runs.begin(), runs.end());
  for (unsigned level = 1; level <= levels; ++level) {
    std::vector<std::span<const T>>& cur = scratch.cascade_runs_[side];
    std::vector<std::span<const T>>& nxt = scratch.cascade_runs_[1 - side];
    // Parity chosen so level == levels writes `out`; intermediate levels
    // alternate with the scratch buffer (reads and writes never alias).
    T* dst = ((levels - level) % 2 == 0) ? out.data()
                                         : scratch.cascade_buf_.data();
    nxt.clear();
    std::uint64_t off = 0;
    for (std::size_t g = 0; g < cur.size(); g += f) {
      const std::size_t e = std::min(cur.size(), g + f);
      std::uint64_t gsize = 0;
      for (std::size_t r = g; r < e; ++r) gsize += cur[r].size();
      const std::span<const std::span<const T>> group =
          std::span<const std::span<const T>>(cur).subspan(g, e - g);
      // The leaf plan is flat, so this cannot recurse back here; the flat
      // path never touches the cascade_* scratch members it is iterating.
      multiway_merge_parallel<T, Compare>(pool, group,
                                          std::span<T>(dst + off, gsize),
                                          comp, parts, &scratch, &leaf);
      nxt.push_back(std::span<const T>(dst + off, gsize));
      off += gsize;
    }
    HS_ASSERT(off == total);
    side = 1 - side;
  }
  HS_ASSERT(scratch.cascade_runs_[side].size() == 1);
}

}  // namespace hs::cpu
