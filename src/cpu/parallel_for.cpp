// parallel_for is header-only (templates); this TU anchors the target and
// verifies the header is self-contained.
#include "cpu/parallel_for.h"
