// Blocked fork-join parallel loop over an index range.
//
// Both primitives dispatch through ThreadPool::submit_raw with a single
// stack-resident context per region: O(p) raw tasks per fork-join, no
// per-closure heap allocation, and one queue lock acquisition. Chunks are
// claimed through an atomic index, so a lane delayed by unrelated queue work
// cannot strand its statically assigned chunk — an idle lane steals it.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "common/assert.h"
#include "cpu/thread_pool.h"

namespace hs::cpu {

/// Runs `body(lo, hi)` over disjoint sub-ranges of [begin, end) on up to
/// `max_parts` lanes (0 = pool.size()). The caller executes chunks alongside
/// the workers. Blocks until all chunks finish. `body` must be safe to invoke
/// concurrently on disjoint ranges. `body` is invoked at most `max_parts`
/// times.
template <typename Body>
void parallel_for_blocked(ThreadPool& pool, std::uint64_t begin,
                          std::uint64_t end, Body&& body,
                          unsigned max_parts = 0) {
  HS_EXPECTS(begin <= end);
  const std::uint64_t n = end - begin;
  if (n == 0) return;
  unsigned parts = max_parts == 0 ? pool.size() : std::min(max_parts, pool.size());
  parts = static_cast<unsigned>(
      std::min<std::uint64_t>(parts, n));  // never more lanes than items
  if (parts <= 1) {
    body(begin, end);
    return;
  }
  struct Ctx {
    Ctx(Body* b, std::uint64_t lo, std::uint64_t hi, std::uint64_t c,
        unsigned n_chunks)
        : body(b), begin(lo), end(hi), chunk(c), chunks(n_chunks) {}
    Body* body;
    std::uint64_t begin;
    std::uint64_t end;
    std::uint64_t chunk;
    unsigned chunks;
    std::atomic<unsigned> next{0};
    WaitGroup wg;
  };
  Ctx ctx(&body, begin, end, (n + parts - 1) / parts, parts);
  ctx.wg.reset(parts);
  const auto run = [](void* p) {
    Ctx& c = *static_cast<Ctx*>(p);
    for (;;) {
      const unsigned i = c.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= c.chunks) break;
      const std::uint64_t lo = c.begin + c.chunk * i;
      const std::uint64_t hi = std::min(c.end, lo + c.chunk);
      if (lo < hi) (*c.body)(lo, hi);
    }
    c.wg.done();
  };
  pool.submit_raw(run, &ctx, parts - 1);
  run(&ctx);
  ctx.wg.wait();
}

/// Runs `body(part_index, num_parts)` once per lane; a generic SPMD region.
/// The caller executes lane 0; workers claim lanes 1..parts-1 atomically.
template <typename Body>
void parallel_region(ThreadPool& pool, unsigned parts, Body&& body) {
  HS_EXPECTS(parts >= 1);
  parts = std::min(parts, pool.size());
  if (parts == 1) {
    body(0u, 1u);
    return;
  }
  struct Ctx {
    Ctx(Body* b, unsigned p) : body(b), parts(p) {}
    Body* body;
    unsigned parts;
    std::atomic<unsigned> next{1};
    WaitGroup wg;
  };
  Ctx ctx(&body, parts);
  ctx.wg.reset(parts - 1);
  const auto run = [](void* p) {
    Ctx& c = *static_cast<Ctx*>(p);
    const unsigned lane = c.next.fetch_add(1, std::memory_order_relaxed);
    HS_ASSERT(lane < c.parts);
    (*c.body)(lane, c.parts);
    c.wg.done();
  };
  pool.submit_raw(run, &ctx, parts - 1);
  body(0u, parts);
  ctx.wg.wait();
}

}  // namespace hs::cpu
