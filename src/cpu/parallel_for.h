// Blocked fork-join parallel loop over an index range.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/assert.h"
#include "cpu/thread_pool.h"

namespace hs::cpu {

/// Runs `body(lo, hi)` over disjoint sub-ranges of [begin, end) on up to
/// `max_parts` lanes (0 = pool.size()). The caller executes the first chunk
/// itself. Blocks until all chunks finish. `body` must be safe to invoke
/// concurrently on disjoint ranges.
template <typename Body>
void parallel_for_blocked(ThreadPool& pool, std::uint64_t begin,
                          std::uint64_t end, Body&& body,
                          unsigned max_parts = 0) {
  HS_EXPECTS(begin <= end);
  const std::uint64_t n = end - begin;
  if (n == 0) return;
  unsigned parts = max_parts == 0 ? pool.size() : std::min(max_parts, pool.size());
  parts = static_cast<unsigned>(
      std::min<std::uint64_t>(parts, n));  // never more lanes than items
  if (parts <= 1) {
    body(begin, end);
    return;
  }
  const std::uint64_t chunk = (n + parts - 1) / parts;
  WaitGroup wg(parts - 1);
  for (unsigned p = 1; p < parts; ++p) {
    const std::uint64_t lo = begin + chunk * p;
    const std::uint64_t hi = std::min(end, lo + chunk);
    if (lo >= hi) {
      wg.done();
      continue;
    }
    pool.submit([&body, &wg, lo, hi] {
      body(lo, hi);
      wg.done();
    });
  }
  body(begin, std::min(end, begin + chunk));
  wg.wait();
}

/// Runs `body(part_index, num_parts)` once per lane; a generic SPMD region.
template <typename Body>
void parallel_region(ThreadPool& pool, unsigned parts, Body&& body) {
  HS_EXPECTS(parts >= 1);
  parts = std::min(parts, pool.size());
  if (parts == 1) {
    body(0u, 1u);
    return;
  }
  WaitGroup wg(parts - 1);
  for (unsigned p = 1; p < parts; ++p) {
    pool.submit([&body, &wg, p, parts] {
      body(p, parts);
      wg.done();
    });
  }
  body(0u, parts);
  wg.wait();
}

}  // namespace hs::cpu
