#include "cpu/parallel_memcpy.h"

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "common/assert.h"
#include "cpu/parallel_for.h"
#include "obs/counters.h"
#include "obs/span.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#define HS_MEMCPY_STREAM 1
#endif

namespace hs::cpu {
namespace {

constexpr std::size_t kSequentialCutoff = 256 * 1024;
// Streaming pays off once the copy cannot live in cache anyway; below an
// LLC-scale threshold the write-allocate reads are cheap L2/L3 hits and
// cached copies win.
constexpr std::size_t kStreamCutoff = 4u << 20;

#if defined(HS_MEMCPY_STREAM)
// Unconditional streaming copy: scalar head until `dst` is 16-byte aligned,
// 64-byte blocks of non-temporal stores (loads may be unaligned), scalar
// tail. Callers gate on size/profitability.
void stream_copy_raw(std::byte* d, const std::byte* s, std::size_t bytes) {
  const std::size_t head =
      std::min(bytes, (16 - (reinterpret_cast<std::uintptr_t>(d) & 15)) & 15);
  if (head != 0) {
    std::memcpy(d, s, head);
    d += head;
    s += head;
    bytes -= head;
  }
  const std::size_t vec = bytes & ~std::size_t{63};
  for (std::size_t i = 0; i < vec; i += 64) {
    const auto* sp = reinterpret_cast<const __m128i*>(s + i);
    auto* dp = reinterpret_cast<__m128i*>(d + i);
    _mm_stream_si128(dp + 0, _mm_loadu_si128(sp + 0));
    _mm_stream_si128(dp + 1, _mm_loadu_si128(sp + 1));
    _mm_stream_si128(dp + 2, _mm_loadu_si128(sp + 2));
    _mm_stream_si128(dp + 3, _mm_loadu_si128(sp + 3));
  }
  _mm_sfence();
  if (bytes != vec) std::memcpy(d + vec, s + vec, bytes - vec);
}
#endif

}  // namespace

void memcpy_stream(void* dst, const void* src, std::size_t bytes) {
#if defined(HS_MEMCPY_STREAM)
  if (bytes >= kStreamCutoff) {
    stream_copy_raw(static_cast<std::byte*>(dst),
                    static_cast<const std::byte*>(src), bytes);
    return;
  }
#endif
  std::memcpy(dst, src, bytes);
}

void parallel_memcpy(ThreadPool& pool, void* dst, const void* src,
                     std::size_t bytes, unsigned parts) {
  HS_EXPECTS(dst != nullptr && src != nullptr);
  const obs::ScopedSpan span("parallel_memcpy", "Memcpy", bytes);
  obs::count(obs::Counter::kBytesParMemcpy, bytes);
  if (bytes <= kSequentialCutoff || pool.size() == 1) {
    std::memcpy(dst, src, bytes);
    return;
  }
  auto* d = static_cast<std::byte*>(dst);
  const auto* s = static_cast<const std::byte*>(src);
#if defined(HS_MEMCPY_STREAM)
  // The whole copy, not the per-lane chunk, decides: lanes of one large copy
  // all fight for the same cache either way.
  if (bytes >= kStreamCutoff) {
    parallel_for_blocked(
        pool, 0, bytes,
        [&](std::uint64_t lo, std::uint64_t hi) {
          stream_copy_raw(d + lo, s + lo, static_cast<std::size_t>(hi - lo));
        },
        parts);
    return;
  }
#endif
  parallel_for_blocked(
      pool, 0, bytes,
      [&](std::uint64_t lo, std::uint64_t hi) {
        std::memcpy(d + lo, s + lo, hi - lo);
      },
      parts);
}

}  // namespace hs::cpu
