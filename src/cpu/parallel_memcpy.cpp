#include "cpu/parallel_memcpy.h"

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "common/assert.h"
#include "cpu/parallel_for.h"

namespace hs::cpu {

void parallel_memcpy(ThreadPool& pool, void* dst, const void* src,
                     std::size_t bytes, unsigned parts) {
  HS_EXPECTS(dst != nullptr && src != nullptr);
  constexpr std::size_t kSequentialCutoff = 256 * 1024;
  if (bytes <= kSequentialCutoff || pool.size() == 1) {
    std::memcpy(dst, src, bytes);
    return;
  }
  auto* d = static_cast<std::byte*>(dst);
  const auto* s = static_cast<const std::byte*>(src);
  parallel_for_blocked(
      pool, 0, bytes,
      [&](std::uint64_t lo, std::uint64_t hi) {
        std::memcpy(d + lo, s + lo, hi - lo);
      },
      parts);
}

}  // namespace hs::cpu
