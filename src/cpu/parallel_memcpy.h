// Chunked multi-threaded memcpy — the PARMEMCPY optimisation.
//
// The paper's key host-side observation: a single core cannot saturate main
// memory bandwidth for the pageable<->pinned staging copies, so parallelising
// plain std::memcpy reduces end-to-end sort time by ~13% (Section IV-F). This
// is that primitive.
//
// Copies larger than the last-level cache additionally bypass it: cached
// stores read every destination line before overwriting it (write-allocate),
// turning an n-byte copy into 3n bytes of traffic and evicting the working
// set. The streaming path uses non-temporal stores to cut that to 2n and
// leave the cache untouched.
#pragma once

#include <cstddef>

#include "cpu/thread_pool.h"

namespace hs::cpu {

/// Copies `bytes` from `src` to `dst` using up to `parts` lanes
/// (0 = pool.size()). Ranges must not overlap. Falls back to a single
/// std::memcpy below a size cutoff where thread fan-out costs more than the
/// copy; above a cache-size threshold each lane uses non-temporal stores.
void parallel_memcpy(ThreadPool& pool, void* dst, const void* src,
                     std::size_t bytes, unsigned parts = 0);

/// Single-threaded copy that bypasses the cache with aligned non-temporal
/// stores (scalar head/tail handle alignment). Copies smaller than the
/// streaming threshold — where cached copies win — and builds without SSE2
/// fall back to std::memcpy. Ranges must not overlap.
void memcpy_stream(void* dst, const void* src, std::size_t bytes);

}  // namespace hs::cpu
