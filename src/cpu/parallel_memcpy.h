// Chunked multi-threaded memcpy — the PARMEMCPY optimisation.
//
// The paper's key host-side observation: a single core cannot saturate main
// memory bandwidth for the pageable<->pinned staging copies, so parallelising
// plain std::memcpy reduces end-to-end sort time by ~13% (Section IV-F). This
// is that primitive.
#pragma once

#include <cstddef>

#include "cpu/thread_pool.h"

namespace hs::cpu {

/// Copies `bytes` from `src` to `dst` using up to `parts` lanes
/// (0 = pool.size()). Ranges must not overlap. Falls back to a single
/// std::memcpy below a size cutoff where thread fan-out costs more than the
/// copy.
void parallel_memcpy(ThreadPool& pool, void* dst, const void* src,
                     std::size_t bytes, unsigned parts = 0);

}  // namespace hs::cpu
