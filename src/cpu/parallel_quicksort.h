// Parallel quicksort — the Quicksort family of the paper's related-work
// taxonomy (Section II-A, Reif's parallel-prefix formulation; here the
// practical shared-memory variant: sequential three-way partition, the two
// sides sorted concurrently, smaller side first to bound the task count).
//
// In place, O(log n) expected auxiliary (the pending-range counter), not
// stable. Median-of-three pivoting; falls back to heapsort-backed std::sort
// below a cutoff and on pathological recursion depth.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>

#include "common/assert.h"
#include "cpu/thread_pool.h"

namespace hs::cpu {

namespace detail {

/// Counts outstanding subranges; the caller blocks until all are sorted.
class PendingRanges {
 public:
  void add() { count_.fetch_add(1, std::memory_order_relaxed); }
  void done() {
    if (count_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const std::lock_guard lock(mu_);
      cv_.notify_all();
    }
  }
  void wait() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [this] { return count_.load(std::memory_order_acquire) == 0; });
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

template <typename T, typename Compare>
void quicksort_range(ThreadPool& pool, std::span<T> data, Compare comp,
                     PendingRanges& pending, int depth_budget) {
  constexpr std::uint64_t kSequentialCutoff = 16384;
  while (data.size() > kSequentialCutoff && depth_budget > 0) {
    // Median-of-three pivot.
    T& a = data.front();
    T& b = data[data.size() / 2];
    T& c = data.back();
    if (comp(b, a)) std::swap(a, b);
    if (comp(c, b)) std::swap(b, c);
    if (comp(b, a)) std::swap(a, b);
    const T pivot = b;

    // Three-way (Dutch national flag) partition: [< pivot][== pivot][> pivot].
    std::uint64_t lo = 0, i = 0, hi = data.size();
    while (i < hi) {
      if (comp(data[i], pivot)) {
        std::swap(data[lo++], data[i++]);
      } else if (comp(pivot, data[i])) {
        std::swap(data[i], data[--hi]);
      } else {
        ++i;
      }
    }
    auto left = data.subspan(0, lo);
    auto right = data.subspan(hi);
    --depth_budget;
    // Recurse on the smaller side asynchronously, loop on the larger: the
    // task count stays O(p log n) and the loop depth O(log n).
    auto spawn = left.size() < right.size() ? left : right;
    auto keep = left.size() < right.size() ? right : left;
    if (!spawn.empty()) {
      pending.add();
      const int budget = depth_budget;
      pool.submit([&pool, spawn, comp, &pending, budget] {
        quicksort_range(pool, spawn, comp, pending, budget);
        pending.done();
      });
    }
    data = keep;
    if (data.empty()) return;
  }
  std::sort(data.begin(), data.end(), comp);
}

}  // namespace detail

/// Sorts `data` in place. Not stable.
template <typename T, typename Compare = std::less<T>>
void parallel_quicksort(ThreadPool& pool, std::span<T> data,
                        Compare comp = {}) {
  if (data.size() < 2) return;
  detail::PendingRanges pending;
  // Depth budget 2*log2(n) mirrors introsort's pathology guard.
  int budget = 2;
  for (std::uint64_t n = data.size(); n > 1; n /= 2) ++budget;
  budget *= 2;
  detail::quicksort_range(pool, data, comp, pending, budget);
  pending.wait();
}

}  // namespace hs::cpu
