// Parallel comparison sort — a p-way multiway mergesort in the style of GNU
// libstdc++ parallel mode / MCSTL (the paper's CPU reference implementation):
// split the input into p blocks, sort each block independently, then run one
// parallel multiway merge of the p sorted blocks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <type_traits>
#include <vector>

#include "common/assert.h"
#include "cpu/multiway_merge.h"
#include "cpu/parallel_for.h"
#include "cpu/parallel_memcpy.h"
#include "cpu/thread_pool.h"

namespace hs::cpu {

/// Sorts `data` in place using up to `parts` lanes (0 = pool.size()).
/// Requires O(n) temporary memory for the out-of-place multiway merge, the
/// same trade-off the paper makes (Section III-C: out-of-place merging for
/// peak performance).
template <typename T, typename Compare = std::less<T>>
void parallel_sort(ThreadPool& pool, std::span<T> data, Compare comp = {},
                   unsigned parts = 0) {
  const std::uint64_t n = data.size();
  if (n < 2) return;
  unsigned p = parts == 0 ? pool.size() : std::min(parts, pool.size());
  constexpr std::uint64_t kSequentialCutoff = 4096;
  p = static_cast<unsigned>(
      std::min<std::uint64_t>(p, std::max<std::uint64_t>(1, n / kSequentialCutoff)));
  if (p <= 1) {
    std::sort(data.begin(), data.end(), comp);
    return;
  }

  const std::uint64_t block = (n + p - 1) / p;
  std::vector<std::span<const T>> runs;
  runs.reserve(p);

  parallel_region(pool, p, [&](unsigned lane, unsigned lanes) {
    for (unsigned j = lane; j < p; j += lanes) {
      const std::uint64_t lo = block * j;
      const std::uint64_t hi = std::min(n, lo + block);
      if (lo < hi) {
        std::sort(data.begin() + static_cast<std::ptrdiff_t>(lo),
                  data.begin() + static_cast<std::ptrdiff_t>(hi), comp);
      }
    }
  });

  for (unsigned j = 0; j < p; ++j) {
    const std::uint64_t lo = block * j;
    const std::uint64_t hi = std::min(n, lo + block);
    if (lo < hi) runs.push_back(std::span<const T>(data).subspan(lo, hi - lo));
  }

  std::vector<T> tmp(n);
  multiway_merge_parallel(pool, std::move(runs), std::span<T>(tmp), comp, p);

  if constexpr (std::is_trivially_copyable_v<T>) {
    // The merged result is larger than cache by construction (p blocks of a
    // big input); parallel_memcpy streams it home without write-allocate
    // traffic or evicting the caller's working set.
    parallel_memcpy(pool, data.data(), tmp.data(), n * sizeof(T), p);
  } else {
    parallel_for_blocked(pool, 0, n, [&](std::uint64_t lo, std::uint64_t hi) {
      std::copy(tmp.begin() + static_cast<std::ptrdiff_t>(lo),
                tmp.begin() + static_cast<std::ptrdiff_t>(hi),
                data.begin() + static_cast<std::ptrdiff_t>(lo));
    });
  }
}

}  // namespace hs::cpu
