#include "cpu/radix_sort.h"

#include <array>
#include <bit>
#include <cstring>
#include <vector>

#include "common/assert.h"
#include "cpu/parallel_for.h"

namespace hs::cpu {
namespace {

constexpr unsigned kDigitBits = 8;
constexpr unsigned kNumDigits = 64 / kDigitBits;
constexpr std::size_t kRadix = 1u << kDigitBits;

constexpr std::size_t digit_of(std::uint64_t key, unsigned pass) {
  return (key >> (pass * kDigitBits)) & (kRadix - 1);
}

// One stable sequential counting pass over records of type R whose 64-bit
// sort key is KeyFn(record).
template <typename R, typename KeyFn>
void radix_pass_sequential(std::span<const R> in, std::span<R> out,
                           unsigned pass, KeyFn key) {
  std::array<std::uint64_t, kRadix> count{};
  for (const R& r : in) ++count[digit_of(key(r), pass)];
  std::uint64_t sum = 0;
  for (auto& c : count) {
    const std::uint64_t n = c;
    c = sum;
    sum += n;
  }
  for (const R& r : in) out[count[digit_of(key(r), pass)]++] = r;
}

// One stable parallel pass: per-lane histograms, a digit-major exclusive scan
// so lane l's instances of digit d scatter after lane l-1's, then parallel
// scatter to precomputed disjoint offsets.
template <typename R, typename KeyFn>
void radix_pass_parallel(ThreadPool& pool, std::span<const R> in,
                         std::span<R> out, unsigned pass, unsigned lanes,
                         KeyFn key) {
  const std::uint64_t n = in.size();
  const std::uint64_t chunk = (n + lanes - 1) / lanes;
  std::vector<std::array<std::uint64_t, kRadix>> hist(
      lanes, std::array<std::uint64_t, kRadix>{});

  parallel_region(pool, lanes, [&](unsigned lane, unsigned) {
    const std::uint64_t lo = chunk * lane;
    const std::uint64_t hi = std::min(n, lo + chunk);
    auto& h = hist[lane];
    for (std::uint64_t i = lo; i < hi; ++i) ++h[digit_of(key(in[i]), pass)];
  });

  std::uint64_t sum = 0;
  for (std::size_t d = 0; d < kRadix; ++d) {
    for (unsigned l = 0; l < lanes; ++l) {
      const std::uint64_t c = hist[l][d];
      hist[l][d] = sum;
      sum += c;
    }
  }

  parallel_region(pool, lanes, [&](unsigned lane, unsigned) {
    const std::uint64_t lo = chunk * lane;
    const std::uint64_t hi = std::min(n, lo + chunk);
    auto& offsets = hist[lane];
    for (std::uint64_t i = lo; i < hi; ++i) {
      out[offsets[digit_of(key(in[i]), pass)]++] = in[i];
    }
  });
}

template <typename R, typename KeyFn>
void radix_sort_generic(std::span<R> records, KeyFn key) {
  if (records.size() < 2) return;
  std::vector<R> tmp(records.size());
  std::span<R> a = records;
  std::span<R> b = tmp;
  for (unsigned pass = 0; pass < kNumDigits; ++pass) {
    radix_pass_sequential<R>(a, b, pass, key);
    std::swap(a, b);
  }
  // kNumDigits is even, so the final result already sits in `records`.
  static_assert(kNumDigits % 2 == 0);
}

template <typename R, typename KeyFn>
void radix_sort_parallel_generic(ThreadPool& pool, std::span<R> records,
                                 unsigned parts, KeyFn key) {
  const std::uint64_t n = records.size();
  if (n < 2) return;
  unsigned lanes = parts == 0 ? pool.size() : std::min(parts, pool.size());
  constexpr std::uint64_t kSequentialCutoff = 1u << 16;
  if (lanes <= 1 || n < kSequentialCutoff) {
    radix_sort_generic(records, key);
    return;
  }
  std::vector<R> tmp(n);
  std::span<R> a = records;
  std::span<R> b = tmp;
  for (unsigned pass = 0; pass < kNumDigits; ++pass) {
    radix_pass_parallel<R>(pool, a, b, pass, lanes, key);
    std::swap(a, b);
  }
  static_assert(kNumDigits % 2 == 0);
}

std::span<std::uint64_t> as_keys(std::span<double> values) {
  // double and uint64_t have identical size/alignment; the key transform is
  // applied in place to avoid a second O(n) buffer.
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  return {reinterpret_cast<std::uint64_t*>(values.data()), values.size()};
}

constexpr auto kIdentityKey = [](std::uint64_t k) { return k; };
constexpr auto kKvKey = [](const KeyValue64& r) { return r.key; };

}  // namespace

std::uint64_t double_to_radix_key(double d) {
  const auto bits = std::bit_cast<std::uint64_t>(d);
  const std::uint64_t mask =
      (bits & 0x8000000000000000ull) ? ~0ull : 0x8000000000000000ull;
  return bits ^ mask;
}

double radix_key_to_double(std::uint64_t k) {
  const std::uint64_t mask =
      (k & 0x8000000000000000ull) ? 0x8000000000000000ull : ~0ull;
  return std::bit_cast<double>(k ^ mask);
}

void radix_sort(std::span<std::uint64_t> keys) {
  radix_sort_generic(keys, kIdentityKey);
}

void radix_sort(std::span<double> values) {
  auto keys = as_keys(values);
  for (auto& k : keys) k = double_to_radix_key(std::bit_cast<double>(k));
  radix_sort_generic(keys, kIdentityKey);
  for (auto& k : keys) {
    k = std::bit_cast<std::uint64_t>(radix_key_to_double(k));
  }
}

void radix_sort(std::span<KeyValue64> records) {
  radix_sort_generic(records, kKvKey);
}

void radix_sort_parallel(ThreadPool& pool, std::span<std::uint64_t> keys,
                         unsigned parts) {
  radix_sort_parallel_generic(pool, keys, parts, kIdentityKey);
}

void radix_sort_parallel(ThreadPool& pool, std::span<double> values,
                         unsigned parts) {
  auto keys = as_keys(values);
  parallel_for_blocked(pool, 0, values.size(),
                       [&](std::uint64_t lo, std::uint64_t hi) {
                         for (std::uint64_t i = lo; i < hi; ++i) {
                           keys[i] = double_to_radix_key(
                               std::bit_cast<double>(keys[i]));
                         }
                       });
  radix_sort_parallel_generic(pool, keys, parts, kIdentityKey);
  parallel_for_blocked(pool, 0, values.size(),
                       [&](std::uint64_t lo, std::uint64_t hi) {
                         for (std::uint64_t i = lo; i < hi; ++i) {
                           keys[i] = std::bit_cast<std::uint64_t>(
                               radix_key_to_double(keys[i]));
                         }
                       });
}

void radix_sort_parallel(ThreadPool& pool, std::span<KeyValue64> records,
                         unsigned parts) {
  radix_sort_parallel_generic(pool, records, parts, kKvKey);
}

}  // namespace hs::cpu
