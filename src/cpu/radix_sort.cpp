#include "cpu/radix_sort.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <new>
#include <type_traits>

#include "common/assert.h"
#include "cpu/parallel_for.h"
#include "cpu/parallel_memcpy.h"
#include "obs/counters.h"
#include "obs/span.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#define HS_RADIX_STREAM 1
#endif

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define HS_RADIX_AVX512 1
#endif

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace hs::cpu {
namespace {

constexpr unsigned kDigitBits = 8;
constexpr std::size_t kCacheLine = 64;
// Below this the 16 KiB staging area costs more than the scatter it saves.
constexpr std::uint64_t kWcCutoff = std::uint64_t{1} << 15;
// Below this, fork-join overhead dominates; run the sequential engine.
constexpr std::uint64_t kParallelCutoff = std::uint64_t{1} << 16;

static_assert(kRadixPasses * kDigitBits == 64);
static_assert(kRadixBuckets == std::size_t{1} << kDigitBits);

// --- cache topology ---------------------------------------------------------
//
// The scatter strategy depends on where a pass's working set lives. While it
// fits the last-level cache, ordinary stores hit cache and non-temporal
// stores would round-trip DRAM and evict the lines the next pass reads —
// streaming is strictly a loss there. Only once read + write streams
// overflow the LLC does cache-bypassing write combining pay off.

std::size_t g_llc_override = 0;  // test hook, see set_radix_llc_for_testing

std::size_t detected_llc_bytes() {
#if defined(_SC_LEVEL3_CACHE_SIZE)
  if (const long l3 = ::sysconf(_SC_LEVEL3_CACHE_SIZE); l3 > 0) {
    return static_cast<std::size_t>(l3);
  }
#endif
#if defined(_SC_LEVEL2_CACHE_SIZE)
  if (const long l2 = ::sysconf(_SC_LEVEL2_CACHE_SIZE); l2 > 0) {
    return static_cast<std::size_t>(l2);
  }
#endif
  return std::size_t{32} << 20;
}

std::size_t llc_bytes() {
  if (g_llc_override != 0) return g_llc_override;
  static const std::size_t cached = detected_llc_bytes();
  return cached;
}

// --- key transforms ---------------------------------------------------------
//
// The engine moves records of a "stored" representation while sorting by a
// canonical uint64 key. Load maps stored -> canonical and is fused into the
// first executed pass's read; Store maps canonical -> stored and is fused
// into the final write (last pass when the executed-pass count is even, the
// copy-back otherwise). For uint64 keys and KeyValue64 records both are the
// identity; for doubles they are the order-preserving bijection applied to
// the raw bit pattern, which is what removes the seed's two standalone
// transform sweeps.

struct Identity {
  template <typename R>
  R operator()(const R& r) const {
    return r;
  }
};

struct DoubleLoad {
  std::uint64_t operator()(std::uint64_t bits) const {
    const std::uint64_t mask =
        (bits & 0x8000000000000000ull) ? ~0ull : 0x8000000000000000ull;
    return bits ^ mask;
  }
};

struct DoubleStore {
  std::uint64_t operator()(std::uint64_t key) const {
    const std::uint64_t mask =
        (key & 0x8000000000000000ull) ? 0x8000000000000000ull : ~0ull;
    return key ^ mask;
  }
};

struct U64Key {
  std::uint64_t operator()(std::uint64_t k) const { return k; }
};

struct KvKey {
  std::uint64_t operator()(const KeyValue64& r) const { return r.key; }
};

std::span<std::uint64_t> as_keys(std::span<double> values) {
  // double and uint64_t have identical size/alignment; the engine works on
  // the raw bit patterns and fuses the key bijection into its sweeps.
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  return {reinterpret_cast<std::uint64_t*>(values.data()), values.size()};
}

// --- streaming stores -------------------------------------------------------

// How full write-combining lines reach the destination. Chosen once per
// scatter from the destination's alignment: cache-line flushes are 64-byte
// strided, so one base-address check covers every flush.
enum class StreamMode { k128, k64, kNone };

StreamMode stream_mode_for(const void* out) {
#if defined(HS_RADIX_STREAM)
  const auto addr = reinterpret_cast<std::uintptr_t>(out);
  if ((addr & 15) == 0) return StreamMode::k128;
  if ((addr & 7) == 0) return StreamMode::k64;
#else
  (void)out;
#endif
  return StreamMode::kNone;
}

// Flushes one 64-byte staged line to `dst` without polluting the cache.
void stream_line(void* dst, const void* src, StreamMode mode) {
#if defined(HS_RADIX_STREAM)
  if (mode == StreamMode::k128) {
    const __m128i* s = reinterpret_cast<const __m128i*>(src);
    __m128i* d = reinterpret_cast<__m128i*>(dst);
    _mm_stream_si128(d + 0, _mm_load_si128(s + 0));
    _mm_stream_si128(d + 1, _mm_load_si128(s + 1));
    _mm_stream_si128(d + 2, _mm_load_si128(s + 2));
    _mm_stream_si128(d + 3, _mm_load_si128(s + 3));
    return;
  }
  if (mode == StreamMode::k64) {
    const auto* s = reinterpret_cast<const long long*>(src);
    auto* d = reinterpret_cast<long long*>(dst);
    for (int i = 0; i < 8; ++i) _mm_stream_si64(d + i, s[i]);
    return;
  }
#else
  (void)mode;
#endif
  std::memcpy(dst, src, kCacheLine);
}

void stream_fence(StreamMode mode) {
#if defined(HS_RADIX_STREAM)
  if (mode != StreamMode::kNone) _mm_sfence();
#else
  (void)mode;
#endif
}

// --- histograms and pass selection -----------------------------------------

constexpr std::size_t kHistWords = kRadixPasses * kRadixBuckets;

// The fused sweep fills the 8 histograms through a flat pointer; the nested
// std::array must therefore be contiguous with no padding.
static_assert(sizeof(RadixSortScratch::hist) ==
              kHistWords * sizeof(std::uint64_t));

// The fused sweep is increment-bound, not read-bound: eight read-modify-write
// chains per element. Three replicated table sets (16 KiB each on the stack)
// give four interleaved elements disjoint counters, breaking same-bucket
// store-to-load chains between neighbours; the copies are summed at the end.
template <typename R, typename KeyFn, typename Load>
void fused_histograms(const R* in, std::uint64_t lo, std::uint64_t hi,
                      KeyFn key, Load load, std::uint64_t* hist) {
  std::array<std::array<std::uint64_t, kHistWords>, 3> rep{};
  std::fill(hist, hist + kHistWords, 0);
  std::uint64_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    const std::uint64_t a = key(load(in[i]));
    const std::uint64_t b = key(load(in[i + 1]));
    const std::uint64_t c = key(load(in[i + 2]));
    const std::uint64_t e = key(load(in[i + 3]));
    for (unsigned p = 0; p < kRadixPasses; ++p) {
      const unsigned sh = p * kDigitBits;
      ++hist[p * kRadixBuckets + static_cast<std::size_t>((a >> sh) & 0xffu)];
      ++rep[0][p * kRadixBuckets +
              static_cast<std::size_t>((b >> sh) & 0xffu)];
      ++rep[1][p * kRadixBuckets +
              static_cast<std::size_t>((c >> sh) & 0xffu)];
      ++rep[2][p * kRadixBuckets +
              static_cast<std::size_t>((e >> sh) & 0xffu)];
    }
  }
  for (; i < hi; ++i) {
    const std::uint64_t k = key(load(in[i]));
    for (unsigned p = 0; p < kRadixPasses; ++p) {
      const auto d =
          static_cast<std::size_t>((k >> (p * kDigitBits)) & 0xffu);
      ++hist[p * kRadixBuckets + d];
    }
  }
  for (std::size_t j = 0; j < kHistWords; ++j) {
    hist[j] += rep[0][j] + rep[1][j] + rep[2][j];
  }
}

// A pass whose histogram has a single occupied bucket scatters every element
// to its current position — the identity permutation — so it is skipped.
bool pass_is_trivial(const std::array<std::uint64_t, kRadixBuckets>& h) {
  unsigned occupied = 0;
  for (const std::uint64_t c : h) occupied += (c != 0);
  return occupied <= 1;
}

// --- scatter ----------------------------------------------------------------

template <typename R, typename KeyFn, typename Load, typename Store>
void scatter_direct(const R* in, std::uint64_t n, R* out, unsigned shift,
                    KeyFn key, Load load, Store store, std::uint64_t* next) {
  // Destination lookahead: the store target of element i + kAhead is known
  // now (its bucket cursor moves by at most kAhead slots in the meantime, so
  // the prefetched line is almost always the one the store hits), and
  // prefetching it converts the dependent store miss into a hit.
  constexpr std::uint64_t kAhead = 16;
  std::uint64_t i = 0;
  for (; i + kAhead < n; ++i) {
    const auto dp = static_cast<std::size_t>(
        (key(load(in[i + kAhead])) >> shift) & 0xffu);
    __builtin_prefetch(out + next[dp], 1);
    const R canon = load(in[i]);
    const auto d = static_cast<std::size_t>((key(canon) >> shift) & 0xffu);
    out[next[d]++] = store(canon);
  }
  for (; i < n; ++i) {
    const R canon = load(in[i]);
    const auto d = static_cast<std::size_t>((key(canon) >> shift) & 0xffu);
    out[next[d]++] = store(canon);
  }
}

#if defined(HS_RADIX_AVX512)

bool avx512_scatter_supported() {
  static const bool ok = __builtin_cpu_supports("avx512f") != 0 &&
                         __builtin_cpu_supports("avx512cd") != 0 &&
                         __builtin_cpu_supports("avx512vpopcntdq") != 0;
  return ok;
}

// GCC's AVX-512 header builds vectors from _mm512_undefined_epi32, which
// trips -Wmaybe-uninitialized once inlined here; the values are fully
// overwritten before use.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

// Vector conflict scatter for 8-byte keys: eight elements per iteration. Equal
// digits within a vector share one gathered cursor; VPCONFLICTQ marks, for
// each lane, the earlier lanes holding the same digit, and the popcount of
// that mask is the lane's rank among them — so positions stay distinct and in
// lane order, which preserves stability. The cursor write-back scatters
// pos + 1 for every lane; scatter stores commit in lane order, so the highest
// rank (the bucket's true new cursor) wins.
template <typename Load, typename Store>
__attribute__((target("avx512f,avx512cd,avx512vpopcntdq"))) void
scatter_u64_avx512(const std::uint64_t* in, std::uint64_t n,
                   std::uint64_t* out, unsigned shift, std::uint64_t* next) {
  const __m512i digit_mask = _mm512_set1_epi64(0xff);
  const __m512i one = _mm512_set1_epi64(1);
  const __m512i sign_bit = _mm512_set1_epi64(
      static_cast<long long>(0x8000000000000000ull));
  const __m512i all_ones = _mm512_set1_epi64(-1);
  // One vector step: transform, digit, intra-vector rank, gather cursors,
  // scatter records, write cursors back. Kept as a lambda-free macro-less
  // block and instanced twice per loop so the second block's digit/rank work
  // overlaps the first block's gather/scatter latency; the hardware orders
  // the cursor writes of block 0 before the gather of block 1.
#define HS_RADIX_AVX512_STEP(koff)                                          \
  do {                                                                      \
    __m512i k = _mm512_loadu_si512(in + i + (koff));                        \
    if constexpr (std::is_same_v<Load, DoubleLoad>) {                       \
      const __m512i sign = _mm512_srai_epi64(k, 63);                        \
      k = _mm512_xor_epi64(k, _mm512_or_epi64(sign, sign_bit));             \
    }                                                                       \
    const __m512i d =                                                       \
        _mm512_and_epi64(_mm512_srli_epi64(k, shift), digit_mask);          \
    const __m512i rank = _mm512_popcnt_epi64(_mm512_conflict_epi64(d));     \
    const __m512i base = _mm512_i64gather_epi64(d, next, 8);                \
    const __m512i pos = _mm512_add_epi64(base, rank);                       \
    __m512i rec = k;                                                        \
    if constexpr (std::is_same_v<Store, DoubleStore>) {                     \
      const __m512i sign = _mm512_srai_epi64(rec, 63);                      \
      rec = _mm512_xor_epi64(                                               \
          rec,                                                              \
          _mm512_or_epi64(sign_bit, _mm512_andnot_epi64(sign, all_ones)));  \
    }                                                                       \
    _mm512_i64scatter_epi64(out, pos, rec, 8);                              \
    _mm512_i64scatter_epi64(next, d, _mm512_add_epi64(pos, one), 8);        \
  } while (false)

  // Destination prefetch through a deliberately stale cursor snapshot. The
  // scatter's stores miss L1/L2 (256 live lines spread over the output), and
  // the position of element i + 128 is predictable now: its bucket cursor
  // advances by well under a cache line per 128 elements on average, so the
  // snapshot — refreshed every 256 elements — names the right line almost
  // every time. Reading the snapshot instead of `next` keeps the prefetch
  // address computation off the scatter->gather cursor dependence chain.
  alignas(kCacheLine) std::uint64_t stale[kRadixBuckets];
  std::memcpy(stale, next, sizeof(stale));
  constexpr std::uint64_t kAhead = 128;
  std::uint64_t i = 0;
  std::uint64_t tick = 0;
  for (; i + 16 <= n; i += 16) {
    if ((tick++ & 15u) == 15u) std::memcpy(stale, next, sizeof(stale));
    if (i + kAhead + 16 <= n) {
      const std::uint64_t* p = in + i + kAhead;
      for (unsigned l = 0; l < 16; ++l) {
        const auto dp =
            static_cast<std::size_t>((Load{}(p[l]) >> shift) & 0xffu);
        __builtin_prefetch(out + stale[dp], 1);
      }
    }
    HS_RADIX_AVX512_STEP(0);
    HS_RADIX_AVX512_STEP(8);
  }
  for (; i + 8 <= n; i += 8) {
    HS_RADIX_AVX512_STEP(0);
  }
#undef HS_RADIX_AVX512_STEP
  for (; i < n; ++i) {
    const std::uint64_t canon = Load{}(in[i]);
    const auto d = static_cast<std::size_t>((canon >> shift) & 0xffu);
    out[next[d]++] = Store{}(canon);
  }
}

#pragma GCC diagnostic pop

#endif  // HS_RADIX_AVX512

// Write-combining scatter: records are staged per bucket in a cache-line
// buffer and full lines are flushed with streaming stores, so the 256-way
// random write pattern becomes sequential cache-bypassing traffic. `start`
// guards the head of each bucket region — the first line of a bucket may be
// shared with the previous bucket (or the previous lane's slice of this
// bucket), so partial head lines and tails are flushed with plain stores of
// only the slots this scatter owns.
template <typename R, typename KeyFn, typename Load, typename Store>
void scatter_wc(const R* in, std::uint64_t n, R* out, unsigned shift,
                KeyFn key, Load load, Store store, const std::uint64_t* start,
                std::uint64_t* next, R* wcbuf, StreamMode mode) {
  constexpr std::uint64_t kLane = kCacheLine / sizeof(R);
  constexpr std::uint64_t kLaneMask = kLane - 1;
  constexpr std::uint64_t kPrefetchAhead = 512 / sizeof(R);
  for (std::uint64_t i = 0; i < n; ++i) {
    __builtin_prefetch(in + i + kPrefetchAhead);
    const R canon = load(in[i]);
    const auto d = static_cast<std::size_t>((key(canon) >> shift) & 0xffu);
    const std::uint64_t pos = next[d]++;
    R* line = wcbuf + d * kLane;
    line[pos & kLaneMask] = store(canon);
    if (((pos + 1) & kLaneMask) == 0) {
      const std::uint64_t base = pos + 1 - kLane;
      if (base >= start[d]) {
        stream_line(out + base, line, mode);
      } else {
        const std::uint64_t head = start[d] - base;
        std::memcpy(out + start[d], line + head,
                    static_cast<std::size_t>(kLane - head) * sizeof(R));
      }
    }
  }
  for (std::size_t d = 0; d < kRadixBuckets; ++d) {
    const std::uint64_t end = next[d];
    const std::uint64_t base = end & ~kLaneMask;
    const std::uint64_t lo = std::max(base, start[d]);
    if (lo < end) {
      std::memcpy(out + lo, wcbuf + d * kLane + (lo - base),
                  static_cast<std::size_t>(end - lo) * sizeof(R));
    }
  }
  stream_fence(mode);
}

// Strategy selection, by working-set size against the cache topology:
//   - read + write streams overflow the LLC -> write-combining scatter with
//     non-temporal flushes (sequential cache-bypassing traffic, no RFOs);
//   - LLC-resident and 8-byte records -> vector conflict scatter when the
//     CPU has AVX-512 CD (about 2x the scalar loop);
//   - otherwise the direct scalar scatter, which ordinary caching already
//     serves well at these sizes.
template <typename R, typename KeyFn, typename Load, typename Store>
void scatter_pass(const R* in, std::uint64_t n, R* out, unsigned shift,
                  KeyFn key, Load load, Store store,
                  const std::uint64_t* start, std::uint64_t* next, R* wcbuf,
                  bool use_wc) {
  const std::size_t working_set = 2 * static_cast<std::size_t>(n) * sizeof(R);
  if (use_wc && working_set > llc_bytes()) {
    const StreamMode mode = stream_mode_for(out);
    if (mode != StreamMode::kNone) {
      scatter_wc(in, n, out, shift, key, load, store, start, next, wcbuf,
                 mode);
      return;
    }
  }
#if defined(HS_RADIX_AVX512)
  if constexpr (std::is_same_v<R, std::uint64_t> &&
                std::is_same_v<KeyFn, U64Key>) {
    if (n >= 64 && avx512_scatter_supported()) {
      scatter_u64_avx512<Load, Store>(in, n, out, shift, next);
      return;
    }
  }
#endif
  scatter_direct(in, n, out, shift, key, load, store, next);
}

// Selects the Load/Store fusion for this pass: Load on the first executed
// pass only, Store on the final write only (both identity in between).
template <typename R, typename KeyFn, typename Load, typename Store>
void scatter_dispatch(const R* in, std::uint64_t n, R* out, unsigned shift,
                      KeyFn key, Load load, Store store, bool first,
                      bool final_write, const std::uint64_t* start,
                      std::uint64_t* next, R* wcbuf, bool use_wc) {
  if (first && final_write) {
    scatter_pass(in, n, out, shift, key, load, store, start, next, wcbuf,
                 use_wc);
  } else if (first) {
    scatter_pass(in, n, out, shift, key, load, Identity{}, start, next, wcbuf,
                 use_wc);
  } else if (final_write) {
    scatter_pass(in, n, out, shift, key, Identity{}, store, start, next,
                 wcbuf, use_wc);
  } else {
    scatter_pass(in, n, out, shift, key, Identity{}, Identity{}, start, next,
                 wcbuf, use_wc);
  }
}

// --- copy-back (odd executed-pass count) ------------------------------------

// When an odd number of passes ran, the sorted canonical records sit in the
// ping-pong buffer; move them home, fusing Store into the write instead of
// running a separate transform sweep. Streaming stores are used only once
// the copy overflows the LLC — below that, cached stores keep the sorted
// output resident for whoever reads it next.
template <typename R, typename Store>
void copy_back(R* dst, const R* src, std::uint64_t n, Store store) {
  const std::size_t bytes = static_cast<std::size_t>(n) * sizeof(R);
  if constexpr (std::is_same_v<Store, Identity>) {
    if (bytes > llc_bytes()) {
      memcpy_stream(dst, src, bytes);
    } else {
      std::memcpy(dst, src, bytes);
    }
  } else {
    static_assert(sizeof(R) == sizeof(std::uint64_t));
#if defined(HS_RADIX_STREAM)
    if (bytes > llc_bytes() &&
        (reinterpret_cast<std::uintptr_t>(dst) & 7) == 0) {
      auto* d = reinterpret_cast<long long*>(dst);
      for (std::uint64_t i = 0; i < n; ++i) {
        _mm_stream_si64(d + i, static_cast<long long>(store(src[i])));
      }
      _mm_sfence();
      return;
    }
#endif
    for (std::uint64_t i = 0; i < n; ++i) dst[i] = store(src[i]);
  }
}

// --- sequential engine ------------------------------------------------------

template <typename R, typename KeyFn, typename Load, typename Store>
void sort_sequential(std::span<R> data, KeyFn key, Load load, Store store,
                     RadixSortScratch& s) {
  const std::uint64_t n = data.size();
  s.executed_passes = 0;
  if (n < 2) return;

  fused_histograms(data.data(), 0, n, key, load, s.hist[0].data());

  std::array<unsigned, kRadixPasses> exec{};
  unsigned c = 0;
  for (unsigned p = 0; p < kRadixPasses; ++p) {
    if (!pass_is_trivial(s.hist[p])) exec[c++] = p;
  }
  s.executed_passes = c;
  // c == 0 means every key is identical: nothing moves, and because Load was
  // never applied the stored representation is already correct.
  if (c == 0) return;

  R* tmp = reinterpret_cast<R*>(s.tmp(static_cast<std::size_t>(n) * sizeof(R)));
  R* wcbuf = reinterpret_cast<R*>(s.wc(1));
  const bool use_wc = n >= kWcCutoff;
  const R* src = data.data();
  R* dst = tmp;
  for (unsigned j = 0; j < c; ++j) {
    const unsigned pass = exec[j];
    std::uint64_t sum = 0;
    for (std::size_t d = 0; d < kRadixBuckets; ++d) {
      const std::uint64_t cnt = s.hist[pass][d];
      s.bucket_start[d] = sum;
      s.bucket_next[d] = sum;
      sum += cnt;
    }
    const bool first = j == 0;
    const bool final_write = (j + 1 == c) && (c % 2 == 0);
    scatter_dispatch(src, n, dst, pass * kDigitBits, key, load, store, first,
                     final_write, s.bucket_start.data(), s.bucket_next.data(),
                     wcbuf, use_wc);
    src = dst;
    dst = (dst == tmp) ? data.data() : tmp;
  }
  if (c % 2 != 0) copy_back(data.data(), tmp, n, store);
}

// --- parallel engine --------------------------------------------------------

template <typename R, typename KeyFn, typename Load, typename Store>
void sort_parallel(ThreadPool& pool, std::span<R> data, unsigned parts,
                   KeyFn key, Load load, Store store, RadixSortScratch& s) {
  const std::uint64_t n = data.size();
  const unsigned lanes =
      parts == 0 ? pool.size() : std::min(parts, pool.size());
  if (lanes <= 1 || n < kParallelCutoff) {
    sort_sequential(data, key, load, store, s);
    return;
  }
  s.executed_passes = 0;

  // Arena layout: per-lane fused histograms, then the current pass's per-lane
  // cursor row and its preserved start-offset row.
  std::uint64_t* fused = s.lane_words(
      std::size_t{lanes} * (kHistWords + 2 * kRadixBuckets));
  std::uint64_t* pnext = fused + std::size_t{lanes} * kHistWords;
  std::uint64_t* pstart = pnext + std::size_t{lanes} * kRadixBuckets;
  const std::uint64_t chunk = (n + lanes - 1) / lanes;

  // One fused read sweep: all 8 per-digit histograms per lane. Digit counts
  // are permutation-invariant, so the global histograms remain valid for
  // every later pass; the per-lane slices are valid for the first executed
  // pass only (the layout is unchanged until its scatter).
  parallel_region(pool, lanes, [&](unsigned lane, unsigned) {
    const std::uint64_t lo = std::min(n, chunk * lane);
    const std::uint64_t hi = std::min(n, lo + chunk);
    fused_histograms(data.data(), lo, hi, key, load,
                     fused + std::size_t{lane} * kHistWords);
  });

  for (unsigned p = 0; p < kRadixPasses; ++p) {
    for (std::size_t d = 0; d < kRadixBuckets; ++d) {
      std::uint64_t sum = 0;
      for (unsigned l = 0; l < lanes; ++l) {
        sum += fused[std::size_t{l} * kHistWords + p * kRadixBuckets + d];
      }
      s.hist[p][d] = sum;
    }
  }

  std::array<unsigned, kRadixPasses> exec{};
  unsigned c = 0;
  for (unsigned p = 0; p < kRadixPasses; ++p) {
    if (!pass_is_trivial(s.hist[p])) exec[c++] = p;
  }
  s.executed_passes = c;
  if (c == 0) return;

  R* tmp = reinterpret_cast<R*>(s.tmp(static_cast<std::size_t>(n) * sizeof(R)));
  R* wcbase = reinterpret_cast<R*>(s.wc(lanes));
  constexpr std::size_t kWcElems = kRadixBuckets * (kCacheLine / sizeof(R));
  const bool use_wc = n >= kWcCutoff;
  const R* src = data.data();
  R* dst = tmp;
  for (unsigned j = 0; j < c; ++j) {
    const unsigned pass = exec[j];
    const unsigned shift = pass * kDigitBits;
    if (j == 0) {
      for (unsigned l = 0; l < lanes; ++l) {
        std::memcpy(pnext + std::size_t{l} * kRadixBuckets,
                    fused + std::size_t{l} * kHistWords +
                        std::size_t{pass} * kRadixBuckets,
                    kRadixBuckets * sizeof(std::uint64_t));
      }
    } else {
      // Later passes see a scattered layout, so their per-lane counts must
      // be recomputed — but only for this one digit, on canonical records.
      const R* cur = src;
      parallel_region(pool, lanes, [&](unsigned lane, unsigned) {
        std::uint64_t* h = pnext + std::size_t{lane} * kRadixBuckets;
        std::fill(h, h + kRadixBuckets, 0);
        const std::uint64_t lo = std::min(n, chunk * lane);
        const std::uint64_t hi = std::min(n, lo + chunk);
        for (std::uint64_t i = lo; i < hi; ++i) {
          ++h[static_cast<std::size_t>((key(cur[i]) >> shift) & 0xffu)];
        }
      });
    }

    // Digit-major exclusive scan: lane l's instances of digit d land after
    // lane l-1's, which is what keeps the parallel pass stable.
    std::uint64_t sum = 0;
    for (std::size_t d = 0; d < kRadixBuckets; ++d) {
      for (unsigned l = 0; l < lanes; ++l) {
        const std::size_t idx = std::size_t{l} * kRadixBuckets + d;
        const std::uint64_t cnt = pnext[idx];
        pstart[idx] = sum;
        pnext[idx] = sum;
        sum += cnt;
      }
    }

    const bool first = j == 0;
    const bool final_write = (j + 1 == c) && (c % 2 == 0);
    const R* in = src;
    R* out = dst;
    parallel_region(pool, lanes, [&](unsigned lane, unsigned) {
      const std::uint64_t lo = std::min(n, chunk * lane);
      const std::uint64_t hi = std::min(n, lo + chunk);
      scatter_dispatch(in + lo, hi - lo, out, shift, key, load, store, first,
                       final_write, pstart + std::size_t{lane} * kRadixBuckets,
                       pnext + std::size_t{lane} * kRadixBuckets,
                       wcbase + std::size_t{lane} * kWcElems, use_wc);
    });
    src = dst;
    dst = (dst == tmp) ? data.data() : tmp;
  }
  if (c % 2 != 0) {
    R* home = data.data();
    parallel_for_blocked(pool, 0, n,
                         [&](std::uint64_t lo, std::uint64_t hi) {
                           copy_back(home + lo, tmp + lo, hi - lo, store);
                         });
  }
}

template <typename Fn>
void with_scratch(RadixSortScratch* scratch, Fn&& fn) {
  if (scratch != nullptr) {
    fn(*scratch);
  } else {
    RadixSortScratch local;
    fn(local);
  }
}

// Observability shim around every public entry: one wall span for the whole
// sort and the pass-accounting counters (skipped = trivial passes the
// histogram analysis elided).
template <typename Fn>
void with_scratch_observed(RadixSortScratch* scratch, const char* span_name,
                           std::uint64_t bytes, Fn&& fn) {
  const obs::ScopedSpan span(span_name, "CpuSort", bytes);
  with_scratch(scratch, [&](RadixSortScratch& s) {
    fn(s);
    obs::count(obs::Counter::kRadixSorts, 1);
    obs::count(obs::Counter::kRadixPassesExecuted, s.executed_passes);
    obs::count(obs::Counter::kRadixPassesSkipped,
               kRadixPasses - s.executed_passes);
  });
}

}  // namespace

namespace detail {

// Overrides the detected LLC size (0 restores detection) so tests can force
// the larger-than-LLC write-combining path on machines with large caches.
void set_radix_llc_for_testing(std::size_t bytes) { g_llc_override = bytes; }

}  // namespace detail

// --- public API -------------------------------------------------------------

std::uint64_t double_to_radix_key(double d) {
  return DoubleLoad{}(std::bit_cast<std::uint64_t>(d));
}

double radix_key_to_double(std::uint64_t k) {
  return std::bit_cast<double>(DoubleStore{}(k));
}

void radix_sort(std::span<std::uint64_t> keys, RadixSortScratch* scratch) {
  with_scratch_observed(
      scratch, "radix_sort", keys.size_bytes(), [&](RadixSortScratch& s) {
        sort_sequential(keys, U64Key{}, Identity{}, Identity{}, s);
      });
}

void radix_sort(std::span<double> values, RadixSortScratch* scratch) {
  auto keys = as_keys(values);
  with_scratch_observed(
      scratch, "radix_sort", keys.size_bytes(), [&](RadixSortScratch& s) {
        sort_sequential(keys, U64Key{}, DoubleLoad{}, DoubleStore{}, s);
      });
}

void radix_sort(std::span<KeyValue64> records, RadixSortScratch* scratch) {
  with_scratch_observed(
      scratch, "radix_sort", records.size_bytes(), [&](RadixSortScratch& s) {
        sort_sequential(records, KvKey{}, Identity{}, Identity{}, s);
      });
}

void radix_sort_parallel(ThreadPool& pool, std::span<std::uint64_t> keys,
                         unsigned parts, RadixSortScratch* scratch) {
  with_scratch_observed(
      scratch, "radix_sort_parallel", keys.size_bytes(),
      [&](RadixSortScratch& s) {
        sort_parallel(pool, keys, parts, U64Key{}, Identity{}, Identity{}, s);
      });
}

void radix_sort_parallel(ThreadPool& pool, std::span<double> values,
                         unsigned parts, RadixSortScratch* scratch) {
  auto keys = as_keys(values);
  with_scratch_observed(
      scratch, "radix_sort_parallel", keys.size_bytes(),
      [&](RadixSortScratch& s) {
        sort_parallel(pool, keys, parts, U64Key{}, DoubleLoad{},
                      DoubleStore{}, s);
      });
}

void radix_sort_parallel(ThreadPool& pool, std::span<KeyValue64> records,
                         unsigned parts, RadixSortScratch* scratch) {
  with_scratch_observed(
      scratch, "radix_sort_parallel", records.size_bytes(),
      [&](RadixSortScratch& s) {
        sort_parallel(pool, records, parts, KvKey{}, Identity{}, Identity{},
                      s);
      });
}

// --- scratch ----------------------------------------------------------------

void RadixSortScratch::AlignedDelete::operator()(std::byte* p) const {
  ::operator delete[](p, std::align_val_t{kCacheLine});
}

RadixSortScratch::AlignedBuf RadixSortScratch::alloc_aligned(
    std::size_t bytes) {
  return AlignedBuf(static_cast<std::byte*>(
      ::operator new[](bytes, std::align_val_t{kCacheLine})));
}

std::byte* RadixSortScratch::tmp(std::size_t bytes) {
  if (tmp_cap_ < bytes) {
    tmp_ = alloc_aligned(bytes);
    tmp_cap_ = bytes;
  }
  return tmp_.get();
}

std::byte* RadixSortScratch::wc(unsigned lanes) {
  const std::size_t need = std::size_t{lanes} * kRadixBuckets * kCacheLine;
  if (wc_cap_ < need) {
    wc_ = alloc_aligned(need);
    wc_cap_ = need;
  }
  return wc_.get();
}

std::uint64_t* RadixSortScratch::lane_words(std::size_t words) {
  if (lane_words_.size() < words) lane_words_.resize(words);
  return lane_words_.data();
}

}  // namespace hs::cpu
