// LSD radix sort for 64-bit keys — the algorithm class behind both the Thrust
// sort the paper runs on the GPU and the CUB sort of the related work, so the
// virtual device sorts with it (`vgpu::device_sort`). 8-bit digits, 8 passes,
// stable counting scatter; a parallel variant distributes histogramming and
// scattering across pool lanes with per-lane digit offsets.
//
// Doubles are sorted through the standard order-preserving bijection to
// uint64 (flip all bits of negatives, flip only the sign bit of positives),
// which orders IEEE-754 values correctly including -0.0 < +0.0 by bit
// pattern; NaNs sort by payload above +inf and are therefore tolerated
// (std::sort, by contrast, has UB on NaN with operator<).
#pragma once

#include <cstdint>
#include <span>

#include "common/key_value.h"
#include "cpu/thread_pool.h"

namespace hs::cpu {

/// Order-preserving bijections between double and uint64.
std::uint64_t double_to_radix_key(double d);
double radix_key_to_double(std::uint64_t k);

/// Sequential LSD radix sort of uint64 keys. O(n) extra memory.
void radix_sort(std::span<std::uint64_t> keys);

/// Sequential radix sort of doubles via the key bijection.
void radix_sort(std::span<double> values);

/// Parallel LSD radix sort of uint64 keys using up to `parts` lanes
/// (0 = pool.size()). Stable; O(n) extra memory.
void radix_sort_parallel(ThreadPool& pool, std::span<std::uint64_t> keys,
                         unsigned parts = 0);

/// Parallel radix sort of doubles.
void radix_sort_parallel(ThreadPool& pool, std::span<double> values,
                         unsigned parts = 0);

/// Sequential LSD radix sort of key/value records by key (stable in the
/// original order for equal keys). O(n) extra memory.
void radix_sort(std::span<KeyValue64> records);

/// Parallel radix sort of key/value records by key.
void radix_sort_parallel(ThreadPool& pool, std::span<KeyValue64> records,
                         unsigned parts = 0);

}  // namespace hs::cpu
