// Bandwidth-proportional LSD radix sort for 64-bit keys — the algorithm class
// behind both the Thrust sort the paper runs on the GPU and the CUB sort of
// the related work, so the virtual device sorts with it
// (`vgpu::device_sort`).
//
// Radix sort is a pure memory-bandwidth problem (Stehle & Jacobsen), so the
// engine is organised around touching memory as few times as possible:
//
//   * one fused histogram pass builds all 8 per-digit histograms in a single
//     read sweep (digit counts are permutation-invariant, so the histograms
//     of later passes stay valid as elements move);
//   * any digit whose histogram has a single occupied bucket is skipped —
//     its counting scatter would be the identity permutation (doubles'
//     exponent bytes and small-range keys typically skip 2–4 of 8 passes);
//   * the scatter adapts to the cache topology: working sets that overflow
//     the last-level cache stage each bucket's output in a cache-line
//     write-combining buffer flushed with streaming (non-temporal) stores
//     and software prefetch on the read stream, while LLC-resident working
//     sets use a vector conflict scatter (AVX-512 CD, eight keys per step)
//     or the direct scalar loop — non-temporal stores below LLC scale would
//     evict exactly the lines the next pass is about to read;
//   * both resident scatters prefetch their *destination* lines: a bucket's
//     cursor moves slowly, so the store target of an element a hundred
//     slots ahead in the input is predictable now, and prefetching through
//     a (deliberately stale) cursor snapshot turns the dependent store
//     misses that dominate the scatter into hits;
//   * the double<->key bit transforms are folded into the first read and the
//     final write of the pass pipeline instead of standalone O(n) sweeps.
//
// Doubles are sorted through the standard order-preserving bijection to
// uint64 (flip all bits of negatives, flip only the sign bit of positives),
// which orders IEEE-754 values correctly including -0.0 < +0.0 by bit
// pattern; NaNs sort by payload above +inf and are therefore tolerated
// (std::sort, by contrast, has UB on NaN with operator<).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/key_value.h"
#include "cpu/thread_pool.h"

namespace hs::cpu {

inline constexpr std::size_t kRadixBuckets = 256;
inline constexpr unsigned kRadixPasses = 8;

/// Order-preserving bijections between double and uint64.
std::uint64_t double_to_radix_key(double d);
double radix_key_to_double(std::uint64_t k);

/// Reusable working memory for the radix engine: the ping-pong buffer, the
/// fused histograms, the per-lane count/offset arenas, and the
/// write-combining staging lines. All storage is grow-only, so steady-state
/// batch sorting (same or smaller n, any element type) performs zero heap
/// allocations — the same discipline as `MultiwayMergeScratch`.
///
/// A scratch is not thread-safe: concurrent sorts need one scratch each
/// (the parallel engine itself hands disjoint arena rows to its lanes).
class RadixSortScratch {
 public:
  RadixSortScratch() = default;
  RadixSortScratch(RadixSortScratch&&) = default;
  RadixSortScratch& operator=(RadixSortScratch&&) = default;

  /// Ping-pong buffer of at least `bytes`, 64-byte aligned, grow-only.
  std::byte* tmp(std::size_t bytes);

  /// Write-combining staging area: `lanes` slots of 256 cache lines each
  /// (16 KiB per lane), 64-byte aligned, grow-only.
  std::byte* wc(unsigned lanes);

  /// Per-lane histogram/offset arena of at least `words` uint64s, grow-only.
  std::uint64_t* lane_words(std::size_t words);

  /// Fused per-digit histograms of the whole input (valid for every pass).
  std::array<std::array<std::uint64_t, kRadixBuckets>, kRadixPasses> hist{};

  /// Sequential-engine bucket cursors for the current pass.
  std::array<std::uint64_t, kRadixBuckets> bucket_start{};
  std::array<std::uint64_t, kRadixBuckets> bucket_next{};

  /// Number of non-trivial passes the last sort executed (observability for
  /// tests and benches; 0 means the input needed no data movement at all).
  unsigned executed_passes = 0;

 private:
  struct AlignedDelete {
    void operator()(std::byte* p) const;
  };
  using AlignedBuf = std::unique_ptr<std::byte[], AlignedDelete>;
  static AlignedBuf alloc_aligned(std::size_t bytes);

  AlignedBuf tmp_;
  std::size_t tmp_cap_ = 0;
  AlignedBuf wc_;
  std::size_t wc_cap_ = 0;
  std::vector<std::uint64_t> lane_words_;
};

/// Sequential LSD radix sort of uint64 keys. O(n) extra memory (from
/// `scratch` when given, else a call-local arena).
void radix_sort(std::span<std::uint64_t> keys,
                RadixSortScratch* scratch = nullptr);

/// Sequential radix sort of doubles via the key bijection (transforms fused
/// into the first/last data movement, never standalone sweeps).
void radix_sort(std::span<double> values, RadixSortScratch* scratch = nullptr);

/// Sequential LSD radix sort of key/value records by key (stable in the
/// original order for equal keys). O(n) extra memory.
void radix_sort(std::span<KeyValue64> records,
                RadixSortScratch* scratch = nullptr);

/// Parallel LSD radix sort of uint64 keys using up to `parts` lanes
/// (0 = pool.size()). Stable; O(n) extra memory.
void radix_sort_parallel(ThreadPool& pool, std::span<std::uint64_t> keys,
                         unsigned parts = 0,
                         RadixSortScratch* scratch = nullptr);

/// Parallel radix sort of doubles.
void radix_sort_parallel(ThreadPool& pool, std::span<double> values,
                         unsigned parts = 0,
                         RadixSortScratch* scratch = nullptr);

/// Parallel radix sort of key/value records by key.
void radix_sort_parallel(ThreadPool& pool, std::span<KeyValue64> records,
                         unsigned parts = 0,
                         RadixSortScratch* scratch = nullptr);

namespace detail {

/// Test hook: pretend the last-level cache is `bytes` big (0 restores
/// detection), forcing the larger-than-LLC write-combining scatter path on
/// machines whose real LLC would hide it.
void set_radix_llc_for_testing(std::size_t bytes);

}  // namespace detail

}  // namespace hs::cpu
