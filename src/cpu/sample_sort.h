// Parallel samplesort — the "Distribution sort" family of the paper's
// related-work taxonomy (Section II-A, Nodine & Vitter).
//
// Oversampled splitters partition the input into p value-disjoint buckets;
// buckets are scattered with a counting pass (two reads of the input) and
// then sorted independently in parallel. Out-of-place: O(n) temporary, the
// same space trade the paper makes for merging (Section III-C).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/assert.h"
#include "common/rng.h"
#include "cpu/parallel_for.h"
#include "cpu/thread_pool.h"

namespace hs::cpu {

/// Sorts `data` in place using up to `parts` lanes (0 = pool.size()).
/// Not stable (equal elements may be reordered across bucket boundaries by
/// the final per-bucket std::sort); use parallel_sort for a stable multiway
/// mergesort.
template <typename T, typename Compare = std::less<T>>
void sample_sort(ThreadPool& pool, std::span<T> data, Compare comp = {},
                 unsigned parts = 0) {
  const std::uint64_t n = data.size();
  if (n < 2) return;
  unsigned p = parts == 0 ? pool.size() : std::min(parts, pool.size());
  constexpr std::uint64_t kSequentialCutoff = 8192;
  if (p <= 1 || n < kSequentialCutoff) {
    std::sort(data.begin(), data.end(), comp);
    return;
  }

  // --- splitter selection: oversample, sort the sample, take quantiles ----
  constexpr unsigned kOversample = 32;
  const std::uint64_t sample_size = std::uint64_t{p} * kOversample;
  std::vector<T> sample;
  sample.reserve(sample_size);
  Xoshiro256 rng(0x5a17e5047u);  // fixed seed: deterministic splitters
  for (std::uint64_t i = 0; i < sample_size; ++i) {
    sample.push_back(data[rng.bounded(n)]);
  }
  std::sort(sample.begin(), sample.end(), comp);
  std::vector<T> splitters;
  splitters.reserve(p - 1);
  for (unsigned b = 1; b < p; ++b) {
    splitters.push_back(sample[b * sample.size() / p]);
  }

  auto bucket_of = [&](const T& v) {
    // First splitter > v; equal values go to the lower bucket (upper_bound),
    // matching the multiway-merge partitioning convention.
    return static_cast<std::uint64_t>(
        std::upper_bound(splitters.begin(), splitters.end(), v, comp) -
        splitters.begin());
  };

  // --- parallel counting ----------------------------------------------------
  const std::uint64_t chunk = (n + p - 1) / p;
  std::vector<std::vector<std::uint64_t>> counts(
      p, std::vector<std::uint64_t>(p, 0));
  parallel_region(pool, p, [&](unsigned lane, unsigned) {
    const std::uint64_t lo = chunk * lane;
    const std::uint64_t hi = std::min(n, lo + chunk);
    auto& c = counts[lane];
    for (std::uint64_t i = lo; i < hi; ++i) ++c[bucket_of(data[i])];
  });

  // --- bucket-major exclusive scan (stable scatter offsets) ----------------
  std::vector<std::uint64_t> bucket_start(p + 1, 0);
  {
    std::uint64_t sum = 0;
    for (unsigned b = 0; b < p; ++b) {
      bucket_start[b] = sum;
      for (unsigned l = 0; l < p; ++l) {
        const std::uint64_t c = counts[l][b];
        counts[l][b] = sum;
        sum += c;
      }
    }
    bucket_start[p] = sum;
    HS_ASSERT(sum == n);
  }

  // --- parallel scatter into the temporary ---------------------------------
  std::vector<T> tmp(n);
  parallel_region(pool, p, [&](unsigned lane, unsigned) {
    const std::uint64_t lo = chunk * lane;
    const std::uint64_t hi = std::min(n, lo + chunk);
    auto& offsets = counts[lane];
    for (std::uint64_t i = lo; i < hi; ++i) {
      tmp[offsets[bucket_of(data[i])]++] = data[i];
    }
  });

  // --- sort buckets independently and copy back ----------------------------
  parallel_region(pool, p, [&](unsigned lane, unsigned lanes) {
    for (unsigned b = lane; b < p; b += lanes) {
      const auto first = tmp.begin() + static_cast<std::ptrdiff_t>(bucket_start[b]);
      const auto last = tmp.begin() + static_cast<std::ptrdiff_t>(bucket_start[b + 1]);
      std::sort(first, last, comp);
      std::copy(first, last,
                data.begin() + static_cast<std::ptrdiff_t>(bucket_start[b]));
    }
  });
}

}  // namespace hs::cpu
