#include "cpu/thread_pool.h"

#include <utility>

#include "common/assert.h"
#include "obs/counters.h"
#include "obs/span.h"

namespace hs::cpu {

namespace {

// Trampoline for the std::function compatibility path: the closure lives on
// the heap and is destroyed after its single invocation.
void invoke_owned_function(void* arg) {
  auto* fn = static_cast<std::function<void()>*>(arg);
  (*fn)();
  delete fn;
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  unsigned n = threads == 0 ? std::thread::hardware_concurrency() : threads;
  if (n == 0) n = 1;
  // n - 1 workers: the caller contributes the n-th lane in parallel_for.
  workers_.reserve(n - 1);
  for (unsigned i = 0; i + 1 < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> fn) {
  HS_EXPECTS(fn != nullptr);
  if (workers_.empty()) {
    // Size-1 pool: run inline; preserves progress without a worker thread.
    fn();
    return;
  }
  submit_raw(&invoke_owned_function,
             new std::function<void()>(std::move(fn)));
}

void ThreadPool::submit_raw(void (*fn)(void*), void* arg, unsigned copies) {
  HS_EXPECTS(fn != nullptr);
  if (copies == 0) return;
  obs::count(obs::Counter::kPoolTasks, copies);
  if (workers_.empty()) {
    for (unsigned i = 0; i < copies; ++i) fn(arg);
    return;
  }
  {
    const std::lock_guard lock(mu_);
    for (unsigned i = 0; i < copies; ++i) push_locked(Task{fn, arg});
  }
  if (copies == 1) {
    cv_.notify_one();
  } else {
    cv_.notify_all();
  }
}

void ThreadPool::push_locked(Task t) {
  if (count_ == ring_.size()) {
    // Grow and unroll the ring so the occupied region is [0, count_).
    std::vector<Task> grown(std::max<std::size_t>(16, ring_.size() * 2));
    for (std::size_t i = 0; i < count_; ++i) {
      grown[i] = ring_[(head_ + i) % ring_.size()];
    }
    ring_.swap(grown);
    head_ = 0;
  }
  ring_[(head_ + count_) % ring_.size()] = t;
  ++count_;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || count_ != 0; });
      if (count_ == 0) return;  // stopping
      task = ring_[head_];
      head_ = (head_ + 1) % ring_.size();
      --count_;
    }
    const obs::ScopedSpan span("task", "Pool");
    task.fn(task.arg);
  }
}

void WaitGroup::reset(std::size_t count) {
  const std::lock_guard lock(mu_);
  HS_EXPECTS(remaining_ == 0);
  remaining_ = count;
}

void WaitGroup::done() {
  // Notify while still holding mu_: the waiter may destroy this WaitGroup
  // the moment wait() returns, so an after-unlock notify could touch a dead
  // condition variable. Holding the lock keeps the waiter blocked until the
  // notify has fully completed.
  const std::lock_guard lock(mu_);
  HS_ASSERT(remaining_ > 0);
  --remaining_;
  if (remaining_ == 0) cv_.notify_all();
}

void WaitGroup::wait() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [this] { return remaining_ == 0; });
}

}  // namespace hs::cpu
