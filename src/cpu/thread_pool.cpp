#include "cpu/thread_pool.h"

#include "common/assert.h"

namespace hs::cpu {

ThreadPool::ThreadPool(unsigned threads) {
  unsigned n = threads == 0 ? std::thread::hardware_concurrency() : threads;
  if (n == 0) n = 1;
  // n - 1 workers: the caller contributes the n-th lane in parallel_for.
  workers_.reserve(n - 1);
  for (unsigned i = 0; i + 1 < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> fn) {
  HS_EXPECTS(fn != nullptr);
  if (workers_.empty()) {
    // Size-1 pool: run inline; preserves progress without a worker thread.
    fn();
    return;
  }
  {
    const std::lock_guard lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping
      fn = std::move(queue_.front());
      queue_.pop_front();
    }
    fn();
  }
}

void WaitGroup::done() {
  {
    const std::lock_guard lock(mu_);
    HS_ASSERT(remaining_ > 0);
    --remaining_;
    if (remaining_ > 0) return;
  }
  cv_.notify_all();
}

void WaitGroup::wait() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [this] { return remaining_ == 0; });
}

}  // namespace hs::cpu
