// Fixed-size worker pool used by all real host-side parallel algorithms.
//
// The pool plays the role of the OpenMP team in the paper's host code. Library
// algorithms take a ThreadPool& parameter instead of using globals, per the
// Core Guidelines (I.2); a process-wide default pool is provided for examples
// and tests. Blocking waits use a per-group counter + condition variable, and
// the calling thread always executes one share of the work itself, so a pool
// of size 1 degrades to plain sequential execution without deadlock.
//
// The queue holds raw (function pointer, argument) tasks in a grow-on-demand
// ring buffer, so a fork-join region dispatched via submit_raw() performs no
// heap allocation in steady state — the per-closure std::function allocations
// the old deque-of-std::function design paid on every parallel_for are gone
// from the hot path. submit(std::function) remains for detached work that
// genuinely needs owning closures.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hs::cpu {

class ThreadPool {
 public:
  /// `threads` == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of workers including the cooperating caller; algorithms use this
  /// as the parallelism degree p.
  unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Enqueues `fn` for asynchronous execution on a worker. Allocates (the
  /// closure is moved to the heap); prefer submit_raw on hot paths.
  void submit(std::function<void()> fn);

  /// Enqueues `copies` invocations of `fn(arg)` under a single lock
  /// acquisition and with zero per-task allocation. `arg` must outlive all
  /// invocations (fork-join callers keep it on the stack and join before
  /// returning). On a size-1 pool the invocations run inline.
  void submit_raw(void (*fn)(void*), void* arg, unsigned copies = 1);

  /// Process-wide default pool (lazily constructed, never destroyed before
  /// exit).
  static ThreadPool& global();

 private:
  struct Task {
    void (*fn)(void*);
    void* arg;
  };

  void worker_loop();
  void push_locked(Task t);  // requires mu_ held; grows the ring if full

  std::mutex mu_;
  std::condition_variable cv_;
  // Ring buffer queue: head_ indexes the oldest task, count_ the occupancy.
  std::vector<Task> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

/// Waitable counter for fork-join sections (a minimal std::latch that can be
/// counted down from pool workers, waited on by the caller, and reset for
/// reuse across fork-join rounds without reconstruction).
class WaitGroup {
 public:
  WaitGroup() = default;
  explicit WaitGroup(std::size_t count) : remaining_(count) {}

  /// Re-arms the group. Must not race with done()/wait() from a prior round.
  void reset(std::size_t count);

  void done();
  void wait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t remaining_ = 0;
};

}  // namespace hs::cpu
