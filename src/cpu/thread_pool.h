// Fixed-size worker pool used by all real host-side parallel algorithms.
//
// The pool plays the role of the OpenMP team in the paper's host code. Library
// algorithms take a ThreadPool& parameter instead of using globals, per the
// Core Guidelines (I.2); a process-wide default pool is provided for examples
// and tests. Blocking waits use a per-group counter + condition variable, and
// the calling thread always executes one share of the work itself, so a pool
// of size 1 degrades to plain sequential execution without deadlock.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hs::cpu {

class ThreadPool {
 public:
  /// `threads` == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of workers including the cooperating caller; algorithms use this
  /// as the parallelism degree p.
  unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Enqueues `fn` for asynchronous execution on a worker.
  void submit(std::function<void()> fn);

  /// Process-wide default pool (lazily constructed, never destroyed before
  /// exit).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

/// Waitable counter for fork-join sections (a minimal std::latch that can be
/// counted down from pool workers and waited on by the caller).
class WaitGroup {
 public:
  explicit WaitGroup(std::size_t count) : remaining_(count) {}

  void done();
  void wait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t remaining_;
};

}  // namespace hs::cpu
