// Total-order semantics for every comparison key in the system.
//
// Floating-point `operator<` is not a strict weak ordering once NaNs appear
// (every comparison involving a NaN is false, so NaN compares "equivalent"
// to everything), and it cannot distinguish -0.0 from +0.0. A sorter whose
// radix path orders by the bit-level bijection while its merge path orders
// by `operator<` would emit different outputs depending on which engine
// touched the data. This header pins ONE total order, the IEEE-754
// totalOrder predicate the radix bijection already implements, and every
// layer — the radix engines, the loser-tree merge comparators
// (cpu::ElementOps hooks), and data/verify — uses it:
//
//   -NaN < -Inf < ... < -0.0 < +0.0 < ... < +Inf < +NaN
//
// NaNs are ordered deterministically by payload (bit pattern), negative
// NaNs below -Inf and positive NaNs above +Inf. Ties (bit-identical values,
// including equal NaN payloads) are broken stably: every engine in the
// portfolio is stable, so records with equal total-order keys keep their
// input order end to end.
//
// The bijections here are the single source of truth: f64_total_key is
// bit-identical to cpu::double_to_radix_key (asserted by tests), and the
// 32-bit variants define the key images the i32/u32/f32 lanes sort in.
#pragma once

#include <bit>
#include <cstdint>
#include <functional>

namespace hs::cpu {

/// Order-preserving bijection double -> u64 (flip all bits of negatives,
/// flip only the sign bit of non-negatives). Identical to
/// double_to_radix_key in cpu/radix_sort.h; kept inline here so per-record
/// comparators pay no call overhead.
inline std::uint64_t f64_total_key(double d) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(d);
  const std::uint64_t mask =
      (bits & 0x8000000000000000ull) ? ~0ull : 0x8000000000000000ull;
  return bits ^ mask;
}

inline double f64_from_total_key(std::uint64_t k) {
  const std::uint64_t mask =
      (k & 0x8000000000000000ull) ? 0x8000000000000000ull : ~0ull;
  return std::bit_cast<double>(k ^ mask);
}

/// The same bijection for float -> u32.
inline std::uint32_t f32_total_key(float f) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(f);
  const std::uint32_t mask = (bits & 0x80000000u) ? ~0u : 0x80000000u;
  return bits ^ mask;
}

inline float f32_from_total_key(std::uint32_t k) {
  const std::uint32_t mask = (k & 0x80000000u) ? 0x80000000u : ~0u;
  return std::bit_cast<float>(k ^ mask);
}

/// Two's-complement int32 -> u32 order-preserving bijection (sign-bit flip).
inline std::uint32_t i32_total_key(std::int32_t v) {
  return std::bit_cast<std::uint32_t>(v) ^ 0x80000000u;
}

inline std::int32_t i32_from_total_key(std::uint32_t k) {
  return std::bit_cast<std::int32_t>(k ^ 0x80000000u);
}

/// The comparator every merge and verification path uses. For integral and
/// key/value types this IS std::less (their operator< is already a total
/// order); the float specialisations compare bijection images so NaN and
/// signed-zero ordering match the radix engines exactly.
template <typename T>
struct TotalOrderLess : std::less<T> {};

template <>
struct TotalOrderLess<double> {
  bool operator()(double a, double b) const {
    return f64_total_key(a) < f64_total_key(b);
  }
};

template <>
struct TotalOrderLess<float> {
  bool operator()(float a, float b) const {
    return f32_total_key(a) < f32_total_key(b);
  }
};

}  // namespace hs::cpu
