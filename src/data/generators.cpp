#include "data/generators.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <type_traits>

#include "common/assert.h"
#include "common/key_value.h"
#include "common/rng.h"

namespace hs::data {

std::string_view distribution_name(Distribution d) {
  switch (d) {
    case Distribution::kUniform: return "uniform";
    case Distribution::kGaussian: return "gaussian";
    case Distribution::kSorted: return "sorted";
    case Distribution::kReverseSorted: return "reverse";
    case Distribution::kNearlySorted: return "nearly-sorted";
    case Distribution::kDuplicateHeavy: return "dup-heavy";
    case Distribution::kAllEqual: return "all-equal";
    case Distribution::kZipf: return "zipf";
    case Distribution::kSaw: return "saw";
    case Distribution::kRuns: return "runs";
    case Distribution::kPartialSorted: return "partial-sorted";
    case Distribution::kOrganPipe: return "organ-pipe";
  }
  return "?";
}

std::span<const Distribution> all_distributions() {
  static constexpr std::array<Distribution, 12> kAll = {
      Distribution::kUniform,        Distribution::kGaussian,
      Distribution::kSorted,         Distribution::kReverseSorted,
      Distribution::kNearlySorted,   Distribution::kDuplicateHeavy,
      Distribution::kAllEqual,       Distribution::kZipf,
      Distribution::kSaw,            Distribution::kRuns,
      Distribution::kPartialSorted,  Distribution::kOrganPipe,
  };
  return kAll;
}

std::optional<Distribution> distribution_from_name(std::string_view name) {
  for (const Distribution d : all_distributions()) {
    if (distribution_name(d) == name) return d;
  }
  return std::nullopt;
}

namespace {

/// Sawtooth period: long enough that each ramp is a real presorted run,
/// short enough that even small test inputs see several teeth.
std::uint64_t saw_period(std::uint64_t n) {
  return std::max<std::uint64_t>(2, std::min<std::uint64_t>(100'000, n / 8));
}

constexpr std::uint64_t kRunCount = 16;

/// Organ pipe: 0,1,...,peak,...,1,0 — every prefix ascends, every suffix
/// descends, which is the classic adversarial shape for run detection.
std::uint64_t organ_rank(std::uint64_t i, std::uint64_t n) {
  return std::min(i, n - 1 - i);
}

}  // namespace

std::vector<double> generate(Distribution dist, std::uint64_t n,
                             std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> v(n);
  switch (dist) {
    case Distribution::kUniform:
      for (auto& x : v) x = rng.uniform01();
      break;
    case Distribution::kGaussian:
      for (auto& x : v) x = rng.normal();
      break;
    case Distribution::kSorted:
      for (std::uint64_t i = 0; i < n; ++i) v[i] = static_cast<double>(i);
      break;
    case Distribution::kReverseSorted:
      for (std::uint64_t i = 0; i < n; ++i) {
        v[i] = static_cast<double>(n - i);
      }
      break;
    case Distribution::kNearlySorted: {
      for (std::uint64_t i = 0; i < n; ++i) v[i] = static_cast<double>(i);
      const std::uint64_t swaps = n / 100;
      for (std::uint64_t s = 0; s < swaps; ++s) {
        std::swap(v[rng.bounded(n)], v[rng.bounded(n)]);
      }
      break;
    }
    case Distribution::kDuplicateHeavy:
      for (auto& x : v) x = static_cast<double>(rng.bounded(16));
      break;
    case Distribution::kAllEqual:
      std::fill(v.begin(), v.end(), 42.0);
      break;
    case Distribution::kZipf: {
      // Inverse-CDF sampling over 1e6 ranks with s = 1 (harmonic weights).
      constexpr double kRanks = 1e6;
      const double h = std::log(kRanks);
      for (auto& x : v) {
        x = std::floor(std::exp(rng.uniform01() * h));
      }
      break;
    }
    case Distribution::kSaw: {
      const std::uint64_t period = saw_period(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        v[i] = static_cast<double>(i % period);
      }
      break;
    }
    case Distribution::kRuns: {
      for (auto& x : v) x = rng.uniform01();
      const std::uint64_t run = std::max<std::uint64_t>(1, n / kRunCount);
      for (std::uint64_t start = 0; start < n; start += run) {
        const std::uint64_t end = std::min(n, start + run);
        std::sort(v.begin() + static_cast<std::ptrdiff_t>(start),
                  v.begin() + static_cast<std::ptrdiff_t>(end));
      }
      break;
    }
    case Distribution::kPartialSorted: {
      const std::uint64_t sorted = n / 2;
      for (std::uint64_t i = 0; i < sorted; ++i) v[i] = static_cast<double>(i);
      for (std::uint64_t i = sorted; i < n; ++i) {
        v[i] = rng.uniform01() * static_cast<double>(n);
      }
      break;
    }
    case Distribution::kOrganPipe:
      for (std::uint64_t i = 0; i < n; ++i) {
        v[i] = static_cast<double>(organ_rank(i, n));
      }
      break;
  }
  return v;
}

std::vector<std::uint64_t> generate_keys(Distribution dist, std::uint64_t n,
                                         std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> v(n);
  switch (dist) {
    case Distribution::kUniform:
      for (auto& x : v) x = rng();
      break;
    case Distribution::kSorted:
      for (std::uint64_t i = 0; i < n; ++i) v[i] = i;
      break;
    case Distribution::kReverseSorted:
      for (std::uint64_t i = 0; i < n; ++i) v[i] = n - i;
      break;
    case Distribution::kDuplicateHeavy:
      for (auto& x : v) x = rng.bounded(16);
      break;
    case Distribution::kAllEqual:
      std::fill(v.begin(), v.end(), 42u);
      break;
    case Distribution::kSaw: {
      const std::uint64_t period = saw_period(n);
      for (std::uint64_t i = 0; i < n; ++i) v[i] = i % period;
      break;
    }
    case Distribution::kRuns: {
      for (auto& x : v) x = rng();
      const std::uint64_t run = std::max<std::uint64_t>(1, n / kRunCount);
      for (std::uint64_t start = 0; start < n; start += run) {
        const std::uint64_t end = std::min(n, start + run);
        std::sort(v.begin() + static_cast<std::ptrdiff_t>(start),
                  v.begin() + static_cast<std::ptrdiff_t>(end));
      }
      break;
    }
    case Distribution::kPartialSorted: {
      const std::uint64_t sorted = n / 2;
      for (std::uint64_t i = 0; i < sorted; ++i) v[i] = i;
      for (std::uint64_t i = sorted; i < n; ++i) v[i] = rng();
      break;
    }
    case Distribution::kOrganPipe:
      for (std::uint64_t i = 0; i < n; ++i) v[i] = organ_rank(i, n);
      break;
    default: {
      // Remaining distributions: quantise the double generator.
      const auto d = generate(dist, n, seed);
      for (std::uint64_t i = 0; i < n; ++i) {
        v[i] = static_cast<std::uint64_t>(
            std::llround(std::abs(d[i]) * 1e6));
      }
      break;
    }
  }
  return v;
}

namespace {

/// Ordered-shape value at rank `i` of `n`: the i32 lane centres the ramp on
/// zero so ordered distributions exercise negative values and the sign-flip
/// bijection; the f32 lane likewise spans both signs.
template <typename T>
T rank_value(std::uint64_t i, std::uint64_t n) {
  if constexpr (std::is_same_v<T, std::int32_t>) {
    return static_cast<std::int32_t>(static_cast<std::int64_t>(i) -
                                     static_cast<std::int64_t>(n / 2));
  } else if constexpr (std::is_same_v<T, float>) {
    return static_cast<float>(static_cast<double>(i) -
                              static_cast<double>(n / 2));
  } else {
    return static_cast<T>(i);
  }
}

/// Full-range random value (the uniform distribution and random tails).
template <typename T>
T random_value(Xoshiro256& rng) {
  if constexpr (std::is_same_v<T, float>) {
    // Span both signs so the bijection's negative branch is exercised.
    return static_cast<float>(rng.uniform01() * 2.0 - 1.0);
  } else if constexpr (std::is_same_v<T, std::int32_t>) {
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(rng()));
  } else {
    return static_cast<T>(rng());
  }
}

template <typename T>
T gauss_value(Xoshiro256& rng) {
  if constexpr (std::is_same_v<T, float>) {
    return static_cast<float>(rng.normal());
  } else if constexpr (std::is_same_v<T, std::int32_t>) {
    return static_cast<std::int32_t>(std::llround(rng.normal() * 1e6));
  } else {
    return static_cast<T>(std::llround(std::abs(rng.normal()) * 1e6));
  }
}

template <typename T>
T dup_value(Xoshiro256& rng) {
  if constexpr (std::is_same_v<T, float>) {
    return static_cast<float>(rng.bounded(16)) - 8.0f;
  } else if constexpr (std::is_same_v<T, std::int32_t>) {
    return static_cast<std::int32_t>(rng.bounded(16)) - 8;
  } else {
    return static_cast<T>(rng.bounded(16));
  }
}

}  // namespace

template <typename T>
std::vector<T> generate_values(Distribution dist, std::uint64_t n,
                               std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<T> v(n);
  switch (dist) {
    case Distribution::kUniform:
      for (auto& x : v) x = random_value<T>(rng);
      break;
    case Distribution::kGaussian:
      for (auto& x : v) x = gauss_value<T>(rng);
      break;
    case Distribution::kSorted:
      for (std::uint64_t i = 0; i < n; ++i) v[i] = rank_value<T>(i, n);
      break;
    case Distribution::kReverseSorted:
      for (std::uint64_t i = 0; i < n; ++i) {
        v[i] = rank_value<T>(n - 1 - i, n);
      }
      break;
    case Distribution::kNearlySorted: {
      for (std::uint64_t i = 0; i < n; ++i) v[i] = rank_value<T>(i, n);
      const std::uint64_t swaps = n / 100;
      for (std::uint64_t s = 0; s < swaps; ++s) {
        std::swap(v[rng.bounded(n)], v[rng.bounded(n)]);
      }
      break;
    }
    case Distribution::kDuplicateHeavy:
      for (auto& x : v) x = dup_value<T>(rng);
      break;
    case Distribution::kAllEqual:
      std::fill(v.begin(), v.end(), static_cast<T>(42));
      break;
    case Distribution::kZipf: {
      constexpr double kRanks = 1e6;
      const double h = std::log(kRanks);
      for (auto& x : v) {
        x = static_cast<T>(std::floor(std::exp(rng.uniform01() * h)));
      }
      break;
    }
    case Distribution::kSaw: {
      const std::uint64_t period = saw_period(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        v[i] = rank_value<T>(i % period, period);
      }
      break;
    }
    case Distribution::kRuns: {
      for (auto& x : v) x = random_value<T>(rng);
      const std::uint64_t run = std::max<std::uint64_t>(1, n / kRunCount);
      for (std::uint64_t start = 0; start < n; start += run) {
        const std::uint64_t end = std::min(n, start + run);
        // No NaNs are generated here, so operator< is a total order.
        std::sort(v.begin() + static_cast<std::ptrdiff_t>(start),
                  v.begin() + static_cast<std::ptrdiff_t>(end));
      }
      break;
    }
    case Distribution::kPartialSorted: {
      const std::uint64_t sorted = n / 2;
      for (std::uint64_t i = 0; i < sorted; ++i) v[i] = rank_value<T>(i, n);
      for (std::uint64_t i = sorted; i < n; ++i) {
        if constexpr (std::is_same_v<T, float>) {
          // Scale the tail to the prefix's range so it actually interleaves.
          v[i] = static_cast<float>(rng.uniform01() * static_cast<double>(n) -
                                    static_cast<double>(n / 2));
        } else {
          v[i] = random_value<T>(rng);
        }
      }
      break;
    }
    case Distribution::kOrganPipe:
      for (std::uint64_t i = 0; i < n; ++i) {
        v[i] = rank_value<T>(organ_rank(i, n), n);
      }
      break;
  }
  return v;
}

template std::vector<float> generate_values<float>(Distribution, std::uint64_t,
                                                   std::uint64_t);
template std::vector<std::int32_t> generate_values<std::int32_t>(
    Distribution, std::uint64_t, std::uint64_t);
template std::vector<std::uint32_t> generate_values<std::uint32_t>(
    Distribution, std::uint64_t, std::uint64_t);

namespace {

template <typename T>
std::vector<std::byte> to_bytes(const std::vector<T>& v) {
  std::vector<std::byte> out(v.size() * sizeof(T));
  if (!v.empty()) std::memcpy(out.data(), v.data(), out.size());
  return out;
}

}  // namespace

std::vector<std::byte> generate_lane(std::string_view lane, Distribution dist,
                                     std::uint64_t n, std::uint64_t seed) {
  if (lane == "f64") return to_bytes(generate(dist, n, seed));
  if (lane == "u64") return to_bytes(generate_keys(dist, n, seed));
  if (lane == "f32") return to_bytes(generate_values<float>(dist, n, seed));
  if (lane == "i32") {
    return to_bytes(generate_values<std::int32_t>(dist, n, seed));
  }
  if (lane == "u32") {
    return to_bytes(generate_values<std::uint32_t>(dist, n, seed));
  }
  if (lane == "kv64") {
    const auto keys = generate_keys(dist, n, seed);
    std::vector<KeyValue64> recs(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      recs[i].key = keys[i];
      recs[i].value = i;  // input position: makes stability observable
    }
    return to_bytes(recs);
  }
  if (lane == "kv64p24") {
    const auto keys = generate_keys(dist, n, seed);
    std::vector<KeyValue64P24> recs(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      recs[i].key = keys[i];
      // Deterministic payload: the record index in the first 8 bytes (so
      // stability is observable), golden-ratio-mixed index bytes after.
      std::memcpy(recs[i].payload.data(), &i, sizeof(i));
      const std::uint64_t mix = i * 0x9E3779B97F4A7C15ull;
      for (std::size_t j = sizeof(i); j < recs[i].payload.size(); ++j) {
        recs[i].payload[j] =
            static_cast<std::byte>((mix >> ((j % 8) * 8)) & 0xFF);
      }
    }
    return to_bytes(recs);
  }
  HS_EXPECTS_MSG(false, "generate_lane: unknown element lane name");
  return {};
}

}  // namespace hs::data
