#include "data/generators.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/rng.h"

namespace hs::data {

std::string_view distribution_name(Distribution d) {
  switch (d) {
    case Distribution::kUniform: return "uniform";
    case Distribution::kGaussian: return "gaussian";
    case Distribution::kSorted: return "sorted";
    case Distribution::kReverseSorted: return "reverse";
    case Distribution::kNearlySorted: return "nearly-sorted";
    case Distribution::kDuplicateHeavy: return "dup-heavy";
    case Distribution::kAllEqual: return "all-equal";
    case Distribution::kZipf: return "zipf";
    case Distribution::kSaw: return "saw";
    case Distribution::kRuns: return "runs";
    case Distribution::kPartialSorted: return "partial-sorted";
  }
  return "?";
}

namespace {

/// Sawtooth period: long enough that each ramp is a real presorted run,
/// short enough that even small test inputs see several teeth.
std::uint64_t saw_period(std::uint64_t n) {
  return std::max<std::uint64_t>(2, std::min<std::uint64_t>(100'000, n / 8));
}

constexpr std::uint64_t kRunCount = 16;

}  // namespace

std::vector<double> generate(Distribution dist, std::uint64_t n,
                             std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> v(n);
  switch (dist) {
    case Distribution::kUniform:
      for (auto& x : v) x = rng.uniform01();
      break;
    case Distribution::kGaussian:
      for (auto& x : v) x = rng.normal();
      break;
    case Distribution::kSorted:
      for (std::uint64_t i = 0; i < n; ++i) v[i] = static_cast<double>(i);
      break;
    case Distribution::kReverseSorted:
      for (std::uint64_t i = 0; i < n; ++i) {
        v[i] = static_cast<double>(n - i);
      }
      break;
    case Distribution::kNearlySorted: {
      for (std::uint64_t i = 0; i < n; ++i) v[i] = static_cast<double>(i);
      const std::uint64_t swaps = n / 100;
      for (std::uint64_t s = 0; s < swaps; ++s) {
        std::swap(v[rng.bounded(n)], v[rng.bounded(n)]);
      }
      break;
    }
    case Distribution::kDuplicateHeavy:
      for (auto& x : v) x = static_cast<double>(rng.bounded(16));
      break;
    case Distribution::kAllEqual:
      std::fill(v.begin(), v.end(), 42.0);
      break;
    case Distribution::kZipf: {
      // Inverse-CDF sampling over 1e6 ranks with s = 1 (harmonic weights).
      constexpr double kRanks = 1e6;
      const double h = std::log(kRanks);
      for (auto& x : v) {
        x = std::floor(std::exp(rng.uniform01() * h));
      }
      break;
    }
    case Distribution::kSaw: {
      const std::uint64_t period = saw_period(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        v[i] = static_cast<double>(i % period);
      }
      break;
    }
    case Distribution::kRuns: {
      for (auto& x : v) x = rng.uniform01();
      const std::uint64_t run = std::max<std::uint64_t>(1, n / kRunCount);
      for (std::uint64_t start = 0; start < n; start += run) {
        const std::uint64_t end = std::min(n, start + run);
        std::sort(v.begin() + static_cast<std::ptrdiff_t>(start),
                  v.begin() + static_cast<std::ptrdiff_t>(end));
      }
      break;
    }
    case Distribution::kPartialSorted: {
      const std::uint64_t sorted = n / 2;
      for (std::uint64_t i = 0; i < sorted; ++i) v[i] = static_cast<double>(i);
      for (std::uint64_t i = sorted; i < n; ++i) {
        v[i] = rng.uniform01() * static_cast<double>(n);
      }
      break;
    }
  }
  return v;
}

std::vector<std::uint64_t> generate_keys(Distribution dist, std::uint64_t n,
                                         std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> v(n);
  switch (dist) {
    case Distribution::kUniform:
      for (auto& x : v) x = rng();
      break;
    case Distribution::kSorted:
      for (std::uint64_t i = 0; i < n; ++i) v[i] = i;
      break;
    case Distribution::kReverseSorted:
      for (std::uint64_t i = 0; i < n; ++i) v[i] = n - i;
      break;
    case Distribution::kDuplicateHeavy:
      for (auto& x : v) x = rng.bounded(16);
      break;
    case Distribution::kAllEqual:
      std::fill(v.begin(), v.end(), 42u);
      break;
    case Distribution::kSaw: {
      const std::uint64_t period = saw_period(n);
      for (std::uint64_t i = 0; i < n; ++i) v[i] = i % period;
      break;
    }
    case Distribution::kRuns: {
      for (auto& x : v) x = rng();
      const std::uint64_t run = std::max<std::uint64_t>(1, n / kRunCount);
      for (std::uint64_t start = 0; start < n; start += run) {
        const std::uint64_t end = std::min(n, start + run);
        std::sort(v.begin() + static_cast<std::ptrdiff_t>(start),
                  v.begin() + static_cast<std::ptrdiff_t>(end));
      }
      break;
    }
    case Distribution::kPartialSorted: {
      const std::uint64_t sorted = n / 2;
      for (std::uint64_t i = 0; i < sorted; ++i) v[i] = i;
      for (std::uint64_t i = sorted; i < n; ++i) v[i] = rng();
      break;
    }
    default: {
      // Remaining distributions: quantise the double generator.
      const auto d = generate(dist, n, seed);
      for (std::uint64_t i = 0; i < n; ++i) {
        v[i] = static_cast<std::uint64_t>(
            std::llround(std::abs(d[i]) * 1e6));
      }
      break;
    }
  }
  return v;
}

}  // namespace hs::data
