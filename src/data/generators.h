// Synthetic workload generation.
//
// The paper evaluates on uniformly distributed 64-bit doubles only (Section
// IV-A: hybrid sorting is transfer-dominated, hence distribution-oblivious).
// We provide the uniform generator used by every bench plus the distributions
// common in the sorting literature (PARADIS, Polychroniou & Ross) so tests
// can probe the real algorithms' sensitivity — and demonstrate the paper's
// obliviousness claim in an ablation bench.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace hs::data {

enum class Distribution {
  kUniform,        // U[0, 1) — the paper's workload
  kGaussian,       // N(0, 1)
  kSorted,         // already ascending
  kReverseSorted,  // descending
  kNearlySorted,   // ascending with ~1% random swaps
  kDuplicateHeavy, // few distinct values
  kAllEqual,       // single value
  kZipf,           // skewed ranks, s = 1.0
  kSaw,            // sawtooth: ascending ramps of a fixed period
  kRuns,           // concatenation of 16 independently sorted runs
  kPartialSorted,  // sorted prefix (half), random tail
};

std::string_view distribution_name(Distribution d);

/// Generates `n` doubles from `dist` deterministically from `seed`.
std::vector<double> generate(Distribution dist, std::uint64_t n,
                             std::uint64_t seed);

/// Generates `n` uint64 keys (for radix tests) from `dist`.
std::vector<std::uint64_t> generate_keys(Distribution dist, std::uint64_t n,
                                         std::uint64_t seed);

}  // namespace hs::data
