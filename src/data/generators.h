// Synthetic workload generation — the distribution x element-lane matrix.
//
// The paper evaluates on uniformly distributed 64-bit doubles only (Section
// IV-A: hybrid sorting is transfer-dominated, hence distribution-oblivious).
// We provide the uniform generator used by every bench plus the distributions
// common in the sorting literature (PARADIS, Polychroniou & Ross) so tests
// can probe the real algorithms' sensitivity — and demonstrate the paper's
// obliviousness claim in an ablation bench.
//
// Every generator is seed-deterministic: a (distribution, lane, n, seed)
// tuple produces byte-identical buffers on every run and platform
// (tests/test_seed_determinism.cpp pins this across processes), which is what
// lets the conformance matrix pin planner decisions per cell.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace hs::data {

enum class Distribution {
  kUniform,        // U[0, 1) — the paper's workload
  kGaussian,       // N(0, 1)
  kSorted,         // already ascending
  kReverseSorted,  // descending
  kNearlySorted,   // ascending with ~1% random swaps
  kDuplicateHeavy, // few distinct values
  kAllEqual,       // single value
  kZipf,           // skewed ranks, s = 1.0
  kSaw,            // sawtooth: ascending ramps of a fixed period
  kRuns,           // concatenation of 16 independently sorted runs
  kPartialSorted,  // sorted prefix (half), random tail
  kOrganPipe,      // ascending half, descending half (merge worst case)
  // New members go at the end: the service manifest serialises the integer
  // value, so reordering would corrupt resumed jobs.
};

std::string_view distribution_name(Distribution d);

/// Every distribution, in enum order. size() doubles as the valid-range
/// bound for deserialised values.
std::span<const Distribution> all_distributions();

/// Parses a distribution_name() string; nullopt for unknown names.
std::optional<Distribution> distribution_from_name(std::string_view name);

/// Generates `n` doubles from `dist` deterministically from `seed`.
std::vector<double> generate(Distribution dist, std::uint64_t n,
                             std::uint64_t seed);

/// Generates `n` uint64 keys (for radix tests) from `dist`.
std::vector<std::uint64_t> generate_keys(Distribution dist, std::uint64_t n,
                                         std::uint64_t seed);

/// Typed value generation for the 32-bit lanes. The i32 instantiation
/// centres ordered shapes around zero so negative values (and the sign-flip
/// bijection) are actually exercised. Instantiated for float, int32_t, and
/// uint32_t.
template <typename T>
std::vector<T> generate_values(Distribution dist, std::uint64_t n,
                               std::uint64_t seed);

/// Generates `n` records of the named element lane (cpu::ElementOps
/// registry name: f64|u64|kv64|f32|i32|u32|kv64p24) as a raw byte buffer.
/// Key/value lanes take their keys from generate_keys and derive value /
/// payload bytes deterministically from the record index, so stability is
/// observable. Aborts on unknown lane names — validate against the registry
/// first.
std::vector<std::byte> generate_lane(std::string_view lane, Distribution dist,
                                     std::uint64_t n, std::uint64_t seed);

}  // namespace hs::data
