#include "data/sketch.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

namespace hs::data {
namespace {

constexpr std::uint64_t kBlockLen = 64;

double safe_log2(double x) { return std::log2(std::max(1.0, x)); }

/// Core sketch over an already-collected sample. `block_len` tells the
/// adjacency pass where block boundaries fall (pairs across boundaries are
/// not adjacent in the input and must not vote on presortedness).
InputSketch sketch_sample(std::vector<std::uint64_t>& sample,
                          std::uint64_t block_len, std::uint64_t population) {
  InputSketch sk;
  sk.population = population;
  sk.sampled = sample.size();
  if (population == 0) return sk;
  if (sample.empty()) {
    // Nothing examined: keep the conservative defaults, scaled to n.
    sk.log2_distinct = std::min(64.0, safe_log2(static_cast<double>(population)));
    sk.est_runs = static_cast<double>(population) / 2.0;
    return sk;
  }
  const std::uint64_t s = sample.size();

  // Per-byte-position histograms in one sweep: entropy + trivial positions.
  std::array<std::array<std::uint64_t, 256>, 8> hist{};
  for (const std::uint64_t k : sample) {
    for (unsigned d = 0; d < 8; ++d) ++hist[d][(k >> (d * 8)) & 0xff];
  }
  sk.entropy_bits = 0.0;
  sk.nontrivial_bytes = 0;
  for (unsigned d = 0; d < 8; ++d) {
    unsigned occupied = 0;
    double h = 0.0;
    for (const std::uint64_t c : hist[d]) {
      if (c == 0) continue;
      ++occupied;
      const double p = static_cast<double>(c) / static_cast<double>(s);
      h -= p * std::log2(p);
    }
    sk.entropy_bits += h;
    if (occupied > 1) ++sk.nontrivial_bytes;
  }

  // Presortedness from adjacent in-block pairs; runs scale the observed
  // descent rate to the population.
  std::uint64_t pairs = 0, ascending = 0;
  for (std::uint64_t i = 1; i < s; ++i) {
    if (block_len != 0 && i % block_len == 0) continue;  // block boundary
    ++pairs;
    if (sample[i - 1] <= sample[i]) ++ascending;
  }
  const double descent_rate =
      pairs == 0 ? 0.0
                 : static_cast<double>(pairs - ascending) /
                       static_cast<double>(pairs);
  sk.presortedness = pairs == 0 ? 1.0
                                : static_cast<double>(ascending) /
                                      static_cast<double>(pairs);
  sk.est_runs = 1.0 + descent_rate * static_cast<double>(population - 1);

  // Duplicates + collision-corrected cardinality on the sorted sample.
  std::sort(sample.begin(), sample.end());
  std::uint64_t distinct = 0, collisions = 0, run = 0;
  for (std::uint64_t i = 0; i < s; ++i) {
    if (i == 0 || sample[i] != sample[i - 1]) {
      ++distinct;
      run = 1;
    } else {
      collisions += run;  // accumulates c*(c-1)/2 pair by pair
      ++run;
    }
  }
  sk.dup_ratio = static_cast<double>(s - distinct) / static_cast<double>(s);
  const double pop = static_cast<double>(population);
  double est_distinct;
  if (collisions == 0 || s < 2) {
    est_distinct = pop;  // no collision evidence: assume all-distinct
  } else {
    const double total_pairs = 0.5 * static_cast<double>(s) *
                               static_cast<double>(s - 1);
    const double p_hat = static_cast<double>(collisions) / total_pairs;
    est_distinct = std::clamp(1.0 / p_hat, 1.0, pop);
  }
  sk.log2_distinct = safe_log2(est_distinct);
  return sk;
}

}  // namespace

InputSketch sketch_keys(std::span<const std::uint64_t> keys,
                        std::uint64_t population, std::uint64_t max_sample) {
  if (population == 0) population = keys.size();
  std::vector<std::uint64_t> sample;
  const std::uint64_t n = keys.size();
  std::uint64_t block_len = std::min(kBlockLen, n);
  if (n <= max_sample) {
    sample.assign(keys.begin(), keys.end());
    block_len = 0;  // one contiguous block: every adjacent pair is real
  } else {
    const std::uint64_t blocks =
        std::max<std::uint64_t>(1, max_sample / block_len);
    sample.reserve(blocks * block_len);
    for (std::uint64_t b = 0; b < blocks; ++b) {
      // Even spread of block starts across [0, n - block_len].
      const std::uint64_t start =
          blocks == 1 ? 0 : (n - block_len) * b / (blocks - 1);
      for (std::uint64_t i = 0; i < block_len; ++i)
        sample.push_back(keys[start + i]);
    }
  }
  return sketch_sample(sample, block_len, population);
}

InputSketch sketch_records(
    const std::byte* data, std::uint64_t elems, std::size_t elem_size,
    const std::function<std::uint64_t(const std::byte*)>& extract_key,
    std::uint64_t max_sample) {
  if (data == nullptr || elems == 0 || !extract_key) {
    return uniform_sketch(elems);
  }
  std::vector<std::uint64_t> sample;
  std::uint64_t block_len = std::min(kBlockLen, elems);
  if (elems <= max_sample) {
    sample.reserve(elems);
    for (std::uint64_t i = 0; i < elems; ++i)
      sample.push_back(extract_key(data + i * elem_size));
    block_len = 0;
  } else {
    const std::uint64_t blocks =
        std::max<std::uint64_t>(1, max_sample / block_len);
    sample.reserve(blocks * block_len);
    for (std::uint64_t b = 0; b < blocks; ++b) {
      const std::uint64_t start =
          blocks == 1 ? 0 : (elems - block_len) * b / (blocks - 1);
      for (std::uint64_t i = 0; i < block_len; ++i)
        sample.push_back(extract_key(data + (start + i) * elem_size));
    }
  }
  return sketch_sample(sample, block_len, elems);
}

InputSketch uniform_sketch(std::uint64_t population) {
  InputSketch sk;
  sk.population = population;
  sk.log2_distinct = std::min(64.0, safe_log2(static_cast<double>(population)));
  sk.est_runs = population == 0 ? 0.0 : static_cast<double>(population) / 2.0;
  return sk;
}

}  // namespace hs::data
