// Cheap input distribution sketch — the statistics the sort planner
// (core/sort_plan.h) needs to choose an on-device engine, and nothing more.
//
// The sketcher reads a bounded sample (default 4096 keys) taken as evenly
// spread *blocks* of consecutive records rather than isolated points:
// adjacency inside a block is real adjacency in the input, so the
// presortedness and run-length estimates stay valid, while spreading the
// blocks keeps global statistics (entropy, duplicates) unbiased for the
// stationary generators the benches use. Everything is computed in the u64
// radix-key image (doubles through the order-preserving bijection), the key
// space every engine actually sorts in.
//
// Cardinality uses the collision-corrected (inverse Simpson index) estimator:
// with s sampled keys and C intra-sample collision pairs, the collision
// probability estimate p = C / C(s,2) gives distinct ~= 1/p. A sample with
// no collisions cannot distinguish "all distinct" from "more distinct values
// than s^2" — the estimate then falls back to the population size, which is
// the right answer for the engines' cost models either way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>

namespace hs::data {

/// Distribution statistics for a (prospective) sort input of `population`
/// keys. Defaults describe a full-entropy uniform input — the conservative
/// assumption when nothing was sampled.
struct InputSketch {
  std::uint64_t population = 0;  ///< keys the sketch stands for (n)
  std::uint64_t sampled = 0;     ///< keys actually examined (0: assumed)

  /// Sum over the 8 key byte positions of the sampled byte-value Shannon
  /// entropy, in bits (64 = full-entropy keys).
  double entropy_bits = 64.0;

  /// Key byte positions with >= 2 distinct sampled values. A trivial
  /// position's counting scatter is the identity, so this is exactly the
  /// scatter-pass count the radix engines (host LSD and device hybrid MSD)
  /// will execute.
  unsigned nontrivial_bytes = 8;

  /// Fraction of sampled keys that duplicate an earlier sampled key.
  double dup_ratio = 0.0;

  /// log2 of the collision-corrected distinct-key estimate, scaled to the
  /// population (<= log2(population)).
  double log2_distinct = 64.0;

  /// Fraction of adjacent in-block pairs already in order (1.0 = sorted,
  /// ~0.5 = random, 0.0 = reversed).
  double presortedness = 0.5;

  /// Estimated number of ascending runs in the full input (1 = sorted).
  double est_runs = 0.0;
};

/// Sketches `keys` (already in radix-key space) as a stand-in for a
/// `population`-key input; population 0 means the span IS the population.
/// `max_sample` bounds the keys examined.
InputSketch sketch_keys(std::span<const std::uint64_t> keys,
                        std::uint64_t population = 0,
                        std::uint64_t max_sample = 4096);

/// Sketches `elems` records of `elem_size` bytes at `data`, reading each
/// sampled record's key through `extract_key` (cpu::ElementOps::extract_key).
InputSketch sketch_records(
    const std::byte* data, std::uint64_t elems, std::size_t elem_size,
    const std::function<std::uint64_t(const std::byte*)>& extract_key,
    std::uint64_t max_sample = 4096);

/// The no-information sketch: full-entropy uniform keys of `population`.
InputSketch uniform_sketch(std::uint64_t population);

}  // namespace hs::data
