#include "data/verify.h"

#include <algorithm>
#include <bit>

#include "common/rng.h"

namespace hs::data {
namespace {

std::uint64_t hash_u64(std::uint64_t x) {
  std::uint64_t s = x;
  return hs::splitmix64(s);
}

}  // namespace

bool is_sorted_ascending(std::span<const double> v) {
  return std::is_sorted(v.begin(), v.end());
}

bool is_sorted_ascending(std::span<const std::uint64_t> v) {
  return std::is_sorted(v.begin(), v.end());
}

std::uint64_t multiset_fingerprint(std::span<const double> v) {
  std::uint64_t acc = 0;
  for (const double d : v) acc += hash_u64(std::bit_cast<std::uint64_t>(d));
  return acc;
}

std::uint64_t multiset_fingerprint(std::span<const std::uint64_t> v) {
  std::uint64_t acc = 0;
  for (const std::uint64_t k : v) acc += hash_u64(k);
  return acc;
}

bool is_sorted_permutation(std::span<const double> input,
                           std::span<const double> output) {
  return input.size() == output.size() && is_sorted_ascending(output) &&
         multiset_fingerprint(input) == multiset_fingerprint(output);
}

}  // namespace hs::data
