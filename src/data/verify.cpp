#include "data/verify.h"

#include <algorithm>
#include <bit>

#include "common/assert.h"
#include "common/rng.h"
#include "cpu/total_order.h"  // header-only: no hs_cpu link dependency

namespace hs::data {
namespace {

std::uint64_t hash_u64(std::uint64_t x) {
  std::uint64_t s = x;
  return hs::splitmix64(s);
}

}  // namespace

bool is_sorted_ascending(std::span<const double> v) {
  return std::is_sorted(v.begin(), v.end(), cpu::TotalOrderLess<double>{});
}

bool is_sorted_ascending(std::span<const std::uint64_t> v) {
  return std::is_sorted(v.begin(), v.end());
}

bool is_sorted_ascending(std::span<const float> v) {
  return std::is_sorted(v.begin(), v.end(), cpu::TotalOrderLess<float>{});
}

bool is_sorted_ascending(std::span<const std::int32_t> v) {
  return std::is_sorted(v.begin(), v.end());
}

bool is_sorted_ascending(std::span<const std::uint32_t> v) {
  return std::is_sorted(v.begin(), v.end());
}

std::uint64_t multiset_fingerprint(std::span<const double> v) {
  std::uint64_t acc = 0;
  for (const double d : v) acc += hash_u64(std::bit_cast<std::uint64_t>(d));
  return acc;
}

std::uint64_t multiset_fingerprint(std::span<const std::uint64_t> v) {
  std::uint64_t acc = 0;
  for (const std::uint64_t k : v) acc += hash_u64(k);
  return acc;
}

std::uint64_t multiset_fingerprint(std::span<const float> v) {
  std::uint64_t acc = 0;
  for (const float f : v) acc += hash_u64(std::bit_cast<std::uint32_t>(f));
  return acc;
}

std::uint64_t multiset_fingerprint(std::span<const std::int32_t> v) {
  std::uint64_t acc = 0;
  for (const std::int32_t x : v) {
    acc += hash_u64(std::bit_cast<std::uint32_t>(x));
  }
  return acc;
}

std::uint64_t multiset_fingerprint(std::span<const std::uint32_t> v) {
  std::uint64_t acc = 0;
  for (const std::uint32_t x : v) acc += hash_u64(x);
  return acc;
}

bool is_sorted_permutation(std::span<const double> input,
                           std::span<const double> output) {
  return input.size() == output.size() && is_sorted_ascending(output) &&
         multiset_fingerprint(input) == multiset_fingerprint(output);
}

bool is_sorted_by_key(
    std::span<const std::byte> data, std::size_t elem_size,
    const std::function<std::uint64_t(const std::byte*)>& extract_key) {
  HS_EXPECTS(elem_size > 0 && data.size() % elem_size == 0);
  const std::size_t n = data.size() / elem_size;
  if (n < 2) return true;
  std::uint64_t prev = extract_key(data.data());
  for (std::size_t i = 1; i < n; ++i) {
    const std::uint64_t cur = extract_key(data.data() + i * elem_size);
    if (cur < prev) return false;
    prev = cur;
  }
  return true;
}

std::uint64_t multiset_fingerprint_bytes(std::span<const std::byte> data,
                                         std::size_t elem_size) {
  HS_EXPECTS(elem_size > 0 && data.size() % elem_size == 0);
  std::uint64_t acc = 0;
  for (std::size_t off = 0; off < data.size(); off += elem_size) {
    // FNV-1a over the record bytes, then one splitmix finalise: records
    // differing in any byte (key or payload) hash to unrelated values.
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (std::size_t j = 0; j < elem_size; ++j) {
      h ^= static_cast<std::uint64_t>(data[off + j]);
      h *= 0x100000001B3ull;
    }
    acc += hash_u64(h);
  }
  return acc;
}

}  // namespace hs::data
