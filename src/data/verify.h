// Output verification: sortedness plus permutation checking.
//
// A sorter can pass an is_sorted check while losing or duplicating elements;
// the permutation check compares an order-independent multiset fingerprint
// (sum of per-element hashes) of input and output, so tests catch dropped or
// fabricated elements without O(n log n) re-sorting.
//
// Float sortedness is checked under the SAME total order the engines sort in
// (cpu/total_order.h): -NaN < -Inf < ... < -0.0 < +0.0 < ... < +Inf < +NaN.
// That makes the check strictly stronger than std::is_sorted with operator<
// — an output that places +0.0 before -0.0, or scatters NaNs anywhere but
// the deterministic tails, is reported as unsorted. Fingerprints hash bit
// patterns, so -0.0 and +0.0 (and distinct NaN payloads) stay distinct
// elements of the multiset.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>

namespace hs::data {

bool is_sorted_ascending(std::span<const double> v);
bool is_sorted_ascending(std::span<const std::uint64_t> v);
bool is_sorted_ascending(std::span<const float> v);
bool is_sorted_ascending(std::span<const std::int32_t> v);
bool is_sorted_ascending(std::span<const std::uint32_t> v);

/// Order-independent multiset fingerprint (commutative hash accumulation).
std::uint64_t multiset_fingerprint(std::span<const double> v);
std::uint64_t multiset_fingerprint(std::span<const std::uint64_t> v);
std::uint64_t multiset_fingerprint(std::span<const float> v);
std::uint64_t multiset_fingerprint(std::span<const std::int32_t> v);
std::uint64_t multiset_fingerprint(std::span<const std::uint32_t> v);

/// True iff `output` is a sorted permutation of `input`.
bool is_sorted_permutation(std::span<const double> input,
                           std::span<const double> output);

/// Lane-generic sortedness over a raw record buffer: `extract_key` maps each
/// `elem_size`-byte record to its u64 total-order key image
/// (cpu::ElementOps::extract_key), so one check covers every registered
/// lane. `data.size()` must be a multiple of `elem_size`.
bool is_sorted_by_key(
    std::span<const std::byte> data, std::size_t elem_size,
    const std::function<std::uint64_t(const std::byte*)>& extract_key);

/// Lane-generic multiset fingerprint over whole records (key AND payload
/// bytes), so a merge that reorders payloads among equal keys — or
/// fabricates records — changes the fingerprint.
std::uint64_t multiset_fingerprint_bytes(std::span<const std::byte> data,
                                         std::size_t elem_size);

}  // namespace hs::data
