// Output verification: sortedness plus permutation checking.
//
// A sorter can pass an is_sorted check while losing or duplicating elements;
// the permutation check compares an order-independent multiset fingerprint
// (sum of per-element hashes) of input and output, so tests catch dropped or
// fabricated elements without O(n log n) re-sorting.
#pragma once

#include <cstdint>
#include <span>

namespace hs::data {

bool is_sorted_ascending(std::span<const double> v);
bool is_sorted_ascending(std::span<const std::uint64_t> v);

/// Order-independent multiset fingerprint (commutative hash accumulation).
std::uint64_t multiset_fingerprint(std::span<const double> v);
std::uint64_t multiset_fingerprint(std::span<const std::uint64_t> v);

/// True iff `output` is a sorted permutation of `input`.
bool is_sorted_permutation(std::span<const double> input,
                           std::span<const double> output);

}  // namespace hs::data
