#include "io/external_sort.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "core/het_sorter.h"
#include "core/memory_governor.h"
#include "cpu/element_ops.h"
#include "io/journal.h"
#include "io/run_file.h"
#include "obs/counters.h"
#include "obs/span.h"

namespace hs::io {
namespace {

std::string run_path(const ExternalSortConfig& cfg, std::uint64_t i) {
  return cfg.temp_dir + "/hetsort_run_" + std::to_string(i) + ".bin";
}

/// Chunk boundaries are a pure function of (index, n, budget): run i always
/// covers the same input elements, which is what makes journal entries and
/// re-sorted replacement runs interchangeable with the originals.
struct ChunkExtent {
  std::uint64_t start = 0;
  std::uint64_t count = 0;
};

ChunkExtent chunk_extent(std::uint64_t index, std::uint64_t n,
                         std::uint64_t budget) {
  const std::uint64_t start = index * budget;
  return {start, std::min(budget, n - start)};
}

/// Cooperative cancellation gate: throws SortCancelled when the caller's
/// token flipped. Placed at chunk and merge-block boundaries so the on-disk
/// state at the throw is always crash-consistent.
void check_cancel(const ExternalSortConfig& cfg, std::string_view where) {
  if (cfg.cancel != nullptr &&
      cfg.cancel->load(std::memory_order_acquire)) {
    throw SortCancelled(where);
  }
}

/// Cleanup with crash-recovery semantics. On failure unwind only the files
/// that never reached the journal are removed — journaled runs, quarantine
/// evidence and the manifest itself survive for `resume`. commit_success()
/// removes everything.
class ScopedRunGuard {
 public:
  ScopedRunGuard(std::string temp_dir, bool journal_enabled)
      : temp_dir_(std::move(temp_dir)), journal_enabled_(journal_enabled) {}
  ScopedRunGuard(const ScopedRunGuard&) = delete;
  ScopedRunGuard& operator=(const ScopedRunGuard&) = delete;
  ~ScopedRunGuard() {
    if (committed_) return;
    for (const Entry& e : entries_) {
      if (!e.journaled) std::remove(e.path.c_str());
    }
  }

  void add(std::string path, bool journaled = false) {
    entries_.push_back({std::move(path), journaled});
  }
  void mark_last_journaled() { entries_.back().journaled = true; }
  void add_quarantined(std::string path) {
    quarantined_.push_back(std::move(path));
  }

  void commit_success() {
    for (const Entry& e : entries_) std::remove(e.path.c_str());
    for (const std::string& q : quarantined_) std::remove(q.c_str());
    if (journal_enabled_) remove_journal(temp_dir_);
    committed_ = true;
  }

 private:
  struct Entry {
    std::string path;
    bool journaled = false;
  };
  std::string temp_dir_;
  bool journal_enabled_;
  bool committed_ = false;
  std::vector<Entry> entries_;
  std::vector<std::string> quarantined_;
};

void accumulate(core::RecoveryStats& into, const core::RecoveryStats& r) {
  into.faults_injected += r.faults_injected;
  into.transfer_retries += r.transfer_retries;
  into.batch_resplits += r.batch_resplits;
  into.devices_blacklisted += r.devices_blacklisted;
  into.attempts += r.attempts - 1;  // count extra attempts, not baselines
  into.ps_shrinks += r.ps_shrinks;
  into.cpu_fallback = into.cpu_fallback || r.cpu_fallback;
  into.spilled = into.spilled || r.spilled;
  into.recovery_seconds += r.recovery_seconds;
}

std::uint64_t file_size_or_zero(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

/// Sets a failed run aside as "<path>.quarantined" (evidence, removed only
/// on job success) and tallies its bytes. Missing files quarantine to
/// nothing — the accounting still records the attempt.
void quarantine_run(const std::string& path, ExternalSortStats& stats,
                    ScopedRunGuard& guard) {
  const std::uint64_t bytes = file_size_or_zero(path);
  const std::string q = path + ".quarantined";
  std::error_code ec;
  std::filesystem::rename(path, q, ec);
  if (ec) {
    std::remove(path.c_str());  // cannot set aside: at least get it out of
                                // the merge set
  } else {
    guard.add_quarantined(q);
  }
  ++stats.runs_quarantined;
  stats.quarantined_bytes += bytes;
  obs::count(obs::Counter::kRunsQuarantined, 1);
  obs::count(obs::Counter::kBytesQuarantined, bytes);
}

/// Sorts chunk `index` of the input through the pipeline and writes its
/// framed run file (re-writing up to max_io_retries times on injected or
/// real write failures). Returns the run path.
std::string form_run(std::uint64_t index, const std::string& input_path,
                     std::uint64_t n, const ExternalSortConfig& cfg,
                     core::HeterogeneousSorter& sorter,
                     sim::FaultInjector& io_injector,
                     ExternalSortStats& stats) {
  const ChunkExtent ext = chunk_extent(index, n, cfg.memory_budget_elems);
  std::vector<double> chunk =
      read_doubles_range(input_path, ext.start, ext.count);
  const core::Report r = sorter.sort(chunk);
  stats.pipeline_virtual_seconds += r.end_to_end;
  accumulate(stats.pipeline_recovery, r.recovery);

  const std::string path = run_path(cfg, index);
  for (unsigned tries = 0;; ++tries) {
    try {
      BufferedRunWriter out(path, cfg.io_buffer_elems, &io_injector,
                            RunFormat::kFramed);
      out.append(std::span<const double>(chunk));
      out.close();
      break;
    } catch (const IoError&) {
      std::remove(path.c_str());
      if (tries >= cfg.max_io_retries) throw;
      ++stats.io_retries;
    }
  }
  return path;
}

/// k-way streaming merge of the framed `runs` into raw `merge_target`.
/// Throws IoError on (possibly injected) read/write failures and
/// RunFileCorrupt when a run fails block verification mid-stream; the caller
/// owns retries and quarantine.
void merge_runs(const std::vector<std::string>& runs,
                const std::string& merge_target, const ExternalSortConfig& cfg,
                sim::FaultInjector* injector) {
  // Cancellation granularity inside the (possibly long) merge loop: check
  // the token every block of merged elements, not per element.
  constexpr std::uint64_t kCancelCheckStride = 4096;
  std::uint64_t merged = 0;
  std::vector<BufferedRunReader> readers;
  readers.reserve(runs.size());
  for (const auto& path : runs) {
    readers.emplace_back(path, cfg.io_buffer_elems, injector,
                         RunFormat::kFramed);
  }
  BufferedRunWriter out(merge_target, cfg.io_buffer_elems, injector,
                        RunFormat::kRaw);
  // Tournament over reader heads; indices beat ties like the LoserTree, so
  // equal keys drain in run order and the merge is deterministic.
  // (Readers pull from disk, so the in-memory LoserTree over spans does
  // not apply directly; k is small, a linear scan per element suffices
  // for the I/O-bound merge.)
  for (;;) {
    int best = -1;
    for (std::size_t i = 0; i < readers.size(); ++i) {
      if (readers[i].empty()) continue;
      if (best < 0 ||
          readers[i].head() < readers[static_cast<std::size_t>(best)].head()) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    auto& r = readers[static_cast<std::size_t>(best)];
    out.append(r.head());
    r.pop();
    if (++merged % kCancelCheckStride == 0) check_cancel(cfg, "merge");
  }
  out.close();
}

}  // namespace

ExternalSortStats external_sort_file(const std::string& input_path,
                                     const std::string& output_path,
                                     const ExternalSortConfig& cfg) {
  HS_EXPECTS(cfg.memory_budget_elems > 0);
  HS_EXPECTS(cfg.io_buffer_elems > 0);
  const auto wall_start = std::chrono::steady_clock::now();
  obs::ScopedSpan sort_span("external-sort", "ExternalSort");

  ExternalSortStats stats;
  sim::FaultInjector io_injector(cfg.io_faults);
  stats.n = count_doubles(input_path);
  if (stats.n == 0) {
    write_doubles(output_path, {});
    if (cfg.journal) remove_journal(cfg.temp_dir);
    return stats;
  }

  const std::uint64_t num_chunks =
      (stats.n + cfg.memory_budget_elems - 1) / cfg.memory_budget_elems;

  JobJournal journal;
  journal.input_path = input_path;
  journal.output_path = output_path;
  journal.n = stats.n;
  journal.budget_elems = cfg.memory_budget_elems;
  journal.block_elems = cfg.io_buffer_elems;

  ScopedRunGuard guard(cfg.temp_dir, cfg.journal);
  std::vector<std::string> run_paths(num_chunks);
  std::vector<char> have_run(num_chunks, 0);
  std::vector<char> resort(num_chunks, 0);  // replacing a quarantined run

  // --- resume: adopt the prior journal, revalidate, quarantine -------------
  if (cfg.resume && cfg.journal) {
    obs::ScopedSpan span("revalidate-runs", "ExternalSort");
    const auto prior = load_journal(cfg.temp_dir);
    if (prior && prior->compatible_with(journal) &&
        prior->input_path == input_path) {
      stats.resumed = true;
      for (const JournalRun& r : prior->runs) {
        ++stats.runs_revalidated;
        const ChunkExtent ext =
            r.index < num_chunks
                ? chunk_extent(r.index, stats.n, cfg.memory_budget_elems)
                : ChunkExtent{};
        bool intact = r.index < num_chunks && r.start_elem == ext.start &&
                      r.elem_count == ext.count;
        if (intact) {
          try {
            stats.revalidated_bytes +=
                verify_run_file(r.path, cfg.io_buffer_elems, &io_injector);
          } catch (const IoError&) {  // includes RunFileCorrupt
            intact = false;
          }
        }
        if (intact) {
          run_paths[r.index] = r.path;
          have_run[r.index] = 1;
          journal.runs.push_back(r);
          guard.add(r.path, /*journaled=*/true);
          ++stats.runs_reused;
          obs::count(obs::Counter::kRunsRevalidated, 1);
        } else {
          if (r.index < num_chunks) resort[r.index] = 1;
          quarantine_run(r.path, stats, guard);
        }
      }
      // Re-persist so the manifest reflects only runs that survived
      // revalidation — a second crash must not resurrect quarantined ones.
      save_journal(journal, cfg.temp_dir);
    }
  }

  // --- pass 1: run formation through the heterogeneous pipeline ------------
  core::HeterogeneousSorter sorter(cfg.platform, cfg.pipeline);
  {
    obs::ScopedSpan span("run-formation", "ExternalSort");
    std::uint64_t durable_new = 0;
    for (std::uint64_t i = 0; i < num_chunks; ++i) {
      if (have_run[i]) continue;
      check_cancel(cfg, "run-formation");
      const std::string path =
          form_run(i, input_path, stats.n, cfg, sorter, io_injector, stats);
      guard.add(path, /*journaled=*/false);
      const ChunkExtent ext =
          chunk_extent(i, stats.n, cfg.memory_budget_elems);
      journal.runs.push_back({i, ext.start, ext.count, path});
      if (cfg.journal) {
        // The run becomes durable only once the manifest rename lands: a
        // kill between file close and journal save re-sorts this chunk.
        save_journal(journal, cfg.temp_dir);
        guard.mark_last_journaled();
      }
      if (resort[i]) {
        ++stats.chunks_resorted;
        obs::count(obs::Counter::kChunksResorted, 1);
      }
      run_paths[i] = path;
      have_run[i] = 1;
      ++durable_new;
      if (cfg.simulate_crash_after_runs > 0 &&
          durable_new >= cfg.simulate_crash_after_runs) {
        throw SimulatedCrash(durable_new);
      }
    }
  }
  stats.num_runs = num_chunks;

  // --- pass 2: k-way streaming merge ----------------------------------------
  // The merge writes a side file and renames it in, so the real output path
  // flips atomically from old content to sorted content (and in-place sorts,
  // output == input, keep the input readable for chunk re-sorts until the
  // very end).
  const std::string merge_target = output_path + ".hetsort_part";
  guard.add(merge_target, /*journaled=*/false);
  {
    obs::ScopedSpan span("merge", "ExternalSort");
    check_cancel(cfg, "merge");
    const std::uint64_t max_corrupt_recoveries =
        num_chunks * (static_cast<std::uint64_t>(cfg.max_io_retries) + 1);
    std::uint64_t corrupt_recoveries = 0;
    for (unsigned tries = 0;;) {
      try {
        merge_runs(run_paths, merge_target, cfg, &io_injector);
        break;
      } catch (const RunFileCorrupt& e) {
        // A run went bad under the merge's feet (bit rot, torn overwrite, or
        // an injected kFileCorrupt): quarantine it, re-sort exactly its
        // chunk, and restart the merge with the replacement.
        std::remove(merge_target.c_str());
        const auto it =
            std::find(run_paths.begin(), run_paths.end(), e.path());
        if (it == run_paths.end() ||
            corrupt_recoveries >= max_corrupt_recoveries) {
          throw;
        }
        ++corrupt_recoveries;
        const auto idx =
            static_cast<std::uint64_t>(it - run_paths.begin());
        quarantine_run(e.path(), stats, guard);
        form_run(idx, input_path, stats.n, cfg, sorter, io_injector, stats);
        ++stats.chunks_resorted;
        obs::count(obs::Counter::kChunksResorted, 1);
      } catch (const IoError&) {
        std::remove(merge_target.c_str());
        if (tries >= cfg.max_io_retries) throw;
        ++tries;
        ++stats.io_retries;
      }
    }
  }
  if (std::rename(merge_target.c_str(), output_path.c_str()) != 0) {
    std::remove(merge_target.c_str());
    throw IoError("cannot rename " + merge_target + " to " + output_path);
  }

  guard.commit_success();
  stats.io_faults_injected = io_injector.stats().total();
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return stats;
}

ExternalSortStats resume_external_sort(const std::string& input_path,
                                       const std::string& output_path,
                                       ExternalSortConfig cfg) {
  cfg.journal = true;
  cfg.resume = true;
  return external_sort_file(input_path, output_path, cfg);
}

// ---------------------------------------------------------------------------
// Spill backend: the governor's out-of-core escape hatch.
// ---------------------------------------------------------------------------

namespace {

/// Degrades an in-memory sort that busts the host budget into this module:
/// dump the bytes to a private temp directory, external-sort them with a
/// budget-fitting chunk size, stream the result back in place.
class DiskSpillBackend final : public core::SpillBackend {
 public:
  bool can_spill(const cpu::ElementOps& ops) const override {
    // The run-file format stores IEEE-754 doubles; other element types
    // would need their own serialisation.
    return std::string_view(ops.type_name) == "f64" &&
           ops.elem_size == sizeof(double);
  }

  core::Report spill_sort(std::span<std::byte> data, std::uint64_t n,
                          const cpu::ElementOps& ops,
                          const model::Platform& platform,
                          const core::SortConfig& cfg,
                          std::uint64_t chunk_elems) override {
    HS_EXPECTS(data.size() == n * sizeof(double));
    // A private directory per spill keeps nested jobs (an external sort
    // whose own run formation spills) from colliding on run names or the
    // journal.
    static std::atomic<std::uint64_t> seq{0};
    const std::string dir = cfg.spill_dir + "/hetsort_spill_" +
                            std::to_string(seq.fetch_add(1));
    std::filesystem::create_directories(dir);
    const std::string in = dir + "/in.bin";
    const std::string out = dir + "/out.bin";
    try {
      write_doubles(
          in, {reinterpret_cast<const double*>(data.data()),
               static_cast<std::size_t>(n)});

      ExternalSortConfig ecfg;
      ecfg.platform = platform;
      ecfg.pipeline = cfg;
      // Chunks fit the budget by construction; a budget on the inner
      // pipeline would recurse into this backend.
      ecfg.pipeline.host_budget_bytes = 0;
      ecfg.memory_budget_elems = std::max<std::uint64_t>(1, chunk_elems);
      ecfg.io_buffer_elems =
          std::min<std::uint64_t>(ecfg.memory_budget_elems, 1 << 16);
      ecfg.temp_dir = dir;
      ecfg.journal = false;  // internal scratch job, nothing to resume into
      const ExternalSortStats stats = external_sort_file(in, out, ecfg);

      // Stream the sorted file back so the peak stays ~chunk-sized, not +n.
      BufferedRunReader sorted(out, 1 << 16);
      double* d = reinterpret_cast<double*>(data.data());
      for (std::uint64_t i = 0; i < n; ++i) {
        HS_ASSERT(!sorted.empty());
        d[i] = sorted.head();
        sorted.pop();
      }

      core::Report r;
      r.n = n;
      r.num_batches = stats.num_runs;
      r.label = cfg.label() + "+Spill";
      r.element_type = ops.type_name;
      r.end_to_end = stats.pipeline_virtual_seconds;
      r.reference_cpu_time =
          platform.cpu_sort.time(n, platform.reference_threads());
      r.recovery = stats.pipeline_recovery;
      r.recovery.spilled = true;

      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
      return r;
    } catch (...) {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
      throw;
    }
  }
};

DiskSpillBackend g_disk_spill;

}  // namespace

void ensure_spill_backend() { core::set_spill_backend(&g_disk_spill); }

namespace {
// Linking hs_io's external-sort object registers the backend at static
// initialisation; ensure_spill_backend() stays available for explicitness
// (and for builds that dead-strip unused objects).
const bool g_spill_registered = (ensure_spill_backend(), true);
}  // namespace

}  // namespace hs::io
