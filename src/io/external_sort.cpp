#include "io/external_sort.h"

#include <chrono>
#include <cstdio>
#include <memory>

#include "common/assert.h"
#include "core/het_sorter.h"
#include "cpu/loser_tree.h"
#include "io/run_file.h"

namespace hs::io {
namespace {

std::string run_path(const ExternalSortConfig& cfg, std::uint64_t i) {
  return cfg.temp_dir + "/hetsort_run_" + std::to_string(i) + ".bin";
}

}  // namespace

ExternalSortStats external_sort_file(const std::string& input_path,
                                     const std::string& output_path,
                                     const ExternalSortConfig& cfg) {
  HS_EXPECTS(cfg.memory_budget_elems > 0);
  HS_EXPECTS(cfg.io_buffer_elems > 0);
  const auto wall_start = std::chrono::steady_clock::now();

  ExternalSortStats stats;
  stats.n = count_doubles(input_path);
  if (stats.n == 0) {
    write_doubles(output_path, {});
    return stats;
  }

  // --- pass 1: run formation through the heterogeneous pipeline ------------
  core::HeterogeneousSorter sorter(cfg.platform, cfg.pipeline);
  std::vector<std::string> runs;
  {
    BufferedRunReader input(input_path, cfg.io_buffer_elems);
    std::vector<double> chunk;
    chunk.reserve(std::min<std::uint64_t>(stats.n, cfg.memory_budget_elems));
    while (!input.empty()) {
      chunk.clear();
      while (!input.empty() && chunk.size() < cfg.memory_budget_elems) {
        chunk.push_back(input.head());
        input.pop();
      }
      const core::Report r = sorter.sort(chunk);
      stats.pipeline_virtual_seconds += r.end_to_end;
      const std::string path = run_path(cfg, runs.size());
      write_doubles(path, chunk);
      runs.push_back(path);
    }
  }
  stats.num_runs = runs.size();

  // --- pass 2: k-way streaming merge ----------------------------------------
  if (runs.size() == 1) {
    // Single run: it is already the sorted output.
    const auto data = read_doubles(runs[0]);
    write_doubles(output_path, data);
  } else {
    std::vector<BufferedRunReader> readers;
    readers.reserve(runs.size());
    for (const auto& path : runs) {
      readers.emplace_back(path, cfg.io_buffer_elems);
    }
    BufferedRunWriter out(output_path, cfg.io_buffer_elems);
    // Tournament over reader heads; indices beat ties like the LoserTree.
    // (Readers pull from disk, so the in-memory LoserTree over spans does
    // not apply directly; k is small, a linear scan per element suffices
    // for the I/O-bound merge.)
    for (;;) {
      int best = -1;
      for (std::size_t i = 0; i < readers.size(); ++i) {
        if (readers[i].empty()) continue;
        if (best < 0 ||
            readers[i].head() < readers[static_cast<std::size_t>(best)].head()) {
          best = static_cast<int>(i);
        }
      }
      if (best < 0) break;
      auto& r = readers[static_cast<std::size_t>(best)];
      out.append(r.head());
      r.pop();
    }
    out.close();
  }

  for (const auto& path : runs) std::remove(path.c_str());

  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return stats;
}

}  // namespace hs::io
