#include "io/external_sort.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/assert.h"
#include "core/het_sorter.h"
#include "io/run_file.h"

namespace hs::io {
namespace {

std::string run_path(const ExternalSortConfig& cfg, std::uint64_t i) {
  return cfg.temp_dir + "/hetsort_run_" + std::to_string(i) + ".bin";
}

/// Unlinks every registered intermediate run at scope exit — the success
/// path's cleanup and the failure path's guard are the same mechanism, so a
/// throw anywhere in run formation or the merge leaves no partial temp
/// files behind.
class ScopedRunGuard {
 public:
  ScopedRunGuard() = default;
  ScopedRunGuard(const ScopedRunGuard&) = delete;
  ScopedRunGuard& operator=(const ScopedRunGuard&) = delete;
  ~ScopedRunGuard() {
    for (const auto& p : paths_) std::remove(p.c_str());
  }

  void add(std::string path) { paths_.push_back(std::move(path)); }
  const std::vector<std::string>& paths() const { return paths_; }

 private:
  std::vector<std::string> paths_;
};

void accumulate(core::RecoveryStats& into, const core::RecoveryStats& r) {
  into.faults_injected += r.faults_injected;
  into.transfer_retries += r.transfer_retries;
  into.batch_resplits += r.batch_resplits;
  into.devices_blacklisted += r.devices_blacklisted;
  into.attempts += r.attempts - 1;  // count extra attempts, not baselines
  into.cpu_fallback = into.cpu_fallback || r.cpu_fallback;
  into.recovery_seconds += r.recovery_seconds;
}

/// k-way streaming merge of `runs` into `output_path`. Throws IoError on
/// (possibly injected) read/write failures; the caller owns retries.
void merge_runs(const std::vector<std::string>& runs,
                const std::string& output_path, const ExternalSortConfig& cfg,
                sim::FaultInjector* injector) {
  std::vector<BufferedRunReader> readers;
  readers.reserve(runs.size());
  for (const auto& path : runs) {
    readers.emplace_back(path, cfg.io_buffer_elems, injector);
  }
  BufferedRunWriter out(output_path, cfg.io_buffer_elems, injector);
  // Tournament over reader heads; indices beat ties like the LoserTree.
  // (Readers pull from disk, so the in-memory LoserTree over spans does
  // not apply directly; k is small, a linear scan per element suffices
  // for the I/O-bound merge.)
  for (;;) {
    int best = -1;
    for (std::size_t i = 0; i < readers.size(); ++i) {
      if (readers[i].empty()) continue;
      if (best < 0 ||
          readers[i].head() < readers[static_cast<std::size_t>(best)].head()) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    auto& r = readers[static_cast<std::size_t>(best)];
    out.append(r.head());
    r.pop();
  }
  out.close();
}

}  // namespace

ExternalSortStats external_sort_file(const std::string& input_path,
                                     const std::string& output_path,
                                     const ExternalSortConfig& cfg) {
  HS_EXPECTS(cfg.memory_budget_elems > 0);
  HS_EXPECTS(cfg.io_buffer_elems > 0);
  const auto wall_start = std::chrono::steady_clock::now();

  ExternalSortStats stats;
  sim::FaultInjector io_injector(cfg.io_faults);
  stats.n = count_doubles(input_path);
  if (stats.n == 0) {
    write_doubles(output_path, {});
    return stats;
  }

  // --- pass 1: run formation through the heterogeneous pipeline ------------
  core::HeterogeneousSorter sorter(cfg.platform, cfg.pipeline);
  ScopedRunGuard runs;
  {
    BufferedRunReader input(input_path, cfg.io_buffer_elems);
    std::vector<double> chunk;
    chunk.reserve(std::min<std::uint64_t>(stats.n, cfg.memory_budget_elems));
    while (!input.empty()) {
      chunk.clear();
      while (!input.empty() && chunk.size() < cfg.memory_budget_elems) {
        chunk.push_back(input.head());
        input.pop();
      }
      const core::Report r = sorter.sort(chunk);
      stats.pipeline_virtual_seconds += r.end_to_end;
      accumulate(stats.pipeline_recovery, r.recovery);
      const std::string path = run_path(cfg, runs.paths().size());
      for (unsigned tries = 0;; ++tries) {
        try {
          write_doubles(path, chunk, &io_injector);
          break;
        } catch (const IoError&) {
          // write_doubles already unlinked the partial file.
          if (tries >= cfg.max_io_retries) throw;
          ++stats.io_retries;
        }
      }
      runs.add(path);
    }
  }
  stats.num_runs = runs.paths().size();

  // --- pass 2: k-way streaming merge ----------------------------------------
  for (unsigned tries = 0;; ++tries) {
    try {
      merge_runs(runs.paths(), output_path, cfg, &io_injector);
      break;
    } catch (const IoError&) {
      std::remove(output_path.c_str());
      if (tries >= cfg.max_io_retries) throw;
      ++stats.io_retries;
    }
  }

  stats.io_faults_injected = io_injector.stats().total();
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return stats;
}

}  // namespace hs::io
