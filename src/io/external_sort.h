// Out-of-core sorting of files larger than host memory.
//
// The paper sorts data larger than *GPU* memory but bounded by host RAM
// (~3n budget, Section III-C). This module completes the "large datasets"
// story for files exceeding host memory, using the heterogeneous pipeline as
// the run-formation engine:
//
//   pass 1: read chunks of `memory_budget_elems`, sort each through
//           HeterogeneousSorter (real execution on the virtual platform),
//           write checksummed framed run files (io/run_file.h);
//   pass 2: k-way merge the run files through fixed-size streaming buffers
//           into the output file (written to a side file and renamed in, so
//           a crash mid-merge never leaves a half-written output).
//
// Crash safety (docs/fault_model.md): after each run is durably written, the
// job journal (io/journal.h) is atomically updated. A killed job re-invoked
// with `resume = true` revalidates every journaled run against its block
// checksums, reuses the intact ones, quarantines corrupt or truncated ones
// (renamed to "<run>.quarantined") and re-sorts exactly the chunks they
// covered. The resumed output is byte-identical to an uninterrupted run:
// chunk boundaries are a pure function of (n, memory_budget_elems), the
// run-formation sort is deterministic, and the merge breaks ties by run
// index. Run files that never reached the journal are removed on failure;
// everything (runs, quarantine files, journal) is removed on success.
//
// This is the classical external mergesort with the paper's hybrid sorter as
// its in-memory phase; the returned stats separate disk time (wall clock)
// from the pipeline's virtual time so both worlds stay honest.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "core/recovery.h"
#include "core/sort_config.h"
#include "model/platforms.h"
#include "sim/fault_injector.h"

namespace hs::io {

/// Thrown by the `simulate_crash_after_runs` test hook. Everything durable
/// at the throw point (journaled runs + manifest) is exactly what a SIGKILL
/// at the same point would leave on disk, so tests exercise the resume path
/// without forking: the guard only cleans up *non*-journaled state.
class SimulatedCrash : public hs::Error {
 public:
  explicit SimulatedCrash(std::uint64_t durable_runs)
      : hs::Error("simulated crash after " + std::to_string(durable_runs) +
                  " durable runs") {}
};

/// Thrown when `ExternalSortConfig::cancel` flips true. Cancellation is
/// cooperative and crash-equivalent: the sort stops at the next chunk or
/// merge-block boundary, journaled runs stay durable, and a later `resume`
/// continues the job exactly as after a kill. Raised by the service layer's
/// deadline watchdog (service::JobScheduler) but usable by any caller.
class SortCancelled : public hs::Error {
 public:
  explicit SortCancelled(std::string_view where)
      : hs::Error("sort cancelled during " + std::string(where) +
                  " (journaled state preserved; resumable)") {}
};

struct ExternalSortConfig {
  model::Platform platform = model::platform1();
  core::SortConfig pipeline;

  /// Elements loaded, sorted and written per run (the in-memory budget;
  /// the process peak is ~3x this, matching the pipeline's 3n rule). Also
  /// fixes the chunk boundaries the journal records, so a resumed job must
  /// use the same value (the journal is dropped otherwise).
  std::uint64_t memory_budget_elems = 1 << 22;

  /// Streaming buffer per run file during the merge phase, and the framed
  /// run files' checksum block size.
  std::uint64_t io_buffer_elems = 1 << 16;

  /// Directory for intermediate run files and the job journal (must exist).
  std::string temp_dir = ".";

  /// Maintain the crash-recovery journal (one atomic manifest rewrite per
  /// run). Disable for scratch jobs that should leave nothing behind on
  /// failure either.
  bool journal = true;

  /// Adopt a compatible journal left in `temp_dir` by a killed job:
  /// journaled runs are checksum-revalidated and reused, corrupt ones
  /// quarantined and their chunks re-sorted. Without a usable journal the
  /// job simply starts fresh (stats.resumed stays false).
  bool resume = false;

  /// Test hook: throw SimulatedCrash once this many *new* runs have been
  /// journaled in this invocation (0 = never).
  std::uint64_t simulate_crash_after_runs = 0;

  /// Seeded fault schedule for the disk layer (kFileRead / kFileWrite /
  /// kFileCorrupt sites; all-zero: no faults). Pipeline faults are
  /// configured independently via `pipeline.faults` / `pipeline.recovery`.
  sim::FaultPlan io_faults;

  /// Times a run write (or the merge pass) is retried after an IoError
  /// before the error propagates.
  unsigned max_io_retries = 3;

  /// Cooperative cancellation token (caller-owned, may be null). Checked
  /// before each chunk sort and periodically inside the merge; when it reads
  /// true the sort throws SortCancelled, leaving exactly the on-disk state a
  /// crash at the same point would (so the job is resumable).
  const std::atomic<bool>* cancel = nullptr;
};

struct ExternalSortStats {
  std::uint64_t n = 0;
  std::uint64_t num_runs = 0;
  double pipeline_virtual_seconds = 0;  // sum over run-formation reports
  double wall_seconds = 0;              // real time incl. disk I/O

  std::uint64_t io_faults_injected = 0;  // kFile* faults fired
  std::uint64_t io_retries = 0;          // run rewrites + merge restarts

  // --- crash-recovery accounting (also mirrored into obs counters) --------
  bool resumed = false;                  // a compatible journal was adopted
  std::uint64_t runs_revalidated = 0;    // journaled runs checked on resume
  std::uint64_t runs_reused = 0;         // ...of those, intact and reused
  std::uint64_t revalidated_bytes = 0;   // payload bytes read to prove it
  std::uint64_t runs_quarantined = 0;    // corrupt/truncated runs set aside
  std::uint64_t quarantined_bytes = 0;   // on-disk size of those runs
  std::uint64_t chunks_resorted = 0;     // chunks re-sorted to replace them

  /// Pipeline-side fault/recovery accounting summed over all run-formation
  /// sorts (see core::Report::recovery).
  core::RecoveryStats pipeline_recovery;
};

/// Sorts the doubles in `input_path` into `output_path` (which may equal
/// `input_path`; the output is staged in a side file and renamed in). Throws
/// IoError on filesystem failures after exhausting `max_io_retries`. On
/// success every intermediate file is removed; on failure only runs recorded
/// in the journal survive, ready for `resume`.
ExternalSortStats external_sort_file(const std::string& input_path,
                                     const std::string& output_path,
                                     const ExternalSortConfig& cfg);

/// Resumes a killed job from the journal in `cfg.temp_dir` (equivalent to
/// external_sort_file with resume = true). Safe to call when no journal
/// exists — the job then runs from scratch.
ExternalSortStats resume_external_sort(const std::string& input_path,
                                       const std::string& output_path,
                                       ExternalSortConfig cfg);

/// Registers the disk spill backend with core::set_spill_backend so a
/// HeterogeneousSorter whose host budget cannot admit 3n degrades into this
/// module instead of throwing. Linked-in automatically with hs_io (a static
/// registrar calls it); exposed for explicitness in tests and tools.
void ensure_spill_backend();

}  // namespace hs::io
