// Out-of-core sorting of files larger than host memory.
//
// The paper sorts data larger than *GPU* memory but bounded by host RAM
// (~3n budget, Section III-C). This module completes the "large datasets"
// story for files exceeding host memory, using the heterogeneous pipeline as
// the run-formation engine:
//
//   pass 1: read chunks of `memory_budget_elems`, sort each through
//           HeterogeneousSorter (real execution on the virtual platform),
//           write sorted run files;
//   pass 2: k-way merge the run files through fixed-size streaming buffers
//           (a loser-tree over BufferedRunReaders) into the output file.
//
// This is the classical external mergesort with the paper's hybrid sorter as
// its in-memory phase; the returned stats separate disk time (wall clock)
// from the pipeline's virtual time so both worlds stay honest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/recovery.h"
#include "core/sort_config.h"
#include "model/platforms.h"
#include "sim/fault_injector.h"

namespace hs::io {

struct ExternalSortConfig {
  model::Platform platform = model::platform1();
  core::SortConfig pipeline;

  /// Elements loaded, sorted and written per run (the in-memory budget;
  /// the process peak is ~3x this, matching the pipeline's 3n rule).
  std::uint64_t memory_budget_elems = 1 << 22;

  /// Streaming buffer per run file during the merge phase.
  std::uint64_t io_buffer_elems = 1 << 16;

  /// Directory for intermediate run files (must exist).
  std::string temp_dir = ".";

  /// Seeded fault schedule for the disk layer (kFileRead / kFileWrite sites;
  /// all-zero: no faults). Pipeline faults are configured independently via
  /// `pipeline.faults` / `pipeline.recovery`.
  sim::FaultPlan io_faults;

  /// Times a run write (or the merge pass) is retried after an IoError
  /// before the error propagates.
  unsigned max_io_retries = 3;
};

struct ExternalSortStats {
  std::uint64_t n = 0;
  std::uint64_t num_runs = 0;
  double pipeline_virtual_seconds = 0;  // sum over run-formation reports
  double wall_seconds = 0;              // real time incl. disk I/O

  std::uint64_t io_faults_injected = 0;  // kFileRead/kFileWrite faults fired
  std::uint64_t io_retries = 0;          // run rewrites + merge restarts

  /// Pipeline-side fault/recovery accounting summed over all run-formation
  /// sorts (see core::Report::recovery).
  core::RecoveryStats pipeline_recovery;
};

/// Sorts the doubles in `input_path` into `output_path` (which may equal
/// `input_path`). Throws IoError on filesystem failures after exhausting
/// `max_io_retries`. Intermediate runs are deleted on success AND on
/// failure (a scoped guard unlinks them when any pass throws).
ExternalSortStats external_sort_file(const std::string& input_path,
                                     const std::string& output_path,
                                     const ExternalSortConfig& cfg);

}  // namespace hs::io
