#include "io/journal.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "common/checksum.h"
#include "io/run_file.h"

namespace hs::io {
namespace {

constexpr const char* kHeaderLine = "hetsort-journal v1";

std::string render(const JobJournal& j) {
  std::ostringstream os;
  os << kHeaderLine << '\n';
  os << "input " << j.input_path << '\n';
  os << "output " << j.output_path << '\n';
  os << "n " << j.n << '\n';
  os << "budget " << j.budget_elems << '\n';
  os << "block " << j.block_elems << '\n';
  // Runs are recorded in index order even when recovery re-sorted a middle
  // chunk after its neighbours (the loader requires increasing indices).
  std::vector<JournalRun> runs = j.runs;
  std::sort(runs.begin(), runs.end(),
            [](const JournalRun& a, const JournalRun& b) {
              return a.index < b.index;
            });
  for (const JournalRun& r : runs) {
    os << "run " << r.index << ' ' << r.start_elem << ' ' << r.elem_count
       << ' ' << r.path << '\n';
  }
  const std::string body = os.str();
  return body + "end " + std::to_string(fnv1a64(body)) + "\n";
}

/// Parses "<key> <rest>" and returns rest; nullopt when the key mismatches.
std::optional<std::string> field(const std::string& line,
                                 const std::string& key) {
  if (line.rfind(key + " ", 0) != 0) return std::nullopt;
  return line.substr(key.size() + 1);
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

}  // namespace

std::string journal_path(const std::string& temp_dir) {
  return temp_dir + "/hetsort_job.manifest";
}

void save_journal(const JobJournal& journal, const std::string& temp_dir) {
  const std::string path = journal_path(temp_dir);
  const std::string tmp = path + ".tmp";
  const std::string text = render(journal);

  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) throw IoError("cannot open " + tmp);
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (written != text.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    throw IoError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("cannot rename " + tmp + " to " + path);
  }
}

std::optional<JobJournal> load_journal(const std::string& temp_dir) {
  const std::string path = journal_path(temp_dir);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string text;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
  std::fclose(f);

  // The last line must be "end <fnv-of-everything-before-it>".
  const std::size_t nl = text.rfind('\n', text.size() >= 2 ? text.size() - 2
                                                           : std::string::npos);
  const std::size_t end_at = nl == std::string::npos ? 0 : nl + 1;
  std::string end_line = text.substr(end_at);
  if (!end_line.empty() && end_line.back() == '\n') end_line.pop_back();
  const auto sum_text = field(end_line, "end");
  std::uint64_t stored = 0;
  if (!sum_text || !parse_u64(*sum_text, stored) ||
      stored != fnv1a64(text.substr(0, end_at))) {
    return std::nullopt;  // torn or tampered manifest: treat as absent
  }

  JobJournal j;
  std::istringstream is(text.substr(0, end_at));
  std::string line;
  if (!std::getline(is, line) || line != kHeaderLine) return std::nullopt;
  std::uint64_t next_index = 0;
  while (std::getline(is, line)) {
    if (auto in = field(line, "input")) {
      j.input_path = *in;
    } else if (auto out = field(line, "output")) {
      j.output_path = *out;
    } else if (auto nv = field(line, "n")) {
      if (!parse_u64(*nv, j.n)) return std::nullopt;
    } else if (auto bv = field(line, "budget")) {
      if (!parse_u64(*bv, j.budget_elems)) return std::nullopt;
    } else if (auto kv = field(line, "block")) {
      if (!parse_u64(*kv, j.block_elems)) return std::nullopt;
    } else if (auto rv = field(line, "run")) {
      // "run <index> <start> <count> <path>"; the path may contain spaces.
      JournalRun r;
      std::istringstream rs(*rv);
      std::string idx, start, count;
      if (!(rs >> idx >> start >> count)) return std::nullopt;
      if (!parse_u64(idx, r.index) || !parse_u64(start, r.start_elem) ||
          !parse_u64(count, r.elem_count)) {
        return std::nullopt;
      }
      // Indices must be strictly increasing; gaps are fine (a quarantined
      // middle run leaves one until its chunk is re-sorted).
      std::getline(rs >> std::ws, r.path);
      if (r.path.empty() || r.index < next_index) return std::nullopt;
      next_index = r.index + 1;
      j.runs.push_back(std::move(r));
    } else {
      return std::nullopt;  // unknown record: refuse to guess
    }
  }
  if (j.budget_elems == 0 || j.block_elems == 0) return std::nullopt;
  return j;
}

void remove_journal(const std::string& temp_dir) {
  std::remove(journal_path(temp_dir).c_str());
  std::remove((journal_path(temp_dir) + ".tmp").c_str());
}

}  // namespace hs::io
