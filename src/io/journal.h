// Crash-consistent job journal for the external sort (docs/fault_model.md).
//
// The journal is a small text manifest in the job's temp_dir recording the
// job identity (input, output, element count, chunking budget, run block
// size) and every run file that is *durably complete* — i.e. its writer
// close()d successfully and the manifest rename landed. It is rewritten
// atomically (write to a temp name, fclose, rename) after each run, so at
// any kill point the on-disk manifest is either the previous or the next
// consistent state, never a torn one. A trailing FNV-1a checksum line makes
// even an interrupted rename target detectable.
//
// Resume contract: runs listed here are *candidates* — the resume path still
// re-validates each one against its own framed checksums before reuse, so a
// journal that outlived a corrupted run quarantines it instead of merging it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace hs::io {

/// One durably completed run: chunk `index` covers input elements
/// [start_elem, start_elem + elem_count).
struct JournalRun {
  std::uint64_t index = 0;
  std::uint64_t start_elem = 0;
  std::uint64_t elem_count = 0;
  std::string path;
};

struct JobJournal {
  std::string input_path;
  std::string output_path;
  std::uint64_t n = 0;             // total input elements
  std::uint64_t budget_elems = 0;  // chunking budget (fixes run boundaries)
  std::uint64_t block_elems = 0;   // framed-run block size
  std::vector<JournalRun> runs;

  /// True when `other` describes the same resumable job: identical input
  /// size and chunk geometry, so run i covers the same elements in both.
  bool compatible_with(const JobJournal& other) const {
    return n == other.n && budget_elems == other.budget_elems &&
           block_elems == other.block_elems;
  }
};

/// Manifest location inside `temp_dir`.
std::string journal_path(const std::string& temp_dir);

/// Atomically replaces the manifest in `temp_dir` (write-temp-then-rename).
/// Throws IoError when the filesystem refuses.
void save_journal(const JobJournal& journal, const std::string& temp_dir);

/// Loads the manifest from `temp_dir`. Returns nullopt when it is missing,
/// torn, or fails its checksum — a fresh job is always a safe recovery, so
/// corrupt journals are indistinguishable from absent ones.
std::optional<JobJournal> load_journal(const std::string& temp_dir);

/// Removes the manifest (and any stale temp sibling); missing files are fine.
void remove_journal(const std::string& temp_dir);

}  // namespace hs::io
