#include "io/run_file.h"

#include <utility>

#include "common/assert.h"

namespace hs::io {
namespace {

std::FILE* open_or_throw(const std::string& path, const char* mode) {
  std::FILE* f = std::fopen(path.c_str(), mode);
  if (f == nullptr) {
    throw IoError("cannot open " + path);
  }
  return f;
}

}  // namespace

void write_doubles(const std::string& path, std::span<const double> data,
                   sim::FaultInjector* injector) {
  std::FILE* f = open_or_throw(path, "wb");
  std::size_t written =
      data.empty() ? 0 : std::fwrite(data.data(), sizeof(double), data.size(), f);
  if (injector != nullptr && injector->enabled() &&
      injector->should_fault(sim::FaultSite::kFileWrite)) {
    written = data.size() / 2;  // simulated short write (e.g. ENOSPC)
  }
  const int rc = std::fclose(f);
  if (written != data.size() || rc != 0) {
    std::remove(path.c_str());
    throw IoError("short write to " + path);
  }
}

BufferedRunWriter::BufferedRunWriter(const std::string& path,
                                     std::size_t buffer_elems,
                                     sim::FaultInjector* injector)
    : path_(path), file_(open_or_throw(path, "wb")), injector_(injector) {
  HS_EXPECTS(buffer_elems > 0);
  buffer_.reserve(buffer_elems);
}

BufferedRunWriter::~BufferedRunWriter() {
  if (file_ == nullptr) return;  // closed cleanly
  try {
    close();
  } catch (const IoError&) {
    // Destructors must not throw, and a truncated run file is worse than a
    // missing one: unlink the partial output. Call close() explicitly to
    // observe write errors.
    std::remove(path_.c_str());
  }
}

void BufferedRunWriter::append(double value) {
  buffer_.push_back(value);
  ++written_;
  if (buffer_.size() == buffer_.capacity()) flush_buffer();
}

void BufferedRunWriter::append(std::span<const double> values) {
  for (const double v : values) append(v);
}

void BufferedRunWriter::close() {
  if (file_ == nullptr) return;
  flush_buffer();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) throw IoError("close failed for " + path_);
}

void BufferedRunWriter::flush_buffer() {
  if (buffer_.empty()) return;
  std::size_t n =
      std::fwrite(buffer_.data(), sizeof(double), buffer_.size(), file_);
  if (injector_ != nullptr && injector_->enabled() &&
      injector_->should_fault(sim::FaultSite::kFileWrite)) {
    n = buffer_.size() / 2;  // simulated short write
  }
  if (n != buffer_.size()) throw IoError("short write to " + path_);
  buffer_.clear();
}

std::uint64_t count_doubles(const std::string& path) {
  std::FILE* f = open_or_throw(path, "rb");
  std::fseek(f, 0, SEEK_END);
  const long bytes = std::ftell(f);
  std::fclose(f);
  if (bytes < 0 || bytes % static_cast<long>(sizeof(double)) != 0) {
    throw IoError(path + " is not a whole number of doubles");
  }
  return static_cast<std::uint64_t>(bytes) / sizeof(double);
}

std::vector<double> read_doubles(const std::string& path) {
  const std::uint64_t n = count_doubles(path);
  std::vector<double> v(n);
  std::FILE* f = open_or_throw(path, "rb");
  const std::size_t got =
      n == 0 ? 0 : std::fread(v.data(), sizeof(double), n, f);
  std::fclose(f);
  if (got != n) throw IoError("short read from " + path);
  return v;
}

BufferedRunReader::BufferedRunReader(const std::string& path,
                                     std::size_t buffer_elems,
                                     sim::FaultInjector* injector)
    : path_(path),
      file_(open_or_throw(path, "rb")),
      capacity_(buffer_elems),
      injector_(injector) {
  HS_EXPECTS(buffer_elems > 0);
  remaining_total_ = count_doubles(path);
  refill();
}

BufferedRunReader::~BufferedRunReader() {
  if (file_ != nullptr) std::fclose(file_);
}

BufferedRunReader::BufferedRunReader(BufferedRunReader&& other) noexcept
    : path_(std::move(other.path_)),
      file_(std::exchange(other.file_, nullptr)),
      buffer_(std::move(other.buffer_)),
      pos_(other.pos_),
      capacity_(other.capacity_),
      exhausted_(other.exhausted_),
      remaining_total_(other.remaining_total_),
      injector_(other.injector_) {}

double BufferedRunReader::head() const {
  HS_EXPECTS(!empty());
  return buffer_[pos_];
}

void BufferedRunReader::pop() {
  HS_EXPECTS(!empty());
  ++pos_;
  --remaining_total_;
  if (pos_ >= buffer_.size() && !exhausted_) refill();
}

void BufferedRunReader::refill() {
  if (injector_ != nullptr && injector_->enabled() &&
      injector_->should_fault(sim::FaultSite::kFileRead)) {
    throw IoError("short read from " + path_);
  }
  buffer_.resize(capacity_);
  const std::size_t got =
      std::fread(buffer_.data(), sizeof(double), capacity_, file_);
  buffer_.resize(got);
  pos_ = 0;
  if (got < capacity_) exhausted_ = true;
}

}  // namespace hs::io
