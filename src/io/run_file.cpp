#include "io/run_file.h"

#include <cstddef>
#include <utility>

#include "common/assert.h"
#include "common/checksum.h"
#include "common/math_util.h"

namespace hs::io {
namespace {

std::FILE* open_or_throw(const std::string& path, const char* mode) {
  std::FILE* f = std::fopen(path.c_str(), mode);
  if (f == nullptr) {
    throw IoError("cannot open " + path);
  }
  return f;
}

std::uint64_t file_bytes(std::FILE* f) {
  const long pos = std::ftell(f);
  std::fseek(f, 0, SEEK_END);
  const long bytes = std::ftell(f);
  std::fseek(f, pos, SEEK_SET);
  return bytes < 0 ? 0 : static_cast<std::uint64_t>(bytes);
}

/// FNV-1a over the header fields preceding header_checksum.
std::uint64_t header_digest(const RunFileHeader& h) {
  return fnv1a64(&h, offsetof(RunFileHeader, header_checksum));
}

void write_header(std::FILE* f, const std::string& path,
                  const RunFileHeader& h) {
  if (std::fwrite(&h, sizeof h, 1, f) != 1) {
    throw IoError("short header write to " + path);
  }
}

}  // namespace

std::uint64_t RunFileHeader::num_blocks() const {
  return block_elems == 0 ? 0 : div_ceil(elem_count, block_elems);
}

std::uint64_t RunFileHeader::expected_file_bytes() const {
  return sizeof(RunFileHeader) + elem_count * sizeof(double) +
         num_blocks() * sizeof(std::uint64_t);
}

void write_doubles(const std::string& path, std::span<const double> data,
                   sim::FaultInjector* injector) {
  std::FILE* f = open_or_throw(path, "wb");
  std::size_t written =
      data.empty() ? 0 : std::fwrite(data.data(), sizeof(double), data.size(), f);
  if (injector != nullptr && injector->enabled() &&
      injector->should_fault(sim::FaultSite::kFileWrite)) {
    written = data.size() / 2;  // simulated short write (e.g. ENOSPC)
  }
  const int rc = std::fclose(f);
  if (written != data.size() || rc != 0) {
    std::remove(path.c_str());
    throw IoError("short write to " + path);
  }
}

BufferedRunWriter::BufferedRunWriter(const std::string& path,
                                     std::size_t buffer_elems,
                                     sim::FaultInjector* injector,
                                     RunFormat format)
    : path_(path),
      file_(open_or_throw(path, format == RunFormat::kFramed ? "wb+" : "wb")),
      block_elems_(buffer_elems),
      format_(format),
      injector_(injector) {
  HS_EXPECTS(buffer_elems > 0);
  HS_EXPECTS_MSG(format != RunFormat::kAuto, "writers need a concrete format");
  buffer_.reserve(buffer_elems);
  if (format_ == RunFormat::kFramed) {
    // Invalid placeholder: a run interrupted before close() never validates.
    RunFileHeader h;
    h.elem_count = UINT64_MAX;
    h.block_elems = block_elems_;
    h.header_checksum = 0;
    write_header(file_, path_, h);
  }
}

BufferedRunWriter::~BufferedRunWriter() {
  if (file_ == nullptr) return;  // closed cleanly
  try {
    close();
  } catch (const IoError&) {
    // Destructors must not throw, and a truncated run file is worse than a
    // missing one: unlink the partial output. Call close() explicitly to
    // observe write errors.
    std::remove(path_.c_str());
  }
}

void BufferedRunWriter::append(double value) {
  if (written_ > 0 && value < prev_) sorted_so_far_ = false;
  prev_ = value;
  buffer_.push_back(value);
  ++written_;
  if (buffer_.size() >= block_elems_) flush_buffer();
}

void BufferedRunWriter::append(std::span<const double> values) {
  for (const double v : values) append(v);
}

void BufferedRunWriter::close() {
  if (file_ == nullptr) return;
  try {
    flush_buffer();
    if (format_ == RunFormat::kFramed) {
      RunFileHeader h;
      if (sorted_so_far_) h.flags |= RunFileHeader::kFlagSorted;
      h.elem_count = written_;
      h.block_elems = block_elems_;
      h.header_checksum = header_digest(h);
      std::fseek(file_, 0, SEEK_SET);
      write_header(file_, path_, h);
    }
  } catch (...) {
    std::fclose(file_);
    file_ = nullptr;
    throw;
  }
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) throw IoError("close failed for " + path_);
}

void BufferedRunWriter::flush_buffer() {
  if (buffer_.empty()) return;
  std::size_t n =
      std::fwrite(buffer_.data(), sizeof(double), buffer_.size(), file_);
  if (injector_ != nullptr && injector_->enabled() &&
      injector_->should_fault(sim::FaultSite::kFileWrite)) {
    n = buffer_.size() / 2;  // simulated short write
  }
  if (n != buffer_.size()) throw IoError("short write to " + path_);
  if (format_ == RunFormat::kFramed) {
    const std::uint64_t sum =
        fnv1a64(buffer_.data(), buffer_.size() * sizeof(double));
    if (std::fwrite(&sum, sizeof sum, 1, file_) != 1) {
      throw IoError("short checksum write to " + path_);
    }
  }
  buffer_.clear();
}

std::uint64_t count_doubles(const std::string& path) {
  std::FILE* f = open_or_throw(path, "rb");
  std::fseek(f, 0, SEEK_END);
  const long bytes = std::ftell(f);
  std::fclose(f);
  if (bytes < 0 || bytes % static_cast<long>(sizeof(double)) != 0) {
    throw IoError(path + " is not a whole number of doubles");
  }
  return static_cast<std::uint64_t>(bytes) / sizeof(double);
}

std::vector<double> read_doubles(const std::string& path) {
  const std::uint64_t n = count_doubles(path);
  std::vector<double> v(n);
  std::FILE* f = open_or_throw(path, "rb");
  const std::size_t got =
      n == 0 ? 0 : std::fread(v.data(), sizeof(double), n, f);
  std::fclose(f);
  if (got != n) throw IoError("short read from " + path);
  return v;
}

std::vector<double> read_doubles_range(const std::string& path,
                                       std::uint64_t start_elem,
                                       std::uint64_t count) {
  const std::uint64_t n = count_doubles(path);
  if (start_elem + count > n) {
    throw IoError("range [" + std::to_string(start_elem) + ", " +
                  std::to_string(start_elem + count) + ") exceeds " + path);
  }
  std::vector<double> v(count);
  std::FILE* f = open_or_throw(path, "rb");
  std::fseek(f, static_cast<long>(start_elem * sizeof(double)), SEEK_SET);
  const std::size_t got =
      count == 0 ? 0 : std::fread(v.data(), sizeof(double), count, f);
  std::fclose(f);
  if (got != count) throw IoError("short read from " + path);
  return v;
}

BufferedRunReader::BufferedRunReader(const std::string& path,
                                     std::size_t buffer_elems,
                                     sim::FaultInjector* injector,
                                     RunFormat format)
    : path_(path),
      file_(open_or_throw(path, "rb")),
      capacity_(buffer_elems),
      injector_(injector) {
  HS_EXPECTS(buffer_elems > 0);
  open_framed_or_raw(format);
  refill();
}

void BufferedRunReader::open_framed_or_raw(RunFormat format) {
  RunFileHeader h;
  const bool have_header = std::fread(&h, sizeof h, 1, file_) == 1;
  const bool magic_ok = have_header && h.magic == RunFileHeader::kMagic;
  if (format == RunFormat::kFramed && !magic_ok) {
    throw RunFileCorrupt(path_, "missing or truncated run header");
  }
  if (format == RunFormat::kRaw || !magic_ok) {
    // Raw: the element count is implied by the size, which must divide by 8.
    format_ = RunFormat::kRaw;
    std::fseek(file_, 0, SEEK_SET);
    const std::uint64_t bytes = file_bytes(file_);
    if (bytes % sizeof(double) != 0) {
      throw IoError(path_ + " is not a whole number of doubles");
    }
    remaining_total_ = file_elems_left_ = bytes / sizeof(double);
    return;
  }
  // Framed: the header vouches for itself (checksum) and for the file
  // (element count vs. size), so torn and truncated runs fail on open.
  format_ = RunFormat::kFramed;
  if (h.header_checksum != header_digest(h)) {
    throw RunFileCorrupt(path_, "run header checksum mismatch (torn write?)");
  }
  if (h.version != RunFileHeader::kVersion) {
    throw RunFileCorrupt(path_,
                         "unsupported run format version " +
                             std::to_string(h.version));
  }
  if (h.block_elems == 0) {
    throw RunFileCorrupt(path_, "run header has zero block size");
  }
  const std::uint64_t actual = file_bytes(file_);
  if (actual != h.expected_file_bytes()) {
    throw RunFileCorrupt(
        path_, "file size " + std::to_string(actual) +
                   " disagrees with header element count " +
                   std::to_string(h.elem_count) + " (truncated run?)");
  }
  header_sorted_ = h.sorted();
  block_elems_ = h.block_elems;
  remaining_total_ = file_elems_left_ = h.elem_count;
}

BufferedRunReader::~BufferedRunReader() {
  if (file_ != nullptr) std::fclose(file_);
}

BufferedRunReader::BufferedRunReader(BufferedRunReader&& other) noexcept
    : path_(std::move(other.path_)),
      file_(std::exchange(other.file_, nullptr)),
      buffer_(std::move(other.buffer_)),
      pos_(other.pos_),
      capacity_(other.capacity_),
      exhausted_(other.exhausted_),
      remaining_total_(other.remaining_total_),
      format_(other.format_),
      header_sorted_(other.header_sorted_),
      file_elems_left_(other.file_elems_left_),
      block_index_(other.block_index_),
      block_elems_(other.block_elems_),
      injector_(other.injector_) {}

double BufferedRunReader::head() const {
  HS_EXPECTS(!empty());
  return buffer_[pos_];
}

void BufferedRunReader::pop() {
  HS_EXPECTS(!empty());
  ++pos_;
  --remaining_total_;
  if (pos_ >= buffer_.size() && !exhausted_) refill();
}

void BufferedRunReader::refill() {
  if (injector_ != nullptr && injector_->enabled() &&
      injector_->should_fault(sim::FaultSite::kFileRead)) {
    throw IoError("short read from " + path_);
  }
  if (format_ == RunFormat::kFramed) {
    refill_framed();
  } else {
    refill_raw();
  }
}

void BufferedRunReader::refill_raw() {
  buffer_.resize(capacity_);
  const std::size_t got =
      std::fread(buffer_.data(), sizeof(double), capacity_, file_);
  buffer_.resize(got);
  pos_ = 0;
  if (got < capacity_) exhausted_ = true;
}

void BufferedRunReader::refill_framed() {
  const std::uint64_t want =
      std::min<std::uint64_t>(block_elems_, file_elems_left_);
  pos_ = 0;
  if (want == 0) {
    buffer_.clear();
    exhausted_ = true;
    return;
  }
  buffer_.resize(want);
  std::uint64_t stored = 0;
  if (std::fread(buffer_.data(), sizeof(double), want, file_) != want ||
      std::fread(&stored, sizeof stored, 1, file_) != 1) {
    // The open-time size check makes this unreachable without a concurrent
    // truncation; treat it as corruption either way.
    throw RunFileCorrupt(path_, "short read in block " +
                                    std::to_string(block_index_));
  }
  std::uint64_t computed = fnv1a64(buffer_.data(), want * sizeof(double));
  if (injector_ != nullptr && injector_->enabled() &&
      injector_->should_fault(sim::FaultSite::kFileCorrupt)) {
    computed = ~computed;  // simulated bit rot
  }
  if (computed != stored) {
    throw RunFileCorrupt(path_, "checksum mismatch in block " +
                                    std::to_string(block_index_));
  }
  ++block_index_;
  file_elems_left_ -= want;
  if (file_elems_left_ == 0) exhausted_ = true;
}

std::uint64_t verify_run_file(const std::string& path,
                              std::size_t buffer_elems,
                              sim::FaultInjector* injector) {
  BufferedRunReader r(path, buffer_elems, injector, RunFormat::kFramed);
  const bool check_order = r.header_sorted();
  std::uint64_t n = 0;
  double prev = 0;
  while (!r.empty()) {
    const double v = r.head();
    if (check_order && n > 0 && v < prev) {
      throw RunFileCorrupt(path, "run is not sorted at element " +
                                     std::to_string(n) +
                                     " despite the header's sorted flag");
    }
    prev = v;
    ++n;
    r.pop();
  }
  return n * sizeof(double);
}

}  // namespace hs::io
