// Binary run files for out-of-core sorting.
//
// Format: raw little-endian IEEE-754 doubles, nothing else — the natural
// on-disk shape of the paper's element type, readable by numpy.fromfile.
// BufferedRunReader streams a sorted run through a fixed-size buffer so the
// k-way disk merge of external_sort keeps only O(k * buffer) in memory.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace hs::io {

/// Thrown on any file-system failure (open, short read/write).
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Writes `data` to `path`, replacing any existing file.
void write_doubles(const std::string& path, std::span<const double> data);

/// Appends `data` to an open FILE-backed writer with its own buffer.
class BufferedRunWriter {
 public:
  BufferedRunWriter(const std::string& path, std::size_t buffer_elems);
  ~BufferedRunWriter();

  BufferedRunWriter(const BufferedRunWriter&) = delete;
  BufferedRunWriter& operator=(const BufferedRunWriter&) = delete;

  void append(double value);
  void append(std::span<const double> values);

  /// Flushes and closes; further appends are invalid. Called by the
  /// destructor if not done explicitly (destructor swallows errors; call
  /// close() to observe them).
  void close();

  std::uint64_t written() const { return written_; }

 private:
  void flush_buffer();

  std::string path_;
  std::FILE* file_ = nullptr;
  std::vector<double> buffer_;
  std::uint64_t written_ = 0;
};

/// Number of doubles in `path`. Throws IoError if the size is not a multiple
/// of 8 or the file is unreadable.
std::uint64_t count_doubles(const std::string& path);

/// Reads the entire file (use only when it fits in memory, e.g. tests).
std::vector<double> read_doubles(const std::string& path);

/// Streams a run file through a fixed-size buffer.
class BufferedRunReader {
 public:
  BufferedRunReader(const std::string& path, std::size_t buffer_elems);
  ~BufferedRunReader();

  BufferedRunReader(const BufferedRunReader&) = delete;
  BufferedRunReader& operator=(const BufferedRunReader&) = delete;
  BufferedRunReader(BufferedRunReader&&) noexcept;

  bool empty() const { return pos_ >= buffer_.size() && exhausted_; }
  std::uint64_t remaining() const { return remaining_total_; }

  /// Current smallest unread element. Precondition: !empty().
  double head() const;

  /// Consumes head(), refilling the buffer from disk when it drains.
  void pop();

 private:
  void refill();

  std::FILE* file_ = nullptr;
  std::vector<double> buffer_;
  std::size_t pos_ = 0;
  std::size_t capacity_;
  bool exhausted_ = false;
  std::uint64_t remaining_total_ = 0;
};

}  // namespace hs::io
