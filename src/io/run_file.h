// Binary run files for out-of-core sorting.
//
// Two on-disk formats:
//   * kRaw — little-endian IEEE-754 doubles, nothing else: the natural shape
//     of the paper's element type, readable by numpy.fromfile. Used for the
//     user-facing input and output files.
//   * kFramed — a 40-byte header (magic, version, sortedness flag, element
//     count, block size, header checksum) followed by fixed-size blocks of
//     doubles, each trailed by its FNV-1a 64 checksum. Used for intermediate
//     run files so a torn write, a truncated file, or a flipped byte is
//     *detected* (RunFileCorrupt) instead of silently merging garbage — the
//     foundation of the crash-safe resume path (docs/fault_model.md).
//
// BufferedRunReader streams either format through a fixed-size buffer so the
// k-way disk merge of external_sort keeps only O(k * buffer) in memory;
// framed blocks are verified as they stream.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "sim/fault_injector.h"

namespace hs::io {

/// Thrown on any file-system failure (open, short read/write).
class IoError : public hs::Error {
 public:
  using hs::Error::Error;
};

/// Thrown when a framed run file fails integrity verification: bad magic or
/// header checksum, element count disagreeing with the file size, or a block
/// whose checksum does not match its payload. Carries the offending path so
/// recovery can quarantine the run.
class RunFileCorrupt : public IoError {
 public:
  RunFileCorrupt(std::string path, const std::string& detail)
      : IoError(path + ": " + detail), path_(std::move(path)) {}

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

enum class RunFormat : std::uint8_t {
  kAuto,    // reader only: detect kFramed by magic, fall back to kRaw
  kRaw,     // headerless doubles
  kFramed,  // checksummed header + per-block checksums
};

/// On-disk header of a framed run file (40 bytes, little-endian fields).
/// A freshly created file carries an invalid placeholder (elem_count
/// UINT64_MAX, checksum 0); the real header is written by close(), so a run
/// interrupted before close never validates.
struct RunFileHeader {
  static constexpr std::uint64_t kMagic = 0x0031464E55525348ULL;  // "HSRUNF1\0"
  static constexpr std::uint32_t kVersion = 1;
  static constexpr std::uint32_t kFlagSorted = 1u << 0;

  std::uint64_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint32_t flags = 0;
  std::uint64_t elem_count = 0;
  std::uint64_t block_elems = 0;
  std::uint64_t header_checksum = 0;  // FNV-1a of the 32 bytes above

  bool sorted() const { return (flags & kFlagSorted) != 0; }
  /// Blocks the payload occupies (each trailed by an 8-byte checksum).
  std::uint64_t num_blocks() const;
  /// Total file size implied by the header.
  std::uint64_t expected_file_bytes() const;
};
static_assert(sizeof(RunFileHeader) == 40);

/// Writes `data` to `path`, replacing any existing file. The optional fault
/// injector may fire a kFileWrite fault (simulated short write -> IoError);
/// the partial file is unlinked before the throw.
void write_doubles(const std::string& path, std::span<const double> data,
                   sim::FaultInjector* injector = nullptr);

/// Appends `data` to an open FILE-backed writer with its own buffer. In
/// kFramed mode the buffer size is the block size: every flush emits one
/// checksummed block and close() rewrites the header with the final element
/// count and observed sortedness.
class BufferedRunWriter {
 public:
  BufferedRunWriter(const std::string& path, std::size_t buffer_elems,
                    sim::FaultInjector* injector = nullptr,
                    RunFormat format = RunFormat::kRaw);
  ~BufferedRunWriter();

  BufferedRunWriter(const BufferedRunWriter&) = delete;
  BufferedRunWriter& operator=(const BufferedRunWriter&) = delete;

  void append(double value);
  void append(std::span<const double> values);

  /// Flushes, finalises the header (kFramed) and closes; further appends are
  /// invalid. The success path MUST call this explicitly and let the IoError
  /// escape: the destructor also closes, but it cannot throw, so a write
  /// error in the destructor unlinks the partial file instead of surfacing —
  /// acceptable only during exception unwind.
  void close();

  std::uint64_t written() const { return written_; }

 private:
  void flush_buffer();

  std::string path_;
  std::FILE* file_ = nullptr;
  std::vector<double> buffer_;
  std::size_t block_elems_;
  std::uint64_t written_ = 0;
  RunFormat format_;
  bool sorted_so_far_ = true;
  double prev_ = 0;
  sim::FaultInjector* injector_ = nullptr;
};

/// Number of doubles in a raw file. Throws IoError if the size is not a
/// multiple of 8 or the file is unreadable.
std::uint64_t count_doubles(const std::string& path);

/// Reads an entire raw file (use only when it fits in memory, e.g. tests).
std::vector<double> read_doubles(const std::string& path);

/// Positioned read of `count` doubles starting at element `start_elem` of a
/// raw file (the resume path re-reads exactly one chunk of the input).
std::vector<double> read_doubles_range(const std::string& path,
                                       std::uint64_t start_elem,
                                       std::uint64_t count);

/// Streams a run file through a fixed-size buffer. In kFramed mode the
/// header is fully validated on open — including the file size against the
/// recorded element count, so a truncated run fails here instead of merging
/// silently as a shorter run — and every block checksum is verified as it
/// streams (RunFileCorrupt on mismatch).
class BufferedRunReader {
 public:
  BufferedRunReader(const std::string& path, std::size_t buffer_elems,
                    sim::FaultInjector* injector = nullptr,
                    RunFormat format = RunFormat::kAuto);
  ~BufferedRunReader();

  BufferedRunReader(const BufferedRunReader&) = delete;
  BufferedRunReader& operator=(const BufferedRunReader&) = delete;
  BufferedRunReader(BufferedRunReader&&) noexcept;

  bool empty() const { return pos_ >= buffer_.size() && exhausted_; }
  std::uint64_t remaining() const { return remaining_total_; }

  /// Resolved format: kRaw or kFramed, never kAuto.
  RunFormat format() const { return format_; }

  /// Header sortedness flag; false for raw files (unknown).
  bool header_sorted() const { return header_sorted_; }

  /// Current smallest unread element. Precondition: !empty().
  double head() const;

  /// Consumes head(), refilling the buffer from disk when it drains.
  void pop();

 private:
  void open_framed_or_raw(RunFormat format);
  void refill();
  void refill_raw();
  void refill_framed();

  std::string path_;
  std::FILE* file_ = nullptr;
  std::vector<double> buffer_;
  std::size_t pos_ = 0;
  std::size_t capacity_;
  bool exhausted_ = false;
  std::uint64_t remaining_total_ = 0;
  RunFormat format_ = RunFormat::kRaw;
  bool header_sorted_ = false;
  std::uint64_t file_elems_left_ = 0;  // unread payload elements on disk
  std::uint64_t block_index_ = 0;      // next framed block to read
  std::uint64_t block_elems_ = 0;      // framed block size from the header
  sim::FaultInjector* injector_ = nullptr;
};

/// Streams the entire framed run at `path`, verifying every block checksum,
/// the header-recorded element count and (when the header claims sortedness)
/// ascending order. Returns the number of payload bytes read. Throws
/// RunFileCorrupt / IoError on any violation — the resume path's
/// revalidation primitive.
std::uint64_t verify_run_file(const std::string& path,
                              std::size_t buffer_elems,
                              sim::FaultInjector* injector = nullptr);

}  // namespace hs::io
