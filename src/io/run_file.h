// Binary run files for out-of-core sorting.
//
// Format: raw little-endian IEEE-754 doubles, nothing else — the natural
// on-disk shape of the paper's element type, readable by numpy.fromfile.
// BufferedRunReader streams a sorted run through a fixed-size buffer so the
// k-way disk merge of external_sort keeps only O(k * buffer) in memory.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "sim/fault_injector.h"

namespace hs::io {

/// Thrown on any file-system failure (open, short read/write).
class IoError : public hs::Error {
 public:
  using hs::Error::Error;
};

/// Writes `data` to `path`, replacing any existing file. The optional fault
/// injector may fire a kFileWrite fault (simulated short write -> IoError);
/// the partial file is unlinked before the throw.
void write_doubles(const std::string& path, std::span<const double> data,
                   sim::FaultInjector* injector = nullptr);

/// Appends `data` to an open FILE-backed writer with its own buffer.
class BufferedRunWriter {
 public:
  BufferedRunWriter(const std::string& path, std::size_t buffer_elems,
                    sim::FaultInjector* injector = nullptr);
  ~BufferedRunWriter();

  BufferedRunWriter(const BufferedRunWriter&) = delete;
  BufferedRunWriter& operator=(const BufferedRunWriter&) = delete;

  void append(double value);
  void append(std::span<const double> values);

  /// Flushes and closes; further appends are invalid. Called by the
  /// destructor if not done explicitly. The destructor cannot throw, so if
  /// its close() fails it unlinks the partial file instead of leaving a
  /// truncated run behind; call close() to observe write errors.
  void close();

  std::uint64_t written() const { return written_; }

 private:
  void flush_buffer();

  std::string path_;
  std::FILE* file_ = nullptr;
  std::vector<double> buffer_;
  std::uint64_t written_ = 0;
  sim::FaultInjector* injector_ = nullptr;
};

/// Number of doubles in `path`. Throws IoError if the size is not a multiple
/// of 8 or the file is unreadable.
std::uint64_t count_doubles(const std::string& path);

/// Reads the entire file (use only when it fits in memory, e.g. tests).
std::vector<double> read_doubles(const std::string& path);

/// Streams a run file through a fixed-size buffer.
class BufferedRunReader {
 public:
  BufferedRunReader(const std::string& path, std::size_t buffer_elems,
                    sim::FaultInjector* injector = nullptr);
  ~BufferedRunReader();

  BufferedRunReader(const BufferedRunReader&) = delete;
  BufferedRunReader& operator=(const BufferedRunReader&) = delete;
  BufferedRunReader(BufferedRunReader&&) noexcept;

  bool empty() const { return pos_ >= buffer_.size() && exhausted_; }
  std::uint64_t remaining() const { return remaining_total_; }

  /// Current smallest unread element. Precondition: !empty().
  double head() const;

  /// Consumes head(), refilling the buffer from disk when it drains.
  void pop();

 private:
  void refill();

  std::string path_;
  std::FILE* file_ = nullptr;
  std::vector<double> buffer_;
  std::size_t pos_ = 0;
  std::size_t capacity_;
  bool exhausted_ = false;
  std::uint64_t remaining_total_ = 0;
  sim::FaultInjector* injector_ = nullptr;
};

}  // namespace hs::io
