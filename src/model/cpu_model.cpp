#include "model/cpu_model.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/math_util.h"

namespace hs::model {

double CpuSortModel::parallel_fraction(std::uint64_t n) const {
  if (n < 2) return 0.0;
  const double f = 1.0 - frac_coeff / std::pow(static_cast<double>(n), frac_exp);
  return std::clamp(f, 0.0, frac_max);
}

double CpuSortModel::speedup(unsigned threads, std::uint64_t n) const {
  HS_EXPECTS(threads >= 1);
  const double f = parallel_fraction(n);
  return 1.0 / ((1.0 - f) + f / static_cast<double>(threads));
}

double CpuSortModel::seq_time(std::uint64_t n) const {
  const double nd = static_cast<double>(n);
  return seq_coeff * nd * hs::log2d(nd);
}

double CpuSortModel::time(std::uint64_t n, unsigned threads) const {
  return seq_time(n) / speedup(threads, n);
}

double CpuMergeModel::speedup(unsigned threads) const {
  HS_EXPECTS(threads >= 1);
  const double p = threads;
  return p / (1.0 + beta * (p - 1.0));
}

double CpuMergeModel::time(std::uint64_t n, double ways,
                           unsigned threads) const {
  HS_EXPECTS(ways >= 1.0);
  const double levels = std::max(1.0, hs::log2d(ways));
  return per_elem_seq * static_cast<double>(n) * levels / speedup(threads);
}

double CpuMergeModel::flow_rate(std::uint64_t n, double ways,
                                unsigned threads) const {
  const double t = time(n, ways, threads);
  if (t <= 0) return 1e18;  // zero-size merge: effectively instantaneous
  return traffic_bytes_per_elem * static_cast<double>(n) / t;
}

double HostMemcpyModel::rate(unsigned threads) const {
  HS_EXPECTS(threads >= 1);
  return std::min(per_thread_bps * threads, max_bps);
}

double HostMemcpyModel::time(std::uint64_t bytes, unsigned threads) const {
  return static_cast<double>(bytes) / rate(threads);
}

}  // namespace hs::model
