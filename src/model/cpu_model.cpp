#include "model/cpu_model.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/math_util.h"

namespace hs::model {

double CpuSortModel::parallel_fraction(std::uint64_t n) const {
  if (n < 2) return 0.0;
  const double f = 1.0 - frac_coeff / std::pow(static_cast<double>(n), frac_exp);
  return std::clamp(f, 0.0, frac_max);
}

double CpuSortModel::speedup(unsigned threads, std::uint64_t n) const {
  HS_EXPECTS(threads >= 1);
  const double f = parallel_fraction(n);
  return 1.0 / ((1.0 - f) + f / static_cast<double>(threads));
}

double CpuSortModel::seq_time(std::uint64_t n) const {
  const double nd = static_cast<double>(n);
  return seq_coeff * nd * hs::log2d(nd);
}

double CpuSortModel::time(std::uint64_t n, unsigned threads) const {
  return seq_time(n) / speedup(threads, n);
}

double CpuMergeModel::speedup(unsigned threads) const {
  HS_EXPECTS(threads >= 1);
  const double p = threads;
  return p / (1.0 + beta * (p - 1.0));
}

double CpuMergeModel::time(std::uint64_t n, double ways,
                           unsigned threads) const {
  HS_EXPECTS(ways >= 1.0);
  const double levels = std::max(1.0, hs::log2d(ways));
  return per_elem_seq * static_cast<double>(n) * levels / speedup(threads);
}

double CpuMergeModel::flow_rate(std::uint64_t n, double ways,
                                unsigned threads) const {
  const double t = time(n, ways, threads);
  if (t <= 0) return 1e18;  // zero-size merge: effectively instantaneous
  return traffic_bytes_per_elem * static_cast<double>(n) / t;
}

double MergeEngineModel::level_ns(std::uint64_t ways,
                                  std::size_t width_bytes) const {
  const double base =
      level_base_ns + level_byte_ns * static_cast<double>(width_bytes);
  const double streams = 2.0 * static_cast<double>(ways);
  const double over = std::max(0.0, streams - stream_budget);
  return base * (1.0 + thrash_slope * over);
}

double MergeEngineModel::flat_ns_per_elem(std::uint64_t ways,
                                          std::size_t elem_bytes,
                                          std::size_t key_bytes,
                                          bool deferred) const {
  HS_EXPECTS(ways >= 1);
  const double levels = std::max(1.0, hs::log2d(static_cast<double>(ways)));
  const std::size_t width = deferred ? key_bytes : elem_bytes;
  double ns = levels * level_ns(ways, width);
  if (deferred) {
    // The gather pass pays for the payload move; the tree itself never
    // touches record bytes.
    ns += deferred_elem_ns + gather_byte_ns * static_cast<double>(elem_bytes);
  } else {
    ns += move_byte_ns * static_cast<double>(elem_bytes);
  }
  return ns;
}

double MergeEngineModel::cascaded_ns_per_elem(std::uint64_t ways,
                                              unsigned fan_in,
                                              std::size_t elem_bytes,
                                              std::size_t key_bytes,
                                              bool deferred,
                                              unsigned* levels_out) const {
  HS_EXPECTS(fan_in >= 2);
  unsigned levels = 0;
  for (std::uint64_t x = ways; x > 1; x = (x + fan_in - 1) / fan_in) ++levels;
  levels = std::max(1u, levels);
  if (levels_out) *levels_out = levels;
  // Every level is a flat fan_in-way merge pass over the full dataset.
  return static_cast<double>(levels) *
         flat_ns_per_elem(fan_in, elem_bytes, key_bytes, deferred);
}

double HostMemcpyModel::rate(unsigned threads) const {
  HS_EXPECTS(threads >= 1);
  return std::min(per_thread_bps * threads, max_bps);
}

double HostMemcpyModel::time(std::uint64_t bytes, unsigned threads) const {
  return static_cast<double>(bytes) / rate(threads);
}

}  // namespace hs::model
