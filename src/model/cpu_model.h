// Calibrated CPU cost models.
//
// The repository runs on arbitrary hosts (the CI box has one core), so times
// reported for CPU phases come from analytic models calibrated against the
// paper's own measurements rather than from wall clocks:
//
//  * sort:  t_seq(n) = c_sort · n · log2(n); parallel speedup follows an
//    Amdahl curve whose parallel fraction grows with n as
//    f(n) = 1 - c_f / n^e_f, matching Fig 4's reported speedups
//    (3.17x at n = 1e5 up to 10.12x at n = 1e8 with 16 threads).
//  * merge: t_seq = c_merge · n · max(1, log2(ways)); speedup saturates as
//    S(p) = p / (1 + beta (p - 1)) — memory-bound, 8.14x at 16 threads
//    (Fig 6). `ways` is the number of runs entering the multiway merge,
//    giving the O(n log nb) work term of Section III-A.
//  * memcpy: a single thread moves `per_thread_bps`; p threads saturate at
//    `max_bps` (the PARMEMCPY effect, Section IV-F).
//
// Every quantity is a plain struct field so benches and tests can recalibrate.
#pragma once

#include <cstdint>

namespace hs::model {

struct CpuSortModel {
  double seq_coeff = 3.8e-9;  // seconds per element per log2(n)
  double frac_coeff = 9.0;    // c_f in f(n) = 1 - c_f / n^e_f
  double frac_exp = 0.3;      // e_f
  // Memory bandwidth bounds scalability even for huge n: the parallel
  // fraction saturates here, capping 16-thread speedup near the 10.12x the
  // paper reports at n = 1e8 (Fig 4b shows the curve flattening).
  double frac_max = 0.967;

  double parallel_fraction(std::uint64_t n) const;
  double speedup(unsigned threads, std::uint64_t n) const;
  double seq_time(std::uint64_t n) const;
  double time(std::uint64_t n, unsigned threads) const;
};

struct CpuMergeModel {
  double per_elem_seq = 7.0e-9;  // seconds per element per merge level
  double beta = 0.0644;          // bandwidth-saturation coefficient
  // Memory traffic per merged element (bytes) used when the merge becomes a
  // fluid flow on the host-memory channel: read two streams + write one.
  double traffic_bytes_per_elem = 24.0;

  double speedup(unsigned threads) const;
  /// Time to merge `n` total elements arriving in `ways` runs with `threads`.
  double time(std::uint64_t n, double ways, unsigned threads) const;
  /// Equivalent flow rate (traffic bytes/s) when modelled on a channel.
  double flow_rate(std::uint64_t n, double ways, unsigned threads) const;
};

/// Host merge-engine planning model: per-element nanosecond cost of one flat
/// k-way tournament drain versus a cascaded tree of fan-in-f merges, as a
/// function of element and comparison-key widths. Calibrated against
/// BENCH_hostpath.json (per-level replay cost from the u64/f64/kv64 series)
/// plus a measured flat-merge sweep for the cascade crossover. The sweep
/// (sequential k-way u64 tournament drain, n = 2^22, best of 3):
///
///     k        16    32    64    96   128   192   256   384   512
///     ns/lvl  4.54  4.51  4.64  5.00  4.62  5.61  4.67  5.85  5.06
///
/// Flat per-level throughput holds to k = 128 (256 live read streams with
/// the dual-stream drain) before any penalty is resolvable, and the growth
/// past that is shallow: a least-squares fit of the over-budget points gives
/// ~0.00025 relative cost per excess stream — roughly 8x gentler than the
/// first-principles 0.002 previously assumed. Only the *ordering* of
/// strategies matters to the planner; absolute times are secondary.
struct MergeEngineModel {
  double level_base_ns = 1.0;     // branchless replay: compare + mask select
  double level_byte_ns = 0.55;    // per cached-key byte moved per level
  double move_byte_ns = 0.12;     // streaming read+write per byte per pass
  double gather_byte_ns = 0.30;   // permutation gather, per record byte
  double deferred_elem_ns = 1.1;  // perm entry emission + decode
  double stream_budget = 256.0;   // live read streams (2 per run: dual-stream
                                  // drain) the L2 + prefetchers absorb;
                                  // measured — flat holds through k = 128
  double thrash_slope = 0.00025;  // per-stream replay growth past the budget
                                  // (least-squares over the k > 128 sweep)

  /// Cost of one tournament level at `ways` live runs with `width`-byte
  /// cached keys, including the cache-thrash penalty once the dual-stream
  /// drain's 2*ways read streams exceed the budget.
  double level_ns(std::uint64_t ways, std::size_t width_bytes) const;
  /// Per-element cost of one flat ways-way merge pass.
  double flat_ns_per_elem(std::uint64_t ways, std::size_t elem_bytes,
                          std::size_t key_bytes, bool deferred) const;
  /// Per-element cost of a cascaded tree of fan_in-way merges; also reports
  /// the level count through `levels_out` when non-null.
  double cascaded_ns_per_elem(std::uint64_t ways, unsigned fan_in,
                              std::size_t elem_bytes, std::size_t key_bytes,
                              bool deferred,
                              unsigned* levels_out = nullptr) const;
};

struct HostMemcpyModel {
  double per_thread_bps = 8.0e9;  // std::memcpy, one core
  double max_bps = 25.0e9;        // saturation with many cores

  double rate(unsigned threads) const;
  double time(std::uint64_t bytes, unsigned threads) const;
};

}  // namespace hs::model
