// Calibrated CPU cost models.
//
// The repository runs on arbitrary hosts (the CI box has one core), so times
// reported for CPU phases come from analytic models calibrated against the
// paper's own measurements rather than from wall clocks:
//
//  * sort:  t_seq(n) = c_sort · n · log2(n); parallel speedup follows an
//    Amdahl curve whose parallel fraction grows with n as
//    f(n) = 1 - c_f / n^e_f, matching Fig 4's reported speedups
//    (3.17x at n = 1e5 up to 10.12x at n = 1e8 with 16 threads).
//  * merge: t_seq = c_merge · n · max(1, log2(ways)); speedup saturates as
//    S(p) = p / (1 + beta (p - 1)) — memory-bound, 8.14x at 16 threads
//    (Fig 6). `ways` is the number of runs entering the multiway merge,
//    giving the O(n log nb) work term of Section III-A.
//  * memcpy: a single thread moves `per_thread_bps`; p threads saturate at
//    `max_bps` (the PARMEMCPY effect, Section IV-F).
//
// Every quantity is a plain struct field so benches and tests can recalibrate.
#pragma once

#include <cstdint>

namespace hs::model {

struct CpuSortModel {
  double seq_coeff = 3.8e-9;  // seconds per element per log2(n)
  double frac_coeff = 9.0;    // c_f in f(n) = 1 - c_f / n^e_f
  double frac_exp = 0.3;      // e_f
  // Memory bandwidth bounds scalability even for huge n: the parallel
  // fraction saturates here, capping 16-thread speedup near the 10.12x the
  // paper reports at n = 1e8 (Fig 4b shows the curve flattening).
  double frac_max = 0.967;

  double parallel_fraction(std::uint64_t n) const;
  double speedup(unsigned threads, std::uint64_t n) const;
  double seq_time(std::uint64_t n) const;
  double time(std::uint64_t n, unsigned threads) const;
};

struct CpuMergeModel {
  double per_elem_seq = 7.0e-9;  // seconds per element per merge level
  double beta = 0.0644;          // bandwidth-saturation coefficient
  // Memory traffic per merged element (bytes) used when the merge becomes a
  // fluid flow on the host-memory channel: read two streams + write one.
  double traffic_bytes_per_elem = 24.0;

  double speedup(unsigned threads) const;
  /// Time to merge `n` total elements arriving in `ways` runs with `threads`.
  double time(std::uint64_t n, double ways, unsigned threads) const;
  /// Equivalent flow rate (traffic bytes/s) when modelled on a channel.
  double flow_rate(std::uint64_t n, double ways, unsigned threads) const;
};

struct HostMemcpyModel {
  double per_thread_bps = 8.0e9;  // std::memcpy, one core
  double max_bps = 25.0e9;        // saturation with many cores

  double rate(unsigned threads) const;
  double time(std::uint64_t bytes, unsigned threads) const;
};

}  // namespace hs::model
