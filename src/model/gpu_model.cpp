// GpuSortModel is header-only; this TU anchors the target and verifies the
// header is self-contained.
#include "model/gpu_model.h"
