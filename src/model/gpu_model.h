// On-device sort cost model (the Thrust radix sort of Section III-B).
//
// Radix sort is linear in n; the model is affine: a fixed launch/temporary-
// allocation overhead plus a per-element cost, calibrated so the GP100 sorts
// 8e8 doubles in ~0.9 s (consistent with the sorting component of Fig 8) and
// the K40m at roughly half that throughput (Kepler vs Pascal).
#pragma once

#include <cstdint>

namespace hs::model {

struct GpuSortModel {
  double launch_s = 2.0e-3;    // kernel launch + cub::DeviceRadixSort setup
  double per_elem_s = 1.11e-9; // inverse sorting throughput

  double time(std::uint64_t n) const {
    return launch_s + per_elem_s * static_cast<double>(n);
  }
  double throughput() const { return 1.0 / per_elem_s; }
};

struct DeviceAllocModel {
  double alloc_s = 1.0e-3;  // cudaMalloc-style allocation latency
};

/// On-device merge of sorted runs (the Section V extension): memory-bound on
/// HBM/GDDR, modelled as effective merge traffic throughput (read both runs
/// + write the output = 2x payload bytes of traffic, folded into the rate).
struct GpuMergeModel {
  double launch_s = 1.0e-3;
  double payload_bytes_per_s = 100.0e9;

  double time(std::uint64_t payload_bytes) const {
    return launch_s + static_cast<double>(payload_bytes) / payload_bytes_per_s;
  }
};

}  // namespace hs::model
