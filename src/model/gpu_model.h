// On-device sort cost model (the Thrust radix sort of Section III-B).
//
// Radix sort is linear in n; the model is affine: a fixed launch/temporary-
// allocation overhead plus a per-element cost, calibrated so the GP100 sorts
// 8e8 doubles in ~0.9 s (consistent with the sorting component of Fig 8) and
// the K40m at roughly half that throughput (Kepler vs Pascal).
#pragma once

#include <cstdint>

namespace hs::model {

struct GpuSortModel {
  double launch_s = 2.0e-3;    // kernel launch + cub::DeviceRadixSort setup
  double per_elem_s = 1.11e-9; // inverse sorting throughput

  double time(std::uint64_t n) const {
    return launch_s + per_elem_s * static_cast<double>(n);
  }
  double throughput() const { return 1.0 / per_elem_s; }
};

/// Stehle & Jacobsen-style hybrid MSD radix sort (engine portfolio). The MSD
/// bucket walk, bin computation, and bucket-descriptor management cost a
/// fixed per-element floor whatever the keys look like; each *non-trivial*
/// digit then costs one bandwidth-bound scatter pass. Calibrated relative to
/// the tuned LSD baseline so a full-entropy input (8 of 8 passes) runs ~30%
/// slower than GpuSortModel — the hybrid's edge is entirely entropy-driven
/// pass elision, which the fixed-cost baseline cannot express.
struct GpuHybridSortModel {
  double launch_s = 2.4e-3;       // launch + bucket descriptor setup
  double base_elem_s = 0.20e-9;   // MSD partition/bookkeeping floor
  double per_pass_elem_s = 0.17e-9;  // one scatter pass per non-trivial digit

  double time(std::uint64_t n, unsigned passes) const {
    return launch_s +
           static_cast<double>(n) *
               (base_elem_s + per_pass_elem_s * static_cast<double>(passes));
  }
};

/// Leischner/Osipov/Sanders-style GPU sample sort (engine portfolio):
/// comparison-bound, so cost grows with the *effective* key cardinality
/// (log2 of the collision-corrected distinct count) — equality buckets stop
/// recursing the moment a bucket holds a single value, which is what makes
/// skewed/dup-heavy keys cheap. Calibrated so full-cardinality uniform keys
/// run slightly above the radix baseline (consistent with radix winning on
/// primitive uniform keys in the GPU sorting literature) while 16-value
/// dup-heavy inputs run ~3.7x below it.
struct GpuSampleSortModel {
  double launch_s = 2.8e-3;        // splitter selection + classify launches
  double base_elem_s = 0.08e-9;    // classify + scatter floor
  double per_log2_elem_s = 0.055e-9;  // recursion depth per log2(distinct)

  double time(std::uint64_t n, double log2_distinct) const {
    const double depth = log2_distinct < 1.0 ? 1.0 : log2_distinct;
    return launch_s + static_cast<double>(n) *
                          (base_elem_s + per_log2_elem_s * depth);
  }
};

struct DeviceAllocModel {
  double alloc_s = 1.0e-3;  // cudaMalloc-style allocation latency
};

/// On-device merge of sorted runs (the Section V extension): memory-bound on
/// HBM/GDDR, modelled as effective merge traffic throughput (read both runs
/// + write the output = 2x payload bytes of traffic, folded into the rate).
struct GpuMergeModel {
  double launch_s = 1.0e-3;
  double payload_bytes_per_s = 100.0e9;

  double time(std::uint64_t payload_bytes) const {
    return launch_s + static_cast<double>(payload_bytes) / payload_bytes_per_s;
  }
};

}  // namespace hs::model
