// Host main-memory bandwidth model.
//
// Staging memcpys and CPU merges are all memory-bound; they run as fluid
// flows on one shared "host memory" channel whose capacity is the effective
// copy bandwidth of the dual-socket Xeon (well below the DDR4 peak because
// every copied byte is read and written). This shared channel is what makes
// host-side work contend — the central claim of the paper's Section IV-F
// discussion ("host-side bottlenecks").
#pragma once

namespace hs::model {

struct HostMemModel {
  double channel_bps = 40.0e9;  // aggregate copy-traffic bandwidth
};

}  // namespace hs::model
