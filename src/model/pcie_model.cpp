// PcieModel is header-only; this TU anchors the target and verifies the
// header is self-contained.
#include "model/pcie_model.h"
