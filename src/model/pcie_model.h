// PCIe interconnect model.
//
// One SharedChannel per direction (HtoD, DtoH) per bus: PCIe v3 x16 is full
// duplex, so the directions do not contend with each other, but all GPUs on
// one bus *do* share each direction (the PLATFORM2 dual-GPU contention of
// Figs 10-11). Per-flow caps encode the paper's measured rates: pinned
// transfers run at ~12 GB/s (75% of the 16 GB/s peak, Section V) and pageable
// transfers at roughly half that (the driver's internal staging), and every
// asynchronous chunk pays a submission/synchronisation latency — one of the
// overheads the related work omits (Section IV-E).
#pragma once

#include <cstdint>

namespace hs::model {

struct PcieModel {
  double channel_bps = 12.8e9;    // aggregate per direction, shared by GPUs
  double pinned_bps = 12.0e9;     // per-flow cap, pinned HtoD
  // DtoH runs measurably faster than HtoD on real hardware (the paper's
  // 0.484 s vs 0.536 s for 5.96 GiB); model the asymmetry explicitly.
  double pinned_dtoh_bps = 12.0e9;
  double pageable_bps = 6.0e9;    // per-flow cap, plain cudaMemcpy
  double async_latency_s = 20e-6; // per-chunk submission + sync overhead
  double blocking_latency_s = 30e-6;  // cudaMemcpy call overhead

  double pinned_time(std::uint64_t bytes) const {
    return async_latency_s + static_cast<double>(bytes) / pinned_bps;
  }
  double pinned_dtoh_time(std::uint64_t bytes) const {
    return async_latency_s + static_cast<double>(bytes) / pinned_dtoh_bps;
  }
  double pageable_time(std::uint64_t bytes) const {
    return blocking_latency_s + static_cast<double>(bytes) / pageable_bps;
  }
};

}  // namespace hs::model
