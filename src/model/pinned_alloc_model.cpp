// PinnedAllocModel is header-only; this TU anchors the target and verifies
// the header is self-contained.
#include "model/pinned_alloc_model.h"
