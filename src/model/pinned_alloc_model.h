// Pinned (page-locked) host memory allocation cost.
//
// Affine model t = base + per_byte · bytes calibrated to the paper's two
// measurements (Section IV-E.1): allocating ps = 1e6 8-byte elements (8 MB)
// takes 0.01 s, and ps = 8e8 elements (6.4 GB) takes 2.2 s — the anecdote
// that makes "just pin the whole buffer" a losing strategy and staging
// buffers necessary.
#pragma once

#include <cstdint>

namespace hs::model {

struct PinnedAllocModel {
  double base_s = 7.26e-3;      // page-table setup, driver round trip
  double per_byte_s = 3.426e-10;  // page pinning cost

  double time(std::uint64_t bytes) const {
    return base_s + per_byte_s * static_cast<double>(bytes);
  }
};

}  // namespace hs::model
