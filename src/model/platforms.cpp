#include "model/platforms.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/units.h"

namespace hs::model {

Platform platform1() {
  Platform p;
  p.name = "PLATFORM1";
  p.software = "CUDA 9";
  p.cpu = CpuSpec{"2x Xeon E5-2620 v4", 2, 8, 2.1, 128 * kGiB};

  GpuSpec gp100;
  gp100.model = "Quadro GP100";
  gp100.cuda_cores = 3584;
  gp100.memory_bytes = 16 * kGiB;
  // Calibrated so sorting 8e8 doubles takes ~0.9 s — the GPUSort component of
  // Fig 8 at n = 8e8 (~0.9e9 keys/s, in line with Thrust 64-bit radix on
  // Pascal).
  gp100.sort = GpuSortModel{2.0e-3, 1.11e-9};
  // Portfolio engines, calibrated relative to the LSD baseline above: the
  // hybrid's 8-pass worst case (0.20 + 8*0.17 = 1.56 ns/elem) sits ~40%
  // above it so full-entropy keys stay on the baseline, while every elided
  // pass buys 0.17 ns/elem; sample sort crosses below the baseline once the
  // effective key cardinality drops under ~2^18.
  gp100.hybrid_sort = GpuHybridSortModel{2.4e-3, 0.20e-9, 0.17e-9};
  gp100.sample_sort = GpuSampleSortModel{2.8e-3, 0.08e-9, 0.055e-9};
  // HBM2 (~732 GB/s peak) sustains roughly 180 GB/s of merge payload once
  // read+write traffic and branchy merge-path kernels are accounted for.
  gp100.merge = GpuMergeModel{1.0e-3, 180.0e9};
  p.gpus = {gp100};

  // HtoD measured at 11.94 GB/s (0.536 s / 5.96 GiB); DtoH at 13.22 GB/s
  // (0.484 s). The shared-direction channel capacity sits just above the
  // single-flow rate so dual-stream same-direction transfers contend.
  p.pcie = PcieModel{13.5e9, 11.94e9, 13.22e9, 6.0e9, 20e-6, 30e-6};
  p.host_mem = HostMemModel{40.0e9};
  p.pinned_alloc = PinnedAllocModel{};  // calibrated in the header
  p.cpu_sort = CpuSortModel{4.3e-9, 9.0, 0.3};
  p.cpu_merge = CpuMergeModel{7.0e-9, 0.0644, 24.0};
  p.host_memcpy = HostMemcpyModel{8.0e9, 25.0e9};
  return p;
}

Platform platform2() {
  Platform p;
  p.name = "PLATFORM2";
  p.software = "CUDA 7.5";
  p.cpu = CpuSpec{"2x Xeon E5-2660 v3", 2, 10, 2.6, 128 * kGiB};

  GpuSpec k40;
  k40.model = "Tesla K40m";
  k40.cuda_cores = 2880;
  k40.memory_bytes = 12 * kGiB;
  // Kepler-class throughput (~0.34e9 keys/s), calibrated so the derived
  // 1-GPU lower-bound slope matches the paper's 6.278e-9 s/elem (Fig 11) and
  // the Fig 5 CPU/GPU ratio lands in the reported 1.22-1.32 band.
  k40.sort = GpuSortModel{2.5e-3, 2.9e-9};
  // Same portfolio ratios as PLATFORM1, scaled by the Kepler/Pascal
  // throughput gap (2.9/1.11): the engine ordering per distribution is a
  // property of the algorithms, not of the silicon generation.
  k40.hybrid_sort = GpuHybridSortModel{3.0e-3, 0.52e-9, 0.44e-9};
  k40.sample_sort = GpuSampleSortModel{3.5e-3, 0.21e-9, 0.14e-9};
  // GDDR5 (~288 GB/s peak) -> ~80 GB/s of effective merge payload.
  k40.merge = GpuMergeModel{1.2e-3, 80.0e9};
  p.gpus = {k40, k40};  // both on one PCIe bus

  p.pcie = PcieModel{11.5e9, 11.0e9, 11.8e9, 5.5e9, 25e-6, 35e-6};
  p.host_mem = HostMemModel{45.0e9};
  p.pinned_alloc = PinnedAllocModel{};
  // Higher clock than PLATFORM1 scales the per-element sort constant.
  // Merging is memory-bound, not core-bound, so its constant does NOT scale
  // with clock — this is what makes PIPEDATA fall below the lower-bound model
  // at large n on PLATFORM2 (the Fig 11 crossover).
  p.cpu_sort = CpuSortModel{4.3e-9 * 2.1 / 2.6, 9.0, 0.3};
  p.cpu_merge = CpuMergeModel{7.0e-9, 0.0644, 24.0};
  p.host_memcpy = HostMemcpyModel{8.5e9, 28.0e9};
  return p;
}

double reference_sort_time(const Platform& p, CpuSortLibrary lib,
                           std::uint64_t n, unsigned threads) {
  HS_EXPECTS(threads >= 1);
  const double gnu = p.cpu_sort.time(n, threads);
  switch (lib) {
    case CpuSortLibrary::kGnuParallel:
      return gnu;
    case CpuSortLibrary::kTbb: {
      // Fig 4a: TBB tracks GNU for small inputs but is measurably slower for
      // large ones; a mild log-growing penalty reproduces the crossover.
      const double penalty =
          1.05 + 0.06 * std::max(0.0, std::log10(static_cast<double>(n) / 1e5));
      return gnu * penalty;
    }
    case CpuSortLibrary::kStdSort:
      // "std::sort and the GNU parallel sort with 1 thread yield nearly
      // identical performance."
      return p.cpu_sort.time(n, 1);
    case CpuSortLibrary::kStdQsort:
      // "std::qsort is slower than std::sort by roughly a factor of 2."
      return 2.0 * p.cpu_sort.time(n, 1);
  }
  return gnu;
}

std::uint64_t max_bline_elems(const Platform& p, std::uint64_t elem_size) {
  HS_EXPECTS(!p.gpus.empty() && elem_size > 0);
  std::uint64_t smallest = p.gpus.front().memory_bytes;
  for (const GpuSpec& g : p.gpus) smallest = std::min(smallest, g.memory_bytes);
  return smallest / (2 * elem_size);
}

}  // namespace hs::model
