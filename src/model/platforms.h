// Platform descriptions — Table II of the paper, plus every calibration
// constant the simulator needs. Users can define their own Platform (see
// examples/custom_platform.cpp) to explore other configurations, e.g. an
// NVLink-class interconnect as discussed in the paper's Section V.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/cpu_model.h"
#include "model/gpu_model.h"
#include "model/host_mem_model.h"
#include "model/pcie_model.h"
#include "model/pinned_alloc_model.h"

namespace hs::model {

struct CpuSpec {
  std::string model;
  unsigned sockets = 2;
  unsigned cores_per_socket = 8;
  double clock_ghz = 2.1;
  std::uint64_t memory_bytes = 0;

  unsigned total_cores() const { return sockets * cores_per_socket; }
};

struct GpuSpec {
  std::string model;
  unsigned cuda_cores = 0;
  std::uint64_t memory_bytes = 0;
  GpuSortModel sort;
  /// Engine-portfolio alternatives to `sort` (vgpu::DeviceSortEngine):
  /// distribution-dependent cost models the planner chooses between.
  GpuHybridSortModel hybrid_sort;
  GpuSampleSortModel sample_sort;
  GpuMergeModel merge;
  DeviceAllocModel alloc;
};

struct Platform {
  std::string name;
  std::string software;  // CUDA version in the paper's Table II
  CpuSpec cpu;
  std::vector<GpuSpec> gpus;  // all sharing one PCIe bus, as on PLATFORM2
  PcieModel pcie;
  HostMemModel host_mem;
  PinnedAllocModel pinned_alloc;
  CpuSortModel cpu_sort;
  CpuMergeModel cpu_merge;
  HostMemcpyModel host_memcpy;

  /// Default reference-implementation thread count (16 on PLATFORM1, 20 on
  /// PLATFORM2 — Section IV-C).
  unsigned reference_threads() const { return cpu.total_cores(); }
};

/// PLATFORM1: 2x Xeon E5-2620 v4 (16 cores, 2.1 GHz, 128 GiB), Quadro GP100
/// (3584 cores, 16 GiB), CUDA 9.
Platform platform1();

/// PLATFORM2: 2x Xeon E5-2660 v3 (20 cores, 2.6 GHz, 128 GiB), 2x Tesla K40m
/// (2880 cores, 12 GiB each) on a shared PCIe bus, CUDA 7.5.
Platform platform2();

/// Reference CPU sorting libraries benchmarked in Fig 4. The GNU parallel
/// mode sort is the baseline; TBB tracks it but falls behind at large n;
/// std::qsort is ~2x std::sort due to indirect comparator calls; std::sort
/// equals the 1-thread parallel sort.
enum class CpuSortLibrary { kGnuParallel, kTbb, kStdSort, kStdQsort };

double reference_sort_time(const Platform& p, CpuSortLibrary lib,
                           std::uint64_t n, unsigned threads);

/// Largest n a single-batch (BLINE) run admits: the batch-sizing rule needs
/// an input buffer plus a sort temporary per stream (Section IV-F), i.e.
/// 2·n·elem_size bytes on the smallest GPU. Useful for sizing observability
/// comparisons that want every approach to run the same n.
std::uint64_t max_bline_elems(const Platform& p, std::uint64_t elem_size);

}  // namespace hs::model
