#include "model/service_model.h"

#include <algorithm>

namespace hs::model {

JobCostBreakdown JobCostModel::estimate(const Platform& plat,
                                        const JobCostInputs& in) const {
  JobCostBreakdown out;
  if (in.n == 0) return out;
  const double n = static_cast<double>(in.n);
  const double bytes = n * static_cast<double>(in.elem_size);
  const std::uint64_t chunk =
      in.chunk_elems > 0 ? std::min(in.chunk_elems, in.n) : in.n;
  out.chunks = (in.n + chunk - 1) / chunk;
  const double chunks = static_cast<double>(out.chunks);

  // Run formation: each chunk stages in (pageable -> pinned), crosses PCIe,
  // sorts on device, and comes back. Per-chunk fixed costs (launch, async
  // submission) pay once per chunk; the linear terms depend only on n.
  double sort_s = 0;
  if (!plat.gpus.empty()) {
    const GpuSortModel& gpu = plat.gpus.front().sort;
    sort_s = gpu.launch_s * chunks + gpu.per_elem_s * n;
  } else {
    sort_s = plat.cpu_sort.time(chunk, plat.reference_threads()) * chunks;
  }
  const double htod_s =
      plat.pcie.async_latency_s * chunks + bytes / plat.pcie.pinned_bps;
  const double dtoh_s =
      plat.pcie.async_latency_s * chunks + bytes / plat.pcie.pinned_dtoh_bps;
  const double staging_s = plat.host_memcpy.time(
      static_cast<std::uint64_t>(2 * bytes), in.merge_threads);
  out.form_seconds = (sort_s + htod_s + dtoh_s + staging_s) * wall_factor;

  // Final merge: one flat k-way tournament drain of the durable runs,
  // scaled by the calibrated merge-speedup curve for the thread count.
  if (out.chunks > 1) {
    const std::size_t key_bytes = std::min<std::size_t>(in.elem_size, 8);
    const double flat_ns = merge_engine.flat_ns_per_elem(
        out.chunks, in.elem_size, key_bytes, /*deferred=*/false);
    const double speedup = std::max(1.0, plat.cpu_merge.speedup(
                                             std::max(1u, in.merge_threads)));
    out.merge_seconds = flat_ns * 1e-9 * n / speedup * wall_factor;
  }

  // Disk legs: read input + write runs during formation; a second full
  // read + write pass when an external merge is needed.
  const double passes = out.chunks > 1 ? 4.0 : 2.0;
  out.io_seconds = passes * bytes / disk_bps * wall_factor;

  out.overhead_seconds = per_run_overhead_s * chunks * wall_factor;
  return out;
}

}  // namespace hs::model
