// Whole-job cost model for service-level SLO admission (docs/service.md).
//
// The per-phase models in this directory price one pipeline stage each; the
// sort service needs the *end-to-end* figure — "can this job finish before
// its deadline?" — before a worker ever touches it. JobCostModel composes
// the calibrated building blocks the planner already trusts (GpuSortModel
// for run formation, PcieModel for the staging round trip, HostMemcpyModel
// for the pageable<->pinned legs, MergeEngineModel + CpuMergeModel for the
// final k-way drain) with the two quantities only the service knows: disk
// bandwidth for the external legs and a wall factor calibrating model
// seconds to the host the daemon actually runs on.
//
// The estimate is deliberately a *fast-fail filter*, not a guarantee: the
// deadline watchdog remains the enforcer for admitted jobs. What admission
// buys is rejecting hopeless jobs at submit() — typed, with an
// earliest-feasible hint — instead of burning a worker and cancelling at the
// deadline (ISSUE 10's "never admit-then-cancel").
#pragma once

#include <cstddef>
#include <cstdint>

#include "model/cpu_model.h"
#include "model/platforms.h"

namespace hs::model {

/// What the service knows about a job before running it. `chunk_elems`
/// is the external sort's run-formation chunk (0 = fits in one chunk).
struct JobCostInputs {
  std::uint64_t n = 0;
  std::size_t elem_size = sizeof(double);
  std::uint64_t chunk_elems = 0;
  unsigned merge_threads = 1;
};

/// Itemised estimate; seconds are model (virtual-platform) time scaled by
/// JobCostModel::wall_factor.
struct JobCostBreakdown {
  double form_seconds = 0;      // device sort + PCIe + staging memcpy
  double merge_seconds = 0;     // final k-way merge of the durable runs
  double io_seconds = 0;        // disk read/write legs of the external path
  double overhead_seconds = 0;  // per-run fixed costs (open/seal/journal)
  std::uint64_t chunks = 1;

  double total() const {
    return form_seconds + merge_seconds + io_seconds + overhead_seconds;
  }
};

struct JobCostModel {
  /// Sequential disk bandwidth for run files; the default is a mid-range
  /// SATA SSD, low enough to be conservative on CI sandboxes.
  double disk_bps = 1.2e9;

  /// Fixed cost per durable run: file open, frame seal, journal append.
  double per_run_overhead_s = 2e-3;

  /// Calibration of model seconds to wall seconds on the serving host
  /// (1.0 = trust the virtual platform; a loaded single-core CI box wants
  /// more). Scales the whole estimate.
  double wall_factor = 1.0;

  /// Host merge-engine pricing for the final k-way drain.
  MergeEngineModel merge_engine;

  JobCostBreakdown estimate(const Platform& plat,
                            const JobCostInputs& in) const;
};

}  // namespace hs::model
