#include "obs/counters.h"

namespace hs::obs {
namespace {

std::atomic<bool> g_enabled{true};

}  // namespace

std::string_view counter_name(Counter c) {
  switch (c) {
    case Counter::kBytesHtoD: return "bytes_htod";
    case Counter::kBytesDtoH: return "bytes_dtoh";
    case Counter::kBytesStageIn: return "bytes_stage_in";
    case Counter::kBytesStageOut: return "bytes_stage_out";
    case Counter::kBytesParMemcpy: return "bytes_par_memcpy";
    case Counter::kRadixSorts: return "radix_sorts";
    case Counter::kRadixPassesExecuted: return "radix_passes_executed";
    case Counter::kRadixPassesSkipped: return "radix_passes_skipped";
    case Counter::kMergeElements: return "merge_elements";
    case Counter::kMergeRuns: return "merge_runs";
    case Counter::kMergeParts: return "merge_parts";
    case Counter::kMergeDeferredElements: return "merge_deferred_elements";
    case Counter::kMergeCascadeLevels: return "merge_cascade_levels";
    case Counter::kMergePlanFlat: return "merge_plan_flat";
    case Counter::kMergePlanCascaded: return "merge_plan_cascaded";
    case Counter::kMergePlanDeferred: return "merge_plan_deferred";
    case Counter::kPoolTasks: return "pool_tasks";
    case Counter::kBytesPinnedAlloc: return "bytes_pinned_alloc";
    case Counter::kBytesDeviceAlloc: return "bytes_device_alloc";
    case Counter::kFaultsInjected: return "faults_injected";
    case Counter::kTransferRetries: return "transfer_retries";
    case Counter::kBatchResplits: return "batch_resplits";
    case Counter::kDevicesBlacklisted: return "devices_blacklisted";
    case Counter::kAttempts: return "attempts";
    case Counter::kCpuFallbacks: return "cpu_fallbacks";
    case Counter::kGovernorPsShrinks: return "governor_ps_shrinks";
    case Counter::kGovernorSpills: return "governor_spills";
    case Counter::kRunsRevalidated: return "runs_revalidated";
    case Counter::kRunsQuarantined: return "runs_quarantined";
    case Counter::kBytesQuarantined: return "bytes_quarantined";
    case Counter::kChunksResorted: return "chunks_resorted";
    case Counter::kJobsSubmitted: return "jobs_submitted";
    case Counter::kJobsRejected: return "jobs_rejected";
    case Counter::kJobsCompleted: return "jobs_completed";
    case Counter::kJobsFailed: return "jobs_failed";
    case Counter::kJobsRetried: return "jobs_retried";
    case Counter::kJobsCancelled: return "jobs_cancelled";
    case Counter::kJobsResumed: return "jobs_resumed";
    case Counter::kJobBudgetShrinks: return "job_budget_shrinks";
    case Counter::kJobsSloRejected: return "jobs_slo_rejected";
    case Counter::kJobsShedRejected: return "jobs_shed_rejected";
    case Counter::kJobsPreempted: return "jobs_preempted";
    case Counter::kServiceModeTransitions: return "service_mode_transitions";
    case Counter::kSortPlans: return "sort_plans";
    case Counter::kPlanEngineRadix: return "plan_engine_radix";
    case Counter::kPlanEngineHybrid: return "plan_engine_hybrid";
    case Counter::kPlanEngineSample: return "plan_engine_sample";
    case Counter::kPlanPassesSkipped: return "plan_passes_skipped";
    case Counter::kPlanBatchAdjusts: return "plan_batch_adjusts";
  }
  return "?";
}

CounterRegistry& counters() {
  static CounterRegistry registry;
  return registry;
}

bool counters_enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_counters_enabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

}  // namespace hs::obs
