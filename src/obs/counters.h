// Process-wide registry of monotonic counters.
//
// Counters quantify what the pipeline actually did — bytes over each link,
// radix passes executed, elements merged, faults absorbed — so the paper's
// accounting claims (e.g. "one round trip moves 2·n·sizeof(elem) bytes over
// PCIe") become checkable invariants instead of folklore. The heterogeneous
// sorter snapshots the registry around each run and reports the delta in
// core::Report::counters.
//
// Cost discipline: a counter bump is one relaxed atomic add behind one
// relaxed atomic load, issued per *call* (never per element), and the
// registry is a fixed array — counting allocates nothing. Disable globally
// with set_counters_enabled(false) if even that is unwanted.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hs::obs {

enum class Counter : std::uint8_t {
  // Pipeline data movement (fed from the engine trace after each run; retried
  // transfers count their re-sent payload, so these measure actual traffic).
  kBytesHtoD,
  kBytesDtoH,
  kBytesStageIn,   // pageable -> pinned staging memcpy
  kBytesStageOut,  // pinned -> pageable staging memcpy
  // Host hot paths (wall-clock side, fed at the call sites).
  kBytesParMemcpy,       // parallel_memcpy payload
  kRadixSorts,           // radix_sort / radix_sort_parallel calls
  kRadixPassesExecuted,  // non-trivial passes actually run
  kRadixPassesSkipped,   // trivial passes elided by the engine
  kMergeElements,        // elements drained through multiway_merge_parallel
  kMergeRuns,            // input runs across those merges
  kMergeParts,           // exact-selection partitions merged in parallel
  kMergeDeferredElements,  // elements routed through payload-deferred lanes
  kMergeCascadeLevels,   // merge passes executed by cascaded topologies
  // Merge planner decisions (one bump per planned multiway merge).
  kMergePlanFlat,
  kMergePlanCascaded,
  kMergePlanDeferred,
  kPoolTasks,            // raw tasks dispatched by ThreadPool::submit_raw
  // Allocations (vgpu).
  kBytesPinnedAlloc,
  kBytesDeviceAlloc,
  // Recovery (mirrors core::RecoveryStats; fed by the recovery loop).
  kFaultsInjected,
  kTransferRetries,
  kBatchResplits,
  kDevicesBlacklisted,
  kAttempts,
  kCpuFallbacks,
  // Memory governor (fed by the recovery loop / the governor itself).
  kGovernorPsShrinks,  // staging shrink-and-retry after a host alloc failure
  kGovernorSpills,     // sorts degraded to the external spill path
  // Crash-safe external sort (fed by io::external_sort resume/recovery).
  kRunsRevalidated,    // journaled runs checksum-verified on resume
  kRunsQuarantined,    // runs failing verification, set aside
  kBytesQuarantined,   // on-disk bytes of quarantined runs
  kChunksResorted,     // input chunks re-sorted to replace bad runs
  // Sort service (fed by service::JobScheduler admission / queue / watchdog).
  kJobsSubmitted,      // submit() calls that passed admission
  kJobsRejected,       // submit() calls refused with ServiceOverloaded
  kJobsCompleted,      // jobs that finished with verified output
  kJobsFailed,         // jobs that exhausted retries with a typed error
  kJobsRetried,        // attempt restarts after a typed failure
  kJobsCancelled,      // watchdog deadline cancellations requested
  kJobsResumed,        // jobs re-adopted from a prior daemon's manifest
  kJobBudgetShrinks,   // per-job budget halvings during dispatch negotiation
  // Service survivability (SLO admission, preemption, degraded mode).
  kJobsSloRejected,    // submissions refused at admission with SloUnmeetable
  kJobsShedRejected,   // submissions refused by Shed-mode load shedding
  kJobsPreempted,      // running jobs that checkpoint-and-yielded their grant
  kServiceModeTransitions,  // Normal/Pressure/Shed state changes
  // Sort planner decisions (fed by core::HeterogeneousSorter per attempt).
  kSortPlans,           // planner invocations (non-default engine policies)
  kPlanEngineRadix,     // launches planned on the LSD radix baseline
  kPlanEngineHybrid,    // launches planned on the hybrid MSD engine
  kPlanEngineSample,    // launches planned on the sample-sort engine
  kPlanPassesSkipped,   // radix passes the plan predicts elided (hybrid)
  kPlanBatchAdjusts,    // batch geometries changed by the makespan estimate
};

inline constexpr std::size_t kNumCounters = 49;

std::string_view counter_name(Counter c);

/// Point-in-time copy of every counter; subtract two to get a run's delta.
struct CounterSnapshot {
  std::array<std::uint64_t, kNumCounters> values{};

  std::uint64_t value(Counter c) const {
    return values[static_cast<std::size_t>(c)];
  }
  bool any() const {
    for (const std::uint64_t v : values)
      if (v != 0) return true;
    return false;
  }
  /// Bytes over PCIe in both directions — 2·n·sizeof(elem) for one fault-free
  /// round trip of every element.
  std::uint64_t pcie_round_trip_bytes() const {
    return value(Counter::kBytesHtoD) + value(Counter::kBytesDtoH);
  }

  CounterSnapshot operator-(const CounterSnapshot& rhs) const {
    CounterSnapshot d;
    for (std::size_t i = 0; i < kNumCounters; ++i)
      d.values[i] = values[i] - rhs.values[i];
    return d;
  }
};

class CounterRegistry {
 public:
  void add(Counter c, std::uint64_t v) {
    counters_[static_cast<std::size_t>(c)].fetch_add(v,
                                                     std::memory_order_relaxed);
  }
  std::uint64_t value(Counter c) const {
    return counters_[static_cast<std::size_t>(c)].load(
        std::memory_order_relaxed);
  }
  CounterSnapshot snapshot() const {
    CounterSnapshot s;
    for (std::size_t i = 0; i < kNumCounters; ++i)
      s.values[i] = counters_[i].load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kNumCounters> counters_{};
};

/// The process-wide registry (always constructed; counters are monotonic for
/// the process lifetime).
CounterRegistry& counters();

bool counters_enabled();
void set_counters_enabled(bool enabled);

/// Hot-path increment: no-op unless counting is enabled.
inline void count(Counter c, std::uint64_t v) {
  if (counters_enabled()) counters().add(c, v);
}

}  // namespace hs::obs
