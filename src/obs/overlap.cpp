#include "obs/overlap.h"

#include <algorithm>

namespace hs::obs {

std::string_view resource_name(Resource r) {
  switch (r) {
    case Resource::kHtoD: return "HtoD";
    case Resource::kDtoH: return "DtoH";
    case Resource::kGpu: return "GPU";
    case Resource::kStaging: return "Staging";
    case Resource::kCpuSort: return "CpuSort";
    case Resource::kMerge: return "Merge";
    case Resource::kAlloc: return "Alloc";
    case Resource::kSync: return "Sync";
    case Resource::kOther: return "Other";
  }
  return "?";
}

Resource resource_of(std::string_view category) {
  if (category == "HtoD") return Resource::kHtoD;
  if (category == "DtoH") return Resource::kDtoH;
  if (category == "GPUSort") return Resource::kGpu;
  if (category == "StageIn" || category == "StageOut" || category == "Memcpy")
    return Resource::kStaging;
  if (category == "CpuSort") return Resource::kCpuSort;
  if (category == "PairMerge" || category == "MultiwayMerge" ||
      category == "Merge")
    return Resource::kMerge;
  if (category == "PinnedAlloc" || category == "DeviceAlloc")
    return Resource::kAlloc;
  if (category == "Sync") return Resource::kSync;
  return Resource::kOther;
}

namespace detail {

Intervals merge_intervals(Intervals raw) {
  Intervals out;
  std::erase_if(raw, [](const auto& iv) { return iv.second <= iv.first; });
  if (raw.empty()) return out;
  std::sort(raw.begin(), raw.end());
  out.push_back(raw.front());
  for (std::size_t i = 1; i < raw.size(); ++i) {
    if (raw[i].first <= out.back().second) {
      out.back().second = std::max(out.back().second, raw[i].second);
    } else {
      out.push_back(raw[i]);
    }
  }
  return out;
}

double total_length(const Intervals& iv) {
  double sum = 0;
  for (const auto& [lo, hi] : iv) sum += hi - lo;
  return sum;
}

double intersection_length(const Intervals& a, const Intervals& b) {
  double sum = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const double lo = std::max(a[i].first, b[j].first);
    const double hi = std::min(a[i].second, b[j].second);
    if (hi > lo) sum += hi - lo;
    if (a[i].second < b[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return sum;
}

Intervals union_of(const Intervals& a, const Intervals& b) {
  Intervals all = a;
  all.insert(all.end(), b.begin(), b.end());
  return merge_intervals(std::move(all));
}

}  // namespace detail

double OverlapReport::overlap_fraction(Resource a, Resource b) const {
  const double lo = std::min(usage[static_cast<std::size_t>(a)].busy,
                             usage[static_cast<std::size_t>(b)].busy);
  return lo > 0 ? overlap_seconds(a, b) / lo : 0.0;
}

OverlapReport analyze_spans(std::span<const Span> spans) {
  using detail::Intervals;
  OverlapReport rep;

  std::array<Intervals, kNumResources> raw;
  bool first = true;
  for (const Span& s : spans) {
    if (s.category == "group") continue;  // containers, not resource time
    const auto r = static_cast<std::size_t>(resource_of(s.category));
    raw[r].emplace_back(s.start, s.end);
    rep.usage[r].bytes += s.bytes;
    rep.usage[r].spans += 1;
    if (first) {
      rep.window_start = s.start;
      rep.window_end = s.end;
      first = false;
    } else {
      rep.window_start = std::min(rep.window_start, s.start);
      rep.window_end = std::max(rep.window_end, s.end);
    }
  }
  if (first) return rep;  // nothing but groups (or empty input)

  std::array<Intervals, kNumResources> merged;
  for (std::size_t r = 0; r < kNumResources; ++r) {
    merged[r] = detail::merge_intervals(std::move(raw[r]));
    rep.usage[r].busy = detail::total_length(merged[r]);
    // The union is contained in the window, so utilisation is <= 1 by
    // construction.
    rep.usage[r].utilisation =
        rep.window() > 0 ? rep.usage[r].busy / rep.window() : 0.0;
  }

  for (std::size_t a = 0; a < kNumResources; ++a) {
    for (std::size_t b = a + 1; b < kNumResources; ++b) {
      const double sec = detail::intersection_length(merged[a], merged[b]);
      rep.overlap[a][b] = sec;
      rep.overlap[b][a] = sec;
    }
  }

  const auto idx = [](Resource r) { return static_cast<std::size_t>(r); };
  const Intervals copies = detail::union_of(merged[idx(Resource::kHtoD)],
                                            merged[idx(Resource::kDtoH)]);
  const Intervals& gpu = merged[idx(Resource::kGpu)];
  const double copy_busy = detail::total_length(copies);
  const double gpu_busy = rep.usage[idx(Resource::kGpu)].busy;
  if (copy_busy > 0 && gpu_busy > 0) {
    rep.copy_sort_overlap = detail::intersection_length(copies, gpu) /
                            std::min(copy_busy, gpu_busy);
  }
  rep.merge_sort_overlap =
      rep.overlap_fraction(Resource::kMerge, Resource::kGpu);

  rep.alloc_seconds = rep.usage[idx(Resource::kAlloc)].busy;
  rep.staging_seconds = rep.usage[idx(Resource::kStaging)].busy;
  rep.sync_seconds = rep.usage[idx(Resource::kSync)].busy;
  return rep;
}

}  // namespace hs::obs
