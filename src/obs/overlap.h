// Overlap analyzer: folds a span set into per-resource utilisation, pairwise
// overlap fractions, and a Stehle-style overhead itemisation.
//
// The paper's pipelined approaches win *because* resources overlap — PIPEDATA
// runs HtoD, DtoH and GPU sort concurrently (Figure 2), PIPEMERGE adds the
// CPU pair merges (Figure 3) — while the related-work accounting of Stehle &
// Jacobsen omits exactly the phases this analyzer itemises (pinned
// allocation, staging memcpys, synchronisation; Section IV-E). The analyzer
// turns both claims into numbers: utilisation per resource class, overlapped
// seconds between any two classes, and the overhead components the §IV-G
// lower-bound comparison must add back.
//
// All quantities are computed on merged interval unions, so re-entrant or
// multi-stream spans of one class never double-count time.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/span.h"

namespace hs::obs {

/// Resource classes spans are folded into. Wall and virtual categories map
/// onto the same classes so one analyzer serves both clocks.
enum class Resource : std::uint8_t {
  kHtoD,     // PCIe host -> device
  kDtoH,     // PCIe device -> host
  kGpu,      // device sort/merge kernels
  kStaging,  // host staging memcpys (incl. parallel_memcpy wall spans)
  kCpuSort,  // host radix/batch sorts (wall clock)
  kMerge,    // host pair + multiway merges
  kAlloc,    // pinned + device allocation
  kSync,     // per-chunk synchronisation
  kOther,
};

inline constexpr std::size_t kNumResources = 9;

std::string_view resource_name(Resource r);

/// Maps a span category (sim phase name or wall-clock category) to its
/// resource class. Unknown categories fold into kOther.
Resource resource_of(std::string_view category);

struct ResourceUsage {
  double busy = 0;         // union of the class's intervals, seconds
  double utilisation = 0;  // busy / analysis window, in [0, 1]
  std::uint64_t bytes = 0;
  std::size_t spans = 0;
};

struct OverlapReport {
  double window_start = 0;  // earliest span start
  double window_end = 0;    // latest span end
  double window() const { return window_end - window_start; }

  std::array<ResourceUsage, kNumResources> usage{};

  /// Seconds during which both classes were simultaneously busy (measured on
  /// their interval unions; symmetric by construction).
  std::array<std::array<double, kNumResources>, kNumResources> overlap{};

  double overlap_seconds(Resource a, Resource b) const {
    return overlap[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
  }

  /// overlap_seconds normalised by the smaller busy time: 1 means the less
  /// busy class ran entirely under the other, 0 means strict serialisation.
  double overlap_fraction(Resource a, Resource b) const;

  /// Copy ∥ sort: union(HtoD, DtoH) overlapped with GPU compute, as a
  /// fraction of the smaller of the two busy times — the Figure 2 claim.
  double copy_sort_overlap = 0;

  /// Merge ∥ sort: host merges overlapped with GPU compute — the Figure 3
  /// claim (zero for everything except PIPEMERGE).
  double merge_sort_overlap = 0;

  /// Overhead itemisation — the components the related-work accounting omits.
  double alloc_seconds = 0;    // pinned + device allocation busy time
  double staging_seconds = 0;  // staging memcpy busy time
  double sync_seconds = 0;     // synchronisation busy time
  double overhead_seconds() const {
    return alloc_seconds + staging_seconds + sync_seconds;
  }
};

/// Analyzes a span set. Group/container spans (category "group") are skipped;
/// every other span contributes its [start, end) to its resource class.
/// Spans from different clocks share one window — analyze them separately if
/// mixing timelines is not what you want.
OverlapReport analyze_spans(std::span<const Span> spans);

namespace detail {

/// Disjoint, sorted intervals. The analyzer's primitive; exposed for tests.
using Intervals = std::vector<std::pair<double, double>>;

/// Sorts and merges raw intervals (empty/negative ones are dropped).
Intervals merge_intervals(Intervals raw);

double total_length(const Intervals& iv);

/// Length of the intersection of two merged interval lists.
double intersection_length(const Intervals& a, const Intervals& b);

/// Union of two merged interval lists (result is merged again).
Intervals union_of(const Intervals& a, const Intervals& b);

}  // namespace detail

}  // namespace hs::obs
