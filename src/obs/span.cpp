#include "obs/span.h"

#include <chrono>

#include "common/assert.h"

namespace hs::obs {
namespace {

std::atomic<SpanRecorder*> g_recorder{nullptr};

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Per-thread nesting state. Bound to one recorder *epoch* at a time: if a
// different recorder is installed the stale stack is abandoned (open spans
// across an install/uninstall are a documented caller error). Epochs, not
// addresses — see SpanRecorder::epoch_.
struct ThreadState {
  std::uint64_t owner_epoch = 0;  // 0 = unbound (epochs start at 1)
  std::vector<std::uint32_t> open;
  std::uint32_t track = 0;
  bool track_assigned = false;
};

std::atomic<std::uint64_t> g_next_epoch{1};

}  // namespace

struct ThreadStateAccess {
  static ThreadState& get(const SpanRecorder* rec) {
    thread_local ThreadState state;
    if (state.owner_epoch != rec->epoch_) {
      state.owner_epoch = rec->epoch_;
      state.open.clear();
      state.track_assigned = false;
    }
    return state;
  }
};

namespace {

ThreadState& thread_state(const SpanRecorder* rec) {
  return ThreadStateAccess::get(rec);
}

}  // namespace

SpanRecorder::SpanRecorder(unsigned sample_period)
    : origin_ns_(steady_ns()),
      sample_period_(sample_period == 0 ? 1 : sample_period),
      epoch_(g_next_epoch.fetch_add(1, std::memory_order_relaxed)) {}

double SpanRecorder::now() const {
  return static_cast<double>(steady_ns() - origin_ns_) * 1e-9;
}

std::uint32_t SpanRecorder::record(Span s) {
  std::lock_guard lock(mu_);
  spans_.push_back(std::move(s));
  return static_cast<std::uint32_t>(spans_.size() - 1);
}

std::uint32_t SpanRecorder::open(const char* name, const char* category,
                                 std::uint64_t bytes) {
  ThreadState& ts = thread_state(this);
  // Sampling: a dropped root poisons its whole subtree. The marker keeps the
  // thread's nesting stack balanced so close() order stays verifiable, while
  // dropped spans never allocate or take the mutex.
  if (!ts.open.empty() && ts.open.back() == kDroppedSpan) {
    ts.open.push_back(kDroppedSpan);
    return kDroppedSpan;
  }
  if (sample_period_ > 1 && ts.open.empty() &&
      root_seq_.fetch_add(1, std::memory_order_relaxed) % sample_period_ !=
          0) {
    ts.open.push_back(kDroppedSpan);
    return kDroppedSpan;
  }
  Span s;
  s.name = name;
  s.category = category;
  s.bytes = bytes;
  s.clock = Clock::kWall;
  s.depth = static_cast<std::uint32_t>(ts.open.size());
  s.parent = ts.open.empty() ? kNoParent : ts.open.back();
  s.start = now();
  s.end = s.start;  // patched by close()
  std::uint32_t index = 0;
  {
    std::lock_guard lock(mu_);
    if (!ts.track_assigned) {
      ts.track = next_track_++;
      ts.track_assigned = true;
    }
    s.track = ts.track;
    spans_.push_back(std::move(s));
    index = static_cast<std::uint32_t>(spans_.size() - 1);
  }
  ts.open.push_back(index);
  return index;
}

void SpanRecorder::close(std::uint32_t index) {
  ThreadState& ts = thread_state(this);
  HS_ASSERT(!ts.open.empty() && ts.open.back() == index);
  ts.open.pop_back();
  if (index == kDroppedSpan) return;
  const double t = now();
  std::lock_guard lock(mu_);
  spans_[index].end = t;
}

std::vector<Span> SpanRecorder::snapshot() const {
  std::lock_guard lock(mu_);
  return spans_;
}

std::size_t SpanRecorder::size() const {
  std::lock_guard lock(mu_);
  return spans_.size();
}

void SpanRecorder::clear() {
  std::lock_guard lock(mu_);
  spans_.clear();
}

SpanRecorder* current() {
  return g_recorder.load(std::memory_order_acquire);
}

void install(SpanRecorder* r) {
  g_recorder.store(r, std::memory_order_release);
}

}  // namespace hs::obs
