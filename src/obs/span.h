// Unified span recorder — the pipeline's observability timeline.
//
// A Span is one named interval on one of two clocks:
//   * kVirtual — simulation time. The discrete-event engine's trace is folded
//     into spans (bit-exact event times) by obs::ingest_trace, so PIPEDATA's
//     claimed HtoD/DtoH/sort overlap is inspectable on the same timeline the
//     paper's Figures 1-3 draw.
//   * kWall — wall-clock time from the host hot paths (radix sort, multiway
//     merge, parallel memcpy, thread-pool task execution), recorded by RAII
//     ScopedSpan guards.
//
// Cost discipline: recording is opt-in. No recorder installed (the default,
// and what every bench runs with) costs one relaxed atomic load per guard and
// performs zero heap allocations; defining HETSORT_OBS_DISABLED compiles the
// guards out entirely. With a recorder installed, spans are appended under a
// mutex — observability runs are not benchmark runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace hs::obs {

enum class Clock : std::uint8_t { kVirtual, kWall };

inline constexpr std::uint32_t kNoParent = 0xffffffffu;

/// Sentinel index returned by SpanRecorder::open for spans a sampling
/// recorder dropped; close(kDroppedSpan) pops the thread's nesting marker
/// without recording anything.
inline constexpr std::uint32_t kDroppedSpan = 0xfffffffeu;

struct Span {
  std::string name;      // task / call-site label, e.g. "b0.h2d3"
  std::string category;  // stage label, e.g. "HtoD", "CpuSort", "group"
  double start = 0;      // seconds on `clock`
  double end = 0;
  Clock clock = Clock::kWall;
  std::int32_t device = -1;       // GPU index; -1 = host
  std::int64_t batch = -1;        // batch index; -1 = not batch-scoped
  std::uint64_t bytes = 0;        // payload moved/processed, 0 if n/a
  std::uint32_t track = 0;        // display row: thread ordinal (wall) or
                                  // group ordinal (virtual)
  std::uint32_t depth = 0;        // nesting depth, 0 = root
  std::uint32_t parent = kNoParent;  // index of the parent span, if any
};

/// Thread-safe append-only span collection. Wall-clock spans are measured in
/// seconds since the recorder's construction, so a fresh recorder starts its
/// timeline at ~0 like the virtual clock does.
///
/// `sample_period` > 1 turns the recorder into a sampling recorder: only
/// every sample_period-th *root* wall-clock span is kept, and a dropped root
/// drops its entire subtree (children of a kept root are all kept), so the
/// surviving spans are complete, well-formed trees. This is what lets the
/// service keep always-on planner spans in serve mode at a bounded cost:
/// dropped spans allocate nothing and never touch the recorder mutex.
/// Sampling applies to open()/close() only; record() (virtual-clock
/// ingestion) always keeps its span.
class SpanRecorder {
 public:
  explicit SpanRecorder(unsigned sample_period = 1);

  unsigned sample_period() const { return sample_period_; }

  /// Appends a fully formed span (used by the virtual-clock ingestion).
  /// Returns its index.
  std::uint32_t record(Span s);

  /// Opens a wall-clock span now; nesting (depth/parent) is derived from the
  /// calling thread's stack of open spans. Returns the index to close.
  std::uint32_t open(const char* name, const char* category,
                     std::uint64_t bytes);

  /// Closes an open wall-clock span at the current time.
  void close(std::uint32_t index);

  /// Seconds elapsed since construction (the wall timeline's origin).
  double now() const;

  std::vector<Span> snapshot() const;
  std::size_t size() const;
  void clear();

 private:
  friend struct ThreadStateAccess;

  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::uint64_t origin_ns_ = 0;
  std::uint32_t next_track_ = 0;
  unsigned sample_period_ = 1;
  std::atomic<std::uint64_t> root_seq_{0};  // root spans seen (kept + dropped)
  // Process-unique recorder identity. Thread-local nesting state is keyed on
  // this, not the recorder's address: stack-allocated recorders (tests,
  // scoped tooling) routinely reuse an address, and keying on the pointer
  // would let a stale thread state — with its old track assignment — leak
  // into the new recorder.
  std::uint64_t epoch_ = 0;
};

/// Currently installed process-wide recorder, or nullptr (the default).
SpanRecorder* current();

/// Installs `r` as the process-wide recorder (nullptr uninstalls). The caller
/// keeps ownership and must keep `r` alive — and must not uninstall — while
/// instrumented code may still hold open spans on it.
void install(SpanRecorder* r);

/// RAII wall-clock span guard for host hot paths. A no-op (single relaxed
/// atomic load) when no recorder is installed; compiled out entirely under
/// HETSORT_OBS_DISABLED.
class ScopedSpan {
 public:
#if defined(HETSORT_OBS_DISABLED)
  ScopedSpan(const char*, const char*, std::uint64_t = 0) {}
#else
  ScopedSpan(const char* name, const char* category, std::uint64_t bytes = 0)
      : rec_(current()) {
    if (rec_ != nullptr) index_ = rec_->open(name, category, bytes);
  }
  ~ScopedSpan() {
    if (rec_ != nullptr) rec_->close(index_);
  }
#endif
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
#if !defined(HETSORT_OBS_DISABLED)
  SpanRecorder* rec_ = nullptr;
  std::uint32_t index_ = 0;
#endif
};

}  // namespace hs::obs
