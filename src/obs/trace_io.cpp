#include "obs/trace_io.h"

#include <cstdio>
#include <map>
#include <string>

#include "common/json.h"
#include "obs/counters.h"

namespace hs::obs {
namespace {

/// "b12" -> 12; returns -1 when the tail is not a plain number.
std::int64_t trailing_number(std::string_view s, std::size_t from) {
  if (from >= s.size()) return -1;
  std::int64_t v = 0;
  for (std::size_t i = from; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return -1;
    v = v * 10 + (s[i] - '0');
  }
  return v;
}

}  // namespace

std::string span_group(std::string_view label) {
  if (const auto colon = label.find(':'); colon != std::string_view::npos) {
    return std::string(label.substr(0, colon));
  }
  if (const auto dot = label.find('.'); dot != std::string_view::npos) {
    return std::string(label.substr(0, dot));
  }
  return {};
}

std::vector<Span> spans_from_trace(const sim::Trace& trace) {
  std::vector<Span> out;
  out.reserve(trace.events().size() * 2);
  std::map<std::string, std::uint32_t> group_index;  // group -> span index
  std::map<std::string, std::uint32_t> tracks;       // row key -> ordinal

  const auto track_of = [&](const std::string& key) {
    return tracks.emplace(key, static_cast<std::uint32_t>(tracks.size()))
        .first->second;
  };

  for (const sim::TraceEvent& ev : trace.events()) {
    const std::string group = span_group(ev.label);

    Span leaf;
    leaf.name = ev.label;
    leaf.category = std::string(sim::phase_name(ev.phase));
    leaf.start = ev.start;
    leaf.end = ev.end;
    leaf.clock = Clock::kVirtual;
    leaf.bytes = ev.bytes;

    // Batch tag "b<k>" / stream tag "g<k>.s<j>" carry the batch and device
    // indices the label encodes.
    if (group.size() > 1 && group[0] == 'b') {
      leaf.batch = trailing_number(group, 1);
    } else if (group.size() > 1 && group[0] == 'g') {
      const auto dot = group.find('.');
      const auto end = dot == std::string::npos ? group.size() : dot;
      leaf.device = static_cast<std::int32_t>(
          trailing_number(std::string_view(group).substr(0, end), 1));
    }

    if (group.empty()) {
      leaf.track = track_of(ev.label);
      out.push_back(std::move(leaf));
      continue;
    }

    const auto [it, inserted] =
        group_index.emplace(group, static_cast<std::uint32_t>(out.size()));
    if (inserted) {
      Span g;
      g.name = group;
      g.category = "group";
      g.start = ev.start;
      g.end = ev.end;
      g.clock = Clock::kVirtual;
      g.device = leaf.device;
      g.batch = leaf.batch;
      g.track = track_of(group);
      out.push_back(std::move(g));
    }
    Span& g = out[it->second];
    g.start = std::min(g.start, ev.start);
    g.end = std::max(g.end, ev.end);
    g.bytes += leaf.bytes;

    leaf.parent = it->second;
    leaf.depth = 1;
    leaf.track = g.track;
    out.push_back(std::move(leaf));
  }
  return out;
}

void ingest_trace(SpanRecorder& rec, const sim::Trace& trace) {
  for (Span& s : spans_from_trace(trace)) rec.record(std::move(s));
}

void ingest_trace_counters(const sim::Trace& trace) {
  using sim::Phase;
  count(Counter::kBytesHtoD, trace.phase_bytes(Phase::kHtoD));
  count(Counter::kBytesDtoH, trace.phase_bytes(Phase::kDtoH));
  count(Counter::kBytesStageIn, trace.phase_bytes(Phase::kStageIn));
  count(Counter::kBytesStageOut, trace.phase_bytes(Phase::kStageOut));
}

OverlapReport analyze_trace(const sim::Trace& trace) {
  return analyze_spans(spans_from_trace(trace));
}

void export_chrome_trace(std::span<const Span> spans, std::ostream& os) {
  os << "[\n";
  bool first = true;
  char buf[512];

  // One metadata event per (pid, tid) row names the track.
  std::map<std::pair<int, std::uint32_t>, std::string> rows;
  for (const Span& s : spans) {
    const int pid = s.clock == Clock::kVirtual ? 1 : 2;
    auto& name = rows[{pid, s.track}];
    if (name.empty()) {
      name = s.clock == Clock::kVirtual
                 ? (s.category == "group" ? s.name : span_group(s.name))
                 : "cpu.t" + std::to_string(s.track);
      if (name.empty()) name = s.name;
    }
  }
  for (const auto& [row, name] : rows) {
    std::snprintf(buf, sizeof buf,
                  "%s  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": %d, "
                  "\"tid\": %u, \"args\": {\"name\": \"%s\"}}",
                  first ? "" : ",\n", row.first, row.second + 1,
                  json_escape(name).c_str());
    os << buf;
    first = false;
  }

  for (const Span& s : spans) {
    const int pid = s.clock == Clock::kVirtual ? 1 : 2;
    std::snprintf(
        buf, sizeof buf,
        "%s  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
        "\"ts\": %.3f, \"dur\": %.3f, \"pid\": %d, \"tid\": %u, "
        "\"args\": {\"bytes\": %llu, \"clock\": \"%s\", \"depth\": %u}}",
        first ? "" : ",\n", json_escape(s.name).c_str(),
        json_escape(s.category).c_str(), s.start * 1e6,
        (s.end - s.start) * 1e6, pid, s.track + 1,
        static_cast<unsigned long long>(s.bytes),
        s.clock == Clock::kVirtual ? "virtual" : "wall", s.depth);
    os << buf;
    first = false;
  }
  os << "\n]\n";
}

void export_overlap_json(const OverlapReport& rep, std::ostream& os) {
  char buf[256];
  os << "{\n";
  std::snprintf(buf, sizeof buf,
                "  \"window_seconds\": %.9f,\n  \"resources\": {\n",
                rep.window());
  os << buf;
  for (std::size_t r = 0; r < kNumResources; ++r) {
    const ResourceUsage& u = rep.usage[r];
    std::snprintf(buf, sizeof buf,
                  "    \"%s\": {\"busy\": %.9f, \"utilisation\": %.6f, "
                  "\"bytes\": %llu, \"spans\": %zu}%s\n",
                  std::string(resource_name(static_cast<Resource>(r))).c_str(),
                  u.busy, u.utilisation,
                  static_cast<unsigned long long>(u.bytes), u.spans,
                  r + 1 < kNumResources ? "," : "");
    os << buf;
  }
  std::snprintf(buf, sizeof buf,
                "  },\n  \"copy_sort_overlap\": %.6f,\n"
                "  \"merge_sort_overlap\": %.6f,\n",
                rep.copy_sort_overlap, rep.merge_sort_overlap);
  os << buf;
  std::snprintf(buf, sizeof buf,
                "  \"overhead\": {\"alloc\": %.9f, \"staging\": %.9f, "
                "\"sync\": %.9f, \"total\": %.9f}\n}\n",
                rep.alloc_seconds, rep.staging_seconds, rep.sync_seconds,
                rep.overhead_seconds());
  os << buf;
}

}  // namespace hs::obs
