// Bridges between the simulator's execution trace and the observability
// layer, plus the unified exporters.
//
// spans_from_trace folds a sim::Trace into a span tree: every trace event
// becomes a leaf span whose [start, end) is bit-exactly the engine's virtual
// event interval, and events sharing a label prefix ("b3.h2d0" -> "b3",
// "g0.s1:sort" -> "g0.s1") are nested under a synthesised group span. The
// group tree is what the golden-trace tests pin: names, nesting and ordering
// are deterministic because the engine itself is.
//
// The exporters generalise sim/trace_export to both clocks: one Chrome
// trace-event JSON for any span set (virtual pipelines and wall-clock host
// profiles load in the same chrome://tracing view), and a machine-readable
// JSON rendering of the overlap report.
#pragma once

#include <ostream>
#include <span>
#include <vector>

#include "obs/overlap.h"
#include "obs/span.h"
#include "sim/trace.h"

namespace hs::obs {

/// Group key for a task label: the part before ':' if present, else before
/// the first '.', else empty (no group).
std::string span_group(std::string_view label);

/// Converts a trace into spans (virtual clock). Leaf spans appear in trace
/// (completion) order, each preceded — at its group's first appearance — by
/// its group span; group spans carry category "group" and cover the union of
/// their children.
std::vector<Span> spans_from_trace(const sim::Trace& trace);

/// Appends the trace's span tree to `rec` (the engine-side feed of the
/// recorder: one recorder then holds virtual pipeline spans next to wall
/// spans from the host hot paths).
void ingest_trace(SpanRecorder& rec, const sim::Trace& trace);

/// Feeds the trace's per-phase byte totals into the global counter registry
/// (HtoD, DtoH, staging in/out).
void ingest_trace_counters(const sim::Trace& trace);

/// Folds the trace straight into an overlap report (leaf spans only).
OverlapReport analyze_trace(const sim::Trace& trace);

/// Chrome trace-event JSON for any span set. Virtual-clock spans render under
/// pid 1, wall-clock spans under pid 2; rows (tid) are span groups (virtual)
/// or thread tracks (wall). Durations are microseconds as the format
/// requires.
void export_chrome_trace(std::span<const Span> spans, std::ostream& os);

/// Machine-readable overlap/overhead report.
void export_overlap_json(const OverlapReport& rep, std::ostream& os);

}  // namespace hs::obs
