#include "service/fair_queue.h"

#include "common/assert.h"

namespace hs::service {

FairQueue::FairQueue(std::vector<ClassConfig> classes, std::size_t capacity)
    : capacity_(capacity) {
  for (ClassConfig& c : classes) {
    HS_EXPECTS_MSG(c.weight > 0, "fair-queue class weight must be positive");
    classes_[c.name].weight = c.weight;
  }
}

FairQueue::ClassState& FairQueue::state_for(const std::string& klass) {
  return classes_[klass];  // default weight 1.0 on first use
}

bool FairQueue::push(std::uint64_t handle, const std::string& klass,
                     double cost) {
  if (size_ >= capacity_) return false;
  ClassState& cs = state_for(klass);
  Item item;
  item.handle = handle;
  item.cost = cost;
  // Start tag: the class resumes where it left off, but an idle class that
  // fell behind virtual time re-enters at V (it does not bank credit).
  const double start = std::max(virtual_time_, cs.last_finish);
  item.finish = start + cost / cs.weight;
  cs.last_finish = item.finish;
  cs.items.push_back(item);
  ++size_;
  return true;
}

void FairQueue::restore(std::uint64_t handle, const std::string& klass,
                        double cost, double finish) {
  ClassState& cs = state_for(klass);
  Item item;
  item.handle = handle;
  item.cost = cost;
  item.finish = finish;
  // The class's tag sequence is monotone, so ordered insertion keeps FIFO
  // semantics for everything pushed since; last_finish is NOT advanced —
  // the tag was already accounted when the job was first admitted.
  auto pos = cs.items.begin();
  while (pos != cs.items.end() && pos->finish <= finish) ++pos;
  cs.items.insert(pos, item);
  ++size_;
}

void FairQueue::pop_from(std::map<std::string, ClassState>::iterator it) {
  HS_ASSERT(!it->second.items.empty());
  virtual_time_ = std::max(virtual_time_, it->second.items.front().finish);
  it->second.items.pop_front();
  --size_;
}

std::optional<std::uint64_t> FairQueue::pop() {
  return pop_first_eligible([](std::uint64_t) { return true; });
}

bool FairQueue::remove(std::uint64_t handle) {
  for (auto& [name, cs] : classes_) {
    for (auto it = cs.items.begin(); it != cs.items.end(); ++it) {
      if (it->handle == handle) {
        // Tags of later items in the class stay as assigned: removing a
        // deadline-expired job must not let its class jump the queue.
        cs.items.erase(it);
        --size_;
        return true;
      }
    }
  }
  return false;
}

std::vector<std::uint64_t> FairQueue::queued() const {
  std::vector<std::uint64_t> out;
  out.reserve(size_);
  for (const auto& [name, cs] : classes_) {
    for (const Item& item : cs.items) out.push_back(item.handle);
  }
  return out;
}

double FairQueue::weight(const std::string& klass) const {
  const auto it = classes_.find(klass);
  return it == classes_.end() ? 1.0 : it->second.weight;
}

double FairQueue::last_finish(const std::string& klass) const {
  const auto it = classes_.find(klass);
  return it == classes_.end() ? 0.0 : it->second.last_finish;
}

}  // namespace hs::service
