// Weighted fair queueing across job classes (docs/service.md).
//
// Start-time fair queueing (SFQ): each admitted job receives a virtual
// finish tag `finish = max(V, class_last_finish) + cost / weight` where V is
// the queue's virtual time (advanced to the finish tag of each dispatched
// job). Dispatch picks the smallest finish tag among the *heads* of the
// per-class FIFOs, so classes share service in weight proportion while jobs
// within a class keep submission order.
//
// Delay bound (why starvation is impossible): while a job J of class c with
// cost W_J waits at its class head, the work dispatched from any other class
// c' is bounded by (w_c' / w_c) * W_J + 2 * max_cost_c' — once J's tag is
// minimal nothing can pass it, and a class's tags advance by cost/weight per
// dispatched job. tests/test_service_scheduler asserts this bound.
//
// The queue is NOT internally synchronised: JobScheduler serialises access
// under its own mutex (admission, dispatch and deadline removal already need
// that lock for their compound state updates).
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hs::service {

struct ClassConfig {
  std::string name;
  double weight = 1.0;  // relative service share; must be > 0
};

class FairQueue {
 public:
  /// `capacity` bounds the total queued jobs across all classes (the
  /// admission limit behind ServiceOverloaded). Classes not pre-declared are
  /// created on first use with weight 1.0.
  explicit FairQueue(std::vector<ClassConfig> classes, std::size_t capacity);

  /// Admits `handle` into `klass` with service cost `cost` (any consistent
  /// unit; the scheduler uses input elements). Returns false when full.
  bool push(std::uint64_t handle, const std::string& klass, double cost);

  /// Re-admits a previously dispatched job with its original finish tag
  /// `finish` (captured via last_finish() right after push), inserting in
  /// tag order within its class. This is the preemption path: the job keeps
  /// its virtual start time, so yielding a grant costs no fairness credit.
  /// Ignores the capacity bound — the job was already admitted once.
  void restore(std::uint64_t handle, const std::string& klass, double cost,
               double finish);

  /// Dispatches the job with the smallest virtual finish tag among class
  /// heads. nullopt when empty.
  std::optional<std::uint64_t> pop();

  /// Dispatches the smallest-tag class head for which `eligible(handle)`
  /// is true, skipping ineligible classes (memory backpressure must not
  /// head-of-line-block jobs that could run now). nullopt when none.
  template <typename Pred>
  std::optional<std::uint64_t> pop_first_eligible(Pred eligible);

  /// Removes a queued job wherever it sits (deadline expiry while queued).
  /// Returns false when the handle is not queued.
  bool remove(std::uint64_t handle);

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }

  /// Handles of all queued jobs, unordered (watchdog scans).
  std::vector<std::uint64_t> queued() const;

  /// Weight of `klass` (1.0 for classes never declared).
  double weight(const std::string& klass) const;

  /// Virtual finish tag most recently assigned in `klass` — immediately
  /// after push() this is the pushed job's own tag (captured by the
  /// scheduler for later restore()).
  double last_finish(const std::string& klass) const;

 private:
  struct Item {
    std::uint64_t handle = 0;
    double cost = 0;
    double finish = 0;  // virtual finish tag
  };
  struct ClassState {
    double weight = 1.0;
    double last_finish = 0;
    std::deque<Item> items;
  };

  ClassState& state_for(const std::string& klass);
  void pop_from(std::map<std::string, ClassState>::iterator it);

  std::map<std::string, ClassState> classes_;
  std::size_t capacity_;
  std::size_t size_ = 0;
  double virtual_time_ = 0;
};

template <typename Pred>
std::optional<std::uint64_t> FairQueue::pop_first_eligible(Pred eligible) {
  // Candidates are class heads in ascending finish-tag order; within a class
  // FIFO order is sacred, so an ineligible head parks its whole class for
  // this dispatch round.
  std::vector<std::map<std::string, ClassState>::iterator> heads;
  for (auto it = classes_.begin(); it != classes_.end(); ++it) {
    if (!it->second.items.empty()) heads.push_back(it);
  }
  std::sort(heads.begin(), heads.end(), [](auto a, auto b) {
    return a->second.items.front().finish < b->second.items.front().finish;
  });
  for (auto it : heads) {
    if (eligible(it->second.items.front().handle)) {
      const std::uint64_t h = it->second.items.front().handle;
      pop_from(it);
      return h;
    }
  }
  return std::nullopt;
}

}  // namespace hs::service
