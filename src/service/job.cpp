#include "service/job.h"

namespace hs::service {

std::string_view job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kCompleted:
      return "completed";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "?";
}

}  // namespace hs::service
