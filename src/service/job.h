// Job descriptions and outcomes for the sort service (docs/service.md).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/sort_config.h"
#include "data/generators.h"
#include "io/external_sort.h"
#include "sim/fault_injector.h"

namespace hs::service {

/// One sort job as submitted by a client. Jobs sort a raw-doubles file into
/// `output_path`; when `input_path` is empty the service materialises the
/// input deterministically from (dist, n, seed) into the job's directory, so
/// a spec is self-contained and replayable (the service manifest persists
/// exactly these fields for crash resume).
struct JobSpec {
  /// Unique job name; also names the per-job journal directory
  /// `<service_dir>/jobs/<name>`, so it must be filesystem-safe.
  std::string name;

  /// Existing raw-doubles input file; empty = generate from the fields below.
  std::string input_path;
  data::Distribution dist = data::Distribution::kUniform;
  std::uint64_t n = 0;
  std::uint64_t seed = 1;

  /// Where the sorted raw-doubles output lands (atomic rename on success).
  std::string output_path;

  /// Fair-queueing class; unknown names join a weight-1.0 class of their own.
  std::string job_class = "default";

  /// Host bytes requested for this job; 0 = the scheduler's default grant.
  /// The grant is negotiated down (halved, floored at the scheduler's
  /// min_job_budget_bytes) when the shared budget is contended.
  std::uint64_t host_budget_bytes = 0;

  /// Wall-clock deadline measured from submission (queue wait included);
  /// 0 = none. The watchdog cancels jobs past their deadline.
  double deadline_seconds = 0;

  /// Retries after a transient failure (crash, I/O error); each retry
  /// resumes from the job journal with exponential backoff.
  unsigned max_retries = 2;

  /// Chunking budget for the external sort; 0 derives it from the granted
  /// host budget. Persisted in the manifest so resumed attempts keep the
  /// same chunk geometry and can adopt the job journal.
  std::uint64_t memory_budget_elems = 0;

  /// Streaming buffer / framed-block size for the run files.
  std::uint64_t io_buffer_elems = 1 << 14;

  /// Pipeline configuration for run formation (faults, recovery, approach).
  core::SortConfig pipeline;

  /// Seeded disk-layer fault schedule (see ExternalSortConfig::io_faults).
  sim::FaultPlan io_faults;

  /// Test hook, first attempt only: crash the job after this many durable
  /// runs so retry/resume paths are exercised deterministically.
  std::uint64_t crash_after_runs = 0;
};

enum class JobState : std::uint8_t {
  kQueued,     // admitted, waiting for a worker + memory grant
  kRunning,    // a worker owns it
  kCompleted,  // output durably renamed in
  kFailed,     // retries exhausted or deadline expired while queued
  kCancelled,  // stopped at a cancellation point; journal preserved
};

std::string_view job_state_name(JobState s);

/// Everything the service knows about a finished (or failed) job.
struct JobOutcome {
  std::string name;
  std::string job_class;
  JobState state = JobState::kQueued;

  std::string error;       // what() of the final error, empty on success
  std::string error_type;  // typed name, e.g. "ServiceOverloaded"

  double queue_wait_seconds = 0;  // submit -> worker dispatch
  double run_seconds = 0;         // dispatch -> completion (all attempts)
  double virtual_seconds = 0;     // pipeline virtual time (sum over attempts)

  std::uint64_t requested_budget_bytes = 0;
  std::uint64_t granted_budget_bytes = 0;
  bool degraded = false;  // granted < requested (budget contention)

  unsigned attempts = 0;  // 1 = clean first run
  bool resumed = false;   // any attempt adopted a job journal

  /// Times this job checkpoint-and-yielded its grant to a higher-weight
  /// arrival; each yield re-queued it with its virtual start preserved.
  unsigned preemptions = 0;

  /// Admission-time whole-job cost estimate (model::JobCostModel); feeds the
  /// SLO gate and the retry-after hints in typed rejections.
  double estimate_seconds = 0;

  /// Cost of other-class jobs dispatched ahead of this one while it was
  /// queued *and memory-eligible* — the quantity the weighted-fairness bound
  /// in docs/service.md limits.
  double bypass_cost = 0;

  /// Disk/pipeline statistics of the successful attempt (zero otherwise).
  io::ExternalSortStats stats;
};

}  // namespace hs::service
