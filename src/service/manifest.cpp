#include "service/manifest.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/checksum.h"
#include "io/run_file.h"

namespace hs::service {
namespace {

constexpr const char* kHeaderLine = "hetsort-service-manifest v1";

// Fields are tab-separated because the two trailing ones are paths that may
// contain spaces. The pipeline/fault-plan knobs are deliberately not
// persisted: the sorted output is a pure function of the input bytes, so a
// resumed job reproduces it under any pipeline configuration, and replaying
// an injected fault schedule after a real crash would double-fault the job.
std::string render(const ServiceManifest& m) {
  std::ostringstream os;
  os << kHeaderLine << '\n';
  if (m.watchdog_period_seconds > 0) {
    os << "config\twatchdog_period_seconds\t" << m.watchdog_period_seconds
       << '\n';
  }
  for (const ManifestEntry& e : m.jobs) {
    const JobSpec& s = e.spec;
    os << "job\t" << s.name << '\t' << (e.done ? 1 : 0) << '\t'
       << s.job_class << '\t' << static_cast<int>(s.dist) << '\t' << s.n
       << '\t' << s.seed << '\t' << s.host_budget_bytes << '\t'
       << s.deadline_seconds << '\t' << s.max_retries << '\t'
       << s.memory_budget_elems << '\t' << s.io_buffer_elems << '\t'
       << s.input_path << '\t' << s.output_path << '\n';
  }
  const std::string body = os.str();
  return body + "end " + std::to_string(fnv1a64(body)) + "\n";
}

bool next_field(const std::string& line, std::size_t& pos, std::string& out) {
  if (pos > line.size()) return false;
  const std::size_t tab = line.find('\t', pos);
  if (tab == std::string::npos) {
    out = line.substr(pos);
    pos = line.size() + 1;
  } else {
    out = line.substr(pos, tab - pos);
    pos = tab + 1;
  }
  return true;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool parse_entry(const std::string& line, ManifestEntry& e) {
  std::size_t pos = 4;  // past "job\t"
  std::string name, done, klass, dist, n, seed, budget, deadline, retries,
      mem, io, input, output;
  for (std::string* f : {&name, &done, &klass, &dist, &n, &seed, &budget,
                         &deadline, &retries, &mem, &io, &input, &output}) {
    if (!next_field(line, pos, *f)) return false;
  }
  JobSpec& s = e.spec;
  s.name = name;
  s.job_class = klass;
  s.input_path = input;
  s.output_path = output;
  std::uint64_t u = 0;
  if (!parse_u64(done, u) || u > 1) return false;
  e.done = u == 1;
  if (!parse_u64(dist, u) || u >= data::all_distributions().size()) {
    return false;
  }
  s.dist = static_cast<data::Distribution>(u);
  if (!parse_u64(n, s.n) || !parse_u64(seed, s.seed) ||
      !parse_u64(budget, s.host_budget_bytes) ||
      !parse_u64(mem, s.memory_budget_elems) ||
      !parse_u64(io, s.io_buffer_elems)) {
    return false;
  }
  if (!parse_u64(retries, u) || u > 1000) return false;
  s.max_retries = static_cast<unsigned>(u);
  char* end = nullptr;
  s.deadline_seconds = std::strtod(deadline.c_str(), &end);
  if (end == nullptr || *end != '\0' || s.deadline_seconds < 0) return false;
  return !s.name.empty() && !s.output_path.empty() && s.io_buffer_elems > 0;
}

}  // namespace

std::string manifest_path(const std::string& service_dir) {
  return service_dir + "/hetsort_service.manifest";
}

void save_manifest(const ServiceManifest& m, const std::string& service_dir) {
  const std::string path = manifest_path(service_dir);
  const std::string tmp = path + ".tmp";
  const std::string text = render(m);

  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) throw io::IoError("cannot open " + tmp);
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (written != text.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    throw io::IoError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw io::IoError("cannot rename " + tmp + " to " + path);
  }
}

std::optional<ServiceManifest> load_manifest(const std::string& service_dir) {
  const std::string path = manifest_path(service_dir);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string text;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
  std::fclose(f);

  const std::size_t nl = text.rfind('\n', text.size() >= 2 ? text.size() - 2
                                                           : std::string::npos);
  const std::size_t end_at = nl == std::string::npos ? 0 : nl + 1;
  std::string end_line = text.substr(end_at);
  if (!end_line.empty() && end_line.back() == '\n') end_line.pop_back();
  if (end_line.rfind("end ", 0) != 0) return std::nullopt;
  std::uint64_t stored = 0;
  if (!parse_u64(end_line.substr(4), stored) ||
      stored != fnv1a64(text.substr(0, end_at))) {
    return std::nullopt;  // torn or tampered: treat as absent
  }

  ServiceManifest m;
  std::istringstream is(text.substr(0, end_at));
  std::string line;
  if (!std::getline(is, line) || line != kHeaderLine) return std::nullopt;
  while (std::getline(is, line)) {
    if (line.rfind("config\t", 0) == 0) {
      // Service-level settings: "config\t<key>\t<value>". Unknown keys are
      // skipped so a newer daemon's manifest still resumes on an older one.
      std::size_t pos = 7;  // past "config\t"
      std::string key, value;
      if (!next_field(line, pos, key) || !next_field(line, pos, value)) {
        return std::nullopt;
      }
      if (key == "watchdog_period_seconds") {
        char* end = nullptr;
        const double v = std::strtod(value.c_str(), &end);
        if (end == nullptr || *end != '\0' || v <= 0) return std::nullopt;
        m.watchdog_period_seconds = v;
      }
      continue;
    }
    if (line.rfind("job\t", 0) != 0) return std::nullopt;
    ManifestEntry e;
    if (!parse_entry(line, e)) return std::nullopt;
    m.jobs.push_back(std::move(e));
  }
  return m;
}

void remove_manifest(const std::string& service_dir) {
  std::remove(manifest_path(service_dir).c_str());
  std::remove((manifest_path(service_dir) + ".tmp").c_str());
}

}  // namespace hs::service
