// Crash-consistent service manifest (docs/service.md).
//
// The scheduler persists every accepted job spec — plus a done/pending flag —
// to `<service_dir>/hetsort_service.manifest`, rewritten atomically
// (write-temp-rename, trailing FNV-1a checksum) exactly like the per-job run
// journal (io/journal.h). After a service crash, `JobScheduler::resume_jobs`
// reloads the manifest and resubmits every pending job with resume enabled;
// each then adopts its own job journal in `<service_dir>/jobs/<name>` and
// continues from its durable runs. Specs are persisted in full (including
// generator seed and chunk geometry) so a resumed job is byte-identical to
// one that was never interrupted.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "service/job.h"

namespace hs::service {

struct ManifestEntry {
  JobSpec spec;
  bool done = false;
};

struct ServiceManifest {
  std::vector<ManifestEntry> jobs;

  /// Watchdog scan period the service was running with; persisted so
  /// `serve --resume` keeps deadline enforcement cadence across restarts
  /// unless the flag overrides it. 0 = not recorded (older manifests).
  double watchdog_period_seconds = 0;
};

std::string manifest_path(const std::string& service_dir);

/// Atomically replaces the manifest. Throws io::IoError on refusal.
void save_manifest(const ServiceManifest& m, const std::string& service_dir);

/// nullopt when missing, torn, or checksum-invalid (a fresh service is
/// always a safe recovery).
std::optional<ServiceManifest> load_manifest(const std::string& service_dir);

void remove_manifest(const std::string& service_dir);

}  // namespace hs::service
