#include "service/scheduler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <sstream>
#include <utility>

#include "common/assert.h"
#include "data/generators.h"
#include "io/external_sort.h"
#include "io/run_file.h"
#include "obs/counters.h"
#include "obs/span.h"
#include "sim/engine.h"
#include "vgpu/device.h"
#include "vgpu/faults.h"

namespace hs::service {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Zero-width "Service" marker on the wall timeline, mirroring the
/// governor's decision markers: no recorder installed, no cost.
void service_marker(const std::string& text) {
  if (obs::SpanRecorder* rec = obs::current()) {
    obs::Span s;
    s.name = text;
    s.category = "Service";
    s.start = s.end = rec->now();
    s.clock = obs::Clock::kWall;
    rec->record(std::move(s));
  }
}

/// Maps the final error to its typed name so clients (and the fuzz tests)
/// can assert on failure *kinds* without parsing messages.
std::string classify_error(const std::exception& e) {
  if (dynamic_cast<const io::SimulatedCrash*>(&e)) return "SimulatedCrash";
  if (dynamic_cast<const io::SortCancelled*>(&e)) return "SortCancelled";
  if (dynamic_cast<const io::RunFileCorrupt*>(&e)) return "RunFileCorrupt";
  if (dynamic_cast<const io::IoError*>(&e)) return "IoError";
  if (dynamic_cast<const core::HostBudgetExceeded*>(&e))
    return "HostBudgetExceeded";
  if (dynamic_cast<const vgpu::DeviceOutOfMemory*>(&e))
    return "DeviceOutOfMemory";
  if (dynamic_cast<const vgpu::TransferFault*>(&e)) return "TransferFault";
  if (dynamic_cast<const vgpu::HostAllocFailed*>(&e)) return "HostAllocFailed";
  if (dynamic_cast<const sim::PipelineStalled*>(&e)) return "PipelineStalled";
  if (dynamic_cast<const ServiceOverloaded*>(&e)) return "ServiceOverloaded";
  if (dynamic_cast<const SloUnmeetable*>(&e)) return "SloUnmeetable";
  if (dynamic_cast<const JobDeadlineExceeded*>(&e))
    return "JobDeadlineExceeded";
  if (dynamic_cast<const hs::Error*>(&e)) return "Error";
  return "exception";
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(v.size())));
  return v[std::min(v.size() - 1, idx == 0 ? 0 : idx - 1)];
}

}  // namespace

std::string_view service_mode_name(ServiceMode m) {
  switch (m) {
    case ServiceMode::kNormal: return "normal";
    case ServiceMode::kPressure: return "pressure";
    case ServiceMode::kShed: return "shed";
  }
  return "?";
}

struct JobScheduler::JobRecord {
  std::uint64_t id = 0;
  JobSpec spec;
  bool resume_requested = false;  // adopt the job journal on first attempt

  JobState state = JobState::kQueued;
  std::atomic<bool> cancel{false};
  // All the reason flags below are guarded by mu_; `cancel` is the one
  // lock-free stop signal the pipeline polls, and the flags say *why* it
  // was raised (deadline > explicit cancel > preemption).
  bool deadline_fired = false;
  bool cancel_requested = false;   // explicit cancel() on a running job
  bool preempt_requested = false;  // asked to checkpoint-and-yield its grant
  bool preempt_yield = false;      // run_job stopped at a checkpoint to yield
  bool pressure_dispatch = false;  // dispatched while mode != Normal
  std::uint64_t preempted_by = 0;  // beneficiary id while preempt in flight
  std::uint64_t parked_behind = 0;  // ineligible until this job dispatches
  Clock::time_point submit_time{};

  double queue_wait = 0;
  double run_seconds = 0;
  double virtual_seconds = 0;
  double cost = 0;        // fair-queue service cost (input elements)
  double finish_tag = 0;  // SFQ finish tag, preserved across preemptions
  double estimate_seconds = 0;  // admission-time whole-job cost estimate
  std::uint64_t requested = 0;  // negotiated request (post service clamp)
  std::uint64_t granted = 0;
  bool degraded = false;
  bool resumed = false;
  unsigned attempts = 0;
  unsigned dispatches = 0;
  unsigned preemptions = 0;
  double bypass_cost = 0;
  std::string error, error_type;
  std::string span_label;
  io::ExternalSortStats stats;
};

JobScheduler::JobScheduler(SchedulerConfig cfg)
    : cfg_(std::move(cfg)),
      governor_(cfg_.host_budget_bytes),
      queue_(cfg_.classes, cfg_.queue_capacity) {
  HS_EXPECTS(cfg_.workers > 0);
  HS_EXPECTS(cfg_.queue_capacity > 0);
  HS_EXPECTS(cfg_.min_job_budget_bytes > 0);
  HS_EXPECTS(cfg_.watchdog_period_seconds > 0);
  for (const ClassConfig& c : cfg_.classes) {
    max_class_weight_ = std::max(max_class_weight_, c.weight);
  }
  std::filesystem::create_directories(cfg_.service_dir + "/jobs");
  workers_.reserve(cfg_.workers);
  for (unsigned i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

JobScheduler::~JobScheduler() { shutdown(); }

std::uint64_t JobScheduler::submit(JobSpec spec, bool resume) {
  if (spec.name.empty()) throw InvalidJobSpec("job name must not be empty");
  if (spec.output_path.empty()) {
    throw InvalidJobSpec("job '" + spec.name + "' has no output path");
  }
  if (spec.input_path.empty() && spec.n == 0) {
    throw InvalidJobSpec("job '" + spec.name +
                         "' has neither an input file nor a size to generate");
  }
  // A job whose budget floor can never fit the service budget would wait
  // forever: refuse it up front, typed.
  const std::uint64_t requested =
      spec.host_budget_bytes > 0 ? spec.host_budget_bytes
                                 : cfg_.default_job_budget_bytes;
  const std::uint64_t floor = std::min(requested, cfg_.min_job_budget_bytes);
  if (governor_.limited() && floor > governor_.budget_bytes()) {
    throw InvalidJobSpec(
        "job '" + spec.name + "' needs at least " + std::to_string(floor) +
        " bytes but the service budget is " +
        std::to_string(governor_.budget_bytes()) + " bytes");
  }

  const std::uint64_t clamped =
      governor_.limited() ? std::min(requested, governor_.budget_bytes())
                          : requested;
  // Whole-job cost estimate (may stat the input file — outside the lock).
  // Always computed: it feeds the SLO gate when enabled and the retry-after
  // hints in typed rejections either way.
  const model::JobCostBreakdown estimate = estimate_spec(spec, clamped);

  std::lock_guard<std::mutex> lk(mu_);
  JobRecord* reopen = nullptr;
  if (const auto itn = by_name_.find(spec.name); itn != by_name_.end()) {
    JobRecord& old = *jobs_.at(itn->second);
    if (old.state == JobState::kFailed || old.state == JobState::kCancelled) {
      // A failed/cancelled job may be resubmitted under the same name: its
      // journal is intact, so the fresh attempt resumes where it stopped.
      reopen = &old;
    } else {
      throw InvalidJobSpec("job name '" + spec.name + "' already in use");
    }
  }

  update_mode_locked();
  if (mode_ == ServiceMode::kShed &&
      queue_.weight(spec.job_class) < max_class_weight_) {
    record_rejection_locked(spec.job_class, "shed");
    obs::count(obs::Counter::kJobsShedRejected, 1);
    service_marker("shed job=" + spec.name + " class=" + spec.job_class);
    throw ServiceOverloaded(queue_.size(), queue_.capacity(),
                            ServiceOverloaded::Reason::kShed,
                            committed_seconds_locked());
  }
  if (queue_.size() >= queue_.capacity()) {
    record_rejection_locked(spec.job_class, "queue");
    obs::count(obs::Counter::kJobsRejected, 1);
    service_marker("reject job=" + spec.name +
                   " depth=" + std::to_string(queue_.size()));
    throw ServiceOverloaded(queue_.size(), queue_.capacity(),
                            ServiceOverloaded::Reason::kQueueFull,
                            committed_seconds_locked());
  }
  if (cfg_.slo_admission && spec.deadline_seconds > 0) {
    const double queue_s = committed_seconds_locked();
    if (queue_s + estimate.total() > spec.deadline_seconds) {
      // Never admit-then-cancel: a hopeless deadline is refused before a
      // worker ever touches it, with the earliest feasible hint attached.
      record_rejection_locked(spec.job_class, "slo");
      obs::count(obs::Counter::kJobsSloRejected, 1);
      service_marker("slo-reject job=" + spec.name + " estimate=" +
                     std::to_string(estimate.total() + queue_s));
      throw SloUnmeetable(spec.name, spec.deadline_seconds, estimate.total(),
                          queue_s);
    }
  }

  JobRecord* job = nullptr;
  if (reopen != nullptr) {
    // The original spec is kept (chunk geometry must not change under the
    // journal); only the deadline and retry allowance refresh, so "resubmit
    // with a larger deadline" works as the cancel contract promises.
    reopen->spec.deadline_seconds = spec.deadline_seconds;
    reopen->spec.max_retries = spec.max_retries;
    reopen->state = JobState::kQueued;
    reopen->cancel.store(false, std::memory_order_release);
    reopen->deadline_fired = false;
    reopen->cancel_requested = false;
    reopen->preempt_requested = false;
    reopen->preempt_yield = false;
    reopen->preempted_by = 0;
    reopen->parked_behind = 0;
    reopen->resume_requested = true;
    reopen->submit_time = Clock::now();
    reopen->error.clear();
    reopen->error_type.clear();
    job = reopen;
  } else {
    auto rec = std::make_unique<JobRecord>();
    rec->id = next_id_++;
    rec->spec = std::move(spec);
    rec->resume_requested = resume;
    rec->requested = clamped;
    rec->submit_time = Clock::now();
    rec->span_label = "job:" + rec->spec.name;
    const std::uint64_t id = rec->id;
    by_name_[rec->spec.name] = id;
    job = rec.get();
    jobs_[id] = std::move(rec);
  }
  job->estimate_seconds = estimate.total();
  job->cost = static_cast<double>(std::max<std::uint64_t>(
      1, job->spec.n > 0 ? job->spec.n : job->spec.memory_budget_elems));

  const bool pushed = queue_.push(job->id, job->spec.job_class, job->cost);
  HS_ASSERT(pushed);  // capacity checked above under the same lock
  job->finish_tag = queue_.last_finish(job->spec.job_class);
  peak_queue_depth_ = std::max(peak_queue_depth_, queue_.size());
  persist_manifest_locked();

  obs::count(obs::Counter::kJobsSubmitted, 1);
  service_marker("admit job=" + job->spec.name +
                 " class=" + job->spec.job_class);
  preempt_for_locked(*job);
  dispatch_cv_.notify_one();
  return job->id;
}

std::size_t JobScheduler::resume_jobs() {
  const auto manifest = load_manifest(cfg_.service_dir);
  if (!manifest) return 0;
  std::size_t resubmitted = 0;
  for (const ManifestEntry& e : manifest->jobs) {
    if (e.done) continue;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (by_name_.count(e.spec.name) > 0) continue;
    }
    submit(e.spec, /*resume=*/true);
    ++resubmitted;
  }
  return resubmitted;
}

bool JobScheduler::cancel(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return false;
  JobRecord& job = *jobs_.at(it->second);
  if (job.state == JobState::kQueued) {
    queue_.remove(job.id);
    job.state = JobState::kCancelled;
    job.error_type = "SortCancelled";
    job.error = "cancelled while queued";
    obs::count(obs::Counter::kJobsCancelled, 1);
    service_marker("cancel job=" + name + " (queued)");
    idle_cv_.notify_all();
    return true;
  }
  if (job.state == JobState::kRunning) {
    job.cancel_requested = true;
    job.cancel.store(true, std::memory_order_release);
    service_marker("cancel job=" + name + " (running)");
    return true;
  }
  return false;  // already finished
}

ServiceMode JobScheduler::mode() const {
  std::lock_guard<std::mutex> lk(mu_);
  return mode_;
}

std::size_t JobScheduler::mode_transitions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return mode_transitions_;
}

void JobScheduler::update_mode_locked() {
  if (!cfg_.load_shedding) return;  // mode pinned at Normal
  const double depth_frac = static_cast<double>(queue_.size()) /
                            static_cast<double>(queue_.capacity());
  const double ledger = governor_.occupancy();
  const double bad_devices =
      cfg_.platform.gpus.empty()
          ? 0.0
          : static_cast<double>(health_.count()) /
                static_cast<double>(cfg_.platform.gpus.size());
  ServiceMode target = ServiceMode::kNormal;
  if (depth_frac >= cfg_.pressure_queue_fraction ||
      ledger >= cfg_.pressure_ledger_fraction || bad_devices >= 0.5) {
    target = ServiceMode::kPressure;
  }
  if (depth_frac >= cfg_.shed_queue_fraction ||
      ledger >= cfg_.shed_ledger_fraction) {
    target = ServiceMode::kShed;
  }
  if (target == mode_) return;
  ++mode_transitions_;
  obs::count(obs::Counter::kServiceModeTransitions, 1);
  service_marker("mode " + std::string(service_mode_name(mode_)) + "->" +
                 std::string(service_mode_name(target)) +
                 " depth=" + std::to_string(queue_.size()) +
                 " ledger=" + std::to_string(ledger));
  mode_ = target;
}

double JobScheduler::committed_seconds_locked() const {
  double s = 0;
  for (const auto& [id, job] : jobs_) {
    if (job->state == JobState::kQueued || job->state == JobState::kRunning) {
      s += job->estimate_seconds;
    }
  }
  return s / static_cast<double>(std::max(1u, cfg_.workers));
}

void JobScheduler::record_rejection_locked(const std::string& klass,
                                           const std::string& reason) {
  ++rejections_[klass][reason];
}

model::JobCostBreakdown JobScheduler::estimate_spec(
    const JobSpec& spec, std::uint64_t requested) const {
  model::JobCostInputs in;
  in.n = spec.n;
  if (in.n == 0 && !spec.input_path.empty()) {
    std::error_code ec;
    const auto bytes = std::filesystem::file_size(spec.input_path, ec);
    if (!ec) in.n = bytes / sizeof(double);
  }
  in.elem_size = sizeof(double);
  const std::uint64_t iobuf = std::max<std::uint64_t>(1, spec.io_buffer_elems);
  in.chunk_elems =
      spec.memory_budget_elems > 0
          ? spec.memory_budget_elems
          : std::max<std::uint64_t>(iobuf, requested / (3 * sizeof(double)));
  in.merge_threads = std::max(1u, spec.pipeline.multiway_threads);
  return cfg_.cost_model.estimate(cfg_.platform, in);
}

void JobScheduler::preempt_for_locked(const JobRecord& newcomer) {
  if (!cfg_.preemption || !governor_.limited()) return;
  if (newcomer.state != JobState::kQueued) return;
  const std::uint64_t floor =
      std::min(newcomer.requested, cfg_.min_job_budget_bytes);
  const std::uint64_t avail = governor_.available_bytes();
  if (floor <= avail) return;  // will dispatch without anyone yielding

  const double w_new = queue_.weight(newcomer.spec.job_class);
  std::vector<JobRecord*> victims;
  for (auto& [id, job] : jobs_) {
    if (job->state == JobState::kRunning && !job->preempt_requested &&
        queue_.weight(job->spec.job_class) < w_new) {
      victims.push_back(job.get());
    }
  }
  // Cheapest sacrifice first: lowest weight, then the most recent dispatch
  // (least sunk work to redo — its journal keeps what it already finished).
  std::sort(victims.begin(), victims.end(),
            [this](const JobRecord* a, const JobRecord* b) {
              const double wa = queue_.weight(a->spec.job_class);
              const double wb = queue_.weight(b->spec.job_class);
              if (wa != wb) return wa < wb;
              return a->id > b->id;
            });
  std::uint64_t freeable = 0;
  for (JobRecord* victim : victims) {
    if (avail + freeable >= floor) break;
    victim->preempt_requested = true;
    victim->preempted_by = newcomer.id;
    victim->cancel.store(true, std::memory_order_release);
    freeable += victim->granted;
    service_marker("preempt job=" + victim->spec.name +
                   " for=" + newcomer.spec.name);
  }
}

void JobScheduler::requeue_preempted_locked(JobRecord& job) {
  job.state = JobState::kQueued;
  job.preempt_yield = false;
  job.preempt_requested = false;
  job.cancel.store(false, std::memory_order_release);
  job.resume_requested = true;  // the yield is a checkpoint: resume from it
  job.parked_behind = job.preempted_by;
  job.preempted_by = 0;
  job.granted = 0;  // released by the worker; renegotiated at re-dispatch
  ++job.preemptions;
  obs::count(obs::Counter::kJobsPreempted, 1);
  // Original finish tag: the job keeps its virtual start time, so the yield
  // costs it no fairness credit — but it stays parked until the beneficiary
  // has dispatched, else strict SFQ order would hand the grant right back.
  queue_.restore(job.id, job.spec.job_class, job.cost, job.finish_tag);
  peak_queue_depth_ = std::max(peak_queue_depth_, queue_.size());
  service_marker("yield job=" + job.spec.name +
                 " preemptions=" + std::to_string(job.preemptions));
}

std::uint64_t JobScheduler::negotiate_budget(JobRecord& job) {
  // Called under mu_: every reservation happens under the lock, and
  // releases (lock-free) only grow availability, so once the dispatch
  // predicate saw the floor fit, the floor reservation cannot fail.
  const std::uint64_t floor =
      std::min(job.requested, cfg_.min_job_budget_bytes);
  std::uint64_t grant = job.requested;
  std::uint64_t shrinks = 0;
  if (mode_ != ServiceMode::kNormal && grant / 2 >= floor) {
    // Pressure/Shed: new grants start halved so more jobs fit the ledger
    // and each job's chunk geometry shrinks with it.
    grant /= 2;
    ++shrinks;
  }
  while (!governor_.try_reserve(grant)) {
    const std::uint64_t next = std::max(floor, grant / 2);
    HS_ASSERT_MSG(next != grant, "floor reservation failed under the lock");
    grant = next;
    ++shrinks;
  }
  if (shrinks > 0) {
    job.degraded = true;
    obs::count(obs::Counter::kJobBudgetShrinks, shrinks);
    service_marker("shrink job=" + job.spec.name +
                   " grant=" + std::to_string(grant) +
                   " requested=" + std::to_string(job.requested));
  }
  return grant;
}

void JobScheduler::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    dispatch_cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
    if (stop_) return;

    // Memory-eligibility snapshot for this dispatch round. The same
    // availability judges the dispatched job and the bystanders the
    // fairness accounting charges it against. A job parked behind a
    // preemption beneficiary stays ineligible until the beneficiary has
    // left the queue — strict SFQ order would otherwise hand the yielded
    // grant straight back to the preempted job.
    const std::uint64_t avail = governor_.available_bytes();
    const auto floor_fits = [&](std::uint64_t h) {
      JobRecord& j = *jobs_.at(h);
      if (j.parked_behind != 0) {
        const auto it = jobs_.find(j.parked_behind);
        if (it != jobs_.end() && it->second->state == JobState::kQueued) {
          return false;
        }
        j.parked_behind = 0;  // beneficiary dispatched or terminal: unpark
      }
      return std::min(j.requested, cfg_.min_job_budget_bytes) <= avail;
    };
    const auto popped = queue_.pop_first_eligible(floor_fits);
    if (!popped) {
      // Queue non-empty but nothing fits: block until a release or the
      // watchdog tick re-opens the question.
      dispatch_cv_.wait(lk);
      continue;
    }

    JobRecord& job = *jobs_.at(*popped);
    update_mode_locked();
    job.granted = negotiate_budget(job);
    job.state = JobState::kRunning;
    job.pressure_dispatch = mode_ != ServiceMode::kNormal;
    if (job.dispatches == 0) job.queue_wait = seconds_since(job.submit_time);
    ++job.dispatches;
    ++running_;

    // Fairness accounting: the dispatched job's cost counts as bypass work
    // against every *memory-eligible* queued job of another class (a job
    // the budget could not have run is not being starved by this pick).
    const double cost = static_cast<double>(std::max<std::uint64_t>(
        1, job.spec.n > 0 ? job.spec.n : job.spec.memory_budget_elems));
    for (const std::uint64_t h : queue_.queued()) {
      JobRecord& waiter = *jobs_.at(h);
      if (waiter.spec.job_class != job.spec.job_class && floor_fits(h)) {
        waiter.bypass_cost += cost;
      }
    }

    lk.unlock();
    run_job(job);
    lk.lock();

    --running_;
    governor_.release(job.granted);
    if (job.preempt_yield) {
      if (job.cancel_requested) {
        // An explicit cancel raced the yield: honour the cancel (the
        // journal survives either way).
        job.preempt_yield = false;
        job.preempt_requested = false;
        job.preempted_by = 0;
        job.state = JobState::kCancelled;
        job.error_type = "SortCancelled";
        job.error = "cancelled while yielding to a preemption";
        obs::count(obs::Counter::kJobsCancelled, 1);
      } else {
        requeue_preempted_locked(job);
      }
    } else {
      // Terminal outcome with a preempt request still pending (the job
      // finished before reaching a checkpoint): nothing to yield.
      job.preempt_requested = false;
      job.preempted_by = 0;
    }
    update_mode_locked();
    persist_manifest_locked();
    idle_cv_.notify_all();
    dispatch_cv_.notify_all();  // released bytes may unblock waiters
  }
}

void JobScheduler::run_job(JobRecord& job) {
  obs::ScopedSpan span(job.span_label.c_str(), "Service");
  const Clock::time_point start = Clock::now();
  const JobSpec& spec = job.spec;
  const std::string job_dir = cfg_.service_dir + "/jobs/" + spec.name;

  // Mutable results stay in locals until the final commit under mu_, so a
  // concurrent outcome() poll never reads a half-written record.
  std::string error, error_type;
  JobState final_state = JobState::kFailed;
  bool preempt_yield = false;
  unsigned attempts = 0;
  double virtual_seconds = 0;
  bool resumed = false;
  io::ExternalSortStats stats;
  try {
    std::filesystem::create_directories(job_dir);

    // Materialise a generated input exactly once; resumed attempts reuse
    // the file when it is complete (the run journal's validity depends on
    // the input bytes not changing underneath it).
    std::string input = spec.input_path;
    if (input.empty()) {
      input = job_dir + "/input.bin";
      std::error_code ec;
      const bool present = std::filesystem::exists(input, ec) && !ec &&
                           io::count_doubles(input) == spec.n;
      if (!present) {
        io::write_doubles(input, data::generate(spec.dist, spec.n, spec.seed));
      }
    }

    io::ExternalSortConfig ecfg;
    ecfg.platform = cfg_.platform;
    ecfg.pipeline = spec.pipeline;
    ecfg.pipeline.host_budget_bytes = job.granted;
    ecfg.pipeline.spill_dir = job_dir;
    ecfg.pipeline.device_health = &health_;
    ecfg.io_buffer_elems = std::max<std::uint64_t>(1, spec.io_buffer_elems);
    // Chunk geometry must be identical across attempts and restarts (the
    // journal is dropped otherwise), so it derives from persisted spec
    // fields and the granted budget — which is reserved once per job, not
    // per attempt.
    ecfg.memory_budget_elems =
        spec.memory_budget_elems > 0
            ? spec.memory_budget_elems
            : std::max<std::uint64_t>(ecfg.io_buffer_elems,
                                      job.granted / (3 * sizeof(double)));
    ecfg.temp_dir = job_dir;
    ecfg.journal = true;
    ecfg.io_faults = spec.io_faults;
    ecfg.cancel = &job.cancel;
    if (job.pressure_dispatch) {
      // Degraded-mode bias: smaller pinned staging and a batch planner that
      // takes any modeled non-regression toward more, smaller batches. The
      // chunk geometry above is untouched — the journal stays adoptable.
      ecfg.pipeline.prefer_small_batches = true;
      ecfg.pipeline.staging_elems =
          std::max(core::MemoryGovernor::kMinStagingElems,
                   ecfg.pipeline.staging_elems / 2);
    }

    const unsigned max_attempts = 1 + spec.max_retries;
    for (unsigned attempt = 0;; ++attempt) {
      attempts = attempt + 1;
      ecfg.resume = job.resume_requested || attempt > 0;
      ecfg.simulate_crash_after_runs =
          attempt == 0 && !job.resume_requested ? spec.crash_after_runs : 0;
      try {
        stats = io::external_sort_file(input, spec.output_path, ecfg);
        virtual_seconds += stats.pipeline_virtual_seconds;
        resumed = resumed || stats.resumed;
        if (resumed) obs::count(obs::Counter::kJobsResumed, 1);
        final_state = JobState::kCompleted;
        obs::count(obs::Counter::kJobsCompleted, 1);
        break;
      } catch (const io::SortCancelled& e) {
        // The stop flag fired; why it fired decides what happens next.
        // Priority: deadline > explicit cancel > preemption. Every variant
        // is crash-equivalent on disk — journaled runs survive.
        bool deadline = false, explicit_cancel = false, preempt = false;
        {
          std::lock_guard<std::mutex> lk(mu_);
          deadline = job.deadline_fired;
          explicit_cancel = job.cancel_requested;
          preempt = job.preempt_requested;
        }
        if (!deadline && !explicit_cancel && preempt) {
          // Checkpoint-and-yield: not terminal. The worker loop re-admits
          // the job with its virtual start preserved; the next dispatch
          // resumes from the journal, so the output is byte-identical to a
          // never-preempted run.
          preempt_yield = true;
          final_state = JobState::kRunning;
          break;
        }
        if (deadline) {
          const JobDeadlineExceeded d(spec.name, spec.deadline_seconds,
                                      seconds_since(job.submit_time));
          error = d.what();
          error_type = "JobDeadlineExceeded";
        } else {
          error = e.what();
          error_type = "SortCancelled";
        }
        final_state = JobState::kCancelled;
        obs::count(obs::Counter::kJobsCancelled, 1);
        break;
      } catch (const hs::Error& e) {
        error = e.what();
        error_type = classify_error(e);
        if (attempt + 1 >= max_attempts) {
          final_state = JobState::kFailed;
          obs::count(obs::Counter::kJobsFailed, 1);
          break;
        }
        obs::count(obs::Counter::kJobsRetried, 1);
        service_marker("retry job=" + spec.name + " attempt=" +
                       std::to_string(attempt + 2) + " after " + error_type);
        // Exponential backoff, sliced so shutdown and cancel stay
        // responsive during the wait.
        double backoff =
            cfg_.retry_backoff_seconds * std::pow(2.0, attempt);
        while (backoff > 0) {
          {
            std::lock_guard<std::mutex> lk(mu_);
            if (stop_) break;
          }
          if (job.cancel.load(std::memory_order_acquire)) break;
          const double slice = std::min(backoff, 0.005);
          std::this_thread::sleep_for(
              std::chrono::duration<double>(slice));
          backoff -= slice;
        }
      }
    }
  } catch (const std::exception& e) {
    // Setup failures (input materialisation, directory creation).
    error = e.what();
    error_type = classify_error(e);
    final_state = JobState::kFailed;
    obs::count(obs::Counter::kJobsFailed, 1);
  }

  std::lock_guard<std::mutex> lk(mu_);
  // Accumulate across dispatches: a preempted job runs run_job() once per
  // grant, and its outcome reports the whole story.
  job.run_seconds +=
      std::chrono::duration<double>(Clock::now() - start).count();
  job.attempts += attempts;
  job.virtual_seconds += virtual_seconds;
  job.resumed = job.resumed || resumed;
  job.stats = stats;
  job.error = error;
  job.error_type = error_type;
  job.state = final_state;
  job.preempt_yield = preempt_yield;
}

void JobScheduler::watchdog_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  const auto period =
      std::chrono::duration<double>(cfg_.watchdog_period_seconds);
  while (!stop_) {
    dispatch_cv_.wait_for(lk, period, [&] { return stop_; });
    if (stop_) return;
    for (auto& [id, jobp] : jobs_) {
      JobRecord& job = *jobp;
      if (job.spec.deadline_seconds <= 0) continue;
      const double elapsed = seconds_since(job.submit_time);
      if (elapsed <= job.spec.deadline_seconds) continue;
      if (job.state == JobState::kQueued) {
        queue_.remove(job.id);
        const JobDeadlineExceeded d(job.spec.name, job.spec.deadline_seconds,
                                    elapsed);
        job.state = JobState::kFailed;
        if (job.dispatches == 0) job.queue_wait = elapsed;
        job.error = d.what();
        job.error_type = "JobDeadlineExceeded";
        obs::count(obs::Counter::kJobsFailed, 1);
        service_marker("deadline job=" + job.spec.name + " (queued)");
        idle_cv_.notify_all();
      } else if (job.state == JobState::kRunning && !job.deadline_fired) {
        job.deadline_fired = true;
        job.cancel.store(true, std::memory_order_release);
        service_marker("deadline job=" + job.spec.name + " (running)");
      }
    }
    // Ticks double as spurious dispatch wakeups so a worker parked on
    // memory backpressure re-evaluates periodically, and as a periodic
    // re-evaluation of the load-shedding mode.
    update_mode_locked();
    dispatch_cv_.notify_all();
  }
}

void JobScheduler::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [&] { return queue_.empty() && running_ == 0; });
}

void JobScheduler::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) return;
    stop_ = true;
  }
  dispatch_cv_.notify_all();
  idle_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  if (watchdog_.joinable()) watchdog_.join();
}

void JobScheduler::persist_manifest_locked() {
  if (!cfg_.manifest) return;
  ServiceManifest m;
  m.watchdog_period_seconds = cfg_.watchdog_period_seconds;
  m.jobs.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) {
    // kFailed and kCancelled jobs stay pending: their journals are intact
    // and a restart with resume_jobs() gives them a fresh set of attempts.
    m.jobs.push_back({job->spec, job->state == JobState::kCompleted});
  }
  // Best-effort: a manifest the filesystem refuses degrades crash resume,
  // it must not take down a healthy service (graceful degradation).
  try {
    save_manifest(m, cfg_.service_dir);
  } catch (const io::IoError&) {
  }
}

JobOutcome JobScheduler::outcome(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = by_name_.find(name);
  HS_EXPECTS_MSG(it != by_name_.end(), "unknown job name");
  const JobRecord& job = *jobs_.at(it->second);
  JobOutcome out;
  out.name = job.spec.name;
  out.job_class = job.spec.job_class;
  out.state = job.state;
  out.error = job.error;
  out.error_type = job.error_type;
  out.queue_wait_seconds = job.queue_wait;
  out.run_seconds = job.run_seconds;
  out.virtual_seconds = job.virtual_seconds;
  out.requested_budget_bytes = job.requested;
  out.granted_budget_bytes = job.granted;
  out.degraded = job.degraded;
  out.attempts = job.attempts;
  out.resumed = job.resumed;
  out.preemptions = job.preemptions;
  out.estimate_seconds = job.estimate_seconds;
  out.bypass_cost = job.bypass_cost;
  out.stats = job.stats;
  return out;
}

std::vector<JobOutcome> JobScheduler::outcomes() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lk(mu_);
    names.reserve(by_name_.size());
    for (const auto& [name, id] : by_name_) names.push_back(name);
  }
  std::vector<JobOutcome> out;
  out.reserve(names.size());
  for (const std::string& n : names) out.push_back(outcome(n));
  return out;
}

std::size_t JobScheduler::queue_depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

std::string JobScheduler::report() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t completed = 0, failed = 0, cancelled = 0, queued = 0,
              running = 0;
  struct ClassTally {
    std::size_t jobs = 0, completed = 0, failed = 0, cancelled = 0;
    unsigned preemptions = 0;
    std::vector<double> waits, runs;
  };
  std::map<std::string, ClassTally> tally;
  for (const auto& [id, job] : jobs_) {
    switch (job->state) {
      case JobState::kQueued:
        ++queued;
        break;
      case JobState::kRunning:
        ++running;
        break;
      case JobState::kCompleted:
        ++completed;
        break;
      case JobState::kFailed:
        ++failed;
        break;
      case JobState::kCancelled:
        ++cancelled;
        break;
    }
    ClassTally& t = tally[job->spec.job_class];
    ++t.jobs;
    t.preemptions += job->preemptions;
    switch (job->state) {
      case JobState::kCompleted: ++t.completed; break;
      case JobState::kFailed: ++t.failed; break;
      case JobState::kCancelled: ++t.cancelled; break;
      default: break;
    }
    // Every terminal job that has a measured wait contributes to the
    // percentiles — failed and cancelled included, so shed/cancelled load
    // is visible in the latency table rather than silently absent.
    if (job->state == JobState::kCompleted ||
        job->state == JobState::kFailed ||
        job->state == JobState::kCancelled) {
      if (job->dispatches > 0 || job->queue_wait > 0) {
        t.waits.push_back(job->queue_wait);
      }
      if (job->dispatches > 0) t.runs.push_back(job->run_seconds);
    }
  }
  // Classes that only ever got rejected still deserve a row.
  for (const auto& [klass, reasons] : rejections_) tally[klass];

  std::ostringstream os;
  os << "sort service report\n";
  os << "  jobs: submitted=" << jobs_.size() << " completed=" << completed
     << " failed=" << failed << " cancelled=" << cancelled
     << " running=" << running << " queued=" << queued << '\n';
  os << "  queue: depth=" << queue_.size() << " peak=" << peak_queue_depth_
     << " capacity=" << queue_.capacity() << '\n';
  os << "  mode: " << service_mode_name(mode_)
     << " (transitions=" << mode_transitions_ << ", shedding="
     << (cfg_.load_shedding ? "on" : "off") << ")\n";
  os << "  budget: total=" << governor_.budget_bytes()
     << "B reserved=" << governor_.reserved_bytes()
     << "B peak=" << governor_.peak_reserved_bytes() << "B\n";
  os << "  devices blacklisted: " << health_.count() << '\n';
  for (const auto& [klass, t] : tally) {
    os << "  class " << klass << " (w=" << queue_.weight(klass)
       << "): jobs=" << t.jobs;
    if (t.completed > 0) os << " completed=" << t.completed;
    if (t.failed > 0) os << " failed=" << t.failed;
    if (t.cancelled > 0) os << " cancelled=" << t.cancelled;
    if (t.preemptions > 0) os << " preemptions=" << t.preemptions;
    if (!t.waits.empty()) {
      os << " wait_p50=" << percentile(t.waits, 0.50) * 1e3
         << "ms wait_p99=" << percentile(t.waits, 0.99) * 1e3 << "ms";
    }
    if (!t.runs.empty()) {
      os << " run_p50=" << percentile(t.runs, 0.50) * 1e3
         << "ms run_p99=" << percentile(t.runs, 0.99) * 1e3 << "ms";
    }
    if (const auto rit = rejections_.find(klass); rit != rejections_.end()) {
      os << " rejected:";
      for (const auto& [reason, count] : rit->second) {
        os << ' ' << reason << '=' << count;
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace hs::service
