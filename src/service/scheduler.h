// Sort-as-a-service job scheduler (docs/service.md).
//
// The scheduler turns the single-shot external sort into a long-lived
// service that many clients share safely:
//
//   * admission — a bounded queue; a full queue rejects with the typed
//     ServiceOverloaded (backpressure) instead of accepting unbounded work;
//   * fair queueing — jobs carry a class; dispatch is weighted fair across
//     classes (service/fair_queue.h) so a flood from one tenant cannot
//     starve another;
//   * memory negotiation — one MemoryGovernor is the byte arbiter for the
//     whole service. A worker reserves the job's budget before running;
//     under contention the grant is halved down to min_job_budget_bytes
//     (degraded, counted), and a job whose floor cannot fit *waits* for
//     releases rather than OOM-ing the host. The per-job grant becomes the
//     job's pipeline host budget, so the in-sort governor ladder
//     (shrink-staging / spill) nests under the service-level grant;
//   * deadlines + watchdog — a background thread cancels jobs whose
//     wall-clock age exceeds their deadline, queued or running. Running
//     jobs stop at a cooperative cancellation point (io::SortCancelled)
//     with their journal intact, so a cancelled job is a resumable job;
//   * retries — transient failures (crash hooks, I/O errors) re-run with
//     journal resume and exponential backoff, up to JobSpec::max_retries;
//   * crash resume — accepted specs persist in the service manifest
//     (service/manifest.h); resume_jobs() resubmits every pending job after
//     a service restart and each adopts its own run journal;
//   * shared fault memory — one DeviceHealthBoard spans all jobs, so a
//     device blacklisted by any job is avoided by every later one.
//
// Everything is observable: jobs_* counters, "Service" spans, and report()
// with per-class queue-wait / run-time percentiles.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/device_health.h"
#include "core/memory_governor.h"
#include "model/platforms.h"
#include "service/fair_queue.h"
#include "service/job.h"
#include "service/manifest.h"
#include "service/service_error.h"

namespace hs::service {

struct SchedulerConfig {
  /// Root for the service manifest and per-job journal directories
  /// (`<service_dir>/jobs/<name>`). Created if missing.
  std::string service_dir = ".";

  /// Concurrent sort workers.
  unsigned workers = 2;

  /// Admission queue bound; submissions past it throw ServiceOverloaded.
  std::size_t queue_capacity = 16;

  /// Host bytes shared by all concurrently running jobs; 0 = unlimited.
  std::uint64_t host_budget_bytes = 0;

  /// Floor of the per-job grant ladder: a grant is halved under contention
  /// but never below this, and a job waits (not OOMs, not rejects) until
  /// the floor fits.
  std::uint64_t min_job_budget_bytes = 1ull << 20;

  /// Grant for jobs that do not request a budget (JobSpec::host_budget_bytes
  /// == 0). Clamped to the service budget.
  std::uint64_t default_job_budget_bytes = 16ull << 20;

  /// Fair-queueing classes; absent classes default to weight 1.0.
  std::vector<ClassConfig> classes;

  /// Watchdog scan period for deadline enforcement.
  double watchdog_period_seconds = 0.02;

  /// First retry backoff; doubles per retry. Kept tiny by default so tests
  /// stay fast; a real deployment would raise it.
  double retry_backoff_seconds = 0.01;

  /// Virtual platform the run-formation pipelines execute on.
  model::Platform platform = model::platform1();

  /// Persist the service manifest (disable for throwaway in-test services
  /// that must leave nothing behind).
  bool manifest = true;
};

class JobScheduler {
 public:
  explicit JobScheduler(SchedulerConfig cfg);
  ~JobScheduler();  // drains nothing: running jobs finish, queued jobs stay
                    // in the manifest for the next resume_jobs()

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Admits `spec` or throws: ServiceOverloaded when the queue is full
  /// (retryable backpressure), InvalidJobSpec on a malformed spec. Returns
  /// the job id.
  std::uint64_t submit(JobSpec spec, bool resume = false);

  /// Resubmits every pending job from the service manifest with journal
  /// resume enabled. Returns how many were resubmitted. Call before the
  /// first submit() after a restart.
  std::size_t resume_jobs();

  /// Requests cooperative cancellation of a queued or running job. Returns
  /// false when the name is unknown or the job already finished.
  bool cancel(const std::string& name);

  /// Blocks until the queue is empty and every worker is idle.
  void drain();

  /// Stops accepting dispatches and joins all threads. Running jobs finish
  /// their current attempt (or hit a cancellation point if cancelled).
  void shutdown();

  /// Outcome of a finished job (state kQueued/kRunning while in flight).
  JobOutcome outcome(const std::string& name) const;
  std::vector<JobOutcome> outcomes() const;

  /// Human-readable service report: job counts, queue stats, budget ledger,
  /// per-class queue-wait and run-time percentiles (p50/p99).
  std::string report() const;

  const core::MemoryGovernor& governor() const { return governor_; }
  core::DeviceHealthBoard& device_health() { return health_; }
  std::size_t queue_depth() const;

 private:
  struct JobRecord;

  void worker_loop();
  void watchdog_loop();
  void run_job(JobRecord& job);
  void persist_manifest_locked();
  std::uint64_t negotiate_budget(JobRecord& job);

  SchedulerConfig cfg_;
  core::MemoryGovernor governor_;
  core::DeviceHealthBoard health_;

  mutable std::mutex mu_;
  std::condition_variable dispatch_cv_;  // queue pushes + budget releases
  std::condition_variable idle_cv_;      // drain() wakeups
  FairQueue queue_;
  std::map<std::uint64_t, std::unique_ptr<JobRecord>> jobs_;
  std::map<std::string, std::uint64_t> by_name_;
  std::uint64_t next_id_ = 1;
  unsigned running_ = 0;
  std::size_t peak_queue_depth_ = 0;
  bool stop_ = false;

  std::vector<std::thread> workers_;
  std::thread watchdog_;
};

}  // namespace hs::service
