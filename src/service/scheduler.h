// Sort-as-a-service job scheduler (docs/service.md).
//
// The scheduler turns the single-shot external sort into a long-lived
// service that many clients share safely:
//
//   * admission — a bounded queue; a full queue rejects with the typed
//     ServiceOverloaded (backpressure) instead of accepting unbounded work;
//   * fair queueing — jobs carry a class; dispatch is weighted fair across
//     classes (service/fair_queue.h) so a flood from one tenant cannot
//     starve another;
//   * memory negotiation — one MemoryGovernor is the byte arbiter for the
//     whole service. A worker reserves the job's budget before running;
//     under contention the grant is halved down to min_job_budget_bytes
//     (degraded, counted), and a job whose floor cannot fit *waits* for
//     releases rather than OOM-ing the host. The per-job grant becomes the
//     job's pipeline host budget, so the in-sort governor ladder
//     (shrink-staging / spill) nests under the service-level grant;
//   * SLO admission — with slo_admission enabled, a deadline job is priced
//     at submit() through model::JobCostModel plus the committed queue
//     work; an unmeetable deadline is refused immediately with the typed
//     SloUnmeetable (estimate + earliest-feasible hint) instead of being
//     admitted and cancelled at the deadline;
//   * preemption — when a high-weight job arrives and the governor ledger
//     cannot fit its floor, running lower-weight jobs are asked (at their
//     existing cooperative cancellation checkpoints) to checkpoint-and-yield
//     their grant: preemption ≡ crash-resume, so the journal survives and
//     the resumed output is byte-identical. The fair queue re-admits the
//     preempted job with its virtual start time preserved, parked until the
//     beneficiary has dispatched;
//   * degraded mode — a Normal → Pressure → Shed state machine driven by
//     queue depth, ledger occupancy, and the DeviceHealthBoard. Pressure
//     halves new grants and biases planner batch splits toward smaller
//     footprints; Shed admits only the highest-weight class and refuses the
//     rest with typed backpressure carrying a retry-after hint;
//   * deadlines + watchdog — a background thread cancels jobs whose
//     wall-clock age exceeds their deadline, queued or running. Running
//     jobs stop at a cooperative cancellation point (io::SortCancelled)
//     with their journal intact, so a cancelled job is a resumable job;
//   * retries — transient failures (crash hooks, I/O errors) re-run with
//     journal resume and exponential backoff, up to JobSpec::max_retries;
//   * crash resume — accepted specs persist in the service manifest
//     (service/manifest.h); resume_jobs() resubmits every pending job after
//     a service restart and each adopts its own run journal;
//   * shared fault memory — one DeviceHealthBoard spans all jobs, so a
//     device blacklisted by any job is avoided by every later one.
//
// Everything is observable: jobs_* counters, "Service" spans, and report()
// with per-class queue-wait / run-time percentiles.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/device_health.h"
#include "core/memory_governor.h"
#include "model/platforms.h"
#include "model/service_model.h"
#include "service/fair_queue.h"
#include "service/job.h"
#include "service/manifest.h"
#include "service/service_error.h"

namespace hs::service {

/// Load-shedding state machine (docs/service.md). Transitions are driven by
/// queue depth (fraction of capacity), governor ledger occupancy, and the
/// shared DeviceHealthBoard, evaluated at every submit, dispatch, completion
/// and watchdog tick.
enum class ServiceMode : std::uint8_t {
  kNormal,    // full grants, all classes admitted
  kPressure,  // new grants halved; planner biased to smaller footprints
  kShed,      // only the highest-weight class admitted
};

std::string_view service_mode_name(ServiceMode m);

struct SchedulerConfig {
  /// Root for the service manifest and per-job journal directories
  /// (`<service_dir>/jobs/<name>`). Created if missing.
  std::string service_dir = ".";

  /// Concurrent sort workers.
  unsigned workers = 2;

  /// Admission queue bound; submissions past it throw ServiceOverloaded.
  std::size_t queue_capacity = 16;

  /// Host bytes shared by all concurrently running jobs; 0 = unlimited.
  std::uint64_t host_budget_bytes = 0;

  /// Floor of the per-job grant ladder: a grant is halved under contention
  /// but never below this, and a job waits (not OOMs, not rejects) until
  /// the floor fits.
  std::uint64_t min_job_budget_bytes = 1ull << 20;

  /// Grant for jobs that do not request a budget (JobSpec::host_budget_bytes
  /// == 0). Clamped to the service budget.
  std::uint64_t default_job_budget_bytes = 16ull << 20;

  /// Fair-queueing classes; absent classes default to weight 1.0.
  std::vector<ClassConfig> classes;

  /// Watchdog scan period for deadline enforcement (`serve
  /// --watchdog-period-ms`; persisted in the service manifest).
  double watchdog_period_seconds = 0.02;

  /// SLO admission: price deadline jobs through `cost_model` at submit()
  /// and refuse unmeetable deadlines with SloUnmeetable. Off by default —
  /// calibrate cost_model.wall_factor to the serving host first.
  bool slo_admission = false;

  /// Whole-job cost model for SLO admission and retry-after hints.
  model::JobCostModel cost_model;

  /// Preempt running lower-weight jobs (checkpoint-and-yield) when a
  /// higher-weight arrival's budget floor cannot fit the ledger.
  bool preemption = true;

  /// Enable the Normal → Pressure → Shed state machine. Off keeps the mode
  /// pinned at Normal (admission limited only by queue capacity).
  bool load_shedding = false;

  /// Mode thresholds: enter Pressure/Shed when the queue depth fraction or
  /// ledger occupancy reaches these. A half-blacklisted device fleet also
  /// forces at least Pressure.
  double pressure_queue_fraction = 0.5;
  double shed_queue_fraction = 0.9;
  double pressure_ledger_fraction = 0.75;
  double shed_ledger_fraction = 0.95;

  /// First retry backoff; doubles per retry. Kept tiny by default so tests
  /// stay fast; a real deployment would raise it.
  double retry_backoff_seconds = 0.01;

  /// Virtual platform the run-formation pipelines execute on.
  model::Platform platform = model::platform1();

  /// Persist the service manifest (disable for throwaway in-test services
  /// that must leave nothing behind).
  bool manifest = true;
};

class JobScheduler {
 public:
  explicit JobScheduler(SchedulerConfig cfg);
  ~JobScheduler();  // drains nothing: running jobs finish, queued jobs stay
                    // in the manifest for the next resume_jobs()

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Admits `spec` or throws: ServiceOverloaded when the queue is full
  /// (retryable backpressure), InvalidJobSpec on a malformed spec. Returns
  /// the job id.
  std::uint64_t submit(JobSpec spec, bool resume = false);

  /// Resubmits every pending job from the service manifest with journal
  /// resume enabled. Returns how many were resubmitted. Call before the
  /// first submit() after a restart.
  std::size_t resume_jobs();

  /// Requests cooperative cancellation of a queued or running job. Returns
  /// false when the name is unknown or the job already finished.
  bool cancel(const std::string& name);

  /// Blocks until the queue is empty and every worker is idle.
  void drain();

  /// Stops accepting dispatches and joins all threads. Running jobs finish
  /// their current attempt (or hit a cancellation point if cancelled).
  void shutdown();

  /// Outcome of a finished job (state kQueued/kRunning while in flight).
  JobOutcome outcome(const std::string& name) const;
  std::vector<JobOutcome> outcomes() const;

  /// Human-readable service report: job counts, queue stats, budget ledger,
  /// per-class queue-wait and run-time percentiles (p50/p99).
  std::string report() const;

  const core::MemoryGovernor& governor() const { return governor_; }
  core::DeviceHealthBoard& device_health() { return health_; }
  std::size_t queue_depth() const;

  /// Current load-shedding mode and lifetime transition count.
  ServiceMode mode() const;
  std::size_t mode_transitions() const;

 private:
  struct JobRecord;

  void worker_loop();
  void watchdog_loop();
  void run_job(JobRecord& job);
  void persist_manifest_locked();
  std::uint64_t negotiate_budget(JobRecord& job);
  void update_mode_locked();
  void requeue_preempted_locked(JobRecord& job);
  void preempt_for_locked(const JobRecord& newcomer);
  double committed_seconds_locked() const;
  void record_rejection_locked(const std::string& klass,
                               const std::string& reason);
  model::JobCostBreakdown estimate_spec(const JobSpec& spec,
                                        std::uint64_t requested) const;

  SchedulerConfig cfg_;
  core::MemoryGovernor governor_;
  core::DeviceHealthBoard health_;
  double max_class_weight_ = 1.0;  // the class Shed mode protects

  mutable std::mutex mu_;
  std::condition_variable dispatch_cv_;  // queue pushes + budget releases
  std::condition_variable idle_cv_;      // drain() wakeups
  FairQueue queue_;
  std::map<std::uint64_t, std::unique_ptr<JobRecord>> jobs_;
  std::map<std::string, std::uint64_t> by_name_;
  std::uint64_t next_id_ = 1;
  unsigned running_ = 0;
  std::size_t peak_queue_depth_ = 0;
  bool stop_ = false;
  ServiceMode mode_ = ServiceMode::kNormal;
  std::size_t mode_transitions_ = 0;
  /// class -> rejection reason ("queue" / "shed" / "slo") -> count; feeds
  /// the per-class rejection breakdown in report(). Rejected submissions
  /// have no JobRecord, so they are tallied here.
  std::map<std::string, std::map<std::string, std::size_t>> rejections_;

  std::vector<std::thread> workers_;
  std::thread watchdog_;
};

}  // namespace hs::service
