// Typed failures of the sort service (docs/service.md).
//
// The scheduler's contract under overload is *typed refusal, never OOM*:
// every job either completes, or fails with an error naming exactly which
// service policy stopped it — queue capacity or load shedding
// (ServiceOverloaded, with a machine-readable reason and retry-after hint),
// an unmeetable deadline caught at admission (SloUnmeetable), a wall
// deadline (JobDeadlineExceeded), or an explicit cancel (surfaced as
// io::SortCancelled). Clients distinguish "back off and resubmit" from
// "this job can never run here" without parsing strings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/error.h"

namespace hs::service {

/// Thrown by JobScheduler::submit when the admission queue is full
/// (kQueueFull) or the load-shedding state machine is in Shed mode and the
/// job's class is not the protected highest-weight class (kShed). This is
/// the backpressure signal: the service is saturated and the client should
/// retry later — `retry_after_seconds` estimates when, from the committed
/// work ahead — not a statement about the job itself.
class ServiceOverloaded : public hs::Error {
 public:
  enum class Reason : std::uint8_t { kQueueFull, kShed };

  ServiceOverloaded(std::size_t depth, std::size_t capacity,
                    Reason reason = Reason::kQueueFull,
                    double retry_after_seconds = 0)
      : hs::Error(reason == Reason::kShed
                      ? "service shedding load: only the highest-weight "
                        "class is admitted; retry in ~" +
                            std::to_string(retry_after_seconds) + "s"
                      : "service overloaded: admission queue holds " +
                            std::to_string(depth) + " of " +
                            std::to_string(capacity) +
                            " jobs; back off and resubmit in ~" +
                            std::to_string(retry_after_seconds) + "s"),
        depth_(depth),
        capacity_(capacity),
        reason_(reason),
        retry_after_seconds_(retry_after_seconds) {}

  std::size_t depth() const { return depth_; }
  std::size_t capacity() const { return capacity_; }
  Reason reason() const { return reason_; }
  /// Estimated seconds until a resubmission is likely to be admitted
  /// (committed queue work divided by worker parallelism). 0 = unknown.
  double retry_after_seconds() const { return retry_after_seconds_; }

 private:
  std::size_t depth_;
  std::size_t capacity_;
  Reason reason_;
  double retry_after_seconds_;
};

/// Thrown by JobScheduler::submit (SLO admission enabled) when the cost
/// models say the job's deadline cannot be met even if everything goes
/// right: estimated queue wait plus estimated run time exceeds the deadline.
/// The job is never admitted — no worker time is burned on a hopeless job —
/// and `earliest_feasible_seconds` tells the client the smallest deadline
/// that would currently pass admission.
class SloUnmeetable : public hs::Error {
 public:
  SloUnmeetable(const std::string& job, double deadline_seconds,
                double estimate_seconds, double queue_seconds)
      : hs::Error("job '" + job + "' cannot meet its deadline of " +
                  std::to_string(deadline_seconds) + "s: estimated run " +
                  std::to_string(estimate_seconds) + "s after ~" +
                  std::to_string(queue_seconds) +
                  "s of committed queue work; earliest feasible deadline ~" +
                  std::to_string(estimate_seconds + queue_seconds) + "s"),
        deadline_seconds_(deadline_seconds),
        estimate_seconds_(estimate_seconds),
        queue_seconds_(queue_seconds) {}

  double deadline_seconds() const { return deadline_seconds_; }
  /// Modeled run time of the job itself (form + merge + disk legs).
  double estimate_seconds() const { return estimate_seconds_; }
  /// Modeled wait for the committed work already queued or running.
  double queue_seconds() const { return queue_seconds_; }
  double earliest_feasible_seconds() const {
    return estimate_seconds_ + queue_seconds_;
  }

 private:
  double deadline_seconds_;
  double estimate_seconds_;
  double queue_seconds_;
};

/// Recorded (never thrown across the worker boundary — it lands in
/// JobOutcome) when the watchdog cancels a job whose wall-clock age exceeded
/// its deadline, whether it was still queued or already running. A running
/// job stops at the next cooperative cancellation point; its journal
/// survives, so the job is resumable with a larger deadline.
class JobDeadlineExceeded : public hs::Error {
 public:
  JobDeadlineExceeded(const std::string& job, double deadline_seconds,
                      double elapsed_seconds)
      : hs::Error("job '" + job + "' exceeded its deadline of " +
                  std::to_string(deadline_seconds) + "s (elapsed " +
                  std::to_string(elapsed_seconds) +
                  "s); cancelled with journal preserved"),
        deadline_seconds_(deadline_seconds),
        elapsed_seconds_(elapsed_seconds) {}

  double deadline_seconds() const { return deadline_seconds_; }
  double elapsed_seconds() const { return elapsed_seconds_; }

 private:
  double deadline_seconds_;
  double elapsed_seconds_;
};

/// Thrown by JobScheduler::submit on a spec the service can never run:
/// empty name, duplicate name, or no output path. Unlike ServiceOverloaded
/// this is not retryable — the spec itself is wrong.
class InvalidJobSpec : public hs::Error {
 public:
  using hs::Error::Error;
};

}  // namespace hs::service
