// Typed failures of the sort service (docs/service.md).
//
// The scheduler's contract under overload is *typed refusal, never OOM*:
// every job either completes, or fails with an error naming exactly which
// service policy stopped it — queue capacity (ServiceOverloaded), a wall
// deadline (JobDeadlineExceeded), or an explicit cancel (surfaced as
// io::SortCancelled). Clients distinguish "back off and resubmit" from
// "this job can never run here" without parsing strings.
#pragma once

#include <cstddef>
#include <string>

#include "common/error.h"

namespace hs::service {

/// Thrown by JobScheduler::submit when the admission queue is full. This is
/// the backpressure signal: the service is saturated and the client should
/// retry later (the queue drains as workers finish), not a statement about
/// the job itself.
class ServiceOverloaded : public hs::Error {
 public:
  ServiceOverloaded(std::size_t depth, std::size_t capacity)
      : hs::Error("service overloaded: admission queue holds " +
                  std::to_string(depth) + " of " + std::to_string(capacity) +
                  " jobs; back off and resubmit"),
        depth_(depth),
        capacity_(capacity) {}

  std::size_t depth() const { return depth_; }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t depth_;
  std::size_t capacity_;
};

/// Recorded (never thrown across the worker boundary — it lands in
/// JobOutcome) when the watchdog cancels a job whose wall-clock age exceeded
/// its deadline, whether it was still queued or already running. A running
/// job stops at the next cooperative cancellation point; its journal
/// survives, so the job is resumable with a larger deadline.
class JobDeadlineExceeded : public hs::Error {
 public:
  JobDeadlineExceeded(const std::string& job, double deadline_seconds,
                      double elapsed_seconds)
      : hs::Error("job '" + job + "' exceeded its deadline of " +
                  std::to_string(deadline_seconds) + "s (elapsed " +
                  std::to_string(elapsed_seconds) +
                  "s); cancelled with journal preserved"),
        deadline_seconds_(deadline_seconds),
        elapsed_seconds_(elapsed_seconds) {}

  double deadline_seconds() const { return deadline_seconds_; }
  double elapsed_seconds() const { return elapsed_seconds_; }

 private:
  double deadline_seconds_;
  double elapsed_seconds_;
};

/// Thrown by JobScheduler::submit on a spec the service can never run:
/// empty name, duplicate name, or no output path. Unlike ServiceOverloaded
/// this is not retryable — the spec itself is wrong.
class InvalidJobSpec : public hs::Error {
 public:
  using hs::Error::Error;
};

}  // namespace hs::service
