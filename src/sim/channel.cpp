#include "sim/channel.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.h"

namespace hs::sim {

namespace {
// Bytes below this are treated as fully transferred; guards float drift.
constexpr double kBytesEpsilon = 1e-6;
// A flow whose residue would finish within this many seconds is also done:
// at virtual times of order seconds, double time resolution (~1e-15 s) cannot
// represent smaller steps, and scheduling them would livelock the event loop.
constexpr double kTimeEpsilon = 1e-9;
}  // namespace

SharedChannel::SharedChannel(std::string name, double capacity_bps)
    : name_(std::move(name)), capacity_bps_(capacity_bps) {
  HS_EXPECTS(capacity_bps_ > 0);
}

void SharedChannel::advance_to(SimTime now) {
  HS_EXPECTS(now + 1e-12 >= last_update_);
  const double dt = now - last_update_;
  if (dt > 0) {
    for (auto& f : flows_) {
      if (f.active) {
        f.remaining = std::max(0.0, f.remaining - f.rate * dt);
      }
    }
  }
  last_update_ = std::max(last_update_, now);
}

FlowHandle SharedChannel::add_flow(double bytes, double rate_cap_bps) {
  HS_EXPECTS(bytes >= 0);
  Flow f;
  f.remaining = bytes;
  f.cap = rate_cap_bps > 0 ? rate_cap_bps
                           : std::numeric_limits<double>::infinity();
  f.serial = next_serial_++;
  f.active = true;

  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    flows_[slot] = f;
  } else {
    slot = static_cast<std::uint32_t>(flows_.size());
    flows_.push_back(f);
  }
  ++active_count_;
  if (std::isfinite(f.cap)) ++capped_count_;
  recompute_rates();
  return FlowHandle{slot, f.serial};
}

bool SharedChannel::flow_done(FlowHandle h) const {
  const Flow& f = get(h);
  return f.remaining <= kBytesEpsilon + f.rate * kTimeEpsilon;
}

void SharedChannel::remove_flow(FlowHandle h) {
  Flow& f = get(h);
  f.active = false;
  free_slots_.push_back(h.index);
  HS_ASSERT(active_count_ > 0);
  --active_count_;
  if (std::isfinite(f.cap)) {
    HS_ASSERT(capped_count_ > 0);
    --capped_count_;
  }
  recompute_rates();
}

SimTime SharedChannel::next_completion(SimTime now) const {
  SimTime best = kTimeInfinity;
  for (const auto& f : flows_) {
    if (!f.active) continue;
    HS_ASSERT(f.rate > 0);
    if (f.remaining <= kBytesEpsilon + f.rate * kTimeEpsilon) {
      return now;  // already done
    }
    best = std::min(best, now + f.remaining / f.rate);
  }
  return best;
}

double SharedChannel::flow_rate(FlowHandle h) const { return get(h).rate; }

double SharedChannel::flow_remaining(FlowHandle h) const {
  return get(h).remaining;
}

void SharedChannel::recompute_rates() {
  // Water filling: repeatedly grant capped flows their cap whenever the cap is
  // below the current fair share, then split what is left among the rest.
  if (active_count_ == 0) return;
  if (capped_count_ == 0) {
    // Common PCIe case: no flow is individually capped, so water filling
    // degenerates to one equal split — no worklist needed.
    const double fair = capacity_bps_ / static_cast<double>(active_count_);
    for (auto& f : flows_) {
      if (f.active) f.rate = fair;
    }
    return;
  }
  std::vector<Flow*>& open = open_scratch_;
  open.clear();
  open.reserve(active_count_);
  for (auto& f : flows_) {
    if (f.active) open.push_back(&f);
  }
  double remaining_cap = capacity_bps_;
  bool changed = true;
  while (changed && !open.empty()) {
    changed = false;
    const double fair = remaining_cap / static_cast<double>(open.size());
    for (std::size_t i = 0; i < open.size();) {
      if (open[i]->cap <= fair) {
        open[i]->rate = open[i]->cap;
        remaining_cap -= open[i]->cap;
        open[i] = open.back();
        open.pop_back();
        changed = true;
      } else {
        ++i;
      }
    }
  }
  if (!open.empty()) {
    const double fair = remaining_cap / static_cast<double>(open.size());
    for (Flow* f : open) f->rate = fair;
  }
}

const SharedChannel::Flow& SharedChannel::get(FlowHandle h) const {
  HS_EXPECTS(h.index < flows_.size());
  const Flow& f = flows_[h.index];
  HS_EXPECTS_MSG(f.active && f.serial == h.serial, "stale flow handle");
  return f;
}

SharedChannel::Flow& SharedChannel::get(FlowHandle h) {
  return const_cast<Flow&>(
      static_cast<const SharedChannel*>(this)->get(h));
}

}  // namespace hs::sim
