// Fluid-flow processor-sharing channel.
//
// Models a bandwidth-limited link (one PCIe direction, the host memory bus)
// carrying several concurrent transfers. Capacity is divided by *water
// filling*: every active flow gets an equal share, except flows whose own rate
// cap (e.g. "a pageable copy cannot exceed 6 GB/s", "one memcpy thread moves
// at most 8 GB/s") is below the fair share; their surplus is redistributed to
// the remaining flows. This is the standard fluid approximation for
// bandwidth-shared links and is what reproduces the paper's dual-GPU PCIe
// contention (Figs 10-11) without packet-level simulation.
//
// The channel is a passive state machine; the simulation Engine drives it by
// calling advance_to() before every membership change and asking for the next
// completion time afterwards.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.h"

namespace hs::sim {

struct FlowHandle {
  std::uint32_t index = 0;     // slot in the channel's active table
  std::uint64_t serial = 0;    // guards against slot reuse
};

class SharedChannel {
 public:
  /// `capacity_bps` — aggregate bytes/second the link sustains.
  SharedChannel(std::string name, double capacity_bps);

  const std::string& name() const { return name_; }
  double capacity() const { return capacity_bps_; }

  /// Advances all active flows' progress to time `now`. Must be called with
  /// monotonically non-decreasing `now`.
  void advance_to(SimTime now);

  /// Adds a flow of `bytes` with per-flow cap `rate_cap_bps` (<= 0 means
  /// uncapped). Caller must have advance_to(now)'d first. Rates of all flows
  /// are recomputed.
  FlowHandle add_flow(double bytes, double rate_cap_bps);

  /// True if the flow has transferred all its bytes (within tolerance).
  bool flow_done(FlowHandle h) const;

  /// Removes a flow (normally when done) and recomputes rates.
  void remove_flow(FlowHandle h);

  /// Earliest time at which some active flow completes; kTimeInfinity if idle.
  SimTime next_completion(SimTime now) const;

  std::size_t active_flows() const { return active_count_; }

  /// Current allocated rate of a flow (bytes/s); for tests and diagnostics.
  double flow_rate(FlowHandle h) const;

  /// Remaining bytes of a flow; for tests and diagnostics.
  double flow_remaining(FlowHandle h) const;

 private:
  struct Flow {
    double remaining = 0;
    double cap = 0;        // per-flow cap; +inf when uncapped
    double rate = 0;       // current allocation
    std::uint64_t serial = 0;
    bool active = false;
  };

  void recompute_rates();
  const Flow& get(FlowHandle h) const;
  Flow& get(FlowHandle h);

  std::string name_;
  double capacity_bps_;
  std::vector<Flow> flows_;      // slot table, slots reused
  std::vector<std::uint32_t> free_slots_;
  std::vector<Flow*> open_scratch_;  // recompute_rates() worklist, reused
  std::size_t active_count_ = 0;
  std::size_t capped_count_ = 0;     // active flows with a finite rate cap
  std::uint64_t next_serial_ = 1;
  SimTime last_update_ = 0;
};

}  // namespace hs::sim
