#include "sim/compute_engine.h"

#include <algorithm>

#include "common/assert.h"

namespace hs::sim {

ComputeEngine::ComputeEngine(std::string name) : name_(std::move(name)) {}

std::uint64_t ComputeEngine::enqueue(SimTime now, SimTime duration) {
  HS_EXPECTS(duration >= 0);
  const SimTime start = std::max(now, free_at_);
  free_at_ = start + duration;
  busy_total_ += duration;
  const std::uint64_t ticket = next_ticket_++;
  completions_.emplace_back(ticket, free_at_);
  // Bound queue memory: drop records that can no longer be queried. Keep a
  // generous window since queries arrive shortly after enqueue.
  while (completions_.size() > 4096) completions_.pop_front();
  return ticket;
}

bool ComputeEngine::done(std::uint64_t ticket, SimTime now) const {
  return completion_time(ticket) <= now + 1e-12;
}

SimTime ComputeEngine::completion_time(std::uint64_t ticket) const {
  for (const auto& [t, end] : completions_) {
    if (t == ticket) return end;
  }
  HS_ASSERT_MSG(false, "unknown or evicted engine ticket");
  return kTimeInfinity;
}

}  // namespace hs::sim
