// Exclusive FIFO compute resource — models one GPU's compute pipeline.
//
// CUDA kernels launched into different streams on the same device still
// serialise on the SM array when each kernel (a Thrust sort over half of
// global memory) saturates the device, which is exactly the regime of this
// paper. We therefore model the device as an exclusive server with FIFO
// admission in launch order.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "sim/types.h"

namespace hs::sim {

class ComputeEngine {
 public:
  explicit ComputeEngine(std::string name);

  const std::string& name() const { return name_; }

  /// Enqueues a job of `duration`; returns a ticket used to query completion.
  /// Jobs are served in enqueue order.
  std::uint64_t enqueue(SimTime now, SimTime duration);

  /// True once job `ticket` has finished by time `now`.
  bool done(std::uint64_t ticket, SimTime now) const;

  /// Completion time of `ticket` (valid immediately after enqueue since the
  /// schedule is deterministic FIFO).
  SimTime completion_time(std::uint64_t ticket) const;

  /// Time the engine becomes free of all queued work.
  SimTime idle_time() const { return free_at_; }

  /// Total busy time accumulated (for utilisation reports).
  SimTime busy_total() const { return busy_total_; }

 private:
  std::string name_;
  SimTime free_at_ = 0;
  SimTime busy_total_ = 0;
  std::uint64_t next_ticket_ = 1;
  std::deque<std::pair<std::uint64_t, SimTime>> completions_;  // ticket -> end
};

}  // namespace hs::sim
