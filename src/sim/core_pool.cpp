#include "sim/core_pool.h"

#include <algorithm>

#include "common/assert.h"

namespace hs::sim {

CorePool::CorePool(std::string name, std::uint32_t cores)
    : name_(std::move(name)), total_(cores), available_(cores) {
  HS_EXPECTS(cores > 0);
}

bool CorePool::acquire(TaskId task, std::uint32_t count) {
  const std::uint32_t need = std::min(std::max(count, 1u), total_);
  if (waiting_.empty() && need <= available_) {
    available_ -= need;
    granted_.push_back({task, need});
    return true;
  }
  waiting_.push_back({task, need});
  return false;
}

void CorePool::release(TaskId task) {
  auto it = std::find_if(granted_.begin(), granted_.end(),
                         [task](const Claim& c) { return c.task == task; });
  HS_EXPECTS_MSG(it != granted_.end(), "release without matching grant");
  available_ += it->count;
  HS_ASSERT(available_ <= total_);
  granted_.erase(it);
}

TaskId CorePool::try_grant() {
  if (waiting_.empty() || waiting_.front().count > available_) {
    return kInvalidTask;
  }
  const Claim c = waiting_.front();
  waiting_.pop_front();
  available_ -= c.count;
  granted_.push_back(c);
  return c.task;
}

}  // namespace hs::sim
