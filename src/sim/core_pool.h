// Counted host-CPU core resource with FIFO admission.
//
// Host-side tasks (staging memcpys, pair-wise merges, the multiway merge)
// claim a number of worker threads for their lifetime. Admission is strict
// FIFO — a wide task at the head blocks later narrow tasks — which is the
// conservative behaviour of an OpenMP runtime with a fixed team size and
// avoids starvation analysis entirely.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "sim/types.h"

namespace hs::sim {

class CorePool {
 public:
  CorePool(std::string name, std::uint32_t cores);

  const std::string& name() const { return name_; }
  std::uint32_t total() const { return total_; }
  std::uint32_t available() const { return available_; }

  /// Requests `count` cores (clamped to pool size) for task `task`. Returns
  /// true when granted immediately; otherwise the request queues FIFO and the
  /// Engine is notified via try_grant() when cores free up.
  bool acquire(TaskId task, std::uint32_t count);

  /// Releases the cores held by `task` (must match a prior grant).
  void release(TaskId task);

  /// Grants the queue head if it now fits; returns the granted task or
  /// kInvalidTask. Call repeatedly until it returns kInvalidTask.
  TaskId try_grant();

  std::size_t queued() const { return waiting_.size(); }

 private:
  struct Claim {
    TaskId task;
    std::uint32_t count;
  };

  std::string name_;
  std::uint32_t total_;
  std::uint32_t available_;
  std::deque<Claim> waiting_;
  std::deque<Claim> granted_;
};

}  // namespace hs::sim
