#include "sim/critical_path.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "common/assert.h"

namespace hs::sim {

std::vector<CriticalStep> critical_path(const Trace& trace) {
  if (trace.events().empty()) return {};
  std::unordered_map<TaskId, const TraceEvent*> by_task;
  const TraceEvent* last = nullptr;
  for (const TraceEvent& ev : trace.events()) {
    by_task.emplace(ev.task, &ev);
    if (last == nullptr || ev.end > last->end) last = &ev;
  }

  std::vector<CriticalStep> reversed;
  const TraceEvent* cur = last;
  while (cur != nullptr) {
    CriticalStep step;
    step.event = cur;
    step.service = cur->end - cur->start;
    step.resource_wait = cur->start - cur->ready;
    reversed.push_back(step);
    if (cur->blocking_dep == kInvalidTask) break;
    const auto it = by_task.find(cur->blocking_dep);
    HS_ASSERT_MSG(it != by_task.end(), "blocking dep missing from trace");
    cur = it->second;
  }
  std::reverse(reversed.begin(), reversed.end());
  return reversed;
}

CriticalSummary summarize_critical_path(const Trace& trace) {
  CriticalSummary s;
  s.makespan = trace.makespan();
  for (const CriticalStep& step : critical_path(trace)) {
    s.total_service += step.service;
    s.total_wait += step.resource_wait;
    s.service_by_phase[static_cast<std::size_t>(step.event->phase)] +=
        step.service;
  }
  return s;
}

void print_critical_summary(const Trace& trace, std::ostream& os) {
  const CriticalSummary s = summarize_critical_path(trace);
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "critical path: makespan %.4f s = %.4f s service + %.4f s "
                "resource wait\n",
                s.makespan, s.total_service, s.total_wait);
  os << buf;
  // Phases sorted by contribution.
  std::vector<std::pair<SimTime, Phase>> ranked;
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    if (s.service_by_phase[i] > 0) {
      ranked.emplace_back(s.service_by_phase[i], static_cast<Phase>(i));
    }
  }
  std::sort(ranked.rbegin(), ranked.rend());
  for (const auto& [service, phase] : ranked) {
    std::snprintf(buf, sizeof buf, "  %-14s %8.4f s (%.1f%% of makespan)\n",
                  std::string(phase_name(phase)).c_str(), service,
                  s.makespan > 0 ? 100.0 * service / s.makespan : 0.0);
    os << buf;
  }
}

}  // namespace hs::sim
