// Critical-path extraction: which chain of tasks determined the makespan?
//
// Walks the trace backwards from the last-finishing task along blocking_dep
// edges (the dependency that finished last before each task became ready).
// For each step it distinguishes service time (start..end) from resource
// wait (ready..start), and the summary aggregates per-phase shares — turning
// "the run took 26 s" into "the multiway merge holds 42% of the critical
// path" — the quantified version of the paper's Figure 1 load-imbalance
// discussion.
#pragma once

#include <ostream>
#include <vector>

#include "sim/trace.h"

namespace hs::sim {

struct CriticalStep {
  const TraceEvent* event = nullptr;
  SimTime service = 0;        // end - start
  SimTime resource_wait = 0;  // start - ready (queued on cores/engine/link)
};

/// Critical path, root first. Empty for an empty trace.
std::vector<CriticalStep> critical_path(const Trace& trace);

struct CriticalSummary {
  SimTime makespan = 0;
  SimTime total_service = 0;
  SimTime total_wait = 0;
  std::array<SimTime, kNumPhases> service_by_phase{};
};

CriticalSummary summarize_critical_path(const Trace& trace);

/// Prints the top contributors ("MultiwayMerge 11.12 s (42.1%) ...").
void print_critical_summary(const Trace& trace, std::ostream& os);

}  // namespace hs::sim
