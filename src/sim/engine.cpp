#include "sim/engine.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"

namespace hs::sim {

PipelineStalled::PipelineStalled(const std::string& what,
                                 std::vector<std::string> stuck, SimTime at)
    : hs::Error(what), stuck_(std::move(stuck)), at_(at) {}

ChannelId Engine::add_channel(std::string name, double capacity_bps) {
  channels_.emplace_back(std::move(name), capacity_bps);
  return static_cast<ChannelId>(channels_.size() - 1);
}

EngineId Engine::add_compute(std::string name) {
  computes_.emplace_back(std::move(name));
  return static_cast<EngineId>(computes_.size() - 1);
}

PoolId Engine::add_pool(std::string name, std::uint32_t cores) {
  pools_.emplace_back(std::move(name), cores);
  return static_cast<PoolId>(pools_.size() - 1);
}

SharedChannel& Engine::channel(ChannelId id) {
  HS_EXPECTS(id < channels_.size());
  return channels_[id];
}

ComputeEngine& Engine::compute(EngineId id) {
  HS_EXPECTS(id < computes_.size());
  return computes_[id];
}

CorePool& Engine::pool(PoolId id) {
  HS_EXPECTS(id < pools_.size());
  return pools_[id];
}

Trace Engine::run(TaskGraph graph) {
  graph.validate();
  graph_ = std::move(graph);
  const std::size_t n = graph_.size();
  states_.assign(n, TaskState{});
  channel_versions_.assign(channels_.size(), 0);
  channel_flows_.assign(channels_.size(), {});
  events_ = {};
  next_seq_ = 0;
  completed_ = 0;
  abort_time_ = 0;
  trace_.clear();

  for (TaskId id = 0; id < n; ++id) {
    const Task& t = graph_.task(id);
    states_[id].deps_left = static_cast<std::uint32_t>(t.deps.size());
    for (const TaskId d : t.deps) states_[d].dependents.push_back(id);
  }
  for (TaskId id = 0; id < n; ++id) {
    if (states_[id].deps_left == 0) on_ready(id, 0.0);
  }

  SimTime now = 0;
  while (!events_.empty()) {
    const Event ev = events_.top();
    events_.pop();
    if (!(ev.time < watchdog_horizon_)) {
      // A completion at/beyond the horizon (e.g. a hung kernel scheduled at
      // t = infinity) will never let the graph finish in bounded time.
      throw_stalled("watchdog horizon reached", now);
    }
    now = ev.time;
    switch (ev.kind) {
      case Event::Kind::kStageDone:
        advance(ev.task, ev.time, ev.next_stage);
        break;
      case Event::Kind::kChannelCheck:
        if (ev.version == channel_versions_[ev.chan]) {
          handle_channel_check(ev.chan, ev.time);
        }
        break;
    }
  }

  if (completed_ != n) {
    // Resource deadlock or dangling wait: nothing left to fire, tasks remain.
    throw_stalled("event queue drained", now);
  }
  return std::exchange(trace_, Trace{});
}

void Engine::throw_stalled(const std::string& reason, SimTime t) {
  abort_time_ = t;
  std::vector<std::string> stuck;
  for (TaskId id = 0; id < graph_.size(); ++id) {
    if (!states_[id].done) stuck.push_back(graph_.task(id).label);
  }
  constexpr std::size_t kNamed = 8;
  std::string what = "pipeline stalled (" + reason + ") at t=" +
                     std::to_string(t) + "s with " +
                     std::to_string(stuck.size()) + " task(s) stuck:";
  for (std::size_t i = 0; i < stuck.size() && i < kNamed; ++i) {
    what += " " + stuck[i];
  }
  if (stuck.size() > kNamed) {
    what += " (+" + std::to_string(stuck.size() - kNamed) + " more)";
  }
  throw PipelineStalled(what, std::move(stuck), t);
}

void Engine::on_ready(TaskId id, SimTime t) {
  TaskState& st = states_[id];
  // Zero-cost tasks complete synchronously, so a dependent may reach zero
  // deps while the initial ready sweep is still running; fire exactly once.
  if (st.ready_fired) return;
  st.ready_fired = true;
  st.ready = t;
  const Task& task = graph_.task(id);
  if (task.cores) {
    HS_EXPECTS(task.cores->pool < pools_.size());
    if (!pools_[task.cores->pool].acquire(id, task.cores->count)) {
      return;  // queued; start_service fires on a later release
    }
  }
  start_service(id, t);
}

void Engine::start_service(TaskId id, SimTime t) {
  TaskState& st = states_[id];
  HS_ASSERT(!st.started);
  st.started = true;
  st.start = t;
  advance(id, t, Stage::kFixed);
}

void Engine::advance(TaskId id, SimTime t, Stage stage) {
  const Task& task = graph_.task(id);
  switch (stage) {
    case Stage::kFixed:
      if (task.fixed_duration > 0) {
        schedule_stage(id, t + task.fixed_duration, Stage::kExec);
        return;
      }
      [[fallthrough]];
    case Stage::kExec:
      if (task.exec) {
        HS_EXPECTS(task.exec->engine < computes_.size());
        ComputeEngine& eng = computes_[task.exec->engine];
        const std::uint64_t ticket = eng.enqueue(t, task.exec->duration);
        schedule_stage(id, eng.completion_time(ticket), Stage::kLatency);
        return;
      }
      [[fallthrough]];
    case Stage::kLatency:
      if (task.flow && task.flow->latency > 0) {
        schedule_stage(id, t + task.flow->latency, Stage::kFlowJoin);
        return;
      }
      [[fallthrough]];
    case Stage::kFlowJoin:
      if (task.flow) {
        HS_EXPECTS(task.flow->channel < channels_.size());
        SharedChannel& ch = channels_[task.flow->channel];
        ch.advance_to(t);
        const FlowHandle h = ch.add_flow(task.flow->bytes, task.flow->rate_cap_bps);
        states_[id].flow_handle = h;
        channel_flows_[task.flow->channel].emplace_back(id, h);
        ++channel_versions_[task.flow->channel];
        schedule_channel_check(task.flow->channel, t);
        return;
      }
      [[fallthrough]];
    case Stage::kDone:
      complete(id, t);
      return;
  }
}

void Engine::complete(TaskId id, SimTime t) {
  const Task& task = graph_.task(id);
  TaskState& st = states_[id];

  TraceEvent ev;
  ev.task = id;
  ev.phase = task.phase;
  ev.label = task.label;
  ev.ready = st.ready;
  ev.start = st.start;
  ev.end = t;
  ev.bytes = task.traced_bytes;
  ev.blocking_dep = st.blocking_dep;
  trace_.record(std::move(ev));

  if (task.cores) {
    CorePool& pool = pools_[task.cores->pool];
    pool.release(id);
    for (TaskId granted = pool.try_grant(); granted != kInvalidTask;
         granted = pool.try_grant()) {
      start_service(granted, t);
    }
  }
  if (task.action) {
    try {
      task.action();
    } catch (...) {
      // A failing side effect (e.g. an injected TransferFault) aborts the
      // run; record the virtual time so recovery can charge the waste.
      abort_time_ = t;
      throw;
    }
  }
  st.done = true;
  ++completed_;

  for (const TaskId dep : st.dependents) {
    HS_ASSERT(states_[dep].deps_left > 0);
    if (--states_[dep].deps_left == 0) {
      // This task is the last dependency to finish: the critical edge.
      states_[dep].blocking_dep = id;
      on_ready(dep, t);
    }
  }
}

void Engine::schedule_stage(TaskId id, SimTime t, Stage next) {
  events_.push(Event{t, next_seq_++, Event::Kind::kStageDone, id, next, 0, 0});
}

void Engine::schedule_channel_check(ChannelId c, SimTime now) {
  const SimTime when = channels_[c].next_completion(now);
  if (when == kTimeInfinity) return;
  Event ev;
  ev.time = when;
  ev.seq = next_seq_++;
  ev.kind = Event::Kind::kChannelCheck;
  ev.chan = c;
  ev.version = channel_versions_[c];
  events_.push(ev);
}

void Engine::handle_channel_check(ChannelId c, SimTime t) {
  SharedChannel& ch = channels_[c];
  ch.advance_to(t);
  auto& flows = channel_flows_[c];
  std::vector<TaskId> finished;
  for (std::size_t i = 0; i < flows.size();) {
    if (ch.flow_done(flows[i].second)) {
      finished.push_back(flows[i].first);
      ch.remove_flow(flows[i].second);
      flows[i] = flows.back();
      flows.pop_back();
    } else {
      ++i;
    }
  }
  ++channel_versions_[c];
  schedule_channel_check(c, t);
  // Completing tasks may add new flows to this channel (dependents); that
  // bumps the version again and reschedules, so ordering here is safe.
  for (const TaskId id : finished) complete(id, t);
}

}  // namespace hs::sim
