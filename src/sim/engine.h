// Discrete-event engine executing a TaskGraph over the declared resources.
//
// Events are ordered by (time, sequence number), so runs are bit-for-bit
// deterministic. Channel flows use the fluid model in SharedChannel; every
// membership change bumps a per-channel version that invalidates previously
// scheduled completion checks (lazy deletion).
//
// A watchdog guards progress: if the event queue drains with tasks still
// incomplete (resource deadlock, dangling wait, zero-capacity channel) or
// the next event lies at/beyond the watchdog horizon (a hung kernel's
// completion at t = infinity), run() throws PipelineStalled naming the stuck
// tasks instead of hanging or silently aborting.
#pragma once

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "common/error.h"
#include "sim/channel.h"
#include "sim/compute_engine.h"
#include "sim/core_pool.h"
#include "sim/task_graph.h"
#include "sim/trace.h"
#include "sim/types.h"

namespace hs::sim {

/// The task graph can no longer make progress; what() lists the stuck tasks.
class PipelineStalled : public hs::Error {
 public:
  PipelineStalled(const std::string& what, std::vector<std::string> stuck,
                  SimTime at);

  /// Labels of the tasks that had not completed when progress stopped.
  const std::vector<std::string>& stuck_tasks() const { return stuck_; }

  /// Virtual time at which the stall was detected.
  SimTime stalled_at() const { return at_; }

 private:
  std::vector<std::string> stuck_;
  SimTime at_;
};

class Engine {
 public:
  ChannelId add_channel(std::string name, double capacity_bps);
  EngineId add_compute(std::string name);
  PoolId add_pool(std::string name, std::uint32_t cores);

  SharedChannel& channel(ChannelId id);
  ComputeEngine& compute(EngineId id);
  CorePool& pool(PoolId id);

  /// Runs `graph` to completion starting at virtual time 0 and returns the
  /// trace. Resource state (engine free times, etc.) carries over between
  /// runs only if reset() is not called; benches call run() on a fresh Engine.
  /// Throws PipelineStalled when the graph stops making progress, and lets
  /// task-action exceptions propagate (see abort_time()).
  Trace run(TaskGraph graph);

  /// Events at or beyond this virtual time trip the watchdog (default:
  /// infinity, so only a never-completing task — e.g. an injected kernel
  /// hang — trips it).
  void set_watchdog_horizon(SimTime horizon) { watchdog_horizon_ = horizon; }

  /// Virtual time at which the last run() was aborted by a throwing task
  /// action or the watchdog; 0 when the last run completed. Lets recovery
  /// charge the wasted virtual time of a failed attempt to its clock.
  SimTime abort_time() const { return abort_time_; }

 private:
  enum class Stage : std::uint8_t { kFixed, kExec, kLatency, kFlowJoin, kDone };

  struct TaskState {
    std::uint32_t deps_left = 0;
    SimTime ready = 0;
    SimTime start = 0;
    bool ready_fired = false;
    bool started = false;
    bool done = false;
    TaskId blocking_dep = kInvalidTask;
    FlowHandle flow_handle{};
    std::vector<TaskId> dependents;
  };

  struct Event {
    SimTime time = 0;
    std::uint64_t seq = 0;
    enum class Kind : std::uint8_t { kStageDone, kChannelCheck } kind;
    TaskId task = kInvalidTask;   // kStageDone
    Stage next_stage = Stage::kDone;
    ChannelId chan = 0;           // kChannelCheck
    std::uint64_t version = 0;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  void on_ready(TaskId id, SimTime t);
  void start_service(TaskId id, SimTime t);
  void advance(TaskId id, SimTime t, Stage stage);
  void complete(TaskId id, SimTime t);
  void schedule_stage(TaskId id, SimTime t, Stage next);
  void schedule_channel_check(ChannelId c, SimTime now);
  void handle_channel_check(ChannelId c, SimTime t);
  [[noreturn]] void throw_stalled(const std::string& reason, SimTime t);

  std::vector<SharedChannel> channels_;
  std::vector<ComputeEngine> computes_;
  std::vector<CorePool> pools_;

  // Per-run state.
  TaskGraph graph_;
  std::vector<TaskState> states_;
  std::vector<std::uint64_t> channel_versions_;
  std::vector<std::vector<std::pair<TaskId, FlowHandle>>> channel_flows_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::uint64_t next_seq_ = 0;
  std::size_t completed_ = 0;
  SimTime watchdog_horizon_ = kTimeInfinity;
  SimTime abort_time_ = 0;
  Trace trace_;
};

}  // namespace hs::sim
