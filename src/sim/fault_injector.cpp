#include "sim/fault_injector.h"

#include <utility>

#include "common/assert.h"

namespace hs::sim {

std::string_view fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kDeviceAlloc: return "device-alloc";
    case FaultSite::kHtoD: return "htod";
    case FaultSite::kDtoH: return "dtoh";
    case FaultSite::kStagingCopy: return "staging-copy";
    case FaultSite::kKernelStall: return "kernel-stall";
    case FaultSite::kKernelHang: return "kernel-hang";
    case FaultSite::kFileRead: return "file-read";
    case FaultSite::kFileWrite: return "file-write";
    case FaultSite::kFileCorrupt: return "file-corrupt";
    case FaultSite::kHostAllocFail: return "host-alloc-fail";
  }
  return "?";
}

bool FaultPlan::any() const {
  for (const double p : probability) {
    if (p > 0) return true;
  }
  return false;
}

std::uint64_t FaultStats::total() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t c : injected) sum += c;
  return sum;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed), enabled_(plan_.any()) {
  for (const double p : plan_.probability) {
    HS_EXPECTS_MSG(p >= 0.0 && p <= 1.0,
                   "fault probabilities must lie in [0, 1]");
  }
  HS_EXPECTS_MSG(plan_.kernel_stall_multiplier >= 1.0,
                 "a stall cannot make a kernel faster");
}

bool FaultInjector::budget_left() const {
  return stats_.total() < plan_.max_faults;
}

bool FaultInjector::should_fault(FaultSite site) {
  if (!enabled_ || !budget_left()) return false;
  const double p = plan_.p(site);
  if (p <= 0.0) return false;
  // Draw even for p == 1 so the stream position only depends on the call
  // sequence of enabled sites, keeping schedules stable under probability
  // tweaks of other sites.
  if (rng_.uniform01() >= p) return false;
  ++stats_.injected[static_cast<std::size_t>(site)];
  return true;
}

unsigned FaultInjector::transient_failures(FaultSite site, unsigned cap) {
  unsigned failures = 0;
  while (failures < cap && should_fault(site)) ++failures;
  return failures;
}

double FaultInjector::kernel_delay_multiplier() {
  return should_fault(FaultSite::kKernelStall) ? plan_.kernel_stall_multiplier
                                               : 1.0;
}

}  // namespace hs::sim
