// Deterministic, seed-driven fault injection (docs/fault_model.md).
//
// A FaultPlan assigns each fault site a per-draw Bernoulli probability; the
// injector draws from one xoshiro256** stream, so a (plan, call-sequence)
// pair reproduces the exact same fault schedule — the pipeline consults the
// injector in deterministic order (graph construction order for device
// faults, virtual-time order for I/O faults), making every failing seed
// replayable. Draws and outcomes are tallied in FaultStats so reports can
// show what was injected and what recovery cost.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/rng.h"

namespace hs::sim {

/// Where a fault can strike. One Bernoulli probability per site.
enum class FaultSite : std::uint8_t {
  kDeviceAlloc,  // cudaMalloc analogue fails -> DeviceOutOfMemory
  kHtoD,         // transient host->device transfer fault
  kDtoH,         // transient device->host transfer fault
  kStagingCopy,  // host staging memcpy (pageable <-> pinned) fault
  kKernelStall,  // kernel runs slow by FaultPlan::kernel_stall_multiplier
  kKernelHang,   // kernel never completes -> watchdog / PipelineStalled
  kFileRead,     // short read from a run file -> IoError
  kFileWrite,    // short write to a run file -> IoError
  kFileCorrupt,  // run-file block fails checksum verification -> RunFileCorrupt
  kHostAllocFail,  // pinned host allocation fails -> HostAllocFailed
};

inline constexpr std::size_t kNumFaultSites = 10;

std::string_view fault_site_name(FaultSite site);

struct FaultPlan {
  std::uint64_t seed = 0;

  /// Per-draw fault probability for each site, indexed by FaultSite.
  std::array<double, kNumFaultSites> probability{};

  /// Virtual-duration multiplier applied to a kernel when kKernelStall fires.
  double kernel_stall_multiplier = 8.0;

  /// Global injection budget: once this many faults fired, the injector goes
  /// quiet. Guarantees fuzzed runs terminate even at probability 1.
  std::uint64_t max_faults = UINT64_MAX;

  double& p(FaultSite site) {
    return probability[static_cast<std::size_t>(site)];
  }
  double p(FaultSite site) const {
    return probability[static_cast<std::size_t>(site)];
  }

  /// True when any site has a nonzero probability (injection configured).
  bool any() const;
};

struct FaultStats {
  /// Faults that actually fired, per site.
  std::array<std::uint64_t, kNumFaultSites> injected{};

  /// Transient transfer faults absorbed by in-task retries (each one charged
  /// backoff + re-transfer time on the sim clock).
  std::uint64_t retries_charged = 0;

  std::uint64_t injected_at(FaultSite site) const {
    return injected[static_cast<std::size_t>(site)];
  }
  std::uint64_t total() const;
};

class FaultInjector {
 public:
  /// Disabled injector: every query says "no fault" without drawing.
  FaultInjector() = default;

  explicit FaultInjector(FaultPlan plan);

  bool enabled() const { return enabled_; }

  /// One Bernoulli draw for `site`; true means the fault fires (and is
  /// tallied). Deterministic in (plan, call sequence).
  bool should_fault(FaultSite site);

  /// Number of consecutive transient failures before this transfer succeeds,
  /// capped at `cap` (cap means: still failing, give up). Each failure is
  /// tallied as an injected fault at `site`.
  unsigned transient_failures(FaultSite site, unsigned cap);

  /// Virtual-duration multiplier for one kernel launch: 1.0, or the plan's
  /// stall multiplier when kKernelStall fires.
  double kernel_delay_multiplier();

  /// Records `n` transient faults as absorbed by retries.
  void charge_retries(std::uint64_t n) { stats_.retries_charged += n; }

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }

 private:
  bool budget_left() const;

  FaultPlan plan_{};
  FaultStats stats_{};
  Xoshiro256 rng_{0};
  bool enabled_ = false;
};

}  // namespace hs::sim
