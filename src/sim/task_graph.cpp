#include "sim/task_graph.h"

#include "common/assert.h"

namespace hs::sim {

TaskId TaskGraph::add(Task t) {
  HS_EXPECTS_MSG(tasks_.size() < kInvalidTask, "task graph too large");
  if (t.traced_bytes == 0 && t.flow) {
    t.traced_bytes = static_cast<std::uint64_t>(t.flow->bytes);
  }
  const auto id = static_cast<TaskId>(tasks_.size());
  for (const TaskId d : t.deps) {
    HS_EXPECTS_MSG(d < id, "dependency must precede dependent (topological order)");
  }
  tasks_.push_back(std::move(t));
  return id;
}

TaskId TaskGraph::add_barrier(std::string label, std::vector<TaskId> deps) {
  Task t;
  t.label = std::move(label);
  t.deps = std::move(deps);
  return add(std::move(t));
}

const Task& TaskGraph::task(TaskId id) const {
  HS_EXPECTS(id < tasks_.size());
  return tasks_[id];
}

Task& TaskGraph::task(TaskId id) {
  HS_EXPECTS(id < tasks_.size());
  return tasks_[id];
}

void TaskGraph::validate() const {
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    for (const TaskId d : tasks_[i].deps) {
      HS_EXPECTS(d < i);
    }
    if (tasks_[i].flow) {
      HS_EXPECTS(tasks_[i].flow->bytes >= 0);
      HS_EXPECTS(tasks_[i].flow->latency >= 0);
    }
    if (tasks_[i].exec) {
      HS_EXPECTS(tasks_[i].exec->duration >= 0);
    }
    HS_EXPECTS(tasks_[i].fixed_duration >= 0);
  }
}

}  // namespace hs::sim
