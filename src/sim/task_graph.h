// Static task graph consumed by the simulation Engine.
//
// A pipeline (BLINE, PIPEDATA, ...) is compiled into this DAG up front; the
// paper's scheduling decisions (batch-to-stream assignment, the pair-merge
// heuristic) are all static, so no dynamic scheduler is needed. Each task may
// claim host cores, occupy a compute engine for a fixed duration, and/or push
// bytes through a shared channel, in that order:
//
//   deps met -> acquire cores -> fixed delay -> engine job -> latency ->
//   channel flow -> complete (release cores, fire side-effect action)
//
// The optional `action` is the *real* side effect (memcpy, std::sort on the
// device buffer's backing store, merge) executed at completion in virtual
// time order — the mechanism that lets one code path serve both correctness
// tests (Execution::Real) and data-free timing sweeps (Execution::TimingOnly).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/trace.h"
#include "sim/types.h"

namespace hs::sim {

struct CoreClaim {
  PoolId pool = 0;
  std::uint32_t count = 1;
};

struct ExecSpec {
  EngineId engine = 0;
  SimTime duration = 0;
};

struct FlowSpec {
  ChannelId channel = 0;
  double bytes = 0;
  double rate_cap_bps = 0;  // <= 0: uncapped
  SimTime latency = 0;      // per-transfer submission/synchronisation overhead
};

struct Task {
  std::string label;
  Phase phase = Phase::kOther;
  std::vector<TaskId> deps;
  std::optional<CoreClaim> cores;
  std::optional<ExecSpec> exec;
  std::optional<FlowSpec> flow;
  SimTime fixed_duration = 0;
  std::uint64_t traced_bytes = 0;  // reported in the trace (defaults to flow bytes)
  std::function<void()> action;
};

class TaskGraph {
 public:
  TaskId add(Task t);

  /// Convenience: a zero-cost barrier joining `deps`.
  TaskId add_barrier(std::string label, std::vector<TaskId> deps);

  const Task& task(TaskId id) const;
  Task& task(TaskId id);

  std::size_t size() const { return tasks_.size(); }

  /// Validates the DAG: dependency ids in range and strictly smaller than the
  /// dependent's id (construction order is a topological order by design).
  void validate() const;

 private:
  std::vector<Task> tasks_;
};

}  // namespace hs::sim
