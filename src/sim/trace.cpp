#include "sim/trace.h"

#include <algorithm>

#include "common/assert.h"

namespace hs::sim {

std::string_view phase_name(Phase p) {
  switch (p) {
    case Phase::kPinnedAlloc: return "PinnedAlloc";
    case Phase::kStageIn: return "StageIn";
    case Phase::kHtoD: return "HtoD";
    case Phase::kGpuSort: return "GPUSort";
    case Phase::kDtoH: return "DtoH";
    case Phase::kStageOut: return "StageOut";
    case Phase::kSync: return "Sync";
    case Phase::kPairMerge: return "PairMerge";
    case Phase::kMultiwayMerge: return "MultiwayMerge";
    case Phase::kDeviceAlloc: return "DeviceAlloc";
    case Phase::kOther: return "Other";
  }
  return "?";
}

void Trace::record(TraceEvent ev) {
  HS_EXPECTS(ev.ready <= ev.start && ev.start <= ev.end);
  const auto i = static_cast<std::size_t>(ev.phase);
  busy_[i] += ev.end - ev.start;
  wait_[i] += ev.start - ev.ready;
  bytes_[i] += ev.bytes;
  count_[i] += 1;
  makespan_ = std::max(makespan_, ev.end);
  events_.push_back(std::move(ev));
}

SimTime Trace::phase_busy(Phase p) const {
  return busy_[static_cast<std::size_t>(p)];
}

SimTime Trace::phase_queue_wait(Phase p) const {
  return wait_[static_cast<std::size_t>(p)];
}

std::uint64_t Trace::phase_bytes(Phase p) const {
  return bytes_[static_cast<std::size_t>(p)];
}

std::size_t Trace::phase_count(Phase p) const {
  return count_[static_cast<std::size_t>(p)];
}

SimTime Trace::makespan() const { return makespan_; }

void Trace::clear() {
  events_.clear();
  busy_.fill(0);
  wait_.fill(0);
  bytes_.fill(0);
  count_.fill(0);
  makespan_ = 0;
}

}  // namespace hs::sim
