// Execution trace of a simulated pipeline run.
//
// Every task records the interval during which it held resources, tagged with
// a Phase. The per-phase aggregations are exactly what the paper's Figures 7
// and 8 plot: how much time HtoD / DtoH / GPUSort / staging copies / pinned
// allocation / synchronisation contribute, and which of those the
// "related-work accounting" of Stehle & Jacobsen omits.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.h"

namespace hs::sim {

enum class Phase : std::uint8_t {
  kPinnedAlloc,    // cudaMallocHost-equivalent staging-buffer allocation
  kStageIn,        // host-to-host MCpy: pageable A -> pinned staging
  kHtoD,           // PCIe transfer host -> device
  kGpuSort,        // on-device sort kernel
  kDtoH,           // PCIe transfer device -> host
  kStageOut,       // host-to-host MCpy: pinned staging -> pageable W/B
  kSync,           // per-chunk asynchronous-copy synchronisation overhead
  kPairMerge,      // pipelined pair-wise merge on the CPU (PIPEMERGE)
  kMultiwayMerge,  // final multiway merge on the CPU
  kDeviceAlloc,    // device global-memory allocation
  kOther,
};

inline constexpr std::size_t kNumPhases = 11;

std::string_view phase_name(Phase p);

struct TraceEvent {
  TaskId task = kInvalidTask;
  Phase phase = Phase::kOther;
  std::string label;
  SimTime ready = 0;    // all dependencies satisfied
  SimTime start = 0;    // resources acquired, service begins
  SimTime end = 0;      // service complete
  std::uint64_t bytes = 0;
  /// The dependency that finished last (kInvalidTask for roots) — the edge a
  /// critical-path walk follows backwards.
  TaskId blocking_dep = kInvalidTask;
};

class Trace {
 public:
  void record(TraceEvent ev);

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Sum of service durations (end - start) for one phase. Phases may overlap
  /// in time under the pipelined approaches; this is per-phase busy time, the
  /// quantity the paper's component plots report.
  SimTime phase_busy(Phase p) const;

  /// Sum of (start - ready): time tasks of this phase spent queued on
  /// resources. Useful for diagnosing which resource saturates.
  SimTime phase_queue_wait(Phase p) const;

  std::uint64_t phase_bytes(Phase p) const;
  std::size_t phase_count(Phase p) const;

  /// End of the last event; with a graph-wide sink task this is the makespan.
  SimTime makespan() const;

  void clear();

 private:
  std::vector<TraceEvent> events_;
  std::array<SimTime, kNumPhases> busy_{};
  std::array<SimTime, kNumPhases> wait_{};
  std::array<std::uint64_t, kNumPhases> bytes_{};
  std::array<std::size_t, kNumPhases> count_{};
  SimTime makespan_ = 0;
};

}  // namespace hs::sim
