#include "sim/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <vector>

#include "common/assert.h"
#include "common/json.h"

namespace hs::sim {

void export_chrome_trace(const Trace& trace, std::ostream& os) {
  os << "[\n";
  bool first = true;
  std::map<std::string, int> tids;
  for (const TraceEvent& ev : trace.events()) {
    const std::string row(phase_name(ev.phase));
    const auto [it, inserted] =
        tids.emplace(row, static_cast<int>(tids.size()) + 1);
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "%s  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
        "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %d, "
        "\"args\": {\"bytes\": %llu, \"queue_wait_us\": %.3f}}",
        first ? "" : ",\n", json_escape(ev.label).c_str(), row.c_str(),
        ev.start * 1e6, (ev.end - ev.start) * 1e6, it->second,
        static_cast<unsigned long long>(ev.bytes),
        (ev.start - ev.ready) * 1e6);
    os << buf;
    first = false;
  }
  os << "\n]\n";
}

void render_ascii_gantt(const Trace& trace, std::ostream& os, unsigned width) {
  HS_EXPECTS(width >= 10);
  const SimTime makespan = trace.makespan();
  if (makespan <= 0 || trace.events().empty()) {
    os << "(empty trace)\n";
    return;
  }
  // busy[row][cell] accumulates seconds of service inside each time slice.
  std::map<std::string, std::vector<double>> rows;
  const double cell = makespan / width;
  for (const TraceEvent& ev : trace.events()) {
    auto& row = rows.try_emplace(std::string(phase_name(ev.phase)),
                                 std::vector<double>(width, 0.0))
                    .first->second;
    const auto first_cell = static_cast<std::size_t>(ev.start / cell);
    const auto last_cell = std::min<std::size_t>(
        width - 1, static_cast<std::size_t>(ev.end / cell));
    for (std::size_t c = first_cell; c <= last_cell; ++c) {
      const double cs = static_cast<double>(c) * cell;
      const double overlap =
          std::min(ev.end, cs + cell) - std::max(ev.start, cs);
      if (overlap > 0) row[c] += overlap;
    }
  }

  std::size_t label_width = 0;
  for (const auto& [name, _] : rows) label_width = std::max(label_width, name.size());
  for (const auto& [name, cells] : rows) {
    os << name << std::string(label_width - name.size() + 1, ' ') << '|';
    for (const double busy : cells) {
      const double frac = busy / cell;
      os << (frac <= 0.001 ? ' ' : frac < 0.5 ? '.' : '#');
    }
    os << "|\n";
  }
  char time_label[32];
  std::snprintf(time_label, sizeof time_label, "%.3f s", makespan);
  const std::size_t total = label_width + 2 + width;
  const std::size_t pad =
      total > std::strlen(time_label) + 1 ? total - std::strlen(time_label) - 1
                                          : 1;
  os << '0' << std::string(pad, ' ') << time_label << '\n';
}

}  // namespace hs::sim
