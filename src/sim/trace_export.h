// Trace visualisation: Chrome trace-event JSON (load in chrome://tracing or
// https://ui.perfetto.dev) and a terminal Gantt chart. Both group tasks into
// rows by the stream/phase prefix of their label, which is how the paper's
// Figures 1-3 draw their pipelines — handy for eyeballing whether PIPEDATA
// actually overlaps HtoD with DtoH the way Figure 2 promises.
#pragma once

#include <ostream>
#include <string>

#include "sim/trace.h"

namespace hs::sim {

/// Writes the trace in Chrome trace-event array format. Rows ("tid") are
/// derived from task labels: "b3.h2d17" groups under "HtoD", "g0.s1:sort"
/// under its stream, merges under "merge". Durations are microseconds as the
/// format requires.
void export_chrome_trace(const Trace& trace, std::ostream& os);

/// Renders an ASCII Gantt chart of the trace, one row per phase, `width`
/// character cells across the makespan. Cell glyph density encodes how much
/// of the cell's time slice is busy: ' ' idle, '.' <50%, '#' >=50%.
void render_ascii_gantt(const Trace& trace, std::ostream& os,
                        unsigned width = 100);

}  // namespace hs::sim
