// Fundamental identifiers and time type for the discrete-event simulator.
#pragma once

#include <cstdint>
#include <limits>

namespace hs::sim {

/// Virtual time in seconds. Double precision gives ~microsecond resolution at
/// the hour scale, far below the model constants we calibrate (>= 1 us).
using SimTime = double;

inline constexpr SimTime kTimeInfinity = std::numeric_limits<SimTime>::infinity();

using TaskId = std::uint32_t;
using ChannelId = std::uint32_t;
using EngineId = std::uint32_t;
using PoolId = std::uint32_t;

inline constexpr TaskId kInvalidTask = std::numeric_limits<TaskId>::max();

}  // namespace hs::sim
