#include "vgpu/device.h"

#include "common/assert.h"
#include "common/units.h"
#include "obs/counters.h"
#include "sim/fault_injector.h"

namespace hs::vgpu {

DeviceOutOfMemory::DeviceOutOfMemory(const std::string& device,
                                     std::uint64_t requested,
                                     std::uint64_t available)
    : hs::Error("device " + device + " out of global memory: requested " +
                format_bytes(requested) + ", available " +
                format_bytes(available)),
      requested_(requested),
      available_(available) {}

Device::Device(model::GpuSpec spec, unsigned index, Execution mode)
    : spec_(std::move(spec)), index_(index), mode_(mode) {
  HS_EXPECTS(spec_.memory_bytes > 0);
}

DeviceBuffer Device::allocate(std::uint64_t bytes) {
  if (bytes > free_bytes()) {
    throw DeviceOutOfMemory(spec_.model, bytes, free_bytes());
  }
  if (injector_ != nullptr && injector_->enabled() &&
      injector_->should_fault(sim::FaultSite::kDeviceAlloc)) {
    throw DeviceOutOfMemory(spec_.model, bytes, free_bytes());
  }
  used_ += bytes;
  obs::count(obs::Counter::kBytesDeviceAlloc, bytes);
  return DeviceBuffer(this, bytes, mode_ == Execution::kReal);
}

void Device::on_free(std::uint64_t bytes) {
  HS_ASSERT(bytes <= used_);
  used_ -= bytes;
}

}  // namespace hs::vgpu
