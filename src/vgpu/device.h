// Virtual GPU device: global-memory capacity accounting (the constraint that
// forces batching in the first place) plus the compute-engine binding.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "model/platforms.h"
#include "sim/types.h"
#include "vgpu/device_buffer.h"
#include "vgpu/execution.h"

namespace hs::vgpu {

/// Thrown when an allocation exceeds remaining device global memory — the
/// virtual analogue of cudaErrorMemoryAllocation.
class DeviceOutOfMemory : public std::runtime_error {
 public:
  DeviceOutOfMemory(const std::string& device, std::uint64_t requested,
                    std::uint64_t available);

  std::uint64_t requested() const { return requested_; }
  std::uint64_t available() const { return available_; }

 private:
  std::uint64_t requested_;
  std::uint64_t available_;
};

class Device {
 public:
  Device(model::GpuSpec spec, unsigned index, Execution mode);

  // Capacity accounting lives here; moving would dangle DeviceBuffer back
  // pointers.
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const model::GpuSpec& spec() const { return spec_; }
  unsigned index() const { return index_; }
  Execution mode() const { return mode_; }

  std::uint64_t capacity_bytes() const { return spec_.memory_bytes; }
  std::uint64_t used_bytes() const { return used_; }
  std::uint64_t free_bytes() const { return spec_.memory_bytes - used_; }

  /// Allocates `bytes` of global memory. Throws DeviceOutOfMemory.
  DeviceBuffer allocate(std::uint64_t bytes);

  /// Simulation compute engine carrying this device's sort kernels; assigned
  /// by the Runtime during wiring.
  sim::EngineId engine() const { return engine_; }
  void bind_engine(sim::EngineId id) { engine_ = id; }

 private:
  friend class DeviceBuffer;
  void on_free(std::uint64_t bytes);

  model::GpuSpec spec_;
  unsigned index_;
  Execution mode_;
  std::uint64_t used_ = 0;
  sim::EngineId engine_ = 0;
};

}  // namespace hs::vgpu
