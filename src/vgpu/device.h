// Virtual GPU device: global-memory capacity accounting (the constraint that
// forces batching in the first place) plus the compute-engine binding.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.h"
#include "model/platforms.h"
#include "sim/types.h"
#include "vgpu/device_buffer.h"
#include "vgpu/execution.h"

namespace hs::sim {
class FaultInjector;
}

namespace hs::vgpu {

/// Thrown when an allocation exceeds remaining device global memory — the
/// virtual analogue of cudaErrorMemoryAllocation.
class DeviceOutOfMemory : public hs::Error {
 public:
  DeviceOutOfMemory(const std::string& device, std::uint64_t requested,
                    std::uint64_t available);

  std::uint64_t requested() const { return requested_; }
  std::uint64_t available() const { return available_; }

 private:
  std::uint64_t requested_;
  std::uint64_t available_;
};

class Device {
 public:
  Device(model::GpuSpec spec, unsigned index, Execution mode);

  // Capacity accounting lives here; moving would dangle DeviceBuffer back
  // pointers.
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const model::GpuSpec& spec() const { return spec_; }
  unsigned index() const { return index_; }
  Execution mode() const { return mode_; }

  std::uint64_t capacity_bytes() const { return spec_.memory_bytes; }
  std::uint64_t used_bytes() const { return used_; }
  std::uint64_t free_bytes() const { return spec_.memory_bytes - used_; }

  /// Allocates `bytes` of global memory. Throws DeviceOutOfMemory when the
  /// request exceeds free capacity — or when the bound fault injector fires
  /// a kDeviceAlloc fault (indistinguishable from a real OOM on purpose).
  DeviceBuffer allocate(std::uint64_t bytes);

  /// Optional fault-injection hook; nullptr (the default) means no faults.
  void bind_fault_injector(sim::FaultInjector* injector) {
    injector_ = injector;
  }

  /// Simulation compute engine carrying this device's sort kernels; assigned
  /// by the Runtime during wiring.
  sim::EngineId engine() const { return engine_; }
  void bind_engine(sim::EngineId id) { engine_ = id; }

 private:
  friend class DeviceBuffer;
  void on_free(std::uint64_t bytes);

  model::GpuSpec spec_;
  unsigned index_;
  Execution mode_;
  std::uint64_t used_ = 0;
  sim::EngineId engine_ = 0;
  sim::FaultInjector* injector_ = nullptr;
};

}  // namespace hs::vgpu
