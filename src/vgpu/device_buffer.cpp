#include "vgpu/device_buffer.h"

#include <utility>

#include "common/assert.h"
#include "vgpu/device.h"

namespace hs::vgpu {

DeviceBuffer::DeviceBuffer(Device* device, std::uint64_t bytes, bool real)
    : device_(device), bytes_(bytes) {
  if (real) storage_.resize(bytes);
}

DeviceBuffer::DeviceBuffer(DeviceBuffer&& other) noexcept
    : device_(std::exchange(other.device_, nullptr)),
      bytes_(std::exchange(other.bytes_, 0)),
      storage_(std::move(other.storage_)) {}

DeviceBuffer& DeviceBuffer::operator=(DeviceBuffer&& other) noexcept {
  if (this != &other) {
    release();
    device_ = std::exchange(other.device_, nullptr);
    bytes_ = std::exchange(other.bytes_, 0);
    storage_ = std::move(other.storage_);
  }
  return *this;
}

DeviceBuffer::~DeviceBuffer() { release(); }

std::span<std::byte> DeviceBuffer::bytes() {
  return {storage_.data(), storage_.size()};
}

std::span<const std::byte> DeviceBuffer::bytes() const {
  return {storage_.data(), storage_.size()};
}

void DeviceBuffer::release() {
  if (device_ != nullptr) {
    device_->on_free(bytes_);
    device_ = nullptr;
    bytes_ = 0;
    storage_.clear();
    storage_.shrink_to_fit();
  }
}

}  // namespace hs::vgpu
