// RAII device global-memory allocation (cudaMalloc analogue).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace hs::vgpu {

class Device;

/// Move-only owner of a device allocation, sized in bytes (device memory is
/// untyped, as in CUDA). In Execution::kReal the buffer has a real backing
/// store ("device memory" lives in host RAM); in kTimingOnly only the byte
/// count is tracked. Destruction returns capacity to the owning Device.
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(DeviceBuffer&& other) noexcept;
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept;
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  ~DeviceBuffer();

  std::uint64_t size_bytes() const { return bytes_; }
  bool valid() const { return device_ != nullptr; }

  /// Real backing store; empty span in kTimingOnly mode.
  std::span<std::byte> bytes();
  std::span<const std::byte> bytes() const;

  /// Typed view of the backing store (real mode only).
  template <typename T>
  std::span<T> as() {
    auto b = bytes();
    return {reinterpret_cast<T*>(b.data()), b.size() / sizeof(T)};
  }
  template <typename T>
  std::span<const T> as() const {
    auto b = bytes();
    return {reinterpret_cast<const T*>(b.data()), b.size() / sizeof(T)};
  }

  void release();

 private:
  friend class Device;
  DeviceBuffer(Device* device, std::uint64_t bytes, bool real);

  Device* device_ = nullptr;
  std::uint64_t bytes_ = 0;
  std::vector<std::byte> storage_;
};

}  // namespace hs::vgpu
