#include "vgpu/device_ops.h"

#include <cstring>

#include "common/assert.h"

namespace hs::vgpu {
namespace {

// On-device raw byte movement (memset, intra-device copies) runs near the
// HBM/GDDR copy rate; reuse the merge model's payload throughput as the
// calibrated per-device constant (both are streaming byte movers).
double device_bandwidth(const Device& dev) {
  return dev.spec().merge.payload_bytes_per_s;
}

}  // namespace

sim::TaskId device_memset(Runtime& rt, sim::TaskGraph& graph, Stream& stream,
                          Device& dev, DeviceBuffer& buf, std::uint64_t offset,
                          std::uint64_t bytes, std::uint8_t value) {
  HS_EXPECTS(offset + bytes <= buf.size_bytes());
  sim::Task t;
  t.label = stream.name() + ":memset";
  t.phase = sim::Phase::kOther;
  t.exec = sim::ExecSpec{dev.engine(),
                         static_cast<double>(bytes) / device_bandwidth(dev)};
  t.traced_bytes = bytes;
  if (rt.mode() == Execution::kReal) {
    auto dst = buf.bytes().subspan(offset, bytes);
    t.action = [dst, value] {
      std::memset(dst.data(), value, dst.size());
    };
  }
  return stream.submit(graph, std::move(t));
}

sim::TaskId device_copy(Runtime& rt, sim::TaskGraph& graph, Stream& stream,
                        Device& src_dev, const DeviceBuffer& src,
                        std::uint64_t src_off, Device& dst_dev,
                        DeviceBuffer& dst, std::uint64_t dst_off,
                        std::uint64_t bytes) {
  HS_EXPECTS(src_off + bytes <= src.size_bytes());
  HS_EXPECTS(dst_off + bytes <= dst.size_bytes());
  sim::Task t;
  t.traced_bytes = bytes;
  if (src_dev.index() == dst_dev.index()) {
    t.label = stream.name() + ":d2d";
    t.phase = sim::Phase::kOther;
    t.exec = sim::ExecSpec{
        src_dev.engine(), static_cast<double>(bytes) / device_bandwidth(src_dev)};
  } else {
    t.label = stream.name() + ":peer";
    t.phase = sim::Phase::kDtoH;  // peer reads traverse the shared bus
    t.flow = sim::FlowSpec{rt.dtoh_channel(), static_cast<double>(bytes),
                           rt.platform().pcie.pinned_bps,
                           rt.platform().pcie.async_latency_s};
  }
  if (rt.mode() == Execution::kReal) {
    auto s = std::span<const std::byte>(src.bytes()).subspan(src_off, bytes);
    auto d = dst.bytes().subspan(dst_off, bytes);
    t.action = [s, d] { std::memcpy(d.data(), s.data(), s.size()); };
  }
  return stream.submit(graph, std::move(t));
}

}  // namespace hs::vgpu
