// Additional device primitives: memset and device-to-device copies —
// cudaMemset / cudaMemcpyDeviceToDevice / cudaMemcpyPeer analogues.
//
// Intra-device copies and memsets are HBM-bandwidth-bound and run on the
// device's compute engine (they do not touch PCIe). Cross-device (peer)
// copies travel the shared PCIe bus; we model a peer copy as a flow on the
// DtoH direction of the bus (P2P reads from the source device), a documented
// simplification that preserves the property the paper cares about: peer
// traffic contends with the pipeline's DtoH transfers.
#pragma once

#include <cstdint>

#include "sim/task_graph.h"
#include "vgpu/device.h"
#include "vgpu/runtime.h"
#include "vgpu/stream.h"

namespace hs::vgpu {

/// Fills `bytes` of `buf` (from byte offset `offset`) with `value`.
sim::TaskId device_memset(Runtime& rt, sim::TaskGraph& graph, Stream& stream,
                          Device& dev, DeviceBuffer& buf, std::uint64_t offset,
                          std::uint64_t bytes, std::uint8_t value);

/// Copies `bytes` from `src` (offset `src_off`) to `dst` (offset `dst_off`).
/// `src_dev`/`dst_dev` select intra-device (same index: HBM copy on the
/// compute engine) or peer (different: PCIe flow) semantics.
sim::TaskId device_copy(Runtime& rt, sim::TaskGraph& graph, Stream& stream,
                        Device& src_dev, const DeviceBuffer& src,
                        std::uint64_t src_off, Device& dst_dev,
                        DeviceBuffer& dst, std::uint64_t dst_off,
                        std::uint64_t bytes);

}  // namespace hs::vgpu
