#include "vgpu/device_sort.h"

#include <algorithm>

#include "common/assert.h"
#include "cpu/thread_pool.h"

namespace hs::vgpu {

std::string_view device_sort_engine_name(DeviceSortEngine e) {
  switch (e) {
    case DeviceSortEngine::kRadixLsd:
      return "radix-lsd";
    case DeviceSortEngine::kHybridMsd:
      return "hybrid-msd";
    case DeviceSortEngine::kSampleSort:
      return "sample";
  }
  return "unknown";
}

namespace {

/// Charges the selected engine's cost model. Distribution statistics reach
/// the model through `launch`; the element type's cost factor applies to
/// every engine (payload bytes move through the same device pipeline).
double engine_kernel_time(const Device& dev, std::uint64_t elems,
                          const DeviceSortLaunch& launch) {
  switch (launch.engine) {
    case DeviceSortEngine::kRadixLsd:
      return dev.spec().sort.time(elems);
    case DeviceSortEngine::kHybridMsd:
      return dev.spec().hybrid_sort.time(elems, launch.predicted_passes);
    case DeviceSortEngine::kSampleSort:
      return dev.spec().sample_sort.time(elems, launch.log2_distinct);
  }
  return dev.spec().sort.time(elems);
}

}  // namespace

sim::TaskId device_sort(Runtime& rt, sim::TaskGraph& graph, Stream& stream,
                        Device& dev, DeviceBuffer& buffer,
                        const DeviceBuffer& temp, std::uint64_t elems,
                        const cpu::ElementOps& ops,
                        const DeviceSortLaunch& launch) {
  const std::uint64_t payload = elems * ops.elem_size;
  HS_EXPECTS(payload <= buffer.size_bytes());
  HS_EXPECTS_MSG(temp.size_bytes() >= payload,
                 "Thrust-style sort is out-of-place: temp must cover the input");

  sim::Task t;
  t.label = stream.name() + ":sort";
  t.phase = sim::Phase::kGpuSort;
  t.exec = sim::ExecSpec{
      dev.engine(),
      engine_kernel_time(dev, elems, launch) * ops.gpu_sort_cost_factor};
  t.traced_bytes = payload;
  if (sim::FaultInjector* inj = rt.fault_injector();
      inj != nullptr && inj->enabled()) {
    // Stalled kernel: the launch occupies the device for a multiple of its
    // modelled duration. Hung kernel: it never completes — the completion
    // lands at t = infinity, which the engine watchdog turns into
    // PipelineStalled instead of an endless wait.
    t.exec->duration *= inj->kernel_delay_multiplier();
    if (inj->should_fault(sim::FaultSite::kKernelHang)) {
      t.fixed_duration = sim::kTimeInfinity;
    }
  }
  if (rt.mode() == Execution::kReal) {
    std::byte* data = buffer.bytes().data();
    // Engine actions run sequentially on the simulation thread, so every
    // device sort of the run shares the runtime's scratch: after the first
    // batch warms it, batch sorting performs no heap allocations.
    cpu::RadixSortScratch* scratch = &rt.sort_scratch();
    // Hand-built ElementOps may predate the portfolio: fall back to the
    // baseline sort so timing and correctness stay consistent.
    if (launch.engine == DeviceSortEngine::kHybridMsd &&
        ops.device_sort_hybrid) {
      auto sort_fn = ops.device_sort_hybrid;
      t.action = [data, elems, sort_fn, scratch] {
        sort_fn(data, elems, scratch);
      };
    } else if (launch.engine == DeviceSortEngine::kSampleSort &&
               ops.device_sort_sample) {
      auto sort_fn = ops.device_sort_sample;
      t.action = [data, elems, sort_fn, scratch] {
        sort_fn(data, elems, scratch);
      };
    } else {
      auto sort_fn = ops.device_sort;
      t.action = [data, elems, sort_fn, scratch] {
        sort_fn(data, elems, scratch);
      };
    }
  }
  return stream.submit(graph, std::move(t));
}

sim::TaskId device_merge(Runtime& rt, sim::TaskGraph& graph, Stream& stream,
                         Device& dev, const DeviceBuffer& left,
                         std::uint64_t left_elems, const DeviceBuffer& right,
                         std::uint64_t right_elems, DeviceBuffer& out,
                         const cpu::ElementOps& ops) {
  const std::uint64_t payload = (left_elems + right_elems) * ops.elem_size;
  HS_EXPECTS(left_elems * ops.elem_size <= left.size_bytes());
  HS_EXPECTS(right_elems * ops.elem_size <= right.size_bytes());
  HS_EXPECTS_MSG(out.size_bytes() >= payload,
                 "device merge output must hold both runs");

  sim::Task t;
  t.label = stream.name() + ":devmerge";
  t.phase = sim::Phase::kPairMerge;
  t.exec = sim::ExecSpec{dev.engine(), dev.spec().merge.time(payload)};
  t.traced_bytes = payload;
  if (rt.mode() == Execution::kReal) {
    cpu::RunView a{left.bytes().data(), left_elems};
    cpu::RunView b{right.bytes().data(), right_elems};
    std::byte* dst = out.bytes().data();
    auto merge_fn = ops.merge_pair;
    t.action = [a, b, dst, merge_fn] {
      // The "kernel" uses one lane of the host pool: device merges do not
      // consume CPU cores in the simulation, and the real work is the
      // correctness side effect only.
      merge_fn(a, b, dst, cpu::ThreadPool::global(), 1);
    };
  }
  return stream.submit(graph, std::move(t));
}

}  // namespace hs::vgpu
