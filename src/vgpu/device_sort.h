// Thrust-like on-device sort (thrust::sort analogue, Section III-B).
//
// Submits a sort kernel for `elems` records held in `buffer` to `stream`.
// The kernel occupies the device's compute engine for the GpuSortModel
// duration (scaled by the element type's cost factor); in Execution::kReal
// the action really sorts the buffer's backing store with the element's
// radix sort (the same algorithm family Thrust dispatches to for primitive
// keys).
//
// Thrust sorts out-of-place: the caller must have reserved a temporary
// device buffer at least as large as the payload (`temp`), which is why each
// in-flight batch costs 2*bs of global memory and the batch count doubles
// relative to an in-place sort — the effect the paper highlights in
// Section III-B.
#pragma once

#include <cstdint>

#include "cpu/element_ops.h"
#include "sim/task_graph.h"
#include "vgpu/device.h"
#include "vgpu/runtime.h"
#include "vgpu/sort_engine.h"
#include "vgpu/stream.h"

namespace hs::vgpu {

/// Returns the task id of the sort kernel. `launch` selects the engine from
/// the on-device portfolio and carries the distribution statistics its cost
/// model consumes; the default launches the distribution-oblivious LSD radix
/// baseline, reproducing pre-portfolio behaviour.
sim::TaskId device_sort(Runtime& rt, sim::TaskGraph& graph, Stream& stream,
                        Device& dev, DeviceBuffer& buffer,
                        const DeviceBuffer& temp, std::uint64_t elems,
                        const cpu::ElementOps& ops,
                        const DeviceSortLaunch& launch = {});

/// Merges two sorted runs already resident in `left` and `right` into `out`
/// ON the device — the GPU-side merging the paper's Section V calls for in
/// the NVLink era. Charged at the device merge model (memory-bound: the
/// device streams 2x the payload through HBM); in kReal the action performs
/// the merge on the backing stores.
sim::TaskId device_merge(Runtime& rt, sim::TaskGraph& graph, Stream& stream,
                         Device& dev, const DeviceBuffer& left,
                         std::uint64_t left_elems, const DeviceBuffer& right,
                         std::uint64_t right_elems, DeviceBuffer& out,
                         const cpu::ElementOps& ops);

}  // namespace hs::vgpu
