#include "vgpu/event.h"

#include "common/assert.h"

namespace hs::vgpu {

void Event::record(sim::TaskGraph& graph, Stream& stream) {
  sim::Task marker;
  marker.label = "event:" + name_;
  task_ = stream.submit(graph, std::move(marker));
}

void Event::wait(sim::TaskGraph& graph, Stream& stream) const {
  HS_EXPECTS_MSG(recorded(), "waiting on an unrecorded event");
  stream.wait(graph, task_);
}

sim::SimTime Event::completion_time(const sim::Trace& trace) const {
  HS_EXPECTS_MSG(recorded(), "querying an unrecorded event");
  for (const sim::TraceEvent& ev : trace.events()) {
    if (ev.task == task_) return ev.end;
  }
  HS_EXPECTS_MSG(false, "event's task not found in trace (graph not run?)");
  return 0;
}

sim::SimTime Event::elapsed_since(const Event& other,
                                  const sim::Trace& trace) const {
  return completion_time(trace) - other.completion_time(trace);
}

}  // namespace hs::vgpu
