// cudaEvent analogue: a named marker recorded at a stream's current tail.
//
// Other streams wait on it (cudaStreamWaitEvent) and, after the engine run,
// the recorded task's completion time can be read back from the trace
// (cudaEventElapsedTime over virtual time).
#pragma once

#include <string>

#include "sim/trace.h"
#include "sim/types.h"
#include "vgpu/stream.h"

namespace hs::vgpu {

class Event {
 public:
  explicit Event(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  bool recorded() const { return task_ != sim::kInvalidTask; }
  sim::TaskId task() const { return task_; }

  /// Records the event at `stream`'s current tail (a zero-cost marker task,
  /// so an event on an empty stream is valid and completes at t = 0).
  void record(sim::TaskGraph& graph, Stream& stream);

  /// Makes `stream` wait for this event (must be recorded first).
  void wait(sim::TaskGraph& graph, Stream& stream) const;

  /// Completion time of the event in `trace`; the event's marker task must
  /// appear there (i.e. the graph it was recorded into was run).
  sim::SimTime completion_time(const sim::Trace& trace) const;

  /// Virtual seconds between two recorded events (may be negative if `other`
  /// completed later).
  sim::SimTime elapsed_since(const Event& other,
                             const sim::Trace& trace) const;

 private:
  std::string name_;
  sim::TaskId task_ = sim::kInvalidTask;
};

}  // namespace hs::vgpu
