// Execution mode of the virtual GPU runtime.
#pragma once

namespace hs::vgpu {

enum class Execution {
  /// Buffers are real host memory; every transfer/sort/merge side effect is
  /// executed, so the sorted output is genuinely produced and verifiable.
  /// Used by tests, examples, and any n that fits in host RAM.
  kReal,
  /// No payload memory is allocated and no side effects run; only virtual
  /// time is computed. Lets benches sweep to the paper's n = 5e9 (37 GiB)
  /// scale on small machines. Faithful because the pipeline is
  /// data-oblivious: the paper itself notes performance is independent of
  /// the input distribution (Section IV-A).
  kTimingOnly,
};

}  // namespace hs::vgpu
