// Device-layer fault types (docs/fault_model.md).
//
// A TransferFault is the virtual analogue of a PCIe copy error
// (cudaErrorUnknown from cudaMemcpyAsync): it surfaces only after the
// injected transient failures exceeded the per-transfer retry budget, so
// catching one means the device (or its link) is persistently unhealthy and
// the recovery engine blacklists it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.h"

namespace hs::vgpu {

/// Which copy failed. kStaging is the host-side pageable<->pinned memcpy of
/// the staging pipeline; it is attributed to the slot's device because the
/// pinned buffer belongs to that device's stream.
enum class TransferKind : std::uint8_t { kHtoD, kDtoH, kStaging };

inline std::string_view transfer_kind_name(TransferKind kind) {
  switch (kind) {
    case TransferKind::kHtoD: return "HtoD";
    case TransferKind::kDtoH: return "DtoH";
    case TransferKind::kStaging: return "staging memcpy";
  }
  return "?";
}

class TransferFault : public hs::Error {
 public:
  TransferFault(const std::string& device_model, unsigned device_index,
                TransferKind kind, unsigned failed_attempts)
      : hs::Error(std::string(transfer_kind_name(kind)) + " transfer on device " +
                  device_model + " (gpu" + std::to_string(device_index) +
                  ") still failing after " + std::to_string(failed_attempts) +
                  " attempts"),
        device_index_(device_index),
        kind_(kind),
        failed_attempts_(failed_attempts) {}

  /// Index of the failing device within the platform the run was built for.
  unsigned device_index() const { return device_index_; }
  TransferKind kind() const { return kind_; }
  unsigned failed_attempts() const { return failed_attempts_; }

 private:
  unsigned device_index_;
  TransferKind kind_;
  unsigned failed_attempts_;
};

/// Virtual analogue of cudaMallocHost returning cudaErrorMemoryAllocation
/// (or std::bad_alloc from a real pinned allocation): the host could not
/// provide the requested page-locked staging memory. Injectable via
/// sim::FaultSite::kHostAllocFail. The recovery engine reacts by shrinking
/// ps (core::MemoryGovernor::shrink_staging) and retrying.
class HostAllocFailed : public hs::Error {
 public:
  explicit HostAllocFailed(std::uint64_t bytes)
      : hs::Error("pinned host allocation of " + std::to_string(bytes) +
                  " bytes failed"),
        bytes_(bytes) {}

  std::uint64_t bytes() const { return bytes_; }

 private:
  std::uint64_t bytes_;
};

}  // namespace hs::vgpu
