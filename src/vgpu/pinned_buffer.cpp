#include "vgpu/pinned_buffer.h"

#include "obs/counters.h"

namespace hs::vgpu {

PinnedHostBuffer::PinnedHostBuffer(std::uint64_t bytes, Execution mode)
    : bytes_(bytes) {
  obs::count(obs::Counter::kBytesPinnedAlloc, bytes);
  if (mode == Execution::kReal) storage_.resize(bytes);
}

std::span<std::byte> PinnedHostBuffer::bytes() {
  return {storage_.data(), storage_.size()};
}

std::span<const std::byte> PinnedHostBuffer::bytes() const {
  return {storage_.data(), storage_.size()};
}

double PinnedHostBuffer::alloc_time(
    const model::PinnedAllocModel& alloc_model) const {
  return alloc_model.time(size_bytes());
}

}  // namespace hs::vgpu
