#include "vgpu/pinned_buffer.h"

#include <new>

#include "obs/counters.h"
#include "vgpu/faults.h"

namespace hs::vgpu {

PinnedHostBuffer::PinnedHostBuffer(std::uint64_t bytes, Execution mode,
                                   sim::FaultInjector* injector)
    : bytes_(bytes) {
  if (injector != nullptr &&
      injector->should_fault(sim::FaultSite::kHostAllocFail)) {
    throw HostAllocFailed(bytes);
  }
  obs::count(obs::Counter::kBytesPinnedAlloc, bytes);
  if (mode == Execution::kReal) {
    try {
      storage_.resize(bytes);
    } catch (const std::bad_alloc&) {
      throw HostAllocFailed(bytes);
    }
  }
}

std::span<std::byte> PinnedHostBuffer::bytes() {
  return {storage_.data(), storage_.size()};
}

std::span<const std::byte> PinnedHostBuffer::bytes() const {
  return {storage_.data(), storage_.size()};
}

double PinnedHostBuffer::alloc_time(
    const model::PinnedAllocModel& alloc_model) const {
  return alloc_model.time(size_bytes());
}

}  // namespace hs::vgpu
