// Pinned (page-locked) host staging buffer — cudaMallocHost analogue.
//
// Pinned memory is what makes cudaMemcpyAsync and bidirectional overlap
// possible, at the cost of an expensive allocation (modelled by
// PinnedAllocModel; the paper measures 0.01 s for 8 MB and 2.2 s for 6.4 GB).
// The pipeline allocates one buffer of ps elements per stream and reuses it
// as the incremental staging area of Figure 2. Like device memory, pinned
// memory is untyped and sized in bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "model/pinned_alloc_model.h"
#include "sim/fault_injector.h"
#include "vgpu/execution.h"

namespace hs::vgpu {

class PinnedHostBuffer {
 public:
  PinnedHostBuffer() = default;
  /// Throws HostAllocFailed when the injector fires kHostAllocFail, or when
  /// the real backing allocation throws std::bad_alloc.
  PinnedHostBuffer(std::uint64_t bytes, Execution mode,
                   sim::FaultInjector* injector = nullptr);

  PinnedHostBuffer(PinnedHostBuffer&&) noexcept = default;
  PinnedHostBuffer& operator=(PinnedHostBuffer&&) noexcept = default;
  PinnedHostBuffer(const PinnedHostBuffer&) = delete;
  PinnedHostBuffer& operator=(const PinnedHostBuffer&) = delete;

  std::uint64_t size_bytes() const { return bytes_; }

  /// Real storage; empty span in kTimingOnly mode.
  std::span<std::byte> bytes();
  std::span<const std::byte> bytes() const;

  /// Virtual allocation cost of this buffer under `alloc_model`.
  double alloc_time(const model::PinnedAllocModel& alloc_model) const;

 private:
  std::uint64_t bytes_ = 0;
  std::vector<std::byte> storage_;
};

}  // namespace hs::vgpu
