#include "vgpu/runtime.h"

#include "common/assert.h"
#include "cpu/radix_sort.h"

namespace hs::vgpu {

Runtime::Runtime(model::Platform platform, Execution mode)
    : platform_(std::move(platform)),
      mode_(mode),
      sort_scratch_(std::make_unique<cpu::RadixSortScratch>()) {
  HS_EXPECTS(!platform_.gpus.empty());
  htod_ = engine_.add_channel("pcie.htod", platform_.pcie.channel_bps);
  dtoh_ = engine_.add_channel("pcie.dtoh", platform_.pcie.channel_bps);
  host_mem_ = engine_.add_channel("host.mem", platform_.host_mem.channel_bps);
  host_pool_ = engine_.add_pool("host.cores", platform_.cpu.total_cores());
  devices_.reserve(platform_.gpus.size());
  for (unsigned i = 0; i < platform_.gpus.size(); ++i) {
    devices_.push_back(
        std::make_unique<Device>(platform_.gpus[i], i, mode_));
    devices_.back()->bind_engine(
        engine_.add_compute("gpu" + std::to_string(i)));
  }
}

Runtime::~Runtime() = default;

Device& Runtime::device(unsigned i) {
  HS_EXPECTS(i < devices_.size());
  return *devices_[i];
}

void Runtime::bind_fault_injector(sim::FaultInjector* injector) {
  injector_ = injector;
  for (auto& dev : devices_) dev->bind_fault_injector(injector);
}

}  // namespace hs::vgpu
