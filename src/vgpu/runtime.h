// Virtual GPU runtime: wires a Platform description into simulation resources.
//
// Owns the sim::Engine plus the resource ids every pipeline needs:
//   * one PCIe channel per direction (HtoD / DtoH), shared by all GPUs on the
//     bus — full-duplex, so the two directions never contend with each other
//     but concurrent same-direction transfers (multi-GPU, multi-stream) do;
//   * one ComputeEngine per GPU (kernels from different streams serialise on
//     a saturated device);
//   * one host-memory channel (staging memcpys + CPU merges contend here);
//   * one host core pool sized to the platform's total cores.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "model/platforms.h"
#include "sim/engine.h"
#include "sim/fault_injector.h"
#include "vgpu/device.h"
#include "vgpu/execution.h"

namespace hs::cpu {
class RadixSortScratch;
}  // namespace hs::cpu

namespace hs::vgpu {

class Runtime {
 public:
  Runtime(model::Platform platform, Execution mode);
  ~Runtime();

  // Devices hold back-references into the runtime's resource table.
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  const model::Platform& platform() const { return platform_; }
  Execution mode() const { return mode_; }

  sim::Engine& engine() { return engine_; }

  unsigned num_devices() const { return static_cast<unsigned>(devices_.size()); }
  Device& device(unsigned i);

  /// Binds a fault injector to the runtime and every device (nullptr
  /// unbinds). The injector must outlive the runtime's pipeline runs.
  void bind_fault_injector(sim::FaultInjector* injector);

  /// Currently bound injector, or nullptr when faults are off.
  sim::FaultInjector* fault_injector() const { return injector_; }

  sim::ChannelId htod_channel() const { return htod_; }
  sim::ChannelId dtoh_channel() const { return dtoh_; }
  sim::ChannelId host_mem_channel() const { return host_mem_; }
  sim::PoolId host_pool() const { return host_pool_; }

  /// Runtime-lifetime radix scratch for real-mode device sorts: the engine
  /// executes task actions sequentially on the simulation thread, so every
  /// batch sort of a pipeline run reuses one set of buffers and steady-state
  /// sorting allocates nothing.
  cpu::RadixSortScratch& sort_scratch() { return *sort_scratch_; }

 private:
  model::Platform platform_;
  Execution mode_;
  sim::Engine engine_;
  std::vector<std::unique_ptr<Device>> devices_;
  sim::ChannelId htod_ = 0;
  sim::ChannelId dtoh_ = 0;
  sim::ChannelId host_mem_ = 0;
  sim::PoolId host_pool_ = 0;
  sim::FaultInjector* injector_ = nullptr;
  std::unique_ptr<cpu::RadixSortScratch> sort_scratch_;
};

}  // namespace hs::vgpu
