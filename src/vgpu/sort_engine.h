// On-device sort engine portfolio — the dispatch vocabulary shared by the
// virtual GPU (vgpu/device_sort.cpp charges the matching cost model and runs
// the matching real algorithm) and the core planner (core/sort_plan.h picks
// an engine per job from the input sketch).
//
// Kept as a leaf header (cstdint only) so core/sort_config.h can carry the
// chosen launch parameters without pulling the full vgpu runtime into every
// configuration consumer.
#pragma once

#include <cstdint>
#include <string_view>

namespace hs::vgpu {

enum class DeviceSortEngine : std::uint8_t {
  /// Thrust/CUB-style least-significant-digit radix sort — the paper's
  /// Section III-B black box. Distribution-oblivious cost: the model charges
  /// the same time whatever the keys look like.
  kRadixLsd,
  /// Stehle & Jacobsen-style hybrid most-significant-digit radix sort: one
  /// MSD partition pass plus LSD passes over the remaining non-trivial
  /// digits. Cost is proportional to the predicted pass count, so
  /// low-entropy keys (presorted ranges, narrow domains) sort in a fraction
  /// of the fixed-cost baseline.
  kHybridMsd,
  /// Leischner/Osipov/Sanders-style GPU sample sort: splitter-based and
  /// comparison-bound, with equality buckets that collapse duplicate-heavy
  /// and skewed (zipf) key sets to near-linear work.
  kSampleSort,
};

std::string_view device_sort_engine_name(DeviceSortEngine e);

/// Per-launch engine selection plus the distribution statistics the
/// distribution-dependent cost models consume. Defaults reproduce the
/// pre-portfolio behaviour exactly (LSD radix at full pass count).
struct DeviceSortLaunch {
  DeviceSortEngine engine = DeviceSortEngine::kRadixLsd;
  /// Predicted non-trivial radix passes (of cpu::kRadixPasses = 8); feeds
  /// GpuHybridSortModel.
  unsigned predicted_passes = 8;
  /// log2 of the estimated number of distinct keys (collision-corrected
  /// effective cardinality); feeds GpuSampleSortModel.
  double log2_distinct = 64.0;
};

}  // namespace hs::vgpu
