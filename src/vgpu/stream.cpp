#include "vgpu/stream.h"

namespace hs::vgpu {

sim::TaskId Stream::submit(sim::TaskGraph& graph, sim::Task task) {
  if (tail_ != sim::kInvalidTask) {
    task.deps.push_back(tail_);
  }
  tail_ = graph.add(std::move(task));
  return tail_;
}

void Stream::wait(sim::TaskGraph& graph, sim::TaskId event_task) {
  // Implemented as a zero-cost barrier so the chain stays a single tail.
  sim::Task barrier;
  barrier.label = name_ + ":wait";
  barrier.deps.push_back(event_task);
  submit(graph, std::move(barrier));
}

}  // namespace hs::vgpu
