// CUDA-stream analogue: a FIFO ordering handle over the static task graph.
//
// Work submitted to one stream executes in submission order (a dependency
// chain); work in different streams may overlap — exactly the CUDA semantics
// the paper's PIPEDATA relies on. An Event marks a point in a stream that
// other streams (or host work) can wait on, mirroring cudaEventRecord /
// cudaStreamWaitEvent.
#pragma once

#include <string>
#include <vector>

#include "sim/task_graph.h"
#include "sim/types.h"

namespace hs::vgpu {

class Stream {
 public:
  explicit Stream(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds `task` to `graph` serialised after everything previously submitted
  /// to this stream (plus any deps already present on the task).
  sim::TaskId submit(sim::TaskGraph& graph, sim::Task task);

  /// Task id of the most recently submitted work (kInvalidTask when empty);
  /// usable as a dependency, i.e. an implicit cudaEventRecord at the tail.
  sim::TaskId tail() const { return tail_; }

  /// Inserts a wait: subsequent submissions also depend on `event_task`.
  void wait(sim::TaskGraph& graph, sim::TaskId event_task);

  /// Adopts `task` as the new stream tail. For callers that build a subgraph
  /// with explicit dependencies (e.g. double-buffered staging, which is
  /// deliberately NOT a single chain) and need the stream's FIFO order to
  /// resume after it. `task` must causally follow the previous tail.
  void adopt(sim::TaskId task) { tail_ = task; }

 private:
  std::string name_;
  sim::TaskId tail_ = sim::kInvalidTask;
};

}  // namespace hs::vgpu
