// Unit tests for src/common: rng determinism and statistics, units
// formatting, math helpers, table emission.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/units.h"

namespace hs {
namespace {

TEST(Splitmix64, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 123, s2 = 123;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
}

TEST(Splitmix64, AdvancesState) {
  std::uint64_t s = 7;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro256, ZeroSeedIsNotFixedPoint) {
  Xoshiro256 a(0);
  EXPECT_NE(a(), 0u);
  EXPECT_NE(a(), a());
}

TEST(Xoshiro256, Uniform01InRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, Uniform01MeanNearHalf) {
  Xoshiro256 rng(11);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Xoshiro256, UniformRangeRespectsBounds) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-5.0, 9.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(Xoshiro256, BoundedStaysInBound) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.bounded(17), 17u);
}

TEST(Xoshiro256, BoundedOneAlwaysZero) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Xoshiro256, BoundedCoversAllResidues) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, NormalMeanAndVariance) {
  Xoshiro256 rng(13);
  double sum = 0, sum2 = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.03);
}

TEST(Xoshiro256, LongJumpDecorrelates) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  b.long_jump();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Units, Constants) {
  EXPECT_EQ(kKiB, 1024u);
  EXPECT_EQ(kMiB, 1024u * 1024u);
  EXPECT_EQ(kGiB, 1024u * 1024u * 1024u);
  EXPECT_EQ(kGB, 1000000000u);
}

TEST(Units, BytesOfElems) {
  EXPECT_EQ(bytes_of_elems(0), 0u);
  EXPECT_EQ(bytes_of_elems(1'000'000), 8'000'000u);
}

TEST(Units, PaperSizeConversions) {
  // The paper calls n = 8e8 doubles "5.96 GiB" and the related work's
  // key/value payload "6 GB".
  EXPECT_NEAR(to_gib(bytes_of_elems(800'000'000)), 5.96, 0.01);
  EXPECT_NEAR(to_gb(6'000'000'000ull), 6.0, 1e-12);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2 * kKiB), "2.00 KiB");
  EXPECT_EQ(format_bytes(3 * kMiB), "3.00 MiB");
  EXPECT_EQ(format_bytes(16 * kGiB), "16.00 GiB");
}

TEST(Units, FormatSeconds) { EXPECT_EQ(format_seconds(31.2), "31.200 s"); }

TEST(MathUtil, DivCeil) {
  EXPECT_EQ(div_ceil(10, 5), 2u);
  EXPECT_EQ(div_ceil(11, 5), 3u);
  EXPECT_EQ(div_ceil(1, 5), 1u);
  EXPECT_EQ(div_ceil(0, 5), 0u);
}

TEST(MathUtil, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(1024), 10u);
  EXPECT_EQ(log2_floor(1025), 10u);
}

TEST(MathUtil, Log2Ceil) {
  EXPECT_EQ(log2_ceil(1), 0u);
  EXPECT_EQ(log2_ceil(2), 1u);
  EXPECT_EQ(log2_ceil(3), 2u);
  EXPECT_EQ(log2_ceil(1024), 10u);
  EXPECT_EQ(log2_ceil(1025), 11u);
}

TEST(MathUtil, Log2dClampsBelowOne) {
  EXPECT_EQ(log2d(0.5), 0.0);
  EXPECT_EQ(log2d(1.0), 0.0);
  EXPECT_NEAR(log2d(8.0), 3.0, 1e-12);
}

TEST(MathUtil, ApproxRel) {
  EXPECT_TRUE(approx_rel(100.0, 101.0, 0.02));
  EXPECT_FALSE(approx_rel(100.0, 110.0, 0.02));
  EXPECT_TRUE(approx_rel(0.0, 0.0, 0.01));
}

TEST(Table, AlignedOutputContainsHeaderAndRows) {
  Table t({"n", "time_s"});
  t.row().add(std::uint64_t{1000}).add(3.25, 2);
  t.row().add(std::uint64_t{2000}).add(6.5, 2);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("n"), std::string::npos);
  EXPECT_NE(s.find("3.25"), std::string::npos);
  EXPECT_NE(s.find("2000"), std::string::npos);
}

TEST(Table, CsvRoundTrip) {
  Table t({"a", "b"});
  t.row().add("x").add("y");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("a,b\nx,y\n"), std::string::npos);
  EXPECT_NE(os.str().find("--- csv ---"), std::string::npos);
}

TEST(Table, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.row().add(1);
  t.row().add(2);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(PaperCheck, PrintsRatio) {
  std::ostringstream os;
  print_paper_check(os, "speedup", 3.47, 3.30);
  EXPECT_NE(os.str().find("paper=3.47"), std::string::npos);
  EXPECT_NE(os.str().find("ratio 0.95"), std::string::npos);
}

}  // namespace
}  // namespace hs
