// Tests for SortConfig resolution, batch planning, the paper's pair-merge
// heuristic, and staging chunk computation.
#include <gtest/gtest.h>

#include "core/batch_plan.h"
#include "core/merge_schedule.h"
#include "core/sort_config.h"
#include "core/staging.h"

namespace hs::core {
namespace {

model::Platform p1() { return model::platform1(); }
model::Platform p2() { return model::platform2(); }

TEST(Resolve, AutoBatchSizeUsesDeviceMemoryRule) {
  SortConfig cfg;
  cfg.approach = Approach::kPipeData;
  cfg.streams_per_gpu = 2;
  const auto rc = resolve(cfg, p1(), 5'000'000'000ull);
  // 16 GiB / (2 streams * 2 buffers * 8 B) = 536,870,912 elements.
  EXPECT_EQ(rc.batch_size, (16ull << 30) / 32);
}

TEST(Resolve, ExplicitBatchSizeKept) {
  SortConfig cfg;
  cfg.batch_size = 500'000'000;
  const auto rc = resolve(cfg, p1(), 5'000'000'000ull);
  EXPECT_EQ(rc.batch_size, 500'000'000u);
  EXPECT_EQ(rc.num_batches, 10u);
}

TEST(Resolve, RaggedLastBatchCounted) {
  SortConfig cfg;
  cfg.batch_size = 300;
  const auto rc = resolve(cfg, p1(), 1000);
  EXPECT_EQ(rc.num_batches, 4u);  // 300+300+300+100
}

TEST(Resolve, BatchLargerThanInputClamps) {
  SortConfig cfg;
  cfg.approach = Approach::kBLine;
  cfg.batch_size = 1'000'000;
  const auto rc = resolve(cfg, p1(), 1000);
  EXPECT_EQ(rc.batch_size, 1000u);
  EXPECT_EQ(rc.num_batches, 1u);
}

TEST(Resolve, BLineRejectsMultiBatch) {
  SortConfig cfg;
  cfg.approach = Approach::kBLine;
  cfg.batch_size = 100;
  EXPECT_DEATH((void)resolve(cfg, p1(), 1000), "BLine requires");
}

TEST(Resolve, RejectsTooManyGpus) {
  SortConfig cfg;
  cfg.num_gpus = 2;
  EXPECT_DEATH((void)resolve(cfg, p1(), 1000), "more GPUs");
}

TEST(Resolve, RejectsOversizedBatch) {
  SortConfig cfg;
  cfg.approach = Approach::kPipeData;
  cfg.streams_per_gpu = 2;
  cfg.batch_size = 600'000'000;  // needs 2*2*8*6e8 = 19.2 GB > 16 GiB
  EXPECT_DEATH((void)resolve(cfg, p1(), 1'000'000'000ull),
               "exceeds device memory");
}

TEST(Resolve, NonPipelinedApproachesUseOneStream) {
  SortConfig cfg;
  cfg.approach = Approach::kBLineMulti;
  cfg.streams_per_gpu = 4;  // ignored for blocking approaches
  cfg.batch_size = 100;
  const auto rc = resolve(cfg, p1(), 1000);
  EXPECT_EQ(rc.streams_per_gpu, 1u);
}

TEST(Resolve, MergeThreadsDefaultLeavesStagingLanes) {
  SortConfig cfg;
  cfg.approach = Approach::kPipeMerge;
  cfg.streams_per_gpu = 2;
  cfg.batch_size = 1000;
  const auto rc = resolve(cfg, p1(), 10000);
  EXPECT_EQ(rc.merge_threads, 16u - 2u);
  EXPECT_EQ(rc.multiway_threads, 16u);
}

TEST(Resolve, ParMemcpyThreadsClamped) {
  SortConfig cfg;
  cfg.batch_size = 1000;
  cfg.memcpy_threads = 99;
  const auto rc = resolve(cfg, p1(), 10000);
  EXPECT_EQ(rc.memcpy_threads, 16u);
}

TEST(SortConfig, LabelsDescribeApproach) {
  SortConfig cfg;
  cfg.approach = Approach::kPipeMerge;
  cfg.memcpy_threads = 4;
  cfg.num_gpus = 2;
  EXPECT_EQ(cfg.label(), "PipeMerge+ParMemCpy (2 GPU)");
  SortConfig plain;
  plain.approach = Approach::kBLineMulti;
  EXPECT_EQ(plain.label(), "BLineMulti");
}

TEST(BatchPlan, CoversInputExactly) {
  SortConfig cfg;
  cfg.batch_size = 300;
  const auto rc = resolve(cfg, p1(), 1000);
  const auto plan = BatchPlan::create(rc);
  ASSERT_EQ(plan.num_batches(), 4u);
  std::uint64_t covered = 0;
  for (const auto& b : plan.batches()) {
    EXPECT_EQ(b.offset, covered);
    covered += b.size;
  }
  EXPECT_EQ(covered, 1000u);
  EXPECT_EQ(plan.batch(3).size, 100u);
}

TEST(BatchPlan, RoundRobinOverGpusThenStreams) {
  SortConfig cfg;
  cfg.approach = Approach::kPipeData;
  cfg.batch_size = 100;
  cfg.num_gpus = 2;
  cfg.streams_per_gpu = 2;
  const auto rc = resolve(cfg, p2(), 800);
  const auto plan = BatchPlan::create(rc);
  ASSERT_EQ(plan.num_batches(), 8u);
  EXPECT_EQ(plan.batch(0).gpu, 0u);
  EXPECT_EQ(plan.batch(1).gpu, 1u);
  EXPECT_EQ(plan.batch(0).stream, 0u);
  EXPECT_EQ(plan.batch(2).stream, 1u);  // second batch on gpu0 -> stream 1
  EXPECT_EQ(plan.batch(4).stream, 0u);  // wraps around
}

TEST(BatchPlan, BatchesForSlot) {
  SortConfig cfg;
  cfg.approach = Approach::kPipeData;
  cfg.batch_size = 100;
  cfg.streams_per_gpu = 2;
  const auto rc = resolve(cfg, p1(), 600);
  const auto plan = BatchPlan::create(rc);
  EXPECT_EQ(plan.batches_for(0, 0), (std::vector<std::uint64_t>{0, 2, 4}));
  EXPECT_EQ(plan.batches_for(0, 1), (std::vector<std::uint64_t>{1, 3, 5}));
}

// --- the paper's pair-merge heuristic (Section III-D3) ----------------------

struct HeuristicCase {
  std::uint64_t nb;
  unsigned ngpu;
  std::uint64_t expected;
};

class PairHeuristic : public ::testing::TestWithParam<HeuristicCase> {};

TEST_P(PairHeuristic, MatchesPaperFormula) {
  const auto& c = GetParam();
  EXPECT_EQ(MergeSchedule::heuristic_pair_count(c.nb, c.ngpu), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    PaperFormula, PairHeuristic,
    ::testing::Values(HeuristicCase{1, 1, 0},   // single batch: no merging
                      HeuristicCase{2, 1, 0},   // floor(1/2)
                      HeuristicCase{3, 1, 1},
                      HeuristicCase{4, 1, 1},
                      HeuristicCase{5, 1, 2},
                      HeuristicCase{6, 1, 2},   // Fig 3's example: m1, m2
                      HeuristicCase{7, 1, 3},   // odd: last batch unmerged
                      HeuristicCase{10, 1, 4},
                      HeuristicCase{4, 2, 0},   // floor(3/4)
                      HeuristicCase{6, 2, 1},
                      HeuristicCase{10, 2, 2},
                      HeuristicCase{14, 2, 3},
                      HeuristicCase{10, 4, 1},
                      HeuristicCase{100, 1, 49}));

TEST(MergeSchedule, OnlyPipeMergeGetsPairs) {
  SortConfig cfg;
  cfg.approach = Approach::kPipeData;
  cfg.batch_size = 100;
  const auto rc = resolve(cfg, p1(), 600);
  EXPECT_TRUE(MergeSchedule::plan(rc).pairs().empty());
}

TEST(MergeSchedule, PairsAreAdjacentLeadingBatches) {
  SortConfig cfg;
  cfg.approach = Approach::kPipeMerge;
  cfg.batch_size = 100;
  const auto rc = resolve(cfg, p1(), 600);  // nb = 6 -> 2 pairs
  const auto s = MergeSchedule::plan(rc);
  ASSERT_EQ(s.pairs().size(), 2u);
  EXPECT_EQ(s.pairs()[0].left, 0u);
  EXPECT_EQ(s.pairs()[0].right, 1u);
  EXPECT_EQ(s.pairs()[1].left, 2u);
  EXPECT_EQ(s.pairs()[1].right, 3u);
  EXPECT_TRUE(s.is_paired(0));
  EXPECT_TRUE(s.is_paired(3));
  EXPECT_FALSE(s.is_paired(4));
  EXPECT_EQ(s.multiway_ways(6), 4u);  // 2 merged runs + batches 4, 5
}

TEST(MergeSchedule, RaggedTailNeverPaired) {
  SortConfig cfg;
  cfg.approach = Approach::kPipeMerge;
  cfg.pair_policy = PairMergePolicy::kAll;
  cfg.batch_size = 100;
  const auto rc = resolve(cfg, p1(), 550);  // nb = 6, last has 50 elements
  const auto s = MergeSchedule::plan(rc);
  EXPECT_FALSE(s.is_paired(5));
}

TEST(MergeSchedule, PolicyNoneDisablesPairs) {
  SortConfig cfg;
  cfg.approach = Approach::kPipeMerge;
  cfg.pair_policy = PairMergePolicy::kNone;
  cfg.batch_size = 100;
  const auto rc = resolve(cfg, p1(), 600);
  const auto s = MergeSchedule::plan(rc);
  EXPECT_TRUE(s.pairs().empty());
  EXPECT_EQ(s.multiway_ways(6), 6u);
}

TEST(MergeSchedule, PolicyAllPairsEverything) {
  SortConfig cfg;
  cfg.approach = Approach::kPipeMerge;
  cfg.pair_policy = PairMergePolicy::kAll;
  cfg.batch_size = 100;
  const auto rc = resolve(cfg, p1(), 600);
  const auto s = MergeSchedule::plan(rc);
  EXPECT_EQ(s.pairs().size(), 3u);
  EXPECT_EQ(s.multiway_ways(6), 3u);
}

TEST(Staging, ChunksCoverBatch) {
  const auto chunks = chunk_batch(1000, 300);
  ASSERT_EQ(chunks.size(), 4u);
  EXPECT_EQ(chunks[0].offset, 0u);
  EXPECT_EQ(chunks[3].offset, 900u);
  EXPECT_EQ(chunks[3].size, 100u);
}

TEST(Staging, ExactDivision) {
  const auto chunks = chunk_batch(900, 300);
  ASSERT_EQ(chunks.size(), 3u);
  for (const auto& c : chunks) EXPECT_EQ(c.size, 300u);
}

TEST(Staging, StagingLargerThanBatch) {
  const auto chunks = chunk_batch(100, 1'000'000);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].size, 100u);
}

TEST(Staging, PaperGeometry) {
  // bs = 5e8, ps = 1e6 -> 500 chunks per batch per direction.
  EXPECT_EQ(chunk_batch(500'000'000, 1'000'000).size(), 500u);
}

}  // namespace
}  // namespace hs::core
