// Scenario-matrix conformance: the typed-lane differential oracle harness.
//
// Every registered element lane x every distribution is checked against a
// std::stable_sort oracle computed in the lane's u64 total-order key space,
// across the full device-engine portfolio (LSD radix, hybrid MSD, sample
// sort) and the host merge policies (flat, cascaded, payload-deferred). One
// table-driven sweep pins three properties at once:
//
//   * correctness — every engine x merge-policy cell reproduces the oracle's
//     exact output bytes, so key order AND stable tie order AND payload
//     integrity are all checked in one memcmp;
//   * float total-order semantics — the oracle comparator is the sign-flip
//     bijection (cpu/total_order.h), so NaN/Inf tails, signed zeros, and
//     distinct NaN payloads must land exactly where the bijection says;
//   * planner determinism — the adaptive planner's (engine, passes) decision
//     for every (lane, distribution) cell at paper scale is pinned, including
//     the distribution-driven engine flips on the 32-bit lanes.
//
// HETSORT_CONFORMANCE_DISTS=name,name,... reduces the distribution axis (the
// sanitizer CI job runs a subset; unset runs all twelve).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <numeric>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/key_value.h"
#include "core/het_sorter.h"
#include "cpu/element_ops.h"
#include "cpu/merge_plan.h"
#include "cpu/radix_sort.h"
#include "cpu/thread_pool.h"
#include "cpu/total_order.h"
#include "data/generators.h"
#include "data/sketch.h"
#include "data/verify.h"
#include "model/platforms.h"

namespace hs {
namespace {

using data::Distribution;

// ------------------------------------------------------------ matrix axes

// The distribution axis, reduced by HETSORT_CONFORMANCE_DISTS when set.
std::vector<Distribution> conformance_dists() {
  const char* env = std::getenv("HETSORT_CONFORMANCE_DISTS");
  if (env == nullptr || *env == '\0') {
    const auto all = data::all_distributions();
    return {all.begin(), all.end()};
  }
  std::vector<Distribution> out;
  std::string_view rest = env;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view name = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (name.empty()) continue;
    const auto d = data::distribution_from_name(name);
    EXPECT_TRUE(d.has_value())
        << "HETSORT_CONFORMANCE_DISTS names unknown distribution '" << name
        << "'";
    if (d.has_value()) out.push_back(*d);
  }
  return out;
}

bool dist_selected(std::span<const Distribution> selected, Distribution d) {
  return std::find(selected.begin(), selected.end(), d) != selected.end();
}

// A device engine as a uniform callable, so the sweep can iterate the
// portfolio without caring that the hybrid entry point reports pass counts.
struct EngineUnderTest {
  std::string_view name;
  std::function<void(std::byte*, std::uint64_t, cpu::RadixSortScratch*)> sort;
};

std::vector<EngineUnderTest> engines_for(const cpu::ElementOps& ops) {
  return {
      {"radix-lsd", ops.device_sort},
      {"hybrid-msd",
       [&ops](std::byte* d, std::uint64_t n, cpu::RadixSortScratch* s) {
         ops.device_sort_hybrid(d, n, s);
       }},
      {"sample", ops.device_sort_sample},
  };
}

struct MergePolicyUnderTest {
  std::string_view name;
  cpu::MergePlan plan;
};

// k = 5 runs: flat needs 1 level, cascaded fan-in 4 needs ceil(log4 5) = 2.
// Deferred payload is only honoured for lanes with DeferredMergeTraits
// (kv64); elsewhere the engine silently merges direct, so running it on
// every lane also pins that fallback.
std::vector<MergePolicyUnderTest> merge_policies() {
  cpu::MergePlan cascaded;
  cascaded.topology = cpu::MergeTopology::kCascaded;
  cascaded.fan_in = 4;
  cascaded.levels = 2;
  cpu::MergePlan deferred;
  deferred.deferred_payload = true;
  return {{"flat", cpu::MergePlan{}},
          {"cascaded4", cascaded},
          {"flat-deferred", deferred}};
}

// ---------------------------------------------------------------- oracle

// std::stable_sort over record indices, comparing u64 total-order key
// images. extract_key is an order-preserving bijection from the lane's
// comparison key (floats via the sign-flip map), so this is exactly "stable
// sort by the lane's comparator" — computed without naming the lane's type.
std::vector<std::byte> stable_oracle(std::span<const std::byte> input,
                                     const cpu::ElementOps& ops) {
  const std::uint64_t n = input.size() / ops.elem_size;
  std::vector<std::uint64_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint64_t a, std::uint64_t b) {
                     return ops.extract_key(input.data() + a * ops.elem_size) <
                            ops.extract_key(input.data() + b * ops.elem_size);
                   });
  std::vector<std::byte> out(input.size());
  for (std::uint64_t i = 0; i < n; ++i) {
    std::memcpy(out.data() + i * ops.elem_size,
                input.data() + order[i] * ops.elem_size, ops.elem_size);
  }
  return out;
}

// --------------------------------------------- engine x merge-policy sweep

constexpr std::uint64_t kMatrixElems = 6000;
// Uneven on purpose: a one-element run and unequal large runs exercise the
// loser tree's degenerate shapes in every cell.
constexpr std::uint64_t kRunBounds[] = {0, 1200, 1201, 3000, 4500,
                                        kMatrixElems};
constexpr std::size_t kRuns = std::size(kRunBounds) - 1;

TEST(ConformanceMatrix, EveryCellMatchesTheStableOracle) {
  cpu::ThreadPool pool(4);
  const auto dists = conformance_dists();
  for (const auto lane : cpu::element_lane_names()) {
    const cpu::ElementOps* ops = cpu::element_ops_by_name(lane);
    ASSERT_NE(ops, nullptr) << lane;
    for (const Distribution dist : dists) {
      const auto input =
          data::generate_lane(lane, dist, kMatrixElems, 11);
      const auto expected = stable_oracle(input, *ops);
      const std::uint64_t input_fp =
          data::multiset_fingerprint_bytes(input, ops->elem_size);

      for (const EngineUnderTest& engine : engines_for(*ops)) {
        // Sort the five runs with this engine once; every merge policy
        // drains the same sorted runs.
        std::vector<std::byte> runs_buf(input);
        std::vector<cpu::RunView> runs(kRuns);
        for (std::size_t r = 0; r < kRuns; ++r) {
          std::byte* base = runs_buf.data() + kRunBounds[r] * ops->elem_size;
          const std::uint64_t elems = kRunBounds[r + 1] - kRunBounds[r];
          engine.sort(base, elems, nullptr);
          runs[r] = {base, elems};
        }

        for (const MergePolicyUnderTest& policy : merge_policies()) {
          const std::string cell = std::string(lane) + "/" +
                                   std::string(data::distribution_name(dist)) +
                                   "/" + std::string(engine.name) + "/" +
                                   std::string(policy.name);
          std::vector<std::byte> out(input.size());
          ops->multiway(runs, out.data(), pool, 4, &policy.plan);
          EXPECT_EQ(std::memcmp(out.data(), expected.data(), out.size()), 0)
              << cell << ": output differs from the stable oracle";
          EXPECT_TRUE(
              data::is_sorted_by_key(out, ops->elem_size, ops->extract_key))
              << cell;
          EXPECT_EQ(data::multiset_fingerprint_bytes(out, ops->elem_size),
                    input_fp)
              << cell << ": records lost, fabricated, or payload-corrupted";
        }
      }
    }
  }
}

// ------------------------------------------------------------ planner pins

// The adaptive planner's decision for every (lane, distribution) cell at
// paper scale (2e8 elements, platform1), sketched from 2^20 real generated
// records — all simulated virtual time, so the values are machine-
// independent and pinned exactly. Highlights the matrix encodes:
//
//   * dup-heavy and all-equal flip EVERY lane to sample sort (the planner
//     reads low distinct counts from the sketch, not the lane);
//   * presorted shapes (sorted/reverse/nearly-sorted/saw) flip to the
//     pass-skipping hybrid with passes < key width;
//   * the 32-bit lanes never exceed 4 passes — key_radix_bytes clamps the
//     plan even for uniform keys;
//   * high-entropy shapes (uniform, runs, partial-sorted) keep LSD radix on
//     the 64-bit lanes.
struct PlannerPin {
  std::string_view lane;
  Distribution dist;
  std::string_view engine;
  unsigned passes;
};

constexpr PlannerPin kPlannerPins[] = {
    {"f64", Distribution::kUniform, "radix-lsd", 7u},
    {"f64", Distribution::kGaussian, "radix-lsd", 8u},
    {"f64", Distribution::kSorted, "hybrid-msd", 4u},
    {"f64", Distribution::kReverseSorted, "hybrid-msd", 4u},
    {"f64", Distribution::kNearlySorted, "hybrid-msd", 4u},
    {"f64", Distribution::kDuplicateHeavy, "sample", 2u},
    {"f64", Distribution::kAllEqual, "sample", 0u},
    {"f64", Distribution::kZipf, "sample", 4u},
    {"f64", Distribution::kSaw, "hybrid-msd", 4u},
    {"f64", Distribution::kRuns, "radix-lsd", 8u},
    {"f64", Distribution::kPartialSorted, "radix-lsd", 8u},
    {"f64", Distribution::kOrganPipe, "sample", 4u},
    {"u64", Distribution::kUniform, "radix-lsd", 8u},
    {"u64", Distribution::kGaussian, "hybrid-msd", 3u},
    {"u64", Distribution::kSorted, "hybrid-msd", 3u},
    {"u64", Distribution::kReverseSorted, "hybrid-msd", 3u},
    {"u64", Distribution::kNearlySorted, "hybrid-msd", 5u},
    {"u64", Distribution::kDuplicateHeavy, "sample", 1u},
    {"u64", Distribution::kAllEqual, "sample", 0u},
    {"u64", Distribution::kZipf, "sample", 5u},
    {"u64", Distribution::kSaw, "hybrid-msd", 3u},
    {"u64", Distribution::kRuns, "radix-lsd", 8u},
    {"u64", Distribution::kPartialSorted, "radix-lsd", 8u},
    {"u64", Distribution::kOrganPipe, "hybrid-msd", 3u},
    {"kv64", Distribution::kUniform, "radix-lsd", 8u},
    {"kv64", Distribution::kGaussian, "hybrid-msd", 3u},
    {"kv64", Distribution::kSorted, "hybrid-msd", 3u},
    {"kv64", Distribution::kReverseSorted, "hybrid-msd", 3u},
    {"kv64", Distribution::kNearlySorted, "hybrid-msd", 5u},
    {"kv64", Distribution::kDuplicateHeavy, "sample", 1u},
    {"kv64", Distribution::kAllEqual, "sample", 0u},
    {"kv64", Distribution::kZipf, "sample", 5u},
    {"kv64", Distribution::kSaw, "hybrid-msd", 3u},
    {"kv64", Distribution::kRuns, "radix-lsd", 8u},
    {"kv64", Distribution::kPartialSorted, "radix-lsd", 8u},
    {"kv64", Distribution::kOrganPipe, "hybrid-msd", 3u},
    {"f32", Distribution::kUniform, "hybrid-msd", 4u},
    {"f32", Distribution::kGaussian, "hybrid-msd", 4u},
    {"f32", Distribution::kSorted, "hybrid-msd", 4u},
    {"f32", Distribution::kReverseSorted, "hybrid-msd", 4u},
    {"f32", Distribution::kNearlySorted, "hybrid-msd", 4u},
    {"f32", Distribution::kDuplicateHeavy, "sample", 4u},
    {"f32", Distribution::kAllEqual, "sample", 0u},
    {"f32", Distribution::kZipf, "sample", 4u},
    {"f32", Distribution::kSaw, "hybrid-msd", 4u},
    {"f32", Distribution::kRuns, "hybrid-msd", 4u},
    {"f32", Distribution::kPartialSorted, "hybrid-msd", 4u},
    {"f32", Distribution::kOrganPipe, "sample", 4u},
    {"i32", Distribution::kUniform, "hybrid-msd", 4u},
    {"i32", Distribution::kGaussian, "hybrid-msd", 4u},
    {"i32", Distribution::kSorted, "hybrid-msd", 4u},
    {"i32", Distribution::kReverseSorted, "hybrid-msd", 4u},
    {"i32", Distribution::kNearlySorted, "hybrid-msd", 4u},
    {"i32", Distribution::kDuplicateHeavy, "sample", 4u},
    {"i32", Distribution::kAllEqual, "sample", 0u},
    {"i32", Distribution::kZipf, "sample", 3u},
    {"i32", Distribution::kSaw, "hybrid-msd", 4u},
    {"i32", Distribution::kRuns, "hybrid-msd", 4u},
    {"i32", Distribution::kPartialSorted, "hybrid-msd", 4u},
    {"i32", Distribution::kOrganPipe, "hybrid-msd", 3u},
    {"u32", Distribution::kUniform, "hybrid-msd", 4u},
    {"u32", Distribution::kGaussian, "hybrid-msd", 3u},
    {"u32", Distribution::kSorted, "hybrid-msd", 3u},
    {"u32", Distribution::kReverseSorted, "hybrid-msd", 3u},
    {"u32", Distribution::kNearlySorted, "hybrid-msd", 3u},
    {"u32", Distribution::kDuplicateHeavy, "sample", 1u},
    {"u32", Distribution::kAllEqual, "sample", 0u},
    {"u32", Distribution::kZipf, "sample", 3u},
    {"u32", Distribution::kSaw, "hybrid-msd", 3u},
    {"u32", Distribution::kRuns, "hybrid-msd", 4u},
    {"u32", Distribution::kPartialSorted, "hybrid-msd", 4u},
    {"u32", Distribution::kOrganPipe, "hybrid-msd", 3u},
    {"kv64p24", Distribution::kUniform, "radix-lsd", 8u},
    {"kv64p24", Distribution::kGaussian, "hybrid-msd", 3u},
    {"kv64p24", Distribution::kSorted, "hybrid-msd", 3u},
    {"kv64p24", Distribution::kReverseSorted, "hybrid-msd", 3u},
    {"kv64p24", Distribution::kNearlySorted, "hybrid-msd", 5u},
    {"kv64p24", Distribution::kDuplicateHeavy, "sample", 1u},
    {"kv64p24", Distribution::kAllEqual, "sample", 0u},
    {"kv64p24", Distribution::kZipf, "sample", 5u},
    {"kv64p24", Distribution::kSaw, "hybrid-msd", 3u},
    {"kv64p24", Distribution::kRuns, "radix-lsd", 8u},
    {"kv64p24", Distribution::kPartialSorted, "radix-lsd", 8u},
    {"kv64p24", Distribution::kOrganPipe, "hybrid-msd", 3u},
};

constexpr std::uint64_t kSketchElems = 1 << 20;
constexpr std::uint64_t kSimElems = 200'000'000;

core::Report simulate_cell(std::string_view lane, Distribution dist) {
  const cpu::ElementOps* ops = cpu::element_ops_by_name(lane);
  const auto records = data::generate_lane(lane, dist, kSketchElems, 17);
  std::vector<std::uint64_t> keys(kSketchElems);
  for (std::uint64_t i = 0; i < kSketchElems; ++i) {
    keys[i] = ops->extract_key(records.data() + i * ops->elem_size);
  }
  core::SortConfig cfg;
  cfg.device_engine = core::DeviceEnginePolicy::kAdaptive;
  cfg.has_planner_hint = true;
  cfg.planner_hint = data::sketch_keys(keys, kSimElems);
  core::HeterogeneousSorter sorter(model::platform1(), cfg);
  return sorter.simulate(kSimElems, *ops);
}

TEST(ConformanceMatrix, PlannerDecisionPinnedPerCell) {
  const auto dists = conformance_dists();
  for (const PlannerPin& pin : kPlannerPins) {
    if (!dist_selected(dists, pin.dist)) continue;
    const core::Report r = simulate_cell(pin.lane, pin.dist);
    const std::string cell = std::string(pin.lane) + "/" +
                             std::string(data::distribution_name(pin.dist));
    EXPECT_EQ(r.device_engine, pin.engine) << cell << ": engine flipped";
    EXPECT_EQ(r.plan_passes, pin.passes) << cell << ": pass count moved";
    const unsigned cap = cpu::element_ops_by_name(pin.lane)->key_radix_bytes;
    EXPECT_LE(r.plan_passes, cap)
        << cell << ": plan exceeds the lane's key width";
  }
}

TEST(ConformanceMatrix, PinTableCoversTheFullMatrix) {
  // One pin per (lane, distribution): the table cannot silently fall behind
  // a new lane or distribution.
  EXPECT_EQ(std::size(kPlannerPins),
            cpu::element_lane_names().size() *
                data::all_distributions().size());
  for (const auto lane : cpu::element_lane_names()) {
    for (const Distribution dist : data::all_distributions()) {
      const auto hit = std::count_if(
          std::begin(kPlannerPins), std::end(kPlannerPins),
          [&](const PlannerPin& p) {
            return p.lane == lane && p.dist == dist;
          });
      EXPECT_EQ(hit, 1) << lane << "/" << data::distribution_name(dist);
    }
  }
}

TEST(ConformanceMatrix, DistributionFlipsEngineOn32BitLanes) {
  // The acceptance flips, asserted explicitly: on the SAME lane, data shape
  // alone moves the planner. i32 uniform keeps the pass-skipping hybrid but
  // dup-heavy flips to sample sort; f32 zipf picks sample while presorted
  // f32 picks the hybrid with passes capped by the 4-byte key image.
  const core::Report i32_uniform =
      simulate_cell("i32", Distribution::kUniform);
  const core::Report i32_dups =
      simulate_cell("i32", Distribution::kDuplicateHeavy);
  EXPECT_EQ(i32_uniform.device_engine, "hybrid-msd");
  EXPECT_EQ(i32_dups.device_engine, "sample");
  EXPECT_LT(i32_dups.plan_log2_distinct, 5.0);

  const core::Report f32_zipf = simulate_cell("f32", Distribution::kZipf);
  const core::Report f32_sorted =
      simulate_cell("f32", Distribution::kSorted);
  EXPECT_EQ(f32_zipf.device_engine, "sample");
  EXPECT_EQ(f32_sorted.device_engine, "hybrid-msd");
  EXPECT_LE(f32_sorted.plan_passes, 4u);
}

// ------------------------------------------------- float total-order edges

// Canonical ascending sequence under the engines' total order, with both
// zero signs, both infinities, and NaNs of both signs and distinct payloads:
// -NaN < -Inf < -1.5 < -0.0 < +0.0 < 1.5 < +Inf < +NaN(p0) < +NaN(p1).
std::vector<double> canonical_f64() {
  return {std::bit_cast<double>(0xFFF8000000000000ull),  // -NaN
          -std::numeric_limits<double>::infinity(),
          -1.5,
          -0.0,
          0.0,
          1.5,
          std::numeric_limits<double>::infinity(),
          std::bit_cast<double>(0x7FF8000000000000ull),   // +NaN
          std::bit_cast<double>(0x7FF8000000000001ull)};  // +NaN, payload 1
}

std::vector<float> canonical_f32() {
  return {std::bit_cast<float>(0xFFC00000u),  // -NaN
          -std::numeric_limits<float>::infinity(),
          -1.5f,
          -0.0f,
          0.0f,
          1.5f,
          std::numeric_limits<float>::infinity(),
          std::bit_cast<float>(0x7FC00000u),   // +NaN
          std::bit_cast<float>(0x7FC00001u)};  // +NaN, payload 1
}

template <typename T>
void check_verify_edges(std::vector<T> v) {
  EXPECT_TRUE(data::is_sorted_ascending(std::span<const T>(v)));
  // Any adjacent transposition breaks the total order — including swapping
  // the two zero signs and the two NaN payloads, which operator< cannot see.
  for (std::size_t i = 0; i + 1 < v.size(); ++i) {
    std::swap(v[i], v[i + 1]);
    EXPECT_FALSE(data::is_sorted_ascending(std::span<const T>(v)))
        << "transposition at " << i << " not detected";
    std::swap(v[i], v[i + 1]);
  }
}

TEST(FloatTotalOrder, VerifyRejectsEveryTranspositionOfTheCanonicalTails) {
  check_verify_edges(canonical_f64());
  check_verify_edges(canonical_f32());
}

TEST(FloatTotalOrder, SignedZerosAreDistinctAndOrdered) {
  const std::vector<double> good = {-0.0, 0.0};
  const std::vector<double> bad = {0.0, -0.0};
  EXPECT_TRUE(data::is_sorted_ascending(std::span<const double>(good)));
  EXPECT_FALSE(data::is_sorted_ascending(std::span<const double>(bad)));
  const std::vector<float> goodf = {-0.0f, 0.0f};
  const std::vector<float> badf = {0.0f, -0.0f};
  EXPECT_TRUE(data::is_sorted_ascending(std::span<const float>(goodf)));
  EXPECT_FALSE(data::is_sorted_ascending(std::span<const float>(badf)));
}

TEST(FloatTotalOrder, FingerprintsHashBitPatterns) {
  const std::vector<double> neg_zero = {-0.0};
  const std::vector<double> pos_zero = {0.0};
  EXPECT_NE(data::multiset_fingerprint(std::span<const double>(neg_zero)),
            data::multiset_fingerprint(std::span<const double>(pos_zero)));
  const std::vector<float> nan_p0 = {std::bit_cast<float>(0x7FC00000u)};
  const std::vector<float> nan_p1 = {std::bit_cast<float>(0x7FC00001u)};
  EXPECT_NE(data::multiset_fingerprint(std::span<const float>(nan_p0)),
            data::multiset_fingerprint(std::span<const float>(nan_p1)));
}

template <typename T>
void check_engines_place_tails(const std::vector<T>& canonical,
                               std::string_view lane) {
  const cpu::ElementOps* ops = cpu::element_ops_by_name(lane);
  ASSERT_NE(ops, nullptr);
  // Many copies, reversed and interleaved, so the NaN/Inf/zero specials pass
  // through real engine machinery (histograms, buckets, base cases) rather
  // than a trivial small-input path.
  std::vector<T> input;
  for (int copy = 0; copy < 64; ++copy) {
    for (std::size_t i = canonical.size(); i-- > 0;) {
      input.push_back(canonical[i]);
    }
  }
  const std::span<const std::byte> in_bytes = std::as_bytes(std::span(input));
  const auto expected = stable_oracle(in_bytes, *ops);
  for (const EngineUnderTest& engine : engines_for(*ops)) {
    std::vector<T> v = input;
    engine.sort(std::as_writable_bytes(std::span(v)).data(), v.size(),
                nullptr);
    EXPECT_EQ(std::memcmp(v.data(), expected.data(), expected.size()), 0)
        << lane << "/" << engine.name
        << ": specials not at the bijection's exact positions";
    EXPECT_TRUE(data::is_sorted_ascending(std::span<const T>(v)))
        << lane << "/" << engine.name;
  }
}

TEST(FloatTotalOrder, EveryEnginePlacesSpecialsAtDeterministicTails) {
  check_engines_place_tails(canonical_f64(), "f64");
  check_engines_place_tails(canonical_f32(), "f32");
}

TEST(FloatTotalOrder, BijectionsRoundTripAndPreserveOrder) {
  const auto f64s = canonical_f64();
  for (std::size_t i = 0; i < f64s.size(); ++i) {
    const std::uint64_t img = cpu::f64_total_key(f64s[i]);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(cpu::f64_from_total_key(img)),
              std::bit_cast<std::uint64_t>(f64s[i]));
    if (i + 1 < f64s.size()) {
      EXPECT_LT(img, cpu::f64_total_key(f64s[i + 1]));
      EXPECT_TRUE(cpu::TotalOrderLess<double>{}(f64s[i], f64s[i + 1]));
    }
  }
  const auto f32s = canonical_f32();
  for (std::size_t i = 0; i < f32s.size(); ++i) {
    const std::uint32_t img = cpu::f32_total_key(f32s[i]);
    EXPECT_EQ(std::bit_cast<std::uint32_t>(cpu::f32_from_total_key(img)),
              std::bit_cast<std::uint32_t>(f32s[i]));
    if (i + 1 < f32s.size()) {
      EXPECT_LT(img, cpu::f32_total_key(f32s[i + 1]));
      EXPECT_TRUE(cpu::TotalOrderLess<float>{}(f32s[i], f32s[i + 1]));
    }
  }
}

// --------------------------------------------------- corrupted-order guard

TEST(ConformanceMatrix, CorruptionIsDetectedOnEveryLane) {
  for (const auto lane : cpu::element_lane_names()) {
    const cpu::ElementOps* ops = cpu::element_ops_by_name(lane);
    const auto input =
        data::generate_lane(lane, Distribution::kUniform, 512, 7);
    auto sorted = stable_oracle(input, *ops);
    ASSERT_TRUE(
        data::is_sorted_by_key(sorted, ops->elem_size, ops->extract_key))
        << lane;
    // Swapping the extreme records breaks key order.
    std::vector<std::byte> swapped = sorted;
    std::vector<std::byte> tmp(ops->elem_size);
    std::byte* first = swapped.data();
    std::byte* last = swapped.data() + swapped.size() - ops->elem_size;
    std::memcpy(tmp.data(), first, ops->elem_size);
    std::memcpy(first, last, ops->elem_size);
    std::memcpy(last, tmp.data(), ops->elem_size);
    EXPECT_FALSE(
        data::is_sorted_by_key(swapped, ops->elem_size, ops->extract_key))
        << lane << ": swapped extremes not detected";
    EXPECT_EQ(data::multiset_fingerprint_bytes(swapped, ops->elem_size),
              data::multiset_fingerprint_bytes(sorted, ops->elem_size))
        << lane << ": fingerprint must be order-independent";
    // Flipping one byte anywhere in a record — key or payload — changes the
    // whole-record fingerprint.
    std::vector<std::byte> flipped = sorted;
    flipped[flipped.size() - 1] ^= std::byte{0x40};
    EXPECT_NE(data::multiset_fingerprint_bytes(flipped, ops->elem_size),
              data::multiset_fingerprint_bytes(sorted, ops->elem_size))
        << lane << ": payload corruption not reflected in fingerprint";
  }
}

}  // namespace
}  // namespace hs
