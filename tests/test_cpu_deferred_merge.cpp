// Tests for the payload-deferred merge path and the exact multisequence
// splitter behind it: deferred-vs-oracle sweeps, all-equal-key stability,
// permutation bijection fuzzing over ragged run sets, torn partition
// boundaries (duplicates straddling part cuts), cascaded topology
// correctness, planner decision pins, and the kv64 steady-state
// zero-allocation guarantee.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/key_value.h"
#include "common/rng.h"
#include "core/merge_schedule.h"
#include "cpu/loser_tree.h"
#include "cpu/merge_path.h"
#include "cpu/merge_plan.h"
#include "cpu/multiway_merge.h"
#include "data/generators.h"

// Global allocation counter: every replaceable operator new in this binary
// bumps it, including calls from pool worker threads, which is what lets
// Kv64SteadyStateZeroAllocations observe the deferred engine's footprint.
std::atomic<std::uint64_t> g_alloc_count{0};

// GCC's -Wmismatched-new-delete false-positives when it inlines a replaced
// operator new (it sees malloc feed free through the replacement pair).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
// The nothrow variants must be replaced too: mixing a default nothrow-new
// with the malloc-backed delete below trips ASan's alloc-dealloc-mismatch.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  ::operator delete(p);
}
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  ::operator delete(p);
}
#pragma GCC diagnostic pop

namespace hs::cpu {
namespace {

// Builds kv64 runs with keys drawn from [0, key_range) and the payload
// encoding (run, position) so stability violations are observable: the
// stable merge of runs r0..r{k-1} must order equal keys by (run, pos).
std::vector<std::vector<KeyValue64>> make_kv_runs(
    std::span<const std::uint64_t> lens, std::uint64_t key_range,
    std::uint64_t seed) {
  std::vector<std::vector<KeyValue64>> runs(lens.size());
  hs::Xoshiro256 rng(seed);
  for (std::size_t r = 0; r < lens.size(); ++r) {
    runs[r].resize(lens[r]);
    for (std::uint64_t i = 0; i < lens[r]; ++i) {
      runs[r][i].key = rng.bounded(key_range);
    }
    std::sort(runs[r].begin(), runs[r].end());
    for (std::uint64_t i = 0; i < lens[r]; ++i) {
      runs[r][i].value = (static_cast<std::uint64_t>(r) << 32) | i;
    }
  }
  return runs;
}

template <typename T>
std::vector<std::span<const T>> as_spans(
    const std::vector<std::vector<T>>& runs) {
  std::vector<std::span<const T>> s;
  s.reserve(runs.size());
  for (const auto& r : runs) s.emplace_back(r);
  return s;
}

// The stable oracle: concatenate runs in run order, stable_sort by key.
// Equal keys keep (run, pos) order — exactly the tie rule the tree's
// lower-index-wins and in-run FIFO order promise.
std::vector<KeyValue64> stable_oracle(
    const std::vector<std::vector<KeyValue64>>& runs) {
  std::vector<KeyValue64> all;
  for (const auto& r : runs) all.insert(all.end(), r.begin(), r.end());
  std::stable_sort(all.begin(), all.end());
  return all;
}

std::uint64_t total_of(const std::vector<std::vector<KeyValue64>>& runs) {
  std::uint64_t t = 0;
  for (const auto& r : runs) t += r.size();
  return t;
}

TEST(DeferredMerge, MatchesStableOracleSweep) {
  DeferredLoserTree<KeyValue64> tree;
  std::vector<std::uint64_t> perm;
  std::uint64_t seed = 100;
  for (const std::size_t k : {3u, 4u, 5u, 8u, 16u, 33u}) {
    std::vector<std::uint64_t> lens(k);
    hs::Xoshiro256 rng(seed);
    for (auto& l : lens) l = 200 + rng.bounded(800);
    const auto runs = make_kv_runs(lens, 500, seed++);
    const auto spans = as_spans(runs);
    std::vector<KeyValue64> out(total_of(runs));
    multiway_merge_deferred<KeyValue64>(spans, std::span<KeyValue64>(out),
                                        tree, perm);
    EXPECT_EQ(out, stable_oracle(runs)) << "k=" << k;
  }
}

TEST(DeferredMerge, AllEqualKeysStable) {
  // Every key identical: the merged payload sequence must be exactly
  // run-major (run 0's elements in order, then run 1's, ...), the hardest
  // tie-breaking case for the gallop and dual-stream paths.
  const std::vector<std::uint64_t> lens{700, 1, 0, 399, 256, 64};
  const auto runs = make_kv_runs(lens, 1, 7);
  const auto spans = as_spans(runs);
  std::vector<KeyValue64> out(total_of(runs));
  DeferredLoserTree<KeyValue64> tree;
  std::vector<std::uint64_t> perm;
  multiway_merge_deferred<KeyValue64>(spans, std::span<KeyValue64>(out), tree,
                                      perm);
  EXPECT_EQ(out, stable_oracle(runs));
  std::size_t i = 0;
  for (std::size_t r = 0; r < lens.size(); ++r) {
    for (std::uint64_t p = 0; p < lens[r]; ++p, ++i) {
      ASSERT_EQ(out[i].value, (static_cast<std::uint64_t>(r) << 32) | p);
    }
  }
}

TEST(DeferredMerge, PermutationBijectionFuzz) {
  // The drained permutation stream must be a bijection onto the (run, pos)
  // domain: sorted, it equals the full enumeration of packed entries.
  DeferredLoserTree<KeyValue64> tree;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    hs::Xoshiro256 rng(seed * 31);
    const std::size_t k = 3 + rng.bounded(14);
    std::vector<std::uint64_t> lens(k);
    for (auto& l : lens) {
      l = (rng.bounded(4) == 0) ? 0 : rng.bounded(600);  // empties included
    }
    const auto runs = make_kv_runs(lens, 40, seed);
    const auto spans = as_spans(runs);
    const std::span<const std::span<const KeyValue64>> rspan(spans);
    tree.reset(rspan);
    std::vector<std::uint64_t> perm(tree.remaining());
    tree.drain(std::span<std::uint64_t>(perm));

    std::vector<std::uint64_t> expect;
    expect.reserve(perm.size());
    for (std::size_t r = 0; r < k; ++r) {
      for (std::uint64_t p = 0; p < lens[r]; ++p) {
        expect.push_back(perm_entry(r, p));
      }
    }
    std::sort(perm.begin(), perm.end());
    ASSERT_EQ(perm, expect) << "seed=" << seed;
  }
}

TEST(KwaySelect, ExactRanksAndNesting) {
  // For every rank m: cuts sum to m, the selected prefixes are exactly the
  // stable merge's first m elements, and cut rows nest as m grows.
  const std::vector<std::uint64_t> lens{500, 0, 321, 777, 123};
  const auto runs = make_kv_runs(lens, 60, 42);  // heavy duplicates
  const auto spans = as_spans(runs);
  const std::span<const std::span<const KeyValue64>> rspan(spans);
  const auto oracle = stable_oracle(runs);
  const std::uint64_t total = oracle.size();
  const std::size_t k = runs.size();

  std::vector<std::uint64_t> cuts(k), prev(k, 0), lo(k), hi(k);
  for (const std::uint64_t m :
       {std::uint64_t{0}, std::uint64_t{1}, total / 7, total / 3, total / 2,
        total - 1, total}) {
    kway_select<KeyValue64>(rspan, m, cuts, lo, hi);
    std::uint64_t sum = 0;
    for (std::size_t r = 0; r < k; ++r) sum += cuts[r];
    ASSERT_EQ(sum, m);
    // The prefixes must reproduce the oracle's first m records exactly —
    // the splitter's tie rule (ascending run order) is the stable rule.
    std::vector<KeyValue64> prefix;
    for (std::size_t r = 0; r < k; ++r) {
      prefix.insert(prefix.end(), runs[r].begin(),
                    runs[r].begin() + static_cast<std::ptrdiff_t>(cuts[r]));
    }
    std::stable_sort(prefix.begin(), prefix.end());
    ASSERT_TRUE(std::equal(prefix.begin(), prefix.end(), oracle.begin()))
        << "m=" << m;
    // Nesting: increasing m never moves a cut backwards (torn duplicate
    // blocks split consistently across part boundaries).
    for (std::size_t r = 0; r < k; ++r) {
      ASSERT_GE(cuts[r], prev[r]) << "m=" << m << " r=" << r;
    }
    prev = cuts;
  }
  EXPECT_EQ(prev, lens);  // m == total selects everything
}

TEST(KwaySelect, AllEqualKeysSplitInRunOrder) {
  // All keys equal: rank m must take runs whole in ascending order (the
  // stable tie rule), not split arbitrarily.
  const std::vector<std::uint64_t> lens{100, 50, 200};
  const auto runs = make_kv_runs(lens, 1, 3);
  const auto spans = as_spans(runs);
  const std::span<const std::span<const KeyValue64>> rspan(spans);
  std::vector<std::uint64_t> cuts(3), lo(3), hi(3);
  kway_select<KeyValue64>(rspan, 120, cuts, lo, hi);
  EXPECT_EQ(cuts, (std::vector<std::uint64_t>{100, 20, 0}));
  kway_select<KeyValue64>(rspan, 160, cuts, lo, hi);
  EXPECT_EQ(cuts, (std::vector<std::uint64_t>{100, 50, 10}));
}

TEST(MultiwayParallel, TornBoundariesStayStable) {
  // Keys in large duplicate blocks so every part boundary lands inside a
  // block; the parallel deferred merge must still equal the stable oracle
  // payload-for-payload at every pool width.
  const std::vector<std::uint64_t> lens{4096, 4096, 4096, 4096, 4096};
  const auto runs = make_kv_runs(lens, 16, 99);
  const auto spans = as_spans(runs);
  const auto oracle = stable_oracle(runs);
  std::vector<KeyValue64> out(oracle.size());
  for (const unsigned p : {2u, 3u, 4u, 8u}) {
    ThreadPool pool(p);
    MultiwayMergeScratch<KeyValue64> scratch;
    multiway_merge_parallel<KeyValue64>(
        pool, std::span<const std::span<const KeyValue64>>(spans),
        std::span<KeyValue64>(out), {}, p, &scratch);
    ASSERT_EQ(out, oracle) << "p=" << p;
  }
}

TEST(MultiwayParallel, Kv64SteadyStateZeroAllocations) {
  // The deferred path (key tree + permutation buffer + gather) must reuse
  // every buffer after warm-up: merging again allocates nothing, on any
  // lane thread.
  ThreadPool pool(4);
  const std::vector<std::uint64_t> lens{4096, 4096, 4096, 4096,
                                        4096, 4096, 4096, 4096};
  const auto runs = make_kv_runs(lens, 1 << 20, 5);
  std::vector<KeyValue64> out(total_of(runs));
  MultiwayMergeScratch<KeyValue64> scratch;
  auto spans = as_spans(runs);
  multiway_merge_parallel<KeyValue64>(pool, std::move(spans),
                                      std::span<KeyValue64>(out), {}, 4,
                                      &scratch);
  auto spans2 = as_spans(runs);
  const std::uint64_t before = g_alloc_count.load();
  multiway_merge_parallel<KeyValue64>(pool, std::move(spans2),
                                      std::span<KeyValue64>(out), {}, 4,
                                      &scratch);
  const std::uint64_t after = g_alloc_count.load();
  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(out, stable_oracle(runs));
}

TEST(CascadedMerge, MatchesOracleAcrossFanIns) {
  // Cascaded topology at fan-in 2 and 4 over ragged kv64 runs must agree
  // with the stable oracle; the last level must land in `out` (parity).
  const std::vector<std::uint64_t> lens{900, 0,   511, 1024, 77,
                                        640, 333, 1,   258,  412};
  const auto runs = make_kv_runs(lens, 300, 21);
  const auto spans = as_spans(runs);
  const auto oracle = stable_oracle(runs);
  std::vector<KeyValue64> out(oracle.size());
  ThreadPool pool(4);
  for (const unsigned fan : {2u, 4u}) {
    MultiwayMergeScratch<KeyValue64> scratch;
    MergePlan plan;
    plan.topology = MergeTopology::kCascaded;
    plan.fan_in = fan;
    plan.deferred_payload = true;
    multiway_merge_parallel<KeyValue64>(
        pool, std::span<const std::span<const KeyValue64>>(spans),
        std::span<KeyValue64>(out), {}, 0, &scratch, &plan);
    ASSERT_EQ(out, oracle) << "fan=" << fan;
  }
}

TEST(CascadedMerge, DirectPayloadF64) {
  // The cascade must also compose with the direct (non-deferred) path.
  std::vector<std::vector<double>> runs(9);
  std::uint64_t total = 0;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    runs[r] = hs::data::generate(hs::data::Distribution::kUniform,
                                 300 + 41 * r, r + 1);
    std::sort(runs[r].begin(), runs[r].end());
    total += runs[r].size();
  }
  std::vector<double> all;
  for (const auto& r : runs) all.insert(all.end(), r.begin(), r.end());
  std::sort(all.begin(), all.end());
  const auto spans = as_spans(runs);
  std::vector<double> out(total);
  ThreadPool pool(2);
  MergePlan plan;
  plan.topology = MergeTopology::kCascaded;
  plan.fan_in = 4;
  multiway_merge_parallel<double, std::less<double>>(
      pool, std::span<const std::span<const double>>(spans),
      std::span<double>(out), {}, 0, nullptr, &plan);
  EXPECT_EQ(out, all);
}

TEST(MergePlanner, DecisionPins) {
  // Pin the planner's choices for the shapes the pipeline actually hits, so
  // a cost-model recalibration that flips a decision fails loudly here and
  // in the bench JSON diff rather than silently changing the hot path.
  using hs::core::plan_multiway_merge;
  const auto kv8 = plan_multiway_merge(
      {8, 1 << 22, sizeof(KeyValue64), sizeof(std::uint64_t), 4});
  EXPECT_EQ(kv8.topology, MergeTopology::kFlat);
  EXPECT_TRUE(kv8.deferred_payload);

  const auto f64 = plan_multiway_merge(
      {8, 1 << 22, sizeof(double), sizeof(double), 4});
  EXPECT_EQ(f64.topology, MergeTopology::kFlat);
  EXPECT_FALSE(f64.deferred_payload);  // key == element: nothing to defer

  // The measured flat-merge sweep (see MergeEngineModel) showed per-level
  // throughput holding to k = 128 with only shallow growth beyond, so the
  // cascade crossover sits far higher than the first-principles model had
  // it: flat still wins a 256-way kv64 merge, and the cascade only pays for
  // itself past ~512 ways.
  const auto mid = plan_multiway_merge(
      {256, 1 << 24, sizeof(KeyValue64), sizeof(std::uint64_t), 4});
  EXPECT_EQ(mid.topology, MergeTopology::kFlat);
  EXPECT_TRUE(mid.deferred_payload);

  const auto wide = plan_multiway_merge(
      {1024, 1 << 24, sizeof(KeyValue64), sizeof(std::uint64_t), 4});
  EXPECT_EQ(wide.topology, MergeTopology::kCascaded);
  EXPECT_GE(wide.fan_in, 2u);
  EXPECT_GT(wide.levels, 1u);
}

}  // namespace
}  // namespace hs::cpu
