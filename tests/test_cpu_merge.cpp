// Tests for merge-path pairwise merging: split correctness and monotonicity,
// parallel merge equivalence with std::merge across distributions and sizes,
// and stability.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "cpu/merge_path.h"
#include "data/generators.h"
#include "data/verify.h"

namespace hs::cpu {
namespace {

using hs::data::Distribution;

std::vector<double> sorted_from(Distribution d, std::uint64_t n,
                                std::uint64_t seed) {
  auto v = hs::data::generate(d, n, seed);
  std::sort(v.begin(), v.end());
  return v;
}

TEST(MergePathSplit, EndpointsAreExact) {
  const std::vector<double> a{1, 3, 5};
  const std::vector<double> b{2, 4, 6};
  EXPECT_EQ(merge_path_split<double>(a, b, 0), 0u);
  EXPECT_EQ(merge_path_split<double>(a, b, 6), 3u);
}

TEST(MergePathSplit, KnownInterleaving) {
  const std::vector<double> a{1, 3, 5};
  const std::vector<double> b{2, 4, 6};
  // diag 1: output {1} -> 1 from a; diag 2: {1,2} -> 1 from a; diag 3: {1,2,3}.
  EXPECT_EQ(merge_path_split<double>(a, b, 1), 1u);
  EXPECT_EQ(merge_path_split<double>(a, b, 2), 1u);
  EXPECT_EQ(merge_path_split<double>(a, b, 3), 2u);
}

TEST(MergePathSplit, EmptySides) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> empty;
  EXPECT_EQ(merge_path_split<double>(a, empty, 2), 2u);
  EXPECT_EQ(merge_path_split<double>(empty, a, 2), 0u);
}

TEST(MergePathSplit, TiesPreferA) {
  const std::vector<double> a{5, 5};
  const std::vector<double> b{5, 5};
  // Stable semantics: a's equal elements are consumed first.
  EXPECT_EQ(merge_path_split<double>(a, b, 1), 1u);
  EXPECT_EQ(merge_path_split<double>(a, b, 2), 2u);
  EXPECT_EQ(merge_path_split<double>(a, b, 3), 2u);
}

TEST(MergePathSplit, MonotoneInDiagonal) {
  Xoshiro256 rng(99);
  std::vector<double> a(257), b(391);
  for (auto& x : a) x = rng.uniform01();
  for (auto& x : b) x = rng.uniform01();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::uint64_t prev = 0;
  for (std::uint64_t d = 0; d <= a.size() + b.size(); ++d) {
    const std::uint64_t i = merge_path_split<double>(a, b, d);
    EXPECT_GE(i, prev);
    EXPECT_LE(i - prev, 1u) << "split advances by at most 1 per diagonal";
    prev = i;
  }
}

struct MergeCase {
  Distribution dist;
  std::uint64_t na;
  std::uint64_t nb;
  unsigned parts;
};

class ParallelMergeProperty : public ::testing::TestWithParam<MergeCase> {};

TEST_P(ParallelMergeProperty, MatchesStdMerge) {
  const auto& pc = GetParam();
  ThreadPool pool(4);
  const auto a = sorted_from(pc.dist, pc.na, 1);
  const auto b = sorted_from(pc.dist, pc.nb, 2);
  std::vector<double> expected(pc.na + pc.nb);
  std::merge(a.begin(), a.end(), b.begin(), b.end(), expected.begin());
  std::vector<double> out(pc.na + pc.nb);
  merge_parallel<double>(pool, a, b, out, std::less<>{}, pc.parts);
  EXPECT_EQ(out, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelMergeProperty,
    ::testing::Values(
        MergeCase{Distribution::kUniform, 0, 0, 4},
        MergeCase{Distribution::kUniform, 1, 0, 4},
        MergeCase{Distribution::kUniform, 0, 1, 4},
        MergeCase{Distribution::kUniform, 1, 1, 4},
        MergeCase{Distribution::kUniform, 1000, 1000, 1},
        MergeCase{Distribution::kUniform, 1000, 1000, 2},
        MergeCase{Distribution::kUniform, 1000, 1000, 4},
        MergeCase{Distribution::kUniform, 10000, 1, 4},
        MergeCase{Distribution::kUniform, 1, 10000, 4},
        MergeCase{Distribution::kUniform, 12345, 6789, 4},
        MergeCase{Distribution::kGaussian, 5000, 5000, 4},
        MergeCase{Distribution::kDuplicateHeavy, 5000, 5000, 4},
        MergeCase{Distribution::kAllEqual, 3000, 3000, 4},
        MergeCase{Distribution::kSorted, 5000, 5000, 3},
        MergeCase{Distribution::kZipf, 5000, 4000, 4}));

TEST(ParallelMerge, StableAcrossInputs) {
  // Pairs (key, origin): all of a's instances of a key must precede b's.
  struct KV {
    double key;
    int origin;
  };
  auto less = [](const KV& x, const KV& y) { return x.key < y.key; };
  std::vector<KV> a, b;
  for (int i = 0; i < 500; ++i) a.push_back({static_cast<double>(i % 7), 0});
  for (int i = 0; i < 500; ++i) b.push_back({static_cast<double>(i % 7), 1});
  std::stable_sort(a.begin(), a.end(), less);
  std::stable_sort(b.begin(), b.end(), less);
  std::vector<KV> out(a.size() + b.size());
  ThreadPool pool(4);
  merge_parallel<KV>(pool, a, b, out, less, 4);
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    if (out[i].key == out[i + 1].key) {
      EXPECT_LE(out[i].origin, out[i + 1].origin);
    }
  }
}

TEST(ParallelMerge, CustomComparatorDescending) {
  ThreadPool pool(4);
  auto a = hs::data::generate(Distribution::kUniform, 4000, 3);
  auto b = hs::data::generate(Distribution::kUniform, 4000, 4);
  auto greater = std::greater<double>{};
  std::sort(a.begin(), a.end(), greater);
  std::sort(b.begin(), b.end(), greater);
  std::vector<double> out(a.size() + b.size());
  merge_parallel<double>(pool, a, b, out, greater, 4);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end(), greater));
}

TEST(ParallelMerge, PreservesMultiset) {
  ThreadPool pool(4);
  const auto a = sorted_from(Distribution::kUniform, 9999, 5);
  const auto b = sorted_from(Distribution::kUniform, 777, 6);
  std::vector<double> out(a.size() + b.size());
  merge_parallel<double>(pool, a, b, out);
  std::vector<double> both;
  both.insert(both.end(), a.begin(), a.end());
  both.insert(both.end(), b.begin(), b.end());
  EXPECT_EQ(hs::data::multiset_fingerprint(both),
            hs::data::multiset_fingerprint(out));
}

TEST(MergeSequential, MatchesStdMerge) {
  const auto a = sorted_from(Distribution::kUniform, 100, 7);
  const auto b = sorted_from(Distribution::kUniform, 50, 8);
  std::vector<double> expected(150), out(150);
  std::merge(a.begin(), a.end(), b.begin(), b.end(), expected.begin());
  merge_sequential<double>(a, b, out);
  EXPECT_EQ(out, expected);
}

}  // namespace
}  // namespace hs::cpu
