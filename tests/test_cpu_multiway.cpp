// Tests for the loser tree and sequential/parallel multiway merge: run-count
// sweeps, empty and degenerate runs, duplicates, stability, and equivalence
// with a reference merge. Also verifies the block-draining fast path against
// a stable-sort oracle for every supported element type, and that the
// parallel merge allocates nothing per part in steady state.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/key_value.h"
#include "common/rng.h"
#include "cpu/loser_tree.h"
#include "cpu/multiway_merge.h"
#include "data/generators.h"
#include "data/verify.h"

// Global allocation counter: every replaceable operator new in this binary
// bumps it, including calls from pool worker threads, which is what lets
// SteadyStateZeroAllocations observe the merge engine's true footprint.
std::atomic<std::uint64_t> g_alloc_count{0};

// GCC's -Wmismatched-new-delete false-positives when it inlines a replaced
// operator new (it sees malloc feed free through the replacement pair).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
// The nothrow variants must be replaced too: libstdc++'s stable_sort
// temporary buffer allocates through operator new(nothrow), and mixing a
// default nothrow-new with the malloc-backed delete below trips ASan's
// alloc-dealloc-mismatch check.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  ::operator delete(p);
}
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  ::operator delete(p);
}
#pragma GCC diagnostic pop

namespace hs::cpu {
namespace {

using hs::data::Distribution;

std::vector<std::vector<double>> make_runs(std::size_t k, std::uint64_t per_run,
                                           std::uint64_t seed,
                                           Distribution d = Distribution::kUniform) {
  std::vector<std::vector<double>> runs(k);
  for (std::size_t r = 0; r < k; ++r) {
    runs[r] = hs::data::generate(d, per_run, seed + r);
    std::sort(runs[r].begin(), runs[r].end());
  }
  return runs;
}

std::vector<std::span<const double>> as_spans(
    const std::vector<std::vector<double>>& runs) {
  std::vector<std::span<const double>> s;
  s.reserve(runs.size());
  for (const auto& r : runs) s.emplace_back(r);
  return s;
}

std::vector<double> reference_merge(
    const std::vector<std::vector<double>>& runs) {
  std::vector<double> all;
  for (const auto& r : runs) all.insert(all.end(), r.begin(), r.end());
  std::sort(all.begin(), all.end());
  return all;
}

TEST(LoserTree, SingleRunDrainsInOrder) {
  const std::vector<double> r{1, 2, 3, 4};
  LoserTree<double> tree({std::span<const double>(r)});
  EXPECT_EQ(tree.remaining(), 4u);
  for (const double expect : r) EXPECT_DOUBLE_EQ(tree.pop(), expect);
  EXPECT_TRUE(tree.empty());
}

TEST(LoserTree, TwoRunsInterleave) {
  const std::vector<double> a{1, 3, 5};
  const std::vector<double> b{2, 4, 6};
  LoserTree<double> tree({std::span<const double>(a), std::span<const double>(b)});
  std::vector<double> out(6);
  tree.drain(out);
  EXPECT_EQ(out, (std::vector<double>{1, 2, 3, 4, 5, 6}));
}

TEST(LoserTree, HandlesEmptyRuns) {
  const std::vector<double> a{1, 2};
  const std::vector<double> empty;
  LoserTree<double> tree({std::span<const double>(empty),
                          std::span<const double>(a),
                          std::span<const double>(empty)});
  std::vector<double> out(2);
  tree.drain(out);
  EXPECT_EQ(out, (std::vector<double>{1, 2}));
}

TEST(LoserTree, AllRunsEmpty) {
  const std::vector<double> empty;
  LoserTree<double> tree({std::span<const double>(empty),
                          std::span<const double>(empty)});
  EXPECT_TRUE(tree.empty());
}

TEST(LoserTree, NonPowerOfTwoRunCount) {
  const auto runs = make_runs(5, 100, 11);
  std::vector<double> out(500);
  LoserTree<double> tree(as_spans(runs));
  tree.drain(out);
  EXPECT_EQ(out, reference_merge(runs));
}

TEST(LoserTree, StableTiesKeepRunOrder) {
  struct KV {
    double key;
    std::size_t run;
  };
  auto less = [](const KV& a, const KV& b) { return a.key < b.key; };
  std::vector<std::vector<KV>> runs(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (int i = 0; i < 10; ++i) runs[r].push_back({5.0, r});
  }
  std::vector<std::span<const KV>> spans;
  for (const auto& r : runs) spans.emplace_back(r);
  LoserTree<KV, decltype(less)> tree(std::move(spans), less);
  std::size_t last_run = 0;
  while (!tree.empty()) {
    const KV kv = tree.pop();
    EXPECT_GE(kv.run, last_run);
    last_run = kv.run;
  }
}

struct MultiwayCase {
  std::size_t k;
  std::uint64_t per_run;
  unsigned parts;
  Distribution dist;
};

class MultiwayMergeProperty : public ::testing::TestWithParam<MultiwayCase> {};

TEST_P(MultiwayMergeProperty, SequentialMatchesReference) {
  const auto& pc = GetParam();
  const auto runs = make_runs(pc.k, pc.per_run, 21, pc.dist);
  std::vector<double> out(pc.k * pc.per_run);
  multiway_merge_sequential(as_spans(runs), std::span<double>(out));
  EXPECT_EQ(out, reference_merge(runs));
}

TEST_P(MultiwayMergeProperty, ParallelMatchesReference) {
  const auto& pc = GetParam();
  ThreadPool pool(4);
  const auto runs = make_runs(pc.k, pc.per_run, 22, pc.dist);
  std::vector<double> out(pc.k * pc.per_run);
  multiway_merge_parallel(pool, as_spans(runs), std::span<double>(out),
                          std::less<>{}, pc.parts);
  EXPECT_EQ(out, reference_merge(runs));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultiwayMergeProperty,
    ::testing::Values(MultiwayCase{1, 1000, 4, Distribution::kUniform},
                      MultiwayCase{2, 1000, 4, Distribution::kUniform},
                      MultiwayCase{3, 777, 4, Distribution::kUniform},
                      MultiwayCase{4, 2500, 2, Distribution::kUniform},
                      MultiwayCase{7, 501, 4, Distribution::kUniform},
                      MultiwayCase{8, 1000, 4, Distribution::kGaussian},
                      MultiwayCase{16, 250, 4, Distribution::kUniform},
                      MultiwayCase{20, 333, 3, Distribution::kDuplicateHeavy},
                      MultiwayCase{5, 1000, 4, Distribution::kAllEqual},
                      MultiwayCase{32, 100, 4, Distribution::kZipf},
                      MultiwayCase{64, 64, 4, Distribution::kUniform},
                      MultiwayCase{6, 1, 4, Distribution::kUniform},
                      MultiwayCase{12, 0, 4, Distribution::kUniform}));

TEST(MultiwayMerge, UnevenRunSizes) {
  ThreadPool pool(4);
  std::vector<std::vector<double>> runs;
  const std::uint64_t sizes[] = {0, 1, 1000, 37, 9999, 2};
  std::uint64_t total = 0;
  std::uint64_t seed = 31;
  for (const auto s : sizes) {
    runs.push_back(hs::data::generate(Distribution::kUniform, s, seed++));
    std::sort(runs.back().begin(), runs.back().end());
    total += s;
  }
  std::vector<double> out(total);
  multiway_merge_parallel(pool, as_spans(runs), std::span<double>(out));
  EXPECT_EQ(out, reference_merge(runs));
}

TEST(MultiwayMerge, EmptyInputs) {
  std::vector<double> out;
  multiway_merge_sequential<double>({}, std::span<double>(out));
  EXPECT_TRUE(out.empty());
}

TEST(MultiwayMerge, ParallelPreservesMultiset) {
  ThreadPool pool(4);
  const auto runs = make_runs(10, 5000, 41);
  std::vector<double> out(50000);
  multiway_merge_parallel(pool, as_spans(runs), std::span<double>(out));
  std::vector<double> all;
  for (const auto& r : runs) all.insert(all.end(), r.begin(), r.end());
  EXPECT_EQ(hs::data::multiset_fingerprint(all),
            hs::data::multiset_fingerprint(out));
  EXPECT_TRUE(hs::data::is_sorted_ascending(out));
}

// ---- block-drain fuzz: every element type vs. a stable-sort oracle ---------
//
// The oracle: stable_sort of the runs' concatenation (in run order) is
// exactly the stable k-way merge — equal keys keep (run, position) order.
// Comparing full records (KeyValue64 payloads encode run and position)
// therefore checks both correctness and stability.

template <typename T, typename Compare = std::less<T>>
void expect_drain_matches_oracle(const std::vector<std::vector<T>>& runs,
                                 Compare comp = {}) {
  std::vector<T> oracle;
  std::uint64_t total = 0;
  for (const auto& r : runs) total += r.size();
  oracle.reserve(total);
  for (const auto& r : runs) oracle.insert(oracle.end(), r.begin(), r.end());
  std::stable_sort(oracle.begin(), oracle.end(), comp);

  std::vector<std::span<const T>> spans;
  spans.reserve(runs.size());
  for (const auto& r : runs) spans.emplace_back(r);

  // Full drain (block path for k > 2, std::merge/copy for k <= 2).
  {
    LoserTree<T, Compare> tree(spans, comp);
    std::vector<T> out(total);
    tree.drain(out);
    EXPECT_EQ(out, oracle);
  }
  // Odd-sized drain_block calls interleaved with pop(): the tree state must
  // stay consistent across both consumption styles.
  {
    LoserTree<T, Compare> tree(spans, comp);
    std::vector<T> out(total);
    std::size_t got = 0;
    std::size_t step = 1;
    while (!tree.empty()) {
      if (step % 3 == 0) {
        out[got++] = tree.pop();
      } else {
        const std::size_t want =
            std::min<std::size_t>(step * 7 % 61 + 1, out.size() - got);
        got += tree.drain_block(std::span<T>(out).subspan(got, want));
      }
      ++step;
    }
    EXPECT_EQ(got, total);
    EXPECT_EQ(out, oracle);
  }
}

std::vector<std::vector<hs::KeyValue64>> make_kv_runs(std::size_t k,
                                                      std::uint64_t per_run,
                                                      std::uint64_t seed,
                                                      Distribution dist) {
  std::vector<std::vector<hs::KeyValue64>> runs(k);
  for (std::size_t r = 0; r < k; ++r) {
    const auto keys = hs::data::generate_keys(dist, per_run, seed + r);
    runs[r].resize(per_run);
    for (std::uint64_t i = 0; i < per_run; ++i) {
      runs[r][i] = {keys[i], (static_cast<std::uint64_t>(r) << 32) | i};
    }
    std::stable_sort(runs[r].begin(), runs[r].end());
  }
  return runs;
}

std::vector<std::vector<std::uint64_t>> make_u64_runs(std::size_t k,
                                                      std::uint64_t per_run,
                                                      std::uint64_t seed,
                                                      Distribution dist) {
  std::vector<std::vector<std::uint64_t>> runs(k);
  for (std::size_t r = 0; r < k; ++r) {
    runs[r] = hs::data::generate_keys(dist, per_run, seed + r);
    std::sort(runs[r].begin(), runs[r].end());
  }
  return runs;
}

class BlockDrainFuzz : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BlockDrainFuzz, DoublesMatchOracle) {
  const std::size_t k = GetParam();
  expect_drain_matches_oracle(make_runs(k, 700, 61));
  expect_drain_matches_oracle(make_runs(k, 257, 62, Distribution::kDuplicateHeavy));
}

TEST_P(BlockDrainFuzz, Uint64MatchOracle) {
  const std::size_t k = GetParam();
  expect_drain_matches_oracle(make_u64_runs(k, 700, 63, Distribution::kUniform));
  expect_drain_matches_oracle(
      make_u64_runs(k, 257, 64, Distribution::kDuplicateHeavy));
}

TEST_P(BlockDrainFuzz, KeyValueMatchOracleStably) {
  const std::size_t k = GetParam();
  expect_drain_matches_oracle(make_kv_runs(k, 500, 65, Distribution::kUniform));
  expect_drain_matches_oracle(
      make_kv_runs(k, 211, 66, Distribution::kDuplicateHeavy));
}

TEST_P(BlockDrainFuzz, ExhaustedAndEmptyRuns) {
  const std::size_t k = GetParam();
  // Every third run (from 1) empty — already exhausted at build time — and
  // run 0 shifted strictly below U[0,1) so it exhausts first mid-merge.
  auto runs = make_runs(k, 400, 67);
  for (std::size_t r = 1; r < k; r += 3) runs[r].clear();
  for (auto& v : runs[0]) v -= 10.0;
  expect_drain_matches_oracle(runs);
}

INSTANTIATE_TEST_SUITE_P(KSweep, BlockDrainFuzz,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{3}, std::size_t{8},
                                           std::size_t{33}));

TEST(LoserTreeBlockDrain, AllEqualKeysKeepRunOrder) {
  // 3 runs of identical keys: the drained payloads must be run 0's in
  // position order, then run 1's, then run 2's.
  std::vector<std::vector<hs::KeyValue64>> runs(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::uint64_t i = 0; i < 50; ++i) {
      runs[r].push_back({42, (static_cast<std::uint64_t>(r) << 32) | i});
    }
  }
  expect_drain_matches_oracle(runs);
}

TEST(LoserTreeBlockDrain, DrainAfterPopsUsesCurrentCursors) {
  // drain() mid-merge must pick up from the current cursors, including its
  // internal dual-stream split of the remaining tails.
  const auto runs = make_runs(8, 500, 90);
  const auto oracle = reference_merge(runs);
  LoserTree<double> tree(as_spans(runs));
  std::vector<double> out(oracle.size());
  for (std::size_t i = 0; i < 137; ++i) out[i] = tree.pop();
  tree.drain(std::span<double>(out).subspan(137));
  EXPECT_EQ(out, oracle);
  EXPECT_TRUE(tree.empty());
}

TEST(LoserTreeBlockDrain, ResetReusesAcrossRunSets) {
  LoserTree<double> tree;
  for (std::size_t k : {8u, 3u, 33u, 1u, 8u}) {
    const auto runs = make_runs(k, 300, 70 + k);
    std::vector<std::span<const double>> spans = as_spans(runs);
    tree.reset(spans);
    std::vector<double> out(tree.remaining());
    tree.drain(out);
    EXPECT_EQ(out, reference_merge(runs));
    EXPECT_TRUE(tree.empty());
  }
}

TEST(MultiwayMerge, SteadyStateZeroAllocations) {
  ThreadPool pool(4);
  const auto runs = make_runs(8, 4096, 71);
  std::vector<double> out(8 * 4096);
  MultiwayMergeScratch<double> scratch;
  // Warm-up call sizes every buffer: the scratch's sample/cut/offset vectors,
  // each lane's descriptor arena and tree, and the pool's task ring.
  multiway_merge_parallel(pool, as_spans(runs), std::span<double>(out),
                          std::less<double>{}, 4, &scratch);
  // The runs vector is rebuilt outside the measured window (the parameter is
  // taken by value, so an lvalue call would copy-allocate it inside).
  auto spans = as_spans(runs);
  const std::uint64_t before = g_alloc_count.load();
  multiway_merge_parallel(pool, std::move(spans), std::span<double>(out),
                          std::less<double>{}, 4, &scratch);
  const std::uint64_t after = g_alloc_count.load();
  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(out, reference_merge(runs));
}

TEST(MultiwayMerge, ScratchReuseAcrossChangingShapes) {
  ThreadPool pool(4);
  MultiwayMergeScratch<double> scratch;
  for (const std::size_t k : {2u, 8u, 33u, 5u}) {
    const auto runs = make_runs(k, 1000, 80 + k);
    std::vector<double> out(k * 1000);
    multiway_merge_parallel(pool, as_spans(runs), std::span<double>(out),
                            std::less<double>{}, 0, &scratch);
    EXPECT_EQ(out, reference_merge(runs));
  }
}

TEST(MultiwayMerge, DescendingComparator) {
  ThreadPool pool(4);
  auto greater = std::greater<double>{};
  std::vector<std::vector<double>> runs(4);
  std::uint64_t seed = 51;
  for (auto& r : runs) {
    r = hs::data::generate(Distribution::kUniform, 2000, seed++);
    std::sort(r.begin(), r.end(), greater);
  }
  std::vector<double> out(8000);
  multiway_merge_parallel<double, std::greater<double>>(
      pool, as_spans(runs), std::span<double>(out), greater);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end(), greater));
}

}  // namespace
}  // namespace hs::cpu
