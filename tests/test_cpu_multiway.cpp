// Tests for the loser tree and sequential/parallel multiway merge: run-count
// sweeps, empty and degenerate runs, duplicates, stability, and equivalence
// with a reference merge.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "cpu/loser_tree.h"
#include "cpu/multiway_merge.h"
#include "data/generators.h"
#include "data/verify.h"

namespace hs::cpu {
namespace {

using hs::data::Distribution;

std::vector<std::vector<double>> make_runs(std::size_t k, std::uint64_t per_run,
                                           std::uint64_t seed,
                                           Distribution d = Distribution::kUniform) {
  std::vector<std::vector<double>> runs(k);
  for (std::size_t r = 0; r < k; ++r) {
    runs[r] = hs::data::generate(d, per_run, seed + r);
    std::sort(runs[r].begin(), runs[r].end());
  }
  return runs;
}

std::vector<std::span<const double>> as_spans(
    const std::vector<std::vector<double>>& runs) {
  std::vector<std::span<const double>> s;
  s.reserve(runs.size());
  for (const auto& r : runs) s.emplace_back(r);
  return s;
}

std::vector<double> reference_merge(
    const std::vector<std::vector<double>>& runs) {
  std::vector<double> all;
  for (const auto& r : runs) all.insert(all.end(), r.begin(), r.end());
  std::sort(all.begin(), all.end());
  return all;
}

TEST(LoserTree, SingleRunDrainsInOrder) {
  const std::vector<double> r{1, 2, 3, 4};
  LoserTree<double> tree({std::span<const double>(r)});
  EXPECT_EQ(tree.remaining(), 4u);
  for (const double expect : r) EXPECT_DOUBLE_EQ(tree.pop(), expect);
  EXPECT_TRUE(tree.empty());
}

TEST(LoserTree, TwoRunsInterleave) {
  const std::vector<double> a{1, 3, 5};
  const std::vector<double> b{2, 4, 6};
  LoserTree<double> tree({std::span<const double>(a), std::span<const double>(b)});
  std::vector<double> out(6);
  tree.drain(out);
  EXPECT_EQ(out, (std::vector<double>{1, 2, 3, 4, 5, 6}));
}

TEST(LoserTree, HandlesEmptyRuns) {
  const std::vector<double> a{1, 2};
  const std::vector<double> empty;
  LoserTree<double> tree({std::span<const double>(empty),
                          std::span<const double>(a),
                          std::span<const double>(empty)});
  std::vector<double> out(2);
  tree.drain(out);
  EXPECT_EQ(out, (std::vector<double>{1, 2}));
}

TEST(LoserTree, AllRunsEmpty) {
  const std::vector<double> empty;
  LoserTree<double> tree({std::span<const double>(empty),
                          std::span<const double>(empty)});
  EXPECT_TRUE(tree.empty());
}

TEST(LoserTree, NonPowerOfTwoRunCount) {
  const auto runs = make_runs(5, 100, 11);
  std::vector<double> out(500);
  LoserTree<double> tree(as_spans(runs));
  tree.drain(out);
  EXPECT_EQ(out, reference_merge(runs));
}

TEST(LoserTree, StableTiesKeepRunOrder) {
  struct KV {
    double key;
    std::size_t run;
  };
  auto less = [](const KV& a, const KV& b) { return a.key < b.key; };
  std::vector<std::vector<KV>> runs(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (int i = 0; i < 10; ++i) runs[r].push_back({5.0, r});
  }
  std::vector<std::span<const KV>> spans;
  for (const auto& r : runs) spans.emplace_back(r);
  LoserTree<KV, decltype(less)> tree(std::move(spans), less);
  std::size_t last_run = 0;
  while (!tree.empty()) {
    const KV kv = tree.pop();
    EXPECT_GE(kv.run, last_run);
    last_run = kv.run;
  }
}

struct MultiwayCase {
  std::size_t k;
  std::uint64_t per_run;
  unsigned parts;
  Distribution dist;
};

class MultiwayMergeProperty : public ::testing::TestWithParam<MultiwayCase> {};

TEST_P(MultiwayMergeProperty, SequentialMatchesReference) {
  const auto& pc = GetParam();
  const auto runs = make_runs(pc.k, pc.per_run, 21, pc.dist);
  std::vector<double> out(pc.k * pc.per_run);
  multiway_merge_sequential(as_spans(runs), std::span<double>(out));
  EXPECT_EQ(out, reference_merge(runs));
}

TEST_P(MultiwayMergeProperty, ParallelMatchesReference) {
  const auto& pc = GetParam();
  ThreadPool pool(4);
  const auto runs = make_runs(pc.k, pc.per_run, 22, pc.dist);
  std::vector<double> out(pc.k * pc.per_run);
  multiway_merge_parallel(pool, as_spans(runs), std::span<double>(out),
                          std::less<>{}, pc.parts);
  EXPECT_EQ(out, reference_merge(runs));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultiwayMergeProperty,
    ::testing::Values(MultiwayCase{1, 1000, 4, Distribution::kUniform},
                      MultiwayCase{2, 1000, 4, Distribution::kUniform},
                      MultiwayCase{3, 777, 4, Distribution::kUniform},
                      MultiwayCase{4, 2500, 2, Distribution::kUniform},
                      MultiwayCase{7, 501, 4, Distribution::kUniform},
                      MultiwayCase{8, 1000, 4, Distribution::kGaussian},
                      MultiwayCase{16, 250, 4, Distribution::kUniform},
                      MultiwayCase{20, 333, 3, Distribution::kDuplicateHeavy},
                      MultiwayCase{5, 1000, 4, Distribution::kAllEqual},
                      MultiwayCase{32, 100, 4, Distribution::kZipf},
                      MultiwayCase{64, 64, 4, Distribution::kUniform},
                      MultiwayCase{6, 1, 4, Distribution::kUniform},
                      MultiwayCase{12, 0, 4, Distribution::kUniform}));

TEST(MultiwayMerge, UnevenRunSizes) {
  ThreadPool pool(4);
  std::vector<std::vector<double>> runs;
  const std::uint64_t sizes[] = {0, 1, 1000, 37, 9999, 2};
  std::uint64_t total = 0;
  std::uint64_t seed = 31;
  for (const auto s : sizes) {
    runs.push_back(hs::data::generate(Distribution::kUniform, s, seed++));
    std::sort(runs.back().begin(), runs.back().end());
    total += s;
  }
  std::vector<double> out(total);
  multiway_merge_parallel(pool, as_spans(runs), std::span<double>(out));
  EXPECT_EQ(out, reference_merge(runs));
}

TEST(MultiwayMerge, EmptyInputs) {
  std::vector<double> out;
  multiway_merge_sequential<double>({}, std::span<double>(out));
  EXPECT_TRUE(out.empty());
}

TEST(MultiwayMerge, ParallelPreservesMultiset) {
  ThreadPool pool(4);
  const auto runs = make_runs(10, 5000, 41);
  std::vector<double> out(50000);
  multiway_merge_parallel(pool, as_spans(runs), std::span<double>(out));
  std::vector<double> all;
  for (const auto& r : runs) all.insert(all.end(), r.begin(), r.end());
  EXPECT_EQ(hs::data::multiset_fingerprint(all),
            hs::data::multiset_fingerprint(out));
  EXPECT_TRUE(hs::data::is_sorted_ascending(out));
}

TEST(MultiwayMerge, DescendingComparator) {
  ThreadPool pool(4);
  auto greater = std::greater<double>{};
  std::vector<std::vector<double>> runs(4);
  std::uint64_t seed = 51;
  for (auto& r : runs) {
    r = hs::data::generate(Distribution::kUniform, 2000, seed++);
    std::sort(r.begin(), r.end(), greater);
  }
  std::vector<double> out(8000);
  multiway_merge_parallel<double, std::greater<double>>(
      pool, as_spans(runs), std::span<double>(out), greater);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end(), greater));
}

}  // namespace
}  // namespace hs::cpu
