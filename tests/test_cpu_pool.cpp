// Tests for the thread pool, parallel_for, and parallel_memcpy.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "cpu/parallel_for.h"
#include "cpu/parallel_memcpy.h"
#include "cpu/thread_pool.h"
#include "data/generators.h"

namespace hs::cpu {
namespace {

TEST(ThreadPool, SizeIncludesCaller) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  ThreadPool one(1);
  EXPECT_EQ(one.size(), 1u);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> hits{0};
  WaitGroup wg(8);
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      hits.fetch_add(1);
      wg.done();
    });
  }
  wg.wait();
  EXPECT_EQ(hits.load(), 8);
}

TEST(ThreadPool, SizeOnePoolRunsInline) {
  ThreadPool pool(1);
  bool ran = false;
  pool.submit([&ran] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  parallel_for_blocked(pool, 0, hits.size(),
                       [&](std::uint64_t lo, std::uint64_t hi) {
                         for (std::uint64_t i = lo; i < hi; ++i) {
                           hits[i].fetch_add(1);
                         }
                       });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  int calls = 0;
  parallel_for_blocked(pool, 5, 5,
                       [&](std::uint64_t, std::uint64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, RespectsMaxParts) {
  ThreadPool pool(4);
  std::atomic<int> chunks{0};
  parallel_for_blocked(
      pool, 0, 1000,
      [&](std::uint64_t, std::uint64_t) { chunks.fetch_add(1); }, 2);
  EXPECT_LE(chunks.load(), 2);
}

TEST(ParallelFor, FewerItemsThanLanes) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> total{0};
  parallel_for_blocked(pool, 0, 3, [&](std::uint64_t lo, std::uint64_t hi) {
    total.fetch_add(hi - lo);
  });
  EXPECT_EQ(total.load(), 3u);
}

TEST(ParallelRegion, AllLanesRun) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> lane_hits(4);
  parallel_region(pool, 4, [&](unsigned lane, unsigned lanes) {
    EXPECT_EQ(lanes, 4u);
    lane_hits[lane].fetch_add(1);
  });
  for (const auto& h : lane_hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelRegion, ClampsToPoolSize) {
  ThreadPool pool(2);
  std::atomic<unsigned> max_lanes{0};
  parallel_region(pool, 16, [&](unsigned, unsigned lanes) {
    max_lanes.store(lanes);
  });
  EXPECT_EQ(max_lanes.load(), 2u);
}

TEST(ParallelMemcpy, SmallCopyFallsBackToMemcpy) {
  ThreadPool pool(4);
  const std::vector<std::uint8_t> src(100, 0xAB);
  std::vector<std::uint8_t> dst(100, 0);
  parallel_memcpy(pool, dst.data(), src.data(), src.size());
  EXPECT_EQ(dst, src);
}

TEST(ParallelMemcpy, LargeCopyIsExact) {
  ThreadPool pool(4);
  const auto src = hs::data::generate_keys(hs::data::Distribution::kUniform,
                                           1 << 20, 91);
  std::vector<std::uint64_t> dst(src.size());
  parallel_memcpy(pool, dst.data(), src.data(),
                  src.size() * sizeof(std::uint64_t));
  EXPECT_EQ(dst, src);
}

TEST(ParallelMemcpy, OddByteCount) {
  ThreadPool pool(4);
  std::vector<std::uint8_t> src(1048577);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::uint8_t>(i * 31u);
  }
  std::vector<std::uint8_t> dst(src.size(), 0);
  parallel_memcpy(pool, dst.data(), src.data(), src.size());
  EXPECT_EQ(dst, src);
}

TEST(ParallelMemcpy, PartsParameterLimitsFanout) {
  ThreadPool pool(4);
  std::vector<std::uint8_t> src(1 << 20, 0x5A), dst(1 << 20, 0);
  parallel_memcpy(pool, dst.data(), src.data(), src.size(), 2);
  EXPECT_EQ(dst, src);
}

TEST(ThreadPool, SubmitRawRunsAllCopies) {
  ThreadPool pool(4);
  struct Ctx {
    std::atomic<int> hits{0};
    WaitGroup wg;
  } ctx;
  ctx.wg.reset(16);
  pool.submit_raw(
      [](void* p) {
        auto& c = *static_cast<Ctx*>(p);
        c.hits.fetch_add(1);
        c.wg.done();
      },
      &ctx, 16);
  ctx.wg.wait();
  EXPECT_EQ(ctx.hits.load(), 16);
}

TEST(ThreadPool, SubmitRawInlineOnSizeOnePool) {
  ThreadPool pool(1);
  int hits = 0;
  pool.submit_raw([](void* p) { ++*static_cast<int*>(p); }, &hits, 3);
  EXPECT_EQ(hits, 3);
}

TEST(WaitGroup, ResetAllowsReuse) {
  ThreadPool pool(4);
  WaitGroup wg;
  std::atomic<int> done{0};
  for (int round = 0; round < 3; ++round) {
    wg.reset(4);
    for (int i = 0; i < 4; ++i) {
      pool.submit([&] {
        done.fetch_add(1);
        wg.done();
      });
    }
    wg.wait();
    EXPECT_EQ(done.load(), 4 * (round + 1));
  }
}

TEST(WaitGroup, WaitsForAll) {
  ThreadPool pool(4);
  WaitGroup wg(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 3; ++i) {
    pool.submit([&] {
      done.fetch_add(1);
      wg.done();
    });
  }
  wg.wait();
  EXPECT_EQ(done.load(), 3);
}

}  // namespace
}  // namespace hs::cpu
