// Engine-level tests for the bandwidth-proportional radix sort: the
// double<->key bijection on every IEEE-754 edge case, trivial-pass skipping
// (constant, single-varying-byte, narrow-range and duplicate-heavy inputs),
// key/value stability when passes are skipped, the forced streaming-scatter
// path, and an operator-new counter proving warm-scratch steady state
// performs zero heap allocations for every element type, sequential and
// parallel.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>
#include <span>
#include <vector>

#include "common/key_value.h"
#include "cpu/radix_sort.h"
#include "cpu/thread_pool.h"
#include "data/generators.h"

// Global allocation counter: every replaceable operator new in this binary
// bumps it, including the cache-line-aligned variants RadixSortScratch's
// arenas go through and calls made from pool worker threads.
std::atomic<std::uint64_t> g_alloc_count{0};

// GCC's -Wmismatched-new-delete false-positives when it inlines a replaced
// operator new (it sees malloc feed free through the replacement pair).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  ::operator delete(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  ::operator delete(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#pragma GCC diagnostic pop

namespace hs::cpu {
namespace {

using hs::data::Distribution;

double from_bits(std::uint64_t bits) { return std::bit_cast<double>(bits); }
std::uint64_t to_bits(double d) { return std::bit_cast<std::uint64_t>(d); }

// Restores real LLC detection even if a test body exits early.
struct LlcOverrideGuard {
  explicit LlcOverrideGuard(std::size_t bytes) {
    detail::set_radix_llc_for_testing(bytes);
  }
  ~LlcOverrideGuard() { detail::set_radix_llc_for_testing(0); }
};

TEST(DoubleKeyBijection, EdgeCaseRoundTripIsBitExact) {
  const std::uint64_t patterns[] = {
      to_bits(0.0),
      to_bits(-0.0),
      to_bits(std::numeric_limits<double>::infinity()),
      to_bits(-std::numeric_limits<double>::infinity()),
      to_bits(std::numeric_limits<double>::denorm_min()),
      to_bits(-std::numeric_limits<double>::denorm_min()),
      to_bits(std::numeric_limits<double>::min()),
      to_bits(std::numeric_limits<double>::max()),
      to_bits(std::numeric_limits<double>::lowest()),
      0x7ff8000000000000ull,  // quiet NaN, zero payload
      0x7ff8000000000001ull,  // quiet NaN, small payload
      0x7fffffffffffffffull,  // quiet NaN, max payload
      0x7ff0000000000001ull,  // signalling NaN bit pattern
      0xfff8000000000123ull,  // negative NaN with payload
      to_bits(1.0),
      to_bits(-1.0),
  };
  for (const std::uint64_t bits : patterns) {
    const double d = from_bits(bits);
    const double back = radix_key_to_double(double_to_radix_key(d));
    EXPECT_EQ(to_bits(back), bits) << "pattern 0x" << std::hex << bits;
  }
}

TEST(DoubleKeyBijection, TotalOrderAcrossEdgeCases) {
  // IEEE-754 total order the bijection must induce: negative NaN below
  // everything (all bits flipped), then the negative reals from -inf up
  // through the negative denormals to -0.0, then +0.0 and the positive line,
  // then positive NaNs by ascending payload above +inf.
  const double ordered[] = {
      from_bits(0xfff8000000000123ull),  // negative NaN
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::lowest(),
      -1.0,
      -std::numeric_limits<double>::min(),
      -std::numeric_limits<double>::denorm_min(),
      -0.0,
      0.0,
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min(),
      1.0,
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::infinity(),
      from_bits(0x7ff8000000000000ull),  // quiet NaN, zero payload
      from_bits(0x7ff8000000000001ull),  // quiet NaN, small payload
      from_bits(0x7fffffffffffffffull),  // quiet NaN, max payload
  };
  for (std::size_t i = 1; i < std::size(ordered); ++i) {
    EXPECT_LT(double_to_radix_key(ordered[i - 1]),
              double_to_radix_key(ordered[i]))
        << "at position " << i;
  }
}

TEST(RadixEngine, ConstantInputSkipsEveryPass) {
  std::vector<std::uint64_t> v(10000, 0xdeadbeefcafef00dull);
  const auto expect = v;
  RadixSortScratch scratch;
  radix_sort(std::span<std::uint64_t>(v), &scratch);
  EXPECT_EQ(scratch.executed_passes, 0u);
  EXPECT_EQ(v, expect);
}

TEST(RadixEngine, SingleVaryingByteExecutesOnePass) {
  const auto raw =
      hs::data::generate_keys(Distribution::kUniform, 20000, 31);
  std::vector<std::uint64_t> v(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    v[i] = 0x1122334400667788ull | ((raw[i] & 0xffu) << 24);
  }
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  RadixSortScratch scratch;
  radix_sort(std::span<std::uint64_t>(v), &scratch);
  EXPECT_EQ(scratch.executed_passes, 1u);
  EXPECT_EQ(v, expect);
}

TEST(RadixEngine, NarrowRangeSkipsHighPasses) {
  auto v = hs::data::generate_keys(Distribution::kUniform, 30000, 32);
  for (auto& k : v) k &= 0xffffu;
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  RadixSortScratch scratch;
  radix_sort(std::span<std::uint64_t>(v), &scratch);
  EXPECT_LE(scratch.executed_passes, 2u);
  EXPECT_EQ(v, expect);
  // The call-local arena path (no scratch) must agree.
  auto w = expect;
  std::reverse(w.begin(), w.end());
  radix_sort(std::span<std::uint64_t>(w));
  EXPECT_EQ(w, expect);
}

TEST(RadixEngine, DuplicateHeavyDoublesSkipExponentPasses) {
  auto v = hs::data::generate(Distribution::kDuplicateHeavy, 30000, 33);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  RadixSortScratch scratch;
  radix_sort(std::span<double>(v), &scratch);
  EXPECT_LT(scratch.executed_passes, kRadixPasses);
  EXPECT_EQ(v, expect);
}

TEST(RadixEngine, KeyValueStableUnderSkippedPasses) {
  // Only byte 3 of the key varies, over four values: seven of eight passes
  // skip, and the one executed counting scatter must still keep equal keys
  // in arrival order.
  const auto raw =
      hs::data::generate_keys(Distribution::kUniform, 20000, 34);
  std::vector<KeyValue64> v(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    v[i] = {0xaa00bb00cc00dd00ull | ((raw[i] & 0x3u) << 24), i};
  }
  auto expect = v;
  std::stable_sort(expect.begin(), expect.end());
  RadixSortScratch scratch;
  radix_sort(std::span<KeyValue64>(v), &scratch);
  EXPECT_EQ(scratch.executed_passes, 1u);
  EXPECT_EQ(v, expect);  // values match exactly only if the sort is stable
}

TEST(RadixEngine, ForcedStreamingScatterPathSorts) {
  // Pretend the LLC is 4 KiB so every working set takes the write-combining
  // streaming-store scatter path regardless of the host's real cache.
  LlcOverrideGuard guard(4096);
  auto keys = hs::data::generate_keys(Distribution::kUniform, 50000, 35);
  auto keys_expect = keys;
  std::sort(keys_expect.begin(), keys_expect.end());
  RadixSortScratch scratch;
  radix_sort(std::span<std::uint64_t>(keys), &scratch);
  EXPECT_EQ(keys, keys_expect);

  auto vals = hs::data::generate(Distribution::kUniform, 50000, 36);
  auto vals_expect = vals;
  std::sort(vals_expect.begin(), vals_expect.end());
  radix_sort(std::span<double>(vals), &scratch);
  EXPECT_EQ(vals, vals_expect);

  const auto raw = hs::data::generate_keys(Distribution::kUniform, 50000, 37);
  std::vector<KeyValue64> kv(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) kv[i] = {raw[i] & 0xffffu, i};
  auto kv_expect = kv;
  std::stable_sort(kv_expect.begin(), kv_expect.end());
  radix_sort(std::span<KeyValue64>(kv), &scratch);
  EXPECT_EQ(kv, kv_expect);
}

TEST(RadixEngine, ScratchReusedAcrossTypesAndSizes) {
  RadixSortScratch scratch;
  for (const std::uint64_t n : {40000u, 10000u, 25000u}) {
    auto keys = hs::data::generate_keys(Distribution::kUniform, n, 40 + n);
    auto expect = keys;
    std::sort(expect.begin(), expect.end());
    radix_sort(std::span<std::uint64_t>(keys), &scratch);
    EXPECT_EQ(keys, expect);

    const auto raw = hs::data::generate_keys(Distribution::kDuplicateHeavy, n,
                                             41 + n);
    std::vector<KeyValue64> kv(n);
    for (std::uint64_t i = 0; i < n; ++i) kv[i] = {raw[i], i};
    auto kv_expect = kv;
    std::stable_sort(kv_expect.begin(), kv_expect.end());
    radix_sort(std::span<KeyValue64>(kv), &scratch);
    EXPECT_EQ(kv, kv_expect);
  }
}

TEST(RadixEngine, SteadyStateZeroAllocationsSequential) {
  constexpr std::uint64_t kN = 30000;
  auto keys = hs::data::generate_keys(Distribution::kUniform, kN, 50);
  auto vals = hs::data::generate(Distribution::kUniform, kN, 51);
  std::vector<KeyValue64> kv(kN);
  for (std::uint64_t i = 0; i < kN; ++i) kv[i] = {keys[i], i};
  const auto keys0 = keys;
  const auto vals0 = vals;
  const auto kv0 = kv;

  RadixSortScratch scratch;
  // Warm-up round sizes every arena; kv64 is the widest record, so later
  // u64/f64 sorts of the same n fit its tmp buffer.
  radix_sort(std::span<KeyValue64>(kv), &scratch);
  radix_sort(std::span<std::uint64_t>(keys), &scratch);
  radix_sort(std::span<double>(vals), &scratch);

  keys = keys0;
  vals = vals0;
  kv = kv0;
  const std::uint64_t before = g_alloc_count.load();
  radix_sort(std::span<std::uint64_t>(keys), &scratch);
  radix_sort(std::span<double>(vals), &scratch);
  radix_sort(std::span<KeyValue64>(kv), &scratch);
  const std::uint64_t after = g_alloc_count.load();
  EXPECT_EQ(after - before, 0u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_TRUE(std::is_sorted(vals.begin(), vals.end()));
  EXPECT_TRUE(std::is_sorted(kv.begin(), kv.end()));
}

TEST(RadixEngine, SteadyStateZeroAllocationsParallel) {
  constexpr std::uint64_t kN = 30000;
  ThreadPool pool(4);
  auto keys = hs::data::generate_keys(Distribution::kUniform, kN, 52);
  std::vector<KeyValue64> kv(kN);
  for (std::uint64_t i = 0; i < kN; ++i) kv[i] = {keys[i], i};
  const auto keys0 = keys;
  const auto kv0 = kv;

  RadixSortScratch scratch;
  radix_sort_parallel(pool, std::span<KeyValue64>(kv), 0, &scratch);
  radix_sort_parallel(pool, std::span<std::uint64_t>(keys), 0, &scratch);

  keys = keys0;
  kv = kv0;
  const std::uint64_t before = g_alloc_count.load();
  radix_sort_parallel(pool, std::span<std::uint64_t>(keys), 0, &scratch);
  radix_sort_parallel(pool, std::span<KeyValue64>(kv), 0, &scratch);
  const std::uint64_t after = g_alloc_count.load();
  EXPECT_EQ(after - before, 0u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_TRUE(std::is_sorted(kv.begin(), kv.end()));
}

}  // namespace
}  // namespace hs::cpu
