// Tests for parallel_sort and the radix sorts: equivalence with std::sort
// across distributions, sizes and thread counts; IEEE-754 edge cases for the
// double<->key bijection; parallel/sequential agreement.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "cpu/parallel_sort.h"
#include "cpu/radix_sort.h"
#include "data/generators.h"
#include "data/verify.h"

namespace hs::cpu {
namespace {

using hs::data::Distribution;

struct SortCase {
  Distribution dist;
  std::uint64_t n;
  unsigned parts;
};

class ParallelSortProperty : public ::testing::TestWithParam<SortCase> {};

TEST_P(ParallelSortProperty, MatchesStdSort) {
  const auto& pc = GetParam();
  ThreadPool pool(4);
  auto v = hs::data::generate(pc.dist, pc.n, 61);
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  parallel_sort<double>(pool, v, std::less<>{}, pc.parts);
  EXPECT_EQ(v, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelSortProperty,
    ::testing::Values(SortCase{Distribution::kUniform, 0, 4},
                      SortCase{Distribution::kUniform, 1, 4},
                      SortCase{Distribution::kUniform, 2, 4},
                      SortCase{Distribution::kUniform, 1000, 1},
                      SortCase{Distribution::kUniform, 100000, 2},
                      SortCase{Distribution::kUniform, 100000, 4},
                      SortCase{Distribution::kUniform, 131072, 4},
                      SortCase{Distribution::kGaussian, 50000, 4},
                      SortCase{Distribution::kSorted, 50000, 4},
                      SortCase{Distribution::kReverseSorted, 50000, 4},
                      SortCase{Distribution::kNearlySorted, 50000, 4},
                      SortCase{Distribution::kDuplicateHeavy, 50000, 4},
                      SortCase{Distribution::kAllEqual, 50000, 4},
                      SortCase{Distribution::kZipf, 50000, 4},
                      SortCase{Distribution::kUniform, 49999, 3}));

TEST(ParallelSort, CustomComparatorDescending) {
  ThreadPool pool(4);
  auto v = hs::data::generate(Distribution::kUniform, 30000, 62);
  parallel_sort<double>(pool, v, std::greater<>{});
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<>{}));
}

TEST(ParallelSort, PreservesMultiset) {
  ThreadPool pool(4);
  auto v = hs::data::generate(Distribution::kUniform, 123457, 63);
  const auto fp = hs::data::multiset_fingerprint(v);
  parallel_sort<double>(pool, v);
  EXPECT_EQ(hs::data::multiset_fingerprint(v), fp);
  EXPECT_TRUE(hs::data::is_sorted_ascending(v));
}

TEST(ParallelSort, SinglethreadPoolDegradesGracefully) {
  ThreadPool pool(1);
  auto v = hs::data::generate(Distribution::kUniform, 20000, 64);
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  parallel_sort<double>(pool, v);
  EXPECT_EQ(v, expected);
}

// --- radix key bijection ----------------------------------------------------

TEST(RadixKey, RoundTripsExactly) {
  const double values[] = {0.0,      -0.0,  1.0,   -1.0, 1e-300, -1e300,
                           3.141592, -2e-9, 1e308, -1e-308};
  for (const double d : values) {
    EXPECT_EQ(radix_key_to_double(double_to_radix_key(d)), d)
        << "value " << d;
  }
}

TEST(RadixKey, PreservesOrder) {
  const double sorted_values[] = {
      -std::numeric_limits<double>::infinity(), -1e300, -2.5, -1.0, -1e-300,
      -0.0, 0.0, 1e-300, 1.0, 2.5, 1e300,
      std::numeric_limits<double>::infinity()};
  for (std::size_t i = 0; i + 1 < std::size(sorted_values); ++i) {
    // -0.0 and 0.0 compare equal as doubles but have distinct bit patterns;
    // key order puts -0.0 first, which is consistent with a weak ordering.
    EXPECT_LE(double_to_radix_key(sorted_values[i]),
              double_to_radix_key(sorted_values[i + 1]))
        << "pair " << i;
  }
}

TEST(RadixKey, NegativeZeroBeforePositiveZero) {
  EXPECT_LT(double_to_radix_key(-0.0), double_to_radix_key(0.0));
}

TEST(RadixKey, NanSortsAboveInfinity) {
  const auto nan_key =
      double_to_radix_key(std::numeric_limits<double>::quiet_NaN());
  const auto inf_key =
      double_to_radix_key(std::numeric_limits<double>::infinity());
  EXPECT_GT(nan_key, inf_key);
}

// --- radix sorting ----------------------------------------------------------

class RadixSortProperty : public ::testing::TestWithParam<SortCase> {};

TEST_P(RadixSortProperty, DoublesMatchStdSort) {
  const auto& pc = GetParam();
  auto v = hs::data::generate(pc.dist, pc.n, 71);
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  radix_sort(std::span<double>(v));
  EXPECT_EQ(v, expected);
}

TEST_P(RadixSortProperty, KeysMatchStdSort) {
  const auto& pc = GetParam();
  auto v = hs::data::generate_keys(pc.dist, pc.n, 72);
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  radix_sort(std::span<std::uint64_t>(v));
  EXPECT_EQ(v, expected);
}

TEST_P(RadixSortProperty, ParallelMatchesSequential) {
  const auto& pc = GetParam();
  ThreadPool pool(4);
  auto v = hs::data::generate(pc.dist, pc.n, 73);
  auto w = v;
  radix_sort(std::span<double>(v));
  radix_sort_parallel(pool, std::span<double>(w), pc.parts);
  EXPECT_EQ(v, w);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RadixSortProperty,
    ::testing::Values(SortCase{Distribution::kUniform, 0, 4},
                      SortCase{Distribution::kUniform, 1, 4},
                      SortCase{Distribution::kUniform, 255, 4},
                      SortCase{Distribution::kUniform, 256, 4},
                      SortCase{Distribution::kUniform, 65536, 4},
                      SortCase{Distribution::kUniform, 100001, 4},
                      SortCase{Distribution::kGaussian, 65537, 4},
                      SortCase{Distribution::kSorted, 70000, 2},
                      SortCase{Distribution::kReverseSorted, 70000, 4},
                      SortCase{Distribution::kDuplicateHeavy, 70000, 4},
                      SortCase{Distribution::kAllEqual, 70000, 4},
                      SortCase{Distribution::kZipf, 70000, 3}));

TEST(RadixSort, NegativesAndZerosOrdered) {
  std::vector<double> v{3.0, -0.0, -7.5, 0.0, 2.5, -1e-12, 1e-12, -3.0};
  radix_sort(std::span<double>(v));
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  EXPECT_DOUBLE_EQ(v.front(), -7.5);
  EXPECT_DOUBLE_EQ(v.back(), 3.0);
  // Bit-pattern order within the zero tie: -0.0 then +0.0.
  EXPECT_TRUE(std::signbit(v[3]));
  EXPECT_FALSE(std::signbit(v[4]));
}

TEST(RadixSort, InfinitiesAtExtremes) {
  std::vector<double> v{1.0, std::numeric_limits<double>::infinity(), -2.0,
                        -std::numeric_limits<double>::infinity(), 0.0};
  radix_sort(std::span<double>(v));
  EXPECT_EQ(v.front(), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(v.back(), std::numeric_limits<double>::infinity());
}

TEST(RadixSort, NansGroupAtTop) {
  std::vector<double> v{1.0, std::numeric_limits<double>::quiet_NaN(), -2.0,
                        std::numeric_limits<double>::infinity()};
  radix_sort(std::span<double>(v));
  EXPECT_DOUBLE_EQ(v[0], -2.0);
  EXPECT_DOUBLE_EQ(v[1], 1.0);
  EXPECT_EQ(v[2], std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(v[3]));
}

TEST(RadixSortParallel, LargeInputPreservesMultiset) {
  ThreadPool pool(4);
  auto v = hs::data::generate(Distribution::kUniform, 300000, 81);
  const auto fp = hs::data::multiset_fingerprint(v);
  radix_sort_parallel(pool, std::span<double>(v));
  EXPECT_TRUE(hs::data::is_sorted_ascending(v));
  EXPECT_EQ(hs::data::multiset_fingerprint(v), fp);
}

TEST(RadixSortParallel, KeysAcrossFullValueRange) {
  ThreadPool pool(4);
  auto v = hs::data::generate_keys(Distribution::kUniform, 200000, 82);
  v.push_back(0);
  v.push_back(~0ull);
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  radix_sort_parallel(pool, std::span<std::uint64_t>(v));
  EXPECT_EQ(v, expected);
}

}  // namespace
}  // namespace hs::cpu
