// Tests for the additional sorting/merging families of the paper's related
// work (Section II-A): samplesort (distribution sort), parallel quicksort,
// and the rotation-based in-place merge of the Section III-C trade-off.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cpu/inplace_merge.h"
#include "cpu/parallel_quicksort.h"
#include "cpu/sample_sort.h"
#include "data/generators.h"
#include "data/verify.h"

namespace hs::cpu {
namespace {

using hs::data::Distribution;

struct FamilyCase {
  Distribution dist;
  std::uint64_t n;
};

class SortFamilyProperty : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(SortFamilyProperty, SampleSortMatchesStdSort) {
  const auto& pc = GetParam();
  ThreadPool pool(4);
  auto v = hs::data::generate(pc.dist, pc.n, 101);
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  sample_sort<double>(pool, v);
  EXPECT_EQ(v, expected);
}

TEST_P(SortFamilyProperty, ParallelQuicksortMatchesStdSort) {
  const auto& pc = GetParam();
  ThreadPool pool(4);
  auto v = hs::data::generate(pc.dist, pc.n, 102);
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  parallel_quicksort<double>(pool, v);
  EXPECT_EQ(v, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SortFamilyProperty,
    ::testing::Values(FamilyCase{Distribution::kUniform, 0},
                      FamilyCase{Distribution::kUniform, 1},
                      FamilyCase{Distribution::kUniform, 2},
                      FamilyCase{Distribution::kUniform, 8191},
                      FamilyCase{Distribution::kUniform, 100000},
                      FamilyCase{Distribution::kUniform, 100001},
                      FamilyCase{Distribution::kGaussian, 60000},
                      FamilyCase{Distribution::kSorted, 60000},
                      FamilyCase{Distribution::kReverseSorted, 60000},
                      FamilyCase{Distribution::kNearlySorted, 60000},
                      FamilyCase{Distribution::kDuplicateHeavy, 60000},
                      FamilyCase{Distribution::kAllEqual, 60000},
                      FamilyCase{Distribution::kZipf, 60000}));

TEST(SampleSort, DescendingComparator) {
  ThreadPool pool(4);
  auto v = hs::data::generate(Distribution::kUniform, 50000, 103);
  sample_sort<double>(pool, v, std::greater<>{});
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<>{}));
}

TEST(SampleSort, PreservesMultiset) {
  ThreadPool pool(4);
  auto v = hs::data::generate(Distribution::kZipf, 123123, 104);
  const auto fp = hs::data::multiset_fingerprint(v);
  sample_sort<double>(pool, v);
  EXPECT_EQ(hs::data::multiset_fingerprint(v), fp);
  EXPECT_TRUE(hs::data::is_sorted_ascending(v));
}

TEST(SampleSort, PartsParameterRespected) {
  ThreadPool pool(4);
  auto v = hs::data::generate(Distribution::kUniform, 50000, 105);
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  sample_sort<double>(pool, v, std::less<>{}, 2);
  EXPECT_EQ(v, expected);
}

TEST(ParallelQuicksort, DuplicateFloodUsesThreeWayPartition) {
  // All-equal inputs are quadratic for two-way quicksort; three-way must
  // finish instantly (single partition pass).
  ThreadPool pool(4);
  std::vector<double> v(200000, 3.25);
  parallel_quicksort<double>(pool, v);
  EXPECT_TRUE(hs::data::is_sorted_ascending(v));
}

TEST(ParallelQuicksort, DescendingComparator) {
  ThreadPool pool(4);
  auto v = hs::data::generate(Distribution::kUniform, 60000, 106);
  parallel_quicksort<double>(pool, v, std::greater<>{});
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<>{}));
}

TEST(ParallelQuicksort, PreservesMultiset) {
  ThreadPool pool(4);
  auto v = hs::data::generate(Distribution::kGaussian, 98765, 107);
  const auto fp = hs::data::multiset_fingerprint(v);
  parallel_quicksort<double>(pool, v);
  EXPECT_EQ(hs::data::multiset_fingerprint(v), fp);
  EXPECT_TRUE(hs::data::is_sorted_ascending(v));
}

TEST(ParallelQuicksort, SinglethreadPool) {
  ThreadPool pool(1);
  auto v = hs::data::generate(Distribution::kUniform, 40000, 108);
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  parallel_quicksort<double>(pool, v);
  EXPECT_EQ(v, expected);
}

// --- in-place merge -----------------------------------------------------------

std::vector<double> two_runs(std::uint64_t n1, std::uint64_t n2,
                             std::uint64_t seed) {
  auto a = hs::data::generate(Distribution::kUniform, n1, seed);
  auto b = hs::data::generate(Distribution::kUniform, n2, seed + 1);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

struct InplaceCase {
  std::uint64_t n1;
  std::uint64_t n2;
};

class InplaceMergeProperty : public ::testing::TestWithParam<InplaceCase> {};

TEST_P(InplaceMergeProperty, MatchesBufferedMerge) {
  const auto& pc = GetParam();
  auto v = two_runs(pc.n1, pc.n2, 201);
  auto expected = v;
  std::inplace_merge(expected.begin(),
                     expected.begin() + static_cast<std::ptrdiff_t>(pc.n1),
                     expected.end());
  inplace_merge_rotation<double>(v, pc.n1);
  EXPECT_EQ(v, expected);
}

INSTANTIATE_TEST_SUITE_P(Sweep, InplaceMergeProperty,
                         ::testing::Values(InplaceCase{0, 0},
                                           InplaceCase{0, 100},
                                           InplaceCase{100, 0},
                                           InplaceCase{1, 1},
                                           InplaceCase{1, 1000},
                                           InplaceCase{1000, 1},
                                           InplaceCase{1000, 1000},
                                           InplaceCase{12345, 6789},
                                           InplaceCase{2, 3},
                                           InplaceCase{65536, 65536}));

TEST(InplaceMerge, HeavyDuplicates) {
  std::vector<double> v;
  for (int i = 0; i < 5000; ++i) v.push_back(i % 4);
  std::sort(v.begin(), v.begin() + 2500);
  std::sort(v.begin() + 2500, v.end());
  auto expected = v;
  std::inplace_merge(expected.begin(), expected.begin() + 2500, expected.end());
  inplace_merge_rotation<double>(v, 2500);
  EXPECT_EQ(v, expected);
}

TEST(InplaceMerge, AlreadyMergedIsNoop) {
  std::vector<double> v{1, 2, 3, 4, 5, 6};
  inplace_merge_rotation<double>(v, 3);
  EXPECT_EQ(v, (std::vector<double>{1, 2, 3, 4, 5, 6}));
}

TEST(InplaceMerge, FullyInterleaved) {
  std::vector<double> v{1, 3, 5, 7, 2, 4, 6, 8};
  inplace_merge_rotation<double>(v, 4);
  EXPECT_EQ(v, (std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(InplaceMerge, SecondRunAllSmaller) {
  std::vector<double> v{5, 6, 7, 1, 2, 3};
  inplace_merge_rotation<double>(v, 3);
  EXPECT_EQ(v, (std::vector<double>{1, 2, 3, 5, 6, 7}));
}

}  // namespace
}  // namespace hs::cpu
