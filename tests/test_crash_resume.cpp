// Crash-safety battery for the external sort (docs/fault_model.md):
//   * the job journal round-trips and rejects torn/tampered manifests;
//   * a job killed after any prefix of runs resumes to output byte-identical
//     to an uninterrupted run (the SIGKILL-equivalence contract of
//     SimulatedCrash);
//   * corrupt or truncated runs are detected on resume, quarantined and
//     their chunks re-sorted — never silently merged;
//   * the merge phase survives a run going bad under its feet;
//   * the MemoryGovernor admits, shrinks staging, spills out of core, or
//     throws HostBudgetExceeded exactly per the degradation ladder.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/het_sorter.h"
#include "core/memory_governor.h"
#include "data/generators.h"
#include "data/verify.h"
#include "io/external_sort.h"
#include "io/journal.h"
#include "io/run_file.h"

namespace hs {
namespace {

using hs::data::Distribution;
using hs::sim::FaultSite;

model::Platform tiny_platform() {
  model::Platform p = model::platform1();
  p.gpus.clear();
  model::GpuSpec spec;
  spec.model = "CrashTestGPU";
  spec.cuda_cores = 64;
  spec.memory_bytes = 65536 * sizeof(double);
  spec.sort = model::GpuSortModel{1e-4, 2e-9};
  p.gpus.push_back(spec);
  return p;
}

core::SortConfig tiny_pipeline() {
  core::SortConfig cfg;
  cfg.batch_size = 4000;
  cfg.staging_elems = 512;
  return cfg;
}

/// 8 chunks for a 60000-element input: 7 full runs of 8000 plus one of 4000.
io::ExternalSortConfig crash_cfg(const std::filesystem::path& dir) {
  io::ExternalSortConfig cfg;
  cfg.platform = tiny_platform();
  cfg.pipeline = tiny_pipeline();
  cfg.memory_budget_elems = 8000;
  cfg.io_buffer_elems = 512;
  cfg.temp_dir = dir.string();
  return cfg;
}

std::vector<char> file_bytes(const std::filesystem::path& p) {
  std::ifstream f(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

void flip_byte(const std::filesystem::path& p, std::uint64_t offset) {
  std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << p;
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x40);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

class CrashResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ =
        std::filesystem::temp_directory_path() /
        ("hetsort_crash_" + std::to_string(::getpid()) + "_" +
         ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::filesystem::path dir(const std::string& name) {
    const auto d = root_ / name;
    std::filesystem::create_directories(d);
    return d;
  }

  /// Uninterrupted external sort of `data`; returns the output bytes every
  /// crash/resume variant must reproduce exactly.
  std::vector<char> golden_output(const std::vector<double>& data,
                                  const std::filesystem::path& d) {
    const io::ExternalSortConfig cfg = crash_cfg(d);
    const std::string in = (d / "in.bin").string();
    const std::string out = (d / "out.bin").string();
    io::write_doubles(in, data);
    io::external_sort_file(in, out, cfg);
    return file_bytes(d / "out.bin");
  }

  /// After commit_success nothing but the user-facing files may survive.
  void expect_only_user_files(const std::filesystem::path& d) {
    for (const auto& e : std::filesystem::directory_iterator(d)) {
      const std::string name = e.path().filename().string();
      EXPECT_TRUE(name == "in.bin" || name == "out.bin")
          << "leftover intermediate file " << name;
    }
  }

  std::filesystem::path root_;
};

// --- journal -----------------------------------------------------------------

TEST_F(CrashResumeTest, JournalRoundTripsWithGapsAndSpacedPaths) {
  const auto d = dir("j");
  io::JobJournal j;
  j.input_path = "/data/in.bin";
  j.output_path = "/data/out.bin";
  j.n = 123456;
  j.budget_elems = 8000;
  j.block_elems = 512;
  j.runs.push_back({0, 0, 8000, "/tmp/run 0 with spaces.bin"});
  // Index 1 quarantined: the manifest keeps a gap until its chunk re-sorts.
  j.runs.push_back({2, 16000, 8000, "/tmp/run2.bin"});
  io::save_journal(j, d.string());

  const auto back = io::load_journal(d.string());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->compatible_with(j));
  EXPECT_EQ(back->input_path, j.input_path);
  EXPECT_EQ(back->output_path, j.output_path);
  ASSERT_EQ(back->runs.size(), 2u);
  EXPECT_EQ(back->runs[0].path, "/tmp/run 0 with spaces.bin");
  EXPECT_EQ(back->runs[1].index, 2u);
  EXPECT_EQ(back->runs[1].start_elem, 16000u);
}

TEST_F(CrashResumeTest, JournalRejectsTornOrTamperedManifest) {
  const auto d = dir("j");
  io::JobJournal j;
  j.input_path = "in";
  j.output_path = "out";
  j.n = 100;
  j.budget_elems = 10;
  j.block_elems = 4;
  j.runs.push_back({0, 0, 10, "run0"});
  io::save_journal(j, d.string());
  ASSERT_TRUE(io::load_journal(d.string()).has_value());

  const auto path = io::journal_path(d.string());
  const auto intact = file_bytes(path);

  // Tampered: one flipped byte breaks the trailing checksum.
  flip_byte(path, intact.size() / 2);
  EXPECT_FALSE(io::load_journal(d.string()).has_value());

  // Torn: a partially written manifest loses its end line.
  std::ofstream(path, std::ios::binary)
      .write(intact.data(), static_cast<std::streamoff>(intact.size() - 7));
  EXPECT_FALSE(io::load_journal(d.string()).has_value());

  // Absent: an empty temp dir simply has no journal.
  EXPECT_FALSE(io::load_journal(dir("empty").string()).has_value());
}

TEST_F(CrashResumeTest, JournalRejectsDuplicateRunIndices) {
  const auto d = dir("j");
  io::JobJournal j;
  j.n = 100;
  j.budget_elems = 10;
  j.block_elems = 4;
  j.runs.push_back({1, 10, 10, "runA"});
  j.runs.push_back({1, 10, 10, "runB"});
  io::save_journal(j, d.string());
  EXPECT_FALSE(io::load_journal(d.string()).has_value());
}

// --- kill and resume ---------------------------------------------------------

TEST_F(CrashResumeTest, ResumeAfterAnyCrashPointIsByteIdentical) {
  const auto data = hs::data::generate(Distribution::kGaussian, 60000, 42);
  const auto golden = golden_output(data, dir("base"));

  for (std::uint64_t k = 1; k <= 7; ++k) {
    const auto d = dir("crash" + std::to_string(k));
    io::ExternalSortConfig cfg = crash_cfg(d);
    const std::string in = (d / "in.bin").string();
    const std::string out = (d / "out.bin").string();
    io::write_doubles(in, data);

    cfg.simulate_crash_after_runs = k;
    EXPECT_THROW(io::external_sort_file(in, out, cfg), io::SimulatedCrash);

    // Exactly the k durable runs survive the kill, in the manifest.
    const auto j = io::load_journal(d.string());
    ASSERT_TRUE(j.has_value()) << "crash after " << k;
    EXPECT_EQ(j->runs.size(), k);

    cfg.simulate_crash_after_runs = 0;
    const auto stats = io::resume_external_sort(in, out, cfg);
    EXPECT_TRUE(stats.resumed);
    EXPECT_EQ(stats.runs_revalidated, k);
    EXPECT_EQ(stats.runs_reused, k);
    EXPECT_EQ(stats.runs_quarantined, 0u);
    EXPECT_GT(stats.revalidated_bytes, 0u);
    EXPECT_TRUE(file_bytes(d / "out.bin") == golden) << "crash after " << k;
    expect_only_user_files(d);
  }
}

TEST_F(CrashResumeTest, CorruptRunIsQuarantinedAndResorted) {
  const auto data = hs::data::generate(Distribution::kUniform, 60000, 7);
  const auto golden = golden_output(data, dir("base"));

  const auto d = dir("corrupt");
  io::ExternalSortConfig cfg = crash_cfg(d);
  const std::string in = (d / "in.bin").string();
  const std::string out = (d / "out.bin").string();
  io::write_doubles(in, data);
  cfg.simulate_crash_after_runs = 5;
  EXPECT_THROW(io::external_sort_file(in, out, cfg), io::SimulatedCrash);

  // Bit rot inside run 2's first payload block while the job was down.
  const auto victim = d / "hetsort_run_2.bin";
  const std::uint64_t victim_bytes = std::filesystem::file_size(victim);
  flip_byte(victim, 100);

  cfg.simulate_crash_after_runs = 0;
  const auto stats = io::resume_external_sort(in, out, cfg);
  EXPECT_TRUE(stats.resumed);
  EXPECT_EQ(stats.runs_revalidated, 5u);
  EXPECT_EQ(stats.runs_reused, 4u);
  EXPECT_EQ(stats.runs_quarantined, 1u);
  EXPECT_EQ(stats.quarantined_bytes, victim_bytes);
  EXPECT_EQ(stats.chunks_resorted, 1u);
  EXPECT_TRUE(file_bytes(d / "out.bin") == golden);
  expect_only_user_files(d);  // quarantine evidence removed on success
}

TEST_F(CrashResumeTest, TruncatedRunIsQuarantinedAndResorted) {
  const auto data = hs::data::generate(Distribution::kGaussian, 60000, 9);
  const auto golden = golden_output(data, dir("base"));

  const auto d = dir("trunc");
  io::ExternalSortConfig cfg = crash_cfg(d);
  const std::string in = (d / "in.bin").string();
  const std::string out = (d / "out.bin").string();
  io::write_doubles(in, data);
  cfg.simulate_crash_after_runs = 3;
  EXPECT_THROW(io::external_sort_file(in, out, cfg), io::SimulatedCrash);

  // A torn write: run 1 lost its tail (header now disagrees with the size).
  std::filesystem::resize_file(d / "hetsort_run_1.bin", 40 + 100);

  cfg.simulate_crash_after_runs = 0;
  const auto stats = io::resume_external_sort(in, out, cfg);
  EXPECT_EQ(stats.runs_reused, 2u);
  EXPECT_EQ(stats.runs_quarantined, 1u);
  EXPECT_EQ(stats.chunks_resorted, 1u);
  EXPECT_TRUE(file_bytes(d / "out.bin") == golden);
  expect_only_user_files(d);
}

TEST_F(CrashResumeTest, IncompatibleJournalStartsFresh) {
  const auto data = hs::data::generate(Distribution::kUniform, 60000, 11);

  const auto d = dir("incompat");
  io::ExternalSortConfig cfg = crash_cfg(d);
  const std::string in = (d / "in.bin").string();
  const std::string out = (d / "out.bin").string();
  io::write_doubles(in, data);
  cfg.simulate_crash_after_runs = 3;
  EXPECT_THROW(io::external_sort_file(in, out, cfg), io::SimulatedCrash);

  // A different chunking budget changes every run boundary: the journal
  // must be ignored, not misapplied.
  io::ExternalSortConfig other = crash_cfg(d);
  other.memory_budget_elems = 10000;
  const auto stats = io::resume_external_sort(in, out, other);
  EXPECT_FALSE(stats.resumed);
  EXPECT_EQ(stats.runs_reused, 0u);
  EXPECT_TRUE(
      hs::data::is_sorted_permutation(data, io::read_doubles(out)));
  expect_only_user_files(d);
}

TEST_F(CrashResumeTest, MergePhaseCorruptionQuarantinesAndRestarts) {
  const auto data = hs::data::generate(Distribution::kGaussian, 60000, 13);
  const auto golden = golden_output(data, dir("base"));

  const auto d = dir("mergecorrupt");
  io::ExternalSortConfig cfg = crash_cfg(d);
  // The first kFileCorrupt probe fires once: during the merge, since run
  // formation never reads framed blocks. The merge must quarantine the run
  // it was reading, re-sort that chunk and restart.
  cfg.io_faults.seed = 99;
  cfg.io_faults.p(FaultSite::kFileCorrupt) = 1.0;
  cfg.io_faults.max_faults = 1;
  const std::string in = (d / "in.bin").string();
  const std::string out = (d / "out.bin").string();
  io::write_doubles(in, data);

  const auto stats = io::external_sort_file(in, out, cfg);
  EXPECT_EQ(stats.io_faults_injected, 1u);
  EXPECT_EQ(stats.runs_quarantined, 1u);
  EXPECT_EQ(stats.chunks_resorted, 1u);
  EXPECT_TRUE(file_bytes(d / "out.bin") == golden);
  expect_only_user_files(d);
}

TEST_F(CrashResumeTest, SeededFaultyCrashThenCleanResumeIsByteIdentical) {
  const auto data = hs::data::generate(Distribution::kUniform, 48000, 21);
  const auto golden = golden_output(data, dir("base"));

  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto d = dir("fuzz" + std::to_string(seed));
    const std::string in = (d / "in.bin").string();
    const std::string out = (d / "out.bin").string();
    io::write_doubles(in, data);

    Xoshiro256 rng(seed ^ 0x9e3779b97f4a7c15ULL);
    io::ExternalSortConfig faulty = crash_cfg(d);
    faulty.io_faults.seed = seed;
    faulty.io_faults.p(FaultSite::kFileRead) = rng.uniform01() * 0.3;
    faulty.io_faults.p(FaultSite::kFileWrite) = rng.uniform01() * 0.3;
    faulty.io_faults.p(FaultSite::kFileCorrupt) = rng.uniform01() * 0.2;
    faulty.io_faults.max_faults = 1 + rng.bounded(6);
    faulty.simulate_crash_after_runs = 1 + seed % 5;
    try {
      io::external_sort_file(in, out, faulty);
    } catch (const io::IoError&) {
      // Retries exhausted under injected faults: fine, resume must recover.
    } catch (const io::SimulatedCrash&) {
      // The intended kill point.
    }

    // Whatever the fault schedule left behind, a clean resume finishes the
    // job to the same bytes as the never-interrupted sort.
    const auto stats = io::resume_external_sort(in, out, crash_cfg(d));
    EXPECT_TRUE(file_bytes(d / "out.bin") == golden) << "seed " << seed;
    EXPECT_EQ(stats.runs_quarantined + stats.runs_reused,
              stats.runs_revalidated)
        << "seed " << seed;
    expect_only_user_files(d);
  }
}

// --- memory governor ---------------------------------------------------------

TEST_F(CrashResumeTest, GovernorShrinksStagingToAdmit) {
  const auto data_src = hs::data::generate(Distribution::kUniform, 20000, 4);
  auto data = data_src;

  core::SortConfig cfg = tiny_pipeline();
  cfg.staging_elems = 8192;
  // 3n fits, the staging area does not: per-element staging cost is
  // num_gpus * streams_per_gpu * 8 = 16 B, so 32768 spare bytes admit
  // ps = 2048 — a shrink, not a spill.
  cfg.host_budget_bytes = 3 * 20000 * sizeof(double) + 32768;
  core::HeterogeneousSorter sorter(tiny_platform(), cfg);
  const core::Report r = sorter.sort(data);

  EXPECT_EQ(r.recovery.ps_shrinks, 1u);
  EXPECT_FALSE(r.recovery.spilled);
  EXPECT_TRUE(hs::data::is_sorted_permutation(data_src, data));
}

TEST_F(CrashResumeTest, GovernorSpillsWhenDataExceedsBudget) {
  io::ensure_spill_backend();
  const auto d = dir("spill");
  const auto data_src = hs::data::generate(Distribution::kGaussian, 50000, 5);
  auto data = data_src;

  core::SortConfig cfg = tiny_pipeline();
  cfg.host_budget_bytes = 600'000;  // < 3n * 8 = 1.2 MB: must go out of core
  cfg.spill_dir = d.string();
  core::HeterogeneousSorter sorter(tiny_platform(), cfg);
  const core::Report r = sorter.sort(data);

  EXPECT_TRUE(r.recovery.spilled);
  EXPECT_NE(r.label.find("+Spill"), std::string::npos) << r.label;
  EXPECT_GT(r.num_batches, 1u);  // chunked out of core
  EXPECT_TRUE(hs::data::is_sorted_permutation(data_src, data));
  EXPECT_TRUE(std::filesystem::is_empty(d));  // spill scratch removed
}

TEST_F(CrashResumeTest, GovernorThrowsWithoutSpillBackend) {
  core::SpillBackend* const saved = core::spill_backend();
  core::set_spill_backend(nullptr);
  auto data = hs::data::generate(Distribution::kUniform, 50000, 6);

  core::SortConfig cfg = tiny_pipeline();
  cfg.host_budget_bytes = 600'000;
  core::HeterogeneousSorter sorter(tiny_platform(), cfg);
  EXPECT_THROW(sorter.sort(data), core::HostBudgetExceeded);

  core::set_spill_backend(saved);
  io::ensure_spill_backend();
}

TEST_F(CrashResumeTest, GovernorTimingOnlyRunCannotSpill) {
  io::ensure_spill_backend();
  core::SortConfig cfg = tiny_pipeline();
  cfg.host_budget_bytes = 600'000;
  core::HeterogeneousSorter sorter(tiny_platform(), cfg);
  // simulate() has no payload bytes to dump to disk; the budget violation
  // must surface as the typed error instead of a bogus spill.
  EXPECT_THROW(sorter.simulate(50000), core::HostBudgetExceeded);
}

TEST_F(CrashResumeTest, HostAllocFailureShrinksStagingAndRecovers) {
  const auto data_src = hs::data::generate(Distribution::kUniform, 20000, 8);
  auto data = data_src;

  core::SortConfig cfg = tiny_pipeline();
  cfg.staging_elems = 8192;
  cfg.faults.seed = 3;
  cfg.faults.p(FaultSite::kHostAllocFail) = 1.0;
  cfg.faults.max_faults = 2;  // first two pinned allocations fail
  cfg.recovery.enabled = true;
  core::HeterogeneousSorter sorter(tiny_platform(), cfg);
  const core::Report r = sorter.sort(data);

  EXPECT_EQ(r.recovery.ps_shrinks, 2u);  // 8192 -> 4096 -> 2048
  EXPECT_GE(r.recovery.attempts, 3u);
  EXPECT_FALSE(r.recovery.cpu_fallback);
  EXPECT_TRUE(hs::data::is_sorted_permutation(data_src, data));
}

TEST_F(CrashResumeTest, HostAllocFailureAtFloorFallsBackToCpu) {
  const auto data_src = hs::data::generate(Distribution::kGaussian, 20000, 10);
  auto data = data_src;

  core::SortConfig cfg = tiny_pipeline();
  cfg.staging_elems = core::MemoryGovernor::kMinStagingElems;
  cfg.faults.seed = 4;
  cfg.faults.p(FaultSite::kHostAllocFail) = 1.0;
  cfg.faults.max_faults = 1000;  // pinned memory never comes back
  cfg.recovery.enabled = true;
  core::HeterogeneousSorter sorter(tiny_platform(), cfg);
  const core::Report r = sorter.sort(data);

  EXPECT_TRUE(r.recovery.cpu_fallback);
  EXPECT_TRUE(hs::data::is_sorted_permutation(data_src, data));
}

}  // namespace
}  // namespace hs
